// Package report renders experiment results as aligned text tables and
// ASCII histograms — the textual equivalents of the paper's tables and
// figures.
package report

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			// Display width is rune count ("κ" is one column).
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			pad := widths[i] - utf8.RuneCountInString(c)
			fmt.Fprintf(&b, "| %s%s ", c, strings.Repeat(" ", pad))
		}
		b.WriteString("|\n")
	}
	line(t.Headers)
	for i := 0; i < cols; i++ {
		fmt.Fprintf(&b, "|%s", strings.Repeat("-", widths[i]+2))
	}
	b.WriteString("|\n")
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Fmt helpers for metric cells.

// G formats a metric in compact scientific/decimal form the way the
// paper quotes it.
func G(v float64) string {
	if v == 0 {
		return "0"
	}
	if v >= 0.01 {
		return fmt.Sprintf("%.4f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// Pct formats a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// Section is one titled block of a rendered experiment.
type Section struct {
	Heading string
	Body    string
}

// Document is a rendered experiment output.
type Document struct {
	Title    string
	Sections []Section
}

// Add appends a section.
func (d *Document) Add(heading, body string) {
	d.Sections = append(d.Sections, Section{Heading: heading, Body: body})
}

// String renders the document.
func (d *Document) String() string {
	var b strings.Builder
	bar := strings.Repeat("=", len(d.Title))
	fmt.Fprintf(&b, "%s\n%s\n\n", d.Title, bar)
	for _, s := range d.Sections {
		if s.Heading != "" {
			fmt.Fprintf(&b, "--- %s ---\n", s.Heading)
		}
		b.WriteString(s.Body)
		if !strings.HasSuffix(s.Body, "\n") {
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}
