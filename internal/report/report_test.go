package report

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("title", "Env", "κ")
	tb.AddRow("Local", "0.9853")
	tb.AddRow("FABRIC Dedicated 40 Gbps 1", "0.7426")
	out := tb.String()
	if !strings.Contains(out, "title") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	// All data lines same display width (aligned columns, counted in
	// runes since headers may contain κ).
	want := utf8.RuneCountInString(lines[1])
	for i := 2; i < len(lines); i++ {
		if got := utf8.RuneCountInString(lines[i]); got != want {
			t.Fatalf("line %d width %d != header width %d:\n%s", i, got, want, out)
		}
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("x")
	out := tb.String()
	if !strings.Contains(out, "| x") {
		t.Fatalf("row missing: %s", out)
	}
}

func TestTableExtraWideRow(t *testing.T) {
	tb := NewTable("", "A")
	tb.Rows = append(tb.Rows, []string{"1", "2", "3"})
	out := tb.String() // must not panic, renders extra columns
	if !strings.Contains(out, "3") {
		t.Fatalf("wide row lost: %s", out)
	}
}

func TestG(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.5000",
		0.01:    "0.0100",
		2.5e-05: "2.5e-05",
	}
	for v, want := range cases {
		if got := G(v); got != want {
			t.Errorf("G(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if Pct(92.25) != "92.25%" {
		t.Fatalf("Pct = %q", Pct(92.25))
	}
}

func TestDocument(t *testing.T) {
	d := &Document{Title: "Figure X"}
	d.Add("part 1", "body one")
	d.Add("", "untitled body\n")
	out := d.String()
	for _, want := range []string{"Figure X", "===", "--- part 1 ---", "body one", "untitled body"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "---  ---") {
		t.Fatal("empty heading rendered")
	}
}
