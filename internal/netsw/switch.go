// Package netsw models the experiment switches: the local testbed's
// Tofino2 running a simple ingress→egress port-forwarding program, and
// the Cisco 5700s FABRIC sites deploy. Forwarding is statically
// configured per ingress port, exactly like the paper's P4 program.
//
// Each egress port serializes frames at its line rate with a finite
// byte-bounded queue; congestion across ingress ports is the only way a
// switch drops packets.
package netsw

import (
	"fmt"
	"math/rand"

	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Profile captures a switch's timing personality.
type Profile struct {
	// Name for diagnostics ("Tofino2", "Cisco5700").
	Name string
	// ForwardLatency is the ingress→egress pipeline latency per frame.
	// Cut-through switches have a tight, small distribution;
	// store-and-forward switches add the buffering variance the paper
	// suspects contributes to FABRIC's extra IAT noise.
	ForwardLatency sim.Dist
	// PortRateBps is each port's line rate.
	PortRateBps int64
	// EgressQueueBytes bounds each egress queue; 0 means 16 MiB.
	EgressQueueBytes int
}

func (p *Profile) queueBytes() int {
	if p.EgressQueueBytes <= 0 {
		return 16 << 20
	}
	return p.EgressQueueBytes
}

// Tofino2 returns the local testbed's AS9516-32D profile: cut-through
// with a sub-100ns, very tight pipeline.
func Tofino2(rateBps int64) Profile {
	return Profile{
		Name:           "Tofino2",
		ForwardLatency: sim.Clamp{D: sim.Normal{Mu: 60, Sigma: 1.2}, Lo: 50, Hi: 120},
		PortRateBps:    rateBps,
	}
}

// Cisco5700 returns the FABRIC site switch profile: store-and-forward
// with a larger and noisier pipeline latency.
func Cisco5700(rateBps int64) Profile {
	return Profile{
		Name:           "Cisco5700",
		ForwardLatency: sim.Clamp{D: sim.Normal{Mu: 800, Sigma: 9}, Lo: 500, Hi: 3000},
		PortRateBps:    rateBps,
	}
}

// Switch is a statically-routed L2 forwarding element.
type Switch struct {
	eng   *sim.Engine
	act   *sim.Actor
	prof  Profile
	label string
	rng   *rand.Rand
	ports []*Port

	ob *swObs
}

// swObs bundles the switch's instruments; created only by EnableObs.
type swObs struct {
	tr        *obs.Tracer
	track     string
	forwarded *obs.Counter
	dropped   *obs.Counter
	lost      *obs.Counter
	queuePeak *obs.Gauge
}

// New creates a switch; label seeds its private random stream.
func New(eng *sim.Engine, prof Profile, label string) *Switch {
	if prof.PortRateBps <= 0 {
		panic("netsw: port rate must be positive")
	}
	return &Switch{eng: eng, act: eng.NewActor(), prof: prof, label: label, rng: eng.Rand("switch/" + label)}
}

// SimEngine reports the engine this switch runs on (sim.Hosted).
func (s *Switch) SimEngine() *sim.Engine { return s.eng }

// EnableObs attaches metrics and packet-lifecycle tracing: forwarded /
// egress-drop / failure-loss counters, egress queue depth high-water
// (bytes), and a `switch` span (ingress arrival → egress serialization
// done) for sampled packets. A nil handle is a no-op.
func (s *Switch) EnableObs(o *obs.Obs) {
	if o == nil || (o.Reg == nil && o.Tracer == nil) {
		return
	}
	lbl := obs.L("switch", s.label)
	s.ob = &swObs{
		tr:        o.Tracer,
		track:     "switch/" + s.label,
		forwarded: o.Reg.Counter("switch_forwarded_total", "frames forwarded out an egress port", lbl),
		dropped:   o.Reg.Counter("switch_egress_drops_total", "frames dropped at a full egress queue", lbl),
		lost:      o.Reg.Counter("switch_failure_losses_total", "frames lost to injected failure windows", lbl),
		queuePeak: o.Reg.Gauge("switch_egress_queue_peak_bytes", "high-water egress queue depth across ports", lbl),
	}
}

// Port is one switch port. It implements nic.Endpoint so device queues
// can connect straight to it; frames received on a port are forwarded to
// the port configured with Forward.
type Port struct {
	sw        *Switch
	id        int
	out       nic.Endpoint
	outEng    *sim.Engine // engine hosting out; == sw.eng when co-located
	prop      sim.Duration
	routeTo   int
	busyTil   sim.Time
	queued    int
	forwarded uint64
	dropped   uint64
	downFrom  sim.Time
	downTo    sim.Time
	lost      uint64
}

// AddPort creates the next port (ids are sequential from 0); routes
// default to "drop" until Forward is called.
func (s *Switch) AddPort() *Port {
	p := &Port{sw: s, id: len(s.ports), routeTo: -1}
	s.ports = append(s.ports, p)
	return p
}

// Port returns port i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// Forward installs the static route: frames arriving on ingress leave
// through egress — one table entry of the paper's forwarding program.
func (s *Switch) Forward(ingress, egress int) {
	if ingress < 0 || ingress >= len(s.ports) || egress < 0 || egress >= len(s.ports) {
		panic(fmt.Sprintf("netsw: route %d->%d out of range", ingress, egress))
	}
	s.ports[ingress].routeTo = egress
}

// Attach connects the port's egress side to a device with the given
// propagation delay. The device is probed for sim.Hosted so deliveries
// route to its engine in a partitioned run; a frame leaves no earlier
// than the pipeline-latency floor plus prop after its ingress event, so
// that sum is this wire's lookahead.
func (p *Port) Attach(dev nic.Endpoint, prop sim.Duration) {
	p.out = dev
	p.prop = prop
	p.outEng = sim.EngineOf(dev, p.sw.eng)
	if r := p.sw.eng.Router(); r != nil && p.outEng != p.sw.eng {
		r.Link(p.sw.eng, p.outEng, prop+sim.DistFloor(p.sw.prof.ForwardLatency))
	}
}

// SimEngine reports the engine this port's switch runs on (sim.Hosted),
// so device queues connecting to the port can route frames to it.
func (p *Port) SimEngine() *sim.Engine { return p.sw.eng }

// Forwarded returns frames sent out of this port.
func (p *Port) Forwarded() uint64 { return p.forwarded }

// Dropped returns frames dropped at this port's egress queue.
func (p *Port) Dropped() uint64 { return p.dropped }

// FailBetween takes the port's ingress down for [from, to): frames
// arriving in the window are lost, as in a link flap or optic failure.
// Use for failure-injection experiments; the consistency metrics (U,
// and windowed κ) should localize the episode.
func (p *Port) FailBetween(from, to sim.Time) {
	p.downFrom, p.downTo = from, to
}

// Lost returns frames dropped by an injected failure window.
func (p *Port) Lost() uint64 { return p.lost }

// Receive implements nic.Endpoint: a frame has fully arrived on this
// ingress port.
func (p *Port) Receive(pkt *packet.Packet, at sim.Time) {
	if at >= p.downFrom && at < p.downTo {
		p.lost++
		if ob := p.sw.ob; ob != nil {
			ob.lost.Inc()
		}
		return
	}
	if p.routeTo < 0 {
		return // no route: dropped silently like an unprogrammed table
	}
	eg := p.sw.ports[p.routeTo]
	fl := p.sw.prof.ForwardLatency
	var lat sim.Duration
	if fl != nil {
		lat = fl.Sample(p.sw.rng)
		if lat < 0 {
			lat = 0
		}
	}
	if ob := p.sw.ob; ob != nil && ob.tr != nil {
		// Span opens at ingress arrival; it closes when the egress port
		// finishes serializing the frame (see transmit).
		ob.tr.Begin(pkt.Tag, obs.StageSwitch, ob.track, at)
	}
	eg.transmit(pkt, at+lat)
}

// transmit serializes the frame out of the egress port.
func (p *Port) transmit(pkt *packet.Packet, ready sim.Time) {
	if p.out == nil {
		return
	}
	wb := packet.WireBytes(pkt.FrameLen)
	if p.queued+wb > p.sw.prof.queueBytes() {
		p.dropped++
		if ob := p.sw.ob; ob != nil {
			ob.dropped.Inc()
		}
		return
	}
	p.queued += wb
	start := ready
	if p.busyTil > start {
		start = p.busyTil
	}
	end := start + packet.SerializationTime(pkt.FrameLen, p.sw.prof.PortRateBps)
	p.busyTil = end
	p.forwarded++
	ob := p.sw.ob
	if ob != nil {
		ob.forwarded.Inc()
		ob.queuePeak.MaxInt(int64(p.queued))
	}
	out, prop := p.out, p.prop
	p.sw.act.Post(end, func() {
		p.queued -= wb
		if ob != nil && ob.tr != nil {
			ob.tr.End(pkt.Tag, obs.StageSwitch, end)
		}
	})
	// The delivery instant is already determined, so the wire event is
	// issued here rather than from the end-of-serialization callback —
	// in a partitioned run it may cross to the device's domain, and a
	// crossing must be sent while the ingress event (whose time the
	// lookahead promise is anchored to) is still executing.
	p.sw.act.Send(p.outEng, end+prop, func() {
		out.Receive(pkt, end+prop)
	})
}
