package netsw

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

type collector struct {
	pkts  []*packet.Packet
	times []sim.Time
}

func (c *collector) Receive(p *packet.Packet, t sim.Time) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, t)
}

func mkPkt(seq uint64, frameLen int) *packet.Packet {
	return &packet.Packet{Tag: packet.Tag{Seq: seq}, FrameLen: frameLen}
}

func perfectProfile(rate int64) Profile {
	return Profile{Name: "ideal", PortRateBps: rate}
}

func twoPortSwitch(e *sim.Engine, prof Profile) (*Switch, *collector) {
	s := New(e, prof, "t")
	s.AddPort()
	s.AddPort()
	sink := &collector{}
	s.Port(1).Attach(sink, 0)
	s.Forward(0, 1)
	return s, sink
}

func TestForwardBasic(t *testing.T) {
	e := sim.NewEngine(1)
	s, sink := twoPortSwitch(e, perfectProfile(packet.Gbps(100)))
	s.Port(0).Receive(mkPkt(1, 1400), 0)
	e.Run()
	if len(sink.pkts) != 1 {
		t.Fatalf("forwarded %d, want 1", len(sink.pkts))
	}
	want := packet.SerializationTime(1400, packet.Gbps(100))
	if sink.times[0] != want {
		t.Fatalf("arrival %v, want %v", sink.times[0], want)
	}
	if s.Port(1).Forwarded() != 1 {
		t.Fatal("forwarded counter wrong")
	}
}

func TestForwardLatencyApplied(t *testing.T) {
	e := sim.NewEngine(1)
	prof := perfectProfile(packet.Gbps(100))
	prof.ForwardLatency = sim.Constant{V: 555}
	s, sink := twoPortSwitch(e, prof)
	s.Port(0).Receive(mkPkt(1, 1400), 100)
	e.Run()
	want := sim.Time(100) + 555 + packet.SerializationTime(1400, packet.Gbps(100))
	if sink.times[0] != want {
		t.Fatalf("arrival %v, want %v", sink.times[0], want)
	}
}

func TestNoRouteDropsSilently(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, perfectProfile(packet.Gbps(100)), "t")
	s.AddPort()
	s.Port(0).Receive(mkPkt(1, 1400), 0)
	e.Run() // no panic, nothing delivered
}

func TestBadRoutePanics(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, perfectProfile(packet.Gbps(100)), "t")
	s.AddPort()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range route accepted")
		}
	}()
	s.Forward(0, 3)
}

func TestZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate accepted")
		}
	}()
	New(sim.NewEngine(1), Profile{}, "t")
}

func TestEgressSerializesContention(t *testing.T) {
	// Two ingress ports feed one egress: frames cannot overlap on the
	// egress line.
	e := sim.NewEngine(1)
	s := New(e, perfectProfile(packet.Gbps(100)), "t")
	s.AddPort() // 0 in
	s.AddPort() // 1 in
	s.AddPort() // 2 out
	sink := &collector{}
	s.Port(2).Attach(sink, 0)
	s.Forward(0, 2)
	s.Forward(1, 2)

	s.Port(0).Receive(mkPkt(1, 1400), 0)
	s.Port(1).Receive(mkPkt(2, 1400), 0)
	e.Run()
	if len(sink.pkts) != 2 {
		t.Fatalf("forwarded %d, want 2", len(sink.pkts))
	}
	ser := packet.SerializationTime(1400, packet.Gbps(100))
	if gap := sink.times[1] - sink.times[0]; gap != ser {
		t.Fatalf("egress gap %v, want serialization %v", gap, ser)
	}
}

func TestEgressQueueOverflowDrops(t *testing.T) {
	e := sim.NewEngine(1)
	prof := perfectProfile(packet.Gbps(1)) // slow egress
	prof.EgressQueueBytes = 3 * packet.WireBytes(1400)
	s, sink := twoPortSwitch(e, prof)
	for i := 0; i < 10; i++ {
		s.Port(0).Receive(mkPkt(uint64(i), 1400), 0)
	}
	e.Run()
	if s.Port(1).Dropped() != 7 {
		t.Fatalf("dropped %d, want 7", s.Port(1).Dropped())
	}
	if len(sink.pkts) != 3 {
		t.Fatalf("delivered %d, want 3", len(sink.pkts))
	}
}

func TestQueueDrainsAllowsLaterTraffic(t *testing.T) {
	e := sim.NewEngine(1)
	prof := perfectProfile(packet.Gbps(1))
	prof.EgressQueueBytes = 2 * packet.WireBytes(1400)
	s, sink := twoPortSwitch(e, prof)
	s.Port(0).Receive(mkPkt(1, 1400), 0)
	s.Port(0).Receive(mkPkt(2, 1400), 0)
	e.Run() // queue drained
	s.Port(0).Receive(mkPkt(3, 1400), e.Now())
	e.Run()
	if len(sink.pkts) != 3 {
		t.Fatalf("delivered %d, want 3 after drain", len(sink.pkts))
	}
	if s.Port(1).Dropped() != 0 {
		t.Fatalf("dropped %d, want 0", s.Port(1).Dropped())
	}
}

func TestFIFOWithinIngress(t *testing.T) {
	e := sim.NewEngine(4)
	prof := Tofino2(packet.Gbps(100))
	s, sink := twoPortSwitch(e, prof)
	at := sim.Time(0)
	for i := 0; i < 200; i++ {
		i := i
		e.Schedule(at, func() { s.Port(0).Receive(mkPkt(uint64(i), 1400), e.Now()) })
		at += 284
	}
	e.Run()
	if len(sink.pkts) != 200 {
		t.Fatalf("delivered %d, want 200", len(sink.pkts))
	}
	for i := 1; i < len(sink.pkts); i++ {
		if sink.pkts[i].Tag.Seq != sink.pkts[i-1].Tag.Seq+1 {
			t.Fatalf("reordered at %d", i)
		}
		if sink.times[i] < sink.times[i-1] {
			t.Fatalf("time inversion at %d", i)
		}
	}
}

func TestPresetProfilesOrdering(t *testing.T) {
	// The Cisco profile must be slower and noisier than the Tofino one.
	tf := Tofino2(packet.Gbps(100))
	cs := Cisco5700(packet.Gbps(100))
	if tf.ForwardLatency.Mean() >= cs.ForwardLatency.Mean() {
		t.Fatal("Tofino should have lower mean latency than Cisco")
	}
}

func TestAttachPropagation(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, perfectProfile(packet.Gbps(100)), "t")
	s.AddPort()
	s.AddPort()
	sink := &collector{}
	s.Port(1).Attach(sink, 2_500) // 2.5µs of fibre
	s.Forward(0, 1)
	s.Port(0).Receive(mkPkt(1, 1400), 0)
	e.Run()
	want := packet.SerializationTime(1400, packet.Gbps(100)) + 2_500
	if sink.times[0] != want {
		t.Fatalf("arrival %v, want %v", sink.times[0], want)
	}
}

func TestFailBetweenDropsWindow(t *testing.T) {
	e := sim.NewEngine(8)
	s, sink := twoPortSwitch(e, perfectProfile(packet.Gbps(100)))
	s.Port(0).FailBetween(1000, 2000)
	for i := 0; i < 30; i++ {
		at := sim.Time(i) * 100 // arrivals at 0,100,...,2900
		i := i
		e.Schedule(at, func() { s.Port(0).Receive(mkPkt(uint64(i), 1400), e.Now()) })
	}
	e.Run()
	// Arrivals in [1000,2000) are 10 packets (1000..1900).
	if got := s.Port(0).Lost(); got != 10 {
		t.Fatalf("lost %d, want 10", got)
	}
	if len(sink.pkts) != 20 {
		t.Fatalf("delivered %d, want 20", len(sink.pkts))
	}
}
