package shaper

import (
	"math"
	"testing"

	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
)

type collector struct {
	pkts  []*packet.Packet
	times []sim.Time
}

func (c *collector) Receive(p *packet.Packet, t sim.Time) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, t)
}

// feed pushes n frames of frameLen through a bucket at the given
// inter-arrival gap and returns the sink plus the bucket.
func feed(t *testing.T, cfg Config, n, frameLen int, gap sim.Duration) (*collector, *Shaper) {
	t.Helper()
	e := sim.NewEngine(1)
	sink := &collector{}
	s, err := New(e, cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	act := e.NewActor()
	for i := 0; i < n; i++ {
		p := &packet.Packet{Tag: packet.Tag{Seq: uint64(i)}, Kind: packet.KindData, FrameLen: frameLen}
		at := sim.Time(i) * sim.Time(gap)
		act.Post(at, func() { s.Receive(p, at) })
	}
	e.Run()
	return sink, s
}

func TestConformingTrafficPassesUndelayed(t *testing.T) {
	// 1400B every 1.2ms ≈ 9.5 Mbps, well under a 20 Mbps bucket.
	sink, s := feed(t, Config{RateBps: 20_000_000}, 500, 1400, 1200*sim.Microsecond)
	if int(s.Stats().Delivered) != 500 || s.Stats().Dropped != 0 || s.Stats().Delayed != 0 {
		t.Fatalf("stats %+v", s.Stats())
	}
	for i := 1; i < len(sink.times); i++ {
		if sink.times[i]-sink.times[i-1] != sim.Time(1200*sim.Microsecond) {
			t.Fatalf("conforming gap perturbed at %d", i)
		}
	}
}

func TestShapingEnforcesRate(t *testing.T) {
	// Offered ~22.7 Mbps into a 5 Mbps shaper with a deep queue: output
	// spacing must converge to the shaped serialization time.
	cfg := Config{RateBps: 5_000_000, BurstBytes: 4 * 1024, QueuePkts: 4096}
	sink, s := feed(t, cfg, 400, 1400, 500*sim.Microsecond)
	st := s.Stats()
	if st.Dropped != 0 {
		t.Fatalf("deep queue dropped: %+v", st)
	}
	if st.Delayed == 0 || st.DelayMax == 0 {
		t.Fatalf("shaper never delayed: %+v", st)
	}
	span := sink.times[len(sink.times)-1] - sink.times[0]
	avg := float64(span) / float64(len(sink.times)-1)
	want := float64(packet.WireBytes(1400)*8) * 1e9 / 5_000_000
	if math.Abs(avg-want)/want > 0.05 {
		t.Fatalf("shaped IAT %.0f ns, want ~%.0f", avg, want)
	}
	// FIFO: no reordering.
	for i, p := range sink.pkts {
		if p.Tag.Seq != uint64(i) {
			t.Fatalf("shaper reordered at %d", i)
		}
	}
}

func TestShaperTailDropsWhenQueueFull(t *testing.T) {
	cfg := Config{RateBps: 5_000_000, BurstBytes: 4 * 1024, QueuePkts: 16}
	_, s := feed(t, cfg, 400, 1400, 500*sim.Microsecond)
	st := s.Stats()
	if st.Dropped == 0 {
		t.Fatalf("bounded queue never dropped: %+v", st)
	}
	if st.QueuePeak > 16 {
		t.Fatalf("queue exceeded bound: %+v", st)
	}
	if st.Delivered+st.Dropped != st.Received {
		t.Fatalf("conservation violated: %+v", st)
	}
}

func TestPolicerDropsOutOfProfile(t *testing.T) {
	cfg := Config{RateBps: 5_000_000, BurstBytes: 4 * 1024, Police: true}
	sink, s := feed(t, cfg, 400, 1400, 500*sim.Microsecond)
	st := s.Stats()
	if st.Dropped == 0 || st.Delayed != 0 {
		t.Fatalf("policer stats %+v", st)
	}
	// Surviving frames keep their arrival instants.
	for i := 1; i < len(sink.times); i++ {
		if (sink.times[i]-sink.times[i-1])%sim.Time(500*sim.Microsecond) != 0 {
			t.Fatalf("policer shifted a timestamp at %d", i)
		}
	}
	// Long-run admitted rate ≈ configured rate.
	admitted := float64(st.Delivered) * float64(packet.WireBytes(1400)*8)
	span := float64(sink.times[len(sink.times)-1]-sink.times[0]) / 1e9
	if rate := admitted / span; math.Abs(rate-5_000_000)/5_000_000 > 0.10 {
		t.Fatalf("policed rate %.0f bps, want ~5M", rate)
	}
}

func TestBurstAllowancePassesAtLineRate(t *testing.T) {
	// A burst smaller than the bucket depth passes with zero delay even
	// though its instantaneous rate exceeds the shaped rate.
	cfg := Config{RateBps: 5_000_000, BurstBytes: 32 * 1024}
	_, s := feed(t, cfg, 20, 1400, 10*sim.Microsecond)
	if st := s.Stats(); st.Delayed != 0 || st.Dropped != 0 {
		t.Fatalf("in-burst traffic perturbed: %+v", st)
	}
}

func TestShaperDeterministic(t *testing.T) {
	run := func() []sim.Time {
		sink, _ := feed(t, Config{RateBps: 5_000_000, QueuePkts: 64}, 300, 1400, 400*sim.Microsecond)
		return sink.times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	e := sim.NewEngine(1)
	if _, err := New(e, Config{RateBps: 0}, &collector{}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := New(nil, Config{RateBps: 1e6}, &collector{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(e, Config{RateBps: 1e6}, nil); err == nil {
		t.Fatal("nil downstream accepted")
	}
}

var _ nic.Endpoint = (*Shaper)(nil)
var _ sim.Hosted = (*Shaper)(nil)
