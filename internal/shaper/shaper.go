// Package shaper provides a deterministic token-bucket traffic shaper /
// policer attachable anywhere a wire terminates, in the same pattern as
// fault.Injector: it implements nic.Endpoint and splices in front of
// the recorder via testbed.Env.WrapRecorder. A neutral path and a
// throttled path differ only by this component, which is what turns a
// replayed application workload into a traffic-differentiation
// experiment: the κ component that moves (loss vs timing) is the
// throttler's signature.
//
// The bucket is a GCRA meter in integer nanoseconds: packet k of b
// on-wire bits needs an emission interval T = b·1e9/RateBps, and the
// burst allowance τ = BurstBytes·8·1e9/RateBps. A shaper delays
// out-of-profile frames (FIFO, bounded queue, tail-drop); a policer
// drops them at arrival. All arithmetic is int64 and all deliveries go
// through the engine, so the perturbed schedule is bit-identical across
// runs and across -sim-shards counts.
package shaper

import (
	"fmt"

	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Config parameterizes one token bucket.
type Config struct {
	// RateBps is the shaped rate in on-wire bits per second.
	RateBps int64
	// BurstBytes is the bucket depth in on-wire bytes (default 16 KiB):
	// traffic up to this much may pass at line rate.
	BurstBytes int
	// QueuePkts bounds the shaper's FIFO; frames arriving with the queue
	// full are tail-dropped (default 128). Ignored when policing.
	QueuePkts int
	// Police drops out-of-profile frames at arrival instead of delaying
	// them — a pure-loss differentiation signature.
	Police bool
	// Obs, when non-nil, publishes delivered/dropped counters.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.BurstBytes <= 0 {
		c.BurstBytes = 16 * 1024
	}
	if c.QueuePkts <= 0 {
		c.QueuePkts = 128
	}
	return c
}

// Stats counts what the bucket did to the flow.
type Stats struct {
	// Received counts frames that reached the shaper.
	Received int64
	// Delivered counts frames handed downstream.
	Delivered int64
	// Dropped counts policer drops plus shaper tail drops.
	Dropped int64
	// Delayed counts frames held back by shaping.
	Delayed int64
	// DelaySum and DelayMax aggregate the added queueing delay.
	DelaySum, DelayMax sim.Duration
	// QueuePeak is the maximum shaper queue occupancy observed.
	QueuePeak int
}

// Shaper is one token bucket in the delivery path.
type Shaper struct {
	eng  *sim.Engine
	act  *sim.Actor
	cfg  Config
	down nic.Endpoint

	tat     sim.Time // GCRA theoretical arrival time
	tauNs   int64    // burst tolerance in ns
	queued  int
	stats   Stats
	deliver *obs.Counter
	drops   *obs.Counter
}

// New wires a token bucket in front of down on eng.
func New(eng *sim.Engine, cfg Config, down nic.Endpoint) (*Shaper, error) {
	if eng == nil || down == nil {
		return nil, fmt.Errorf("shaper: needs an engine and a downstream endpoint")
	}
	if cfg.RateBps <= 0 {
		return nil, fmt.Errorf("shaper: rate must be positive, got %d", cfg.RateBps)
	}
	cfg = cfg.withDefaults()
	s := &Shaper{
		eng:   eng,
		act:   eng.NewActor(),
		cfg:   cfg,
		down:  down,
		tauNs: int64(cfg.BurstBytes) * 8 * 1e9 / cfg.RateBps,
	}
	if cfg.Obs != nil {
		mode := "shape"
		if cfg.Police {
			mode = "police"
		}
		s.deliver = cfg.Obs.Reg.Counter("shaper_delivered_total", "frames passed by the token bucket",
			obs.L("mode", mode))
		s.drops = cfg.Obs.Reg.Counter("shaper_dropped_total", "frames dropped by the token bucket",
			obs.L("mode", mode))
	}
	return s, nil
}

// SimEngine reports the engine this shaper runs on (sim.Hosted).
func (s *Shaper) SimEngine() *sim.Engine { return s.eng }

// Stats returns the running bucket counts.
func (s *Shaper) Stats() Stats { return s.stats }

// Receive implements nic.Endpoint: meter one arriving frame.
func (s *Shaper) Receive(pk *packet.Packet, at sim.Time) {
	s.stats.Received++
	emission := sim.Time(int64(packet.WireBytes(pk.FrameLen)) * 8 * 1e9 / s.cfg.RateBps)
	if s.cfg.Police {
		// Non-conforming iff the frame arrives before TAT - τ.
		if int64(at) < int64(s.tat)-s.tauNs {
			s.stats.Dropped++
			s.drops.Inc()
			return
		}
		if s.tat < at {
			s.tat = at
		}
		s.tat += emission
		s.post(pk, at)
		return
	}
	// Shaping: hold the frame until the bucket conforms.
	depart := at
	if d := sim.Time(int64(s.tat) - s.tauNs); d > depart {
		depart = d
	}
	if depart > at {
		if s.queued >= s.cfg.QueuePkts {
			s.stats.Dropped++
			s.drops.Inc()
			return
		}
		s.queued++
		if s.queued > s.stats.QueuePeak {
			s.stats.QueuePeak = s.queued
		}
		s.stats.Delayed++
		delay := sim.Duration(depart - at)
		s.stats.DelaySum += delay
		if delay > s.stats.DelayMax {
			s.stats.DelayMax = delay
		}
	}
	if s.tat < depart {
		s.tat = depart
	}
	s.tat += emission
	held := depart > at
	s.act.Post(depart, func() {
		if held {
			s.queued--
		}
		s.stats.Delivered++
		s.deliver.Inc()
		s.down.Receive(pk, depart)
	})
}

// post forwards a conforming frame at its arrival instant. Everything
// goes through the engine — matching fault.Injector — so same-instant
// arrivals fire in creation order on every shard layout.
func (s *Shaper) post(pk *packet.Packet, at sim.Time) {
	s.act.Post(at, func() {
		s.stats.Delivered++
		s.deliver.Inc()
		s.down.Receive(pk, at)
	})
}

// ThrottleEnv returns a copy of env with a token bucket spliced in
// front of the recorder. An existing WrapRecorder is preserved — the
// bucket stacks in front of it, exactly like fault.Plan.PerturbEnv, so
// fault plans and throttling compose. Each shaper built is appended to
// *made (when non-nil) so callers can read Stats after a run.
func ThrottleEnv(env testbed.Env, cfg Config, made *[]*Shaper) testbed.Env {
	prev := env.WrapRecorder
	env.WrapRecorder = func(eng *sim.Engine, down nic.Endpoint) nic.Endpoint {
		if prev != nil {
			down = prev(eng, down)
		}
		s, err := New(eng, cfg, down)
		if err != nil {
			// Unreachable for validated configs: eng/down are non-nil.
			panic(fmt.Sprintf("shaper: ThrottleEnv: %v", err))
		}
		if made != nil {
			*made = append(*made, s)
		}
		return s
	}
	return env
}
