package sim

import "testing"

// TestStepBudgetHalts: the engine stops firing events once the budget
// is reached, deterministically at the same event, and reports it.
func TestStepBudgetHalts(t *testing.T) {
	runWithBudget := func(budget uint64) (fired int, now Time) {
		e := NewEngine(1)
		e.SetStepBudget(budget)
		var n int
		// A self-perpetuating schedule: unlimited, it would never drain
		// before the RunUntil horizon.
		var tick func()
		tick = func() {
			n++
			e.PostAfter(10, tick)
		}
		e.Post(0, tick)
		e.RunUntil(Second)
		return n, e.Now()
	}

	fired, _ := runWithBudget(25)
	if fired != 25 {
		t.Fatalf("fired %d events under a budget of 25", fired)
	}
	again, _ := runWithBudget(25)
	if again != fired {
		t.Fatalf("budget halt not deterministic: %d vs %d", again, fired)
	}

	e := NewEngine(1)
	e.SetStepBudget(3)
	for i := 0; i < 10; i++ {
		e.Post(Time(i), func() {})
	}
	e.RunUntil(100)
	if !e.BudgetExhausted() {
		t.Fatal("BudgetExhausted false after halting")
	}
	if e.Executed() != 3 {
		t.Fatalf("executed %d, want 3", e.Executed())
	}
	if e.Step() {
		t.Fatal("Step fired past an exhausted budget")
	}
}

// TestZeroBudgetUnlimited: the default budget never halts anything.
func TestZeroBudgetUnlimited(t *testing.T) {
	e := NewEngine(1)
	n := 0
	for i := 0; i < 1000; i++ {
		e.Post(Time(i), func() { n++ })
	}
	e.RunUntil(Second)
	if n != 1000 || e.BudgetExhausted() {
		t.Fatalf("unlimited engine fired %d/1000 (exhausted=%v)", n, e.BudgetExhausted())
	}
}
