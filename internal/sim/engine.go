// Package sim provides a deterministic discrete-event simulation engine
// with nanosecond-resolution virtual time.
//
// The engine is the substrate every other component in this repository is
// built on: NICs, switches, clocks, traffic generators and the Choir
// middlebox all advance by scheduling callbacks on a shared Engine. Events
// scheduled for the same instant run in schedule order (FIFO), which makes
// every simulation bit-for-bit reproducible for a fixed seed.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. Simulated time is unrelated to host wall-clock time.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations, mirroring package time for readability.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders the time as a nanosecond count with unit.
func (t Time) String() string { return fmt.Sprintf("%dns", int64(t)) }

// Seconds converts the time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Event is a scheduled callback. Cancelled events stay in the heap but are
// skipped when popped; this keeps cancellation O(1).
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
}

// At returns the time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Safe to call multiple times and
// after the event has fired (in which case it is a no-op).
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel has been called.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all simulated components run inside event callbacks.
type Engine struct {
	now      Time
	seq      uint64
	events   eventHeap
	seed     int64
	executed uint64
}

// NewEngine returns an engine whose random streams derive from seed.
// The same seed always produces the same simulation.
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed}
}

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events that have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been popped).
func (e *Engine) Pending() int { return len(e.events) }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it would violate causality and always indicates a
// component bug.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After queues fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Step fires the next pending event. It returns false when no runnable
// events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to deadline (even if the queue drained earlier).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 {
		// Peek cheapest event.
		next := e.events[0]
		if next.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor runs the simulation for d nanoseconds of virtual time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now + d) }

// Rand returns a deterministic random stream derived from the engine seed
// and a label. Components should each use their own label so that adding a
// new component does not perturb existing streams.
func (e *Engine) Rand(label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", e.seed, label)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}
