// Package sim provides a deterministic discrete-event simulation engine
// with nanosecond-resolution virtual time.
//
// The engine is the substrate every other component in this repository is
// built on: NICs, switches, clocks, traffic generators and the Choir
// middlebox all advance by scheduling callbacks on a shared Engine. Events
// scheduled for the same instant run in schedule order (FIFO), which makes
// every simulation bit-for-bit reproducible for a fixed seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
)

// ErrStepBudget is the sentinel error callers wrap when a simulation
// halted because its step budget ran out (see Engine.SetStepBudget).
var ErrStepBudget = errors.New("sim: step budget exhausted")

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. Simulated time is unrelated to host wall-clock time.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations, mirroring package time for readability.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders the time as a nanosecond count with unit.
func (t Time) String() string { return fmt.Sprintf("%dns", int64(t)) }

// Seconds converts the time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Event is a scheduled callback. Cancelled events are skipped when
// popped — cancellation itself is O(1) — and when cancellations pile up
// (mass-cancel workloads like pausing a long replay) the engine compacts
// them out of the heap so they cannot hold memory for the rest of a run.
type Event struct {
	at        Time
	lane      uint32
	seq       uint64
	fn        func()
	eng       *Engine
	cancelled bool
	pooled    bool
}

// At returns the time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Safe to call multiple times and
// after the event has fired (in which case it is a no-op).
func (e *Event) Cancel() {
	if e.cancelled {
		return
	}
	e.cancelled = true
	if e.eng != nil {
		e.eng.noteCancelled()
	}
}

// Cancelled reports whether Cancel has been called.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].lane != h[j].lane {
		return h[i].lane < h[j].lane
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all simulated components run inside event callbacks.
// (Distinct engines are fully independent, which is what lets the
// parallel trial scheduler run one engine per worker.)
type Engine struct {
	now      Time
	seq      uint64
	events   eventHeap
	seed     int64
	executed uint64

	// budget, when non-zero, bounds how many events the engine will
	// fire: the per-trial sim-step budget the campaign runner uses as a
	// deterministic timeout. Once executed reaches the budget, Step and
	// RunUntil stop firing events (see SetStepBudget).
	budget uint64

	// free is the event free list backing Post/PostAfter. Pooled events
	// are never handed to callers, so recycling one can never confuse a
	// retained *Event handle.
	free []*Event
	// cancelled counts cancelled events still sitting in the heap; when
	// they dominate, the heap is compacted (see maybeCompact).
	cancelled int

	// lanes allocates actor lanes (see NewActor). Engines hosting parts
	// of one partitioned topology share a counter so lanes are globally
	// unique across the partition; a standalone engine owns its own.
	lanes *LaneCounter
	// router, when set, carries cross-engine actor sends (see Router).
	router Router
}

// freeListCap bounds the event free list so bursty schedules don't pin
// memory for the rest of a run.
const freeListCap = 4096

// compactMinHeap is the heap size below which compaction is never
// worth the re-heapify.
const compactMinHeap = 64

// NewEngine returns an engine whose random streams derive from seed.
// The same seed always produces the same simulation.
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed, lanes: &LaneCounter{}}
}

// NewEngineWithLanes returns an engine drawing actor lanes from a
// shared counter. All sub-engines of one partitioned topology are
// created this way with the same counter (and the same seed), which is
// what makes component lane numbers — and therefore the total event
// order — independent of how the topology is partitioned.
func NewEngineWithLanes(seed int64, lanes *LaneCounter) *Engine {
	if lanes == nil {
		lanes = &LaneCounter{}
	}
	return &Engine{seed: seed, lanes: lanes}
}

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events that have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of live (non-cancelled) events still
// queued. Cancelled tombstones awaiting pop or compaction are excluded,
// so diagnostics built on Pending (campaign degraded rows, psim horizon
// heuristics) see the work that will actually fire.
func (e *Engine) Pending() int { return len(e.events) - e.cancelled }

// PendingRaw returns the raw heap length, cancelled tombstones
// included — the quantity heap-compaction bounds guard.
func (e *Engine) PendingRaw() int { return len(e.events) }

// Schedule queues fn to run at absolute time at and returns a handle
// that can be retained and cancelled. Scheduling in the past (before
// Now) panics: it would violate causality and always indicates a
// component bug.
//
// Handle-returning events are always freshly allocated — the engine
// never recycles them, so a handle stays valid (and Cancel stays a
// no-op after firing) for the life of the simulation. Hot paths that
// discard the handle should use Post/PostAfter, which draw from the
// engine's event free list.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, eng: e}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After queues fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Post queues fn to run at absolute time at, without returning a
// handle. The backing event comes from the engine's free list and is
// recycled after it fires, so steady-state fire-and-forget scheduling
// (NIC drains, generator emissions, switch forwards) does not allocate
// event structs. Firing order is identical to Schedule: same (time,
// sequence) key, same panic on scheduling into the past.
func (e *Engine) Post(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: post at %v before now %v", at, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.fn, ev.cancelled = at, fn, false
	} else {
		ev = &Event{at: at, fn: fn, pooled: true}
	}
	ev.lane = 0 // recycled events may carry an actor lane
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
}

// push heap-inserts an event whose (at, lane, seq) key is already set.
func (e *Engine) push(ev *Event) { heap.Push(&e.events, ev) }

// PostAfter queues fn to run d nanoseconds from now, handle-free (see
// Post).
func (e *Engine) PostAfter(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Post(e.now+d, fn)
}

// recycle returns a pooled event to the free list.
func (e *Engine) recycle(ev *Event) {
	if !ev.pooled || len(e.free) >= freeListCap {
		return
	}
	ev.fn = nil // drop the closure reference
	e.free = append(e.free, ev)
}

// SetStepBudget bounds the total number of events this engine will ever
// fire (0 = unlimited, the default). A simulation that reaches the
// budget stops making progress: Step returns false and RunUntil drains
// no more events, so a runaway or livelocked trial terminates quickly
// and deterministically — the same budget always halts at the same
// event, which is what lets a trial-campaign timeout be replayable.
// Check BudgetExhausted to distinguish a budget halt from a drained
// queue.
func (e *Engine) SetStepBudget(n uint64) { e.budget = n }

// BudgetExhausted reports whether a step budget was set and has been
// used up.
func (e *Engine) BudgetExhausted() bool {
	return e.budget > 0 && e.executed >= e.budget
}

// Step fires the next pending event. It returns false when no runnable
// events remain or the step budget is exhausted.
func (e *Engine) Step() bool {
	if e.BudgetExhausted() {
		return false
	}
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			e.cancelled--
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.executed++
		fn := ev.fn
		// A late Cancel on a fired handle must be a true no-op: the
		// event is out of the heap, so counting a tombstone for it
		// would corrupt Pending() and trigger phantom compactions.
		ev.eng = nil
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to deadline (even if the queue drained earlier).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && !e.BudgetExhausted() {
		// Peek cheapest event.
		next := e.events[0]
		if next.cancelled {
			heap.Pop(&e.events)
			e.cancelled--
			e.recycle(next)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// noteCancelled records one more cancelled event in the heap and
// compacts when cancellations dominate. Without this, a mass cancel
// (pausing a replay with hundreds of thousands of armed bursts) would
// leave the heap holding every dead event — and its packet-burst
// closure — until simulated time happened to pop it.
func (e *Engine) noteCancelled() {
	e.cancelled++
	e.maybeCompact()
}

// maybeCompact rebuilds the heap without cancelled events once they
// outnumber the live ones (and the heap is big enough to care). The
// rebuild is O(n) and preserves the (time, sequence) firing order —
// Less is a total order over unique keys, so pop order, and therefore
// the simulation, is bit-identical with or without compaction.
func (e *Engine) maybeCompact() {
	if len(e.events) < compactMinHeap || e.cancelled*2 <= len(e.events) {
		return
	}
	live := e.events[:0]
	for _, ev := range e.events {
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		live = append(live, ev)
	}
	// Zero the tail so dropped events (and their closures) are
	// collectable.
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = live
	e.cancelled = 0
	heap.Init(&e.events)
}

// RunFor runs the simulation for d nanoseconds of virtual time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now + d) }

// Rand returns a deterministic random stream derived from the engine seed
// and a label. Components should each use their own label so that adding a
// new component does not perturb existing streams.
func (e *Engine) Rand(label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", e.seed, label)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}
