package sim

import "math/rand"

// StallTimeline models periods during which a (virtual) CPU is unavailable
// — hypervisor steal time, scheduler preemption, interrupt storms. Stalls
// form a renewal process: after each stall ends, the next one starts after
// a sampled gap and lasts for a sampled duration.
//
// Components call Adjust with the time they intend to act; if that instant
// falls inside a stall the action is pushed to the stall's end, exactly as
// a busy-polling DPDK thread would resume late after being descheduled.
type StallTimeline struct {
	rng       *rand.Rand
	gap       Dist
	dur       Dist
	start     Time // start of the current/next stall
	end       Time // end of the current/next stall
	enabled   bool
	stallHits uint64
}

// NewStallTimeline creates a timeline whose first stall begins after a gap
// sampled from gap. A nil gap or dur disables stalls entirely.
func NewStallTimeline(rng *rand.Rand, gap, dur Dist) *StallTimeline {
	s := &StallTimeline{rng: rng, gap: gap, dur: dur}
	if gap == nil || dur == nil {
		return s
	}
	s.enabled = true
	s.start = maxDur(0, gap.Sample(rng))
	s.end = s.start + maxDur(0, dur.Sample(rng))
	return s
}

// Adjust maps an intended action time to the earliest instant the CPU is
// actually available. Calls must use non-decreasing times (simulation
// order); earlier times are answered against the already-advanced window.
func (s *StallTimeline) Adjust(t Time) Time {
	if !s.enabled {
		return t
	}
	// Advance past stalls that ended before t.
	for s.end < t {
		s.advance()
	}
	if t >= s.start && t < s.end {
		s.stallHits++
		return s.end
	}
	return t
}

// Hits returns how many actions landed inside a stall so far.
func (s *StallTimeline) Hits() uint64 { return s.stallHits }

func (s *StallTimeline) advance() {
	g := maxDur(0, s.gap.Sample(s.rng))
	d := maxDur(0, s.dur.Sample(s.rng))
	s.start = s.end + g
	s.end = s.start + d
}

func maxDur(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}
