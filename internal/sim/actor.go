package sim

import (
	"fmt"
	"math/rand"
)

// This file is the engine's partitioning surface: lanes, actors and the
// router hook that let one topology run either on a single Engine or
// spread over several conservatively synchronized Engines (package
// psim) while producing bit-identical event orders.
//
// The core idea: the heap's tie-break for same-instant events must not
// depend on a global schedule counter (which a partitioned run cannot
// reproduce), so every scheduling component owns a *lane* — a small
// integer allocated in topology construction order — and a private
// per-lane sequence counter. Events order by (time, lane, laneSeq).
// Construction order is the same however the topology is partitioned,
// and a component's posts hit its own lane counter in the same order in
// any partitioning, so the total event order is partition-independent.

// LaneCounter allocates component lanes. Engines that host parts of the
// same partitioned topology share one counter so lane numbers are
// global across the partition (and equal to the single-engine run's).
type LaneCounter struct{ n uint32 }

// Actor is a component's scheduling handle: posts carry the actor's
// lane and per-lane sequence, making same-instant ordering a property
// of the component rather than of a global counter. Actors are created
// with Engine.NewActor during (single-threaded) topology construction
// and used only from their engine's event loop, like the Engine itself.
type Actor struct {
	eng  *Engine
	lane uint32
	seq  uint64
}

// Engine returns the engine this actor schedules on.
func (a *Actor) Engine() *Engine { return a.eng }

// Now returns the actor's engine time.
func (a *Actor) Now() Time { return a.eng.Now() }

// Post queues fn at absolute time at on the actor's lane (free-listed,
// no handle — see Engine.Post).
func (a *Actor) Post(at Time, fn func()) {
	a.seq++
	a.eng.postLane(at, a.lane, a.seq, fn)
}

// PostAfter queues fn d nanoseconds from now on the actor's lane;
// negative durations clamp to zero (fire now), matching
// Engine.PostAfter.
func (a *Actor) PostAfter(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	a.Post(a.eng.now+d, fn)
}

// Schedule queues fn at absolute time at on the actor's lane and
// returns a cancellable handle (freshly allocated, never recycled —
// see Engine.Schedule).
func (a *Actor) Schedule(at Time, fn func()) *Event {
	a.seq++
	return a.eng.scheduleLane(at, a.lane, a.seq, fn)
}

// After queues fn d nanoseconds from now on the actor's lane.
func (a *Actor) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return a.Schedule(a.eng.now+d, fn)
}

// Send queues fn at absolute time at on the engine that owns dst. When
// dst is nil or the actor's own engine this is a local Post; otherwise
// the event crosses to the destination engine through the partition's
// Router, carrying the actor's (lane, seq) key so the receiver merges
// it into exactly the slot the single-engine run would have used.
func (a *Actor) Send(dst *Engine, at Time, fn func()) {
	a.seq++
	if dst == nil || dst == a.eng {
		a.eng.postLane(at, a.lane, a.seq, fn)
		return
	}
	r := a.eng.router
	if r == nil {
		panic(fmt.Sprintf("sim: actor lane %d: cross-engine send without a router", a.lane))
	}
	r.Route(a.eng, dst, Crossing{At: at, Lane: a.lane, Seq: a.seq, Fn: fn})
}

// Rand derives a deterministic random stream from the engine seed and a
// label (see Engine.Rand — the stream is a pure function of seed and
// label, so it is identical on every engine of a partition).
func (a *Actor) Rand(label string) *rand.Rand { return a.eng.Rand(label) }

// Crossing is one event crossing engines in a partitioned run: the
// (time, lane, sequence) ordering key plus the callback, exactly what
// the destination heap needs to merge it deterministically.
type Crossing struct {
	At   Time
	Lane uint32
	Seq  uint64
	Fn   func()
}

// Router carries cross-engine sends in a partitioned run. Package psim
// provides the implementation; a single-engine run has none (and never
// needs one, because every Send is local).
type Router interface {
	// Link declares that src may send events to dst with the given
	// minimum latency (lookahead): every crossing issued while src
	// executes an event at time t satisfies At >= t + lookahead.
	// Declaring an edge twice keeps the smaller lookahead.
	Link(src, dst *Engine, lookahead Duration)
	// Route delivers one crossing from src to dst.
	Route(src, dst *Engine, c Crossing)
}

// SetRouter installs the partition router (psim calls this on every
// domain engine it creates).
func (e *Engine) SetRouter(r Router) { e.router = r }

// Router returns the installed partition router (nil on a standalone
// engine).
func (e *Engine) Router() Router { return e.router }

// NewActor allocates the next lane (construction-ordered) and returns
// an actor scheduling on this engine. Lane numbers come from the
// engine's lane counter, which partitioned engines share — so a
// component gets the same lane wherever it is placed.
func (e *Engine) NewActor() *Actor {
	e.lanes.n++
	return &Actor{eng: e, lane: e.lanes.n}
}

// Hosted is implemented by simulated components that can say which
// engine they run on. Wiring helpers (nic.Queue.Connect,
// netsw.Port.Attach, control.Bus.Send) probe their far end for it to
// route deliveries to the right engine of a partitioned run; endpoints
// that don't implement it are treated as local to the sender.
type Hosted interface {
	SimEngine() *Engine
}

// EngineOf resolves the engine hosting v, falling back to fallback for
// endpoints that don't implement Hosted (test sinks, local shims).
func EngineOf(v any, fallback *Engine) *Engine {
	if h, ok := v.(Hosted); ok {
		if eng := h.SimEngine(); eng != nil {
			return eng
		}
	}
	return fallback
}

// Inject merges a crossing delivered by the partition router into this
// engine's heap, preserving the sender-side (time, lane, seq) key. It
// must only be called from the goroutine currently driving this engine
// (psim's domain loop), never concurrently with Step/RunUntil on
// another goroutine. Injecting into the executed past panics: it means
// the partition's synchronization let a message arrive late.
func (e *Engine) Inject(c Crossing) {
	if c.At < e.now {
		panic(fmt.Sprintf("sim: inject at %v before now %v (lookahead violation)", c.At, e.now))
	}
	e.pushPooled(c.At, c.Lane, c.Seq, c.Fn)
}

// postLane is Post with an explicit (lane, seq) key.
func (e *Engine) postLane(at Time, lane uint32, seq uint64, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: post at %v before now %v", at, e.now))
	}
	e.pushPooled(at, lane, seq, fn)
}

// pushPooled heap-pushes a free-listed event with the given key.
func (e *Engine) pushPooled(at Time, lane uint32, seq uint64, fn func()) {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.fn, ev.cancelled = at, fn, false
	} else {
		ev = &Event{at: at, fn: fn, pooled: true}
	}
	ev.lane, ev.seq = lane, seq
	e.push(ev)
}

// scheduleLane is Schedule with an explicit (lane, seq) key.
func (e *Engine) scheduleLane(at Time, lane uint32, seq uint64, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, lane: lane, seq: seq, fn: fn, eng: e}
	e.push(ev)
	return ev
}

// NextEventAt returns the earliest queued timestamp (cancelled
// tombstones included — a conservative lower bound, which is what the
// partition's horizon promises need) and whether any event is queued.
func (e *Engine) NextEventAt() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// DistFloor returns a conservative lower bound on d's samples, for
// static lookahead computation: 0 when the distribution is unbounded
// below or unknown. Callers clamp negative samples to 0 on the event
// path, so the floor is never negative.
func DistFloor(d Dist) Duration {
	var lo Duration
	switch v := d.(type) {
	case nil:
		lo = 0
	case Constant:
		lo = v.V
	case Uniform:
		lo = v.Lo
	case Clamp:
		lo = v.Lo
	case Sum:
		lo = DistFloor(v.A) + DistFloor(v.B)
	default:
		lo = 0
	}
	if lo < 0 {
		lo = 0
	}
	return lo
}
