package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a distribution over durations, sampled with an explicit random
// stream so that callers control determinism.
type Dist interface {
	// Sample draws one value. Implementations may return negative
	// durations (e.g. symmetric jitter); callers clamp if needed.
	Sample(r *rand.Rand) Duration
	// Mean returns the distribution's expected value, used for
	// documentation and sanity checks.
	Mean() float64
	fmt.Stringer
}

// Constant is a degenerate distribution that always returns V.
type Constant struct{ V Duration }

// Sample implements Dist.
func (c Constant) Sample(_ *rand.Rand) Duration { return c.V }

// Mean implements Dist.
func (c Constant) Mean() float64 { return float64(c.V) }

func (c Constant) String() string { return fmt.Sprintf("const(%dns)", int64(c.V)) }

// Uniform samples uniformly from [Lo, Hi].
type Uniform struct{ Lo, Hi Duration }

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + Duration(r.Int63n(int64(u.Hi-u.Lo)+1))
}

// Mean implements Dist.
func (u Uniform) Mean() float64 { return float64(u.Lo+u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%d,%d)", int64(u.Lo), int64(u.Hi)) }

// Normal samples from a Gaussian with the given mean and standard
// deviation (both in nanoseconds).
type Normal struct {
	Mu    float64
	Sigma float64
}

// Sample implements Dist.
func (n Normal) Sample(r *rand.Rand) Duration {
	return Duration(math.Round(n.Mu + n.Sigma*r.NormFloat64()))
}

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

func (n Normal) String() string { return fmt.Sprintf("normal(%g,%g)", n.Mu, n.Sigma) }

// Exponential samples from an exponential distribution with the given
// mean, useful for renewal processes such as stall inter-arrival times.
type Exponential struct{ MeanNs float64 }

// Sample implements Dist.
func (e Exponential) Sample(r *rand.Rand) Duration {
	return Duration(math.Round(r.ExpFloat64() * e.MeanNs))
}

// Mean implements Dist.
func (e Exponential) Mean() float64 { return e.MeanNs }

func (e Exponential) String() string { return fmt.Sprintf("exp(%g)", e.MeanNs) }

// LogNormal samples exp(N(MuLog, SigmaLog)). It produces the heavy right
// tails characteristic of scheduler and hypervisor stalls.
type LogNormal struct {
	MuLog    float64
	SigmaLog float64
}

// Sample implements Dist.
func (l LogNormal) Sample(r *rand.Rand) Duration {
	return Duration(math.Round(math.Exp(l.MuLog + l.SigmaLog*r.NormFloat64())))
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.MuLog + l.SigmaLog*l.SigmaLog/2) }

func (l LogNormal) String() string { return fmt.Sprintf("lognormal(%g,%g)", l.MuLog, l.SigmaLog) }

// Mixture samples component i with probability Weights[i] (weights need
// not sum to one; they are normalized). It models bimodal behaviour such
// as "mostly tight timing with occasional large stalls".
type Mixture struct {
	Weights    []float64
	Components []Dist
}

// Sample implements Dist.
func (m Mixture) Sample(r *rand.Rand) Duration {
	if len(m.Components) == 0 {
		return 0
	}
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range m.Weights {
		x -= w
		if x < 0 {
			return m.Components[i].Sample(r)
		}
	}
	return m.Components[len(m.Components)-1].Sample(r)
}

// Mean implements Dist.
func (m Mixture) Mean() float64 {
	total, mean := 0.0, 0.0
	for i, w := range m.Weights {
		total += w
		mean += w * m.Components[i].Mean()
	}
	if total == 0 {
		return 0
	}
	return mean / total
}

func (m Mixture) String() string { return fmt.Sprintf("mixture(%d components)", len(m.Components)) }

// Clamp wraps a distribution and truncates samples into [Lo, Hi].
type Clamp struct {
	D      Dist
	Lo, Hi Duration
}

// Sample implements Dist.
func (c Clamp) Sample(r *rand.Rand) Duration {
	v := c.D.Sample(r)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// Mean implements Dist.
func (c Clamp) Mean() float64 { return c.D.Mean() }

func (c Clamp) String() string {
	return fmt.Sprintf("clamp(%v,[%d,%d])", c.D, int64(c.Lo), int64(c.Hi))
}

// Sum samples A and B independently and returns their sum. It composes
// an extra noise term onto an existing distribution — e.g. widening a
// clock-sync residual with an injected fault — without rewriting the
// base model.
type Sum struct{ A, B Dist }

// Sample implements Dist.
func (s Sum) Sample(r *rand.Rand) Duration { return s.A.Sample(r) + s.B.Sample(r) }

// Mean implements Dist.
func (s Sum) Mean() float64 { return s.A.Mean() + s.B.Mean() }

func (s Sum) String() string { return fmt.Sprintf("sum(%v,%v)", s.A, s.B) }

// Zero is a Dist that always samples 0; useful for "perfect hardware"
// test profiles.
var Zero Dist = Constant{0}
