package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndRunOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran in order %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Fatalf("final time %v, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: position %d has %d", i, v)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func() {})
}

func TestAfterClampsNegative(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.After(-100, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("event with negative delay never fired")
	}
	if e.Now() != 0 {
		t.Fatalf("negative delay should clamp to now; time = %v", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() {})
	e.Schedule(100, func() {})
	e.RunUntil(50)
	if e.Now() != 50 {
		t.Fatalf("RunUntil(50) left time at %v", e.Now())
	}
	if e.Executed() != 1 {
		t.Fatalf("executed %d events, want 1", e.Executed())
	}
	e.RunFor(60)
	if e.Now() != 110 {
		t.Fatalf("RunFor(60) left time at %v, want 110", e.Now())
	}
	if e.Executed() != 2 {
		t.Fatalf("executed %d events, want 2", e.Executed())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 50 {
			e.After(1, recurse)
		}
	}
	e.After(0, recurse)
	e.Run()
	if depth != 50 {
		t.Fatalf("nested chain depth %d, want 50", depth)
	}
	if e.Now() != 49 {
		t.Fatalf("final time %v, want 49", e.Now())
	}
}

func TestCausalityNeverRunsEarly(t *testing.T) {
	e := NewEngine(42)
	r := e.Rand("causality")
	last := Time(-1)
	for i := 0; i < 1000; i++ {
		at := Time(r.Int63n(10000))
		e.Schedule(at, func() {
			if e.Now() < last {
				t.Fatalf("time went backwards: %v after %v", e.Now(), last)
			}
			if e.Now() != at {
				t.Fatalf("event at %v ran at %v", at, e.Now())
			}
			last = e.Now()
		})
	}
	e.Run()
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine(seed)
		r := e.Rand("load")
		var times []Time
		var spawn func()
		spawn = func() {
			times = append(times, e.Now())
			if len(times) < 500 {
				e.After(Duration(r.Int63n(100)+1), spawn)
			}
		}
		e.After(0, spawn)
		e.Run()
		return times
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical simulations")
	}
}

func TestRandStreamsIndependent(t *testing.T) {
	e := NewEngine(9)
	a := e.Rand("alpha")
	b := e.Rand("beta")
	a2 := e.Rand("alpha")
	if a.Int63() != a2.Int63() {
		t.Fatal("same label should give identical streams")
	}
	// Different labels should give (almost surely) different streams.
	diff := false
	for i := 0; i < 8; i++ {
		if a.Int63() != b.Int63() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("streams for different labels are identical")
	}
}

func TestTimeHelpers(t *testing.T) {
	if Second != 1e9 {
		t.Fatalf("Second = %d", int64(Second))
	}
	if got := Time(1500000000).Seconds(); got != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", got)
	}
	if Time(42).String() != "42ns" {
		t.Fatalf("String() = %q", Time(42).String())
	}
}

// Property: RunUntil is equivalent to Run for deadlines past all events.
func TestQuickRunUntilCoversRun(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		mk := func() (*Engine, *int) {
			e := NewEngine(3)
			n := 0
			for _, v := range raw {
				e.Schedule(Time(v), func() { n++ })
			}
			return e, &n
		}
		e1, n1 := mk()
		e1.Run()
		e2, n2 := mk()
		e2.RunUntil(Time(1 << 20))
		return *n1 == *n2 && *n1 == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStallTimelineDisabled(t *testing.T) {
	s := NewStallTimeline(rand.New(rand.NewSource(1)), nil, nil)
	for _, tm := range []Time{0, 5, 100, 1e9} {
		if got := s.Adjust(tm); got != tm {
			t.Fatalf("disabled timeline adjusted %v to %v", tm, got)
		}
	}
}

func TestStallTimelinePushesIntoGap(t *testing.T) {
	// Deterministic stalls: gap 100ns, duration 50ns.
	// Stalls: [100,150), [250,300), [400,450), ...
	s := NewStallTimeline(rand.New(rand.NewSource(1)), Constant{100}, Constant{50})
	cases := []struct{ in, want Time }{
		{0, 0},
		{99, 99},
		{100, 150},
		{149, 150},
		{150, 150},
		{200, 200},
		{260, 300},
		{1000, 1000}, // between stalls [1000 is within? stalls at 100+150k..] depends; checked below
	}
	for _, c := range cases[:7] {
		if got := s.Adjust(c.in); got != c.want {
			t.Fatalf("Adjust(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if s.Hits() != 3 {
		t.Fatalf("Hits() = %d, want 3", s.Hits())
	}
}

func TestStallTimelineMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewStallTimeline(rng, Exponential{500}, LogNormal{MuLog: 3, SigmaLog: 1})
	last := Time(0)
	tm := Time(0)
	for i := 0; i < 10000; i++ {
		tm += Duration(rng.Int63n(50))
		got := s.Adjust(tm)
		if got < tm {
			t.Fatalf("Adjust moved time backwards: %v -> %v", tm, got)
		}
		if got < last {
			t.Fatalf("outputs not monotonic: %v after %v", got, last)
		}
		last = got
	}
	if s.Hits() == 0 {
		t.Fatal("expected at least one stall hit with these parameters")
	}
}

func TestDistSamplesAndMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 20000
	check := func(d Dist, tol float64) {
		t.Helper()
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(d.Sample(rng))
		}
		got := sum / n
		want := d.Mean()
		if want == 0 {
			if got != 0 {
				t.Fatalf("%v: mean %v, want 0", d, got)
			}
			return
		}
		if rel := (got - want) / want; rel > tol || rel < -tol {
			t.Fatalf("%v: sample mean %v, analytic mean %v", d, got, want)
		}
	}
	check(Constant{123}, 0)
	check(Uniform{10, 30}, 0.05)
	check(Exponential{200}, 0.05)
	check(LogNormal{MuLog: 4, SigmaLog: 0.5}, 0.08)
	check(Mixture{Weights: []float64{1, 1}, Components: []Dist{Constant{100}, Constant{300}}}, 0.05)
}

func TestNormalDistSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := Normal{Mu: 0, Sigma: 10}
	sum := 0.0
	for i := 0; i < 50000; i++ {
		sum += float64(d.Sample(rng))
	}
	if mean := sum / 50000; mean > 0.5 || mean < -0.5 {
		t.Fatalf("normal(0,10) sample mean %v, want ~0", mean)
	}
}

func TestClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := Clamp{D: Normal{Mu: 0, Sigma: 100}, Lo: -5, Hi: 5}
	for i := 0; i < 1000; i++ {
		v := d.Sample(rng)
		if v < -5 || v > 5 {
			t.Fatalf("clamped sample %v outside [-5,5]", v)
		}
	}
}

func TestMixtureWeighting(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := Mixture{
		Weights:    []float64{0.9, 0.1},
		Components: []Dist{Constant{0}, Constant{1000}},
	}
	big := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if d.Sample(rng) == 1000 {
			big++
		}
	}
	frac := float64(big) / n
	if frac < 0.07 || frac > 0.13 {
		t.Fatalf("heavy component sampled %.3f of the time, want ~0.10", frac)
	}
}

func TestMixtureEmpty(t *testing.T) {
	var m Mixture
	if m.Sample(rand.New(rand.NewSource(1))) != 0 {
		t.Fatal("empty mixture should sample 0")
	}
	if m.Mean() != 0 {
		t.Fatal("empty mixture mean should be 0")
	}
}

// TestPostMatchesScheduleOrdering asserts Post/PostAfter events interleave
// with Schedule events exactly as Schedule-only scheduling would: same
// (time, sequence) key space, one shared sequence counter.
func TestPostMatchesScheduleOrdering(t *testing.T) {
	run := func(post bool) []int {
		e := NewEngine(1)
		var order []int
		add := func(id int, at Time) {
			if post && id%2 == 0 {
				e.Post(at, func() { order = append(order, id) })
			} else {
				e.Schedule(at, func() { order = append(order, id) })
			}
		}
		// Mixed times including ties; ties must fire in schedule order.
		add(0, 50)
		add(1, 50)
		add(2, 10)
		add(3, 50)
		add(4, 10)
		add(5, 0)
		e.Run()
		return order
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverged at %d: schedule-only %v, mixed %v", i, a, b)
		}
	}
}

// TestPostRecyclesEvents verifies steady-state Post scheduling reuses
// pooled events instead of allocating a fresh struct per event.
func TestPostRecyclesEvents(t *testing.T) {
	e := NewEngine(1)
	var fired int
	var emit func()
	emit = func() {
		fired++
		if fired < 10000 {
			e.PostAfter(1, emit)
		}
	}
	e.PostAfter(0, emit)
	allocs := testing.AllocsPerRun(1, func() { e.Run() })
	if fired != 10000 {
		t.Fatalf("fired = %d, want 10000", fired)
	}
	// The whole 10k-event chain should complete with a handful of
	// allocations (the closure itself), not one event struct per post.
	if allocs > 50 {
		t.Fatalf("Run allocated %.0f times for a pooled event chain", allocs)
	}
}

// TestMassCancelCompactsHeap is the regression test for cancelled events
// lingering in the heap: pausing a long replay cancels hundreds of
// thousands of armed events at once, and before compaction they (and
// their closures) stayed queued until simulated time popped them.
func TestMassCancelCompactsHeap(t *testing.T) {
	e := NewEngine(1)
	const n = 100000
	evs := make([]*Event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, e.Schedule(Time(i+1)*Millisecond, func() {}))
	}
	// One live sentinel far in the future.
	var sentinel bool
	e.Schedule(Time(n+1)*Millisecond, func() { sentinel = true })
	for _, ev := range evs {
		ev.Cancel()
	}
	// Compaction must have evicted the dead events immediately, without
	// running the simulation forward.
	if p := e.Pending(); p > n/2 {
		t.Fatalf("heap still holds %d events after mass cancel (want <= %d)", p, n/2)
	}
	e.Run()
	if !sentinel {
		t.Fatal("live event lost during compaction")
	}
	if e.Now() != Time(n+1)*Millisecond {
		t.Fatalf("clock at %v, want %v", e.Now(), Time(n+1)*Millisecond)
	}
}

// TestCompactionPreservesDeterminism runs the same randomized
// schedule/cancel workload with compaction exercised and asserts the
// firing order matches a reference engine where nothing is cancelled
// except the same subset.
func TestCompactionPreservesDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type op struct {
		at     Time
		cancel bool
	}
	ops := make([]op, 5000)
	for i := range ops {
		ops[i] = op{at: Time(rng.Intn(1000)), cancel: rng.Intn(3) == 0}
	}
	run := func() []int {
		e := NewEngine(1)
		var order []int
		var cancels []*Event
		for i, o := range ops {
			id := i
			ev := e.Schedule(o.at, func() { order = append(order, id) })
			if o.cancel {
				cancels = append(cancels, ev)
			}
		}
		for _, ev := range cancels {
			ev.Cancel() // triggers maybeCompact once cancels dominate
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("length diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverged at %d", i)
		}
	}
}

// TestCancelPooledNever ensures Cancel on a fired-and-recycled pooled
// event can never happen: Post never exposes handles, so the only
// cancellable events are Schedule's, which are never recycled.
func TestScheduleHandleStableAfterFire(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(5, func() {})
	// Heavy pooled traffic that would recycle ev if Schedule events were
	// pooled.
	for i := 0; i < 100; i++ {
		e.Post(Time(i), func() {})
	}
	e.Run()
	ev.Cancel() // must be a harmless no-op on the original event
	if ev.At() != 5 {
		t.Fatalf("handle mutated after fire: at=%v", ev.At())
	}
}
