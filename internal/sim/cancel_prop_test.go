package sim

import (
	"math/rand"
	"testing"
)

// TestMassCancelPostReuseProperty is the free-list safety property: any
// interleaving of handle scheduling, mass cancellation (the pause-replay
// workload that drives heap compaction) and pooled Post reuse must never
// resurrect a cancelled event, double-fire a recycled one, or lose a
// live one — and the Pending()/PendingRaw() split must stay consistent
// with what actually fires.
func TestMassCancelPostReuseProperty(t *testing.T) {
	eng := NewEngine(99)
	rng := rand.New(rand.NewSource(7))

	const waves, perWave = 60, 300
	fired := make(map[int]int)
	expect := make(map[int]bool) // id → must fire exactly once
	type handle struct {
		ev *Event
		id int
	}
	var live []handle
	id := 0

	for wave := 0; wave < waves; wave++ {
		base := eng.Now()
		for j := 0; j < perWave; j++ {
			at := base + Duration(rng.Intn(1000))
			myid := id
			id++
			expect[myid] = true
			if rng.Intn(2) == 0 {
				ev := eng.Schedule(at, func() { fired[myid]++ })
				live = append(live, handle{ev, myid})
			} else {
				// Handle-free: draws from (and later refills) the free
				// list the cancelled tombstones are recycled into.
				eng.Post(at, func() { fired[myid]++ })
			}
		}
		// Mass-cancel a random third of the outstanding handles — enough
		// to push the heap over the compaction threshold repeatedly.
		for _, h := range live {
			if rng.Intn(3) != 0 {
				continue
			}
			if fired[h.id] == 0 && !h.ev.Cancelled() {
				h.ev.Cancel()
				expect[h.id] = false
			} else {
				// Cancelling an already-fired handle must be a no-op.
				h.ev.Cancel()
			}
		}
		if got := eng.Pending(); got < 0 || got > eng.PendingRaw() {
			t.Fatalf("wave %d: Pending %d out of range [0, %d]", wave, got, eng.PendingRaw())
		}
		// Partially drain so later waves reuse pooled events that carried
		// earlier lanes/closures, interleaved with live tombstones.
		eng.RunUntil(base + Duration(rng.Intn(1400)))
		if rng.Intn(2) == 0 {
			live = live[:0]
		}
	}
	eng.Run()

	for i := 0; i < id; i++ {
		want := 0
		if expect[i] {
			want = 1
		}
		if fired[i] != want {
			t.Fatalf("event %d fired %d times, want %d (resurrected or double-recycled)", i, fired[i], want)
		}
	}
	if eng.Pending() != 0 || eng.PendingRaw() != 0 {
		t.Fatalf("drained engine reports %d pending (%d raw)", eng.Pending(), eng.PendingRaw())
	}
}

// TestCancelAfterFireKeepsPendingExact pins the regression the property
// test would catch statistically: a Cancel after the event fired must
// not count a tombstone against the heap.
func TestCancelAfterFireKeepsPendingExact(t *testing.T) {
	eng := NewEngine(1)
	ev := eng.Schedule(5, func() {})
	eng.Schedule(20, func() {})
	eng.RunUntil(10)
	ev.Cancel() // already fired: must be a true no-op
	if got := eng.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after cancelling a fired event, want 1", got)
	}
	if got := eng.PendingRaw(); got != 1 {
		t.Fatalf("PendingRaw() = %d, want 1", got)
	}
}
