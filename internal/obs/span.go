package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// This file is the causal span-tracing layer: where tracer.go records
// *packet* lifecycles on the simulated clock, SpanTracer records
// *request* lifecycles — the serving path of one tenant session
// (admission → spool → shard → watermark → WAL → render), or one
// campaign trial — as a tree of spans.
//
// Timestamps follow the replay-clock discipline ("Tracing Distributed
// Algorithms Using Replay Clocks"): each span carries a compound stamp
//
//	wall time        when it happened on the analysis host (latency
//	                 attribution: where the milliseconds went),
//	sim time         when it happened on the replayed timeline, if the
//	                 span touched one (set explicitly via Span.Sim), and
//	a causal counter a per-root atomic sequence ticked at every span
//	                 start and end, giving a total order of events
//	                 within one session tree that survives wall-clock
//	                 skew and is independent of export order.
//
// The discipline that makes the layer bit-replay-safe is inherited from
// the rest of the package and asserted differentially by the stream and
// serve tests: spans only *read* (wall clock, counters); they never
// draw from sim RNG streams, post engine events, or feed anything back
// into timing-sensitive code. Engine output with span tracing enabled
// is byte-identical to the same run with it disabled.
//
// All methods are nil-safe no-ops on a nil *SpanTracer or nil *Span, so
// disabled tracing costs one predictable branch per call site.

// SpanID identifies a span within its tracer. IDs are dense and
// allocation-ordered; 0 is never issued (it marks "no parent").
type SpanID uint64

// String renders the ID the way exports and exemplars spell it.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// DefaultSpanMax bounds one tracer's retained spans (ended + open).
// Past it, new spans are counted as dropped rather than recorded — the
// same contract as the packet tracer's event cap.
const DefaultSpanMax = 1 << 16

// SpanTracer records causal span trees. Create one per scope that needs
// an isolated trace (choird makes one per tenant session); export with
// WriteJSON. Safe for concurrent use from any number of goroutines.
type SpanTracer struct {
	max     int
	epoch   int64 // wall ns at creation: export timestamps are epoch-relative
	ids     atomic.Uint64
	dropped atomic.Int64

	mu   sync.Mutex
	done []spanRec
	open map[SpanID]*Span
	tids map[string]int
	seq  int
}

// NewSpanTracer creates a tracer retaining at most max spans
// (max <= 0 uses DefaultSpanMax).
func NewSpanTracer(max int) *SpanTracer {
	if max <= 0 {
		max = DefaultSpanMax
	}
	return &SpanTracer{
		max:   max,
		epoch: time.Now().UnixNano(),
		open:  make(map[SpanID]*Span),
		tids:  make(map[string]int),
	}
}

// Span is one node of a causal trace tree. A span is owned by the code
// path that created it, but Child, Attr and End are safe to call from
// any goroutine (the stream engine fans children out across workers).
type Span struct {
	st     *SpanTracer
	root   *Span // self for roots
	causal atomic.Uint64

	id     SpanID
	parent SpanID
	name   string
	track  string

	mu        sync.Mutex
	startWall int64
	startSeq  uint64
	simNs     int64
	simSet    bool
	attrs     []Label
	errText   string
	ended     bool
	endWall   int64
	endSeq    uint64
}

// spanRec is an ended span flattened for retention and export.
type spanRec struct {
	id, parent, root   SpanID
	name, track        string
	startWall, endWall int64
	startSeq, endSeq   uint64
	simNs              int64
	simSet             bool
	attrs              []Label
	errText            string
	open               bool
}

// Dropped returns spans discarded after the retention cap was hit.
func (st *SpanTracer) Dropped() int64 {
	if st == nil {
		return 0
	}
	return st.dropped.Load()
}

// Len returns the number of ended spans retained.
func (st *SpanTracer) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.done)
}

// OpenCount returns spans begun but not yet ended.
func (st *SpanTracer) OpenCount() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.open)
}

// newSpan allocates and registers a span, or counts a drop and returns
// nil when the tracer is full (nil spans no-op all the way down, so a
// saturated tracer quietly stops recording instead of growing).
func (st *SpanTracer) newSpan(root *Span, parent SpanID, name, track string, attrs []Label) *Span {
	st.mu.Lock()
	if len(st.done)+len(st.open) >= st.max {
		st.mu.Unlock()
		st.dropped.Add(1)
		return nil
	}
	st.mu.Unlock()

	s := &Span{
		st:        st,
		parent:    parent,
		name:      name,
		track:     track,
		id:        SpanID(st.ids.Add(1)),
		startWall: time.Now().UnixNano(),
	}
	if root == nil {
		s.root = s
	} else {
		s.root = root
	}
	s.startSeq = s.root.causal.Add(1)
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	st.mu.Lock()
	st.open[s.id] = s
	st.mu.Unlock()
	return s
}

// Root opens a new root span: the top of one causal tree (one session,
// one trial). track names the export row (Perfetto thread).
func (st *SpanTracer) Root(name, track string, attrs ...Label) *Span {
	if st == nil {
		return nil
	}
	return st.newSpan(nil, 0, name, track, attrs)
}

// Child opens a sub-span. track == "" inherits the parent's track.
func (s *Span) Child(name, track string, attrs ...Label) *Span {
	if s == nil {
		return nil
	}
	if track == "" {
		track = s.track
	}
	return s.st.newSpan(s.root, s.id, name, track, attrs)
}

// ID returns the span's ID (0 on nil — the "no span" value).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// RootID returns the ID of the span's root.
func (s *Span) RootID() SpanID {
	if s == nil {
		return 0
	}
	return s.root.id
}

// Attr attaches a key/value pair. Later values for the same key win at
// export; attrs are kept small (they ride in every export record).
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
	s.mu.Unlock()
}

// AttrInt attaches an integer attribute.
func (s *Span) AttrInt(key string, v int64) { s.Attr(key, fmt.Sprintf("%d", v)) }

// SetError marks the span failed. A nil err is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errText = err.Error()
	s.mu.Unlock()
}

// Sim stamps the span with a position on the replayed timeline (e.g.
// the watermark that closed, the window being scored). The wall clock
// says where host time went; this says where *simulated* time was.
func (s *Span) Sim(at sim.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.simNs = int64(at)
	s.simSet = true
	s.mu.Unlock()
}

// End closes the span: the end stamp (wall + causal) is taken, and the
// record moves from the tracer's open set to its retained buffer.
// Idempotent; a span that is never ended exports as open (how the
// choirtrace analyzer spots stalls).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.endWall = time.Now().UnixNano()
	s.endSeq = s.root.causal.Add(1)
	rec := s.record(false)
	s.mu.Unlock()

	s.st.mu.Lock()
	delete(s.st.open, s.id)
	s.st.done = append(s.st.done, rec)
	s.st.mu.Unlock()
}

// record flattens the span; the caller holds s.mu.
func (s *Span) record(open bool) spanRec {
	return spanRec{
		id: s.id, parent: s.parent, root: s.root.id,
		name: s.name, track: s.track,
		startWall: s.startWall, endWall: s.endWall,
		startSeq: s.startSeq, endSeq: s.endSeq,
		simNs: s.simNs, simSet: s.simSet,
		attrs:   append([]Label(nil), s.attrs...),
		errText: s.errText,
		open:    open,
	}
}

// snapshot copies ended spans plus the current state of open ones.
// Open-span end stamps are synthesized at "now" so their exported
// duration means "age so far". A span that ends mid-snapshot appears
// exactly once (deduplicated by ID).
func (st *SpanTracer) snapshot() []spanRec {
	now := time.Now().UnixNano()

	st.mu.Lock()
	openList := make([]*Span, 0, len(st.open))
	for _, s := range st.open {
		openList = append(openList, s)
	}
	recs := make([]spanRec, len(st.done))
	copy(recs, st.done)
	st.mu.Unlock()

	seen := make(map[SpanID]bool, len(recs))
	for i := range recs {
		seen[recs[i].id] = true
	}
	for _, s := range openList {
		s.mu.Lock()
		var rec spanRec
		if s.ended {
			rec = s.record(false) // ended between the two copies above
		} else {
			rec = s.record(true)
			rec.endWall = now
			rec.endSeq = s.root.causal.Load()
		}
		s.mu.Unlock()
		if !seen[rec.id] {
			seen[rec.id] = true
			recs = append(recs, rec)
		}
	}
	// Allocation order == causal-compatible stable order for export.
	slices.SortFunc(recs, func(a, b spanRec) int {
		switch {
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		}
		return 0
	})
	return recs
}

// tidFor maps a track name to a stable Perfetto thread ID; caller holds
// st.mu.
func (st *SpanTracer) tidFor(track string) int {
	id, ok := st.tids[track]
	if !ok {
		st.seq++
		id = st.seq
		st.tids[track] = id
	}
	return id
}

// spanProcessPid separates span tracks from the packet tracer's (pid 1)
// when both land in one Perfetto view.
const spanProcessPid = 2

// WriteJSON exports the trace as Chrome trace_event JSON — the same
// dialect tracer.go emits, so a dump opens directly in Perfetto. Every
// span is a complete ('X') event with epoch-relative wall-µs ts/dur and
// args carrying the causal identity:
//
//	span, parent, root   16-hex-digit span IDs ("0...0" parent = root)
//	seq0, seq1           the per-root causal counter at start and end
//	sim_ns               the replay-clock position, when stamped
//	error                the error text, when failed
//	open                 "true" for spans still open at export
//
// plus every user attribute. cmd/choirtrace consumes exactly this
// schema.
func (st *SpanTracer) WriteJSON(w io.Writer) error {
	if st == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ns"}`)
		return err
	}
	recs := st.snapshot()

	var raw []json.RawMessage
	appendEv := func(v interface{}) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		raw = append(raw, b)
		return nil
	}

	// Resolve track IDs for every record up front (stable first-use
	// numbering), then emit name metadata in tid order.
	st.mu.Lock()
	for _, r := range recs {
		st.tidFor(r.track)
	}
	tids := make(map[string]int, len(st.tids))
	for k, v := range st.tids {
		tids[k] = v
	}
	st.mu.Unlock()

	if err := appendEv(map[string]interface{}{
		"name": "process_name", "ph": "M", "pid": spanProcessPid,
		"args": map[string]string{"name": "choir-spans"},
	}); err != nil {
		return err
	}
	tracks := make([]string, 0, len(tids))
	for name := range tids {
		tracks = append(tracks, name)
	}
	slices.SortFunc(tracks, func(a, b string) int { return tids[a] - tids[b] })
	for _, name := range tracks {
		if err := appendEv(map[string]interface{}{
			"name": "thread_name", "ph": "M", "pid": spanProcessPid, "tid": tids[name],
			"args": map[string]string{"name": name},
		}); err != nil {
			return err
		}
	}

	for _, r := range recs {
		dur := float64(r.endWall-r.startWall) / 1e3
		if dur < 0 {
			dur = 0
		}
		args := map[string]string{
			"span":   r.id.String(),
			"parent": r.parent.String(),
			"root":   r.root.String(),
			"seq0":   fmt.Sprintf("%d", r.startSeq),
			"seq1":   fmt.Sprintf("%d", r.endSeq),
		}
		if r.simSet {
			args["sim_ns"] = fmt.Sprintf("%d", r.simNs)
		}
		if r.errText != "" {
			args["error"] = r.errText
		}
		if r.open {
			args["open"] = "true"
		}
		for _, a := range r.attrs {
			args[a.Key] = a.Value
		}
		je := jsonEvent{
			Name: r.name, Cat: "span", Ph: "X",
			Ts:  float64(r.startWall-st.epoch) / 1e3,
			Pid: spanProcessPid, Tid: tids[r.track], Args: args,
		}
		je.Dur = &dur
		if err := appendEv(je); err != nil {
			return err
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(jsonTrace{TraceEvents: raw, DisplayTimeUnit: "ns"})
}

// String summarizes the tracer for end-of-run reporting.
func (st *SpanTracer) String() string {
	if st == nil {
		return "spans: disabled"
	}
	return fmt.Sprintf("spans: %d ended, %d open, %d dropped", st.Len(), st.OpenCount(), st.Dropped())
}
