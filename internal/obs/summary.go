package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/report"
)

// SummaryTable renders the registry's current state as an aligned text
// table — the end-of-run telemetry block the CLIs print. Histograms are
// summarized as count/sum/mean; empty series are skipped.
func SummaryTable(r *Registry) *report.Table {
	t := report.NewTable("run telemetry", "metric", "labels", "value")
	if r == nil {
		return t
	}
	for _, fam := range r.Snapshot() {
		for _, s := range fam.Series {
			labels := ""
			if len(s.Labels) > 0 {
				keys := make([]string, 0, len(s.Labels))
				for k := range s.Labels {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				parts := make([]string, len(keys))
				for i, k := range keys {
					parts[i] = k + "=" + s.Labels[k]
				}
				labels = strings.Join(parts, ",")
			}
			switch {
			case s.Count != nil:
				if *s.Count == 0 {
					continue
				}
				mean := float64(*s.Sum) / float64(*s.Count)
				t.AddRow(fam.Name, labels,
					fmt.Sprintf("n=%d sum=%d mean=%.1f", *s.Count, *s.Sum, mean))
			case s.Value != nil:
				if *s.Value == 0 {
					continue
				}
				val := formatFloat(*s.Value)
				if fam.Name == "obs_trace_dropped_total" {
					// A nonzero drop count means the trace is incomplete —
					// surface it loudly, not as just another number.
					val += "  WARNING: trace events dropped (raise -trace-sample or the span cap)"
				}
				t.AddRow(fam.Name, labels, val)
			}
		}
	}
	return t
}
