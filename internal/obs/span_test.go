package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestSpanTreeBasics: IDs, parent/root linkage, causal counters, attrs,
// errors and sim stamps land in the records.
func TestSpanTreeBasics(t *testing.T) {
	st := NewSpanTracer(0)
	root := st.Root("session", "session", L("tenant", "t1"))
	if root.ID() == 0 || root.RootID() != root.ID() {
		t.Fatalf("root identity: id=%v rootID=%v", root.ID(), root.RootID())
	}
	child := root.Child("admission", "admission")
	if child.RootID() != root.ID() {
		t.Fatalf("child rootID = %v, want %v", child.RootID(), root.ID())
	}
	grand := child.Child("inner", "") // inherits track
	if grand.track != "admission" {
		t.Fatalf("track inheritance: got %q", grand.track)
	}
	child.AttrInt("bytes", 42)
	child.SetError(fmt.Errorf("refused"))
	grand.Sim(sim.Time(7_000))
	grand.End()
	child.End()
	root.End()

	if st.Len() != 3 || st.OpenCount() != 0 || st.Dropped() != 0 {
		t.Fatalf("retention: len=%d open=%d dropped=%d", st.Len(), st.OpenCount(), st.Dropped())
	}
	// Causal counters: every start and end ticked the per-root sequence,
	// so the six events have distinct, ordered stamps.
	recs := st.snapshot()
	byName := map[string]spanRec{}
	for _, r := range recs {
		byName[r.name] = r
	}
	if byName["session"].startSeq >= byName["admission"].startSeq ||
		byName["admission"].startSeq >= byName["inner"].startSeq ||
		byName["inner"].endSeq >= byName["admission"].endSeq ||
		byName["admission"].endSeq >= byName["session"].endSeq {
		t.Fatalf("causal order violated: %+v", byName)
	}
	if !byName["inner"].simSet || byName["inner"].simNs != 7_000 {
		t.Fatalf("sim stamp: %+v", byName["inner"])
	}
	if byName["admission"].errText != "refused" {
		t.Fatalf("error text: %+v", byName["admission"])
	}
}

// TestSpanEndIdempotent: double End records the span once.
func TestSpanEndIdempotent(t *testing.T) {
	st := NewSpanTracer(0)
	s := st.Root("r", "t")
	s.End()
	s.End()
	if st.Len() != 1 {
		t.Fatalf("len = %d after double End", st.Len())
	}
}

// TestSpanCapAndDropped: past the retention cap new spans are counted
// dropped and return nil (which no-ops all the way down).
func TestSpanCapAndDropped(t *testing.T) {
	st := NewSpanTracer(2)
	a := st.Root("a", "t")
	b := a.Child("b", "")
	c := a.Child("c", "") // over cap
	if c != nil {
		t.Fatalf("span over cap = %v, want nil", c)
	}
	c.Attr("k", "v") // must not panic
	c.End()
	if st.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped())
	}
	b.End()
	a.End()
	if st.Len() != 2 {
		t.Fatalf("len = %d, want 2", st.Len())
	}
}

// TestSpanNilSafety: every method on nil tracers and spans is a no-op.
func TestSpanNilSafety(t *testing.T) {
	var st *SpanTracer
	if st.Dropped() != 0 || st.Len() != 0 || st.OpenCount() != 0 {
		t.Fatal("nil tracer counters")
	}
	s := st.Root("r", "t")
	if s != nil {
		t.Fatalf("nil tracer Root = %v", s)
	}
	s.Attr("k", "v")
	s.AttrInt("n", 1)
	s.SetError(fmt.Errorf("x"))
	s.Sim(1)
	s.End()
	if s.Child("c", "") != nil || s.ID() != 0 || s.RootID() != 0 {
		t.Fatal("nil span derived values")
	}
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("nil tracer export is not JSON: %v", err)
	}
	var o *Obs
	if o.SpanTrace() != nil {
		t.Fatal("nil Obs SpanTrace")
	}
}

// TestSpanJSONSchema validates the export schema choirtrace consumes:
// process/thread metadata, complete events with span/parent/root 16-hex
// IDs, seq0/seq1 counters, sim_ns, error and open markers, user attrs.
func TestSpanJSONSchema(t *testing.T) {
	st := NewSpanTracer(0)
	root := st.Root("session", "session", L("tenant", "t9"))
	child := root.Child("compare", "compare")
	child.Sim(sim.Time(123456))
	child.SetError(fmt.Errorf("boom"))
	child.End()
	stuck := root.Child("wal", "wal")
	_ = stuck // never ended: must export open
	root.End()

	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Ts   *float64          `json:"ts"`
			Dur  *float64          `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}

	spans := map[string]map[string]string{}
	sawProcess := false
	tracks := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" && ev.Args["name"] == "choir-spans" {
				sawProcess = true
			}
			if ev.Name == "thread_name" {
				tracks[ev.Args["name"]] = true
			}
			continue
		case "X":
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		if ev.Cat != "span" || ev.Pid != spanProcessPid || ev.Ts == nil || ev.Dur == nil || *ev.Dur < 0 {
			t.Fatalf("bad span event: %+v", ev)
		}
		for _, key := range []string{"span", "parent", "root"} {
			v := ev.Args[key]
			if len(v) != 16 {
				t.Fatalf("%s = %q, want 16 hex digits", key, v)
			}
			if _, err := strconv.ParseUint(v, 16, 64); err != nil {
				t.Fatalf("%s = %q not hex: %v", key, v, err)
			}
		}
		for _, key := range []string{"seq0", "seq1"} {
			if _, err := strconv.ParseUint(ev.Args[key], 10, 64); err != nil {
				t.Fatalf("%s = %q: %v", key, ev.Args[key], err)
			}
		}
		spans[ev.Name] = ev.Args
	}
	if !sawProcess {
		t.Fatal("no process_name metadata")
	}
	for _, track := range []string{"session", "compare", "wal"} {
		if !tracks[track] {
			t.Fatalf("missing thread_name for track %q (have %v)", track, tracks)
		}
	}
	if spans["session"]["tenant"] != "t9" {
		t.Fatalf("root attrs: %v", spans["session"])
	}
	if spans["compare"]["sim_ns"] != "123456" || spans["compare"]["error"] != "boom" {
		t.Fatalf("compare args: %v", spans["compare"])
	}
	if spans["wal"]["open"] != "true" {
		t.Fatalf("unended span not marked open: %v", spans["wal"])
	}
	if spans["compare"]["parent"] != spans["session"]["span"] ||
		spans["compare"]["root"] != spans["session"]["span"] {
		t.Fatalf("linkage: compare=%v session=%v", spans["compare"], spans["session"])
	}
}

// TestSpanConcurrentEmission hammers one tracer from many goroutines —
// multi-session span emission under the race detector (the serve path's
// concurrency shape: roots created concurrently, children fanned out,
// snapshots taken mid-flight).
func TestSpanConcurrentEmission(t *testing.T) {
	st := NewSpanTracer(0)
	const sessions, stages = 16, 24
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			root := st.Root("session", "session", L("n", fmt.Sprintf("%d", i)))
			var inner sync.WaitGroup
			for j := 0; j < stages; j++ {
				inner.Add(1)
				go func(j int) {
					defer inner.Done()
					c := root.Child("stage", "stage")
					c.AttrInt("j", int64(j))
					c.End()
				}(j)
			}
			inner.Wait()
			root.End()
		}(i)
	}
	// Concurrent export while trees are still being built.
	var exportWG sync.WaitGroup
	for k := 0; k < 4; k++ {
		exportWG.Add(1)
		go func() {
			defer exportWG.Done()
			var buf bytes.Buffer
			if err := st.WriteJSON(&buf); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	exportWG.Wait()

	want := sessions * (stages + 1)
	if st.Len() != want || st.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want len=%d dropped=0", st.Len(), st.Dropped(), want)
	}
	// Per-root causal counters must be dense: stages+1 spans, 2 ticks
	// each.
	ends := map[SpanID]uint64{}
	for _, r := range st.snapshot() {
		if r.endSeq > ends[r.root] {
			ends[r.root] = r.endSeq
		}
	}
	for root, max := range ends {
		if max != uint64(2*(stages+1)) {
			t.Fatalf("root %v: max seq %d, want %d", root, max, 2*(stages+1))
		}
	}
}

// TestGaugeExemplar: SetExemplar stores the span link, surfaces it in
// the JSON snapshot, and keeps the Prometheus text exposition clean
// (standard parsers must keep working — satellite of the le-bucket
// contract).
func TestGaugeExemplar(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("run_kappa", "running kappa")
	g.SetExemplar(0.875, SpanID(0xabc))
	if v := g.Value(); v != 0.875 {
		t.Fatalf("value = %v", v)
	}
	if ex := g.ExemplarSpan(); ex != SpanID(0xabc) {
		t.Fatalf("exemplar = %v", ex)
	}

	found := false
	for _, fam := range reg.Snapshot() {
		if fam.Name != "run_kappa" {
			continue
		}
		for _, s := range fam.Series {
			if s.ExemplarSpan == SpanID(0xabc).String() {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("exemplar_span missing from snapshot")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "exemplar") || strings.Contains(buf.String(), "abc") {
		t.Fatalf("exemplar leaked into text exposition:\n%s", buf.String())
	}
	// Plain Set clears nothing but updates the value; the exemplar stays
	// addressable.
	var nilG *Gauge
	nilG.SetExemplar(1, 2) // nil-safe
	if nilG.ExemplarSpan() != 0 {
		t.Fatal("nil gauge exemplar")
	}
}

// TestCounterFunc: callback counters evaluate at exposition time in
// both text and JSON form.
func TestCounterFunc(t *testing.T) {
	reg := NewRegistry()
	n := int64(3)
	reg.CounterFunc("obs_trace_dropped_total", "drops", func() int64 { return n })
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obs_trace_dropped_total 3") {
		t.Fatalf("text exposition:\n%s", buf.String())
	}
	n = 9
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obs_trace_dropped_total 9") {
		t.Fatalf("callback not re-evaluated:\n%s", buf.String())
	}
	for _, fam := range reg.Snapshot() {
		if fam.Name == "obs_trace_dropped_total" {
			if fam.Series[0].Value == nil || *fam.Series[0].Value != 9 {
				t.Fatalf("snapshot series: %+v", fam.Series[0])
			}
			return
		}
	}
	t.Fatal("family missing from snapshot")
}

// TestPrometheusHistogramCumulativeLE pins the exposition contract that
// makes histogram_quantile work against /metrics: _bucket series carry
// cumulative counts keyed by non-decreasing le upper bounds ending in
// +Inf, with _sum and _count to close the family.
func TestPrometheusHistogramCumulativeLE(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_ns", "latency", 6)
	for _, v := range []int64{0, 5, 99, 1_000, 54_321, 999_999, -42} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	var les []float64
	var counts []int64
	var sum, count int64
	sawSum, sawCount := false, false
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "lat_ns_bucket{"):
			i := strings.Index(line, `le="`)
			j := strings.Index(line[i+4:], `"`)
			leRaw := line[i+4 : i+4+j]
			var le float64
			if leRaw == "+Inf" {
				le = math.Inf(1)
			} else {
				var err error
				le, err = strconv.ParseFloat(leRaw, 64)
				if err != nil {
					t.Fatalf("le %q: %v", leRaw, err)
				}
			}
			fields := strings.Fields(line)
			c, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bucket count in %q: %v", line, err)
			}
			les = append(les, le)
			counts = append(counts, c)
		case strings.HasPrefix(line, "lat_ns_sum"):
			fmt.Sscanf(line, "lat_ns_sum %d", &sum)
			sawSum = true
		case strings.HasPrefix(line, "lat_ns_count"):
			fmt.Sscanf(line, "lat_ns_count %d", &count)
			sawCount = true
		}
	}
	if len(les) == 0 || !sawSum || !sawCount {
		t.Fatalf("missing series:\n%s", buf.String())
	}
	if !math.IsInf(les[len(les)-1], 1) {
		t.Fatalf("last le = %v, want +Inf", les[len(les)-1])
	}
	for i := 1; i < len(les); i++ {
		if les[i] <= les[i-1] {
			t.Fatalf("le bounds not increasing at %d: %v <= %v", i, les[i], les[i-1])
		}
		if counts[i] < counts[i-1] {
			t.Fatalf("bucket counts not cumulative at %d: %d < %d", i, counts[i], counts[i-1])
		}
	}
	if counts[len(counts)-1] != 7 || count != 7 {
		t.Fatalf("+Inf bucket %d / count %d, want 7", counts[len(counts)-1], count)
	}
}
