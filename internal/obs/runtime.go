package obs

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// This file is the shared run-telemetry toolkit: the peak-RSS and
// pkts/s reporting that cmd/choirstream used to hand-roll now lives here
// and is reused by every CLI.

// PeakRSSBytes returns the process's high-water resident set in bytes
// plus the source of the figure: "VmHWM" when /proc/self/status is
// available (Linux), "go-heap-sys" as the portable fallback.
func PeakRSSBytes() (int64, string) {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "VmHWM:") {
				fields := strings.Fields(line)
				if len(fields) >= 2 {
					if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
						return kb << 10, "VmHWM"
					}
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys), "go-heap-sys"
}

// FormatBytes renders a byte count in MiB, the unit the streaming-κ
// memory claims are quoted in.
func FormatBytes(b int64) string {
	return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
}

// PeakRSS renders the peak resident set for human output, annotating the
// fallback source when /proc is unavailable.
func PeakRSS() string {
	b, src := PeakRSSBytes()
	if src == "VmHWM" {
		return FormatBytes(b)
	}
	return FormatBytes(b) + " (" + src + ")"
}

// Meter measures a run's wall time for throughput reporting.
type Meter struct{ start time.Time }

// StartMeter begins timing.
func StartMeter() *Meter { return &Meter{start: time.Now()} }

// Elapsed returns the wall time since StartMeter.
func (m *Meter) Elapsed() time.Duration { return time.Since(m.start) }

// Throughput returns packets-per-second over the elapsed wall time.
func (m *Meter) Throughput(packets int64) float64 {
	s := m.Elapsed().Seconds()
	if s <= 0 {
		return 0
	}
	return float64(packets) / s
}

// ThroughputLine renders the standard "<pkts/s> (<n> packets in <wall>)"
// line the CLIs print.
func (m *Meter) ThroughputLine(packets int64) string {
	return fmt.Sprintf("%.0f pkts/s (%d packets in %v)",
		m.Throughput(packets), packets, m.Elapsed().Round(time.Millisecond))
}
