// Package obs is the repository's zero-dependency observability layer:
// a lock-cheap metrics registry (counters, gauges, symmetric-log
// histograms reusing internal/stats bucketing), a packet-lifecycle
// tracer that records spans in *simulated* nanoseconds and exports
// Chrome trace_event JSON (loadable in Perfetto / chrome://tracing),
// and run-level helpers (peak RSS, throughput) shared by the CLIs.
//
// Design rules, enforced throughout the tree:
//
//   - Every instrument method is nil-safe: a nil *Counter, *Gauge,
//     *Histogram, *Tracer or *Obs is a no-op. Hot paths guard with a
//     single nil check, so disabled observability costs one predictable
//     branch and instrumented benchmarks stay within noise of the
//     uninstrumented ones.
//   - Instruments never touch the simulation: no engine events, no
//     draws from sim RNG streams, no reads that feed back into timing.
//     A run with observability enabled is bit-identical to the same
//     seed with it disabled (asserted by differential tests).
//   - Hot-path updates are atomic (sync/atomic), so the same registry
//     serves the single-threaded simulator and the concurrent streaming
//     engine, and can be scraped from an HTTP goroutine mid-run.
package obs

// Obs bundles the pillars handed to instrumented subsystems: the
// metrics registry, the packet-lifecycle tracer, and the causal span
// tracer. Any field may be nil to enable a subset; a nil *Obs disables
// everything.
type Obs struct {
	Reg    *Registry
	Tracer *Tracer
	Spans  *SpanTracer
}

// New returns a handle with a fresh registry and no tracers.
func New() *Obs { return &Obs{Reg: NewRegistry()} }

// WithTracer attaches a tracer sampling 1-in-sampleN packets (by trailer
// tag) and returns o for chaining. sampleN <= 1 traces every packet.
func (o *Obs) WithTracer(sampleN int) *Obs {
	if o == nil {
		return nil
	}
	o.Tracer = NewTracer(sampleN)
	return o
}

// WithSpans attaches a causal span tracer retaining at most max spans
// (max <= 0 uses DefaultSpanMax) and returns o for chaining.
func (o *Obs) WithSpans(max int) *Obs {
	if o == nil {
		return nil
	}
	o.Spans = NewSpanTracer(max)
	return o
}

// Registry returns the registry, nil-safely.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Trace returns the tracer, nil-safely.
func (o *Obs) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// SpanTrace returns the causal span tracer, nil-safely.
func (o *Obs) SpanTrace() *SpanTracer {
	if o == nil {
		return nil
	}
	return o.Spans
}
