package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// ---- registry ----

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters are monotone: negative deltas ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value %d, want 5", got)
	}
}

func TestGaugeSetAndMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge %v, want 3.5", got)
	}
	g.Max(2) // below current: no change
	if got := g.Value(); got != 3.5 {
		t.Fatalf("Max lowered the gauge to %v", got)
	}
	g.MaxInt(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("MaxInt left %v, want 7", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "help", 3)
	for _, v := range []int64{0, 5, -12, 999, 100000} { // 100000 overflows decade 3 → clamped bucket
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if want := int64(0 + 5 - 12 + 999 + 100000); h.Sum() != want {
		t.Fatalf("sum %d, want %d", h.Sum(), want)
	}
}

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "h", L("k", "v"))
	b := r.Counter("same_total", "h", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("same_total", "h", L("k", "other"))
	if a == c {
		t.Fatal("different labels shared a counter")
	}
	if r.Gauge("g", "h") != r.Gauge("g", "h") {
		t.Fatal("gauge identity broken")
	}
	if r.Histogram("h", "h", 3) != r.Histogram("h", "h", 3) {
		t.Fatal("histogram identity broken")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflicted", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering conflicted as gauge did not panic")
		}
	}()
	r.Gauge("conflicted", "h")
}

func TestGaugeFuncAndGaugeValue(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("fn_gauge", "h", func() float64 { return v }, L("x", "1"))
	got, ok := r.GaugeValue("fn_gauge", L("x", "1"))
	if !ok || got != 1.5 {
		t.Fatalf("GaugeValue = %v,%v, want 1.5,true", got, ok)
	}
	v = 2.5
	if got, _ := r.GaugeValue("fn_gauge", L("x", "1")); got != 2.5 {
		t.Fatalf("callback gauge not re-evaluated: %v", got)
	}
	if _, ok := r.GaugeValue("fn_gauge", L("x", "2")); ok {
		t.Fatal("missing series reported ok")
	}
	if _, ok := r.GaugeValue("no_such"); ok {
		t.Fatal("missing family reported ok")
	}
	g := r.Gauge("plain_gauge", "h")
	g.Set(9)
	if got, ok := r.GaugeValue("plain_gauge"); !ok || got != 9 {
		t.Fatalf("plain GaugeValue = %v,%v", got, ok)
	}
	// Counter families are not gauges.
	r.Counter("ctr_total", "h")
	if _, ok := r.GaugeValue("ctr_total"); ok {
		t.Fatal("counter family answered GaugeValue")
	}
}

// TestNilSafety: every instrument, and the registry/tracer/obs handles
// themselves, must be no-ops when nil — this is the disabled path every
// hot loop relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "h") // nil registry → nil counter
	if c != nil {
		t.Fatal("nil registry returned a counter")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := r.Gauge("x", "h")
	g.Set(1)
	g.Max(2)
	g.SetInt(3)
	g.MaxInt(4)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	h := r.Histogram("x", "h", 3)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram holds observations")
	}
	r.GaugeFunc("x", "h", func() float64 { return 1 })
	if _, ok := r.GaugeValue("x"); ok {
		t.Fatal("nil registry answered GaugeValue")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var tr *Tracer
	tag := packet.Tag{Seq: 1}
	if tr.Sampled(tag) {
		t.Fatal("nil tracer sampled a tag")
	}
	tr.Begin(tag, "s", "trk", 0)
	tr.End(tag, "s", 1)
	tr.Span(tag, "s", "trk", 0, 1)
	tr.Instant(tag, "s", "trk", 0)
	tr.Event("e", "trk", 0, 1, nil)
	tr.Mark("m", "trk", 0, nil)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer recorded events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var empty struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil {
		t.Fatalf("nil tracer JSON invalid: %v", err)
	}

	var o *Obs
	if o.Registry() != nil || o.Trace() != nil || o.WithTracer(4) != nil {
		t.Fatal("nil Obs produced handles")
	}

	var cli *CLI
	if cli.Enabled() {
		t.Fatal("nil CLI enabled")
	}
	if err := cli.Start(); err != nil {
		t.Fatal(err)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("bbb_total", "b help", L("shard", "0")).Add(3)
	r.Counter("bbb_total", "b help", L("shard", "1")).Add(4)
	r.Gauge("aaa_gauge", "a help").Set(1.25)
	h := r.Histogram("ccc_ns", "c help", 2)
	for _, v := range []int64{-50, 0, 3, 40, 999} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")

	// Families sorted by name: aaa before bbb before ccc.
	if !strings.HasPrefix(lines[0], "# HELP aaa_gauge") {
		t.Fatalf("families not sorted; first line %q", lines[0])
	}
	for _, want := range []string{
		"# TYPE aaa_gauge gauge",
		"aaa_gauge 1.25",
		"# TYPE bbb_total counter",
		`bbb_total{shard="0"} 3`,
		`bbb_total{shard="1"} 4`,
		"# TYPE ccc_ns histogram",
		"ccc_ns_sum 992",
		"ccc_ns_count 5",
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Histogram buckets cumulative and non-decreasing, last == count.
	var last, bucketLines int64 = -1, 0
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "ccc_ns_bucket") {
			continue
		}
		bucketLines++
		fields := strings.Fields(ln)
		n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", ln, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative: %d after %d", n, last)
		}
		last = n
	}
	if bucketLines == 0 || last != 5 {
		t.Fatalf("final cumulative bucket %d over %d lines, want 5", last, bucketLines)
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total", "h", L("kind", "x")).Add(7)
	r.Histogram("lat_ns", "h", 3).Observe(42)
	r.Gauge("depth", "h").Set(2)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var fams []FamilySnapshot
	if err := json.Unmarshal(buf.Bytes(), &fams); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	ev, ok := byName["events_total"]
	if !ok || ev.Type != "counter" || len(ev.Series) != 1 {
		t.Fatalf("events_total snapshot wrong: %+v", ev)
	}
	if ev.Series[0].Labels["kind"] != "x" || *ev.Series[0].Value != 7 {
		t.Fatalf("events_total series wrong: %+v", ev.Series[0])
	}
	lat := byName["lat_ns"]
	if lat.Type != "histogram" || *lat.Series[0].Count != 1 || *lat.Series[0].Sum != 42 {
		t.Fatalf("lat_ns snapshot wrong: %+v", lat.Series[0])
	}
	if len(lat.Series[0].Buckets) != 1 {
		t.Fatalf("expected a single occupied bucket, got %v", lat.Series[0].Buckets)
	}
}

// TestRegistryConcurrency hammers instruments from many goroutines while
// scraping — the mid-run /metrics path. Run under -race (verify.sh).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_total", "h", L("w", fmt.Sprintf("%d", w%2)))
			g := r.Gauge("conc_peak", "h")
			h := r.Histogram("conc_ns", "h", 4)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.MaxInt(int64(i))
				h.Observe(int64(i - 500))
			}
		}()
	}
	// Concurrent scrapers.
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
					t.Error(err)
					return
				}
				r.Snapshot()
				r.GaugeValue("conc_peak")
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, f := range r.Snapshot() {
		if f.Name != "conc_total" {
			continue
		}
		for _, s := range f.Series {
			total += int64(*s.Value)
		}
	}
	if total != workers*iters {
		t.Fatalf("lost increments: %d, want %d", total, workers*iters)
	}
	if v, _ := r.GaugeValue("conc_peak"); v != iters-1 {
		t.Fatalf("peak gauge %v, want %d", v, iters-1)
	}
}

// ---- tracer ----

func TestTracerSampledDeterministic(t *testing.T) {
	tr := NewTracer(4)
	hits := 0
	for i := 0; i < 10_000; i++ {
		tag := packet.Tag{Replayer: 1, Stream: uint16(i % 3), Seq: uint64(i)}
		a, b := tr.Sampled(tag), tr.Sampled(tag)
		if a != b {
			t.Fatal("sampling not deterministic")
		}
		if a {
			hits++
		}
	}
	// 1-in-4 over 10k tags: allow generous hash slack.
	if hits < 1_500 || hits > 3_500 {
		t.Fatalf("1-in-4 sampling hit %d/10000", hits)
	}
	if !NewTracer(1).Sampled(packet.Tag{Seq: 12345}) {
		t.Fatal("sampleN=1 must sample everything")
	}
	if !NewTracer(0).Sampled(packet.Tag{Seq: 1}) {
		t.Fatal("sampleN=0 must clamp to sample-everything")
	}
}

func TestTracerSpansAndEvents(t *testing.T) {
	tr := NewTracer(1)
	tag := packet.Tag{Replayer: 1, Seq: 9}
	tr.Begin(tag, StageNICRing, "nic/0", 100)
	tr.End(tag, StageNICRing, 350)
	tr.End(tag, StageSwitch, 400) // unmatched End: ignored
	tr.Span(tag, StageNICWire, "nic/0", 350, 470)
	tr.Instant(tag, StageGen, "gen/0", 90)
	tr.Event("window", "stream", 0, 1000, map[string]string{"n": "3"})
	tr.Mark("pause", "mb/1", 500, nil)
	if got := tr.Len(); got != 5 {
		t.Fatalf("recorded %d events, want 5", got)
	}
	if tr.Dropped() != 0 {
		t.Fatal("spurious drops")
	}
	if s := tr.String(); !strings.Contains(s, "5 events") {
		t.Fatalf("String() = %q", s)
	}
}

// TestTracerJSONSchema decodes WriteJSON output and checks the Chrome
// trace_event contract Perfetto relies on.
func TestTracerJSONSchema(t *testing.T) {
	tr := NewTracer(1)
	tag := packet.Tag{Replayer: 2, Stream: 1, Seq: 77}
	tr.Span(tag, StageSwitch, "switch", 1_000, 3_500) // 2.5 µs span
	tr.Instant(tag, StageCapture, "recorder/A", 4_000)
	tr.Mark("breakpoint", "watch/w", 4_100, map[string]string{"seq": "77"})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	// 1 process_name + 3 thread_name metadata + 3 events.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("%d events, want 7", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0]["name"] != "process_name" || doc.TraceEvents[0]["ph"] != "M" {
		t.Fatalf("first event not process metadata: %v", doc.TraceEvents[0])
	}
	threads := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M":
			if args, ok := ev["args"].(map[string]interface{}); ok && ev["name"] == "thread_name" {
				threads[args["name"].(string)] = true
			}
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event lacks dur: %v", ev)
			}
		case "i":
			if s, _ := ev["s"].(string); s == "" {
				t.Fatalf("instant lacks scope: %v", ev)
			}
		default:
			t.Fatalf("unexpected ph %q in %v", ph, ev)
		}
		if pid, ok := ev["pid"].(float64); !ok || pid != 1 {
			t.Fatalf("event pid wrong: %v", ev)
		}
	}
	for _, trk := range []string{"switch", "recorder/A", "watch/w"} {
		if !threads[trk] {
			t.Fatalf("thread metadata missing track %q (have %v)", trk, threads)
		}
	}
	// Sim ns → trace µs conversion: the span started at 1000 ns = 1 µs.
	foundSpan := false
	for _, ev := range doc.TraceEvents {
		if ev["name"] == StageSwitch {
			foundSpan = true
			if ts := ev["ts"].(float64); ts != 1.0 {
				t.Fatalf("span ts %v µs, want 1.0", ts)
			}
			if dur := ev["dur"].(float64); dur != 2.5 {
				t.Fatalf("span dur %v µs, want 2.5", dur)
			}
		}
	}
	if !foundSpan {
		t.Fatal("switch span not exported")
	}
}

func TestTracerNegativeDurationClamped(t *testing.T) {
	tr := NewTracer(1)
	tag := packet.Tag{Seq: 3}
	tr.Span(tag, "s", "trk", 500, 400) // end before start
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"dur":-`) {
		t.Fatal("negative duration exported")
	}
}

// ---- summary, CLI, runtime helpers ----

func TestSummaryTableSkipsZeroSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("seen_total", "h").Add(3)
	r.Counter("zero_total", "h") // never incremented
	r.Histogram("lat_ns", "h", 3).Observe(10)
	r.Gauge("labeled", "h", L("shard", "1")).Set(4)
	out := SummaryTable(r).String()
	for _, want := range []string{"seen_total", "lat_ns", "n=1 sum=10", "shard=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "zero_total") {
		t.Fatalf("summary shows empty series:\n%s", out)
	}
	if SummaryTable(nil) == nil {
		t.Fatal("nil registry summary not renderable")
	}
}

func TestCLIWiring(t *testing.T) {
	var c CLI
	if c.Enabled() {
		t.Fatal("zero CLI enabled")
	}
	if c.Obs() != nil {
		t.Fatal("disabled CLI returned an Obs handle")
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	c = CLI{
		Metrics: filepath.Join(dir, "run.prom"),
		Trace:   filepath.Join(dir, "run.trace.json"),
		Sample:  1,
	}
	if !c.Enabled() {
		t.Fatal("CLI with -metrics not enabled")
	}
	o := c.Obs()
	if o == nil || o.Reg == nil || o.Tracer == nil {
		t.Fatal("CLI Obs missing registry or tracer")
	}
	if c.Obs() != o {
		t.Fatal("Obs not memoized")
	}
	o.Reg.Counter("cli_total", "h").Add(2)
	o.Tracer.Instant(packet.Tag{Seq: 1}, StageGen, "gen/0", sim.Time(5))
	if err := c.Start(); err != nil { // no -pprof: no-op
		t.Fatal(err)
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	prom, err := os.ReadFile(c.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "cli_total 2") {
		t.Fatalf("metrics file missing counter:\n%s", prom)
	}
	traceRaw, err := os.ReadFile(c.Trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceRaw, &doc); err != nil {
		t.Fatalf("trace file invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file empty")
	}
	if !strings.Contains(c.Summary().String(), "cli_total") {
		t.Fatal("CLI summary missing counter")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:0", New()); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

// TestServeGracefulShutdown: Serve binds an ephemeral port, serves a
// scrape, and Shutdown releases the listener so the address can be
// rebound immediately — the daemon drain path depends on exactly this.
func TestServeGracefulShutdown(t *testing.T) {
	o := New()
	o.Registry().Counter("shutdown_test_total", "t").Inc()
	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("no bound address reported")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "shutdown_test_total") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The port must be free again: a leaked listener would fail this bind.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listener leaked after Shutdown: %v", err)
	}
	ln.Close()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still answering after Shutdown")
	}
	// Nil-receiver and double-stop paths are tolerated.
	var nilSrv *Server
	if nilSrv.Addr() != "" || nilSrv.Shutdown(ctx) != nil || nilSrv.Close() != nil {
		t.Fatal("nil Server methods not no-ops")
	}
}

func TestPeakRSSAndMeter(t *testing.T) {
	b, src := PeakRSSBytes()
	if b <= 0 {
		t.Fatalf("peak RSS %d (%s)", b, src)
	}
	if s := PeakRSS(); !strings.Contains(s, "MiB") {
		t.Fatalf("PeakRSS = %q", s)
	}
	m := StartMeter()
	line := m.ThroughputLine(1000)
	if !strings.Contains(line, "pkts/s") || !strings.Contains(line, "1000 packets") {
		t.Fatalf("ThroughputLine = %q", line)
	}
	if m.Throughput(0) != 0 {
		t.Fatal("zero packets nonzero throughput")
	}
	if FormatBytes(1<<20) != "1.0 MiB" {
		t.Fatalf("FormatBytes = %q", FormatBytes(1<<20))
	}
}
