package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Label is one key=value pair attached to an instrument.
type Label struct{ Key, Value string }

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// instrument kinds, for exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Counter is a monotonically increasing count with atomic updates. All
// methods are nil-safe no-ops on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable value (stored as float64 bits) with atomic
// updates. All methods are nil-safe no-ops on a nil receiver.
//
// A gauge may also carry an *exemplar*: the ID of the causal span that
// produced its current value (see SpanTracer), linking a metric sample
// back to the trace explaining it — e.g. choird's per-tenant κ gauges
// point at the session span tree that scored them.
type Gauge struct {
	bits atomic.Uint64
	ex   atomic.Uint64 // exemplar span ID; 0 = none
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Max raises the gauge to v if v exceeds the current value — the
// high-water-mark operation used for ring/queue occupancy peaks.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// MaxInt is Max for integer samples.
func (g *Gauge) MaxInt(v int64) { g.Max(float64(v)) }

// SetExemplar stores v together with the span that produced it. The two
// stores are separate atomics — an exemplar is a debugging pointer, not
// part of the sample, so a torn (value, exemplar) pair is acceptable.
func (g *Gauge) SetExemplar(v float64, span SpanID) {
	if g == nil {
		return
	}
	g.Set(v)
	g.ex.Store(uint64(span))
}

// ExemplarSpan returns the span linked to the current value (0 = none).
func (g *Gauge) ExemplarSpan() SpanID {
	if g == nil {
		return 0
	}
	return SpanID(g.ex.Load())
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram buckets signed int64 observations (typically nanosecond
// deltas) on the same symmetric-log decade axis as
// stats.SymLogHistogram — the bucketing every figure in the paper uses —
// with atomic per-bucket counters so hot paths can observe without
// locks. All methods are nil-safe no-ops on a nil receiver.
type Histogram struct {
	maxDecade int
	buckets   []atomic.Int64
	count     atomic.Int64
	sum       atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[stats.SymLogIndex(v, h.maxDecade)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// series is one labelled child of a family.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64
	cfn    func() int64 // callback counter (CounterFunc)
}

// family groups all series sharing one metric name.
type family struct {
	name string
	help string
	kind string
	ser  []*series
}

// Registry holds instrument families. Instrument creation takes a lock;
// updates through the returned instruments are lock-free atomics.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	index map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family)}
}

func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		fmt.Fprintf(&b, "%s=%q;", l.Key, l.Value)
	}
	return b.String()
}

// lookup finds or creates the family, panicking on a kind conflict
// (always a programming error caught by the first test run).
func (r *Registry) lookup(name, help, kind string) *family {
	f := r.index[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.index[name] = f
		r.fams = append(r.fams, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

func (f *family) find(labels []Label) *series {
	key := labelKey(labels)
	for _, s := range f.ser {
		if labelKey(s.labels) == key {
			return s
		}
	}
	return nil
}

// Counter returns (creating if needed) the counter for name+labels.
// Nil-safe: a nil registry returns a nil counter, whose methods no-op.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindCounter)
	if s := f.find(labels); s != nil {
		return s.ctr
	}
	s := &series{labels: append([]Label(nil), labels...), ctr: &Counter{}}
	f.ser = append(f.ser, s)
	return s.ctr
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGauge)
	if s := f.find(labels); s != nil {
		return s.gauge
	}
	s := &series{labels: append([]Label(nil), labels...), gauge: &Gauge{}}
	f.ser = append(f.ser, s)
	return s.gauge
}

// CounterFunc registers a callback counter evaluated at exposition
// time — for monotone totals a subsystem already tracks (e.g. a
// tracer's dropped-event count). The callback must be monotone and safe
// to invoke from the scraping goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindCounter)
	if s := f.find(labels); s != nil {
		s.cfn = fn
		return
	}
	f.ser = append(f.ser, &series{labels: append([]Label(nil), labels...), cfn: fn})
}

// GaugeFunc registers a callback gauge evaluated at exposition time —
// zero hot-path cost for values a subsystem already tracks. The callback
// must be safe to invoke from the scraping goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGauge)
	if s := f.find(labels); s != nil {
		s.fn = fn
		return
	}
	f.ser = append(f.ser, &series{labels: append([]Label(nil), labels...), fn: fn})
}

// Histogram returns (creating if needed) a symmetric-log histogram with
// maxDecade decades per side (7 covers ±100 ms in nanoseconds).
func (r *Registry) Histogram(name, help string, maxDecade int, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if maxDecade < 0 {
		maxDecade = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindHistogram)
	if s := f.find(labels); s != nil {
		return s.hist
	}
	h := &Histogram{maxDecade: maxDecade, buckets: make([]atomic.Int64, stats.SymLogBucketCount(maxDecade))}
	f.ser = append(f.ser, &series{labels: append([]Label(nil), labels...), hist: h})
	return h
}

// GaugeValue reads the current value of a gauge series by name+labels,
// reporting ok=false when no such series exists. Used by CLIs to surface
// running values (e.g. the streaming engine's whole-run κ) without
// holding instrument pointers.
func (r *Registry) GaugeValue(name string, labels ...Label) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.index[name]
	if f == nil || f.kind != kindGauge {
		return 0, false
	}
	s := f.find(labels)
	if s == nil {
		return 0, false
	}
	if s.fn != nil {
		return s.fn(), true
	}
	return s.gauge.Value(), true
}

// ---- exposition ----

func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (families sorted by name, histograms as cumulative le-buckets).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	slices.SortFunc(fams, func(a, b *family) int { return strings.Compare(a.name, b.name) })

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.ser {
			switch {
			case s.hist != nil:
				h := s.hist
				ub := stats.SymLogUpperBounds(h.maxDecade)
				cum := int64(0)
				for i := range h.buckets {
					cum += h.buckets[i].Load()
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.name, promLabels(s.labels, L("le", formatFloat(ub[i]))), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", f.name, promLabels(s.labels), h.Sum()); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(s.labels), h.Count()); err != nil {
					return err
				}
			case s.fn != nil:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(s.labels), formatFloat(s.fn())); err != nil {
					return err
				}
			case s.cfn != nil:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), s.cfn()); err != nil {
					return err
				}
			case s.gauge != nil:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(s.labels), formatFloat(s.gauge.Value())); err != nil {
					return err
				}
			default:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), s.ctr.Value()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// SeriesSnapshot is one series' state in a JSON snapshot.
type SeriesSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Count   *int64            `json:"count,omitempty"`
	Sum     *int64            `json:"sum,omitempty"`
	Buckets map[string]int64  `json:"buckets,omitempty"`
	// ExemplarSpan links a gauge sample to the causal span that
	// produced it (16 hex digits; see SpanTracer), when one was set.
	ExemplarSpan string `json:"exemplar_span,omitempty"`
}

// FamilySnapshot is one metric family's state in a JSON snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot captures every family's current state (sorted by name).
func (r *Registry) Snapshot() []FamilySnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	slices.SortFunc(fams, func(a, b *family) int { return strings.Compare(a.name, b.name) })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Type: f.kind, Help: f.help}
		for _, s := range f.ser {
			ss := SeriesSnapshot{}
			if len(s.labels) > 0 {
				ss.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					ss.Labels[l.Key] = l.Value
				}
			}
			switch {
			case s.hist != nil:
				h := s.hist
				labels := stats.SymLogLabels(h.maxDecade)
				ss.Buckets = make(map[string]int64)
				for i := range h.buckets {
					if n := h.buckets[i].Load(); n > 0 {
						ss.Buckets[labels[i]] = n
					}
				}
				c, sum := h.Count(), h.Sum()
				ss.Count, ss.Sum = &c, &sum
			case s.fn != nil:
				v := s.fn()
				ss.Value = &v
			case s.cfn != nil:
				v := float64(s.cfn())
				ss.Value = &v
			case s.gauge != nil:
				v := s.gauge.Value()
				ss.Value = &v
				if ex := s.gauge.ExemplarSpan(); ex != 0 {
					ss.ExemplarSpan = ex.String()
				}
			default:
				v := float64(s.ctr.Value())
				ss.Value = &v
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
