package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"sync"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Tracer records packet-lifecycle spans keyed to *simulated* time — the
// replayed clock, not host wall time — and exports them as Chrome
// trace_event JSON, so a run opens directly in Perfetto or
// chrome://tracing. This follows the replay-clock tracing literature:
// spans on the wall clock of the analysis host would be meaningless for
// a discrete-event replay, so every timestamp below is a sim.Time.
//
// Tracing a million-packet run span-by-span would be unaffordable, so
// the tracer samples 1-in-N packets by trailer tag: a deterministic hash
// of the tag decides once, and the same packet is then traced at every
// stage of its life (gen → NIC TX ring → DMA/wire → switch egress →
// middlebox record → replay → wire). Sampling is hash-based, not
// RNG-based, so enabling tracing never perturbs the simulation's random
// streams.
//
// All methods are nil-safe no-ops on a nil receiver.
type Tracer struct {
	mu      sync.Mutex
	sampleN uint64
	max     int
	dropped int64
	events  []traceEvent
	open    map[spanKey]openSpan
	tids    map[string]int
	tidSeq  int
}

// Lifecycle stage names used by the instrumented subsystems. Using the
// shared constants keeps one packet's spans on a coherent storyline.
const (
	StageGen       = "gen"          // generator emitted the packet
	StageNICRing   = "nic:ring"     // sitting in a NIC TX ring awaiting DMA pull
	StageNICWire   = "nic:wire"     // DMA pull → serialization onto the wire
	StageSwitch    = "switch"       // switch ingress → egress serialization
	StageRecord    = "mb:record"    // middlebox recorded the forwarded packet
	StageReplay    = "mb:replay"    // middlebox re-emitted the packet in a replay burst
	StageCapture   = "capture"      // recorder stamped the packet into a trace
	StageBreak     = "breakpoint"   // debug watcher predicate hit
	StagePause     = "replay:pause" // replay paused/resumed (global events)
	StageSchedSlip = "sched-slip"   // burst scheduled later than its TSC-ideal instant
)

// DefaultTraceSample is the default 1-in-N packet sampling rate: at the
// paper's 1.05M-packet scale it keeps a full lifecycle trace near 10k
// packets — a few MB of JSON.
const DefaultTraceSample = 128

// maxTraceEvents bounds tracer memory; beyond it events are counted as
// dropped rather than recorded.
const maxTraceEvents = 1 << 20

type spanKey struct {
	tag   packet.Tag
	stage string
}

type openSpan struct {
	start sim.Time
	track string
}

type traceEvent struct {
	name  string
	cat   string
	ph    byte // 'X' complete, 'i' instant
	ts    sim.Time
	dur   sim.Duration
	tid   int
	args  map[string]string
	scope byte // for instants: 't' thread, 'g' global
}

// NewTracer creates a tracer sampling 1-in-sampleN packets by trailer
// tag (sampleN <= 1 samples everything).
func NewTracer(sampleN int) *Tracer {
	if sampleN < 1 {
		sampleN = 1
	}
	return &Tracer{
		sampleN: uint64(sampleN),
		max:     maxTraceEvents,
		open:    make(map[spanKey]openSpan),
		tids:    make(map[string]int),
	}
}

// Sampled reports whether packets with this tag are traced. The decision
// is a pure function of the tag, so every stage of one packet's life
// agrees. Nil-safe: a nil tracer samples nothing.
func (t *Tracer) Sampled(tag packet.Tag) bool {
	if t == nil {
		return false
	}
	if t.sampleN <= 1 {
		return true
	}
	// splitmix64-style mix of the identity fields.
	x := tag.Seq ^ uint64(tag.Replayer)<<48 ^ uint64(tag.Stream)<<32
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x%t.sampleN == 0
}

func (t *Tracer) tidFor(track string) int {
	id, ok := t.tids[track]
	if !ok {
		t.tidSeq++
		id = t.tidSeq
		t.tids[track] = id
	}
	return id
}

func (t *Tracer) push(ev traceEvent) {
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Begin opens a span for a sampled packet at sim time at. track names
// the component (becomes a Perfetto thread row). A Begin without a
// matching End is dropped at export.
func (t *Tracer) Begin(tag packet.Tag, stage, track string, at sim.Time) {
	if t == nil || !t.Sampled(tag) {
		return
	}
	t.mu.Lock()
	t.open[spanKey{tag, stage}] = openSpan{start: at, track: track}
	t.mu.Unlock()
}

// End closes the span opened by Begin and records a complete event.
// Unmatched Ends are ignored.
func (t *Tracer) End(tag packet.Tag, stage string, at sim.Time) {
	if t == nil || !t.Sampled(tag) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := spanKey{tag, stage}
	o, ok := t.open[k]
	if !ok {
		return
	}
	delete(t.open, k)
	dur := at - o.start
	if dur < 0 {
		dur = 0
	}
	t.push(traceEvent{
		name: stage, cat: "packet", ph: 'X',
		ts: o.start, dur: dur,
		tid:  t.tidFor(o.track),
		args: map[string]string{"tag": tag.String()},
	})
}

// Span records a complete span for a sampled packet in one call, when
// both endpoints are known at once.
func (t *Tracer) Span(tag packet.Tag, stage, track string, start, end sim.Time) {
	if t == nil || !t.Sampled(tag) {
		return
	}
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	t.push(traceEvent{
		name: stage, cat: "packet", ph: 'X',
		ts: start, dur: dur,
		tid:  t.tidFor(track),
		args: map[string]string{"tag": tag.String()},
	})
	t.mu.Unlock()
}

// Instant records a zero-duration event for a sampled packet.
func (t *Tracer) Instant(tag packet.Tag, stage, track string, at sim.Time) {
	if t == nil || !t.Sampled(tag) {
		return
	}
	t.mu.Lock()
	t.push(traceEvent{
		name: stage, cat: "packet", ph: 'i', scope: 't',
		ts: at, tid: t.tidFor(track),
		args: map[string]string{"tag": tag.String()},
	})
	t.mu.Unlock()
}

// Event records an unsampled component-level span (window close, replay
// run, stall episode...). args may be nil.
func (t *Tracer) Event(name, track string, start sim.Time, dur sim.Duration, args map[string]string) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	t.push(traceEvent{
		name: name, cat: "component", ph: 'X',
		ts: start, dur: dur, tid: t.tidFor(track), args: args,
	})
	t.mu.Unlock()
}

// Mark records an unsampled global instant (pause, resume, breakpoint
// fired) visible across all tracks.
func (t *Tracer) Mark(name, track string, at sim.Time, args map[string]string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.push(traceEvent{
		name: name, cat: "component", ph: 'i', scope: 't',
		ts: at, tid: t.tidFor(track), args: args,
	})
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns events discarded after the memory cap was hit.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// jsonEvent is the Chrome trace_event wire form. ts/dur are in
// microseconds (fractional values carry the sub-µs precision of the
// simulated clock).
type jsonEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// jsonTrace is the top-level JSON object.
type jsonTrace struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

const tracePid = 1

// WriteJSON exports the trace in Chrome trace_event JSON object format
// ({"traceEvents": [...]}), with thread-name metadata so Perfetto labels
// each component track.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ns"}`)
		return err
	}
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	tids := make(map[string]int, len(t.tids))
	for k, v := range t.tids {
		tids[k] = v
	}
	t.mu.Unlock()

	var raw []json.RawMessage
	appendEv := func(v interface{}) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		raw = append(raw, b)
		return nil
	}

	// Process + thread name metadata, in stable order.
	if err := appendEv(map[string]interface{}{
		"name": "process_name", "ph": "M", "pid": tracePid,
		"args": map[string]string{"name": "choir-sim"},
	}); err != nil {
		return err
	}
	tracks := make([]string, 0, len(tids))
	for name := range tids {
		tracks = append(tracks, name)
	}
	slices.SortFunc(tracks, func(a, b string) int { return tids[a] - tids[b] })
	for _, name := range tracks {
		if err := appendEv(map[string]interface{}{
			"name": "thread_name", "ph": "M", "pid": tracePid, "tid": tids[name],
			"args": map[string]string{"name": name},
		}); err != nil {
			return err
		}
	}

	for _, ev := range events {
		je := jsonEvent{
			Name: ev.name, Cat: ev.cat, Ph: string(ev.ph),
			Ts:  float64(ev.ts) / 1e3, // sim ns → trace µs
			Pid: tracePid, Tid: ev.tid, Args: ev.args,
		}
		if ev.ph == 'X' {
			d := float64(ev.dur) / 1e3
			je.Dur = &d
		}
		if ev.ph == 'i' {
			je.S = string(ev.scope)
		}
		if err := appendEv(je); err != nil {
			return err
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(jsonTrace{TraceEvents: raw, DisplayTimeUnit: "ns"})
}

// String summarizes the tracer state for end-of-run reporting.
func (t *Tracer) String() string {
	if t == nil {
		return "tracer: disabled"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("tracer: %d events (1-in-%d sampling, %d dropped)", len(t.events), t.sampleN, t.dropped)
}
