package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the observability mux:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON snapshot of the same registry
//	/trace          Chrome trace_event JSON of everything traced so far
//	/spans          Chrome trace_event JSON of the causal span trees
//	/debug/pprof/*  the standard Go profiler endpoints
//
// Exported so long-running daemons (cmd/choird) can mount the fleet
// surface on their own server instead of opening a second listener.
// Instruments are atomic, so scraping mid-run is safe; values read
// mid-run are a consistent-enough snapshot for dashboards, and the
// sim's own determinism is never affected.
func Handler(o *Obs) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = o.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Registry().WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Trace().WriteJSON(w)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.SpanTrace().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is an observability HTTP listener with a graceful stop: unlike
// a bare http.Server.Close, Shutdown stops accepting new scrapes and
// waits (up to the context deadline) for in-flight responses — a
// /metrics scrape racing a daemon's drain gets its full body instead of
// a torn connection.
type Server struct {
	srv  *http.Server
	addr string
}

// Serve exposes the observability surface on an opt-in HTTP listener.
// The server runs on its own goroutine; call Shutdown (preferred) or
// Close on the returned server to stop it.
func Serve(addr string, o *Obs) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(o)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, addr: ln.Addr().String()}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.addr
}

// Shutdown gracefully stops the listener: no new connections are
// accepted, in-flight scrapes finish, and the listener is released
// before it returns (or the context expires, whichever is first).
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// Close force-stops the listener, abandoning in-flight scrapes. Prefer
// Shutdown unless the process is on its way down anyway.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
