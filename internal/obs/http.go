package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Serve exposes the observability surface on an opt-in HTTP listener:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON snapshot of the same registry
//	/trace          Chrome trace_event JSON of everything traced so far
//	/debug/pprof/*  the standard Go profiler endpoints
//
// The server runs on its own goroutine; Close the returned server to
// stop it. Instruments are atomic, so scraping mid-run is safe; values
// read mid-run are a consistent-enough snapshot for dashboards, and the
// sim's own determinism is never affected.
func Serve(addr string, o *Obs) (*http.Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = o.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Registry().WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Trace().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
