package obs

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/report"
)

// CLI is the standard observability command-line surface shared by the
// repository's binaries (choirsim, choirstream, experiments):
//
//	-metrics FILE        Prometheus text snapshot written at exit
//	-trace FILE          Chrome trace_event JSON written at exit
//	-trace-sample N      trace 1 in N packets (trailer-tag hash)
//	-spans FILE          causal span trace (Chrome trace_event JSON)
//	                     written at exit — feed it to choirtrace
//	-pprof ADDR          live /metrics, /metrics.json, /trace, /spans
//	                     and /debug/pprof/* while the run is in progress
//
// Usage: BindFlags before flag.Parse, Obs() for the handle to pass into
// the run (nil when no flag was given, so instrumentation stays off),
// Start() after parsing, and Finish() on the way out.
type CLI struct {
	Metrics string
	Trace   string
	Spans   string
	Pprof   string
	Sample  int

	obs *Obs
	srv *Server
}

// BindFlags registers the observability flags on fs (use flag.CommandLine
// for the default set) and returns the handle that collects them.
func BindFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.Metrics, "metrics", "", "write a Prometheus text snapshot of run telemetry to `FILE` at exit")
	fs.StringVar(&c.Trace, "trace", "", "write Chrome trace_event JSON of sampled packet lifecycles to `FILE` at exit (open in Perfetto)")
	fs.StringVar(&c.Spans, "spans", "", "write the causal span trace to `FILE` at exit (open in Perfetto or analyze with choirtrace)")
	fs.StringVar(&c.Pprof, "pprof", "", "serve /metrics, /trace, /spans and /debug/pprof on `ADDR` (e.g. localhost:6060) during the run")
	fs.IntVar(&c.Sample, "trace-sample", DefaultTraceSample, "trace 1 in `N` packets, selected by trailer-tag hash")
	return c
}

// Enabled reports whether any observability flag was given.
func (c *CLI) Enabled() bool {
	return c != nil && (c.Metrics != "" || c.Trace != "" || c.Spans != "" || c.Pprof != "")
}

// Obs returns the handle implied by the flags: nil when observability is
// off (so instrumented code keeps its single-branch disabled path), a
// registry always when on, a packet tracer when -trace or -pprof asked
// for one, and a span tracer when -spans or -pprof did.
func (c *CLI) Obs() *Obs {
	if !c.Enabled() {
		return nil
	}
	if c.obs == nil {
		c.obs = New()
		if c.Trace != "" || c.Pprof != "" {
			c.obs.WithTracer(c.Sample)
		}
		if c.Spans != "" || c.Pprof != "" {
			c.obs.WithSpans(0)
		}
		// The dropped-event total rides the registry so a scrape (or the
		// end-of-run table) shows when either tracer had to shed — the
		// signal to raise -trace-sample or the span cap.
		tr, st := c.obs.Tracer, c.obs.Spans
		c.obs.Reg.CounterFunc("obs_trace_dropped_total",
			"trace events discarded after a tracer buffer cap was hit",
			func() int64 { return tr.Dropped() + st.Dropped() })
	}
	return c.obs
}

// Start launches the -pprof listener, if requested. Call after
// flag.Parse and before the run.
func (c *CLI) Start() error {
	if c == nil || c.Pprof == "" {
		return nil
	}
	srv, err := Serve(c.Pprof, c.Obs())
	if err != nil {
		return err
	}
	c.srv = srv
	return nil
}

// Finish writes the requested artifacts (-metrics and -trace files),
// stops the -pprof listener, and returns the first error encountered.
func (c *CLI) Finish() error {
	if !c.Enabled() {
		return nil
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if c.Metrics != "" {
		keep(writeFile(c.Metrics, func(f *os.File) error {
			return c.Obs().Registry().WritePrometheus(f)
		}))
	}
	if c.Trace != "" {
		keep(writeFile(c.Trace, func(f *os.File) error {
			return c.Obs().Trace().WriteJSON(f)
		}))
	}
	if c.Spans != "" {
		keep(writeFile(c.Spans, func(f *os.File) error {
			return c.Obs().SpanTrace().WriteJSON(f)
		}))
	}
	if c.srv != nil {
		// Graceful stop: let an in-flight /metrics scrape finish rather
		// than tearing its connection at process exit.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		keep(c.srv.Shutdown(ctx))
		cancel()
		c.srv = nil
	}
	return first
}

// Summary returns the end-of-run telemetry table, or nil when
// observability is off (callers can print it unconditionally through
// report's nil-tolerant renderers by checking for nil).
func (c *CLI) Summary() *report.Table {
	if !c.Enabled() {
		return nil
	}
	return SummaryTable(c.Obs().Registry())
}

func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := fill(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: close %s: %w", path, err)
	}
	return nil
}
