package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/trace"
)

// ComparisonResult is one strategy's outcome on one NIC personality —
// the quantitative form of the paper's §9 discussion.
type ComparisonResult struct {
	// Strategy is the replayer name.
	Strategy string
	// FidelityI is the IAT variation between the reference timeline
	// and the captured replay: how faithfully the strategy reproduces
	// the recorded gaps (lower is better).
	FidelityI float64
	// ConsistencyKappa is κ between two independent replays (higher is
	// better).
	ConsistencyKappa float64
	// Delivered counts captured data packets per run.
	Delivered int
	// NoiseThroughputGbps is the co-tenant's achieved goodput while
	// the replay ran (shared rigs only) — MoonGen's filler crushes it.
	NoiseThroughputGbps float64
}

// String renders one row.
func (r ComparisonResult) String() string {
	return fmt.Sprintf("%-9s fidelity I=%.4f  replay-vs-replay κ=%.4f  delivered=%d  co-tenant=%.1f Gbps",
		r.Strategy, r.FidelityI, r.ConsistencyKappa, r.Delivered, r.NoiseThroughputGbps)
}

// CompareConfig scales the comparison rig.
type CompareConfig struct {
	// Packets in the reference timeline (default 20000).
	Packets int
	// RateGbps of the reference CBR timeline (default 40).
	RateGbps float64
	// Shared adds a TCP co-tenant on a second VF of the same NIC.
	Shared bool
	// Seed for determinism.
	Seed int64
}

func (c CompareConfig) defaults() CompareConfig {
	if c.Packets == 0 {
		c.Packets = 20000
	}
	if c.RateGbps == 0 {
		c.RateGbps = 40
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// referenceTrace builds the ideal recorded timeline: CBR at the given
// rate with unique tags.
func referenceTrace(cfg CompareConfig) *trace.Trace {
	tr := trace.New("reference", cfg.Packets)
	gap := packet.SerializationTime(1400, packet.Gbps(cfg.RateGbps))
	for i := 0; i < cfg.Packets; i++ {
		tr.Append(&packet.Packet{
			Tag:      packet.Tag{Replayer: 1, Seq: uint64(i)},
			Kind:     packet.KindData,
			FrameLen: 1400,
			Flow:     packet.FiveTuple{Src: packet.IPForNode(1), Dst: packet.IPForNode(2), Proto: packet.ProtoUDP},
		}, sim.Time(i)*gap)
	}
	return tr
}

// Compare runs each strategy twice on a fresh rig with the given NIC
// personality and reports fidelity, run-to-run consistency and
// co-tenant impact.
func Compare(replayers []Replayer, prof nic.Profile, cfg CompareConfig) ([]ComparisonResult, error) {
	cfg = cfg.defaults()
	ref := referenceTrace(cfg)
	span := ref.Span()

	var out []ComparisonResult
	for _, rp := range replayers {
		var captures []*trace.Trace
		var noiseGbps float64
		for run := 0; run < 2; run++ {
			eng := sim.NewEngine(cfg.Seed + int64(run)*7919)
			n := nic.New(eng, prof, "cmp/"+rp.Name())
			q := n.NewQueue(1 << 16)
			rec := core.NewRecorder(eng, fmt.Sprintf("%s-%d", rp.Name(), run), nic.PerfectTimestamper{}, true)
			q.Connect(rec, 0)

			start := 10 * sim.Millisecond
			horizon := start + span + 40*sim.Millisecond
			if cfg.Shared {
				noiseQ := n.NewQueue(4096)
				sinkRec := core.NewRecorder(eng, "noise-sink", nic.PerfectTimestamper{}, false)
				noiseQ.Connect(sinkRec, 0)
				// The co-tenant transmits exactly during the replay
				// window so its throughput measures the replay's
				// interference, not idle line time.
				flows := tcpsim.StartIperf(eng, []*nic.Queue{noiseQ}, 8, tcpsim.Config{
					ID: 50, SegmentLen: 9000, RTT: 60 * sim.Microsecond,
					StartAt: start, StopAt: start + span,
					Flow: packet.FiveTuple{Src: packet.IPForNode(7), Dst: packet.IPForNode(8), DstPort: 5201, Proto: packet.ProtoTCP},
				})
				rp.Replay(eng, q, ref, start)
				eng.RunUntil(start + span)
				noiseGbps = tcpsim.AggregateThroughput(flows, eng.Now()) / 1e9
				eng.RunUntil(horizon)
			} else {
				rp.Replay(eng, q, ref, start)
				eng.RunUntil(horizon)
			}
			captures = append(captures, rec.Trace().Normalize())
		}

		fid, err := metrics.Compare(ref.Normalize(), captures[0], metrics.Options{})
		if err != nil {
			return nil, fmt.Errorf("baseline: %s fidelity: %w", rp.Name(), err)
		}
		cons, err := metrics.Compare(captures[0], captures[1], metrics.Options{})
		if err != nil {
			return nil, fmt.Errorf("baseline: %s consistency: %w", rp.Name(), err)
		}
		out = append(out, ComparisonResult{
			Strategy:            rp.Name(),
			FidelityI:           fid.I,
			ConsistencyKappa:    cons.Kappa,
			Delivered:           captures[0].Len(),
			NoiseThroughputGbps: noiseGbps,
		})
	}
	return out, nil
}

// DefaultSet returns the three strategies configured for a 100 Gbps
// line.
func DefaultSet() []Replayer {
	return []Replayer{
		&Choir{},
		&Tcpreplay{},
		&MoonGen{LineRateBps: packet.Gbps(100)},
	}
}
