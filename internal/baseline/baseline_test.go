package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
)

func perfectNIC() nic.Profile {
	return nic.Profile{Name: "perfect", LineRateBps: packet.Gbps(100)}
}

// runOnce replays the reference with one strategy on a perfect NIC and
// returns the capture.
func runOnce(t *testing.T, rp Replayer, packets int) (*metrics.Result, int) {
	t.Helper()
	cfg := CompareConfig{Packets: packets}.defaults()
	ref := referenceTrace(cfg)
	eng := sim.NewEngine(3)
	n := nic.New(eng, perfectNIC(), "t")
	q := n.NewQueue(1 << 16)
	rec := core.NewRecorder(eng, "cap", nic.PerfectTimestamper{}, true)
	q.Connect(rec, 0)
	rp.Replay(eng, q, ref, sim.Millisecond)
	eng.RunUntil(sim.Second)
	got := rec.Trace().Normalize()
	res, err := metrics.Compare(ref.Normalize(), got, metrics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res, got.Len()
}

func TestChoirReplayerFaithful(t *testing.T) {
	res, n := runOnce(t, &Choir{}, 5000)
	if n != 5000 {
		t.Fatalf("delivered %d", n)
	}
	if res.U != 0 || res.O != 0 {
		t.Fatalf("choir lost or reordered: %v", res)
	}
	// Burst pacing compresses intra-burst gaps to line rate, so
	// fidelity is good but not perfect on a 40G-in-100G-out rig.
	if res.I > 0.8 {
		t.Fatalf("choir fidelity I=%v implausibly bad", res.I)
	}
}

func TestTcpreplayDeliversAll(t *testing.T) {
	tcp, n := runOnce(t, &Tcpreplay{}, 3000)
	if n != 3000 {
		t.Fatalf("tcpreplay delivered %d", n)
	}
	if tcp.U != 0 || tcp.O != 0 {
		t.Fatalf("tcpreplay lost or reordered: %v", tcp)
	}
	// OS-timer pacing is coarse: fidelity error is substantial.
	if tcp.I < 0.05 {
		t.Fatalf("tcpreplay fidelity I=%v suspiciously precise for µs timers", tcp.I)
	}
}

func TestMoonGenPrecisionOnDedicatedLine(t *testing.T) {
	mg := &MoonGen{LineRateBps: packet.Gbps(100)}
	res, n := runOnce(t, mg, 3000)
	if n != 3000 {
		t.Fatalf("moongen delivered %d data packets", n)
	}
	if res.U != 0 || res.O != 0 {
		t.Fatalf("moongen lost or reordered: %v", res)
	}
	// With the full line available, invalid-packet gap control is the
	// most precise strategy of all.
	if res.I > 0.02 {
		t.Fatalf("moongen fidelity I=%v, want near-perfect on a dedicated line", res.I)
	}
}

func TestMoonGenFillerIsDiscarded(t *testing.T) {
	cfg := CompareConfig{Packets: 500}.defaults()
	ref := referenceTrace(cfg)
	eng := sim.NewEngine(4)
	n := nic.New(eng, perfectNIC(), "t")
	q := n.NewQueue(1 << 16)
	rec := core.NewRecorder(eng, "cap", nic.PerfectTimestamper{}, true)
	q.Connect(rec, 0)
	(&MoonGen{LineRateBps: packet.Gbps(100)}).Replay(eng, q, ref, 0)
	eng.RunUntil(sim.Second)
	if rec.Discarded() == 0 {
		t.Fatal("moongen emitted no filler frames at 40G on a 100G line")
	}
	if rec.Trace().Len() != 500 {
		t.Fatalf("captured %d data packets, want 500", rec.Trace().Len())
	}
}

func TestCompareRanksStrategies(t *testing.T) {
	// On a dedicated quiet line: moongen ≤ choir < tcpreplay in
	// fidelity error.
	results, err := Compare(DefaultSet(), perfectNIC(), CompareConfig{Packets: 4000})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ComparisonResult{}
	for _, r := range results {
		byName[r.Strategy] = r
		if r.String() == "" {
			t.Fatal("empty String()")
		}
	}
	// Gap fidelity: invalid-packet pacing owns the line and wins.
	if byName["moongen"].FidelityI > byName["choir"].FidelityI {
		t.Fatalf("moongen should beat choir on a dedicated line: %v vs %v",
			byName["moongen"].FidelityI, byName["choir"].FidelityI)
	}
	if byName["moongen"].FidelityI > byName["tcpreplay"].FidelityI {
		t.Fatalf("moongen should beat tcpreplay: %v vs %v",
			byName["moongen"].FidelityI, byName["tcpreplay"].FidelityI)
	}
	// Run-to-run consistency — the paper's actual objective: Choir's
	// deterministic burst schedule beats tcpreplay's scheduler noise.
	if byName["choir"].ConsistencyKappa <= byName["tcpreplay"].ConsistencyKappa {
		t.Fatalf("choir consistency κ=%v should exceed tcpreplay's %v",
			byName["choir"].ConsistencyKappa, byName["tcpreplay"].ConsistencyKappa)
	}
}

func TestCompareSharedLineHurtsMoonGen(t *testing.T) {
	// On a shared VF with a TCP co-tenant, MoonGen's line-saturation
	// assumption fails: the co-tenant suffers far more than with Choir
	// (the paper's §9 argument against invalid-packet pacing on
	// testbeds).
	prof := perfectNIC()
	prof.PacketInterleave = true
	results, err := Compare([]Replayer{&Choir{}, &MoonGen{LineRateBps: packet.Gbps(100)}},
		prof, CompareConfig{Packets: 4000, Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ComparisonResult{}
	for _, r := range results {
		byName[r.Strategy] = r
	}
	choirNoise := byName["choir"].NoiseThroughputGbps
	mgNoise := byName["moongen"].NoiseThroughputGbps
	if choirNoise <= 0 {
		t.Fatal("co-tenant achieved nothing even under choir")
	}
	if mgNoise >= choirNoise {
		t.Fatalf("moongen should crush the co-tenant: %v Gbps vs choir's %v", mgNoise, choirNoise)
	}
	// And MoonGen's own fidelity degrades once it cannot own the line.
	if byName["moongen"].FidelityI < 0.01 {
		t.Fatalf("moongen fidelity I=%v suspiciously perfect on a contended line",
			byName["moongen"].FidelityI)
	}
}

func TestDescribe(t *testing.T) {
	if Describe(&Choir{}) != "replayer(choir)" {
		t.Fatal("Describe format changed")
	}
}

func TestHybridBeatsChoirFidelity(t *testing.T) {
	// The §9 future-work integration: burst-level TSC scheduling plus
	// intra-burst gap filler recovers most of the fidelity pure
	// re-bursting loses.
	choir, _ := runOnce(t, &Choir{}, 4000)
	hybrid, n := runOnce(t, &Hybrid{LineRateBps: packet.Gbps(100)}, 4000)
	if n != 4000 {
		t.Fatalf("hybrid delivered %d", n)
	}
	if hybrid.U != 0 || hybrid.O != 0 {
		t.Fatalf("hybrid lost or reordered: %v", hybrid)
	}
	if hybrid.I >= choir.I/2 {
		t.Fatalf("hybrid fidelity I=%v should be far better than choir's %v", hybrid.I, choir.I)
	}
}

func TestHybridName(t *testing.T) {
	if (&Hybrid{}).Name() != "hybrid" {
		t.Fatal("name changed")
	}
}

func TestTCPOperaCannotSupportPacketIdentityMetrics(t *testing.T) {
	// The §9 point quantified: a connection-level replayer produces
	// traffic, but none of the *recorded* packets — packet-identity
	// metrics degenerate (U = 1), so testbed-consistency evaluation à
	// la Choir is impossible with this tool class.
	cfg := CompareConfig{Packets: 2000}.defaults()
	ref := referenceTrace(cfg)
	eng := sim.NewEngine(7)
	n := nic.New(eng, perfectNIC(), "t")
	q := n.NewQueue(1 << 16)
	// Capture everything (no tag filter) so we can see the traffic is
	// real, then filter for the metric comparison.
	rec := core.NewRecorder(eng, "cap", nic.PerfectTimestamper{}, false)
	q.Connect(rec, 0)
	(&TCPOperaStyle{}).Replay(eng, q, ref, sim.Millisecond)
	eng.RunUntil(100 * sim.Millisecond)

	if rec.Trace().Len() == 0 {
		t.Fatal("tcpopera-style replay produced no traffic at all")
	}
	res, err := metrics.Compare(ref.Normalize(), rec.Trace().DataOnly().Normalize(), metrics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 1 {
		t.Fatalf("U = %v, want 1: none of the recorded packets should reappear", res.U)
	}
	if res.Common != 0 {
		t.Fatalf("%d common packets, want 0", res.Common)
	}
}
