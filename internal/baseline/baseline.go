// Package baseline implements the replay strategies the paper compares
// against (§9), so the benches can show where each breaks down:
//
//   - Tcpreplay: OS-timer pacing — sleep until each packet's offset
//     using the system clock, at scheduler granularity. No bursting, no
//     TSC busy-wait; fidelity is bounded by timer resolution.
//   - MoonGen: invalid-packet gap control — keep the NIC saturated with
//     filler frames so data packets land at exact byte offsets in the
//     stream. Extremely precise when the full line is available, but it
//     floods the link (hurting co-tenants) and its timing collapses on
//     a shared VF where the line cannot be owned.
//   - Choir (reference): burst + TSC pacing as implemented by
//     internal/core, reproduced here in harness form for side-by-side
//     fidelity measurements.
package baseline

import (
	"fmt"

	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Replayer schedules the transmission of a recorded trace onto a queue,
// starting at startAt.
type Replayer interface {
	// Name identifies the strategy.
	Name() string
	// Replay schedules tr's packets on q with their recorded relative
	// timing, beginning at startAt.
	Replay(eng *sim.Engine, q *nic.Queue, tr *trace.Trace, startAt sim.Time)
}

// Tcpreplay paces with OS sleeps: each packet is sent at its recorded
// offset quantized to the timer resolution plus scheduler wakeup noise,
// one packet per syscall.
type Tcpreplay struct {
	// TimerResolution is the kernel timer granularity (default 1 µs,
	// a tuned low-latency host).
	TimerResolution sim.Duration
	// WakeupJitter is the scheduler wakeup error after a sleep
	// (default uniform 0–30 µs).
	WakeupJitter sim.Dist
}

// Name implements Replayer.
func (t *Tcpreplay) Name() string { return "tcpreplay" }

// Replay implements Replayer.
func (t *Tcpreplay) Replay(eng *sim.Engine, q *nic.Queue, tr *trace.Trace, startAt sim.Time) {
	res := t.TimerResolution
	if res <= 0 {
		res = sim.Microsecond
	}
	jit := t.WakeupJitter
	if jit == nil {
		jit = sim.Uniform{Lo: 0, Hi: 30_000}
	}
	// The jitter stream must come from *this* engine on every call: a
	// replayer reused across engines (baseline.Compare runs each
	// strategy on two independent rigs) must not leak one engine's RNG
	// stream into another's trial, or the trial stops being replayable
	// in isolation from its own seed. Caching the rand across Replay
	// calls did exactly that (regression: TestTcpreplayTwoEngineDeterminism).
	rng := eng.Rand("baseline/tcpreplay")
	base := tr.Start()
	// Sequential sender thread: each send happens no earlier than the
	// previous (a single process cannot reorder its own writes).
	prev := startAt
	for i, p := range tr.Packets {
		offset := tr.Times[i] - base
		at := startAt + offset/res*res + maxD(0, jit.Sample(rng))
		if at < prev {
			at = prev
		}
		prev = at
		pkt := p
		eng.Post(at, func() { q.SendBurst([]*packet.Packet{pkt}) })
	}
}

// MoonGen paces by keeping the line saturated with invalid filler
// frames sized so each data frame starts at its exact recorded byte
// offset.
type MoonGen struct {
	// FillerFrameLen is the filler frame size (default 1514; MoonGen's
	// minimum effective gap is one minimum frame).
	FillerFrameLen int
	// LineRateBps must match the NIC the replay transmits on.
	LineRateBps int64
}

// Name implements Replayer.
func (m *MoonGen) Name() string { return "moongen" }

// Replay implements Replayer. The whole replay is enqueued as a
// continuous back-to-back stream: data frames separated by filler
// frames whose serialization occupies exactly the recorded gaps.
func (m *MoonGen) Replay(eng *sim.Engine, q *nic.Queue, tr *trace.Trace, startAt sim.Time) {
	filler := m.FillerFrameLen
	if filler <= 0 {
		filler = 1514
	}
	rate := m.LineRateBps
	if rate <= 0 {
		rate = packet.Gbps(100)
	}
	eng.Post(startAt, func() {
		var burst []*packet.Packet
		flush := func() {
			if len(burst) > 0 {
				q.SendBurst(burst)
				burst = nil
			}
		}
		push := func(p *packet.Packet) {
			burst = append(burst, p)
			if len(burst) == nic.BurstSize {
				flush()
			}
		}
		fillerSeq := uint64(0)
		for i, p := range tr.Packets {
			if i > 0 {
				// Fill the recorded gap minus the previous data
				// frame's own serialization with invalid frames.
				gap := tr.Times[i] - tr.Times[i-1]
				gap -= packet.SerializationTime(tr.Packets[i-1].FrameLen, rate)
				for gap > 0 {
					f := filler
					ser := packet.SerializationTime(f, rate)
					if ser > gap {
						// Last filler shrinks toward the minimum frame.
						f = int(gap * sim.Duration(rate) / 8 / 1e9)
						if f < 64 {
							break
						}
					}
					push(&packet.Packet{
						Tag:      packet.Tag{Replayer: 0xFFFE, Seq: fillerSeq},
						Kind:     packet.KindInvalid,
						FrameLen: f,
					})
					fillerSeq++
					gap -= packet.SerializationTime(f, rate)
				}
			}
			push(p)
		}
		flush()
	})
}

// Choir is the paper's strategy in harness form: recorded bursts (≤64
// packets grouped by arrival) are scheduled at their recorded offsets;
// pacing inside a burst is left to the line, exactly like the real
// middlebox after recording.
type Choir struct {
	// BurstWindow groups packets recorded within this window into one
	// burst (default 15 µs, the middlebox poll quantum).
	BurstWindow sim.Duration
}

// Name implements Replayer.
func (c *Choir) Name() string { return "choir" }

// Replay implements Replayer.
func (c *Choir) Replay(eng *sim.Engine, q *nic.Queue, tr *trace.Trace, startAt sim.Time) {
	win := c.BurstWindow
	if win <= 0 {
		win = 15 * sim.Microsecond
	}
	base := tr.Start()
	var burst []*packet.Packet
	var burstAt sim.Time
	flush := func() {
		if len(burst) == 0 {
			return
		}
		pkts := burst
		burst = nil
		eng.Post(startAt+burstAt, func() { q.SendBurst(pkts) })
	}
	for i, p := range tr.Packets {
		off := tr.Times[i] - base
		if len(burst) == 0 {
			burstAt = off
		}
		if off-burstAt >= win || len(burst) == nic.BurstSize {
			flush()
			burstAt = off
		}
		burst = append(burst, p)
	}
	flush()
}

func maxD(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}

// String helper for diagnostics.
func Describe(r Replayer) string { return fmt.Sprintf("replayer(%s)", r.Name()) }

// Hybrid is the integration the paper's §9 proposes as future work:
// Choir's burst-level TSC scheduling between bursts, with MoonGen-style
// invalid-packet gap control *inside* each burst. Unlike pure MoonGen
// it only occupies the line for the duration of a burst, so it stays
// usable on links it cannot own outright while recovering most of the
// intra-burst gap fidelity Choir's re-bursting loses.
type Hybrid struct {
	// BurstWindow groups packets recorded within this window (default
	// 15 µs).
	BurstWindow sim.Duration
	// FillerFrameLen is the filler frame size (default 1514).
	FillerFrameLen int
	// LineRateBps must match the transmitting NIC.
	LineRateBps int64
}

// Name implements Replayer.
func (h *Hybrid) Name() string { return "hybrid" }

// Replay implements Replayer.
func (h *Hybrid) Replay(eng *sim.Engine, q *nic.Queue, tr *trace.Trace, startAt sim.Time) {
	win := h.BurstWindow
	if win <= 0 {
		win = 15 * sim.Microsecond
	}
	filler := h.FillerFrameLen
	if filler <= 0 {
		filler = 1514
	}
	rate := h.LineRateBps
	if rate <= 0 {
		rate = packet.Gbps(100)
	}

	base := tr.Start()
	fillerSeq := uint64(0)
	var burstPkts []*packet.Packet
	var burstTimes []sim.Time
	var burstAt sim.Time

	flush := func() {
		if len(burstPkts) == 0 {
			return
		}
		// Expand the burst with gap filler, MoonGen-style, then
		// schedule the whole padded burst at its recorded offset.
		var padded []*packet.Packet
		for i, p := range burstPkts {
			if i > 0 {
				gap := burstTimes[i] - burstTimes[i-1]
				gap -= packet.SerializationTime(burstPkts[i-1].FrameLen, rate)
				for gap > 0 {
					f := filler
					ser := packet.SerializationTime(f, rate)
					if ser > gap {
						f = int(gap * sim.Duration(rate) / 8 / 1e9)
						if f < 64 {
							break
						}
					}
					padded = append(padded, &packet.Packet{
						Tag:      packet.Tag{Replayer: 0xFFFE, Seq: fillerSeq},
						Kind:     packet.KindInvalid,
						FrameLen: f,
					})
					fillerSeq++
					gap -= packet.SerializationTime(f, rate)
				}
			}
			padded = append(padded, p)
		}
		at := startAt + burstAt
		eng.Post(at, func() {
			for len(padded) > 0 {
				n := nic.BurstSize
				if n > len(padded) {
					n = len(padded)
				}
				q.SendBurst(padded[:n])
				padded = padded[n:]
			}
		})
		burstPkts, burstTimes = nil, nil
	}

	for i, p := range tr.Packets {
		off := tr.Times[i] - base
		if len(burstPkts) == 0 {
			burstAt = off
		}
		if off-burstAt >= win || len(burstPkts) == nic.BurstSize {
			flush()
			burstAt = off
		}
		burstPkts = append(burstPkts, p)
		burstTimes = append(burstTimes, off)
	}
	flush()
}
