package baseline

import (
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/trace"
)

// TCPOperaStyle models the TCPOpera/DETER class of tools the paper's
// §9 discusses: instead of replaying the recorded packets, it replays
// TCP *connections* with equivalent volume through a live stack. The
// result is behaviourally similar traffic whose packets are entirely
// different objects — which is exactly why such tools cannot support
// the paper's packet-identity consistency metrics ("TCPOpera does not
// replay the specific packets").
type TCPOperaStyle struct {
	// RTT is the stack's round-trip time (default 100 µs).
	RTT sim.Duration
	// Connections is the number of parallel connections used to carry
	// the recorded volume (default 4).
	Connections int
}

// Name implements Replayer.
func (o *TCPOperaStyle) Name() string { return "tcpopera" }

// Replay implements Replayer: it derives the recorded byte volume and
// duration, then drives TCP flows that reproduce the volume over the
// same window. None of the original packets are transmitted.
func (o *TCPOperaStyle) Replay(eng *sim.Engine, q *nic.Queue, tr *trace.Trace, startAt sim.Time) {
	conns := o.Connections
	if conns <= 0 {
		conns = 4
	}
	rtt := o.RTT
	if rtt <= 0 {
		rtt = 100 * sim.Microsecond
	}
	span := tr.Span()
	if span <= 0 {
		span = sim.Millisecond
	}
	for c := 0; c < conns; c++ {
		tcpsim.Start(eng, q, tcpsim.Config{
			ID:         uint16(300 + c),
			SegmentLen: 1514,
			RTT:        rtt,
			StartAt:    startAt,
			StopAt:     startAt + span,
			Flow: packet.FiveTuple{
				Src: packet.IPForNode(50), Dst: packet.IPForNode(51),
				SrcPort: uint16(42000 + c), DstPort: 5201, Proto: packet.ProtoTCP,
			},
		})
	}
}
