package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/trace"
)

// tcpreplayCapture replays ref on a fresh engine with seed using rp and
// returns the normalized capture.
func tcpreplayCapture(t *testing.T, rp Replayer, ref *trace.Trace, seed int64) *trace.Trace {
	t.Helper()
	eng := sim.NewEngine(seed)
	n := nic.New(eng, perfectNIC(), "det")
	q := n.NewQueue(1 << 16)
	rec := core.NewRecorder(eng, "cap", nic.PerfectTimestamper{}, true)
	q.Connect(rec, 0)
	rp.Replay(eng, q, ref, sim.Millisecond)
	eng.RunUntil(sim.Second)
	return rec.Trace().Normalize()
}

// TestTcpreplayTwoEngineDeterminism: regression for the cached-RNG bug.
// A Tcpreplay instance reused across engines must give each engine the
// jitter stream derived from *that engine's* seed — replaying on engine
// B must be byte-identical whether or not the same instance replayed on
// engine A first. The cached rng consumed engine A's stream during
// engine B's replay, so reuse broke deterministic replayability.
func TestTcpreplayTwoEngineDeterminism(t *testing.T) {
	ref := referenceTrace(CompareConfig{Packets: 1500}.defaults())

	// Shared instance: engine A then engine B.
	shared := &Tcpreplay{}
	_ = tcpreplayCapture(t, shared, ref, 11)
	reused := tcpreplayCapture(t, shared, ref, 22)

	// Fresh instance straight onto engine B.
	fresh := tcpreplayCapture(t, &Tcpreplay{}, ref, 22)

	if reused.Len() != fresh.Len() {
		t.Fatalf("reused replayer delivered %d packets, fresh %d", reused.Len(), fresh.Len())
	}
	for i := range fresh.Packets {
		if reused.Times[i] != fresh.Times[i] || reused.Packets[i].Tag != fresh.Packets[i].Tag {
			t.Fatalf("packet %d: reused replayer (%v @%v) != fresh (%v @%v) — RNG stream leaked across engines",
				i, reused.Packets[i].Tag, reused.Times[i], fresh.Packets[i].Tag, fresh.Times[i])
		}
	}

	// And distinct engine seeds must still produce distinct jitter.
	other := tcpreplayCapture(t, &Tcpreplay{}, ref, 11)
	same := true
	for i := range fresh.Packets {
		if other.Times[i] != fresh.Times[i] {
			same = false
			break
		}
	}
	if same && other.Len() == fresh.Len() {
		t.Fatal("different engine seeds produced identical tcpreplay timing")
	}
}
