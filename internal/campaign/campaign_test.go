package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/testbed"
)

// testConfig is a small, fast campaign: one environment, three reps.
func testConfig() Config {
	return Config{
		Name:    "test",
		Envs:    []testbed.Env{testbed.LocalSingle()},
		Reps:    3,
		Packets: 1000,
		Runs:    2,
		Seed:    5,
	}
}

// mustRun runs a campaign invocation and fails the test on error.
func mustRun(t *testing.T, cfg Config, journal string, resume bool) *Result {
	t.Helper()
	res, err := Run(cfg, journal, resume, nil)
	if err != nil {
		t.Fatalf("campaign.Run(resume=%v): %v", resume, err)
	}
	return res
}

// uninterrupted runs the campaign start-to-finish in a fresh journal
// and returns the rendered table.
func uninterrupted(t *testing.T, cfg Config, dir string) string {
	t.Helper()
	res := mustRun(t, cfg, filepath.Join(dir, "full.journal"), false)
	if res.Doc == nil {
		t.Fatal("uninterrupted campaign did not render")
	}
	if res.Interrupted || res.Skipped != 0 {
		t.Fatalf("uninterrupted run: %+v", res)
	}
	return res.Doc.String()
}

// resumeToCompletion drives a journal to completion with repeated
// -resume invocations, checkpointing after every `chunk` trials, and
// returns the final table.
func resumeToCompletion(t *testing.T, cfg Config, journal string, chunk int) string {
	t.Helper()
	cfg.StopAfter = chunk
	res := mustRun(t, cfg, journal, false)
	for i := 0; res.Doc == nil; i++ {
		if !res.Interrupted {
			t.Fatalf("no doc but not interrupted: %+v", res)
		}
		if i > 50 {
			t.Fatal("campaign never completed")
		}
		res = mustRun(t, cfg, journal, true)
	}
	return res.Doc.String()
}

// TestResumeByteIdentical is the tentpole contract: a campaign
// interrupted and resumed at every journal offset renders a final table
// byte-identical to an uninterrupted run from the same seed.
func TestResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	want := uninterrupted(t, cfg, dir)
	if !strings.Contains(want, "3/3") {
		t.Fatalf("full campaign table missing 3/3 annotation:\n%s", want)
	}

	for _, chunk := range []int{1, 2} {
		journal := filepath.Join(dir, "chunked.journal")
		os.Remove(journal)
		got := resumeToCompletion(t, cfg, journal, chunk)
		if got != want {
			t.Fatalf("resumed table (chunk=%d) differs from uninterrupted run:\n--- resumed ---\n%s--- uninterrupted ---\n%s", chunk, got, want)
		}
	}
}

// TestResumeByteIdenticalParallel: scheduler width changes neither the
// uninterrupted nor the interrupted-and-resumed table.
func TestResumeByteIdenticalParallel(t *testing.T) {
	dir := t.TempDir()
	seq := testConfig()
	want := uninterrupted(t, seq, dir)

	par := testConfig()
	par.Pool = parallel.New(3)
	journal := filepath.Join(dir, "par.journal")
	if got := resumeToCompletion(t, par, journal, 1); got != want {
		t.Fatalf("parallel resumed table differs:\n--- parallel ---\n%s--- sequential ---\n%s", got, want)
	}
}

// TestResumeAfterTornOrCorruptJournal: kill the campaign mid-flight,
// then damage the journal the way a crash would — truncate mid-record
// (torn final write) or flip a byte (bit rot) — and resume. Damaged
// records re-run; the final table stays byte-identical.
func TestResumeAfterTornOrCorruptJournal(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	want := uninterrupted(t, cfg, dir)

	checkpoint := func(name string) (string, int64) {
		t.Helper()
		journal := filepath.Join(dir, name)
		c := cfg
		c.StopAfter = 2
		res := mustRun(t, c, journal, false)
		if res.Doc != nil || !res.Interrupted {
			t.Fatalf("checkpoint run completed unexpectedly: %+v", res)
		}
		st, err := os.Stat(journal)
		if err != nil {
			t.Fatal(err)
		}
		return journal, st.Size()
	}

	finish := func(journal string) string {
		t.Helper()
		res := mustRun(t, cfg, journal, true)
		for res.Doc == nil {
			res = mustRun(t, cfg, journal, true)
		}
		return res.Doc.String()
	}

	// Torn final record: truncate at several offsets inside the tail.
	for _, back := range []int64{1, 7, 40} {
		journal, size := checkpoint("torn.journal")
		if err := os.Truncate(journal, size-back); err != nil {
			t.Fatal(err)
		}
		if got := finish(journal); got != want {
			t.Fatalf("table differs after truncating %d bytes off the journal tail", back)
		}
		os.Remove(journal)
	}

	// A torn half-line appended with no newline (crash mid-append).
	journal, _ := checkpoint("halfline.journal")
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"trial","idx":2,"key":"half`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := finish(journal); got != want {
		t.Fatal("table differs after a torn half-record append")
	}
	os.Remove(journal)

	// Bit rot inside an earlier record: everything from the flipped
	// byte onward is discarded and re-run.
	journal, size := checkpoint("corrupt.journal")
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	raw[size/2] ^= 0x20
	if err := os.WriteFile(journal, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := finish(journal); got != want {
		t.Fatal("table differs after mid-journal corruption")
	}
}

// TestTimeoutRetriesThenDegrades: a trial that exhausts its sim-step
// budget retries (deterministically failing the same way) and is then
// journaled as failed; the campaign completes with a flagged partial
// row instead of aborting.
func TestTimeoutRetriesThenDegrades(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.Reps = 2
	cfg.MaxSteps = 500 // far below what the protocol needs
	cfg.Retries = 1
	res := mustRun(t, cfg, filepath.Join(dir, "budget.journal"), false)
	if res.Doc == nil {
		t.Fatal("degraded campaign did not render")
	}
	if res.Failed != res.Planned || res.Completed != 0 {
		t.Fatalf("want every trial failed: %+v", res)
	}
	out := res.Doc.String()
	if !strings.Contains(out, "0/2") {
		t.Fatalf("missing 0/2 annotation:\n%s", out)
	}
	if !strings.Contains(out, "degraded trials") || !strings.Contains(out, "step budget") {
		t.Fatalf("degraded section missing or unexplained:\n%s", out)
	}
	if !strings.Contains(out, "2 attempt(s)") {
		t.Fatalf("retry count not recorded:\n%s", out)
	}
}

// TestMixedConditionsPartialTable: a condition that deterministically
// breaks every trial (drop everything before the recorder) degrades its
// own rows to 0/reps while the clean rows stay n/reps — and the whole
// degraded campaign is still resume-stable.
func TestMixedConditionsPartialTable(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.Reps = 2
	cfg.Retries = 0
	cfg.Conditions = []Condition{
		{Name: "clean"},
		{Name: "blackhole", Plan: fault.Plan{Drop: 1}},
	}
	want := uninterrupted(t, cfg, dir)
	if !strings.Contains(want, "2/2") || !strings.Contains(want, "0/2") {
		t.Fatalf("mixed table missing annotations:\n%s", want)
	}
	if !strings.Contains(want, "blackhole") {
		t.Fatalf("condition name missing:\n%s", want)
	}

	journal := filepath.Join(dir, "mixed.journal")
	if got := resumeToCompletion(t, cfg, journal, 1); got != want {
		t.Fatalf("mixed campaign not resume-stable:\n--- resumed ---\n%s--- uninterrupted ---\n%s", got, want)
	}
}

// TestJournalGuards: a fresh run refuses to clobber an existing
// journal, and resume refuses a journal from a different campaign.
func TestJournalGuards(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.Reps = 1
	journal := filepath.Join(dir, "guard.journal")
	mustRun(t, cfg, journal, false)

	if _, err := Run(cfg, journal, false, nil); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("fresh run over an existing journal: err=%v", err)
	}

	other := cfg
	other.Seed = 999
	if _, err := Run(other, journal, true, nil); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("resume with mismatched seed: err=%v", err)
	}

	// Resume with a matching config over a complete journal is a no-op
	// that still renders the same table.
	res := mustRun(t, cfg, journal, true)
	if res.Doc == nil || res.Executed != 0 || res.Skipped != res.Planned {
		t.Fatalf("no-op resume: %+v", res)
	}
}

// TestObsCounters: the runner exports trial/journal/resume telemetry.
func TestObsCounters(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.Reps = 2
	cfg.Obs = obs.New()
	journal := filepath.Join(dir, "obs.journal")

	cfg.StopAfter = 1
	res := mustRun(t, cfg, journal, false)
	if !res.Interrupted {
		t.Fatalf("expected checkpoint: %+v", res)
	}
	cfg.StopAfter = 0
	res = mustRun(t, cfg, journal, true)
	if res.Doc == nil {
		t.Fatal("resumed campaign did not render")
	}

	reg := cfg.Obs.Registry()
	if v := reg.Counter("campaign_trials_completed_total", "").Value(); v != int64(res.Planned) {
		t.Fatalf("completed counter %d, want %d", v, res.Planned)
	}
	if v := reg.Counter("campaign_resume_skipped_total", "").Value(); v != int64(res.Skipped) {
		t.Fatalf("skip counter %d, want %d", v, res.Skipped)
	}
	if v, ok := reg.GaugeValue("campaign_journal_bytes"); !ok || int64(v) != res.JournalBytes {
		t.Fatalf("journal bytes gauge %v (ok=%v), want %d", v, ok, res.JournalBytes)
	}
	if v, ok := reg.GaugeValue("campaign_trials_planned"); !ok || int(v) != res.Planned {
		t.Fatalf("planned gauge %v, want %d", v, res.Planned)
	}
}
