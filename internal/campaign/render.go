package campaign

import (
	"fmt"
	"strings"

	"repro/internal/report"
)

// render builds the final campaign table from the terminal records.
// Everything here is a pure function of the records (which round-trip
// exactly through the journal's JSON — Go prints shortest-roundtrip
// floats), so an interrupted-and-resumed campaign renders byte-identical
// output to an uninterrupted one.
//
// Cells aggregate the mean metric vector over the reps that completed;
// the Runs column carries the explicit n/reps annotation the paper-style
// table needs to stay honest about degraded cells, and failed trials are
// itemized in their own section instead of aborting the campaign.
func (c Config) render(recs map[int]Record) *report.Document {
	doc := &report.Document{Title: "Campaign — " + c.Name}
	condNames := make([]string, len(c.Conditions))
	for i, cond := range c.Conditions {
		condNames[i] = cond.Name
	}
	doc.Add("campaign", fmt.Sprintf(
		"%d trials = %d environments × %d conditions (%s) × %d reps; %d packets × %d replay runs per trial; base seed %d",
		len(c.Envs)*len(c.Conditions)*c.Reps, len(c.Envs), len(c.Conditions),
		strings.Join(condNames, ", "), c.Reps, c.Packets, c.Runs, c.Seed))

	tb := report.NewTable("", "Environment", "Condition", "U", "O", "I", "L", "κ", "Max drops", "Runs")
	for ei, env := range c.Envs {
		for ci, cond := range c.Conditions {
			var n int
			var u, o, iacc, l, k float64
			maxMissing := 0
			for rep := 0; rep < c.Reps; rep++ {
				idx := (ei*len(c.Conditions)+ci)*c.Reps + rep
				r, ok := recs[idx]
				if !ok || r.Status != StatusOK || r.Mean == nil {
					continue
				}
				n++
				u += r.Mean.U
				o += r.Mean.O
				iacc += r.Mean.I
				l += r.Mean.L
				k += r.Mean.Kappa
				if r.MaxMissing > maxMissing {
					maxMissing = r.MaxMissing
				}
			}
			runs := fmt.Sprintf("%d/%d", n, c.Reps)
			if n == 0 {
				tb.AddRow(env.Name, cond.Name, "—", "—", "—", "—", "—", "—", runs)
				continue
			}
			fn := float64(n)
			tb.AddRow(env.Name, cond.Name,
				report.G(u/fn), report.G(o/fn), report.G(iacc/fn), report.G(l/fn),
				fmt.Sprintf("%.4f", k/fn), fmt.Sprintf("%d", maxMissing), runs)
		}
	}
	doc.Add("", tb.String())

	// Degraded trials, in matrix order: which cells the n/reps
	// annotations are discounting, and why.
	var fails []string
	for idx := 0; idx < len(c.Envs)*len(c.Conditions)*c.Reps; idx++ {
		if r, ok := recs[idx]; ok && r.Status == StatusFailed {
			fails = append(fails, fmt.Sprintf("%s — %d attempt(s): %s", r.Key, r.Attempts, r.Err))
		}
	}
	if len(fails) > 0 {
		doc.Add("degraded trials", strings.Join(fails, "\n")+"\n")
	}
	return doc
}
