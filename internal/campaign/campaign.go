// Package campaign is the crash-safe, resumable trial-campaign runner
// behind the paper's long evaluations: Table 2 / Fig. 9 style numbers
// come from many-hour campaigns (reps × environments × noise
// conditions), and at production scale those campaigns must survive
// crashes, hangs and partial failures rather than restart from zero.
//
// A campaign expands into a deterministic matrix of (environment,
// noise-condition, rep) trials. Each trial is one full
// experiments.Run protocol execution with its own derived seed, a
// per-trial sim-step budget (a *deterministic* timeout: the same
// runaway trial halts at the same event on every attempt and every
// host), and bounded retries with exponential host-time backoff. Every
// terminal outcome — success or retries-exhausted failure — is appended
// to a checksummed, fsync-per-record JSONL journal before the trial is
// considered complete, so a crash at any instant loses at most the
// trials that were in flight.
//
// On restart with resume=true the journal is replayed: completed trials
// (including degraded ones) are skipped, a torn final record is
// truncated away, and the remaining trials run to produce a final table
// byte-identical to an uninterrupted run — the property the campaign
// tests and the verify.sh gate assert with cmp. Failed trials never
// abort the campaign; their rows render with explicit n/reps
// annotations instead.
//
// Trials fan out across the internal/parallel scheduler; a SIGINT (or
// any close of the stop channel) checkpoints cleanly — in-flight trials
// finish and journal, no new trials start.
package campaign

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/testbed"
)

// Condition is one noise condition of the campaign matrix: a named,
// seeded fault plan layered onto every environment (fault.PerturbEnv).
// The zero plan is the clean condition.
type Condition struct {
	Name string
	Plan fault.Plan
}

// Config describes a campaign. The zero value runs the full Table 2
// matrix: every environment, the clean condition, 10 reps each.
type Config struct {
	// Name identifies the campaign; it is pinned in the journal header
	// so a journal can never be resumed under a different campaign.
	Name string
	// Envs are the environments (default: testbed.AllEnvironments).
	Envs []testbed.Env
	// Conditions are the noise conditions (default: one clean
	// condition).
	Conditions []Condition
	// Reps is the number of independent protocol runs per (environment,
	// condition) cell (default 10 — the paper's campaign width).
	Reps int
	// Packets and Runs scale each protocol run (experiments.TrialConfig).
	Packets int
	Runs    int
	// Seed is the campaign base seed; trial i derives seed
	// Seed + i*104729, so every trial is replayable in isolation.
	Seed int64
	// Retries is how many times a failed trial is re-attempted beyond
	// the first try before it is journaled as failed.
	Retries int
	// Backoff is the host-time wait before the first retry, doubling
	// per attempt (deterministic in the attempt number; host time never
	// touches simulated results). 0 retries immediately.
	Backoff time.Duration
	// Shards partitions each trial's simulation across this many event
	// domains (internal/psim); ignored when MaxSteps is set (the step
	// budget needs the sequential engine). Bit-identical to Shards = 1.
	Shards int
	// MaxSteps is the per-trial sim-step budget — the deterministic
	// trial timeout (0 = unlimited).
	MaxSteps uint64
	// Pool fans trials out across workers (nil = sequential). Trial
	// results are index-addressed, so width never changes the table.
	Pool *parallel.Pool
	// Obs, when non-nil, receives campaign counters/gauges and threads
	// into every trial's simulation (bit-identical either way).
	Obs *obs.Obs
	// Log receives progress diagnostics (one line per trial outcome);
	// nil is silent. Campaign progress is wall-clock-ordered and
	// therefore never part of the deterministic artifact.
	Log io.Writer
	// StopAfter, when > 0, checkpoints the campaign after this many
	// records have been appended by this invocation — the deterministic
	// interrupt the resume tests and the verify.sh gate use in place of
	// killing the process at a random instant.
	StopAfter int
}

// defaults fills zero fields.
func (c Config) defaults() Config {
	if c.Name == "" {
		c.Name = "table2"
	}
	if len(c.Envs) == 0 {
		c.Envs = testbed.AllEnvironments()
	}
	if len(c.Conditions) == 0 {
		c.Conditions = []Condition{{Name: "clean"}}
	}
	if c.Reps == 0 {
		c.Reps = 10
	}
	if c.Packets == 0 {
		c.Packets = experiments.DefaultScale
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// seedStride spaces per-trial seeds (the prime the capture-replay
// harness already uses for per-run seeds).
const seedStride = 104729

// Trial is one cell of the expanded campaign matrix.
type Trial struct {
	Idx  int
	Env  testbed.Env
	Cond Condition
	Rep  int
	Seed int64
}

// Key names the trial the way the journal records it.
func (t Trial) Key() string {
	return fmt.Sprintf("%s|%s|rep%d", t.Env.Name, t.Cond.Name, t.Rep)
}

// trials expands the matrix in deterministic order: environments outer,
// conditions middle, reps inner.
func (c Config) trials() []Trial {
	out := make([]Trial, 0, len(c.Envs)*len(c.Conditions)*c.Reps)
	for _, env := range c.Envs {
		for _, cond := range c.Conditions {
			for rep := 0; rep < c.Reps; rep++ {
				idx := len(out)
				out = append(out, Trial{
					Idx: idx, Env: env, Cond: cond, Rep: rep,
					Seed: c.Seed + int64(idx)*seedStride,
				})
			}
		}
	}
	return out
}

// header builds the journal identity for this config.
func (c Config) header(trials int) header {
	h := header{
		Kind: "campaign", Version: journalVersion, Name: c.Name,
		Seed: c.Seed, Packets: c.Packets, Runs: c.Runs, Reps: c.Reps,
		MaxSteps: c.MaxSteps, Trials: trials,
	}
	for _, e := range c.Envs {
		h.Envs = append(h.Envs, e.Name)
	}
	for _, cond := range c.Conditions {
		h.Conds = append(h.Conds, cond.Name)
	}
	return h
}

// Result is a campaign invocation's outcome.
type Result struct {
	// Doc is the final rendered table — nil when the invocation was
	// interrupted before the matrix completed (resume to finish).
	Doc *report.Document
	// Planned/Completed/Failed/Skipped/Executed count trials: the full
	// matrix, terminal-ok, terminal-failed, skipped via journal replay,
	// and run by this invocation.
	Planned, Completed, Failed, Skipped, Executed int
	// RetriedAttempts counts retry attempts performed by this
	// invocation.
	RetriedAttempts int
	// JournalBytes is the journal size after this invocation.
	JournalBytes int64
	// Interrupted reports a clean checkpoint (SIGINT or StopAfter)
	// before the matrix completed.
	Interrupted bool
}

// Run executes (or resumes) a campaign against the journal at
// journalPath. Closing stop checkpoints cleanly: in-flight trials
// finish and journal, no new trials start, and the Result comes back
// with Interrupted set. A completed matrix renders the final table,
// byte-identical regardless of how many interruptions and resumes it
// took to get there.
func Run(cfg Config, journalPath string, resume bool, stop <-chan struct{}) (*Result, error) {
	cfg = cfg.defaults()
	trials := cfg.trials()
	j, done, err := openJournal(journalPath, cfg.header(len(trials)), resume)
	if err != nil {
		return nil, err
	}
	defer j.close()

	// Campaign telemetry (all nil-safe when cfg.Obs is nil).
	var (
		cDone, cFailed, cRetried, cSkipped *obs.Counter
		gBytes, gPlanned                   *obs.Gauge
	)
	if cfg.Obs != nil {
		reg := cfg.Obs.Registry()
		cDone = reg.Counter("campaign_trials_completed_total", "trials journaled with status ok")
		cFailed = reg.Counter("campaign_trials_failed_total", "trials journaled as failed after exhausting retries")
		cRetried = reg.Counter("campaign_trials_retried_total", "retry attempts performed")
		cSkipped = reg.Counter("campaign_resume_skipped_total", "completed trials skipped by journal replay on resume")
		gBytes = reg.Gauge("campaign_journal_bytes", "size of the campaign journal")
		gPlanned = reg.Gauge("campaign_trials_planned", "trials in the campaign matrix")
	}
	gPlanned.SetInt(int64(len(trials)))
	gBytes.SetInt(j.bytes)
	cSkipped.Add(int64(len(done)))

	res := &Result{Planned: len(trials), Skipped: len(done)}
	for _, r := range done {
		if r.Status == StatusOK {
			res.Completed++
		} else {
			res.Failed++
		}
	}
	if res.Skipped > 0 {
		cfg.logf("campaign: resume skipped %d/%d journaled trials", res.Skipped, len(trials))
	}

	var remaining []Trial
	for _, t := range trials {
		if _, ok := done[t.Idx]; !ok {
			remaining = append(remaining, t)
		}
	}

	// The stop surface: external stop (SIGINT) and the StopAfter
	// checkpoint hook both funnel into one channel the scheduler
	// watches.
	stopCh := make(chan struct{})
	var stopOnce sync.Once
	checkpoint := func() { stopOnce.Do(func() { close(stopCh) }) }
	finished := make(chan struct{})
	defer close(finished)
	if stop != nil {
		go func() {
			select {
			case <-stop:
				checkpoint()
			case <-finished:
			}
		}()
	}

	var mu sync.Mutex
	results := make(map[int]Record, len(trials))
	for idx, r := range done {
		results[idx] = r
	}

	err = cfg.Pool.DoUntil(len(remaining), stopCh, func(i int) error {
		t := remaining[i]
		rec, retries := cfg.runTrial(t)
		added, size, err := j.append(&rec)
		if err != nil {
			return err // a journal that cannot persist aborts the campaign
		}
		gBytes.SetInt(size)
		cRetried.Add(int64(retries))
		mu.Lock()
		results[t.Idx] = rec
		res.Executed++
		res.RetriedAttempts += retries
		if rec.Status == StatusOK {
			res.Completed++
		} else {
			res.Failed++
		}
		res.JournalBytes = size
		mu.Unlock()
		if rec.Status == StatusOK {
			cDone.Inc()
			cfg.logf("campaign: trial %d/%d %s ok (attempt %d)", t.Idx+1, len(trials), rec.Key, rec.Attempts)
		} else {
			cFailed.Inc()
			cfg.logf("campaign: trial %d/%d %s FAILED after %d attempts: %s", t.Idx+1, len(trials), rec.Key, rec.Attempts, rec.Err)
		}
		if cfg.StopAfter > 0 && added >= cfg.StopAfter {
			checkpoint()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.JournalBytes = j.bytes
	if err := j.close(); err != nil {
		return nil, fmt.Errorf("campaign: closing journal: %w", err)
	}

	if len(results) < len(trials) {
		res.Interrupted = true
		cfg.logf("campaign: checkpointed with %d/%d trials journaled — resume to finish", len(results), len(trials))
		return res, nil
	}
	res.Doc = cfg.render(results)
	return res, nil
}

// runTrial executes one trial with retries and returns its terminal
// record plus the number of retry attempts performed. With span tracing
// enabled (Obs.WithSpans) every trial roots its own causal tree — one
// "attempt" child per try, so a retried trial's backoff and re-runs are
// visible in the exported trace — and, like every other instrument,
// the spans never perturb the trial: the table is bit-identical with
// tracing on or off.
func (c Config) runTrial(t Trial) (Record, int) {
	rec := Record{Kind: "trial", Idx: t.Idx, Key: t.Key(), Seed: t.Seed}
	sp := c.Obs.SpanTrace().Root("trial", "campaign",
		obs.L("trial", t.Key()), obs.L("env", t.Env.Name), obs.L("cond", t.Cond.Name))
	sp.AttrInt("seed", t.Seed)
	defer sp.End()
	retries := 0
	var lastErr error
	for a := 0; a <= c.Retries; a++ {
		if a > 0 {
			retries++
			if c.Backoff > 0 {
				// Deterministic exponential backoff: the wait depends
				// only on the attempt number.
				time.Sleep(c.Backoff << (a - 1))
			}
		}
		rec.Attempts = a + 1
		spAtt := sp.Child("attempt", "", obs.L("attempt", fmt.Sprintf("%d", a+1)))
		env := t.Env
		if !t.Cond.Plan.IsIdentity() {
			// Re-seed the plan per trial so each rep sees fresh (but
			// replayable) noise: the derived seed is a pure function of
			// the trial identity.
			plan := t.Cond.Plan
			plan.Seed ^= uint64(t.Seed)
			env = plan.PerturbEnv(env)
		}
		out, err := experiments.Run(env, experiments.TrialConfig{
			Packets: c.Packets, Runs: c.Runs, Seed: t.Seed,
			MaxSteps: c.MaxSteps, Obs: c.Obs, Shards: c.Shards,
		})
		if err != nil {
			lastErr = err
			spAtt.SetError(err)
			spAtt.End()
			continue
		}
		if len(out.Traces) == 0 || out.Traces[0].Len() == 0 {
			// The middleboxes saw traffic but the recorder captured an
			// empty reference trace (e.g. an injector black-holed the
			// recorder's ingress). Comparing empty-vs-empty replays
			// would report a degenerate, perfect-looking κ = 1, so the
			// trial is degraded instead of silently scored.
			lastErr = fmt.Errorf("campaign: %s: empty reference trace — recorder captured 0 of %d recorded packets", t.Key(), out.Recorded)
			spAtt.SetError(lastErr)
			spAtt.End()
			continue
		}
		spAtt.End()
		rec.Status = StatusOK
		rec.Recorded = out.Recorded
		for _, m := range out.Missing {
			if m > rec.MaxMissing {
				rec.MaxMissing = m
			}
		}
		s := out.Summary()
		rec.Mean = &s.Mean
		sp.Attr("kappa", fmt.Sprintf("%.4f", s.Mean.Kappa))
		return rec, retries
	}
	rec.Status = StatusFailed
	rec.Err = lastErr.Error()
	sp.SetError(lastErr)
	return rec, retries
}

// logf writes one progress line (wall-clock diagnostics, never part of
// the deterministic artifact).
func (c Config) logf(format string, args ...any) {
	if c.Log == nil {
		return
	}
	fmt.Fprintf(c.Log, format+"\n", args...)
}
