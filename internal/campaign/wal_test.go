package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type walBody struct {
	N int    `json:"n"`
	S string `json:"s"`
}

// replayAll reopens the WAL collecting every intact entry.
func replayAll(t *testing.T, path string) (kinds []string, bodies []walBody, w *WAL) {
	t.Helper()
	w, err := OpenWAL(path, func(kind string, body json.RawMessage) error {
		var b walBody
		if err := json.Unmarshal(body, &b); err != nil {
			return err
		}
		kinds = append(kinds, kind)
		bodies = append(bodies, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return kinds, bodies, w
}

// TestWALRoundTrip: append, close, replay — order and content intact.
func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := OpenWAL(path, func(string, json.RawMessage) error { t.Fatal("fresh wal replayed entries"); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append("e", walBody{N: i, S: strings.Repeat("x", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := w.Append("e", walBody{}); err == nil {
		t.Fatal("append after close accepted")
	}

	kinds, bodies, w2 := replayAll(t, path)
	defer w2.Close()
	if len(kinds) != 5 {
		t.Fatalf("replayed %d entries, want 5", len(kinds))
	}
	for i, b := range bodies {
		if b.N != i || len(b.S) != i {
			t.Fatalf("entry %d: %+v", i, b)
		}
	}
}

// TestWALTornTail: a torn final line (crash mid-append) is discarded on
// open and the file is truncated so later appends produce a clean log.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := OpenWAL(path, func(string, json.RawMessage) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append("e", walBody{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-line.
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	kinds, _, w2 := replayAll(t, path)
	if len(kinds) != 2 {
		t.Fatalf("replayed %d entries after tear, want 2", len(kinds))
	}
	if err := w2.Append("e", walBody{N: 9}); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	kinds, bodies, w3 := replayAll(t, path)
	w3.Close()
	if len(kinds) != 3 || bodies[2].N != 9 {
		t.Fatalf("after heal: %d entries, last %+v", len(kinds), bodies[len(bodies)-1])
	}
}

// TestWALBitRot: a flipped bit in any line stops replay at that line —
// everything after is treated as never written.
func TestWALBitRot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := OpenWAL(path, func(string, json.RawMessage) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append("e", walBody{N: i, S: "payload"}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	// Flip a byte inside the second line's body.
	mut := []byte(lines[1])
	mut[len(mut)/2] ^= 0x01
	lines[1] = string(mut)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	kinds, _, w2 := replayAll(t, path)
	w2.Close()
	if len(kinds) != 1 {
		t.Fatalf("replayed %d entries past bit rot, want 1", len(kinds))
	}
}
