package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/experiments"
)

// The journal is the campaign's crash-safety substrate: an append-only
// JSONL file with one checksummed record per completed trial, fsync'd
// record by record. A crash at any instant therefore loses at most the
// trials that were in flight — everything journaled before the crash is
// durable, and the loader tolerates (and truncates away) a torn final
// record, the normal wreckage of a power cut mid-write.
//
// Every line is a JSON object with a "sum" field holding the CRC-32
// (IEEE) of the same object serialized with "sum" empty. Validation
// re-derives exactly that, so a flipped bit anywhere in a line is
// detected and the line — plus everything after it, whose provenance is
// now suspect — is discarded.

// journalVersion is bumped on incompatible record layout changes.
const journalVersion = 1

// header is the journal's first line: the campaign identity. Resume
// refuses a journal whose identity does not match the running config,
// so results from one campaign can never silently leak into another's
// table.
type header struct {
	Kind     string   `json:"kind"` // "campaign"
	Version  int      `json:"v"`
	Name     string   `json:"name"`
	Seed     int64    `json:"seed"`
	Packets  int      `json:"packets"`
	Runs     int      `json:"runs"`
	Reps     int      `json:"reps"`
	MaxSteps uint64   `json:"max_steps"`
	Trials   int      `json:"trials"`
	Envs     []string `json:"envs"`
	Conds    []string `json:"conds"`
	Sum      string   `json:"sum"`
}

// Record is one journaled trial outcome. Ok trials carry the metric
// summary the final table renders from; failed trials carry the last
// attempt's error. Both are terminal: resume skips them either way
// (a trial that exhausted its retries is *completed*, just degraded).
type Record struct {
	Kind     string `json:"kind"` // "trial"
	Idx      int    `json:"idx"`
	Key      string `json:"key"`
	Seed     int64  `json:"seed"`
	Attempts int    `json:"attempts"`
	Status   string `json:"status"` // StatusOK or StatusFailed

	Recorded   uint64                   `json:"recorded,omitempty"`
	MaxMissing int                      `json:"max_missing,omitempty"`
	Mean       *experiments.MeanSummary `json:"mean,omitempty"`
	Err        string                   `json:"err,omitempty"`

	Sum string `json:"sum"`
}

// Trial terminal states.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// checksumJSON marshals v (whose Sum field must already be empty) and
// returns the serialized bytes and their CRC-32 in the form the Sum
// field stores.
func checksumJSON(v any) ([]byte, string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, "", err
	}
	return raw, fmt.Sprintf("crc32:%08x", crc32.ChecksumIEEE(raw)), nil
}

// sealHeader fills h.Sum.
func sealHeader(h *header) error {
	h.Sum = ""
	_, sum, err := checksumJSON(h)
	if err != nil {
		return err
	}
	h.Sum = sum
	return nil
}

// sealRecord fills r.Sum.
func sealRecord(r *Record) error {
	r.Sum = ""
	_, sum, err := checksumJSON(r)
	if err != nil {
		return err
	}
	r.Sum = sum
	return nil
}

// verifySum checks a parsed line's checksum by re-deriving it with the
// Sum field cleared. reseal must clear-and-recompute on the same value
// the line unmarshaled into.
func verifyHeaderSum(h header) bool {
	want := h.Sum
	if err := sealHeader(&h); err != nil {
		return false
	}
	return want != "" && want == h.Sum
}

func verifyRecordSum(r Record) bool {
	want := r.Sum
	if err := sealRecord(&r); err != nil {
		return false
	}
	return want != "" && want == r.Sum
}

// journal is the append side: an fsync-per-record JSONL writer shared
// by the campaign workers.
type journal struct {
	mu    sync.Mutex
	f     *os.File
	bytes int64
	added int // records appended by this process
}

// append seals, writes and fsyncs one record, returning the total
// number of records this process has appended (the -stop-after hook
// counts these) and the journal's size in bytes.
func (j *journal) append(r *Record) (added int, size int64, err error) {
	if err := sealRecord(r); err != nil {
		return 0, 0, err
	}
	line, err := json.Marshal(r)
	if err != nil {
		return 0, 0, err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return 0, 0, fmt.Errorf("campaign: journal append: %w", err)
	}
	// fsync per record: the record is durable before the trial is
	// considered complete, so a crash can only lose in-flight work.
	if err := j.f.Sync(); err != nil {
		return 0, 0, fmt.Errorf("campaign: journal fsync: %w", err)
	}
	j.bytes += int64(len(line))
	j.added++
	return j.added, j.bytes, nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadJournal reads an existing journal, validates the header against
// want, and returns the completed records plus the byte offset of the
// end of the last *good* line. Reading stops at the first torn or
// corrupt line: a torn tail is the expected signature of a crash
// mid-append, so everything from the first bad byte onward is treated
// as never written (the caller truncates to goodBytes before
// appending).
func loadJournal(path string, want header) (recs map[int]Record, goodBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	recs = make(map[int]Record)
	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	first := true
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			if err == io.EOF {
				// No trailing newline: a torn final record. Discard.
				return recs, off, nil
			}
			return nil, 0, fmt.Errorf("campaign: reading journal: %w", err)
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			off += int64(len(line))
			continue
		}
		if first {
			var h header
			if json.Unmarshal(trimmed, &h) != nil || h.Kind != "campaign" || !verifyHeaderSum(h) {
				return nil, 0, fmt.Errorf("campaign: %s: first journal line is not a valid campaign header", path)
			}
			if err := matchHeader(h, want); err != nil {
				return nil, 0, fmt.Errorf("campaign: %s: %w", path, err)
			}
			first = false
			off += int64(len(line))
			continue
		}
		var r Record
		if json.Unmarshal(trimmed, &r) != nil || r.Kind != "trial" || !verifyRecordSum(r) {
			// Corrupt or torn line: stop here. Everything after it is
			// suspect and will be re-run.
			return recs, off, nil
		}
		if r.Idx < 0 || r.Idx >= want.Trials {
			return recs, off, nil
		}
		recs[r.Idx] = r
		off += int64(len(line))
	}
}

// matchHeader verifies that a journal belongs to the campaign the
// caller is about to run.
func matchHeader(got, want header) error {
	switch {
	case got.Version != want.Version:
		return fmt.Errorf("journal version %d, this binary writes %d", got.Version, want.Version)
	case got.Name != want.Name:
		return fmt.Errorf("journal is for campaign %q, not %q", got.Name, want.Name)
	case got.Seed != want.Seed:
		return fmt.Errorf("journal seed %d does not match -seed %d", got.Seed, want.Seed)
	case got.Packets != want.Packets:
		return fmt.Errorf("journal packets %d does not match %d", got.Packets, want.Packets)
	case got.Runs != want.Runs:
		return fmt.Errorf("journal runs %d does not match %d", got.Runs, want.Runs)
	case got.Reps != want.Reps:
		return fmt.Errorf("journal reps %d does not match %d", got.Reps, want.Reps)
	case got.MaxSteps != want.MaxSteps:
		return fmt.Errorf("journal trial budget %d does not match %d", got.MaxSteps, want.MaxSteps)
	case got.Trials != want.Trials:
		return fmt.Errorf("journal plans %d trials, this config plans %d", got.Trials, want.Trials)
	case !equalStrings(got.Envs, want.Envs):
		return fmt.Errorf("journal environments %v do not match %v", got.Envs, want.Envs)
	case !equalStrings(got.Conds, want.Conds):
		return fmt.Errorf("journal conditions %v do not match %v", got.Conds, want.Conds)
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// openJournal prepares the journal file for a run. Fresh runs refuse to
// clobber a non-empty journal (the crash-safe default: losing hours of
// trial results to a forgotten -resume should be impossible); resume
// runs load it, truncate any torn tail, and reopen for append. A resume
// against a missing journal degrades to a fresh start.
func openJournal(path string, h header, resume bool) (*journal, map[int]Record, error) {
	if resume {
		if _, err := os.Stat(path); err == nil {
			recs, good, err := loadJournal(path, h)
			if err != nil {
				return nil, nil, err
			}
			f, err := os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				return nil, nil, err
			}
			if err := f.Truncate(good); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("campaign: truncating torn journal tail: %w", err)
			}
			if _, err := f.Seek(0, io.SeekEnd); err != nil {
				f.Close()
				return nil, nil, err
			}
			return &journal{f: f, bytes: good}, recs, nil
		} else if !os.IsNotExist(err) {
			return nil, nil, err
		}
		// Fall through: resume with no journal yet is a fresh start.
	}
	if st, err := os.Stat(path); err == nil && st.Size() > 0 && !resume {
		return nil, nil, fmt.Errorf("campaign: journal %s already exists (%d bytes); pass -resume to continue it or remove it to start over", path, st.Size())
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	if err := sealHeader(&h); err != nil {
		f.Close()
		return nil, nil, err
	}
	line, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	line = append(line, '\n')
	if _, err := f.Write(line); err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &journal{f: f, bytes: int64(len(line))}, map[int]Record{}, nil
}
