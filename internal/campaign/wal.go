package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// WAL generalizes the campaign journal into a reusable crash-safety
// substrate: an append-only JSONL log where every line is a CRC-32
// (IEEE) checksummed envelope around an arbitrary JSON body, fsync'd
// per append. It shares the campaign journal's torn-tail discipline —
// replay stops at the first line that fails its checksum, and Open
// truncates everything from that byte onward, because a torn or
// bit-rotted line means every later line's provenance is suspect.
//
// The consistency service (internal/serve) journals per-tenant session
// lifecycles through this type; the campaign runner keeps its own
// schema-specific journal but both write the same on-disk dialect
// ("crc32:%08x" sums over the checksummed bytes).
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// walEntry is the on-disk envelope: the body's bytes plus the CRC-32 of
// exactly those bytes. Verification is byte-precise — the body is kept
// as RawMessage, so no field-ordering or float-formatting ambiguity can
// creep in between writer and reader.
type walEntry struct {
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
	Sum  string          `json:"sum"`
}

// OpenWAL opens (creating if absent) the log at path for appending,
// first replaying every intact entry through apply in write order and
// truncating any torn or corrupt tail. apply receives each entry's kind
// and raw body; unmarshal into whatever schema the kind implies.
func OpenWAL(path string, apply func(kind string, body json.RawMessage) error) (*WAL, error) {
	good := int64(0)
	if raw, err := os.Open(path); err == nil {
		br := bufio.NewReaderSize(raw, 1<<16)
		for {
			line, err := br.ReadBytes('\n')
			if err != nil {
				// io.EOF with a partial line is a torn final record;
				// either way replay stops at the last good byte.
				if err != io.EOF {
					raw.Close()
					return nil, fmt.Errorf("campaign: reading wal %s: %w", path, err)
				}
				break
			}
			trimmed := bytes.TrimSpace(line)
			if len(trimmed) == 0 {
				good += int64(len(line))
				continue
			}
			var e walEntry
			if json.Unmarshal(trimmed, &e) != nil || e.Sum != walSum(e.Kind, e.Body) {
				break
			}
			if err := apply(e.Kind, e.Body); err != nil {
				raw.Close()
				return nil, fmt.Errorf("campaign: replaying wal %s: %w", path, err)
			}
			good += int64(len(line))
		}
		raw.Close()
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: truncating torn wal tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &WAL{f: f, path: path}, nil
}

// walSum derives the envelope checksum over the kind and the body's
// exact bytes.
func walSum(kind string, body json.RawMessage) string {
	h := crc32.NewIEEE()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(body)
	return fmt.Sprintf("crc32:%08x", h.Sum32())
}

// Append marshals body, seals it in a checksummed envelope and fsyncs
// it. The entry is durable before Append returns — a crash immediately
// after can lose at most work that was never acknowledged.
func (w *WAL) Append(kind string, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	line, err := json.Marshal(walEntry{Kind: kind, Body: raw, Sum: walSum(kind, raw)})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("campaign: wal %s is closed", w.path)
	}
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("campaign: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("campaign: wal fsync: %w", err)
	}
	return nil
}

// Close syncs and releases the file. Idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	f := w.f
	w.f = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
