package metrics

import (
	"math"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// windowedTrial builds n packets at the given IAT with a perturbation
// applied inside [from, to).
func windowedTrial(name string, n int, iat sim.Duration, perturb func(i int, t sim.Time) sim.Time) *trace.Trace {
	tr := trace.New(name, n)
	for i := 0; i < n; i++ {
		at := sim.Time(i) * iat
		if perturb != nil {
			at = perturb(i, at)
		}
		tr.Append(&packet.Packet{Tag: packet.Tag{Seq: uint64(i)}, Kind: packet.KindData, FrameLen: 100}, at)
	}
	return tr
}

func TestWindowedIdenticalAllPerfect(t *testing.T) {
	a := windowedTrial("A", 1000, 100, nil)
	b := windowedTrial("B", 1000, 100, nil)
	ws, err := CompareWindowed(a, b, 10_000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 10 {
		t.Fatalf("%d windows, want 10", len(ws))
	}
	for _, w := range ws {
		if w.Result.Kappa != 1 {
			t.Fatalf("window %v not perfect: %v", w, w.Result)
		}
	}
}

func TestWindowedLocalizesEpisode(t *testing.T) {
	// Jitter only in the 4th of 10 windows; the other windows stay
	// clean and the worst window is the episode.
	a := windowedTrial("A", 1000, 100, nil)
	b := windowedTrial("B", 1000, 100, func(i int, at sim.Time) sim.Time {
		if i >= 300 && i < 400 {
			return at + sim.Time(i%3)*30 // local IAT churn, stays monotone
		}
		return at
	})
	ws, err := CompareWindowed(a, b, 10_000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	worst := WorstWindow(ws)
	if worst.Start != 30_000 {
		t.Fatalf("worst window at %v, want 30000 (the perturbed one)", worst.Start)
	}
	clean := 0
	for _, w := range ws {
		if w.Result.Kappa > 0.99 {
			clean++
		}
	}
	if clean < 7 {
		t.Fatalf("only %d of %d windows clean", clean, len(ws))
	}
}

func TestWindowedInvalidWindow(t *testing.T) {
	a := windowedTrial("A", 10, 100, nil)
	if _, err := CompareWindowed(a, a, 0, Options{}); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestWindowedEmptyTrials(t *testing.T) {
	a, b := trace.New("A", 0), trace.New("B", 0)
	ws, err := CompareWindowed(a, b, 1000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A single empty window pair is produced at start (span 0).
	for _, w := range ws {
		if w.Result.Kappa != 1 {
			t.Fatalf("empty window scored %v", w)
		}
	}
}

func TestWindowedCoversAllPackets(t *testing.T) {
	a := windowedTrial("A", 777, 130, nil)
	b := windowedTrial("B", 777, 130, nil)
	ws, err := CompareWindowed(a, b, 9_999, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, w := range ws {
		total += w.Result.Common
	}
	if total != 777 {
		t.Fatalf("windows cover %d packets, want 777", total)
	}
}

func TestWindowedAggregateAgreesOnCleanTrials(t *testing.T) {
	// With no cross-window migration, the mean of window I values is
	// close to the whole-trial I.
	a := windowedTrial("A", 2000, 100, nil)
	b := windowedTrial("B", 2000, 100, func(i int, at sim.Time) sim.Time {
		return at + sim.Time(i%3) // small global jitter
	})
	whole, err := Compare(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := CompareWindowed(a, b, 20_000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var meanI float64
	for _, w := range ws {
		meanI += w.Result.I
	}
	meanI /= float64(len(ws))
	if math.Abs(meanI-whole.I) > whole.I*0.5 {
		t.Fatalf("window mean I %v far from whole-trial I %v", meanI, whole.I)
	}
}

func TestWorstWindowEmpty(t *testing.T) {
	w := WorstWindow(nil)
	if w.Result != nil {
		t.Fatal("zero value expected")
	}
}

func TestWindowResultString(t *testing.T) {
	w := WindowResult{Start: 0, End: 100, Result: &Result{Kappa: 0.5}}
	if w.String() == "" {
		t.Fatal("empty string")
	}
}
