package metrics

import "repro/internal/trace"

// This file implements the Bellardo–Savage style view the paper's §9
// relates to: reordering expressed as a probability as a function of
// packet spacing, complementing O's single number with the *structure*
// of the reordering.

// ReorderProfile is the probability, per spacing d, that two common
// packets sent d positions apart (in trial A's order) arrive inverted
// in trial B.
type ReorderProfile struct {
	// Prob[d-1] is the inversion probability at spacing d (1-based
	// spacings up to MaxSpacing).
	Prob []float64
	// Pairs[d-1] counts the pairs examined at spacing d.
	Pairs []int
}

// MaxSpacing returns the largest spacing profiled.
func (p *ReorderProfile) MaxSpacing() int { return len(p.Prob) }

// AnyReordering reports whether any spacing shows inversions.
func (p *ReorderProfile) AnyReordering() bool {
	for _, v := range p.Prob {
		if v > 0 {
			return true
		}
	}
	return false
}

// ReorderBySpacing computes the reorder profile of trial B relative to
// trial A for spacings 1..maxSpacing. Packets present in only one trial
// are skipped (that inconsistency belongs to U).
func ReorderBySpacing(a, b *trace.Trace, maxSpacing int) *ReorderProfile {
	if maxSpacing < 1 {
		maxSpacing = 1
	}
	m := match(a, b)
	n := len(m.rankA)
	// posInB[r] = common rank in B of the packet whose common rank in
	// A is r: the permutation A-order → B-order.
	posInB := make([]int32, n)
	for bRank, aRank := range m.rankA {
		posInB[aRank] = int32(bRank)
	}
	p := &ReorderProfile{
		Prob:  make([]float64, maxSpacing),
		Pairs: make([]int, maxSpacing),
	}
	for d := 1; d <= maxSpacing; d++ {
		inv := 0
		for i := 0; i+d < n; i++ {
			if posInB[i+d] < posInB[i] {
				inv++
			}
		}
		pairs := n - d
		if pairs < 0 {
			pairs = 0
		}
		p.Pairs[d-1] = pairs
		if pairs > 0 {
			p.Prob[d-1] = float64(inv) / float64(pairs)
		}
	}
	return p
}
