package metrics_test

// External test package: these suites drive metrics through the seeded
// fault layer (internal/fault), which itself builds on metrics — an
// in-package test file would be an import cycle.

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/fault/harness"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// planMatrix are the perturbations the pooled/serial differential runs
// under — every fault class, alone and combined.
func planMatrix() []fault.Plan {
	return []fault.Plan{
		{Seed: 201}, // identity
		{Seed: 202, Drop: 0.1},
		{Seed: 203, Dup: 0.08},
		{Seed: 204, Corrupt: 0.06},
		{Seed: 205, BurstRate: 0.004},
		{Seed: 206, Reorder: 0.12},
		{Seed: 207, Jitter: 600, SkewPPM: 120},
		{Seed: 208, Drop: 0.05, Dup: 0.04, Corrupt: 0.03, Reorder: 0.06, BurstRate: 0.002, Jitter: 250},
	}
}

// TestCompareWindowedPooledMatchesSerialUnderFaultPlans closes the PR 3
// gap: the pooled CompareWindowed fan-out was only ever differentially
// tested on fault-free captures. Here every fault plan perturbs the B
// trial — drops empty some windows, duplicates inflate others, jitter
// shifts packets across boundaries — and the pooled pass must still be
// bit-identical to the serial pass, field for field (run under -race in
// verify.sh's full-suite gate).
func TestCompareWindowedPooledMatchesSerialUnderFaultPlans(t *testing.T) {
	base := harness.Baseline("A", 8000, 81)
	window := 80 * sim.Microsecond
	pool := parallel.New(4)
	for _, plan := range planMatrix() {
		perturbed := plan.Apply(base)
		perturbed.Name = "B"
		for _, keep := range []bool{false, true} {
			serial, err := metrics.CompareWindowed(base, perturbed, window, metrics.Options{KeepDeltas: keep})
			if err != nil {
				t.Fatalf("%v: serial: %v", plan, err)
			}
			pooled, err := metrics.CompareWindowed(base, perturbed, window, metrics.Options{KeepDeltas: keep, Pool: pool})
			if err != nil {
				t.Fatalf("%v: pooled: %v", plan, err)
			}
			if len(serial) != len(pooled) {
				t.Fatalf("%v keep=%v: %d windows serial, %d pooled", plan, keep, len(serial), len(pooled))
			}
			for i := range serial {
				s, p := serial[i], pooled[i]
				if s.Start != p.Start || s.End != p.End {
					t.Fatalf("%v window %d: bounds %v vs %v", plan, i, s, p)
				}
				sr, pr := s.Result, p.Result
				if sr.U != pr.U || sr.O != pr.O || sr.L != pr.L || sr.I != pr.I || sr.Kappa != pr.Kappa ||
					sr.PctIATWithin10 != pr.PctIATWithin10 {
					t.Fatalf("%v window %d: vectors differ:\n serial %v\n pooled %v", plan, i, sr, pr)
				}
				if sr.Common != pr.Common || sr.OnlyA != pr.OnlyA || sr.OnlyB != pr.OnlyB || sr.MovedPackets != pr.MovedPackets {
					t.Fatalf("%v window %d: counts differ: %+v vs %+v", plan, i, sr, pr)
				}
				if keep && (!reflect.DeepEqual(sr.IATDeltas, pr.IATDeltas) ||
					!reflect.DeepEqual(sr.LatencyDeltas, pr.LatencyDeltas) ||
					!reflect.DeepEqual(sr.MoveDistances, pr.MoveDistances)) {
					t.Fatalf("%v window %d: retained deltas differ", plan, i)
				}
			}
		}
	}
}

// TestWindowedDropAccounting cross-checks the windowed metrics against
// the fault layer's ground truth: under a drop-only plan the total
// OnlyA across windows is exactly the number of packets the plan
// removed, and no window ever reports OnlyB.
func TestWindowedDropAccounting(t *testing.T) {
	base := harness.Baseline("A", 6000, 82)
	plan := fault.Plan{Seed: 83, Drop: 0.07}
	perturbed := plan.Apply(base)
	dropped := base.Len() - perturbed.Len()
	if dropped == 0 {
		t.Fatal("plan dropped nothing")
	}
	ws, err := metrics.CompareWindowed(base, perturbed, 50*sim.Microsecond, metrics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var onlyA, onlyB int
	for _, w := range ws {
		onlyA += w.Result.OnlyA
		onlyB += w.Result.OnlyB
	}
	if onlyA != dropped || onlyB != 0 {
		t.Fatalf("windows report onlyA=%d onlyB=%d, injector ground truth: %d dropped", onlyA, onlyB, dropped)
	}
}

// TestWindowedIdentityPlanPerfectKappa: the identity plan scores κ = 1
// in every window, exactly.
func TestWindowedIdentityPlanPerfectKappa(t *testing.T) {
	base := harness.Baseline("A", 4000, 84)
	out := fault.Plan{Seed: 85}.Apply(base)
	ws, err := metrics.CompareWindowed(base, out, 64*sim.Microsecond, metrics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("no windows")
	}
	for i, w := range ws {
		if w.Result.Kappa != 1 || w.Result.U != 0 || w.Result.O != 0 || w.Result.L != 0 || w.Result.I != 0 {
			t.Fatalf("window %d: %v under the identity plan", i, w.Result)
		}
	}
}
