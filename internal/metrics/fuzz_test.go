package metrics

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fuzzTrace decodes an arbitrary byte string into a valid trace: each
// byte contributes one packet whose tag and inter-arrival gap are both
// derived from the byte. Gaps of zero (b % 97 == 0) produce timestamp
// ties, and the narrow Seq space (b >> 2) produces heavy tag
// duplication — both are the cases the occurrence-keyed matcher has to
// get right.
func fuzzTrace(name string, data []byte) *trace.Trace {
	tr := trace.New(name, len(data))
	var at sim.Time
	for _, b := range data {
		at += sim.Time(b % 97)
		tr.Append(&packet.Packet{
			Tag:      packet.Tag{Replayer: 1, Stream: uint16(b % 3), Seq: uint64(b >> 2)},
			Kind:     packet.KindData,
			FrameLen: 64,
		}, at)
	}
	return tr
}

// checkBounds asserts the Eq. 1–5 ranges that hold for every pair of
// valid traces: U, O, L, I ∈ [0, 1] and κ ∈ [0, 1], all finite.
func checkBounds(t *testing.T, label string, r *Result) {
	t.Helper()
	const eps = 1e-9
	for _, m := range []struct {
		name string
		v    float64
	}{{"U", r.U}, {"O", r.O}, {"L", r.L}, {"I", r.I}, {"kappa", r.Kappa}} {
		if math.IsNaN(m.v) || math.IsInf(m.v, 0) {
			t.Fatalf("%s: %s = %v is not finite", label, m.name, m.v)
		}
		if m.v < -eps || m.v > 1+eps {
			t.Fatalf("%s: %s = %v outside [0,1]", label, m.name, m.v)
		}
	}
}

// FuzzCompare drives the full Compare/CompareWindowed pipeline —
// occurrence matching, LIS edit script, delta passes, windowing — with
// arbitrary packet sets. The invariants are structural, not golden:
// no panic, metrics stay in range, the set accounting is exact
// (Common + OnlyA == |A|), the metrics are symmetric in their
// arguments, self-comparison scores κ = 1 exactly, and the windowed
// pass partitions both trials without losing or inventing packets.
func FuzzCompare(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0}, []byte{})
	f.Add([]byte{1, 2, 3, 4, 5}, []byte{1, 2, 3, 4, 5}) // identical
	f.Add([]byte{1, 2, 3, 4, 5}, []byte{5, 4, 3, 2, 1}) // reordered
	f.Add([]byte{10, 20, 30}, []byte{40, 50, 60})       // disjoint tags
	f.Add([]byte{0, 0, 0, 0}, []byte{0, 0})             // all ties, dup tags
	f.Add([]byte{97, 97, 194}, []byte{97, 1, 97})       // zero gaps mixed in
	f.Add(bytes.Repeat([]byte{7}, 300), bytes.Repeat([]byte{7, 9}, 150))

	f.Fuzz(func(t *testing.T, da, db []byte) {
		// Unbounded fuzz inputs would make the quadratic-ish windowed
		// sweep the bottleneck, not the logic under test.
		if len(da) > 4096 || len(db) > 4096 {
			t.Skip()
		}
		a := fuzzTrace("A", da)
		b := fuzzTrace("B", db)

		ab, err := Compare(a, b, Options{KeepDeltas: true})
		if err != nil {
			t.Fatalf("Compare(a,b): %v", err)
		}
		checkBounds(t, "ab", ab)
		if ab.Common+ab.OnlyA != a.Len() || ab.Common+ab.OnlyB != b.Len() {
			t.Fatalf("set accounting broken: common=%d onlyA=%d onlyB=%d, |A|=%d |B|=%d",
				ab.Common, ab.OnlyA, ab.OnlyB, a.Len(), b.Len())
		}
		if len(ab.IATDeltas) != ab.Common || len(ab.LatencyDeltas) != ab.Common {
			t.Fatalf("retained %d IAT / %d latency deltas for %d common packets",
				len(ab.IATDeltas), len(ab.LatencyDeltas), ab.Common)
		}

		// Symmetry (the paper's metrics are symmetric; only the side
		// labels swap).
		ba, err := Compare(b, a, Options{})
		if err != nil {
			t.Fatalf("Compare(b,a): %v", err)
		}
		if ba.U != ab.U || ba.O != ab.O || ba.L != ab.L || ba.I != ab.I || ba.Kappa != ab.Kappa {
			t.Fatalf("metrics not symmetric:\n ab %v\n ba %v", ab, ba)
		}
		if ba.OnlyA != ab.OnlyB || ba.OnlyB != ab.OnlyA || ba.Common != ab.Common {
			t.Fatalf("counts not mirrored: ab %d/%d/%d, ba %d/%d/%d",
				ab.Common, ab.OnlyA, ab.OnlyB, ba.Common, ba.OnlyA, ba.OnlyB)
		}

		// Self-comparison is exact unity.
		aa, err := Compare(a, a, Options{})
		if err != nil {
			t.Fatalf("Compare(a,a): %v", err)
		}
		if aa.Kappa != 1 || aa.U != 0 || aa.O != 0 || aa.L != 0 || aa.I != 0 || aa.OnlyA != 0 || aa.OnlyB != 0 {
			t.Fatalf("self-comparison not exact: %v", aa)
		}

		// Windowing partitions both trials exactly.
		ws, err := CompareWindowed(a, b, 64, Options{})
		if err != nil {
			t.Fatalf("CompareWindowed: %v", err)
		}
		var sumA, sumB int
		for i, w := range ws {
			checkBounds(t, "window", w.Result)
			sumA += w.Result.Common + w.Result.OnlyA
			sumB += w.Result.Common + w.Result.OnlyB
			if w.End-w.Start != 64 {
				t.Fatalf("window %d spans %v", i, w.End-w.Start)
			}
		}
		if sumA != a.Len() || sumB != b.Len() {
			t.Fatalf("windows partition %d/%d packets of %d/%d", sumA, sumB, a.Len(), b.Len())
		}
	})
}
