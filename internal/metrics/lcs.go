package metrics

// This file computes the ordering machinery of Equation 2: the Longest
// Common Subsequence of two trials and the move distances of the minimum
// edit script that transforms B into A.
//
// Because each trial is a permutation of unique packets, the LCS of A and
// B equals the Longest Increasing Subsequence of the A-ranks of B's
// common packets taken in B order (Schensted), which is computable in
// O(n log n) — the property the paper relies on for million-packet traces.

// lisMembers returns a boolean mask over seq marking one maximal
// increasing subsequence (patience sorting with predecessor recovery).
// seq must contain distinct values. The mask and working arrays come
// from the scratch arena, so it is valid only until the next
// lisMembers call on the same scratch — callers must fully consume it
// first (editScriptOf does).
func lisMembers(s *scratch, seq []int32) []bool {
	n := len(seq)
	member := boolbuf(&s.member, n)
	if n == 0 {
		return member
	}
	// tails[k] = index into seq of the smallest tail of an increasing
	// subsequence of length k+1.
	tails := i32buf(&s.tails, n)[:0] // appends stay within capacity n
	prev := i32buf(&s.prev, n)
	for i := 0; i < n; i++ {
		v := seq[i]
		// Binary search for the first tail with value >= v.
		lo, hi := 0, len(tails)
		for lo < hi {
			mid := (lo + hi) / 2
			if seq[tails[mid]] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			prev[i] = tails[lo-1]
		} else {
			prev[i] = -1
		}
		if lo == len(tails) {
			tails = append(tails, int32(i))
		} else {
			tails[lo] = int32(i)
		}
	}
	// Walk back from the tail of the longest subsequence.
	for i := tails[len(tails)-1]; i >= 0; i = prev[i] {
		member[i] = true
	}
	return member
}

// editScript holds the per-packet move distances of the minimum edit
// script transforming B into A. Packets on the LCS are not moved
// (distance 0) and are excluded from Moves; packets only in B are also
// distance 0 per the paper ("If p_i ∉ A then d_i = 0").
//
// A minimum edit script is not unique: every maximal LCS yields one, and
// different LCS choices can leave different packets "unmoved". To honour
// the paper's O_AB = O_BA symmetry claim, the Equation 2 numerator is the
// average of the B→A and A→B script sums (the per-packet |d| magnitudes
// are direction-independent; only LCS membership differs).
type editScript struct {
	// Moves holds the signed distance (rank in A − rank in B, in
	// common-packet ranks) for every packet moved by the B→A script, in
	// B order. This is the sample Table 1 summarizes.
	Moves []int64
	// LCSLen is the number of packets left in place (identical in both
	// directions).
	LCSLen int
	// sumForward and sumBackward are Σ|d_i| for the B→A and A→B
	// scripts respectively.
	sumForward, sumBackward int64
}

// editScriptOf derives the edit script from a matching. The returned
// editScript's Moves slice is backed by scratch memory: callers that
// retain it past the scratch release must copy it (Compare does for
// KeepDeltas).
func editScriptOf(s *scratch, m *matching) *editScript {
	es := &editScript{Moves: s.moves[:0]}
	n := len(m.rankA)
	if n == 0 {
		return es
	}
	// Forward: B order, values are A-ranks.
	memberF := lisMembers(s, m.rankA)
	for i, isLCS := range memberF {
		if isLCS {
			es.LCSLen++
			continue
		}
		d := int64(m.rankA[i]) - int64(i)
		es.Moves = append(es.Moves, d)
		if d < 0 {
			es.sumForward -= d
		} else {
			es.sumForward += d
		}
	}
	s.moves = es.Moves[:0] // retain grown capacity
	// Backward: A order, values are B-ranks (the inverse permutation).
	inv := i32buf(&s.inv, n)
	for i, ra := range m.rankA {
		inv[ra] = int32(i)
	}
	for j, isLCS := range lisMembers(s, inv) {
		if isLCS {
			continue
		}
		d := int64(inv[j]) - int64(j)
		if d < 0 {
			es.sumBackward -= d
		} else {
			es.sumBackward += d
		}
	}
	return es
}

// symmetricAbsMove returns the direction-averaged Σ|d_i| — the numerator
// of Equation 2.
func (es *editScript) symmetricAbsMove() float64 {
	return float64(es.sumForward+es.sumBackward) / 2
}

// orderingDenominator is Equation 2's normalizer: Σ_{n=0}^{m} n for
// m = |A∩B|, i.e. m(m+1)/2 — the move cost of a full reversal.
func orderingDenominator(m int) int64 {
	mm := int64(m)
	return mm * (mm + 1) / 2
}
