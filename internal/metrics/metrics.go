package metrics

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Result holds the four normalized variation metrics, the compound score
// κ, and the raw per-packet deltas the paper's figures are drawn from.
type Result struct {
	// U is the uniqueness variation (Equation 1): 0 when both trials
	// contain exactly the same packets.
	U float64
	// O is the ordering variation (Equation 2): 0 when common packets
	// arrive in the same order.
	O float64
	// L is the latency variation (Equation 3): 0 when common packets
	// arrive at the same trial-relative times.
	L float64
	// I is the inter-arrival-time variation (Equation 4): 0 when common
	// packets have the same gaps before them.
	I float64
	// Kappa is the compound consistency score (Equation 5): 1 is
	// complete consistency, 0 complete inconsistency.
	Kappa float64

	// Common is |A ∩ B|; OnlyA/OnlyB count packets seen in one trial
	// only (drops, duplicates, corruption).
	Common, OnlyA, OnlyB int

	// MovedPackets is the number of packets in the edit script that
	// transforms B into A (§6.2 reports this as a count and fraction).
	MovedPackets int
	// MoveDistances are the signed common-rank distances of the moved
	// packets (Table 1's sample). Present only with Options.KeepDeltas.
	MoveDistances []int64
	// IATDeltas[i] = g_B − g_A per common packet in ns (Figure 4a/5/…).
	// Present only with Options.KeepDeltas.
	IATDeltas []int64
	// LatencyDeltas[i] = l_B − l_A per common packet in ns
	// (Figure 4b/…). Present only with Options.KeepDeltas.
	LatencyDeltas []int64

	// PctIATWithin10 is the percentage of common packets whose IAT delta
	// is within ±10 ns — the headline per-run statistic in §6–7.
	PctIATWithin10 float64
}

// Options controls Compare.
type Options struct {
	// KeepDeltas retains the per-packet IAT/latency deltas and move
	// distances for histogramming; costs O(n) extra memory.
	KeepDeltas bool
	// Parallelism splits the per-packet delta pass across this many
	// goroutines (0 or 1 = serial). Sums are accumulated in integers,
	// so results are bit-identical to the serial computation for
	// million-packet traces.
	Parallelism int
	// Pool, when non-nil, fans CompareWindowed's independent windows
	// out across the trial scheduler. Window results land in
	// index-addressed slots, so they are bit-identical to the
	// sequential pass (asserted by TestCompareWindowedParallel under
	// -race). Compare itself ignores it.
	Pool *parallel.Pool
}

// Compare computes all metrics between trials A and B (Equations 1–5).
// Both traces must be internally valid; B is conventionally a later run
// compared against baseline run A. All metrics are symmetric, so the
// order only affects the sign conventions of the retained deltas.
func Compare(a, b *trace.Trace, opts Options) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("metrics: trial A: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("metrics: trial B: %w", err)
	}
	// All working memory — key arrays, occurrence and match maps, LIS
	// and edit-script buffers — comes from a pooled scratch arena, so a
	// steady-state Compare allocates only what escapes into the Result.
	s := getScratch()
	defer putScratch(s)
	m := matchInto(s, a, b)
	r := &Result{
		Common: m.commonCount(),
		OnlyA:  m.onlyA,
		OnlyB:  m.onlyB,
	}

	// U (Equation 1).
	if total := m.lenA() + m.lenB(); total > 0 {
		r.U = 1 - 2*float64(r.Common)/float64(total)
	}

	// O (Equation 2).
	if r.Common > 0 {
		es := editScriptOf(s, m)
		r.MovedPackets = len(es.Moves)
		if opts.KeepDeltas {
			// es.Moves is scratch-backed; copy what outlives the call.
			r.MoveDistances = append([]int64(nil), es.Moves...)
		}
		if den := orderingDenominator(r.Common); den > 0 {
			r.O = es.symmetricAbsMove() / float64(den)
		}
	}

	// L (Equation 3) and I (Equation 4). The per-packet pass is
	// embarrassingly parallel; integer accumulation keeps the reduction
	// order-independent, so parallel and serial results are identical.
	if r.Common > 0 {
		if opts.KeepDeltas {
			r.IATDeltas = make([]int64, r.Common)
			r.LatencyDeltas = make([]int64, r.Common)
		}
		chunk := func(lo, hi int) (sumL, sumI int64, within10 int) {
			for i := lo; i < hi; i++ {
				la, lb := m.latencyPair(a, b, i)
				dl := int64(lb - la)
				sumL += absInt64(dl)

				ga, gb := m.gapPair(a, b, i)
				di := int64(gb - ga)
				sumI += absInt64(di)
				if di <= 10 && di >= -10 {
					within10++
				}
				if opts.KeepDeltas {
					r.LatencyDeltas[i] = dl
					r.IATDeltas[i] = di
				}
			}
			return
		}

		var sumL, sumI int64
		var within10 int
		workers := opts.Parallelism
		if workers > r.Common {
			workers = r.Common
		}
		if workers > 1 {
			type partial struct {
				l, i int64
				w    int
			}
			parts := make([]partial, workers)
			var wg sync.WaitGroup
			per := (r.Common + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * per
				hi := lo + per
				if hi > r.Common {
					hi = r.Common
				}
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					l, i, c := chunk(lo, hi)
					parts[w] = partial{l: l, i: i, w: c}
				}(w, lo, hi)
			}
			wg.Wait()
			for _, p := range parts {
				sumL += p.l
				sumI += p.i
				within10 += p.w
			}
		} else {
			sumL, sumI, within10 = chunk(0, r.Common)
		}
		r.PctIATWithin10 = 100 * float64(within10) / float64(r.Common)

		// Equation 3 denominator: |A∩B| · max(t_B|B| − t_A0, t_A|A| − t_B0).
		// Trials are compared on trial-relative timelines, so t_X0 is
		// each trial's first arrival.
		spanCross := math.Max(float64(b.Span()), float64(a.Span()))
		if den := float64(r.Common) * spanCross; den > 0 {
			r.L = float64(sumL) / den
		}
		// Equation 4 denominator: (t_B|B| − t_B0) + (t_A|A| − t_A0).
		if den := float64(b.Span() + a.Span()); den > 0 {
			r.I = float64(sumI) / den
		}
	}

	r.Kappa = Kappa(r.U, r.O, r.L, r.I)
	return r, nil
}

// Kappa combines the four normalized variations into the compound
// consistency score of Equation 5.
func Kappa(u, o, l, i float64) float64 {
	return 1 - math.Sqrt(u*u+o*o+l*l+i*i)/2
}

// MoveSummary summarizes the edit-script distances in the shape of the
// paper's Table 1 (requires Options.KeepDeltas).
func (r *Result) MoveSummary() stats.Summary {
	return stats.SummarizeInts(r.MoveDistances)
}

// MovedFraction is the share of common packets that appear in the edit
// script (§6.2 reports 49.8%).
func (r *Result) MovedFraction() float64 {
	if r.Common == 0 {
		return 0
	}
	return float64(r.MovedPackets) / float64(r.Common)
}

// String renders the metric vector the way the paper quotes it.
func (r *Result) String() string {
	return fmt.Sprintf("U=%.3g O=%.3g I=%.4g L=%.3g κ=%.4f (common=%d, onlyA=%d, onlyB=%d)",
		r.U, r.O, r.I, r.L, r.Kappa, r.Common, r.OnlyA, r.OnlyB)
}

// MeanResult averages metric vectors across runs (Table 2 rows). Kappa
// is recomputed from the averaged components the way the paper's table
// aggregates per-run scores — by averaging the per-run κ values.
type MeanResult struct {
	U, O, L, I, Kappa float64
	Runs              int
}

// Mean aggregates results.
func Mean(rs []*Result) MeanResult {
	var m MeanResult
	m.Runs = len(rs)
	if m.Runs == 0 {
		return m
	}
	for _, r := range rs {
		m.U += r.U
		m.O += r.O
		m.L += r.L
		m.I += r.I
		m.Kappa += r.Kappa
	}
	n := float64(m.Runs)
	m.U /= n
	m.O /= n
	m.L /= n
	m.I /= n
	m.Kappa /= n
	return m
}

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
