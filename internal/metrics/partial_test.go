package metrics

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// sumsOf derives Sums from a batch matching — the oracle for the
// streaming accumulation semantics.
func sumsOf(a, b *trace.Trace) *Sums {
	m := match(a, b)
	s := &Sums{
		Common: m.commonCount(),
		OnlyA:  m.onlyA,
		OnlyB:  m.onlyB,
		SpanA:  a.Span(),
		SpanB:  b.Span(),
		PosA:   append([]int32(nil), m.posA...),
		PosB:   append([]int32(nil), m.posB...),
	}
	for i := 0; i < s.Common; i++ {
		la, lb := m.latencyPair(a, b, i)
		s.SumAbsLat += absInt64(int64(lb - la))
		ga, gb := m.gapPair(a, b, i)
		di := int64(gb - ga)
		s.SumAbsIAT += absInt64(di)
		if di <= 10 && di >= -10 {
			s.Within10++
		}
	}
	return s
}

// scrambledTrial builds a trace of n packets with drops, jitter and
// reordering driven by rng.
func scrambledTrial(name string, n int, rng *rand.Rand) *trace.Trace {
	tr := trace.New(name, n)
	at := sim.Time(0)
	order := rand.New(rand.NewSource(rng.Int63()))
	// Emit in mildly shuffled bursts to create reordering.
	burst := make([]uint64, 0, 4)
	flush := func() {
		order.Shuffle(len(burst), func(i, j int) { burst[i], burst[j] = burst[j], burst[i] })
		for _, seq := range burst {
			at += sim.Duration(80 + rng.Intn(60))
			tr.Append(&packet.Packet{Tag: packet.Tag{Seq: seq}, Kind: packet.KindData, FrameLen: 100}, at)
		}
		burst = burst[:0]
	}
	for i := 0; i < n; i++ {
		if rng.Intn(20) == 0 {
			continue // drop
		}
		burst = append(burst, uint64(i))
		if len(burst) == cap(burst) {
			flush()
		}
	}
	flush()
	return tr
}

// TestAssembleMatchesCompare asserts the partial-sum assembly reproduces
// Compare bit for bit on randomized trials, including degenerate shapes.
func TestAssembleMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 50 + rng.Intn(500)
		a := scrambledTrial("A", n, rng)
		b := scrambledTrial("B", n, rng)
		want, err := Compare(a, b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := sumsOf(a, b).Assemble()
		assertResultEqual(t, got, want)
	}
}

func TestAssembleDegenerate(t *testing.T) {
	mk := func(name string, seqs []uint64, times []sim.Time) *trace.Trace {
		tr := trace.New(name, len(seqs))
		for i, s := range seqs {
			tr.Append(&packet.Packet{Tag: packet.Tag{Seq: s}, Kind: packet.KindData, FrameLen: 64}, times[i])
		}
		return tr
	}
	cases := []struct{ a, b *trace.Trace }{
		{mk("A", nil, nil), mk("B", nil, nil)},                                                   // both empty
		{mk("A", []uint64{1}, []sim.Time{5}), mk("B", nil, nil)},                                 // one empty
		{mk("A", []uint64{1, 2}, []sim.Time{0, 10}), mk("B", []uint64{3, 4}, []sim.Time{0, 10})}, // disjoint
		{mk("A", []uint64{1}, []sim.Time{9}), mk("B", []uint64{1}, []sim.Time{3})},               // single common
		{mk("A", []uint64{1, 1}, []sim.Time{0, 4}), mk("B", []uint64{1, 1}, []sim.Time{0, 6})},   // dup tags (occ)
	}
	for i, tc := range cases {
		want, err := Compare(tc.a, tc.b, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got := sumsOf(tc.a, tc.b).Assemble()
		assertResultEqual(t, got, want)
		_ = i
	}
}

func TestSumsMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := scrambledTrial("A", 300, rng)
	b := scrambledTrial("B", 300, rng)
	whole := sumsOf(a, b)
	want := whole.Assemble()

	// Split the common pairs across three "shards" arbitrarily and merge.
	shards := make([]*Sums, 3)
	for i := range shards {
		shards[i] = &Sums{SpanA: whole.SpanA, SpanB: whole.SpanB}
	}
	m := match(a, b)
	for i := 0; i < whole.Common; i++ {
		s := shards[int(m.posA[i])%3]
		s.Common++
		s.PosA = append(s.PosA, m.posA[i])
		s.PosB = append(s.PosB, m.posB[i])
		la, lb := m.latencyPair(a, b, i)
		s.SumAbsLat += absInt64(int64(lb - la))
		ga, gb := m.gapPair(a, b, i)
		di := int64(gb - ga)
		s.SumAbsIAT += absInt64(di)
		if di <= 10 && di >= -10 {
			s.Within10++
		}
	}
	shards[0].OnlyA = whole.OnlyA
	shards[1].OnlyB = whole.OnlyB

	merged := &Sums{}
	for _, s := range shards {
		merged.Merge(s)
	}
	got := merged.Assemble()
	assertResultEqual(t, got, want)
}

func assertResultEqual(t *testing.T, got, want *Result) {
	t.Helper()
	if got.U != want.U || got.O != want.O || got.L != want.L || got.I != want.I || got.Kappa != want.Kappa {
		t.Fatalf("assembled vector differs:\n got  %v\n want %v", got, want)
	}
	if got.Common != want.Common || got.OnlyA != want.OnlyA || got.OnlyB != want.OnlyB {
		t.Fatalf("counts differ: got (%d,%d,%d) want (%d,%d,%d)",
			got.Common, got.OnlyA, got.OnlyB, want.Common, want.OnlyA, want.OnlyB)
	}
	if got.MovedPackets != want.MovedPackets {
		t.Fatalf("moved packets: got %d want %d", got.MovedPackets, want.MovedPackets)
	}
	if got.PctIATWithin10 != want.PctIATWithin10 {
		t.Fatalf("pct within 10: got %v want %v", got.PctIATWithin10, want.PctIATWithin10)
	}
}
