package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/parallel"
	"repro/internal/sim"
)

// TestCompareWindowedParallel is the differential test Options.Pool
// references: fanning windows across the trial scheduler must yield the
// exact WindowResult sequence of the sequential pass — same float bits,
// same retained deltas — because every window lands in its own
// index-addressed slot. Run under -race via verify.sh.
func TestCompareWindowedParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := randomTrial(rng, "A", 6000, true, 0.01)
	b := randomTrial(rng, "B", 6000, true, 0.02)
	window := 64 * sim.Microsecond

	for _, keep := range []bool{false, true} {
		seq, err := CompareWindowed(a, b, window, Options{KeepDeltas: keep})
		if err != nil {
			t.Fatal(err)
		}
		par, err := CompareWindowed(a, b, window, Options{KeepDeltas: keep, Pool: parallel.New(4)})
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(par) {
			t.Fatalf("keep=%v: %d windows sequential, %d parallel", keep, len(seq), len(par))
		}
		for i := range seq {
			s, p := seq[i], par[i]
			if s.Start != p.Start || s.End != p.End {
				t.Fatalf("keep=%v window %d: bounds differ: %v vs %v", keep, i, s, p)
			}
			assertBitEqual(t, "U", i, s.Result.U, p.Result.U)
			assertBitEqual(t, "O", i, s.Result.O, p.Result.O)
			assertBitEqual(t, "L", i, s.Result.L, p.Result.L)
			assertBitEqual(t, "I", i, s.Result.I, p.Result.I)
			assertBitEqual(t, "Kappa", i, s.Result.Kappa, p.Result.Kappa)
			assertBitEqual(t, "PctIATWithin10", i, s.Result.PctIATWithin10, p.Result.PctIATWithin10)
			if s.Result.Common != p.Result.Common || s.Result.OnlyA != p.Result.OnlyA ||
				s.Result.OnlyB != p.Result.OnlyB || s.Result.MovedPackets != p.Result.MovedPackets {
				t.Fatalf("keep=%v window %d: counts differ: %+v vs %+v", keep, i, s.Result, p.Result)
			}
			if keep {
				if !reflect.DeepEqual(s.Result.IATDeltas, p.Result.IATDeltas) ||
					!reflect.DeepEqual(s.Result.LatencyDeltas, p.Result.LatencyDeltas) ||
					!reflect.DeepEqual(s.Result.MoveDistances, p.Result.MoveDistances) {
					t.Fatalf("window %d: retained deltas differ", i)
				}
			}
		}
	}
}

func assertBitEqual(t *testing.T, what string, win int, a, b float64) {
	t.Helper()
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("window %d: %s differs: %v (%#x) vs %v (%#x)",
			win, what, a, math.Float64bits(a), b, math.Float64bits(b))
	}
}

// TestCompareWindowedParallelErrorPropagates checks the pool path
// surfaces a window's error the way the sequential loop does.
func TestCompareWindowedParallelErrorPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomTrial(rng, "A", 100, false, 0)
	b := randomTrial(rng, "B", 100, false, 0)
	_, err := CompareWindowed(a, b, -1, Options{Pool: parallel.New(4)})
	if err == nil {
		t.Fatal("negative window accepted")
	}
}
