package metrics

import (
	"math"
	"slices"

	"repro/internal/sim"
)

// This file is the batch↔streaming bridge: the streaming consistency
// engine (internal/stream) accumulates order-independent integer partials
// per window across flow shards, then assembles them into a *Result here
// using the exact float operations Compare performs. Keeping the Eq. 1–5
// normalizations in this package (next to Compare) is what lets the
// stream package guarantee bit-identical window scores without ever
// materializing the window sub-traces.

// Sums holds everything a window's §3 metric vector depends on, in a form
// that can be accumulated incrementally and merged across shards:
// integer sums (exact, order-independent) plus the full-window positions
// of the common packets for the ordering metric.
type Sums struct {
	// Common is |A ∩ B| for the window; OnlyA/OnlyB count packets seen
	// in one trial only.
	Common, OnlyA, OnlyB int
	// SumAbsLat is Σ|l_B − l_A| over common packets (Equation 3
	// numerator), with latencies relative to each side's first packet in
	// the window.
	SumAbsLat int64
	// SumAbsIAT is Σ|g_B − g_A| over common packets (Equation 4
	// numerator), with gaps computed within the window (first packet of
	// the window has gap 0).
	SumAbsIAT int64
	// Within10 counts common packets with |g_B − g_A| ≤ 10 ns.
	Within10 int
	// SpanA and SpanB are each side's window sub-trace span (last −
	// first packet time; 0 with fewer than two packets).
	SpanA, SpanB sim.Duration
	// PosA[i], PosB[i] are the i-th common packet's positions within the
	// window sub-traces of A and B. Order of i is arbitrary — Assemble
	// sorts by PosB — so shard partials can be concatenated freely.
	PosA, PosB []int32
}

// Merge folds another shard's partials into s. All fields are plain sums
// or concatenations, so merging is associative and commutative.
func (s *Sums) Merge(o *Sums) {
	s.Common += o.Common
	s.OnlyA += o.OnlyA
	s.OnlyB += o.OnlyB
	s.SumAbsLat += o.SumAbsLat
	s.SumAbsIAT += o.SumAbsIAT
	s.Within10 += o.Within10
	s.PosA = append(s.PosA, o.PosA...)
	s.PosB = append(s.PosB, o.PosB...)
	// Spans are window-global, carried by the ingest metadata rather
	// than per-shard; Merge keeps the widest seen so metadata can be
	// applied on any summand.
	if o.SpanA > s.SpanA {
		s.SpanA = o.SpanA
	}
	if o.SpanB > s.SpanB {
		s.SpanB = o.SpanB
	}
}

// Assemble builds the window's Result from the partial sums, applying the
// identical Equation 1–5 operations Compare uses — same operand order,
// same int→float conversion points — so a streaming window score equals
// the batch CompareWindowed score bit for bit.
func (s *Sums) Assemble() *Result {
	r := &Result{Common: s.Common, OnlyA: s.OnlyA, OnlyB: s.OnlyB}

	// U (Equation 1).
	lenA := s.Common + s.OnlyA
	lenB := s.Common + s.OnlyB
	if total := lenA + lenB; total > 0 {
		r.U = 1 - 2*float64(r.Common)/float64(total)
	}

	if r.Common > 0 {
		// O (Equation 2): rebuild the common-rank permutation from the
		// window positions and reuse the batch edit-script machinery
		// (pooled scratch arena, same as Compare).
		sc := getScratch()
		defer putScratch(sc)
		rankA := commonRanksInto(sc, s.PosA, s.PosB)
		es := editScriptOf(sc, &matching{rankA: rankA})
		r.MovedPackets = len(es.Moves)
		if den := orderingDenominator(r.Common); den > 0 {
			r.O = es.symmetricAbsMove() / float64(den)
		}

		r.PctIATWithin10 = 100 * float64(s.Within10) / float64(r.Common)

		// L (Equation 3).
		spanCross := math.Max(float64(s.SpanB), float64(s.SpanA))
		if den := float64(r.Common) * spanCross; den > 0 {
			r.L = float64(s.SumAbsLat) / den
		}
		// I (Equation 4).
		if den := float64(s.SpanB + s.SpanA); den > 0 {
			r.I = float64(s.SumAbsIAT) / den
		}
	}

	r.Kappa = Kappa(r.U, r.O, r.L, r.I)
	return r
}

// OrderingParts returns Equation 2's numerator and denominator for the
// assembled window — what a running aggregate sums across windows.
func (s *Sums) OrderingParts() (num float64, den int64) {
	if s.Common == 0 {
		return 0, 0
	}
	sc := getScratch()
	defer putScratch(sc)
	rankA := commonRanksInto(sc, s.PosA, s.PosB)
	es := editScriptOf(sc, &matching{rankA: rankA})
	return es.symmetricAbsMove(), orderingDenominator(s.Common)
}

// commonRanksInto reproduces match()'s rankA: order the common packets
// by their position in B, then rank each one's A-position among all
// common A-positions. Unlike the old in-place pair sort, it works on
// index permutations from the scratch arena and leaves posA/posB
// untouched (so the stream engine can recycle those buffers). Both
// position sets hold distinct values, making every sort order unique
// and the result independent of sort stability — bit-identical to the
// previous implementation.
func commonRanksInto(sc *scratch, posA, posB []int32) []int32 {
	n := len(posA)
	// byA: indices sorted by position in A → rankOfA[i] is the rank of
	// posA[i] among all common A-positions.
	byA := i32buf(&sc.byA, n)
	for i := range byA {
		byA[i] = int32(i)
	}
	slices.SortFunc(byA, func(x, y int32) int { return int(posA[x]) - int(posA[y]) })
	rankOfA := i32buf(&sc.rankOfA, n)
	for r, i := range byA {
		rankOfA[i] = int32(r)
	}
	// byB: B arrival order of the common packets.
	byB := i32buf(&sc.byB, n)
	for i := range byB {
		byB[i] = int32(i)
	}
	slices.SortFunc(byB, func(x, y int32) int { return int(posB[x]) - int(posB[y]) })
	out := i32buf(&sc.rankOut, n)
	for i, j := range byB {
		out[i] = rankOfA[j]
	}
	return out
}
