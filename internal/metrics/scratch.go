package metrics

import (
	"sync"

	"repro/internal/packet"
)

// This file holds the pooled working memory of the comparison hot path.
// A single Compare over an n-packet trace pair needs two key arrays, two
// occurrence maps' worth of hashing, the match maps, the LIS buffers and
// the edit-script buffers — rebuilt from cold on every call, that was
// ~2100 allocations per 200k-packet comparison. The evaluation harness
// calls Compare once per trial pair per environment (and CompareWindowed
// once per window), so all of that memory is recycled through a
// sync.Pool of scratch arenas: steady-state comparisons allocate only
// what escapes into the Result.
//
// Safety rules, enforced by construction:
//
//   - A scratch is owned by exactly one Compare/Assemble/OrderingParts
//     call, acquired on entry and released on exit. sync.Pool makes that
//     safe under the parallel scheduler (one arena per in-flight call).
//   - Nothing backed by scratch memory may escape into a Result: deltas
//     and move distances that outlive the call are copied out.

type scratch struct {
	keysA, keysB []Key

	// occurrence numbering (keysInto) — reused for both trials.
	seen map[packet.Tag]uint32
	// key → position in A (matchInto).
	inA map[Key]int32

	// matching backing store.
	m        matching
	posA     []int32
	posB     []int32
	rankA    []int32
	rankAt   []int32
	isCommon []bool

	// LIS buffers (lisMembers, editScriptOf).
	member []bool
	tails  []int32
	prev   []int32
	inv    []int32
	moves  []int64

	// common-rank reconstruction (commonRanksInto).
	byA     []int32
	byB     []int32
	rankOfA []int32
	rankOut []int32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// i32buf returns a length-n slice reusing buf's capacity.
func i32buf(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// boolbuf returns a length-n zeroed slice reusing buf's capacity.
func boolbuf(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	} else {
		*buf = (*buf)[:n]
		for i := range *buf {
			(*buf)[i] = false
		}
	}
	return *buf
}

// keybuf returns a length-n slice reusing buf's capacity.
func keybuf(buf *[]Key, n int) []Key {
	if cap(*buf) < n {
		*buf = make([]Key, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// tagMap returns the cleared occurrence map.
func (s *scratch) tagMap(sizeHint int) map[packet.Tag]uint32 {
	if s.seen == nil {
		s.seen = make(map[packet.Tag]uint32, sizeHint)
	} else {
		clear(s.seen)
	}
	return s.seen
}

// keyMap returns the cleared key→position map.
func (s *scratch) keyMap(sizeHint int) map[Key]int32 {
	if s.inA == nil {
		s.inA = make(map[Key]int32, sizeHint)
	} else {
		clear(s.inA)
	}
	return s.inA
}
