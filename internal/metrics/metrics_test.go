package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// mk builds a trace from (seq, time) pairs; seq identifies the packet.
func mk(name string, seqs []uint64, times []sim.Time) *trace.Trace {
	tr := trace.New(name, len(seqs))
	for i, s := range seqs {
		tr.Append(&packet.Packet{Tag: packet.Tag{Seq: s}, Kind: packet.KindData, FrameLen: 100}, times[i])
	}
	return tr
}

// evenly builds a trace of n packets with the given IAT.
func evenly(name string, n int, iat sim.Duration) *trace.Trace {
	seqs := make([]uint64, n)
	times := make([]sim.Time, n)
	for i := range seqs {
		seqs[i] = uint64(i)
		times[i] = sim.Time(i) * iat
	}
	return mk(name, seqs, times)
}

func mustCompare(t *testing.T, a, b *trace.Trace, opts Options) *Result {
	t.Helper()
	r, err := Compare(a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIdenticalTrials(t *testing.T) {
	a := evenly("A", 100, 284)
	b := evenly("B", 100, 284)
	r := mustCompare(t, a, b, Options{})
	if r.U != 0 || r.O != 0 || r.L != 0 || r.I != 0 {
		t.Fatalf("identical trials: %v", r)
	}
	if r.Kappa != 1 {
		t.Fatalf("κ = %v, want 1", r.Kappa)
	}
	if r.PctIATWithin10 != 100 {
		t.Fatalf("within10 = %v, want 100", r.PctIATWithin10)
	}
}

func TestPaperUniquenessExample(t *testing.T) {
	// Paper §3: A has 10 packets, B drops one → U = 1/19.
	a := evenly("A", 10, 100)
	b := trace.New("B", 9)
	for i, p := range a.Packets {
		if i == 4 {
			continue
		}
		b.Append(p, a.Times[i])
	}
	r := mustCompare(t, a, b, Options{})
	if math.Abs(r.U-1.0/19) > 1e-12 {
		t.Fatalf("U = %v, want 1/19", r.U)
	}
	if r.OnlyA != 1 || r.OnlyB != 0 || r.Common != 9 {
		t.Fatalf("counts: %+v", r)
	}
}

func TestReversalMaximizesOrdering(t *testing.T) {
	n := 101
	a := evenly("A", n, 100)
	b := trace.New("B", n)
	for i := n - 1; i >= 0; i-- {
		b.Append(a.Packets[i], a.Times[n-1-i])
	}
	r := mustCompare(t, a, b, Options{KeepDeltas: true})
	if r.U != 0 {
		t.Fatalf("U = %v, want 0", r.U)
	}
	// Reversal moves n−1 packets a total of ~n²/2 ranks against a
	// denominator of n(n+1)/2, so O approaches 1 from below.
	if r.O < 0.95 || r.O > 1 {
		t.Fatalf("reversal should be near max: O = %v", r.O)
	}
	if r.MovedPackets != n-1 {
		t.Fatalf("moved %d packets, want %d (LCS of reversal is 1)", r.MovedPackets, n-1)
	}
}

func TestSingleSwapOrdering(t *testing.T) {
	// Swap adjacent packets 3 and 4: one packet moves distance 1.
	a := evenly("A", 10, 100)
	seqs := []uint64{0, 1, 2, 4, 3, 5, 6, 7, 8, 9}
	times := make([]sim.Time, 10)
	for i := range times {
		times[i] = a.Times[i]
	}
	b := mk("B", seqs, times)
	r := mustCompare(t, a, b, Options{KeepDeltas: true})
	if r.MovedPackets != 1 {
		t.Fatalf("moved %d, want 1", r.MovedPackets)
	}
	den := float64(orderingDenominator(10))
	if math.Abs(r.O-1/den) > 1e-12 {
		t.Fatalf("O = %v, want %v", r.O, 1/den)
	}
}

func TestLatencyShiftDetected(t *testing.T) {
	// Packet 5 arrives 50ns late in B; everything else identical.
	a := evenly("A", 10, 100)
	times := make([]sim.Time, 10)
	copy(times, a.Times)
	times[5] += 50
	seqs := make([]uint64, 10)
	for i := range seqs {
		seqs[i] = uint64(i)
	}
	b := mk("B", seqs, times)
	r := mustCompare(t, a, b, Options{KeepDeltas: true})
	// L numerator: |Δl| = 50 for packet 5 only. Denominator: 10 * 900.
	if want := 50.0 / (10 * 900); math.Abs(r.L-want) > 1e-12 {
		t.Fatalf("L = %v, want %v", r.L, want)
	}
	// I numerator: gap before packet 5 grows 50, gap before 6 shrinks 50.
	// Denominator: 900 + 900.
	if want := 100.0 / 1800; math.Abs(r.I-want) > 1e-12 {
		t.Fatalf("I = %v, want %v", r.I, want)
	}
	if r.LatencyDeltas[5] != 50 {
		t.Fatalf("latency delta = %d, want 50", r.LatencyDeltas[5])
	}
	if r.IATDeltas[5] != 50 || r.IATDeltas[6] != -50 {
		t.Fatalf("IAT deltas: %v", r.IATDeltas[4:8])
	}
}

func TestConstantShiftInvisible(t *testing.T) {
	// A whole-trial time shift must not register: metrics are computed
	// on trial-relative timelines.
	a := evenly("A", 50, 284)
	b := trace.New("B", 50)
	for i, p := range a.Packets {
		b.Append(p, a.Times[i]+123456789)
	}
	r := mustCompare(t, a, b, Options{})
	if r.L != 0 || r.I != 0 || r.Kappa != 1 {
		t.Fatalf("constant shift changed metrics: %v", r)
	}
}

func TestFirstPacketGapBaseCase(t *testing.T) {
	// Equation 4 base case: the first packet has g = 0 in both trials,
	// even when the trials start differently.
	a := mk("A", []uint64{0, 1}, []sim.Time{0, 100})
	b := mk("B", []uint64{1, 0}, []sim.Time{0, 100})
	r := mustCompare(t, a, b, Options{KeepDeltas: true})
	// Packet 1 (first in B, second in A): g_A=100, g_B=0 → |Δ|=100.
	// Packet 0 (second in B, first in A): g_A=0, g_B=100 → |Δ|=100.
	if want := 200.0 / 200.0; math.Abs(r.I-want) > 1e-12 {
		t.Fatalf("I = %v, want %v", r.I, want)
	}
}

func TestDuplicateTagsUseOccurrences(t *testing.T) {
	// Two packets share a tag; occurrence numbering keeps them distinct.
	a := mk("A", []uint64{7, 7, 8}, []sim.Time{0, 100, 200})
	b := mk("B", []uint64{7, 7, 8}, []sim.Time{0, 100, 200})
	r := mustCompare(t, a, b, Options{})
	if r.Common != 3 || r.U != 0 {
		t.Fatalf("duplicate handling: %v", r)
	}
	// B has one fewer duplicate → exactly one unmatched packet in A.
	b2 := mk("B2", []uint64{7, 8}, []sim.Time{0, 200})
	r2 := mustCompare(t, a, b2, Options{})
	if r2.Common != 2 || r2.OnlyA != 1 {
		t.Fatalf("missing duplicate: %v", r2)
	}
}

func TestKappaFormula(t *testing.T) {
	if got := Kappa(0, 0, 0, 0); got != 1 {
		t.Fatalf("κ(0,0,0,0) = %v", got)
	}
	if got := Kappa(1, 1, 1, 1); got != 0 {
		t.Fatalf("κ(1,1,1,1) = %v", got)
	}
	if got := Kappa(1, 0, 0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("κ(1,0,0,0) = %v, want 0.5", got)
	}
}

func TestEmptyTrials(t *testing.T) {
	e1, e2 := trace.New("A", 0), trace.New("B", 0)
	r := mustCompare(t, e1, e2, Options{})
	if r.U != 0 || r.Kappa != 1 {
		t.Fatalf("empty vs empty: %v", r)
	}
	a := evenly("A", 5, 10)
	r2 := mustCompare(t, a, e2, Options{})
	if r2.U != 1 {
		t.Fatalf("full vs empty: U = %v, want 1", r2.U)
	}
}

func TestDisjointTrials(t *testing.T) {
	a := mk("A", []uint64{1, 2}, []sim.Time{0, 10})
	b := mk("B", []uint64{3, 4}, []sim.Time{0, 10})
	r := mustCompare(t, a, b, Options{})
	if r.U != 1 {
		t.Fatalf("disjoint U = %v, want 1", r.U)
	}
	if r.O != 0 || r.L != 0 || r.I != 0 {
		t.Fatalf("no common packets should zero O/L/I: %v", r)
	}
	if math.Abs(r.Kappa-0.5) > 1e-12 {
		t.Fatalf("κ = %v, want 0.5", r.Kappa)
	}
}

func TestInvalidTraceRejected(t *testing.T) {
	bad := mk("bad", []uint64{0, 1}, []sim.Time{10, 5})
	good := evenly("good", 2, 10)
	if _, err := Compare(bad, good, Options{}); err == nil {
		t.Fatal("invalid trial A accepted")
	}
	if _, err := Compare(good, bad, Options{}); err == nil {
		t.Fatal("invalid trial B accepted")
	}
}

// --- property tests ---

// randomTrial builds a trial by shuffling/perturbing a base of n packets.
func randomTrial(rng *rand.Rand, name string, n int, shuffle bool, drop float64) *trace.Trace {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if shuffle {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}
	tr := trace.New(name, n)
	tm := sim.Time(0)
	for _, i := range idx {
		if rng.Float64() < drop {
			continue
		}
		tm += sim.Duration(rng.Int63n(500) + 1)
		tr.Append(&packet.Packet{Tag: packet.Tag{Seq: uint64(i)}, Kind: packet.KindData, FrameLen: 100}, tm)
	}
	return tr
}

func TestPropertySymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		a := randomTrial(rng, "A", 60, true, 0.1)
		b := randomTrial(rng, "B", 60, true, 0.1)
		ab := mustCompare(t, a, b, Options{})
		ba := mustCompare(t, b, a, Options{})
		const eps = 1e-9
		if math.Abs(ab.U-ba.U) > eps || math.Abs(ab.O-ba.O) > eps ||
			math.Abs(ab.L-ba.L) > eps || math.Abs(ab.I-ba.I) > eps ||
			math.Abs(ab.Kappa-ba.Kappa) > eps {
			t.Fatalf("asymmetry:\nAB %v\nBA %v", ab, ba)
		}
	}
}

func TestPropertyIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		a := randomTrial(rng, "A", 80, true, 0)
		r := mustCompare(t, a, a, Options{})
		if r.U != 0 || r.O != 0 || r.L != 0 || r.I != 0 || r.Kappa != 1 {
			t.Fatalf("M(A,A) ≠ 0: %v", r)
		}
	}
}

func TestPropertyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 50; trial++ {
		a := randomTrial(rng, "A", 40, true, 0.2)
		b := randomTrial(rng, "B", 40, true, 0.2)
		r := mustCompare(t, a, b, Options{})
		for name, v := range map[string]float64{"U": r.U, "O": r.O, "L": r.L, "I": r.I, "κ": r.Kappa} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("%s = %v out of [0,1]\n%v", name, v, r)
			}
		}
	}
}

func TestPropertyUDropFormula(t *testing.T) {
	// Dropping k of n packets gives U = k/(2n-k).
	f := func(rawN, rawK uint8) bool {
		n := int(rawN%50) + 2
		k := int(rawK) % n
		a := evenly("A", n, 100)
		b := trace.New("B", n-k)
		for i := k; i < n; i++ {
			b.Append(a.Packets[i], a.Times[i])
		}
		r, err := Compare(a, b, Options{})
		if err != nil {
			return false
		}
		want := float64(k) / float64(2*n-k)
		return math.Abs(r.U-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- LCS reference check ---

// refLCSLen is a O(n²) DP reference for the LIS-based LCS length.
func refLCSLen(seq []int32) int {
	n := len(seq)
	if n == 0 {
		return 0
	}
	best := make([]int, n)
	ans := 0
	for i := 0; i < n; i++ {
		best[i] = 1
		for j := 0; j < i; j++ {
			if seq[j] < seq[i] && best[j]+1 > best[i] {
				best[i] = best[j] + 1
			}
		}
		if best[i] > ans {
			ans = best[i]
		}
	}
	return ans
}

func TestLISMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	sc := getScratch()
	defer putScratch(sc)
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		perm := rng.Perm(n)
		seq := make([]int32, n)
		for i, v := range perm {
			seq[i] = int32(v)
		}
		member := lisMembers(sc, seq)
		got := 0
		last := int32(-1)
		for i, m := range member {
			if !m {
				continue
			}
			got++
			if seq[i] <= last {
				t.Fatalf("LIS not increasing at %d: %v", i, seq)
			}
			last = seq[i]
		}
		if want := refLCSLen(seq); got != want {
			t.Fatalf("LIS length %d, reference %d for %v", got, want, seq)
		}
	}
}

func TestLISEmptyAndSingle(t *testing.T) {
	sc := getScratch()
	defer putScratch(sc)
	if m := lisMembers(sc, nil); len(m) != 0 {
		t.Fatal("empty LIS mask should be empty")
	}
	m := lisMembers(sc, []int32{5})
	if !m[0] {
		t.Fatal("single element must be on the LIS")
	}
}

func TestMoveSummaryAndFraction(t *testing.T) {
	a := evenly("A", 10, 100)
	b := trace.New("B", 10)
	order := []int{1, 0, 2, 3, 4, 5, 6, 7, 8, 9}
	for i, j := range order {
		b.Append(a.Packets[j], a.Times[i])
	}
	r := mustCompare(t, a, b, Options{KeepDeltas: true})
	if r.MovedPackets != 1 {
		t.Fatalf("moved %d, want 1", r.MovedPackets)
	}
	if got := r.MovedFraction(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MovedFraction = %v, want 0.1", got)
	}
	s := r.MoveSummary()
	if s.N != 1 || s.AbsMean != 1 {
		t.Fatalf("MoveSummary = %+v", s)
	}
}

func TestMean(t *testing.T) {
	rs := []*Result{
		{U: 0, O: 0.2, L: 0.1, I: 0.4, Kappa: 0.8},
		{U: 0.2, O: 0, L: 0.3, I: 0.2, Kappa: 0.6},
	}
	m := Mean(rs)
	if m.Runs != 2 || math.Abs(m.U-0.1) > 1e-12 || math.Abs(m.Kappa-0.7) > 1e-12 {
		t.Fatalf("Mean = %+v", m)
	}
	if z := Mean(nil); z.Runs != 0 {
		t.Fatalf("Mean(nil) = %+v", z)
	}
}

func TestResultString(t *testing.T) {
	r := &Result{U: 0.1, O: 0.2, L: 0.3, I: 0.4, Kappa: 0.5}
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestParallelCompareMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 10; trial++ {
		a := randomTrial(rng, "A", 500, true, 0.05)
		b := randomTrial(rng, "B", 500, true, 0.05)
		serial := mustCompare(t, a, b, Options{KeepDeltas: true})
		for _, workers := range []int{2, 4, 7, 1000} {
			par := mustCompare(t, a, b, Options{KeepDeltas: true, Parallelism: workers})
			if par.L != serial.L || par.I != serial.I ||
				par.PctIATWithin10 != serial.PctIATWithin10 ||
				par.Kappa != serial.Kappa {
				t.Fatalf("workers=%d: parallel %v != serial %v", workers, par, serial)
			}
			for i := range serial.IATDeltas {
				if par.IATDeltas[i] != serial.IATDeltas[i] {
					t.Fatalf("workers=%d: delta %d differs", workers, i)
				}
			}
		}
	}
}

func TestMyersMatchesLISOnPermutations(t *testing.T) {
	// On permutations of unique values, the general O(ND) algorithm and
	// the Schensted LIS shortcut must agree on LCS length.
	rng := rand.New(rand.NewSource(91))
	identity := func(n int) []int32 {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(80)
		perm := rng.Perm(n)
		seq := make([]int32, n)
		for i, v := range perm {
			seq[i] = int32(v)
		}
		lisLen := 0
		sc := getScratch()
		for _, m := range lisMembers(sc, seq) {
			if m {
				lisLen++
			}
		}
		putScratch(sc)
		if got := myersLCSLen(identity(n), seq); got != lisLen {
			t.Fatalf("trial %d: myers %d != lis %d for %v", trial, got, lisLen, seq)
		}
	}
}

func TestMyersGeneralSequences(t *testing.T) {
	cases := []struct {
		a, b []int32
		dist int
	}{
		{nil, nil, 0},
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 0},
		{[]int32{1, 2, 3}, nil, 3},
		{[]int32{1, 2, 3}, []int32{3, 2, 1}, 4},       // LCS 1
		{[]int32{1, 2, 3, 4}, []int32{2, 3, 4, 5}, 2}, // LCS 3
		{[]int32{1, 1, 2, 2}, []int32{1, 2, 1, 2}, 2}, // repeats: LCS 3
	}
	for _, c := range cases {
		if got := MyersEditDistance(c.a, c.b); got != c.dist {
			t.Fatalf("MyersEditDistance(%v,%v) = %d, want %d", c.a, c.b, got, c.dist)
		}
	}
}

func TestQuickMyersSymmetric(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a := make([]int32, len(ra))
		for i, v := range ra {
			a[i] = int32(v % 8)
		}
		b := make([]int32, len(rb))
		for i, v := range rb {
			b[i] = int32(v % 8)
		}
		d1 := MyersEditDistance(a, b)
		d2 := MyersEditDistance(b, a)
		return d1 == d2 && d1 >= 0 && d1 <= len(a)+len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
