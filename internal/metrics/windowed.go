package metrics

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// This file extends the compound metric along the axis the abstract
// promises ("designed to support comparison across time, configurations
// and environments"): κ computed per time window, exposing *when* in a
// trial the environment misbehaved — a steal burst, a congestion
// episode — that a single whole-trial score averages away.

// WindowResult is the metric vector of one time window.
type WindowResult struct {
	// Start and End bound the window on the trial-relative timeline.
	Start, End sim.Time
	// Result holds the §3 metrics restricted to this window.
	Result *Result
}

// String renders the window score.
func (w WindowResult) String() string {
	return fmt.Sprintf("[%v,%v) κ=%.4f", w.Start, w.End, w.Result.Kappa)
}

// CompareWindowed slices both trials into consecutive windows of the
// given length (on each trial's own relative timeline, starting at its
// first packet) and computes the §3 metrics per window pair. Windows
// where both trials are empty are skipped.
//
// Whole-trial U catches packets that migrated across a window edge as
// well as real drops; within-window scores should therefore be read as
// a locality profile, with the aggregate Compare remaining the
// authoritative total.
func CompareWindowed(a, b *trace.Trace, window sim.Duration, opts Options) ([]WindowResult, error) {
	if window <= 0 {
		return nil, fmt.Errorf("metrics: window must be positive, got %v", window)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("metrics: trial A: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("metrics: trial B: %w", err)
	}
	an := a.Normalize()
	bn := b.Normalize()
	span := an.Span()
	if bn.Span() > span {
		span = bn.Span()
	}
	var out []WindowResult
	ai, bi := 0, 0
	for start := sim.Time(0); start <= span; start += window {
		end := start + window
		subA, na := sliceWindow(an, ai, end)
		subB, nb := sliceWindow(bn, bi, end)
		ai, bi = na, nb
		if subA.Len() == 0 && subB.Len() == 0 {
			continue
		}
		r, err := Compare(subA, subB, opts)
		if err != nil {
			return nil, fmt.Errorf("metrics: window [%v,%v): %w", start, end, err)
		}
		out = append(out, WindowResult{Start: start, End: end, Result: r})
	}
	return out, nil
}

// sliceWindow returns the packets of tr from index from up to (not
// including) the first packet at or after end, plus the next index.
// The sub-trace shares the parent's backing arrays.
func sliceWindow(tr *trace.Trace, from int, end sim.Time) (*trace.Trace, int) {
	i := from
	for i < tr.Len() && tr.Times[i] < end {
		i++
	}
	return &trace.Trace{
		Name:    tr.Name,
		Packets: tr.Packets[from:i],
		Times:   tr.Times[from:i],
	}, i
}

// WorstWindow returns the window with the lowest κ (the episode to go
// debugging), or a zero value when ws is empty.
func WorstWindow(ws []WindowResult) WindowResult {
	var worst WindowResult
	for i, w := range ws {
		if i == 0 || w.Result.Kappa < worst.Result.Kappa {
			worst = w
		}
	}
	return worst
}
