package metrics

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// This file extends the compound metric along the axis the abstract
// promises ("designed to support comparison across time, configurations
// and environments"): κ computed per time window, exposing *when* in a
// trial the environment misbehaved — a steal burst, a congestion
// episode — that a single whole-trial score averages away.

// WindowResult is the metric vector of one time window.
type WindowResult struct {
	// Start and End bound the window on the trial-relative timeline.
	Start, End sim.Time
	// Result holds the §3 metrics restricted to this window.
	Result *Result
}

// String renders the window score.
func (w WindowResult) String() string {
	return fmt.Sprintf("[%v,%v) κ=%.4f", w.Start, w.End, w.Result.Kappa)
}

// CompareWindowed slices both trials into consecutive windows of the
// given length (on each trial's own relative timeline, starting at its
// first packet) and computes the §3 metrics per window pair. Windows
// where both trials are empty are skipped.
//
// Whole-trial U catches packets that migrated across a window edge as
// well as real drops; within-window scores should therefore be read as
// a locality profile, with the aggregate Compare remaining the
// authoritative total.
func CompareWindowed(a, b *trace.Trace, window sim.Duration, opts Options) ([]WindowResult, error) {
	if window <= 0 {
		return nil, fmt.Errorf("metrics: window must be positive, got %v", window)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("metrics: trial A: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("metrics: trial B: %w", err)
	}
	an := a.Normalize()
	bn := b.Normalize()
	span := an.Span()
	if bn.Span() > span {
		span = bn.Span()
	}
	// Pass 1: window index bounds — a cheap sequential scan over both
	// timelines. Windows where both trials are empty are skipped.
	type winBounds struct {
		start          sim.Time
		a0, a1, b0, b1 int
	}
	var wins []winBounds
	ai, bi := 0, 0
	for start := sim.Time(0); start <= span; start += window {
		end := start + window
		na := windowEnd(an, ai, end)
		nb := windowEnd(bn, bi, end)
		if na > ai || nb > bi {
			wins = append(wins, winBounds{start: start, a0: ai, a1: na, b0: bi, b1: nb})
		}
		ai, bi = na, nb
	}

	if len(wins) == 0 {
		return nil, nil
	}

	// Pass 2: score each window. Every window is an independent Compare
	// over shared backing arrays, so they fan out across the scheduler
	// into index-addressed slots; the sequential path reuses two
	// sub-trace headers across all windows (sliceWindow is copy-free:
	// no packet or timestamp data is ever duplicated).
	out := make([]WindowResult, len(wins))
	score := func(i int, subA, subB *trace.Trace) error {
		w := wins[i]
		sliceWindow(subA, an, w.a0, w.a1)
		sliceWindow(subB, bn, w.b0, w.b1)
		r, err := Compare(subA, subB, opts)
		if err != nil {
			return fmt.Errorf("metrics: window [%v,%v): %w", w.start, w.start+window, err)
		}
		out[i] = WindowResult{Start: w.start, End: w.start + window, Result: r}
		return nil
	}
	if opts.Pool.Workers() > 1 && len(wins) > 1 {
		if err := opts.Pool.Do(len(wins), func(i int) error {
			var subA, subB trace.Trace
			return score(i, &subA, &subB)
		}); err != nil {
			return nil, err
		}
	} else {
		var subA, subB trace.Trace
		for i := range wins {
			if err := score(i, &subA, &subB); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// windowEnd returns the index of the first packet of tr at or after
// end, starting the scan at from.
func windowEnd(tr *trace.Trace, from int, end sim.Time) int {
	i := from
	for i < tr.Len() && tr.Times[i] < end {
		i++
	}
	return i
}

// sliceWindow points dst at the [from,to) packets of tr without copying
// packet or timestamp data; dst shares the parent's backing arrays.
func sliceWindow(dst *trace.Trace, tr *trace.Trace, from, to int) {
	dst.Name = tr.Name
	dst.Packets = tr.Packets[from:to]
	dst.Times = tr.Times[from:to]
}

// WorstWindow returns the window with the lowest κ (the episode to go
// debugging), or a zero value when ws is empty.
func WorstWindow(ws []WindowResult) WindowResult {
	var worst WindowResult
	for i, w := range ws {
		if i == 0 || w.Result.Kappa < worst.Result.Kappa {
			worst = w
		}
	}
	return worst
}
