package metrics

import "math"

// This file implements the refinements the paper sketches as future
// work in §8.2/§10: per-component weights and non-linear scalings that
// make the *presence* of rare events (any drop, any reordering) weigh
// more than their linear magnitude.

// Weights scales each component's contribution to the compound score.
// The zero value means "unweighted" (all ones).
type Weights struct {
	U, O, L, I float64
}

// DefaultWeights is the paper's implicit equal weighting.
func DefaultWeights() Weights { return Weights{U: 1, O: 1, L: 1, I: 1} }

func (w Weights) orDefault() Weights {
	if w == (Weights{}) {
		return DefaultWeights()
	}
	return w
}

// norm returns the normalization constant so that the weighted score
// still spans [0,1].
func (w Weights) norm() float64 {
	return math.Sqrt(w.U*w.U + w.O*w.O + w.L*w.L + w.I*w.I)
}

// Scaling selects the refinement applied to individual components
// before combination.
type Scaling int

const (
	// ScaleLinear is the paper's published formulation.
	ScaleLinear Scaling = iota
	// ScaleSqrt takes the square root of U and O, amplifying small
	// non-zero values: one drop in a million packets moves the score
	// visibly ("non-linear scalings that would make the presence of
	// any drops more heavily impact the score", §8.2).
	ScaleSqrt
	// ScaleQuartic takes the fourth root — even more sensitive to
	// rare events.
	ScaleQuartic
)

// apply scales a single component value.
func (s Scaling) apply(v float64) float64 {
	switch s {
	case ScaleSqrt:
		return math.Sqrt(v)
	case ScaleQuartic:
		return math.Sqrt(math.Sqrt(v))
	default:
		return v
	}
}

// KappaOptions configures the refined compound score.
type KappaOptions struct {
	// Weights are per-component multipliers (zero value = equal).
	Weights Weights
	// PresenceScaling is applied to U and O, the discrete-event
	// components where the paper argues presence matters more than
	// magnitude. L and I remain linear.
	PresenceScaling Scaling
}

// KappaScaled computes the refined compound score. With the zero
// options it equals Kappa exactly.
func KappaScaled(u, o, l, i float64, opts KappaOptions) float64 {
	w := opts.Weights.orDefault()
	u = opts.PresenceScaling.apply(clamp01(u))
	o = opts.PresenceScaling.apply(clamp01(o))
	l = clamp01(l)
	i = clamp01(i)
	n := w.norm()
	if n == 0 {
		return 1
	}
	mag := math.Sqrt(w.U*w.U*u*u + w.O*w.O*o*o + w.L*w.L*l*l + w.I*w.I*i*i)
	return 1 - mag/n
}

// KappaScaledResult applies KappaScaled to a computed Result.
func KappaScaledResult(r *Result, opts KappaOptions) float64 {
	return KappaScaled(r.U, r.O, r.L, r.I, opts)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
