package metrics

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// This file is the batch↔federation bridge: TraceSums collapses a whole
// trace pair into one Sums partial — the same integer partials the
// streaming engine accumulates per window, but spanning the entire
// comparison — so a federation of replay sites can merge per-trial
// partials hierarchically (internal/federation) and assemble a global κ
// that is bit-identical to a single site folding the same partials
// sequentially. Exactness rests on the PR-1 partial-sum algebra: every
// Sums field is either an exact integer sum, a max, or a position
// multiset whose order Assemble ignores.

// TraceSums computes the whole-comparison partial sums between trials A
// and B: the Sums such that TraceSums(a, b).Assemble() reproduces
// Compare(a, b) bit for bit on every metric field (U, O, L, I, κ,
// PctIATWithin10, MovedPackets and the Common/OnlyA/OnlyB counts). It
// performs the identical matching and integer accumulation Compare
// does — same operand order, same int→float conversion points — but
// stops before the Equation 1–5 normalizations, leaving a partial that
// can be merged with other trials' partials before assembly.
func TraceSums(a, b *trace.Trace) (*Sums, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("metrics: trial A: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("metrics: trial B: %w", err)
	}
	s := getScratch()
	defer putScratch(s)
	m := matchInto(s, a, b)

	out := &Sums{
		Common: m.commonCount(),
		OnlyA:  m.onlyA,
		OnlyB:  m.onlyB,
		SpanA:  a.Span(),
		SpanB:  b.Span(),
	}
	for i := 0; i < out.Common; i++ {
		la, lb := m.latencyPair(a, b, i)
		out.SumAbsLat += absInt64(int64(lb - la))
		ga, gb := m.gapPair(a, b, i)
		di := int64(gb - ga)
		out.SumAbsIAT += absInt64(di)
		if di <= 10 && di >= -10 {
			out.Within10++
		}
	}
	// m's position slices are scratch-backed; copy what outlives the
	// call. posA/posB are full-sequence positions ordered by appearance
	// in B — exactly the coordinates commonRanksInto re-ranks, so
	// Assemble rebuilds Compare's rankA.
	out.PosA = append([]int32(nil), m.posA...)
	out.PosB = append([]int32(nil), m.posB...)
	return out, nil
}

// Offset translates the partial's position coordinates by d, mapping a
// per-comparison position space [0, len) into a disjoint slot of a
// federation-global space. Shifting both sides by the same constant
// preserves every pairwise order, so the ordering metric of merged
// partials equals the ordering metric of the concatenated traces; it
// errors if any shifted position would overflow the int32 coordinate
// space (the federation sizes slots up front and rejects campaigns that
// cannot fit).
func (s *Sums) Offset(d int64) error {
	if d < 0 {
		return fmt.Errorf("metrics: negative position offset %d", d)
	}
	for i, p := range s.PosA {
		v := int64(p) + d
		if v > math.MaxInt32 {
			return fmt.Errorf("metrics: position offset %d overflows int32 (posA=%d)", d, p)
		}
		s.PosA[i] = int32(v)
	}
	for i, p := range s.PosB {
		v := int64(p) + d
		if v > math.MaxInt32 {
			return fmt.Errorf("metrics: position offset %d overflows int32 (posB=%d)", d, p)
		}
		s.PosB[i] = int32(v)
	}
	return nil
}

// Clone deep-copies the partial, so custody handoffs between federation
// sites can move a partial without aliasing the donor's buffers.
func (s *Sums) Clone() *Sums {
	c := *s
	c.PosA = append([]int32(nil), s.PosA...)
	c.PosB = append([]int32(nil), s.PosB...)
	return &c
}
