package metrics

// Reference implementation of Myers' O(ND) difference algorithm
// (the paper's citation for deriving the minimum edit script alongside
// the LCS). The production path uses the LIS shortcut, which is valid
// because trials are permutations of unique packets; this general
// algorithm works on arbitrary sequences and serves as the
// cross-validation oracle in tests and as the fallback for callers with
// non-unique inputs.

// myersLCSLen returns the LCS length of two int32 sequences using the
// forward O(ND) algorithm with linear space for the V array.
func myersLCSLen(a, b []int32) int {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0
	}
	max := n + m
	// v[k+offset] = furthest x on diagonal k.
	v := make([]int, 2*max+1)
	offset := max
	for d := 0; d <= max; d++ {
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[offset+k-1] < v[offset+k+1]) {
				x = v[offset+k+1] // down: insertion
			} else {
				x = v[offset+k-1] + 1 // right: deletion
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[offset+k] = x
			if x >= n && y >= m {
				// d = total edits = (n - lcs) + (m - lcs).
				return (n + m - d) / 2
			}
		}
	}
	return 0
}

// MyersEditDistance returns the minimum number of insertions plus
// deletions transforming a into b.
func MyersEditDistance(a, b []int32) int {
	return len(a) + len(b) - 2*myersLCSLen(a, b)
}
