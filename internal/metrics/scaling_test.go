package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestKappaScaledZeroOptionsEqualsKappa(t *testing.T) {
	cases := [][4]float64{
		{0, 0, 0, 0},
		{1, 1, 1, 1},
		{0.1, 0.2, 0.3, 0.4},
		{1e-4, 0, 0.05, 2e-6},
	}
	for _, c := range cases {
		got := KappaScaled(c[0], c[1], c[2], c[3], KappaOptions{})
		want := Kappa(c[0], c[1], c[2], c[3])
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("KappaScaled(%v) = %v, Kappa = %v", c, got, want)
		}
	}
}

func TestSqrtScalingAmplifiesRareDrops(t *testing.T) {
	// One drop in a million: U ≈ 5e-7; linear κ barely moves, sqrt
	// scaling makes it visible.
	u := 5e-7
	linear := KappaScaled(u, 0, 0, 0, KappaOptions{})
	sqrt := KappaScaled(u, 0, 0, 0, KappaOptions{PresenceScaling: ScaleSqrt})
	quartic := KappaScaled(u, 0, 0, 0, KappaOptions{PresenceScaling: ScaleQuartic})
	if 1-linear > 1e-6 {
		t.Fatalf("linear κ should barely move: %v", linear)
	}
	if sqrt >= linear {
		t.Fatalf("sqrt scaling should penalize more: %v >= %v", sqrt, linear)
	}
	if quartic >= sqrt {
		t.Fatalf("quartic should penalize more than sqrt: %v >= %v", quartic, sqrt)
	}
	// Quartic of 5e-7 is ~0.027: the drop is now visible at the third
	// decimal of κ.
	if 1-quartic < 0.005 {
		t.Fatalf("quartic penalty too weak: κ=%v", quartic)
	}
}

func TestScalingLeavesLatencyLinear(t *testing.T) {
	a := KappaScaled(0, 0, 0.04, 0, KappaOptions{PresenceScaling: ScaleQuartic})
	b := KappaScaled(0, 0, 0.04, 0, KappaOptions{})
	if a != b {
		t.Fatalf("L must stay linear: %v vs %v", a, b)
	}
}

func TestWeightsShiftEmphasis(t *testing.T) {
	// The paper observes I overpowering L; weighting L up rebalances.
	u, o, l, i := 0.0, 0.0, 1e-5, 0.1
	plain := KappaScaled(u, o, l, i, KappaOptions{})
	iDown := KappaScaled(u, o, l, i, KappaOptions{Weights: Weights{U: 1, O: 1, L: 1, I: 0.25}})
	if iDown <= plain {
		t.Fatalf("down-weighting I should raise κ: %v <= %v", iDown, plain)
	}
	// Weighted score still bounded.
	if iDown > 1 || iDown < 0 {
		t.Fatalf("weighted κ out of range: %v", iDown)
	}
}

func TestQuickKappaScaledBounds(t *testing.T) {
	f := func(ru, ro, rl, ri uint8, scale uint8) bool {
		u := float64(ru) / 255
		o := float64(ro) / 255
		l := float64(rl) / 255
		i := float64(ri) / 255
		k := KappaScaled(u, o, l, i, KappaOptions{PresenceScaling: Scaling(scale % 3)})
		return k >= 0 && k <= 1 && !math.IsNaN(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKappaScaledResult(t *testing.T) {
	r := &Result{U: 0.01, O: 0.02, L: 0.03, I: 0.04}
	if got, want := KappaScaledResult(r, KappaOptions{}), Kappa(0.01, 0.02, 0.03, 0.04); math.Abs(got-want) > 1e-12 {
		t.Fatalf("KappaScaledResult = %v, want %v", got, want)
	}
}

func TestDefaultWeights(t *testing.T) {
	if DefaultWeights() != (Weights{1, 1, 1, 1}) {
		t.Fatal("default weights changed")
	}
	if (Weights{}).orDefault() != DefaultWeights() {
		t.Fatal("zero weights should default")
	}
}

// --- reorder profile ---

func reorderTrace(name string, order []int) *trace.Trace {
	tr := trace.New(name, len(order))
	for i, v := range order {
		tr.Append(&packet.Packet{Tag: packet.Tag{Seq: uint64(v)}, Kind: packet.KindData, FrameLen: 100}, sim.Time(i)*100)
	}
	return tr
}

func TestReorderProfileIdentity(t *testing.T) {
	a := reorderTrace("A", []int{0, 1, 2, 3, 4, 5})
	b := reorderTrace("B", []int{0, 1, 2, 3, 4, 5})
	p := ReorderBySpacing(a, b, 3)
	if p.AnyReordering() {
		t.Fatalf("identical trials show reordering: %v", p.Prob)
	}
	if p.MaxSpacing() != 3 {
		t.Fatalf("MaxSpacing = %d", p.MaxSpacing())
	}
	if p.Pairs[0] != 5 || p.Pairs[2] != 3 {
		t.Fatalf("pair counts: %v", p.Pairs)
	}
}

func TestReorderProfileAdjacentSwap(t *testing.T) {
	a := reorderTrace("A", []int{0, 1, 2, 3, 4, 5})
	b := reorderTrace("B", []int{0, 2, 1, 3, 4, 5}) // swap packets 1 and 2
	p := ReorderBySpacing(a, b, 3)
	// Only the (1,2) pair at spacing 1 inverts: 1 of 5 pairs.
	if math.Abs(p.Prob[0]-0.2) > 1e-12 {
		t.Fatalf("spacing-1 probability %v, want 0.2", p.Prob[0])
	}
	if p.Prob[1] != 0 || p.Prob[2] != 0 {
		t.Fatalf("larger spacings should be clean: %v", p.Prob)
	}
	if !p.AnyReordering() {
		t.Fatal("AnyReordering false")
	}
}

func TestReorderProfileReversal(t *testing.T) {
	a := reorderTrace("A", []int{0, 1, 2, 3})
	b := reorderTrace("B", []int{3, 2, 1, 0})
	p := ReorderBySpacing(a, b, 3)
	for d, prob := range p.Prob {
		if prob != 1 {
			t.Fatalf("reversal spacing %d probability %v, want 1", d+1, prob)
		}
	}
}

func TestReorderProfileIgnoresMissing(t *testing.T) {
	a := reorderTrace("A", []int{0, 1, 2, 3})
	b := reorderTrace("B", []int{0, 2, 3}) // packet 1 dropped, order intact
	p := ReorderBySpacing(a, b, 2)
	if p.AnyReordering() {
		t.Fatalf("drop misread as reordering: %v", p.Prob)
	}
}

func TestReorderProfileClampsSpacing(t *testing.T) {
	a := reorderTrace("A", []int{0, 1})
	b := reorderTrace("B", []int{0, 1})
	p := ReorderBySpacing(a, b, 0)
	if p.MaxSpacing() != 1 {
		t.Fatalf("MaxSpacing = %d, want clamp to 1", p.MaxSpacing())
	}
	// Spacing beyond trace length yields zero pairs without panicking.
	p2 := ReorderBySpacing(a, b, 10)
	if p2.Pairs[9] != 0 {
		t.Fatalf("expected zero pairs at oversize spacing: %v", p2.Pairs)
	}
}
