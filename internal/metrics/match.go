// Package metrics implements the paper's consistency metrics between two
// trials: U (uniqueness), O (ordering), L (latency), I (inter-arrival
// time) and the compound score κ (Equations 1–5).
//
// Two trials are sequences of received packets. Packets are identified by
// their unique trailer tag; duplicate tags are disambiguated by occurrence
// number exactly as the paper prescribes ("where packets are completely
// identical in data, they can be tagged with their occurrence").
package metrics

import (
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Key uniquely identifies a packet within a trial: trailer tag plus
// occurrence index for (defensively) duplicated tags.
type Key struct {
	Tag packet.Tag
	Occ uint32
}

// keysOf assigns each packet its identity key in arrival order,
// allocating fresh storage (tests and one-shot callers).
func keysOf(t *trace.Trace) []Key {
	s := getScratch()
	defer putScratch(s)
	keys := make([]Key, t.Len())
	fillKeys(keys, s.tagMap(t.Len()), t)
	return keys
}

// keysInto fills dst (reusing its capacity) with each packet's identity
// key in arrival order, numbering duplicate tags by occurrence using
// the scratch arena's cleared map.
func keysInto(s *scratch, dst *[]Key, t *trace.Trace) []Key {
	keys := keybuf(dst, t.Len())
	fillKeys(keys, s.tagMap(t.Len()), t)
	return keys
}

func fillKeys(keys []Key, seen map[packet.Tag]uint32, t *trace.Trace) {
	for i, p := range t.Packets {
		occ := seen[p.Tag]
		seen[p.Tag] = occ + 1
		keys[i] = Key{Tag: p.Tag, Occ: occ}
	}
}

// matching pairs up the common packets of two trials.
//
// For each common packet it records the full-sequence positions in A and
// B as well as the "common rank" (position counting common packets only),
// ordered by appearance in B. Common ranks are what the ordering metric
// operates on: they are invariant to packets present in only one trial,
// which U already accounts for.
type matching struct {
	// Ordered by position in B.
	posA, posB []int32 // full-sequence positions
	rankA      []int32 // common-only rank in A for the i-th common packet of B
	onlyA      int     // packets present only in A
	onlyB      int     // packets present only in B
}

// matchInto computes the matching using s's reusable buffers. The
// returned *matching is backed by scratch memory and is valid only
// until s is released.
func matchInto(s *scratch, a, b *trace.Trace) *matching {
	keysA := keysInto(s, &s.keysA, a)
	keysB := keysInto(s, &s.keysB, b)
	inA := s.keyMap(len(keysA))
	for i, k := range keysA {
		inA[k] = int32(i)
	}

	m := &s.m
	*m = matching{posA: s.posA[:0], posB: s.posB[:0]}
	for i, k := range keysB {
		if pa, ok := inA[k]; ok {
			m.posA = append(m.posA, pa)
			m.posB = append(m.posB, int32(i))
		} else {
			m.onlyB++
		}
	}
	// Keys are unique within a trial (tag + occurrence), so every
	// matched pair consumes a distinct key of A: |common keys| is
	// exactly the number of matches — no dedup map needed.
	m.onlyA = len(keysA) - len(m.posA)
	s.posA, s.posB = m.posA, m.posB // retain grown capacity

	// Common ranks in A: sort order of posA. Compute by counting, in A
	// order, how many common packets precede each position.
	isCommon := boolbuf(&s.isCommon, len(keysA))
	for _, pa := range m.posA {
		isCommon[pa] = true
	}
	rankAt := i32buf(&s.rankAt, len(keysA))
	var r int32
	for i := range keysA {
		if isCommon[i] {
			rankAt[i] = r
			r++
		}
	}
	m.rankA = i32buf(&s.rankA, len(m.posA))
	for i, pa := range m.posA {
		m.rankA[i] = rankAt[pa]
	}
	return m
}

// match pairs two trials with freshly allocated storage — the
// convenience entry point for callers that hold on to the matching
// (ReorderBySpacing, tests). The hot path uses matchInto.
func match(a, b *trace.Trace) *matching {
	s := getScratch()
	defer putScratch(s)
	sm := matchInto(s, a, b)
	m := &matching{
		posA:  append([]int32(nil), sm.posA...),
		posB:  append([]int32(nil), sm.posB...),
		rankA: append([]int32(nil), sm.rankA...),
		onlyA: sm.onlyA,
		onlyB: sm.onlyB,
	}
	return m
}

// commonCount returns |A ∩ B|.
func (m *matching) commonCount() int { return len(m.posA) }

// lenA and lenB reconstruct the trial sizes.
func (m *matching) lenA() int { return m.commonCount() + m.onlyA }
func (m *matching) lenB() int { return m.commonCount() + m.onlyB }

// latencyPair returns (l_A, l_B) for the i-th common packet: arrival
// times relative to each trial's first packet (Equation 3 semantics).
func (m *matching) latencyPair(a, b *trace.Trace, i int) (sim.Duration, sim.Duration) {
	la := a.Times[m.posA[i]] - a.Times[0]
	lb := b.Times[m.posB[i]] - b.Times[0]
	return la, lb
}

// gapPair returns (g_A, g_B) for the i-th common packet: the inter-
// arrival gap before that packet in each full trial, 0 for a trial's
// first packet (Equation 4 semantics, including the t_X0 == t_X(-1)
// base case).
func (m *matching) gapPair(a, b *trace.Trace, i int) (sim.Duration, sim.Duration) {
	var ga, gb sim.Duration
	if j := m.posA[i]; j > 0 {
		ga = a.Times[j] - a.Times[j-1]
	}
	if k := m.posB[i]; k > 0 {
		gb = b.Times[k] - b.Times[k-1]
	}
	return ga, gb
}
