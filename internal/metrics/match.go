// Package metrics implements the paper's consistency metrics between two
// trials: U (uniqueness), O (ordering), L (latency), I (inter-arrival
// time) and the compound score κ (Equations 1–5).
//
// Two trials are sequences of received packets. Packets are identified by
// their unique trailer tag; duplicate tags are disambiguated by occurrence
// number exactly as the paper prescribes ("where packets are completely
// identical in data, they can be tagged with their occurrence").
package metrics

import (
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Key uniquely identifies a packet within a trial: trailer tag plus
// occurrence index for (defensively) duplicated tags.
type Key struct {
	Tag packet.Tag
	Occ uint32
}

// keysOf assigns each packet its identity key in arrival order.
func keysOf(t *trace.Trace) []Key {
	keys := make([]Key, t.Len())
	seen := make(map[packet.Tag]uint32, t.Len())
	for i, p := range t.Packets {
		occ := seen[p.Tag]
		seen[p.Tag] = occ + 1
		keys[i] = Key{Tag: p.Tag, Occ: occ}
	}
	return keys
}

// matching pairs up the common packets of two trials.
//
// For each common packet it records the full-sequence positions in A and
// B as well as the "common rank" (position counting common packets only),
// ordered by appearance in B. Common ranks are what the ordering metric
// operates on: they are invariant to packets present in only one trial,
// which U already accounts for.
type matching struct {
	// Ordered by position in B.
	posA, posB []int32 // full-sequence positions
	rankA      []int32 // common-only rank in A for the i-th common packet of B
	onlyA      int     // packets present only in A
	onlyB      int     // packets present only in B
}

func match(a, b *trace.Trace) *matching {
	keysA := keysOf(a)
	keysB := keysOf(b)
	inA := make(map[Key]int32, len(keysA))
	for i, k := range keysA {
		inA[k] = int32(i)
	}

	m := &matching{}
	common := make(map[Key]struct{}, len(keysB))
	for i, k := range keysB {
		if pa, ok := inA[k]; ok {
			m.posA = append(m.posA, pa)
			m.posB = append(m.posB, int32(i))
			common[k] = struct{}{}
		} else {
			m.onlyB++
		}
	}
	m.onlyA = len(keysA) - len(common)

	// Common ranks in A: sort order of posA. Compute by counting, in A
	// order, how many common packets precede each position.
	isCommon := make([]bool, len(keysA))
	for _, pa := range m.posA {
		isCommon[pa] = true
	}
	rankAt := make([]int32, len(keysA))
	var r int32
	for i := range keysA {
		if isCommon[i] {
			rankAt[i] = r
			r++
		}
	}
	m.rankA = make([]int32, len(m.posA))
	for i, pa := range m.posA {
		m.rankA[i] = rankAt[pa]
	}
	return m
}

// commonCount returns |A ∩ B|.
func (m *matching) commonCount() int { return len(m.posA) }

// lenA and lenB reconstruct the trial sizes.
func (m *matching) lenA() int { return m.commonCount() + m.onlyA }
func (m *matching) lenB() int { return m.commonCount() + m.onlyB }

// latencyPair returns (l_A, l_B) for the i-th common packet: arrival
// times relative to each trial's first packet (Equation 3 semantics).
func (m *matching) latencyPair(a, b *trace.Trace, i int) (sim.Duration, sim.Duration) {
	la := a.Times[m.posA[i]] - a.Times[0]
	lb := b.Times[m.posB[i]] - b.Times[0]
	return la, lb
}

// gapPair returns (g_A, g_B) for the i-th common packet: the inter-
// arrival gap before that packet in each full trial, 0 for a trial's
// first packet (Equation 4 semantics, including the t_X0 == t_X(-1)
// base case).
func (m *matching) gapPair(a, b *trace.Trace, i int) (sim.Duration, sim.Duration) {
	var ga, gb sim.Duration
	if j := m.posA[i]; j > 0 {
		ga = a.Times[j] - a.Times[j-1]
	}
	if k := m.posB[i]; k > 0 {
		gb = b.Times[k] - b.Times[k-1]
	}
	return ga, gb
}
