package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// TestTraceSumsAssembleMatchesCompare is the bit-identity anchor for the
// federation: collapsing a whole trace pair into one partial and
// assembling it must reproduce Compare exactly, on randomized trials and
// on degenerate shapes.
func TestTraceSumsAssembleMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 40 + rng.Intn(400)
		a := scrambledTrial("A", n, rng)
		b := scrambledTrial("B", n, rng)
		want, err := Compare(a, b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := TraceSums(a, b)
		if err != nil {
			t.Fatal(err)
		}
		assertResultEqual(t, s.Assemble(), want)

		// Field-by-field against the batch-derived oracle partial.
		oracle := sumsOf(a, b)
		if s.Common != oracle.Common || s.OnlyA != oracle.OnlyA || s.OnlyB != oracle.OnlyB ||
			s.SumAbsLat != oracle.SumAbsLat || s.SumAbsIAT != oracle.SumAbsIAT ||
			s.Within10 != oracle.Within10 || s.SpanA != oracle.SpanA || s.SpanB != oracle.SpanB {
			t.Fatalf("trial %d: TraceSums %+v != oracle %+v", trial, s, oracle)
		}
	}
}

func TestTraceSumsDegenerate(t *testing.T) {
	empty := trace.New("E", 0)
	one := scrambledTrial("A", 3, rand.New(rand.NewSource(1)))
	for i, tc := range []struct{ a, b *trace.Trace }{
		{empty, empty},
		{one, empty},
		{empty, one},
	} {
		want, err := Compare(tc.a, tc.b, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		s, err := TraceSums(tc.a, tc.b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		assertResultEqual(t, s.Assemble(), want)
	}
}

// TestTraceSumsOffsetMergeOrderFree is the federation aggregation
// theorem: per-trial partials shifted into disjoint position slots merge
// to the same assembled result regardless of merge order or tree shape —
// a hierarchical ring reduction is byte-identical to a sequential fold.
func TestTraceSumsOffsetMergeOrderFree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const trials = 9
	parts := make([]*Sums, trials)
	const stride = int64(1 << 16)
	for i := range parts {
		a := scrambledTrial("A", 80+rng.Intn(200), rng)
		b := scrambledTrial("B", 80+rng.Intn(200), rng)
		s, err := TraceSums(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Offset(int64(i) * stride); err != nil {
			t.Fatal(err)
		}
		parts[i] = s
	}

	// Sequential fold in index order: the single-site reference.
	seq := &Sums{}
	for _, p := range parts {
		seq.Merge(p)
	}
	want := seq.Assemble()

	// Pairwise tree reduction (the ring's hierarchical merge).
	tree := append([]*Sums(nil), parts...)
	for i := range tree {
		tree[i] = tree[i].Clone()
	}
	for len(tree) > 1 {
		var next []*Sums
		for i := 0; i < len(tree); i += 2 {
			if i+1 < len(tree) {
				tree[i].Merge(tree[i+1])
			}
			next = append(next, tree[i])
		}
		tree = next
	}
	assertResultEqual(t, tree[0].Assemble(), want)

	// Arbitrary permutations of the fold order.
	for round := 0; round < 5; round++ {
		perm := rng.Perm(trials)
		acc := &Sums{}
		for _, i := range perm {
			acc.Merge(parts[i])
		}
		assertResultEqual(t, acc.Assemble(), want)
	}
}

func TestSumsOffsetErrors(t *testing.T) {
	s := &Sums{Common: 1, PosA: []int32{5}, PosB: []int32{7}}
	if err := s.Offset(-1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := s.Offset(math.MaxInt32); err == nil {
		t.Fatal("overflowing offset accepted")
	}
	if err := s.Offset(10); err != nil {
		t.Fatal(err)
	}
	if s.PosA[0] != 15 || s.PosB[0] != 17 {
		t.Fatalf("offset misapplied: %+v", s)
	}
}

func TestSumsCloneIndependent(t *testing.T) {
	s := &Sums{Common: 2, PosA: []int32{1, 2}, PosB: []int32{3, 4}}
	c := s.Clone()
	c.PosA[0] = 99
	c.PosB[1] = 99
	c.Common = 7
	if s.PosA[0] != 1 || s.PosB[1] != 4 || s.Common != 2 {
		t.Fatalf("Clone aliases donor: %+v", s)
	}
}
