// Package parallel is the deterministic trial scheduler behind the
// evaluation stack: a fixed-width worker pool that fans independent,
// index-addressed jobs (environments, sweep points, B..E-vs-A
// comparisons, windows) out across goroutines while guaranteeing that
// the collected results are bit-identical to a sequential loop.
//
// Determinism comes from the job contract, not from scheduling: each job
// owns its index and writes only to its own slot (its own sim.Engine,
// its own seed, its own result cell), so the dynamic work-stealing order
// in which workers claim indices is invisible in the output. The paper's
// evaluation protocol (§7: eight environments × five trials, plus rate
// sweeps) is exactly this shape — independent seeded runs — which is
// what makes "as fast as the hardware allows" compatible with the
// bit-for-bit reproducibility every differential test in this
// repository asserts.
//
// Error semantics match a sequential loop as closely as concurrency
// allows: on failure, Do returns the error of the lowest-index failed
// job (the one a sequential loop would have hit first) and stops
// claiming new work; jobs already in flight run to completion.
//
// A nil *Pool (and a pool with one worker) degrades to an inline
// sequential loop on the caller's goroutine, so call sites can thread
// one optional *Pool through unconditionally.
package parallel

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Pool is a fixed-width deterministic work scheduler. The zero value is
// not useful; use New. Pools keep no background goroutines: workers are
// spawned per Do call and drained before it returns, so there is
// nothing to shut down and nothing to leak.
type Pool struct {
	workers int

	// Cumulative scheduling statistics across every Do call.
	tasks    atomic.Int64 // jobs completed
	busy     atomic.Int64 // summed per-job host nanoseconds
	inFlight atomic.Int64 // jobs currently executing
	queued   atomic.Int64 // jobs admitted but not yet claimed

	// Telemetry (nil-safe; set by WithObs).
	gInFlight *obs.Gauge
	gQueue    *obs.Gauge
	cTasks    *obs.Counter
	gBusy     []*obs.Gauge // per-worker busy seconds
	busyNanos []atomic.Int64
}

// New returns a pool running up to workers jobs concurrently. Values
// below 1 are clamped to 1 (sequential).
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers, busyNanos: make([]atomic.Int64, workers)}
}

// Default returns a pool sized to the host (runtime.NumCPU).
func Default() *Pool { return New(runtime.NumCPU()) }

// Workers returns the configured width; 1 for a nil pool.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// WithObs registers the scheduler's gauges on reg and returns p for
// chaining: in-flight jobs, queue depth, total jobs, and per-worker
// busy time. All updates use host time and atomics only — nothing
// touches a sim.Engine, so instrumented runs stay bit-identical.
func (p *Pool) WithObs(reg *obs.Registry) *Pool {
	if p == nil || reg == nil {
		return p
	}
	p.gInFlight = reg.Gauge("parallel_inflight_trials", "jobs currently executing on the trial scheduler")
	p.gQueue = reg.Gauge("parallel_queue_depth", "jobs admitted to the trial scheduler but not yet claimed")
	p.cTasks = reg.Counter("parallel_tasks_total", "jobs completed by the trial scheduler")
	p.gBusy = make([]*obs.Gauge, p.workers)
	for w := 0; w < p.workers; w++ {
		p.gBusy[w] = reg.Gauge("parallel_worker_busy_seconds",
			"cumulative host time each scheduler worker spent executing jobs",
			obs.L("worker", strconv.Itoa(w)))
	}
	return p
}

// Stats is a snapshot of the pool's cumulative scheduling counters.
type Stats struct {
	// Tasks is the number of jobs completed across all Do calls.
	Tasks int64
	// Busy is the summed host time spent inside jobs — an estimate of
	// the wall-clock a sequential loop would have needed, which is what
	// the end-of-run speedup line divides by.
	Busy time.Duration
}

// Stats returns the cumulative counters (zero for a nil pool).
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{Tasks: p.tasks.Load(), Busy: time.Duration(p.busy.Load())}
}

// Do runs jobs fn(0) … fn(n-1) across the pool and returns after every
// started job has finished. Jobs are claimed dynamically (work
// stealing): an idle worker takes the lowest unclaimed index, so load
// imbalance between jobs does not idle the pool.
//
// Contract for bit-identical results: fn(i) must write only to
// index-i-addressed state. On error, the remaining unclaimed jobs are
// abandoned and Do returns the lowest-index error once in-flight jobs
// drain; the caller must treat all output slots as invalid.
//
// A nil pool or a single-worker pool runs the jobs inline, in order, on
// the calling goroutine — the exact sequential loop the differential
// tests compare against.
func (p *Pool) Do(n int, fn func(i int) error) error {
	return p.DoUntil(n, nil, fn)
}

// DoUntil is Do with a cooperative stop: once stop is closed, workers
// finish the jobs they already claimed but claim no more, and DoUntil
// returns nil (a stop is a checkpoint, not a failure). Jobs that were
// never claimed simply do not run — the caller is responsible for
// knowing which jobs completed (the campaign runner journals each one).
// A nil stop channel makes DoUntil exactly Do.
func (p *Pool) DoUntil(n int, stop <-chan struct{}, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	stopped := func() bool {
		if stop == nil {
			return false
		}
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if stopped() {
				return nil
			}
			if err := p.run(0, i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	w := p.workers
	if w > n {
		w = n
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, n)
	p.queued.Add(int64(n))
	p.gQueue.SetInt(p.queued.Load())
	for wid := 0; wid < w; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			for !failed.Load() && !stopped() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				p.queued.Add(-1)
				p.gQueue.SetInt(p.queued.Load())
				if err := p.run(wid, i, fn); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}(wid)
	}
	wg.Wait()
	// Remove abandoned jobs from the queue-depth accounting.
	if claimed := int(next.Load()); claimed < n {
		p.queued.Add(-int64(n - claimed))
		p.gQueue.SetInt(p.queued.Load())
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Concurrent runs fn(0) … fn(n-1) on n goroutines that all start
// immediately and returns once every one has finished. Unlike Do, which
// claims work with at most Workers() goroutines and is therefore only
// safe for jobs that never wait on each other, Concurrent guarantees
// every job its own goroutine — which is what mutually synchronizing
// jobs (psim's domain loops, which block on each other's horizons) need
// to avoid deadlocking on a width-capped claimer. The pool's width
// still matters as telemetry and as the GOMAXPROCS-shaped sizing hint;
// it just doesn't bound concurrency here. Telemetry (busy time, task
// counts, in-flight gauge) is recorded per job exactly as in Do.
//
// A nil pool runs the jobs on bare goroutines with no telemetry.
func (p *Pool) Concurrent(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		p.run(0, 0, func(i int) error { fn(i); return nil })
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wid := 0
			if p != nil {
				wid = i % p.workers
			}
			p.run(wid, i, func(i int) error { fn(i); return nil })
		}(i)
	}
	wg.Wait()
}

// run executes one job with telemetry.
func (p *Pool) run(wid, i int, fn func(i int) error) error {
	if p == nil {
		return fn(i)
	}
	p.gInFlight.SetInt(p.inFlight.Add(1))
	start := time.Now()
	err := fn(i)
	d := time.Since(start).Nanoseconds()
	p.gInFlight.SetInt(p.inFlight.Add(-1))
	p.busy.Add(d)
	p.tasks.Add(1)
	p.cTasks.Inc()
	if wid < len(p.busyNanos) {
		total := p.busyNanos[wid].Add(d)
		if wid < len(p.gBusy) {
			p.gBusy[wid].Set(float64(total) / 1e9)
		}
	}
	return err
}
