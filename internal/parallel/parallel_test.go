package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		const n = 1000
		hits := make([]atomic.Int32, n)
		if err := p.Do(n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
		if st := p.Stats(); st.Tasks != n {
			t.Fatalf("workers=%d: stats report %d tasks", workers, st.Tasks)
		}
	}
}

func TestDoNilPoolRunsSequentially(t *testing.T) {
	var p *Pool
	var order []int
	if err := p.Do(5, func(i int) error {
		order = append(order, i) // single goroutine: no race
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool ran out of order: %v", order)
		}
	}
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d", p.Workers())
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	// Several jobs fail; the reported error must be the one a
	// sequential loop would have hit first, regardless of scheduling.
	for _, workers := range []int{1, 3, 8} {
		p := New(workers)
		err := p.Do(64, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, …
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: got %v, want job 3's error", workers, err)
		}
	}
}

func TestDoCancelsRemainingJobsOnError(t *testing.T) {
	// After a failure, unclaimed jobs must be abandoned: with 2 workers
	// and an early error, nowhere near all 10k jobs may run.
	p := New(2)
	var ran atomic.Int64
	boom := errors.New("boom")
	err := p.Do(10_000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got > 100 {
		t.Fatalf("%d jobs ran after early failure; cancellation is broken", got)
	}
}

func TestDoShutdownLeaksNoGoroutines(t *testing.T) {
	// The pool keeps no background workers: after Do returns — even an
	// erroring Do — the goroutine count returns to its baseline.
	before := runtime.NumGoroutine()
	p := New(8)
	for round := 0; round < 5; round++ {
		_ = p.Do(100, func(i int) error {
			if i == 50 {
				return errors.New("mid-run failure")
			}
			return nil
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestDoZeroAndNegativeCounts(t *testing.T) {
	p := New(4)
	if err := p.Do(0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := p.Do(-3, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestNewClampsWorkers(t *testing.T) {
	if New(0).Workers() != 1 || New(-5).Workers() != 1 {
		t.Fatal("workers not clamped to 1")
	}
	if Default().Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
}

func TestWithObsPublishesSchedulerTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(4).WithObs(reg)
	if err := p.Do(200, func(i int) error {
		time.Sleep(50 * time.Microsecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var tasks float64
	for _, fam := range reg.Snapshot() {
		for _, s := range fam.Series {
			if fam.Name == "parallel_tasks_total" && s.Value != nil {
				tasks += *s.Value
			}
		}
	}
	if tasks != 200 {
		t.Fatalf("parallel_tasks_total = %v, want 200", tasks)
	}
	if v, ok := reg.GaugeValue("parallel_queue_depth"); !ok || v != 0 {
		t.Fatalf("queue depth after drain = %v (ok=%v), want 0", v, ok)
	}
	if v, ok := reg.GaugeValue("parallel_inflight_trials"); !ok || v != 0 {
		t.Fatalf("in-flight after drain = %v (ok=%v), want 0", v, ok)
	}
	if st := p.Stats(); st.Busy <= 0 {
		t.Fatalf("busy time not accumulated: %+v", st)
	}
}

func TestStressManySmallJobsUnderRace(t *testing.T) {
	// Exercised under -race by verify.sh: hammer the claim counter.
	p := New(8)
	var sum atomic.Int64
	const n = 50_000
	if err := p.Do(n, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := int64(n) * (n - 1) / 2; sum.Load() != want {
		t.Fatalf("sum %d != %d", sum.Load(), want)
	}
}
