package parallel

import "sync"

// Runner is the long-lived counterpart of Do: a persistent executor the
// always-on consistency service schedules sessions on. Where Do fans a
// known batch of indexed jobs out and drains, a Runner accepts jobs one
// at a time for the life of a daemon, executing at most Pool-width
// concurrently, in strict admission (FIFO) order — so per-session
// concurrency stays deterministic: a session's comparison pipeline sees
// the same worker width no matter what else the fleet is doing.
//
// Jobs run through the same telemetry path as Do (per-worker busy time,
// in-flight/queue gauges, task counters), so a WithObs-instrumented
// pool exposes the service's scheduler exactly like the batch CLIs'.
type Runner struct {
	p    *Pool
	jobs chan func()
	wg   sync.WaitGroup

	mu      sync.Mutex
	stopped bool
}

// Runner spawns the pool's width of worker goroutines pulling from a
// queue of the given capacity (minimum 1). Submit blocks once the queue
// is full — backpressure, not unbounded buffering. Stop the runner with
// Drain; a pool may host at most one runner at a time (the per-worker
// busy accounting is shared with Do).
func (p *Pool) Runner(queue int) *Runner {
	if queue < 1 {
		queue = 1
	}
	r := &Runner{p: p, jobs: make(chan func(), queue)}
	w := 1
	if p != nil {
		w = p.workers
	}
	for wid := 0; wid < w; wid++ {
		r.wg.Add(1)
		go func(wid int) {
			defer r.wg.Done()
			for job := range r.jobs {
				job2 := job
				if p != nil {
					p.queued.Add(-1)
					p.gQueue.SetInt(p.queued.Load())
					_ = p.run(wid, 0, func(int) error { job2(); return nil })
				} else {
					job2()
				}
			}
		}(wid)
	}
	return r
}

// Submit enqueues fn, blocking while the queue is full. It reports
// false — without running fn — once Drain has begun: the caller decides
// what a refused job means (the service journals it for resume).
// Submits serialize on the admission lock, which is also what makes the
// send race-free against Drain's channel close.
func (r *Runner) Submit(fn func()) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return false
	}
	if r.p != nil {
		r.p.queued.Add(1)
		r.p.gQueue.SetInt(r.p.queued.Load())
	}
	r.jobs <- fn
	return true
}

// Drain stops admission and blocks until every accepted job has
// finished. Idempotent; Submit returns false from the moment Drain
// begins.
func (r *Runner) Drain() {
	r.mu.Lock()
	if !r.stopped {
		r.stopped = true
		// No sender can be mid-send: sends hold the same lock.
		close(r.jobs)
	}
	r.mu.Unlock()
	r.wg.Wait()
}
