package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestDoUntilNilStopIsDo: a nil stop channel degrades to plain Do.
func TestDoUntilNilStopIsDo(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		var ran atomic.Int64
		if err := p.DoUntil(17, nil, func(i int) error { ran.Add(1); return nil }); err != nil {
			t.Fatal(err)
		}
		if ran.Load() != 17 {
			t.Fatalf("workers=%d ran %d/17", workers, ran.Load())
		}
	}
}

// TestDoUntilStopsClaiming: once stop closes, no new jobs are claimed
// and DoUntil returns nil — a checkpoint, not a failure.
func TestDoUntilStopsClaiming(t *testing.T) {
	for _, workers := range []int{1, 3} {
		p := New(workers)
		stop := make(chan struct{})
		var ran atomic.Int64
		err := p.DoUntil(1000, stop, func(i int) error {
			if ran.Add(1) == 5 {
				close(stop)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		got := ran.Load()
		if got < 5 {
			t.Fatalf("workers=%d stopped before the closing job: %d", workers, got)
		}
		// In-flight jobs (at most one per worker) may still finish, but
		// claiming must cease promptly.
		if got > int64(5+workers) {
			t.Fatalf("workers=%d ran %d jobs after stop at 5", workers, got)
		}
	}
}

// TestDoUntilStopClosedUpfront: a pre-closed stop runs nothing.
func TestDoUntilStopClosedUpfront(t *testing.T) {
	p := New(4)
	stop := make(chan struct{})
	close(stop)
	var ran atomic.Int64
	if err := p.DoUntil(50, stop, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-stopped DoUntil ran %d jobs", ran.Load())
	}
}

// TestDoUntilErrorStillWins: a job error is still reported even with a
// stop channel armed.
func TestDoUntilErrorStillWins(t *testing.T) {
	p := New(3)
	stop := make(chan struct{})
	boom := errors.New("boom")
	err := p.DoUntil(100, stop, func(i int) error {
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
