package parallel

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestRunnerExecutesAll: every submitted job runs exactly once, across
// widths, and the pool's cumulative task counter sees them.
func TestRunnerExecutesAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		r := p.Runner(4)
		var n atomic.Int64
		const jobs = 100
		for i := 0; i < jobs; i++ {
			if !r.Submit(func() { n.Add(1) }) {
				t.Fatalf("workers=%d: submit refused before drain", workers)
			}
		}
		r.Drain()
		if n.Load() != jobs {
			t.Fatalf("workers=%d: ran %d jobs, want %d", workers, n.Load(), jobs)
		}
		if p.Stats().Tasks != jobs {
			t.Fatalf("workers=%d: pool counted %d tasks, want %d", workers, p.Stats().Tasks, jobs)
		}
	}
}

// TestRunnerConcurrencyBound: at most pool-width jobs execute at once.
func TestRunnerConcurrencyBound(t *testing.T) {
	const width = 3
	p := New(width)
	r := p.Runner(64)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 24; i++ {
		wg.Add(1)
		r.Submit(func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				pk := peak.Load()
				if c <= pk || peak.CompareAndSwap(pk, c) {
					break
				}
			}
			<-gate
			cur.Add(-1)
		})
	}
	close(gate)
	wg.Wait()
	r.Drain()
	if pk := peak.Load(); pk > width {
		t.Fatalf("peak concurrency %d exceeds pool width %d", pk, width)
	}
}

// TestRunnerDrainRefusesNewWork: Drain waits for accepted jobs, then
// Submit reports refusal without running the job; Drain is idempotent.
func TestRunnerDrainRefusesNewWork(t *testing.T) {
	p := New(2)
	r := p.Runner(2)
	var ran atomic.Bool
	r.Submit(func() { ran.Store(true) })
	r.Drain()
	if !ran.Load() {
		t.Fatal("accepted job did not run before Drain returned")
	}
	if r.Submit(func() { t.Error("refused job executed") }) {
		t.Fatal("submit accepted after drain")
	}
	r.Drain() // second drain is a no-op
}

// TestRunnerObsGauges: an instrumented pool's queue/in-flight gauges
// return to zero after drain and the task counter advances — the same
// instruments Do maintains.
func TestRunnerObsGauges(t *testing.T) {
	o := obs.New()
	p := New(2).WithObs(o.Registry())
	r := p.Runner(8)
	for i := 0; i < 10; i++ {
		r.Submit(func() {})
	}
	r.Drain()
	if v, ok := o.Registry().GaugeValue("parallel_queue_depth"); !ok || v != 0 {
		t.Fatalf("queue depth gauge = %v (ok=%v), want 0", v, ok)
	}
	if v, ok := o.Registry().GaugeValue("parallel_inflight_trials"); !ok || v != 0 {
		t.Fatalf("in-flight gauge = %v (ok=%v), want 0", v, ok)
	}
	if p.Stats().Tasks != 10 {
		t.Fatalf("tasks = %d, want 10", p.Stats().Tasks)
	}
}

// TestRunnerNilPool: a nil pool degrades to a single inline worker.
func TestRunnerNilPool(t *testing.T) {
	var p *Pool
	r := p.Runner(1)
	var n atomic.Int64
	for i := 0; i < 5; i++ {
		if !r.Submit(func() { n.Add(1) }) {
			t.Fatal("nil-pool runner refused a job")
		}
	}
	r.Drain()
	if n.Load() != 5 {
		t.Fatalf("ran %d jobs, want 5", n.Load())
	}
}
