package pcap

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateCorpus = flag.Bool("update-corpus", false,
	"rewrite the checked-in fuzz seed corpus under testdata/fuzz")

// corpusEntries builds the checked-in seed corpus for FuzzStream: every
// construction is deterministic, so the files are byte-stable and the
// guard test below can diff them. These extend the in-code f.Add seeds
// with mutations that took the fuzzer time to discover on its own —
// checked in so every plain `go test` run covers them forever.
func corpusEntries() map[string][]byte {
	tr := sampleTrace(4)
	var buf bytes.Buffer
	if err := Write(&buf, tr, 0); err != nil {
		panic(err)
	}
	healthy := buf.Bytes()

	micros := append([]byte(nil), healthy...)
	binary.LittleEndian.PutUint32(micros[0:4], MagicMicros)

	// A record header claiming 4 GiB − 16 bytes of payload.
	greedy := append([]byte(nil), healthy[:24]...)
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[8:12], 0xFFFFFFF0)
	greedy = append(greedy, rec[:]...)

	// incl_len exactly at the snap limit with no payload behind it.
	snapEdge := append([]byte(nil), healthy[:24]...)
	binary.LittleEndian.PutUint32(rec[8:12], DefaultSnapLen)
	snapEdge = append(snapEdge, rec[:]...)

	// A zero-length record followed by a healthy one: incl_len = 0 is
	// legal pcap and must not stall the incremental reader.
	zeroRec := append([]byte(nil), healthy[:24]...)
	var zrec [16]byte
	zeroRec = append(zeroRec, zrec[:]...)
	zeroRec = append(zeroRec, healthy[24:]...)

	// Big-endian magic: not a format we write, but one real captures
	// use; the parser must reject or parse it without panicking.
	swapped := append([]byte(nil), healthy...)
	swapped[0], swapped[1], swapped[2], swapped[3] = swapped[3], swapped[2], swapped[1], swapped[0]

	// incl_len one byte larger than the actual remaining payload: the
	// classic off-by-one truncation.
	offByOne := append([]byte(nil), healthy...)
	binary.LittleEndian.PutUint32(offByOne[24+8:24+12],
		binary.LittleEndian.Uint32(offByOne[24+8:24+12])+1)

	return map[string][]byte{
		"healthy":          fuzzV1(healthy),
		"micros-magic":     fuzzV1(micros),
		"header-only":      fuzzV1(healthy[:24]),
		"mid-record":       fuzzV1(healthy[:24+7]),
		"mid-final-body":   fuzzV1(healthy[:len(healthy)-3]),
		"greedy-incl-len":  fuzzV1(greedy),
		"snaplen-edge":     fuzzV1(snapEdge),
		"zero-len-record":  fuzzV1(zeroRec),
		"big-endian-magic": fuzzV1(swapped),
		"incl-len-off-by1": fuzzV1(offByOne),
	}
}

// fuzzV1 encodes byte-slice arguments in the native Go fuzz corpus file
// format ("go test fuzz v1" + one quoted literal per argument).
func fuzzV1(args ...[]byte) []byte {
	var b bytes.Buffer
	b.WriteString("go test fuzz v1\n")
	for _, a := range args {
		fmt.Fprintf(&b, "[]byte(%q)\n", a)
	}
	return b.Bytes()
}

// TestCheckedInCorpus keeps testdata/fuzz/FuzzStream in lockstep with
// corpusEntries: with -update-corpus it rewrites the files, without it
// the test fails if any entry is missing, stale, or malformed. The
// corpus itself is executed by the Go toolchain as FuzzStream's seed
// set on every plain `go test` run.
func TestCheckedInCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzStream")
	want := corpusEntries()
	if *updateCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range want {
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for name, data := range want {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("corpus entry missing (run go test -update-corpus): %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("corpus entry %s is stale (run go test -update-corpus)", name)
		}
		if !strings.HasPrefix(string(got), "go test fuzz v1\n") {
			t.Fatalf("corpus entry %s is not in go fuzz v1 format", name)
		}
	}
}
