// Package pcap reads and writes libpcap capture files, the artifact
// format the paper's analysis pipeline consumes. Both the classic
// microsecond format and the nanosecond-timestamp variant are supported;
// traces are written in the nanosecond format since the consistency
// metrics operate at nanosecond resolution.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/sim"
	"repro/internal/trace"
)

// File-format constants.
const (
	// MagicNanos marks a little-endian pcap file with nanosecond
	// timestamp resolution.
	MagicNanos = 0xA1B23C4D
	// MagicMicros marks a little-endian pcap file with microsecond
	// resolution.
	MagicMicros = 0xA1B2C3D4
	// MagicNanosSwapped and MagicMicrosSwapped are the same magics as
	// read from a capture written on a big-endian host: every header
	// and record field in such a file is byte-swapped relative to ours,
	// and the reader decodes them with big-endian order.
	MagicNanosSwapped  = 0x4D3CB2A1
	MagicMicrosSwapped = 0xD4C3B2A1
	// LinkTypeEthernet is DLT_EN10MB.
	LinkTypeEthernet = 1

	versionMajor = 2
	versionMinor = 4
)

// DefaultSnapLen captures full frames; Choir's analysis needs the
// trailing 16-byte tag, so truncating captures below the frame size
// degrades packets to noise on re-read.
const DefaultSnapLen = 65535

// Write serializes the trace to w in nanosecond pcap format. Frames
// longer than snapLen are truncated in the file (incl_len < orig_len),
// exactly as a real capture would.
func Write(w io.Writer, tr *trace.Trace, snapLen int) error {
	if snapLen <= 0 {
		snapLen = DefaultSnapLen
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MagicNanos)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone, sigfigs left zero.
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(snapLen))
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}

	var rec [16]byte
	for i, p := range tr.Packets {
		frame, err := p.Frame()
		if err != nil {
			return fmt.Errorf("pcap: packet %d: %w", i, err)
		}
		origLen := len(frame)
		inclLen := origLen
		if inclLen > snapLen {
			inclLen = snapLen
		}
		ts := tr.Times[i]
		binary.LittleEndian.PutUint32(rec[0:4], uint32(ts/sim.Second))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(ts%sim.Second))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(inclLen))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(origLen))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		if _, err := bw.Write(frame[:inclLen]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the trace to a pcap file at path.
func WriteFile(path string, tr *trace.Trace, snapLen int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, tr, snapLen); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a pcap stream back into a trace. Unparseable or truncated
// frames are kept as noise packets so counts still line up with the
// original capture.
//
// When the stream ends mid-record — an in-progress or cut-off capture —
// Read returns the packets parsed so far *alongside* an error wrapping
// ErrTruncated, so streaming callers can keep the prefix while batch
// callers still see the failure.
func Read(r io.Reader, name string) (*trace.Trace, error) {
	s, err := NewStream(r, name)
	if err != nil {
		return nil, err
	}
	tr := trace.New(name, 1024)
	for {
		p, ts, err := s.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return tr, nil
			}
			return tr, err
		}
		tr.Append(p, ts)
	}
}

// ReadFile reads a pcap file at path into a trace named after the file.
func ReadFile(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, path)
}
