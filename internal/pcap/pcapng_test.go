package pcap

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"testing"

	"repro/internal/packet"
)

func TestNGRoundTrip(t *testing.T) {
	tr := sampleTrace(100)
	var buf bytes.Buffer
	if err := WriteNG(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNG(&buf, "ng")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("read %d packets, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Packets {
		if got.Times[i] != tr.Times[i] {
			t.Fatalf("packet %d: time %v, want %v (ns resolution lost?)", i, got.Times[i], tr.Times[i])
		}
		if got.Packets[i].Tag != tr.Packets[i].Tag {
			t.Fatalf("packet %d: tag mismatch", i)
		}
	}
}

func TestNGFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.pcapng")
	tr := sampleTrace(20)
	if err := WriteNGFile(path, tr, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNGFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 20 {
		t.Fatalf("read %d", got.Len())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNGTruncatedFramesBecomeNoise(t *testing.T) {
	tr := sampleTrace(5)
	var buf bytes.Buffer
	if err := WriteNG(&buf, tr, 64); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNG(&buf, "trunc")
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range got.Packets {
		if p.Kind == packet.KindData {
			t.Fatalf("packet %d: truncated frame parsed as data", i)
		}
		if p.FrameLen != 256 {
			t.Fatalf("packet %d: orig len lost: %d", i, p.FrameLen)
		}
	}
}

func TestNGSkipsUnknownBlocks(t *testing.T) {
	tr := sampleTrace(3)
	var buf bytes.Buffer
	if err := WriteNG(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Inject an unknown block (type 0x0BAD) right after the SHB+IDB.
	// SHB total = 12+16=28; IDB total = 12+20=32.
	insertAt := 28 + 32
	unknown := make([]byte, 16)
	binary.LittleEndian.PutUint32(unknown[0:4], 0x0BAD)
	binary.LittleEndian.PutUint32(unknown[4:8], 16)
	binary.LittleEndian.PutUint32(unknown[12:16], 16)
	mut := append(append(append([]byte{}, raw[:insertAt]...), unknown...), raw[insertAt:]...)
	got, err := ReadNG(bytes.NewReader(mut), "unk")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("read %d packets through unknown block", got.Len())
	}
}

func TestNGMicrosecondInterface(t *testing.T) {
	// An IDB without if_tsresol defaults to microseconds; timestamps
	// must scale up to ns.
	tr := sampleTrace(2)
	var buf bytes.Buffer
	if err := WriteNG(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Rewrite the IDB to have no options: replace block with a minimal
	// one of the same length? Simpler: flip the tsresol value to 6.
	// The IDB starts at offset 28; option value byte sits at
	// 28+8(header)+8(idb fixed)+4(opt hdr) = 48.
	if raw[48] != 9 {
		t.Fatalf("test assumption broken: tsresol byte = %d", raw[48])
	}
	raw[48] = 6
	// Scale the stored timestamps down from ns to µs: EPB ts fields.
	// Rather than hand-editing, verify semantics: reading must multiply
	// by 1000.
	got, err := ReadNG(bytes.NewReader(raw), "us")
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Times {
		if got.Times[i] != tr.Times[i]*1000 {
			t.Fatalf("time %v, want %v×1000", got.Times[i], tr.Times[i])
		}
	}
}

func TestNGRejectsGarbage(t *testing.T) {
	if _, err := ReadNG(bytes.NewReader(nil), "e"); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := ReadNG(bytes.NewReader(make([]byte, 64)), "z"); err == nil {
		t.Fatal("zero garbage accepted")
	}
	// Classic pcap magic is not pcapng.
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace(1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadNG(&buf, "classic"); err == nil {
		t.Fatal("classic pcap accepted by pcapng reader")
	}
}

func TestNGTrailerMismatchRejected(t *testing.T) {
	tr := sampleTrace(1)
	var buf bytes.Buffer
	if err := WriteNG(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // corrupt the last trailing length
	if _, err := ReadNG(bytes.NewReader(raw), "bad"); err == nil {
		t.Fatal("corrupted trailer accepted")
	}
}

func TestReadAnyDispatch(t *testing.T) {
	tr := sampleTrace(4)
	var classic, ng bytes.Buffer
	if err := Write(&classic, tr, 0); err != nil {
		t.Fatal(err)
	}
	if err := WriteNG(&ng, tr, 0); err != nil {
		t.Fatal(err)
	}
	for _, buf := range []*bytes.Buffer{&classic, &ng} {
		got, err := ReadAny(bytes.NewReader(buf.Bytes()), "any")
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 4 {
			t.Fatalf("ReadAny read %d packets", got.Len())
		}
	}
	if _, err := ReadAny(bytes.NewReader([]byte{9, 9, 9, 9, 9}), "bad"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadAny(bytes.NewReader(nil), "empty"); err == nil {
		t.Fatal("empty accepted")
	}
}
