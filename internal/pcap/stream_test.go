package pcap

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/trace"
)

// TestStreamMatchesRead asserts the incremental reader decodes the exact
// record sequence of the batch reader.
func TestStreamMatchesRead(t *testing.T) {
	tr := sampleTrace(250)
	var buf bytes.Buffer
	if err := Write(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	batch, err := Read(bytes.NewReader(raw), "batch")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(bytes.NewReader(raw), "stream")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		p, ts, err := s.Next()
		if errors.Is(err, io.EOF) {
			if i != batch.Len() {
				t.Fatalf("stream ended after %d records, batch read %d", i, batch.Len())
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ts != batch.Times[i] || p.Tag != batch.Packets[i].Tag || p.Kind != batch.Packets[i].Kind {
			t.Fatalf("record %d: stream (%v,%v,%v) != batch (%v,%v,%v)",
				i, p.Tag, p.Kind, ts, batch.Packets[i].Tag, batch.Packets[i].Kind, batch.Times[i])
		}
	}
	if s.Count() != 250 {
		t.Fatalf("Count() = %d, want 250", s.Count())
	}
}

// TestReadKeepsPrefixOnTruncation is the regression test for the
// streaming-robustness contract: a capture chopped mid-record yields the
// packets parsed so far alongside an ErrTruncated error.
func TestReadKeepsPrefixOnTruncation(t *testing.T) {
	tr := sampleTrace(10)
	var buf bytes.Buffer
	if err := Write(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	bodyLen := frameBytes(t, tr) // on-disk body length of one record

	cases := []struct {
		name string
		cut  int // bytes to drop from the tail
		want int // packets expected in the partial trace
	}{
		{"mid final body", 10, 9},
		{"mid final header", bodyLen + 5, 9},
		{"into penultimate body", 16 + bodyLen + 10, 8},
		{"exact boundary", 0, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Read(bytes.NewReader(raw[:len(raw)-tc.cut]), "part")
			if tc.cut == 0 {
				if err != nil {
					t.Fatal(err)
				}
			} else {
				if !errors.Is(err, ErrTruncated) {
					t.Fatalf("error %v does not wrap ErrTruncated", err)
				}
				if got == nil {
					t.Fatal("partial trace not returned alongside the error")
				}
			}
			if got.Len() != tc.want {
				t.Fatalf("kept %d packets, want %d", got.Len(), tc.want)
			}
			for i := 0; i < got.Len(); i++ {
				if got.Packets[i].Tag != tr.Packets[i].Tag {
					t.Fatalf("packet %d: tag %v, want %v", i, got.Packets[i].Tag, tr.Packets[i].Tag)
				}
			}
		})
	}
}

// frameBytes returns the on-disk body length of one sample record.
func frameBytes(t *testing.T, tr *trace.Trace) int {
	t.Helper()
	f, err := tr.Packets[len(tr.Packets)-1].Frame()
	if err != nil {
		t.Fatal(err)
	}
	return len(f)
}

// TestStreamTruncatedHeaderSticky checks the error is terminal and
// repeatable.
func TestStreamTruncatedHeaderSticky(t *testing.T) {
	tr := sampleTrace(2)
	var buf bytes.Buffer
	if err := Write(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-3]
	s, err := NewStream(bytes.NewReader(raw), "sticky")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	var lastErr error
	for {
		_, _, err := s.Next()
		if err != nil {
			lastErr = err
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("decoded %d records before truncation, want 1", n)
	}
	if !errors.Is(lastErr, ErrTruncated) {
		t.Fatalf("error %v does not wrap ErrTruncated", lastErr)
	}
	if _, _, err := s.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("sticky error lost: %v", err)
	}
}

// TestStreamDiag pins the truncation diagnostics: a cut mid-body (and
// mid-header) reports how many torn bytes were consumed and why, while a
// clean EOF reports nothing — the facts upload paths surface to clients
// instead of silently scoring the prefix.
func TestStreamDiag(t *testing.T) {
	tr := sampleTrace(10)
	var buf bytes.Buffer
	if err := Write(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	bodyLen := frameBytes(t, tr)
	recBytes := int64(16 + bodyLen)

	drain := func(s *Stream) error {
		for {
			if _, _, err := s.Next(); err != nil {
				return err
			}
		}
	}

	t.Run("clean EOF", func(t *testing.T) {
		s, err := NewStream(bytes.NewReader(raw), "clean")
		if err != nil {
			t.Fatal(err)
		}
		if err := drain(s); !errors.Is(err, io.EOF) {
			t.Fatal(err)
		}
		d := s.Diag()
		want := Diag{Records: 10, Bytes: 24 + 10*recBytes}
		if d != want {
			t.Fatalf("Diag = %+v, want %+v", d, want)
		}
	})
	t.Run("torn body", func(t *testing.T) {
		s, err := NewStream(bytes.NewReader(raw[:len(raw)-10]), "torn")
		if err != nil {
			t.Fatal(err)
		}
		if err := drain(s); !errors.Is(err, ErrTruncated) {
			t.Fatal(err)
		}
		d := s.Diag()
		if d.Records != 9 || d.Bytes != 24+9*recBytes {
			t.Fatalf("Diag = %+v", d)
		}
		if d.TornBytes != recBytes-10 {
			t.Fatalf("TornBytes = %d, want %d", d.TornBytes, recBytes-10)
		}
		if !strings.Contains(d.Reason, "torn record body") {
			t.Fatalf("Reason = %q", d.Reason)
		}
	})
	t.Run("torn header", func(t *testing.T) {
		s, err := NewStream(bytes.NewReader(raw[:len(raw)-bodyLen-9]), "torn")
		if err != nil {
			t.Fatal(err)
		}
		if err := drain(s); !errors.Is(err, ErrTruncated) {
			t.Fatal(err)
		}
		d := s.Diag()
		if d.Records != 9 || d.TornBytes != 7 || !strings.Contains(d.Reason, "torn record header") {
			t.Fatalf("Diag = %+v", d)
		}
	})
}

// TestStreamLimit: the configurable upload-size guard refuses the record
// that would cross the budget, before reading its body, with a sticky
// error wrapping ErrLimit; a limit covering the whole capture is
// invisible.
func TestStreamLimit(t *testing.T) {
	tr := sampleTrace(10)
	var buf bytes.Buffer
	if err := Write(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	recBytes := int64(16 + frameBytes(t, tr))

	// Budget for exactly 4 records (plus the 24-byte global header).
	s, err := NewStream(bytes.NewReader(raw), "lim")
	if err != nil {
		t.Fatal(err)
	}
	s.SetLimit(24 + 4*recBytes)
	n := 0
	var lastErr error
	for {
		if _, _, lastErr = s.Next(); lastErr != nil {
			break
		}
		n++
	}
	if n != 4 {
		t.Fatalf("decoded %d records under limit, want 4", n)
	}
	if !errors.Is(lastErr, ErrLimit) {
		t.Fatalf("error %v does not wrap ErrLimit", lastErr)
	}
	if _, _, err := s.Next(); !errors.Is(err, ErrLimit) {
		t.Fatalf("limit error not sticky: %v", err)
	}
	if d := s.Diag(); !strings.Contains(d.Reason, "size limit exceeded") || d.Records != 4 {
		t.Fatalf("Diag = %+v", d)
	}

	// Exact-fit limit: the whole capture reads cleanly.
	s2, err := NewStream(bytes.NewReader(raw), "fit")
	if err != nil {
		t.Fatal(err)
	}
	s2.SetLimit(int64(len(raw)))
	n = 0
	for {
		if _, _, err := s2.Next(); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatal(err)
			}
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("decoded %d records at exact-fit limit, want 10", n)
	}
}

// TestStreamTruncatedGlobalHeader distinguishes a short global header.
func TestStreamTruncatedGlobalHeader(t *testing.T) {
	if _, err := NewStream(bytes.NewReader([]byte{0x4d, 0x3c}), "hdr"); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short global header: %v, want ErrTruncated wrap", err)
	}
}

// TestOpenStream exercises the file-backed constructor.
func TestOpenStream(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.pcap")
	tr := sampleTrace(7)
	if err := WriteFile(path, tr, 0); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStream(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := 0
	for {
		p, _, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if p.Kind != packet.KindData {
			t.Fatalf("record %d: kind %v", n, p.Kind)
		}
		n++
	}
	if n != 7 {
		t.Fatalf("read %d records, want 7", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
}
