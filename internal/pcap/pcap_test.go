package pcap

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

func sampleTrace(n int) *trace.Trace {
	tr := trace.New("sample", n)
	for i := 0; i < n; i++ {
		p := &packet.Packet{
			Tag:      packet.Tag{Replayer: 1, Stream: 0, Seq: uint64(i)},
			Kind:     packet.KindData,
			FrameLen: 256,
			Flow: packet.FiveTuple{
				Src: packet.IPForNode(1), Dst: packet.IPForNode(2),
				SrcPort: 7000, DstPort: 7001, Proto: packet.ProtoUDP,
			},
		}
		tr.Append(p, sim.Time(i)*284+sim.Second) // cross the 1s boundary
	}
	return tr
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace(100)
	var buf bytes.Buffer
	if err := Write(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, "sample")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("read %d packets, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Packets {
		if got.Times[i] != tr.Times[i] {
			t.Fatalf("packet %d: time %v, want %v", i, got.Times[i], tr.Times[i])
		}
		if got.Packets[i].Tag != tr.Packets[i].Tag {
			t.Fatalf("packet %d: tag %v, want %v", i, got.Packets[i].Tag, tr.Packets[i].Tag)
		}
		if got.Packets[i].FrameLen != tr.Packets[i].FrameLen {
			t.Fatalf("packet %d: len %d, want %d", i, got.Packets[i].FrameLen, tr.Packets[i].FrameLen)
		}
		if got.Packets[i].Kind != packet.KindData {
			t.Fatalf("packet %d: kind %v", i, got.Packets[i].Kind)
		}
	}
}

func TestNanosecondPrecision(t *testing.T) {
	tr := trace.New("ns", 1)
	p := &packet.Packet{
		Tag: packet.Tag{Seq: 1}, Kind: packet.KindData, FrameLen: 128,
		Flow: packet.FiveTuple{Src: packet.IPForNode(1), Dst: packet.IPForNode(2), Proto: packet.ProtoUDP},
	}
	tr.Append(p, 1234567891) // 1.234567891 s: needs ns resolution
	var buf bytes.Buffer
	if err := Write(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, "ns")
	if err != nil {
		t.Fatal(err)
	}
	if got.Times[0] != 1234567891 {
		t.Fatalf("timestamp %v lost nanosecond precision", got.Times[0])
	}
}

func TestTruncatedFramesBecomeNoise(t *testing.T) {
	tr := sampleTrace(5)
	var buf bytes.Buffer
	if err := Write(&buf, tr, 64); err != nil { // below frame size
		t.Fatal(err)
	}
	got, err := Read(&buf, "trunc")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 {
		t.Fatalf("read %d packets, want 5", got.Len())
	}
	for i, p := range got.Packets {
		if p.Kind == packet.KindData {
			t.Fatalf("packet %d: truncated frame still parsed as data", i)
		}
		if p.FrameLen != 256 {
			t.Fatalf("packet %d: orig_len not preserved: %d", i, p.FrameLen)
		}
	}
}

func TestMicrosecondFormatAccepted(t *testing.T) {
	tr := sampleTrace(3)
	var buf bytes.Buffer
	if err := Write(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Rewrite magic to microseconds and scale each timestamp's sub-second
	// field down by 1000.
	binary.LittleEndian.PutUint32(raw[0:4], MagicMicros)
	off := 24
	for i := 0; i < 3; i++ {
		sub := binary.LittleEndian.Uint32(raw[off+4 : off+8])
		binary.LittleEndian.PutUint32(raw[off+4:off+8], sub/1000)
		incl := binary.LittleEndian.Uint32(raw[off+8 : off+12])
		off += 16 + int(incl)
	}
	got, err := Read(bytes.NewReader(raw), "us")
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Times {
		wantApprox := tr.Times[i] / 1000 * 1000
		if got.Times[i] != wantApprox {
			t.Fatalf("packet %d: time %v, want %v", i, got.Times[i], wantApprox)
		}
	}
}

func TestRejectBadMagic(t *testing.T) {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint32(buf[0:4], 0xDEADBEEF)
	if _, err := Read(bytes.NewReader(buf), "bad"); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRejectShortHeader(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3}), "short"); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestRejectBadLinkType(t *testing.T) {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint32(buf[0:4], MagicNanos)
	binary.LittleEndian.PutUint32(buf[20:24], 101) // DLT_RAW
	if _, err := Read(bytes.NewReader(buf), "lt"); err == nil {
		t.Fatal("bad link type accepted")
	}
}

func TestTruncatedBodyErrors(t *testing.T) {
	tr := sampleTrace(1)
	var buf bytes.Buffer
	if err := Write(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-10] // chop mid-frame
	if _, err := Read(bytes.NewReader(raw), "chopped"); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, trace.New("e", 0), 0); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, "e")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty round trip has %d packets", got.Len())
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.pcap")
	tr := sampleTrace(10)
	if err := WriteFile(path, tr, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 {
		t.Fatalf("file round trip read %d packets", got.Len())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}
