package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzStream throws arbitrary and mutated byte streams at the record
// parser that pcap.Stream (and through it, the streaming consistency
// engine) faces on live, partial or adversarial captures. The invariants:
// no panic, no unbounded allocation, the batch reader and the incremental
// reader agree record-for-record, and a truncation error always leaves
// the already-parsed prefix intact.
func FuzzStream(f *testing.F) {
	// Seed corpus: a healthy capture, a microsecond capture, truncations
	// at every interesting boundary, and hostile length fields.
	tr := sampleTrace(4)
	var buf bytes.Buffer
	if err := Write(&buf, tr, 0); err != nil {
		f.Fatal(err)
	}
	healthy := buf.Bytes()
	f.Add(healthy)
	f.Add(healthy[:24])                   // header only
	f.Add(healthy[:24+7])                 // mid record header
	f.Add(healthy[:len(healthy)-3])       // mid final body
	f.Add([]byte{})                       // empty
	f.Add([]byte{0x4d, 0x3c, 0xb2, 0xa1}) // magic only

	micros := append([]byte(nil), healthy...)
	binary.LittleEndian.PutUint32(micros[0:4], MagicMicros)
	f.Add(micros)

	// incl_len much larger than the remaining stream: must error, not
	// allocate 4 GiB.
	hostile := append([]byte(nil), healthy[:24]...)
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[8:12], 0xFFFFFFF0)
	hostile = append(hostile, rec[:]...)
	f.Add(hostile)

	// incl_len inside the snap limit but beyond the stream.
	hostile2 := append([]byte(nil), healthy[:24]...)
	binary.LittleEndian.PutUint32(rec[8:12], DefaultSnapLen)
	hostile2 = append(hostile2, rec[:]...)
	f.Add(hostile2)

	f.Fuzz(func(t *testing.T, data []byte) {
		batch, batchErr := Read(bytes.NewReader(data), "fuzz")

		s, err := NewStream(bytes.NewReader(data), "fuzz")
		if err != nil {
			if batchErr == nil {
				t.Fatalf("stream rejected header (%v) but batch accepted", err)
			}
			return
		}
		n := 0
		var streamErr error
		for {
			p, ts, err := s.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					streamErr = err
				}
				break
			}
			if p == nil {
				t.Fatal("nil packet without error")
			}
			if batch != nil && n < batch.Len() {
				if ts != batch.Times[n] || p.Tag != batch.Packets[n].Tag {
					t.Fatalf("record %d: stream/batch disagree", n)
				}
			}
			n++
			if n > len(data) { // each record consumes ≥16 bytes; this cannot happen
				t.Fatalf("decoded %d records from %d bytes", n, len(data))
			}
		}

		// Batch and stream must agree on count and error class.
		if batch != nil && batch.Len() != n {
			t.Fatalf("batch parsed %d records, stream %d", batch.Len(), n)
		}
		if (batchErr == nil) != (streamErr == nil) {
			t.Fatalf("batch err %v, stream err %v", batchErr, streamErr)
		}
		if errors.Is(batchErr, ErrTruncated) && batch == nil {
			t.Fatal("truncation did not preserve the parsed prefix")
		}
	})
}
