package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/packet"
	"repro/internal/sim"
)

// ErrTruncated marks a capture that ends mid-record — the normal state of
// an in-progress capture file (the writer got ahead of a flush, or the
// capture box died). Callers streaming over live files typically treat it
// as a soft end-of-input; batch callers surface it.
var ErrTruncated = errors.New("pcap: truncated record")

// Stream is an incremental pcap reader: one record per Next call, no
// whole-trace materialization. It is the file-backed Source of the
// streaming consistency engine (internal/stream), and the batch Read is
// built on top of it, so both paths share one record parser.
type Stream struct {
	br      *bufio.Reader
	closer  io.Closer
	name    string
	bo      binary.ByteOrder
	tsScale sim.Duration
	snapLen uint32
	count   int
	err     error // sticky terminal error (incl. io.EOF)
}

// maxSnapLen caps the snaplen a foreign header can declare: record
// validation (and therefore per-record allocation) never trusts more
// than this, so a corrupt header cannot ask Next to allocate gigabytes.
// Real tools write snaplens up to a few hundred KiB; 16 MiB is far
// beyond any of them.
const maxSnapLen = 1 << 24

// NewStream parses the global pcap header from r and returns an iterator
// over its records. Nanosecond and microsecond captures are accepted in
// either byte order: files written on big-endian hosts carry the
// byte-swapped magics, and their headers and record fields are decoded
// with the detected order. Record bodies (the frames) are byte streams
// and need no swapping.
func NewStream(r io.Reader, name string) (*Stream, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("pcap: reading global header: %w: %w", ErrTruncated, err)
		}
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	var bo binary.ByteOrder = binary.LittleEndian
	var tsScale sim.Duration
	switch magic {
	case MagicNanos:
		tsScale = 1
	case MagicMicros:
		tsScale = sim.Microsecond
	case MagicNanosSwapped:
		bo, tsScale = binary.BigEndian, 1
	case MagicMicrosSwapped:
		bo, tsScale = binary.BigEndian, sim.Microsecond
	default:
		return nil, fmt.Errorf("pcap: unsupported magic %#08x", magic)
	}
	if lt := bo.Uint32(hdr[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	// Honor the writer's declared snaplen when validating records: a
	// capture written at a larger snaplen than our default is a valid
	// foreign artifact, not corruption. Zero (written by some tools for
	// "maximum") and implausibly huge values fall back to the cap.
	snap := bo.Uint32(hdr[16:20])
	if snap == 0 || snap > maxSnapLen {
		snap = maxSnapLen
	}
	return &Stream{br: br, name: name, bo: bo, tsScale: tsScale, snapLen: snap}, nil
}

// OpenStream opens a pcap file for incremental reading. Close the stream
// to release the file handle.
func OpenStream(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := NewStream(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// Name returns the stream's trial name.
func (s *Stream) Name() string { return s.name }

// Count returns how many records have been decoded so far.
func (s *Stream) Count() int { return s.count }

// Close releases the underlying file when the stream was opened with
// OpenStream; otherwise it is a no-op.
func (s *Stream) Close() error {
	if s.closer != nil {
		c := s.closer
		s.closer = nil
		return c.Close()
	}
	return nil
}

// Next decodes one record. It returns io.EOF at a clean record boundary
// and an error wrapping ErrTruncated when the stream ends mid-record.
// Unparseable or snap-truncated frames are returned as noise packets so
// counts line up with the capture, exactly like the batch Read.
func (s *Stream) Next() (*packet.Packet, sim.Time, error) {
	if s.err != nil {
		return nil, 0, s.err
	}
	var rec [16]byte
	if _, err := io.ReadFull(s.br, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			s.err = io.EOF
		} else if errors.Is(err, io.ErrUnexpectedEOF) {
			s.err = fmt.Errorf("pcap: record %d header: %w: %w", s.count, ErrTruncated, err)
		} else {
			s.err = fmt.Errorf("pcap: record %d header: %w", s.count, err)
		}
		return nil, 0, s.err
	}
	sec := s.bo.Uint32(rec[0:4])
	sub := s.bo.Uint32(rec[4:8])
	inclLen := s.bo.Uint32(rec[8:12])
	origLen := s.bo.Uint32(rec[12:16])
	if inclLen > s.snapLen {
		s.err = fmt.Errorf("pcap: record %d: incl_len %d exceeds snaplen %d", s.count, inclLen, s.snapLen)
		return nil, 0, s.err
	}
	buf := make([]byte, inclLen)
	if _, err := io.ReadFull(s.br, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			s.err = fmt.Errorf("pcap: record %d body: %w: %w", s.count, ErrTruncated, err)
		} else {
			s.err = fmt.Errorf("pcap: record %d body: %w", s.count, err)
		}
		return nil, 0, s.err
	}
	ts := sim.Time(sec)*sim.Second + sim.Time(sub)*s.tsScale
	p, err := packet.ParseFrame(buf)
	if err != nil || inclLen < origLen {
		// Truncated or foreign frame: keep as noise.
		p = &packet.Packet{Kind: packet.KindNoise, FrameLen: int(origLen) + packet.FCSLen}
	} else {
		p.FrameLen = int(origLen) + packet.FCSLen
	}
	s.count++
	return p, ts, nil
}
