package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/packet"
	"repro/internal/sim"
)

// ErrTruncated marks a capture that ends mid-record — the normal state of
// an in-progress capture file (the writer got ahead of a flush, or the
// capture box died). Callers streaming over live files typically treat it
// as a soft end-of-input; batch callers surface it.
var ErrTruncated = errors.New("pcap: truncated record")

// Stream is an incremental pcap reader: one record per Next call, no
// whole-trace materialization. It is the file-backed Source of the
// streaming consistency engine (internal/stream), and the batch Read is
// built on top of it, so both paths share one record parser.
type Stream struct {
	br      *bufio.Reader
	closer  io.Closer
	name    string
	tsScale sim.Duration
	count   int
	err     error // sticky terminal error (incl. io.EOF)
}

// NewStream parses the global pcap header from r and returns an iterator
// over its records. Both nanosecond and microsecond little-endian
// captures are accepted.
func NewStream(r io.Reader, name string) (*Stream, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("pcap: reading global header: %w: %w", ErrTruncated, err)
		}
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	var tsScale sim.Duration
	switch magic {
	case MagicNanos:
		tsScale = 1
	case MagicMicros:
		tsScale = sim.Microsecond
	default:
		return nil, fmt.Errorf("pcap: unsupported magic %#08x", magic)
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Stream{br: br, name: name, tsScale: tsScale}, nil
}

// OpenStream opens a pcap file for incremental reading. Close the stream
// to release the file handle.
func OpenStream(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := NewStream(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// Name returns the stream's trial name.
func (s *Stream) Name() string { return s.name }

// Count returns how many records have been decoded so far.
func (s *Stream) Count() int { return s.count }

// Close releases the underlying file when the stream was opened with
// OpenStream; otherwise it is a no-op.
func (s *Stream) Close() error {
	if s.closer != nil {
		c := s.closer
		s.closer = nil
		return c.Close()
	}
	return nil
}

// Next decodes one record. It returns io.EOF at a clean record boundary
// and an error wrapping ErrTruncated when the stream ends mid-record.
// Unparseable or snap-truncated frames are returned as noise packets so
// counts line up with the capture, exactly like the batch Read.
func (s *Stream) Next() (*packet.Packet, sim.Time, error) {
	if s.err != nil {
		return nil, 0, s.err
	}
	var rec [16]byte
	if _, err := io.ReadFull(s.br, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			s.err = io.EOF
		} else if errors.Is(err, io.ErrUnexpectedEOF) {
			s.err = fmt.Errorf("pcap: record %d header: %w: %w", s.count, ErrTruncated, err)
		} else {
			s.err = fmt.Errorf("pcap: record %d header: %w", s.count, err)
		}
		return nil, 0, s.err
	}
	sec := binary.LittleEndian.Uint32(rec[0:4])
	sub := binary.LittleEndian.Uint32(rec[4:8])
	inclLen := binary.LittleEndian.Uint32(rec[8:12])
	origLen := binary.LittleEndian.Uint32(rec[12:16])
	if inclLen > DefaultSnapLen {
		s.err = fmt.Errorf("pcap: record %d: implausible incl_len %d", s.count, inclLen)
		return nil, 0, s.err
	}
	buf := make([]byte, inclLen)
	if _, err := io.ReadFull(s.br, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			s.err = fmt.Errorf("pcap: record %d body: %w: %w", s.count, ErrTruncated, err)
		} else {
			s.err = fmt.Errorf("pcap: record %d body: %w", s.count, err)
		}
		return nil, 0, s.err
	}
	ts := sim.Time(sec)*sim.Second + sim.Time(sub)*s.tsScale
	p, err := packet.ParseFrame(buf)
	if err != nil || inclLen < origLen {
		// Truncated or foreign frame: keep as noise.
		p = &packet.Packet{Kind: packet.KindNoise, FrameLen: int(origLen) + packet.FCSLen}
	} else {
		p.FrameLen = int(origLen) + packet.FCSLen
	}
	s.count++
	return p, ts, nil
}
