package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/packet"
	"repro/internal/sim"
)

// ErrTruncated marks a capture that ends mid-record — the normal state of
// an in-progress capture file (the writer got ahead of a flush, or the
// capture box died). Callers streaming over live files typically treat it
// as a soft end-of-input; batch callers surface it.
var ErrTruncated = errors.New("pcap: truncated record")

// ErrLimit marks a stream that hit its configured byte budget (SetLimit).
// Upload paths use it to refuse captures larger than what admission
// control reserved, without buffering the oversized remainder.
var ErrLimit = errors.New("pcap: stream exceeds size limit")

// Stream is an incremental pcap reader: one record per Next call, no
// whole-trace materialization. It is the file-backed Source of the
// streaming consistency engine (internal/stream), and the batch Read is
// built on top of it, so both paths share one record parser.
type Stream struct {
	br      *bufio.Reader
	closer  io.Closer
	name    string
	bo      binary.ByteOrder
	tsScale sim.Duration
	snapLen uint32
	count   int
	err     error // sticky terminal error (incl. io.EOF)

	bytes     int64 // bytes of well-formed input consumed (header + whole records)
	limit     int64 // 0 = unlimited; checked against bytes before each record body
	tornBytes int64 // bytes of the torn final record consumed before the cut
	reason    string
}

// Diag reports how a stream ended: how much well-formed input was
// consumed, how many bytes of a torn final record were read and then
// discarded, and a one-line reason when the stream stopped for anything
// other than a clean EOF. Callers surfacing a truncation warning (the
// service upload path, choirstream) render these instead of silently
// scoring the prefix.
type Diag struct {
	// Records is the number of whole records decoded.
	Records int
	// Bytes is the well-formed input consumed: the 24-byte global header
	// plus every complete record (16-byte header + body).
	Bytes int64
	// TornBytes counts bytes of the final, incomplete record that were
	// read before the stream ended — data dropped from scoring.
	TornBytes int64
	// Reason is empty for a clean EOF (or a still-active stream);
	// otherwise a short diagnosis: "torn record header", "torn record
	// body", "size limit exceeded", or the underlying read error.
	Reason string
}

// Diag returns the stream's end-of-input diagnostics (valid any time;
// final once Next has returned a terminal error).
func (s *Stream) Diag() Diag {
	return Diag{Records: s.count, Bytes: s.bytes, TornBytes: s.tornBytes, Reason: s.reason}
}

// SetLimit bounds the total bytes Next will consume (global header
// included). Once decoding the next record would cross the limit, Next
// fails with an error wrapping ErrLimit *before* reading the record
// body, so an oversized upload costs at most limit+16 bytes of reading.
// A limit of 0 (the default) is unlimited.
func (s *Stream) SetLimit(maxBytes int64) { s.limit = maxBytes }

// maxSnapLen caps the snaplen a foreign header can declare: record
// validation (and therefore per-record allocation) never trusts more
// than this, so a corrupt header cannot ask Next to allocate gigabytes.
// Real tools write snaplens up to a few hundred KiB; 16 MiB is far
// beyond any of them.
const maxSnapLen = 1 << 24

// NewStream parses the global pcap header from r and returns an iterator
// over its records. Nanosecond and microsecond captures are accepted in
// either byte order: files written on big-endian hosts carry the
// byte-swapped magics, and their headers and record fields are decoded
// with the detected order. Record bodies (the frames) are byte streams
// and need no swapping.
func NewStream(r io.Reader, name string) (*Stream, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("pcap: reading global header: %w: %w", ErrTruncated, err)
		}
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	var bo binary.ByteOrder = binary.LittleEndian
	var tsScale sim.Duration
	switch magic {
	case MagicNanos:
		tsScale = 1
	case MagicMicros:
		tsScale = sim.Microsecond
	case MagicNanosSwapped:
		bo, tsScale = binary.BigEndian, 1
	case MagicMicrosSwapped:
		bo, tsScale = binary.BigEndian, sim.Microsecond
	default:
		return nil, fmt.Errorf("pcap: unsupported magic %#08x", magic)
	}
	if lt := bo.Uint32(hdr[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	// Honor the writer's declared snaplen when validating records: a
	// capture written at a larger snaplen than our default is a valid
	// foreign artifact, not corruption. Zero (written by some tools for
	// "maximum") and implausibly huge values fall back to the cap.
	snap := bo.Uint32(hdr[16:20])
	if snap == 0 || snap > maxSnapLen {
		snap = maxSnapLen
	}
	return &Stream{br: br, name: name, bo: bo, tsScale: tsScale, snapLen: snap, bytes: 24}, nil
}

// OpenStream opens a pcap file for incremental reading. Close the stream
// to release the file handle.
func OpenStream(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := NewStream(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// Name returns the stream's trial name.
func (s *Stream) Name() string { return s.name }

// Count returns how many records have been decoded so far.
func (s *Stream) Count() int { return s.count }

// Close releases the underlying file when the stream was opened with
// OpenStream; otherwise it is a no-op.
func (s *Stream) Close() error {
	if s.closer != nil {
		c := s.closer
		s.closer = nil
		return c.Close()
	}
	return nil
}

// Next decodes one record. It returns io.EOF at a clean record boundary
// and an error wrapping ErrTruncated when the stream ends mid-record.
// Unparseable or snap-truncated frames are returned as noise packets so
// counts line up with the capture, exactly like the batch Read.
func (s *Stream) Next() (*packet.Packet, sim.Time, error) {
	if s.err != nil {
		return nil, 0, s.err
	}
	var rec [16]byte
	if n, err := io.ReadFull(s.br, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			s.err = io.EOF
		} else if errors.Is(err, io.ErrUnexpectedEOF) {
			s.tornBytes = int64(n)
			s.reason = fmt.Sprintf("torn record header (%d of 16 bytes after record %d)", n, s.count)
			s.err = fmt.Errorf("pcap: record %d header: %w: %w", s.count, ErrTruncated, err)
		} else {
			s.reason = err.Error()
			s.err = fmt.Errorf("pcap: record %d header: %w", s.count, err)
		}
		return nil, 0, s.err
	}
	sec := s.bo.Uint32(rec[0:4])
	sub := s.bo.Uint32(rec[4:8])
	inclLen := s.bo.Uint32(rec[8:12])
	origLen := s.bo.Uint32(rec[12:16])
	if inclLen > s.snapLen {
		s.tornBytes = 16
		s.reason = fmt.Sprintf("record %d declares incl_len %d > snaplen %d", s.count, inclLen, s.snapLen)
		s.err = fmt.Errorf("pcap: record %d: incl_len %d exceeds snaplen %d", s.count, inclLen, s.snapLen)
		return nil, 0, s.err
	}
	if s.limit > 0 && s.bytes+16+int64(inclLen) > s.limit {
		s.tornBytes = 16
		s.reason = fmt.Sprintf("size limit exceeded (record %d would bring the stream to %d bytes, limit %d)",
			s.count, s.bytes+16+int64(inclLen), s.limit)
		s.err = fmt.Errorf("pcap: record %d: %w (%d bytes consumed, limit %d)", s.count, ErrLimit, s.bytes, s.limit)
		return nil, 0, s.err
	}
	buf := make([]byte, inclLen)
	if n, err := io.ReadFull(s.br, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			s.tornBytes = 16 + int64(n)
			s.reason = fmt.Sprintf("torn record body (%d of %d bytes in record %d)", n, inclLen, s.count)
			s.err = fmt.Errorf("pcap: record %d body: %w: %w", s.count, ErrTruncated, err)
		} else {
			s.reason = err.Error()
			s.err = fmt.Errorf("pcap: record %d body: %w", s.count, err)
		}
		return nil, 0, s.err
	}
	ts := sim.Time(sec)*sim.Second + sim.Time(sub)*s.tsScale
	p, err := packet.ParseFrame(buf)
	if err != nil || inclLen < origLen {
		// Truncated or foreign frame: keep as noise.
		p = &packet.Packet{Kind: packet.KindNoise, FrameLen: int(origLen) + packet.FCSLen}
	} else {
		p.FrameLen = int(origLen) + packet.FCSLen
	}
	s.count++
	s.bytes += 16 + int64(inclLen)
	return p, ts, nil
}
