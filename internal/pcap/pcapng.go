package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// pcapng support: the block-structured successor format (used by modern
// capture stacks). Traces are written as one section with a single
// Ethernet interface at nanosecond resolution; readers tolerate unknown
// block types, multiple interfaces and the common per-interface
// timestamp-resolution option.

// Block type codes.
const (
	blockSHB = 0x0A0D0D0A
	blockIDB = 0x00000001
	blockEPB = 0x00000006
)

const (
	byteOrderMagic = 0x1A2B3C4D
	optEndOfOpt    = 0
	optIfTsresol   = 9
)

// WriteNG serializes the trace to w in pcapng format with nanosecond
// timestamps.
func WriteNG(w io.Writer, tr *trace.Trace, snapLen int) error {
	if snapLen <= 0 {
		snapLen = DefaultSnapLen
	}
	bw := bufio.NewWriterSize(w, 1<<16)

	writeBlock := func(btype uint32, body []byte) error {
		total := uint32(12 + len(body))
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], btype)
		binary.LittleEndian.PutUint32(hdr[4:8], total)
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := bw.Write(body); err != nil {
			return err
		}
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], total)
		_, err := bw.Write(tail[:])
		return err
	}

	// Section Header Block.
	shb := make([]byte, 16)
	binary.LittleEndian.PutUint32(shb[0:4], byteOrderMagic)
	binary.LittleEndian.PutUint16(shb[4:6], 1) // major
	binary.LittleEndian.PutUint16(shb[6:8], 0) // minor
	// Section length unknown: -1.
	binary.LittleEndian.PutUint64(shb[8:16], ^uint64(0))
	if err := writeBlock(blockSHB, shb); err != nil {
		return err
	}

	// Interface Description Block: Ethernet, ns resolution.
	idb := make([]byte, 8, 20)
	binary.LittleEndian.PutUint16(idb[0:2], LinkTypeEthernet)
	// reserved 2 bytes zero.
	binary.LittleEndian.PutUint32(idb[4:8], uint32(snapLen))
	// Option if_tsresol = 9 (10^-9 s), padded to 4 bytes.
	idb = append(idb,
		byte(optIfTsresol), 0, 1, 0, // code, len=1 (little endian)
		9, 0, 0, 0, // value + pad
		byte(optEndOfOpt), 0, 0, 0,
	)
	if err := writeBlock(blockIDB, idb); err != nil {
		return err
	}

	for i, p := range tr.Packets {
		frame, err := p.Frame()
		if err != nil {
			return fmt.Errorf("pcapng: packet %d: %w", i, err)
		}
		origLen := len(frame)
		inclLen := origLen
		if inclLen > snapLen {
			inclLen = snapLen
		}
		ts := uint64(tr.Times[i])
		pad := (4 - inclLen%4) % 4
		body := make([]byte, 20+inclLen+pad)
		// interface id 0.
		binary.LittleEndian.PutUint32(body[4:8], uint32(ts>>32))
		binary.LittleEndian.PutUint32(body[8:12], uint32(ts))
		binary.LittleEndian.PutUint32(body[12:16], uint32(inclLen))
		binary.LittleEndian.PutUint32(body[16:20], uint32(origLen))
		copy(body[20:], frame[:inclLen])
		if err := writeBlock(blockEPB, body); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteNGFile writes a pcapng file at path.
func WriteNGFile(path string, tr *trace.Trace, snapLen int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteNG(f, tr, snapLen); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadNG parses a pcapng stream into a trace. Unknown block types are
// skipped; per-interface timestamp resolution is honoured.
func ReadNG(r io.Reader, name string) (*trace.Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	tr := trace.New(name, 1024)
	// Per-interface timestamp scale in ns per unit.
	var ifScale []sim.Duration

	readBlock := func() (uint32, []byte, error) {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return 0, nil, err
		}
		btype := binary.LittleEndian.Uint32(hdr[0:4])
		total := binary.LittleEndian.Uint32(hdr[4:8])
		if total < 12 || total > 1<<26 {
			return 0, nil, fmt.Errorf("pcapng: implausible block length %d", total)
		}
		body := make([]byte, total-12)
		if _, err := io.ReadFull(br, body); err != nil {
			return 0, nil, fmt.Errorf("pcapng: block body: %w", err)
		}
		var tail [4]byte
		if _, err := io.ReadFull(br, tail[:]); err != nil {
			return 0, nil, fmt.Errorf("pcapng: block trailer: %w", err)
		}
		if binary.LittleEndian.Uint32(tail[:]) != total {
			return 0, nil, errors.New("pcapng: trailing length mismatch")
		}
		return btype, body, nil
	}

	first := true
	for {
		btype, body, err := readBlock()
		if err != nil {
			if errors.Is(err, io.EOF) && !first {
				return tr, nil
			}
			if errors.Is(err, io.EOF) {
				return nil, errors.New("pcapng: empty stream")
			}
			return nil, err
		}
		if first {
			if btype != blockSHB {
				return nil, fmt.Errorf("pcapng: stream does not start with a section header (type %#08x)", btype)
			}
			if len(body) < 4 || binary.LittleEndian.Uint32(body[0:4]) != byteOrderMagic {
				return nil, errors.New("pcapng: unsupported byte order")
			}
			first = false
			continue
		}
		switch btype {
		case blockIDB:
			if len(body) < 8 {
				return nil, errors.New("pcapng: short interface block")
			}
			scale := sim.Duration(sim.Microsecond) // spec default 10^-6
			// Parse options for if_tsresol.
			opts := body[8:]
			for len(opts) >= 4 {
				code := binary.LittleEndian.Uint16(opts[0:2])
				olen := int(binary.LittleEndian.Uint16(opts[2:4]))
				padded := (olen + 3) / 4 * 4
				if len(opts) < 4+padded {
					break
				}
				if code == optEndOfOpt {
					break
				}
				if code == optIfTsresol && olen >= 1 {
					v := opts[4]
					if v&0x80 == 0 {
						scale = 1
						for i := uint8(0); i < 9-min8(v, 9); i++ {
							scale *= 10
						}
					}
				}
				opts = opts[4+padded:]
			}
			ifScale = append(ifScale, scale)
		case blockEPB:
			if len(body) < 20 {
				return nil, errors.New("pcapng: short packet block")
			}
			ifID := binary.LittleEndian.Uint32(body[0:4])
			tsHigh := binary.LittleEndian.Uint32(body[4:8])
			tsLow := binary.LittleEndian.Uint32(body[8:12])
			inclLen := binary.LittleEndian.Uint32(body[12:16])
			origLen := binary.LittleEndian.Uint32(body[16:20])
			if int(ifID) >= len(ifScale) {
				return nil, fmt.Errorf("pcapng: packet references unknown interface %d", ifID)
			}
			if len(body) < 20+int(inclLen) {
				return nil, errors.New("pcapng: packet data truncated")
			}
			scale := ifScale[ifID]
			ts := sim.Time(uint64(tsHigh)<<32|uint64(tsLow)) * scale
			raw := body[20 : 20+inclLen]
			p, err := packet.ParseFrame(raw)
			if err != nil || inclLen < origLen {
				p = &packet.Packet{Kind: packet.KindNoise, FrameLen: int(origLen) + packet.FCSLen}
			} else {
				p.FrameLen = int(origLen) + packet.FCSLen
			}
			tr.Append(p, ts)
		default:
			// Unknown block: skip (already consumed).
		}
	}
}

// ReadNGFile reads a pcapng file.
func ReadNGFile(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadNG(f, path)
}

func min8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}

// ReadAny sniffs the stream's magic and dispatches to the classic pcap
// or pcapng reader.
func ReadAny(r io.Reader, name string) (*trace.Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("pcap: sniffing format: %w", err)
	}
	switch binary.LittleEndian.Uint32(magic) {
	case blockSHB:
		return ReadNG(br, name)
	case MagicNanos, MagicMicros, MagicNanosSwapped, MagicMicrosSwapped:
		return Read(br, name)
	default:
		return nil, fmt.Errorf("pcap: unrecognized capture format (magic %#08x)", binary.LittleEndian.Uint32(magic))
	}
}

// ReadAnyFile reads a capture file in either format.
func ReadAnyFile(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAny(f, path)
}
