package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// swapCapture converts a little-endian classic pcap byte stream into
// its big-endian-written twin: every global-header and record-header
// field is byte-swapped; frame bodies are untouched (they are byte
// streams with no endianness).
func swapCapture(t *testing.T, raw []byte) []byte {
	t.Helper()
	if len(raw) < 24 {
		t.Fatalf("capture too short: %d bytes", len(raw))
	}
	out := make([]byte, len(raw))
	copy(out, raw)
	swap32 := func(off int) {
		binary.BigEndian.PutUint32(out[off:off+4], binary.LittleEndian.Uint32(raw[off:off+4]))
	}
	swap16 := func(off int) {
		binary.BigEndian.PutUint16(out[off:off+2], binary.LittleEndian.Uint16(raw[off:off+2]))
	}
	swap32(0) // magic
	swap16(4) // version major
	swap16(6) // version minor
	swap32(8)
	swap32(12)
	swap32(16) // snaplen
	swap32(20) // link type
	off := 24
	for off < len(raw) {
		if off+16 > len(raw) {
			t.Fatalf("record header torn at %d", off)
		}
		incl := binary.LittleEndian.Uint32(raw[off+8 : off+12])
		swap32(off)
		swap32(off + 4)
		swap32(off + 8)
		swap32(off + 12)
		off += 16 + int(incl)
	}
	return out
}

// TestByteSwappedRoundTrip: a capture written on a big-endian host
// (swapped magic, swapped header/record fields) decodes identically to
// its little-endian twin. Regression for NewStream rejecting the
// swapped magics 0xD4C3B2A1 / 0x4D3CB2A1 outright.
func TestByteSwappedRoundTrip(t *testing.T) {
	tr := sampleTrace(120)
	var buf bytes.Buffer
	if err := Write(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	le := buf.Bytes()
	be := swapCapture(t, le)
	if bytes.Equal(le, be) {
		t.Fatal("swapCapture produced identical bytes")
	}
	if got := binary.LittleEndian.Uint32(be[0:4]); got != MagicNanosSwapped {
		t.Fatalf("swapped magic %#08x, want %#08x", got, uint32(MagicNanosSwapped))
	}

	want, err := Read(bytes.NewReader(le), "le")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(be), "be")
	if err != nil {
		t.Fatalf("byte-swapped capture rejected: %v", err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("decoded %d records from swapped capture, want %d", got.Len(), want.Len())
	}
	for i := range want.Packets {
		if got.Times[i] != want.Times[i] || got.Packets[i].Tag != want.Packets[i].Tag ||
			got.Packets[i].Kind != want.Packets[i].Kind || got.Packets[i].FrameLen != want.Packets[i].FrameLen {
			t.Fatalf("record %d differs between byte orders", i)
		}
	}
}

// TestByteSwappedMicrosecondScale: the swapped microsecond magic keeps
// the microsecond timestamp scale.
func TestByteSwappedMicrosecondScale(t *testing.T) {
	var buf bytes.Buffer
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:4], MagicMicros) // BE write of the micros magic
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], DefaultSnapLen)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr[:])
	var rec [16]byte
	binary.BigEndian.PutUint32(rec[0:4], 3)   // 3 s
	binary.BigEndian.PutUint32(rec[4:8], 250) // 250 µs
	binary.BigEndian.PutUint32(rec[8:12], 4)
	binary.BigEndian.PutUint32(rec[12:16], 4)
	buf.Write(rec[:])
	buf.Write([]byte{0xde, 0xad, 0xbe, 0xef})

	s, err := NewStream(bytes.NewReader(buf.Bytes()), "be-micro")
	if err != nil {
		t.Fatal(err)
	}
	p, ts, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if want := 3*sim.Second + 250*sim.Microsecond; ts != want {
		t.Fatalf("timestamp %v, want %v", ts, want)
	}
	if p.Kind != packet.KindNoise {
		t.Fatalf("4-byte frame parsed as %v, want noise", p.Kind)
	}
	if _, _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

// writeCustomCapture emits a classic little-endian nanosecond capture
// with an explicit header snaplen and one record of the given lengths.
func writeCustomCapture(snapLen, inclLen, origLen uint32) []byte {
	var buf bytes.Buffer
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MagicNanos)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	binary.LittleEndian.PutUint32(hdr[16:20], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr[:])
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], 1)
	binary.LittleEndian.PutUint32(rec[4:8], 42)
	binary.LittleEndian.PutUint32(rec[8:12], inclLen)
	binary.LittleEndian.PutUint32(rec[12:16], origLen)
	buf.Write(rec[:])
	buf.Write(make([]byte, inclLen))
	return buf.Bytes()
}

// TestHeaderSnapLenHonored: a foreign capture written at a snaplen
// larger than our default is valid — records up to *its* snaplen must
// decode (as noise when unparseable), not be rejected as implausible.
// Regression for validating incl_len against the hardcoded
// DefaultSnapLen while ignoring hdr[16:20].
func TestHeaderSnapLenHonored(t *testing.T) {
	const big = 200_000 // > DefaultSnapLen (65535)
	raw := writeCustomCapture(big, 100_000, 100_000)
	tr, err := Read(bytes.NewReader(raw), "jumbo")
	if err != nil {
		t.Fatalf("capture written at snaplen %d rejected: %v", big, err)
	}
	if tr.Len() != 1 {
		t.Fatalf("decoded %d records, want 1", tr.Len())
	}
	if tr.Packets[0].Kind != packet.KindNoise {
		t.Fatalf("unparseable jumbo frame kept as %v, want noise", tr.Packets[0].Kind)
	}
	if want := 100_000 + packet.FCSLen; tr.Packets[0].FrameLen != want {
		t.Fatalf("frame len %d, want %d", tr.Packets[0].FrameLen, want)
	}
}

// TestInclLenBeyondSnapLenRejected: the declared snaplen is still a
// hard bound — a record claiming more than the header's snaplen is
// corruption, not data.
func TestInclLenBeyondSnapLenRejected(t *testing.T) {
	raw := writeCustomCapture(1000, 2000, 2000)
	_, err := Read(bytes.NewReader(raw), "liar")
	if err == nil {
		t.Fatal("incl_len beyond header snaplen accepted")
	}
	if !strings.Contains(err.Error(), "snaplen") {
		t.Fatalf("error does not mention the snaplen bound: %v", err)
	}
}

// TestZeroSnapLenFallsBack: some tools write snaplen 0 for "maximum";
// the reader must not treat that as "reject every record".
func TestZeroSnapLenFallsBack(t *testing.T) {
	raw := writeCustomCapture(0, 512, 512)
	tr, err := Read(bytes.NewReader(raw), "zero-snap")
	if err != nil {
		t.Fatalf("snaplen-0 capture rejected: %v", err)
	}
	if tr.Len() != 1 {
		t.Fatalf("decoded %d records, want 1", tr.Len())
	}
}
