package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSerializationTimeMatchesPaperRates(t *testing.T) {
	// 1400-byte frames: the paper reports 3.52 Mpps at 40 Gbps,
	// 6.97 Mpps at 80 Gbps and 8.9 Mpps at 100 Gbps.
	cases := []struct {
		gbps    float64
		wantPPS float64
		tolPct  float64
	}{
		{40, 3.52e6, 1.0},
		{80, 6.97e6, 1.5},
		{100, 8.9e6, 2.5},
	}
	for _, c := range cases {
		got := RateForPPS(1400, Gbps(c.gbps))
		rel := (got - c.wantPPS) / c.wantPPS * 100
		if rel > c.tolPct || rel < -c.tolPct {
			t.Errorf("RateForPPS(1400, %vG) = %.0f pps, want %.0f ±%.1f%%", c.gbps, got, c.wantPPS, c.tolPct)
		}
	}
}

func TestSerializationTimeValues(t *testing.T) {
	if got := SerializationTime(1400, Gbps(40)); got != 284 {
		t.Errorf("1400B @ 40G = %v, want 284ns", got)
	}
	if got := SerializationTime(1400, Gbps(100)); got != 114 {
		t.Errorf("1400B @ 100G = %v, want 114ns", got)
	}
}

func TestSerializationTimePanicsOnZeroBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero bandwidth")
		}
	}()
	SerializationTime(100, 0)
}

func TestTagRoundTrip(t *testing.T) {
	in := Tag{Replayer: 3, Stream: 9, Seq: 1234567890123}
	b := in.Marshal()
	out, ok := ParseTag(b[:])
	if !ok {
		t.Fatal("ParseTag rejected a valid tag")
	}
	if out != in {
		t.Fatalf("round trip %v != %v", out, in)
	}
}

func TestParseTagRejectsBadMagic(t *testing.T) {
	b := Tag{Seq: 1}.Marshal()
	b[0] ^= 0xFF
	if _, ok := ParseTag(b[:]); ok {
		t.Fatal("ParseTag accepted corrupted magic")
	}
}

func TestParseTagRejectsShort(t *testing.T) {
	if _, ok := ParseTag(make([]byte, TagSize-1)); ok {
		t.Fatal("ParseTag accepted short buffer")
	}
}

func TestParseTagUsesTrailer(t *testing.T) {
	// Tag must be read from the END of the buffer (it is a trailer).
	in := Tag{Replayer: 1, Stream: 2, Seq: 42}
	buf := make([]byte, 100)
	buf = AppendTag(buf, in)
	out, ok := ParseTag(buf)
	if !ok || out != in {
		t.Fatalf("trailer parse got %v ok=%v, want %v", out, ok, in)
	}
}

func TestQuickTagRoundTrip(t *testing.T) {
	f := func(r, s uint16, q uint64) bool {
		in := Tag{Replayer: r, Stream: s, Seq: q}
		b := in.Marshal()
		out, ok := ParseTag(b[:])
		return ok && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	if got := Checksum([]byte{0xFF}); got != ^uint16(0xFF00) {
		t.Fatalf("odd-length checksum = %#04x", got)
	}
}

func TestIPv4HeaderRoundTrip(t *testing.T) {
	h := IPv4Header{
		TOS: 0x10, TotalLen: 1382, ID: 777, TTL: 64, Proto: ProtoUDP,
		Src: IPv4{10, 0, 0, 1}, Dst: IPv4{10, 0, 0, 2},
	}
	b := h.Marshal(nil)
	if len(b) != IPv4HeaderLen {
		t.Fatalf("marshalled length %d", len(b))
	}
	out, rest, err := ParseIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("unexpected trailing bytes: %d", len(rest))
	}
	if out != h {
		t.Fatalf("round trip %+v != %+v", out, h)
	}
}

func TestParseIPv4DetectsCorruption(t *testing.T) {
	h := IPv4Header{TotalLen: 100, TTL: 64, Proto: ProtoUDP}
	b := h.Marshal(nil)
	b[8] ^= 0x01 // flip a TTL bit
	if _, _, err := ParseIPv4(b); err == nil {
		t.Fatal("checksum corruption not detected")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	h := EthernetHeader{
		Dst:       MACForNode(2, 0),
		Src:       MACForNode(1, 1),
		EtherType: EtherTypeIPv4,
	}
	b := h.Marshal(nil)
	out, rest, err := ParseEthernet(append(b, 0xAA))
	if err != nil {
		t.Fatal(err)
	}
	if out != h || len(rest) != 1 {
		t.Fatalf("round trip mismatch: %+v rest=%d", out, len(rest))
	}
}

func TestUDPRoundTrip(t *testing.T) {
	h := UDPHeader{SrcPort: 5001, DstPort: 9000, Length: 1000}
	out, rest, err := ParseUDP(h.Marshal(nil))
	if err != nil || out != h || len(rest) != 0 {
		t.Fatalf("udp round trip: %+v err=%v", out, err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := TCPHeader{SrcPort: 40000, DstPort: 5201, Seq: 1 << 30, Ack: 99, Flags: TCPFlagACK | TCPFlagPSH, Window: 4096}
	out, rest, err := ParseTCP(h.Marshal(nil))
	if err != nil || out != h || len(rest) != 0 {
		t.Fatalf("tcp round trip: %+v err=%v", out, err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	p := &Packet{
		Tag:      Tag{Replayer: 2, Stream: 1, Seq: 555},
		Kind:     KindData,
		FrameLen: 1400,
		Flow: FiveTuple{
			Src: IPForNode(1), Dst: IPForNode(3),
			SrcPort: 7000, DstPort: 7001, Proto: ProtoUDP,
		},
	}
	b, err := p.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 1400-FCSLen {
		t.Fatalf("frame length %d, want %d", len(b), 1400-FCSLen)
	}
	out, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tag != p.Tag {
		t.Fatalf("tag %v != %v", out.Tag, p.Tag)
	}
	if out.Kind != KindData {
		t.Fatalf("kind %v, want data", out.Kind)
	}
	if out.FrameLen != p.FrameLen {
		t.Fatalf("frame len %d != %d", out.FrameLen, p.FrameLen)
	}
	if out.Flow != p.Flow {
		t.Fatalf("flow %v != %v", out.Flow, p.Flow)
	}
}

func TestInvalidFrameParsesAsNoise(t *testing.T) {
	p := &Packet{Kind: KindInvalid, FrameLen: 128, Flow: FiveTuple{Src: IPForNode(1), Dst: IPForNode(2)}}
	b, err := p.Frame()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind == KindData {
		t.Fatal("invalid filler frame parsed as data")
	}
}

func TestNoiseFrameTCP(t *testing.T) {
	p := &Packet{
		Kind:     KindNoise,
		FrameLen: 1500,
		Tag:      Tag{Seq: 10},
		Flow:     FiveTuple{Src: IPForNode(5), Dst: IPForNode(6), SrcPort: 40001, DstPort: 5201, Proto: ProtoTCP},
	}
	b, err := p.Frame()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != KindNoise {
		t.Fatalf("noise frame parsed as %v", out.Kind)
	}
	if out.Flow.Proto != ProtoTCP {
		t.Fatalf("proto %d, want TCP", out.Flow.Proto)
	}
}

func TestFrameTooSmall(t *testing.T) {
	p := &Packet{Kind: KindData, FrameLen: MinDataFrameLen - 1}
	if _, err := p.Frame(); err == nil {
		t.Fatal("expected error for undersized frame")
	}
}

func TestQuickFrameRoundTripTags(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(r, s uint16, q uint64) bool {
		p := &Packet{
			Tag:      Tag{Replayer: r, Stream: s, Seq: q},
			Kind:     KindData,
			FrameLen: MinDataFrameLen + rng.Intn(1400),
			Flow:     FiveTuple{Src: IPForNode(1), Dst: IPForNode(2), SrcPort: 1, DstPort: 2, Proto: ProtoUDP},
		}
		b, err := p.Frame()
		if err != nil {
			return false
		}
		out, err := ParseFrame(b)
		return err == nil && out.Tag == p.Tag && out.FrameLen == p.FrameLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	p := &Packet{Tag: Tag{Seq: 1}, FrameLen: 100}
	q := p.Clone()
	q.Tag.Seq = 2
	if p.Tag.Seq != 1 {
		t.Fatal("Clone shares state with original")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindData: "data", KindNoise: "noise", KindControl: "control", KindInvalid: "invalid", Kind(9): "kind(9)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestAddressHelpers(t *testing.T) {
	if IPForNode(0x0102).String() != "10.0.1.2" {
		t.Errorf("IPForNode = %v", IPForNode(0x0102))
	}
	m := MACForNode(7, 1)
	if m.String() != "02:c4:00:07:01:01" {
		t.Errorf("MACForNode = %v", m)
	}
}

func TestWireBytes(t *testing.T) {
	if WireBytes(1400) != 1420 {
		t.Fatalf("WireBytes(1400) = %d, want 1420 (preamble+SFD+IFG)", WireBytes(1400))
	}
}

func TestControlFrameRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	p := &Packet{
		Tag:      Tag{Replayer: 0xFFFD, Seq: 3},
		Kind:     KindControl,
		FrameLen: 128,
		Flow: FiveTuple{
			Src: IPForNode(1), Dst: IPForNode(2),
			SrcPort: ControlPort, DstPort: ControlPort, Proto: ProtoUDP,
		},
		Control: payload,
	}
	b, err := p.Frame()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != KindControl {
		t.Fatalf("kind %v, want control", out.Kind)
	}
	if string(out.Control) != string(payload) {
		t.Fatalf("control payload %v, want %v", out.Control, payload)
	}
}

func TestControlPayloadTooBig(t *testing.T) {
	p := &Packet{
		Kind:     KindControl,
		FrameLen: MinDataFrameLen + 4,
		Flow:     FiveTuple{DstPort: ControlPort, Proto: ProtoUDP},
		Control:  make([]byte, 100),
	}
	if _, err := p.Frame(); err == nil {
		t.Fatal("oversized control payload accepted")
	}
}

func TestDataFrameOnControlPortStaysControl(t *testing.T) {
	// A tagged frame addressed to the control port is classified as
	// control even if its payload is not parseable; Control stays nil.
	p := &Packet{
		Tag: Tag{Seq: 9}, Kind: KindData, FrameLen: 128,
		Flow: FiveTuple{Src: IPForNode(1), Dst: IPForNode(2), DstPort: ControlPort, Proto: ProtoUDP},
	}
	b, err := p.Frame()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != KindControl {
		t.Fatalf("kind %v", out.Kind)
	}
}
