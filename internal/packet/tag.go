package packet

import (
	"encoding/binary"
	"fmt"
)

// TagSize is the length of the unique trailer stamped onto every
// replay-eligible packet, mirroring the paper's 16-byte tags.
const TagSize = 16

// TagMagic marks a trailer as a Choir tag. ASCII "CHO1".
const TagMagic uint32 = 0x43484F31

// Tag is the unique 16-byte trailer identity of a packet:
//
//	bytes 0..3   magic
//	bytes 4..5   replayer node that emitted the packet
//	bytes 6..7   stream within that replayer
//	bytes 8..15  sequence number
//
// Two packets are "the same packet" for the consistency metrics exactly
// when their tags are equal.
type Tag struct {
	Replayer uint16
	Stream   uint16
	Seq      uint64
}

// String implements fmt.Stringer.
func (t Tag) String() string {
	return fmt.Sprintf("r%d/s%d/#%d", t.Replayer, t.Stream, t.Seq)
}

// Marshal encodes the tag into its 16-byte wire form.
func (t Tag) Marshal() [TagSize]byte {
	var b [TagSize]byte
	binary.BigEndian.PutUint32(b[0:4], TagMagic)
	binary.BigEndian.PutUint16(b[4:6], t.Replayer)
	binary.BigEndian.PutUint16(b[6:8], t.Stream)
	binary.BigEndian.PutUint64(b[8:16], t.Seq)
	return b
}

// AppendTag appends the wire form of the tag to dst.
func AppendTag(dst []byte, t Tag) []byte {
	b := t.Marshal()
	return append(dst, b[:]...)
}

// ParseTag decodes a tag from the last TagSize bytes of data. It reports
// ok=false when data is too short or the magic does not match (e.g. an
// invalid filler frame or noise traffic).
func ParseTag(data []byte) (Tag, bool) {
	if len(data) < TagSize {
		return Tag{}, false
	}
	b := data[len(data)-TagSize:]
	if binary.BigEndian.Uint32(b[0:4]) != TagMagic {
		return Tag{}, false
	}
	return Tag{
		Replayer: binary.BigEndian.Uint16(b[4:6]),
		Stream:   binary.BigEndian.Uint16(b[6:8]),
		Seq:      binary.BigEndian.Uint64(b[8:16]),
	}, true
}
