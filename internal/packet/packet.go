// Package packet defines the packet model shared by the generator, the
// Choir middlebox, NIC/switch models and the consistency analyzer.
//
// Packets carry a unique 16-byte trailer tag — exactly the evaluation
// device the paper uses ("we stamped each packet with a unique trailer and
// used that to define a packet"). Full frames (Ethernet/IPv4/UDP plus the
// trailer) can be synthesized on demand for pcap export and parsed back.
package packet

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Kind classifies a packet for the simulator.
type Kind uint8

const (
	// KindData is replay-eligible experimental traffic.
	KindData Kind = iota
	// KindNoise is background traffic (e.g. iperf3-style TCP streams).
	KindNoise
	// KindControl is Choir control-plane traffic.
	KindControl
	// KindInvalid is a deliberately corrupt filler frame, as emitted by
	// MoonGen-style gap control; receivers discard it.
	KindInvalid
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindNoise:
		return "noise"
	case KindControl:
		return "control"
	case KindInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Packet is one frame travelling through the simulated network. The
// payload is synthesized lazily (Frame) to keep million-packet traces
// cheap; identity lives in the Tag.
type Packet struct {
	// Tag uniquely identifies the packet (trailer stamp).
	Tag Tag
	// Kind classifies the packet.
	Kind Kind
	// FrameLen is the Ethernet frame length in bytes, FCS included.
	FrameLen int
	// Flow is the 5-tuple used for header synthesis and noise routing.
	Flow FiveTuple
	// SentAt is the simulated time the frame finished serializing onto
	// its first wire; set by the transmitting NIC.
	SentAt sim.Time
	// Control carries a marshalled control-plane command when Kind is
	// KindControl — the in-band configuration the paper's evaluations
	// use ("the control signals run in-band", §5). It is embedded in
	// the frame payload by Frame and recovered by ParseFrame.
	Control []byte
}

// Clone returns a copy of the packet (packets are treated as immutable
// once transmitted; replays re-send the same *Packet values, mirroring
// Choir's zero-copy recording).
func (p *Packet) Clone() *Packet {
	q := *p
	return &q
}

// String summarizes the packet.
func (p *Packet) String() string {
	return fmt.Sprintf("%v pkt %v len=%d", p.Kind, p.Tag, p.FrameLen)
}

// interFrameOverhead is the per-frame on-wire overhead that does not
// appear in the frame itself: 7-byte preamble, 1-byte SFD and the
// 12-byte minimum inter-frame gap.
const interFrameOverhead = 20

// WireBytes returns the total line occupancy of a frame in bytes.
func WireBytes(frameLen int) int { return frameLen + interFrameOverhead }

// SerializationTime returns how long a frame of frameLen bytes occupies a
// link of the given bandwidth (bits per second), including preamble and
// inter-frame gap. A 1400-byte frame takes ~284 ns at 40 Gbps and
// ~114 ns at 100 Gbps, matching the paper's 3.52 Mpps / 8.9 Mpps figures.
func SerializationTime(frameLen int, bandwidthBps int64) sim.Duration {
	if bandwidthBps <= 0 {
		panic("packet: bandwidth must be positive")
	}
	bits := float64(WireBytes(frameLen)) * 8
	return sim.Duration(math.Round(bits * 1e9 / float64(bandwidthBps)))
}

// RateForPPS returns the packet rate (packets per second) a stream of
// frameLen-byte frames achieves at the given bandwidth.
func RateForPPS(frameLen int, bandwidthBps int64) float64 {
	return float64(bandwidthBps) / (float64(WireBytes(frameLen)) * 8)
}

// Gbps converts gigabits per second to bits per second.
func Gbps(g float64) int64 { return int64(g * 1e9) }
