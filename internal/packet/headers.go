package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol numbers used in the IPv4 header.
const (
	ProtoUDP = 17
	ProtoTCP = 6
)

// EtherType values used in the Ethernet header.
const (
	EtherTypeIPv4 = 0x0800
)

// Header sizes in bytes.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20
	UDPHeaderLen      = 8
	TCPHeaderLen      = 20
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the address in colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// MACForNode derives a stable locally-administered unicast MAC for a
// simulated node/port pair.
func MACForNode(node uint16, port uint8) MAC {
	return MAC{0x02, 0xC4, byte(node >> 8), byte(node), port, 0x01}
}

// IPv4 is a 32-bit address.
type IPv4 [4]byte

// String renders the address in dotted-quad form.
func (a IPv4) String() string { return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3]) }

// IPForNode derives a stable 10.0/16 address for a simulated node.
func IPForNode(node uint16) IPv4 { return IPv4{10, 0, byte(node >> 8), byte(node)} }

// FiveTuple identifies a flow.
type FiveTuple struct {
	Src, Dst         IPv4
	SrcPort, DstPort uint16
	Proto            uint8
}

// String implements fmt.Stringer.
func (f FiveTuple) String() string {
	return fmt.Sprintf("%v:%d->%v:%d/%d", f.Src, f.SrcPort, f.Dst, f.DstPort, f.Proto)
}

// EthernetHeader is the 14-byte L2 header (FCS handled separately).
type EthernetHeader struct {
	Dst, Src  MAC
	EtherType uint16
}

// Marshal appends the header's wire form to dst.
func (h EthernetHeader) Marshal(dst []byte) []byte {
	dst = append(dst, h.Dst[:]...)
	dst = append(dst, h.Src[:]...)
	return binary.BigEndian.AppendUint16(dst, h.EtherType)
}

// ParseEthernet decodes an Ethernet header and returns the remaining
// payload bytes.
func ParseEthernet(b []byte) (EthernetHeader, []byte, error) {
	if len(b) < EthernetHeaderLen {
		return EthernetHeader{}, nil, errors.New("packet: short ethernet header")
	}
	var h EthernetHeader
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return h, b[EthernetHeaderLen:], nil
}

// IPv4Header is a 20-byte IPv4 header without options.
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Proto    uint8
	Src, Dst IPv4
}

// Marshal appends the header's wire form (with checksum) to dst.
func (h IPv4Header) Marshal(dst []byte) []byte {
	start := len(dst)
	dst = append(dst,
		0x45, h.TOS,
		byte(h.TotalLen>>8), byte(h.TotalLen),
		byte(h.ID>>8), byte(h.ID),
		0, 0, // flags+fragment offset
		h.TTL, h.Proto,
		0, 0, // checksum placeholder
	)
	dst = append(dst, h.Src[:]...)
	dst = append(dst, h.Dst[:]...)
	sum := Checksum(dst[start : start+IPv4HeaderLen])
	dst[start+10] = byte(sum >> 8)
	dst[start+11] = byte(sum)
	return dst
}

// ParseIPv4 decodes an IPv4 header, verifies its checksum, and returns
// the remaining payload bytes.
func ParseIPv4(b []byte) (IPv4Header, []byte, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, nil, errors.New("packet: short ipv4 header")
	}
	if b[0]>>4 != 4 {
		return IPv4Header{}, nil, fmt.Errorf("packet: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return IPv4Header{}, nil, errors.New("packet: bad IHL")
	}
	if Checksum(b[:ihl]) != 0 {
		return IPv4Header{}, nil, errors.New("packet: ipv4 checksum mismatch")
	}
	var h IPv4Header
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.TTL = b[8]
	h.Proto = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return h, b[ihl:], nil
}

// UDPHeader is the 8-byte UDP header. The checksum is left zero
// (permitted by RFC 768 over IPv4), matching high-rate generators that
// skip it.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16
}

// Marshal appends the header's wire form to dst.
func (h UDPHeader) Marshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, h.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, h.DstPort)
	dst = binary.BigEndian.AppendUint16(dst, h.Length)
	return binary.BigEndian.AppendUint16(dst, 0)
}

// ParseUDP decodes a UDP header and returns the remaining payload bytes.
func ParseUDP(b []byte) (UDPHeader, []byte, error) {
	if len(b) < UDPHeaderLen {
		return UDPHeader{}, nil, errors.New("packet: short udp header")
	}
	h := UDPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Length:  binary.BigEndian.Uint16(b[4:6]),
	}
	return h, b[UDPHeaderLen:], nil
}

// TCPHeader is a 20-byte TCP header without options; enough for the
// iperf3-style noise traffic and trace export.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

// TCP flag bits.
const (
	TCPFlagFIN = 1 << 0
	TCPFlagSYN = 1 << 1
	TCPFlagRST = 1 << 2
	TCPFlagPSH = 1 << 3
	TCPFlagACK = 1 << 4
)

// Marshal appends the header's wire form to dst (checksum zero).
func (h TCPHeader) Marshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, h.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, h.DstPort)
	dst = binary.BigEndian.AppendUint32(dst, h.Seq)
	dst = binary.BigEndian.AppendUint32(dst, h.Ack)
	dst = append(dst, 5<<4, h.Flags)
	dst = binary.BigEndian.AppendUint16(dst, h.Window)
	dst = append(dst, 0, 0, 0, 0) // checksum + urgent pointer
	return dst
}

// ParseTCP decodes a TCP header and returns the remaining payload bytes.
func ParseTCP(b []byte) (TCPHeader, []byte, error) {
	if len(b) < TCPHeaderLen {
		return TCPHeader{}, nil, errors.New("packet: short tcp header")
	}
	dataOff := int(b[12]>>4) * 4
	if dataOff < TCPHeaderLen || len(b) < dataOff {
		return TCPHeader{}, nil, errors.New("packet: bad tcp data offset")
	}
	h := TCPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:16]),
	}
	return h, b[dataOff:], nil
}

// Checksum computes the RFC 1071 Internet checksum over b. Computing it
// over a header whose checksum field is filled in yields zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + sum>>16
	}
	return ^uint16(sum)
}
