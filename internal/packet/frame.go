package packet

import (
	"errors"
	"fmt"
)

// FCSLen is the Ethernet frame check sequence length. FrameLen includes
// it; synthesized captures exclude it (as libpcap captures normally do).
const FCSLen = 4

// ControlPort is the UDP destination port carrying in-band Choir
// control commands.
const ControlPort = 8472

// MinDataFrameLen is the smallest frame that can carry the full
// Eth+IPv4+UDP encapsulation plus a trailer tag and FCS.
const MinDataFrameLen = EthernetHeaderLen + IPv4HeaderLen + UDPHeaderLen + TagSize + FCSLen

// Frame synthesizes the on-wire bytes of the packet, excluding the FCS.
// Data and control packets end with the 16-byte trailer tag; noise
// packets are plain TCP segments; invalid packets carry a non-matching
// trailer so receivers can discard them, mirroring MoonGen's filler
// frames.
func (p *Packet) Frame() ([]byte, error) {
	if p.FrameLen < MinDataFrameLen {
		return nil, fmt.Errorf("packet: frame length %d below minimum %d", p.FrameLen, MinDataFrameLen)
	}
	capLen := p.FrameLen - FCSLen
	buf := make([]byte, 0, capLen)

	eth := EthernetHeader{
		Dst:       macFromIP(p.Flow.Dst),
		Src:       macFromIP(p.Flow.Src),
		EtherType: EtherTypeIPv4,
	}
	buf = eth.Marshal(buf)

	ipLen := capLen - EthernetHeaderLen
	proto := uint8(ProtoUDP)
	if p.Flow.Proto != 0 {
		proto = p.Flow.Proto
	}
	ip := IPv4Header{
		TotalLen: uint16(ipLen),
		ID:       uint16(p.Tag.Seq),
		TTL:      64,
		Proto:    proto,
		Src:      p.Flow.Src,
		Dst:      p.Flow.Dst,
	}
	buf = ip.Marshal(buf)

	switch proto {
	case ProtoTCP:
		tcp := TCPHeader{
			SrcPort: p.Flow.SrcPort,
			DstPort: p.Flow.DstPort,
			Seq:     uint32(p.Tag.Seq),
			Flags:   TCPFlagACK,
			Window:  65535,
		}
		buf = tcp.Marshal(buf)
	default:
		udp := UDPHeader{
			SrcPort: p.Flow.SrcPort,
			DstPort: p.Flow.DstPort,
			Length:  uint16(ipLen - IPv4HeaderLen),
		}
		buf = udp.Marshal(buf)
	}

	// Payload up to the trailer: zeros, or a length-prefixed control
	// command for in-band control frames.
	pad := capLen - len(buf) - TagSize
	if pad < 0 {
		return nil, fmt.Errorf("packet: frame length %d too small for headers", p.FrameLen)
	}
	if p.Kind == KindControl {
		if len(p.Control)+2 > pad {
			return nil, fmt.Errorf("packet: control payload %d bytes exceeds frame room %d", len(p.Control), pad-2)
		}
		buf = append(buf, byte(len(p.Control)>>8), byte(len(p.Control)))
		buf = append(buf, p.Control...)
		pad -= 2 + len(p.Control)
	}
	buf = append(buf, make([]byte, pad)...)

	switch p.Kind {
	case KindInvalid:
		// Corrupt trailer: receivers must not mistake filler for data.
		var t [TagSize]byte
		buf = append(buf, t[:]...)
	case KindNoise:
		// Noise carries no Choir trailer semantics, but keep the bytes.
		buf = AppendTag(buf, p.Tag)
		buf[len(buf)-TagSize] ^= 0xFF // break the magic
	default:
		buf = AppendTag(buf, p.Tag)
	}
	return buf, nil
}

// ParseFrame reconstructs a Packet from captured frame bytes (FCS
// excluded). Frames without a valid trailer tag parse as noise.
func ParseFrame(b []byte) (*Packet, error) {
	eth, rest, err := ParseEthernet(b)
	if err != nil {
		return nil, err
	}
	if eth.EtherType != EtherTypeIPv4 {
		return nil, fmt.Errorf("packet: unsupported ethertype %#04x", eth.EtherType)
	}
	ip, rest, err := ParseIPv4(rest)
	if err != nil {
		return nil, err
	}
	p := &Packet{
		FrameLen: len(b) + FCSLen,
		Flow: FiveTuple{
			Src:   ip.Src,
			Dst:   ip.Dst,
			Proto: ip.Proto,
		},
	}
	switch ip.Proto {
	case ProtoUDP:
		udp, _, err := ParseUDP(rest)
		if err != nil {
			return nil, err
		}
		p.Flow.SrcPort, p.Flow.DstPort = udp.SrcPort, udp.DstPort
	case ProtoTCP:
		tcp, _, err := ParseTCP(rest)
		if err != nil {
			return nil, err
		}
		p.Flow.SrcPort, p.Flow.DstPort = tcp.SrcPort, tcp.DstPort
	default:
		return nil, errors.New("packet: unsupported transport protocol")
	}
	if tag, ok := ParseTag(b); ok {
		p.Tag = tag
		p.Kind = KindData
		if p.Flow.DstPort == ControlPort {
			p.Kind = KindControl
			if ctl, err := controlPayload(rest); err == nil {
				p.Control = ctl
			}
		}
	} else {
		p.Kind = KindNoise
	}
	return p, nil
}

// controlPayload recovers the length-prefixed command bytes from the
// transport payload of a control frame.
func controlPayload(transportRest []byte) ([]byte, error) {
	// transportRest begins at the UDP header (rest after IPv4).
	if len(transportRest) < UDPHeaderLen+2 {
		return nil, errors.New("packet: control frame too short")
	}
	body := transportRest[UDPHeaderLen:]
	n := int(body[0])<<8 | int(body[1])
	if len(body) < 2+n {
		return nil, errors.New("packet: control payload truncated")
	}
	return body[2 : 2+n], nil
}

// macFromIP derives the deterministic MAC the simulation assigns to the
// node owning the address.
func macFromIP(a IPv4) MAC {
	return MACForNode(uint16(a[2])<<8|uint16(a[3]), 0)
}
