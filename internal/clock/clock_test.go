package clock

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestTSCMonotonic(t *testing.T) {
	tsc := NewTSC(2.5e9, 3.2, 1000)
	last := uint64(0)
	for now := sim.Time(0); now < 10*sim.Microsecond; now += 7 {
		v := tsc.Read(now)
		if v < last {
			t.Fatalf("TSC went backwards at %v: %d < %d", now, v, last)
		}
		last = v
	}
}

func TestTSCReadAtZeroIsBase(t *testing.T) {
	tsc := NewTSC(3e9, 0, 12345)
	if got := tsc.Read(0); got != 12345 {
		t.Fatalf("Read(0) = %d, want base 12345", got)
	}
}

func TestTSCFrequency(t *testing.T) {
	tsc := NewTSC(2e9, 0, 0)
	// 2 GHz: 1 µs = 2000 cycles.
	if got := tsc.Read(sim.Microsecond); got != 2000 {
		t.Fatalf("Read(1µs) = %d, want 2000", got)
	}
	if got := tsc.CyclesIn(sim.Microsecond); got != 2000 {
		t.Fatalf("CyclesIn(1µs) = %d, want 2000", got)
	}
	if got := tsc.DurationOf(2000); got != sim.Microsecond {
		t.Fatalf("DurationOf(2000) = %v, want 1µs", got)
	}
}

func TestTSCPPMError(t *testing.T) {
	// +100 ppm: after 1 second the counter is 100µs worth of cycles ahead.
	tsc := NewTSC(1e9, 100, 0)
	got := tsc.Read(sim.Second)
	want := uint64(1e9 + 1e9*100/1e6)
	if got != want {
		t.Fatalf("Read(1s) = %d, want %d", got, want)
	}
	if tsc.ActualHz() <= tsc.ReportedHz() {
		t.Fatal("positive ppm should raise actual frequency")
	}
}

func TestTSCSimTimeAtInvertsRead(t *testing.T) {
	tsc := NewTSC(2.2e9, -4.7, 777)
	for _, now := range []sim.Time{0, 1, 283, 100_000, sim.Second / 3} {
		c := tsc.Read(now)
		back := tsc.SimTimeAt(c)
		// Rounding can move the inversion by at most one tick (~0.45ns).
		if diff := back - now; diff > 1 || diff < -1 {
			t.Fatalf("SimTimeAt(Read(%v)) = %v, off by %v", now, back, diff)
		}
		if tsc.Read(back) < c {
			t.Fatalf("Read(SimTimeAt(%d)) = %d < %d: target not reached", c, tsc.Read(back), c)
		}
	}
}

func TestTSCSimTimeAtBeforeBase(t *testing.T) {
	tsc := NewTSC(1e9, 0, 500)
	if got := tsc.SimTimeAt(100); got != 0 {
		t.Fatalf("SimTimeAt(pre-base) = %v, want 0", got)
	}
}

func TestTSCCyclesInNegative(t *testing.T) {
	tsc := NewTSC(1e9, 0, 0)
	if got := tsc.CyclesIn(-50); got != 0 {
		t.Fatalf("CyclesIn(-50) = %d, want 0", got)
	}
}

func TestTSCInvalidFrequencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTSC(0,...) did not panic")
		}
	}()
	NewTSC(0, 0, 0)
}

func TestQuickTSCRoundTrip(t *testing.T) {
	tsc := NewTSC(2.7e9, 1.5, 42)
	f := func(raw uint32) bool {
		d := sim.Duration(raw)
		c := tsc.CyclesIn(d)
		back := tsc.DurationOf(c)
		diff := back - d
		return diff <= 1 && diff >= -1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSystemClockWall(t *testing.T) {
	c := NewSystemClock(250)
	if got := c.Wall(1000); got != 1250 {
		t.Fatalf("Wall(1000) = %v, want 1250", got)
	}
	if got := c.SimTimeFor(1250); got != 1000 {
		t.Fatalf("SimTimeFor(1250) = %v, want 1000", got)
	}
	c.SetOffset(-10)
	if got := c.Offset(); got != -10 {
		t.Fatalf("Offset() = %v, want -10", got)
	}
}

func TestQuickSystemClockInverse(t *testing.T) {
	f := func(off int32, now uint32) bool {
		c := NewSystemClock(sim.Duration(off))
		n := sim.Time(now)
		return c.SimTimeFor(c.Wall(n)) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStartSyncAppliesResidual(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewSystemClock(1_000_000) // 1 ms off before first sync
	s := StartSync(e, c, SyncConfig{Interval: sim.Second, Residual: sim.Constant{V: 42}}, e.Rand("ptp"))
	e.RunUntil(0)
	if c.Offset() != 42 {
		t.Fatalf("offset after first sync = %v, want 42", c.Offset())
	}
	e.RunUntil(5 * sim.Second)
	if s.Syncs() != 6 { // t=0,1,2,3,4,5
		t.Fatalf("Syncs() = %d, want 6", s.Syncs())
	}
}

func TestSyncStop(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewSystemClock(0)
	s := StartSync(e, c, SyncConfig{Interval: sim.Second, Residual: sim.Constant{V: 7}}, e.Rand("ptp"))
	e.RunUntil(2 * sim.Second)
	s.Stop()
	before := s.Syncs()
	e.RunUntil(10 * sim.Second)
	if s.Syncs() != before {
		t.Fatalf("sync continued after Stop: %d -> %d", before, s.Syncs())
	}
}

func TestPTPResidualScale(t *testing.T) {
	// The paper's PTP setup synchronizes to within tens of nanoseconds;
	// check the default residual honours that scale.
	e := sim.NewEngine(2)
	c := NewSystemClock(0)
	StartSync(e, c, PTPDefault(), e.Rand("ptp"))
	maxAbs := 0.0
	for i := 0; i < 200; i++ {
		e.RunFor(sim.Second)
		if a := math.Abs(float64(c.Offset())); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		t.Fatal("PTP residual never nonzero")
	}
	if maxAbs > 100 {
		t.Fatalf("PTP residual %v ns exceeds the tens-of-ns claim", maxAbs)
	}
}

func TestNTPCoarserThanPTP(t *testing.T) {
	if NTPDefault().Residual.(sim.Normal).Sigma <= PTPDefault().Residual.(sim.Normal).Sigma {
		t.Fatal("NTP residual should be coarser than PTP")
	}
}

func TestStartSyncDefaults(t *testing.T) {
	e := sim.NewEngine(3)
	c := NewSystemClock(99)
	StartSync(e, c, SyncConfig{Interval: sim.Second}, e.Rand("x"))
	e.RunUntil(0)
	if c.Offset() != 0 {
		t.Fatalf("nil residual should sync perfectly; offset = %v", c.Offset())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	StartSync(e, c, SyncConfig{}, e.Rand("y"))
}
