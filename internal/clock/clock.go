// Package clock models the time sources Choir depends on: the CPU Time
// Stamp Counter (TSC) used for burst timestamping and replay pacing, and
// PTP/NTP-disciplined system clocks used to agree on replay start times
// across nodes.
//
// Simulated time (sim.Time) plays the role of "true" time; the PTP
// grandmaster is defined to be perfectly aligned with it. Every other
// clock exposes what *software on the node* would observe, including
// frequency error and synchronization residuals.
package clock

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sim"
)

// TSC is a per-CPU monotonically increasing cycle counter. Software knows
// a reported ("nominal") frequency; the hardware ticks at a slightly
// different actual frequency (the calibration error, in parts per
// million). Choir converts wall-clock deltas to cycle deltas using the
// reported frequency, so the ppm error shows up as replay start skew.
type TSC struct {
	reportedHz float64
	actualHz   float64
	base       uint64 // counter value at sim time 0
}

// NewTSC creates a counter with the given nominal frequency, calibration
// error in ppm (actual = reported * (1 + ppm/1e6)) and base value.
func NewTSC(reportedHz, errPPM float64, base uint64) *TSC {
	if reportedHz <= 0 {
		panic("clock: TSC frequency must be positive")
	}
	return &TSC{
		reportedHz: reportedHz,
		actualHz:   reportedHz * (1 + errPPM/1e6),
		base:       base,
	}
}

// ReportedHz returns the frequency software believes the counter runs at.
func (t *TSC) ReportedHz() float64 { return t.reportedHz }

// ActualHz returns the true tick rate.
func (t *TSC) ActualHz() float64 { return t.actualHz }

// Read returns the counter value at simulated time now. This is what a
// RDTSC instruction would return.
func (t *TSC) Read(now sim.Time) uint64 {
	return t.base + uint64(math.Round(float64(now)*t.actualHz/1e9))
}

// SimTimeAt returns the earliest simulated time at which Read reaches
// cycles. Values before the base map to time 0.
func (t *TSC) SimTimeAt(cycles uint64) sim.Time {
	if cycles <= t.base {
		return 0
	}
	return sim.Time(math.Ceil(float64(cycles-t.base) * 1e9 / t.actualHz))
}

// CyclesIn converts a duration to cycles the way node software would:
// using the reported frequency. The calibration error between reported
// and actual frequency is exactly the replay-start skew the paper's
// TSC-delta scheme is exposed to.
func (t *TSC) CyclesIn(d sim.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	return uint64(math.Round(float64(d) * t.reportedHz / 1e9))
}

// DurationOf converts cycles back to nanoseconds using the reported
// frequency (software view).
func (t *TSC) DurationOf(cycles uint64) sim.Duration {
	return sim.Duration(math.Round(float64(cycles) * 1e9 / t.reportedHz))
}

// WithSkew returns a copy of the counter whose actual frequency is
// scaled by an additional (1 + extraPPM/1e6) — a fault-injected
// miscalibration on top of whatever error the counter already carries.
// The reported frequency is unchanged: software still converts with the
// nominal rate, so the extra ppm surfaces exactly as replay-start skew.
func (t *TSC) WithSkew(extraPPM float64) *TSC {
	return &TSC{
		reportedHz: t.reportedHz,
		actualHz:   t.actualHz * (1 + extraPPM/1e6),
		base:       t.base,
	}
}

// SystemClock is a settable wall clock: wall = sim time + offset. The
// grandmaster has offset 0 by definition; synchronized clients have a
// small residual offset that a sync process refreshes periodically.
type SystemClock struct {
	offset sim.Duration
}

// NewSystemClock creates a clock with the given initial offset from true
// time.
func NewSystemClock(initialOffset sim.Duration) *SystemClock {
	return &SystemClock{offset: initialOffset}
}

// Wall returns the wall-clock reading at simulated time now.
func (c *SystemClock) Wall(now sim.Time) sim.Time { return now + c.offset }

// SimTimeFor maps a wall-clock instant back to simulated time under the
// current offset — the instant at which a thread polling the clock would
// observe the wall time wall.
func (c *SystemClock) SimTimeFor(wall sim.Time) sim.Time { return wall - c.offset }

// Offset returns the current offset from true time.
func (c *SystemClock) Offset() sim.Duration { return c.offset }

// SetOffset overrides the offset (used by sync processes and tests).
func (c *SystemClock) SetOffset(o sim.Duration) { c.offset = o }

// SyncConfig describes a clock-synchronization discipline. Residual is
// the post-sync offset distribution: tens of nanoseconds for PTP with
// hardware timestamping (FABRIC's ptp_kvm path), hundreds of microseconds
// for plain NTP.
type SyncConfig struct {
	// Interval between synchronization adjustments.
	Interval sim.Duration
	// Residual offset after each adjustment.
	Residual sim.Dist
}

// Jittered returns a copy of the discipline whose residual is widened
// by the extra noise term — the fault layer's handle for degrading a
// clean PTP sync into a lossy one without touching its cadence.
func (c SyncConfig) Jittered(extra sim.Dist) SyncConfig {
	if extra == nil {
		return c
	}
	base := c.Residual
	if base == nil {
		base = sim.Zero
	}
	c.Residual = sim.Sum{A: base, B: extra}
	return c
}

// PTPDefault mirrors the sub-microsecond ptp_kvm + NIC sync the paper
// relies on: residual within tens of nanoseconds, refreshed every second.
func PTPDefault() SyncConfig {
	return SyncConfig{
		Interval: sim.Second,
		Residual: sim.Normal{Mu: 0, Sigma: 15},
	}
}

// NTPDefault mirrors a stratum-1 LAN NTP client: residual on the order of
// tens of microseconds.
func NTPDefault() SyncConfig {
	return SyncConfig{
		Interval: 16 * sim.Second,
		Residual: sim.Normal{Mu: 0, Sigma: 20_000},
	}
}

// Synchronizer periodically disciplines a SystemClock toward the
// grandmaster. Create with StartSync.
type Synchronizer struct {
	cfg     SyncConfig
	clock   *SystemClock
	rng     *rand.Rand
	stopped bool
	syncs   uint64
}

// StartSync performs an immediate synchronization and schedules periodic
// refreshes on the engine. It returns the Synchronizer, whose Stop method
// halts future adjustments.
func StartSync(e *sim.Engine, c *SystemClock, cfg SyncConfig, rng *rand.Rand) *Synchronizer {
	if cfg.Interval <= 0 {
		panic("clock: sync interval must be positive")
	}
	if cfg.Residual == nil {
		cfg.Residual = sim.Zero
	}
	s := &Synchronizer{cfg: cfg, clock: c, rng: rng}
	a := e.NewActor()
	var tick func()
	tick = func() {
		if s.stopped {
			return
		}
		c.SetOffset(cfg.Residual.Sample(rng))
		s.syncs++
		a.PostAfter(cfg.Interval, tick)
	}
	a.PostAfter(0, tick)
	return s
}

// Stop halts future synchronizations; the current offset is retained.
func (s *Synchronizer) Stop() { s.stopped = true }

// Syncs returns how many adjustments have been applied.
func (s *Synchronizer) Syncs() uint64 { return s.syncs }

// String describes the sync discipline.
func (s *Synchronizer) String() string {
	return fmt.Sprintf("sync(every %v, residual %v)", s.cfg.Interval, s.cfg.Residual)
}
