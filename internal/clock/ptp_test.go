package clock

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestExchangePerfectPathsSyncExactly(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewSystemClock(5 * sim.Millisecond) // badly off before sync
	cfg := ExchangeConfig{
		PathDelay:  sim.Constant{V: 800},
		Asymmetry:  sim.Constant{V: 0},
		StampError: sim.Constant{V: 0},
	}
	p := StartExchange(e, c, cfg, e.Rand("ptp"))
	e.RunUntil(0)
	if c.Offset() != 0 {
		t.Fatalf("symmetric exchange left offset %v, want 0", c.Offset())
	}
	if p.Rounds() != 1 {
		t.Fatalf("Rounds = %d", p.Rounds())
	}
}

func TestExchangeAsymmetryLeavesHalfResidual(t *testing.T) {
	e := sim.NewEngine(2)
	c := NewSystemClock(0)
	cfg := ExchangeConfig{
		PathDelay:  sim.Constant{V: 500},
		Asymmetry:  sim.Constant{V: 100}, // master→slave 100ns slower
		StampError: sim.Constant{V: 0},
	}
	StartExchange(e, c, cfg, e.Rand("ptp"))
	e.RunUntil(0)
	// offset estimate = trueOffset + asym/2 → post-step offset = -50.
	if got := c.Offset(); got != -50 {
		t.Fatalf("asymmetric exchange offset %v, want -50", got)
	}
}

func TestExchangeResidualScaleMatchesPaper(t *testing.T) {
	// The paper's setup synchronizes "to within 10s of nanoseconds";
	// the default exchange noise must land in that regime.
	e := sim.NewEngine(3)
	c := NewSystemClock(123_456)
	StartExchange(e, c, ExchangeConfig{}, e.Rand("ptp"))
	var sumAbs float64
	const rounds = 300
	for i := 0; i < rounds; i++ {
		e.RunFor(sim.Second)
		sumAbs += math.Abs(float64(c.Offset()))
	}
	mean := sumAbs / rounds
	if mean == 0 {
		t.Fatal("exchange left no residual at all (noise not applied)")
	}
	if mean > 80 {
		t.Fatalf("mean residual %.1f ns exceeds the tens-of-ns regime", mean)
	}
}

func TestExchangeStop(t *testing.T) {
	e := sim.NewEngine(4)
	c := NewSystemClock(0)
	p := StartExchange(e, c, ExchangeConfig{}, e.Rand("ptp"))
	e.RunUntil(3 * sim.Second)
	p.Stop()
	before := p.Rounds()
	e.RunUntil(10 * sim.Second)
	if p.Rounds() != before {
		t.Fatal("exchange continued after Stop")
	}
}

func TestExchangeDefaults(t *testing.T) {
	cfg := ExchangeConfig{}.defaults()
	if cfg.Interval != sim.Second || cfg.PathDelay == nil || cfg.Asymmetry == nil || cfg.StampError == nil {
		t.Fatalf("defaults incomplete: %+v", cfg)
	}
}
