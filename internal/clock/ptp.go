package clock

import (
	"math/rand"

	"repro/internal/sim"
)

// This file models the actual IEEE 1588 two-step exchange (paper §2.2)
// instead of an abstract residual: the client's post-sync offset
// *emerges* from path-delay asymmetry and timestamping noise, exactly
// the two error sources a real ptp_kvm + NIC chain has.
//
//	master            client
//	  t1 --- Sync ----> t2        (follow-up carries precise t1)
//	  t4 <-- DelayReq - t3
//
//	offset = ((t2 − t1) − (t4 − t3)) / 2
//
// With symmetric paths the estimate is exact; asymmetry ε shifts it by
// ε/2, which is precisely the residual that survives synchronization.

// ExchangeConfig parameterizes a two-step PTP client.
type ExchangeConfig struct {
	// Interval between Sync messages (default 1 s).
	Interval sim.Duration
	// PathDelay is the one-way network delay, sampled per message.
	PathDelay sim.Dist
	// Asymmetry is extra delay added only to the master→client
	// direction (queueing imbalance); its half shows up as residual
	// offset.
	Asymmetry sim.Dist
	// StampError is per-timestamp hardware quantization noise.
	StampError sim.Dist
}

func (c ExchangeConfig) defaults() ExchangeConfig {
	if c.Interval <= 0 {
		c.Interval = sim.Second
	}
	if c.PathDelay == nil {
		c.PathDelay = sim.Constant{V: 500}
	}
	if c.Asymmetry == nil {
		c.Asymmetry = sim.Normal{Mu: 0, Sigma: 20}
	}
	if c.StampError == nil {
		c.StampError = sim.Uniform{Lo: -4, Hi: 4}
	}
	return c
}

// PTPClient disciplines a SystemClock against the grandmaster (true
// simulated time) through explicit message exchanges.
type PTPClient struct {
	cfg     ExchangeConfig
	clock   *SystemClock
	rng     *rand.Rand
	stopped bool
	rounds  uint64
}

// StartExchange begins the periodic two-step exchange on the engine.
func StartExchange(e *sim.Engine, c *SystemClock, cfg ExchangeConfig, rng *rand.Rand) *PTPClient {
	p := &PTPClient{cfg: cfg.defaults(), clock: c, rng: rng}
	a := e.NewActor()
	var round func()
	round = func() {
		if p.stopped {
			return
		}
		p.exchange(a.Now())
		p.rounds++
		a.PostAfter(p.cfg.Interval, round)
	}
	a.PostAfter(0, round)
	return p
}

// exchange performs one Sync/Delay-Req round at true time now and steps
// the clock by the estimated offset.
func (p *PTPClient) exchange(now sim.Time) {
	sampleD := func() sim.Duration {
		d := p.cfg.PathDelay.Sample(p.rng)
		if d < 0 {
			d = 0
		}
		return d
	}
	stampErr := func() sim.Duration { return p.cfg.StampError.Sample(p.rng) }

	trueOffset := p.clock.Offset()
	dMS := sampleD() + p.cfg.Asymmetry.Sample(p.rng) // master → slave
	dSM := sampleD()                                 // slave → master
	if dMS < 0 {
		dMS = 0
	}

	// All timestamps in each side's own clock. The master is the
	// grandmaster: its clock equals true time.
	t1 := now + stampErr()
	t2 := now + dMS + trueOffset + stampErr() // client stamps in its clock
	t3 := now + dMS + 1000 + trueOffset + stampErr()
	t4 := now + dMS + 1000 + dSM + stampErr() // master stamps in true time

	est := ((t2 - t1) - (t4 - t3)) / 2
	p.clock.SetOffset(trueOffset - est)
}

// Rounds returns completed exchanges.
func (p *PTPClient) Rounds() uint64 { return p.rounds }

// Stop halts further exchanges.
func (p *PTPClient) Stop() { p.stopped = true }
