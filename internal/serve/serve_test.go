package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/fault"
	"repro/internal/fault/harness"
	"repro/internal/pcap"
	"repro/internal/sim"
	"repro/internal/stream"
)

// writePair materializes the canonical fixture pair: a clean baseline
// and a fault-perturbed copy (drops, dups, reorders, jitter).
func writePair(t *testing.T, dir string) (pathA, pathB string) {
	t.Helper()
	base := harness.Baseline("A", 3000, 41)
	plan := fault.Plan{Seed: 42, Drop: 0.04, Dup: 0.02, Reorder: 0.05, Jitter: 300}
	perturbed := plan.Apply(base)
	perturbed.Name = "B"
	pathA = filepath.Join(dir, "runA.pcap")
	pathB = filepath.Join(dir, "runB.pcap")
	if err := pcap.WriteFile(pathA, base, 0); err != nil {
		t.Fatal(err)
	}
	if err := pcap.WriteFile(pathB, perturbed, 0); err != nil {
		t.Fatal(err)
	}
	return pathA, pathB
}

// startServer builds a Server over a state dir plus an httptest front.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postUpload POSTs a multipart pair and returns the raw response.
func postUpload(t *testing.T, base, query, pathA, pathB string) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for _, p := range []struct{ field, path string }{{"a", pathA}, {"b", pathB}} {
		fw, err := mw.CreateFormFile(p.field, filepath.Base(p.path))
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(p.path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	url := base + "/v1/sessions"
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Post(url, mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

// mustUpload asserts 202 and returns the session view.
func mustUpload(t *testing.T, base, query, pathA, pathB string) sessionView {
	t.Helper()
	resp, body := postUpload(t, base, query, pathA, pathB)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload: status %d, body %s", resp.StatusCode, body)
	}
	var v sessionView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("upload response: %v (%s)", err, body)
	}
	return v
}

// pollResult polls until the session serves a 200 result (or fails).
func pollResult(t *testing.T, base, id string) ([]byte, *Result) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/sessions/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var res Result
			if err := json.Unmarshal(body, &res); err != nil {
				t.Fatalf("result JSON: %v", err)
			}
			return body, &res
		case http.StatusAccepted:
			if time.Now().After(deadline) {
				t.Fatalf("session %s did not finish: %s", id, body)
			}
			time.Sleep(10 * time.Millisecond)
		default:
			t.Fatalf("session %s: status %d, body %s", id, resp.StatusCode, body)
		}
	}
}

// TestServedKappaMatchesStream is the core differential: the service's
// windowed result must equal a direct internal/stream run over the same
// files with the same engine shape.
func TestServedKappaMatchesStream(t *testing.T) {
	pathA, pathB := writePair(t, t.TempDir())
	s, ts := startServer(t, Config{Window: 100 * sim.Microsecond})
	v := mustUpload(t, ts.URL, "tenant=diff", pathA, pathB)
	_, res := pollResult(t, ts.URL, v.ID)

	srcA, err := pcap.OpenStream(pathA)
	if err != nil {
		t.Fatal(err)
	}
	defer srcA.Close()
	srcB, err := pcap.OpenStream(pathB)
	if err != nil {
		t.Fatal(err)
	}
	defer srcB.Close()
	sum, err := stream.Run(srcA, srcB, stream.Config{
		Window: 100 * sim.Microsecond,
		Shards: s.cfg.Shards, Buffer: s.cfg.Buffer, MaxLag: s.cfg.MaxLag,
		DataOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	want := AggregateRow{
		U: sum.Aggregate.U, O: sum.Aggregate.O, L: sum.Aggregate.L, I: sum.Aggregate.I,
		Kappa: sum.Aggregate.Kappa, MeanKappa: sum.Aggregate.MeanKappa,
		Windows: sum.Aggregate.Windows,
		Common:  sum.Aggregate.Common, OnlyA: sum.Aggregate.OnlyA, OnlyB: sum.Aggregate.OnlyB,
	}
	if res.Aggregate != want {
		t.Fatalf("served aggregate %+v != stream aggregate %+v", res.Aggregate, want)
	}
	if len(res.Windows) != len(sum.Windows) {
		t.Fatalf("served %d window rows, stream produced %d", len(res.Windows), len(sum.Windows))
	}
	for i, w := range sum.Windows {
		if got, want := res.Windows[i], windowRow(w); got != want {
			t.Fatalf("window %d: served %+v != stream %+v", i, got, want)
		}
	}
	if res.PacketsA != sum.PacketsA || res.PacketsB != sum.PacketsB {
		t.Fatalf("packet counts (%d,%d) != (%d,%d)", res.PacketsA, res.PacketsB, sum.PacketsA, sum.PacketsB)
	}
	if res.Aggregate.Windows < 2 {
		t.Fatalf("fixture produced %d windows; want ≥ 2 for a meaningful test", res.Aggregate.Windows)
	}
}

// TestServedConsistencyReportMatchesCLI: the format=consistency body
// must be byte-identical to what internal/consistency (and therefore
// cmd/consistency) renders for the served session's spool pair.
func TestServedConsistencyReportMatchesCLI(t *testing.T) {
	pathA, pathB := writePair(t, t.TempDir())
	_, ts := startServer(t, Config{})
	v := mustUpload(t, ts.URL, "", pathA, pathB)
	pollResult(t, ts.URL, v.ID)

	resp, err := http.Get(ts.URL + "/v1/sessions/" + v.ID + "/result?format=consistency")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, served)
	}

	// Render offline from the uploads with the served display names —
	// the exact code path cmd/consistency's run() uses.
	var want bytes.Buffer
	err = consistency.Report(&want,
		consistency.Input{Path: pathA, Name: "runA.pcap"},
		consistency.Input{Path: pathB, Name: "runB.pcap"},
		consistency.Options{WithinNs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want.Bytes()) {
		t.Fatalf("served consistency report differs from offline render:\n--- served ---\n%s\n--- offline ---\n%s", served, want.Bytes())
	}
}

// TestLiveTapsMatchUpload: a live-tap session over the same bytes must
// produce the same aggregate as an upload session.
func TestLiveTapsMatchUpload(t *testing.T) {
	pathA, pathB := writePair(t, t.TempDir())
	_, ts := startServer(t, Config{Window: 100 * sim.Microsecond})

	up := mustUpload(t, ts.URL, "tenant=up", pathA, pathB)
	_, wantRes := pollResult(t, ts.URL, up.ID)

	resp, err := http.Post(ts.URL+"/v1/sessions?tenant=live&mode=live&a=runA.pcap&b=runB.pcap", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("live create: status %d, body %s", resp.StatusCode, body)
	}
	var lv sessionView
	if err := json.Unmarshal(body, &lv); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for side, path := range map[string]string{"a": pathA, "b": pathB} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(ts.URL+"/v1/sessions/"+lv.ID+"/tap/"+side, "application/octet-stream", bytes.NewReader(data))
			if err != nil {
				t.Error(err)
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("tap %s: status %d, body %s", side, resp.StatusCode, b)
			}
		}()
	}
	wg.Wait()
	_, liveRes := pollResult(t, ts.URL, lv.ID)

	if liveRes.Aggregate != wantRes.Aggregate {
		t.Fatalf("live aggregate %+v != upload aggregate %+v", liveRes.Aggregate, wantRes.Aggregate)
	}
	if !reflect.DeepEqual(liveRes.Windows, wantRes.Windows) {
		t.Fatalf("live windows differ from upload windows")
	}
	// A second tap connect on a used side must conflict.
	resp2, err := http.Post(ts.URL+"/v1/sessions/"+lv.ID+"/tap/a", "application/octet-stream", bytes.NewReader([]byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("tap reconnect: status %d, want 409", resp2.StatusCode)
	}
}

// TestLoadShedding drives the service into its budgets with a stall
// storm pinning the running session, and checks 429 + Retry-After (and
// 413 for never-admissible requests) instead of budget overrun.
func TestLoadShedding(t *testing.T) {
	dir := t.TempDir()
	pathA, pathB := writePair(t, dir)
	sz := func(p string) int64 {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	pair := sz(pathA) + sz(pathB)

	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()

	// Budget fits two sessions' multipart bodies but not three; one
	// worker, and the stall hook pins the first comparison mid-run.
	s, ts := startServer(t, Config{
		GlobalBudget: 3 * pair,
		TenantBudget: 3 * pair,
		MaxUpload:    2 * pair,
		Workers:      1,
		MaxSessions:  2,
		Stall:        func(stage string, id int) { <-gate },
	})

	v1 := mustUpload(t, ts.URL, "tenant=shed", pathA, pathB) // running, pinned by stall
	v2 := mustUpload(t, ts.URL, "tenant=shed", pathA, pathB) // queued

	// Third session: MaxSessions exhausted → 429 with Retry-After.
	resp, body := postUpload(t, ts.URL, "tenant=shed", pathA, pathB)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload POST: status %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	// The reservation ledger never exceeded the budget.
	if used, ok := s.cfg.Obs.Registry().GaugeValue("choird_budget_used_bytes"); !ok || used > float64(3*pair) {
		t.Fatalf("budget used %v (ok=%v) exceeds global budget %d", used, ok, 3*pair)
	}
	if shed := s.adm.tenants["shed"].cShed.Value(); shed < 1 {
		t.Fatalf("shed counter = %d, want ≥ 1", shed)
	}

	// A request that could never fit sheds permanently with 413.
	respBig, err := http.Post(ts.URL+"/v1/sessions?tenant=shed&mode=live&bytes=999999999999", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, respBig.Body)
	respBig.Body.Close()
	if respBig.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized POST: status %d, want 413", respBig.StatusCode)
	}

	// Release the storm: both admitted sessions finish and budget
	// returns to zero, after which admission opens again.
	release()
	pollResult(t, ts.URL, v1.ID)
	pollResult(t, ts.URL, v2.ID)
	waitFor(t, 5*time.Second, func() bool {
		used, ok := s.cfg.Obs.Registry().GaugeValue("choird_budget_used_bytes")
		return ok && used == 0
	}, "budget not released after sessions finished")
	v4 := mustUpload(t, ts.URL, "tenant=shed", pathA, pathB)
	pollResult(t, ts.URL, v4.ID)
}

// sameScore asserts two results are bit-identical in everything except
// the memory high-water marks, which depend on goroutine scheduling (the
// stream package documents Stats as diagnostics, not scores).
func sameScore(t *testing.T, label string, got, want *Result) {
	t.Helper()
	g, w := *got, *want
	g.PeakShardEntries, g.PeakOpenWindows = 0, 0
	w.PeakShardEntries, w.PeakOpenWindows = 0, 0
	if !reflect.DeepEqual(&g, &w) {
		gj, _ := json.MarshalIndent(&g, "", " ")
		wj, _ := json.MarshalIndent(&w, "", " ")
		t.Fatalf("%s:\n--- got ---\n%s\n--- want ---\n%s", label, gj, wj)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStallStormBitIdentical: a fault-plan stall storm perturbs
// scheduling, never results.
func TestStallStormBitIdentical(t *testing.T) {
	pathA, pathB := writePair(t, t.TempDir())
	run := func(stall func(string, int)) *Result {
		_, ts := startServer(t, Config{Window: 100 * sim.Microsecond, Stall: stall})
		v := mustUpload(t, ts.URL, "tenant=storm", pathA, pathB)
		_, res := pollResult(t, ts.URL, v.ID)
		return res
	}
	calm := run(nil)
	plan := fault.Plan{Seed: 7, Stall: fault.StallPlan{Rate: 0.7, Yields: 3}}
	stormy := run(plan.StallHook())
	sameScore(t, "stall storm changed the result", stormy, calm)
}

// TestDrainResume is the crash-consistency differential: a session
// admitted (journaled) but interrupted mid-flight must, after a daemon
// restart over the same state dir, complete with a result byte-identical
// to an uninterrupted run — and a further restart must serve the
// recorded result without re-running.
func TestDrainResume(t *testing.T) {
	fixDir := t.TempDir()
	pathA, pathB := writePair(t, fixDir)
	stateDir := t.TempDir()

	// Reference: uninterrupted run on a fresh server (fresh state dir,
	// same seed/tenant → same session identity and derived seed).
	_, tsRef := startServer(t, Config{Seed: 99, Window: 100 * sim.Microsecond})
	vRef := mustUpload(t, tsRef.URL, "tenant=crash", pathA, pathB)
	_, refRes := pollResult(t, tsRef.URL, vRef.ID)

	// Server 1: pause dispatch, admit the session, then drain — the
	// session is journaled as started but never ran.
	s1, ts1 := startServer(t, Config{Dir: stateDir, Seed: 99, Window: 100 * sim.Microsecond})
	s1.Pause()
	v1 := mustUpload(t, ts1.URL, "tenant=crash", pathA, pathB)
	if v1.ID != vRef.ID || v1.Seed != vRef.Seed {
		t.Fatalf("identity mismatch: interrupted (%s, %d) vs reference (%s, %d)", v1.ID, v1.Seed, vRef.ID, vRef.Seed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Draining servers refuse new sessions.
	resp, _ := postUpload(t, ts1.URL, "tenant=crash", pathA, pathB)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain POST: status %d, want 503", resp.StatusCode)
	}
	ts1.Close()

	// Server 2: replays the journal, re-queues, re-runs.
	_, ts2 := startServer(t, Config{Dir: stateDir, Seed: 99, Window: 100 * sim.Microsecond})
	gotJSON, gotRes := pollResult(t, ts2.URL, v1.ID)
	sameScore(t, "resumed result differs from uninterrupted run", gotRes, refRes)

	// Server 3: the session is terminal in the journal now; a restart
	// serves the recorded result immediately, byte-for-byte.
	ts2.Close()
	_, ts3 := startServer(t, Config{Dir: stateDir, Seed: 99, Window: 100 * sim.Microsecond})
	resp3, err := http.Get(ts3.URL + "/v1/sessions/" + v1.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	replayJSON, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("replayed result: status %d (journal should already hold it)", resp3.StatusCode)
	}
	// The journal replay serves the *recorded* result: byte-for-byte
	// what server 2 computed, peaks and all.
	if !bytes.Equal(replayJSON, gotJSON) {
		t.Fatalf("journal-replayed result differs from the recorded one:\n--- replayed ---\n%s\n--- recorded ---\n%s", replayJSON, gotJSON)
	}
}

// TestKillMidSessionResume interrupts a *running* comparison (pinned by
// a stall gate) with an expiring drain, then resumes it on a second
// server — exercising the torn-lifecycle path: start record present,
// done record absent.
func TestKillMidSessionResume(t *testing.T) {
	fixDir := t.TempDir()
	pathA, pathB := writePair(t, fixDir)
	stateDir := t.TempDir()

	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()

	s1, ts1 := startServer(t, Config{
		Dir: stateDir, Seed: 5, Window: 100 * sim.Microsecond,
		Workers: 1,
		Stall:   func(string, int) { <-gate },
	})
	v1 := mustUpload(t, ts1.URL, "tenant=kill", pathA, pathB)
	waitFor(t, 5*time.Second, func() bool {
		return s1.reg.get(v1.ID).StateNow() == StateRunning
	}, "session never started running")

	// Drain cannot finish while the engine is pinned: the context
	// expires, mimicking SIGKILL-after-timeout. Journals close; the
	// session's lifecycle stays torn (start without done).
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s1.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain error = %v, want deadline exceeded", err)
	}
	ts1.Close()
	release() // let the abandoned engine unwind (its journal append is refused)

	// Server 2 re-runs the torn session from its spools.
	_, ts2 := startServer(t, Config{Dir: stateDir, Seed: 5, Window: 100 * sim.Microsecond})
	_, got := pollResult(t, ts2.URL, v1.ID)

	// Reference from a clean server.
	_, tsRef := startServer(t, Config{Seed: 5, Window: 100 * sim.Microsecond})
	vRef := mustUpload(t, tsRef.URL, "tenant=kill", pathA, pathB)
	_, refRes := pollResult(t, tsRef.URL, vRef.ID)
	sameScore(t, "kill-resumed result differs from clean run", got, refRes)
	if got.Aggregate.Windows == 0 {
		t.Fatal("resumed result scored no windows")
	}
}

// TestAdmissionLedger exercises the byte/session accounting directly.
func TestAdmissionLedger(t *testing.T) {
	s, _ := startServer(t, Config{GlobalBudget: 1000, TenantBudget: 600, MaxSessions: 10})
	a := s.adm

	rel1, _, err := a.admit("t1", 400)
	if err != nil {
		t.Fatal(err)
	}
	// Tenant budget: t1 has 200 left.
	if _, _, err := a.admit("t1", 300); !errors.Is(err, ErrBusy) {
		t.Fatalf("tenant overrun: err = %v, want ErrBusy", err)
	}
	// Another tenant still fits under the global budget.
	rel2, _, err := a.admit("t2", 500)
	if err != nil {
		t.Fatal(err)
	}
	// Global budget: 900 reserved, 100 left.
	if _, _, err := a.admit("t3", 200); !errors.Is(err, ErrBusy) {
		t.Fatalf("global overrun: err = %v, want ErrBusy", err)
	}
	// Never admissible regardless of current load.
	if _, _, err := a.admit("t3", 700); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized: err = %v, want ErrTooLarge", err)
	}
	rel1()
	rel1() // idempotent
	rel2()
	if used, _ := s.cfg.Obs.Registry().GaugeValue("choird_budget_used_bytes"); used != 0 {
		t.Fatalf("used = %v after all releases, want 0", used)
	}
	if a.sessionCount() != 0 {
		t.Fatalf("sessionCount = %d, want 0", a.sessionCount())
	}
	// Session-count ceiling.
	s2, _ := startServer(t, Config{MaxSessions: 1})
	relA, _, err := s2.adm.admit("x", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.adm.admit("x", 10); !errors.Is(err, ErrBusy) {
		t.Fatalf("session ceiling: err = %v, want ErrBusy", err)
	}
	relA()
	if _, _, err := s2.adm.admit("x", 10); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestDeriveSeed: stable, and distinct across tenants and sequences.
func TestDeriveSeed(t *testing.T) {
	if deriveSeed(1, "a", 1) != deriveSeed(1, "a", 1) {
		t.Fatal("seed not deterministic")
	}
	seen := map[uint64]string{}
	for _, tenant := range []string{"a", "b", "ab"} {
		for seq := uint64(1); seq <= 100; seq++ {
			k := deriveSeed(7, tenant, seq)
			if prev, dup := seen[k]; dup {
				t.Fatalf("seed collision: %s/%d with %s", tenant, seq, prev)
			}
			seen[k] = fmt.Sprintf("%s/%d", tenant, seq)
		}
	}
}

// TestTenantValidation rejects path-hostile tenant names.
func TestTenantValidation(t *testing.T) {
	_, ts := startServer(t, Config{})
	for _, bad := range []string{"..", "a/b", ".hidden", "x+y", "-lead"} {
		resp, err := http.Post(ts.URL+"/v1/sessions?tenant="+bad+"&mode=live", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("tenant %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
