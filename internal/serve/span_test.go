package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// httpGet fetches a URL and returns status + body.
func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, body
}

// fetchFormat fetches a finished session's result in one render format.
func fetchFormat(t *testing.T, base, id, format string) []byte {
	t.Helper()
	code, body := httpGet(t, base+"/v1/sessions/"+id+"/result?format="+format)
	if code != http.StatusOK {
		t.Fatalf("result format=%s: status %d, body %s", format, code, body)
	}
	return body
}

// metricFamily mirrors obs.FamilySnapshot for the JSON endpoints.
type metricFamily struct {
	Name   string `json:"name"`
	Series []struct {
		Labels       map[string]string `json:"labels"`
		ExemplarSpan string            `json:"exemplar_span"`
	} `json:"series"`
}

// traceEventNames parses a Chrome trace_event body and tallies complete
// ('X') span events by name.
func traceEventNames(t *testing.T, body []byte) map[string]int {
	t.Helper()
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("trace JSON: %v\n%s", err, body)
	}
	counts := map[string]int{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			counts[ev.Name]++
		}
	}
	return counts
}

// TestServeSpanDifferential is the bit-replay gate for the tracing
// layer at the service boundary: two daemons over the same pair and
// seed, spans on vs off, must serve byte-identical results in every
// render format. Spans observe the serving path; they must never steer
// it.
func TestServeSpanDifferential(t *testing.T) {
	pathA, pathB := writePair(t, t.TempDir())

	_, tsOn := startServer(t, Config{Seed: 7, Spans: true})
	_, tsOff := startServer(t, Config{Seed: 7, Spans: false})

	vOn := mustUpload(t, tsOn.URL, "tenant=diff", pathA, pathB)
	vOff := mustUpload(t, tsOff.URL, "tenant=diff", pathA, pathB)
	bodyOn, _ := pollResult(t, tsOn.URL, vOn.ID)
	bodyOff, _ := pollResult(t, tsOff.URL, vOff.ID)

	if string(bodyOn) != string(bodyOff) {
		t.Fatalf("result JSON differs spans on vs off:\n--- on ---\n%s\n--- off ---\n%s", bodyOn, bodyOff)
	}
	for _, format := range []string{"windows", "consistency"} {
		on := fetchFormat(t, tsOn.URL, vOn.ID, format)
		off := fetchFormat(t, tsOff.URL, vOff.ID, format)
		if string(on) != string(off) {
			t.Fatalf("format=%s differs spans on vs off:\n--- on ---\n%s\n--- off ---\n%s", format, on, off)
		}
	}

	// The spans-off daemon must refuse the trace endpoint, not serve an
	// empty tree.
	code, body := httpGet(t, tsOff.URL+"/v1/sessions/"+vOff.ID+"/trace")
	if code != http.StatusNotFound || !strings.Contains(string(body), "disabled") {
		t.Fatalf("spans-off trace: status %d, body %s", code, body)
	}
}

// TestSessionTraceEndpoint: a completed upload session's trace must
// contain the full serving path — admission, both spool parts, WAL
// appends, the compare stage with the engine tree nested under it, and
// a render span for the result fetch.
func TestSessionTraceEndpoint(t *testing.T) {
	pathA, pathB := writePair(t, t.TempDir())
	_, ts := startServer(t, Config{Seed: 7, Spans: true, Shards: 2})

	v := mustUpload(t, ts.URL, "tenant=trace", pathA, pathB)
	pollResult(t, ts.URL, v.ID)
	fetchFormat(t, ts.URL, v.ID, "consistency") // creates the render span

	code, body := httpGet(t, ts.URL+"/v1/sessions/"+v.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: status %d, body %s", code, body)
	}
	counts := traceEventNames(t, body)
	if counts["session"] != 1 {
		t.Fatalf("want exactly one session root, got %v", counts)
	}
	if counts["admission"] != 1 || counts["spool"] != 2 || counts["wal"] < 2 {
		t.Fatalf("serving-path spans incomplete: %v", counts)
	}
	if counts["compare"] != 1 || counts["ingest"] != 2 || counts["shard"] != 2 || counts["merge"] != 1 || counts["watermark"] < 1 {
		t.Fatalf("engine spans incomplete: %v", counts)
	}
	if counts["render"] < 1 {
		t.Fatalf("render span missing after result fetch: %v", counts)
	}

	if code, _ := httpGet(t, ts.URL+"/v1/sessions/no-such-000001/trace"); code != http.StatusNotFound {
		t.Fatalf("unknown session trace: status %d", code)
	}
}

// TestSessionMetricsEndpoint: the per-session registry is scrapeable in
// both formats, and the JSON snapshot carries the merge span's ID as
// the κ gauge's exemplar.
func TestSessionMetricsEndpoint(t *testing.T) {
	pathA, pathB := writePair(t, t.TempDir())
	_, ts := startServer(t, Config{Seed: 7, Spans: true})

	v := mustUpload(t, ts.URL, "tenant=met", pathA, pathB)
	pollResult(t, ts.URL, v.ID)

	code, body := httpGet(t, ts.URL+"/v1/sessions/"+v.ID+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), "stream_running_kappa") {
		t.Fatalf("session metrics: status %d, body %s", code, body)
	}
	code, body = httpGet(t, ts.URL+"/v1/sessions/"+v.ID+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("session metrics json: status %d", code)
	}
	var snap []metricFamily
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, body)
	}
	found := false
	for _, f := range snap {
		if f.Name != "stream_running_kappa" {
			continue
		}
		found = true
		if len(f.Series) == 0 || f.Series[0].ExemplarSpan == "" {
			t.Fatalf("stream_running_kappa has no exemplar span: %s", body)
		}
	}
	if !found {
		t.Fatalf("stream_running_kappa not in session snapshot: %s", body)
	}
}

// TestFleetObsSeries: the fleet registry aggregates the span layer —
// obs_trace_dropped_total sums every session's drops, and
// choird_tenant_last_kappa carries the finished session's root span as
// its exemplar.
func TestFleetObsSeries(t *testing.T) {
	pathA, pathB := writePair(t, t.TempDir())
	_, ts := startServer(t, Config{Seed: 7, Spans: true})

	v := mustUpload(t, ts.URL, "tenant=fleet", pathA, pathB)
	pollResult(t, ts.URL, v.ID)

	code, body := httpGet(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	text := string(body)
	if !strings.Contains(text, "obs_trace_dropped_total") {
		t.Fatalf("obs_trace_dropped_total missing from fleet exposition:\n%s", text)
	}
	if !strings.Contains(text, "choird_tenant_last_kappa") {
		t.Fatalf("choird_tenant_last_kappa missing from fleet exposition:\n%s", text)
	}
	// Exemplars are a JSON-snapshot extra; they must not leak into the
	// Prometheus text format.
	if strings.Contains(text, "exemplar_span") {
		t.Fatalf("exemplar leaked into text exposition:\n%s", text)
	}

	code, body = httpGet(t, ts.URL+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json: status %d", code)
	}
	var snap []metricFamily
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("fleet snapshot: %v", err)
	}
	found := false
	for _, f := range snap {
		if f.Name != "choird_tenant_last_kappa" {
			continue
		}
		for _, s := range f.Series {
			if s.Labels["tenant"] != "fleet" {
				continue
			}
			found = true
			if s.ExemplarSpan == "" {
				t.Fatal("choird_tenant_last_kappa has no exemplar span")
			}
		}
	}
	if !found {
		t.Fatalf("choird_tenant_last_kappa{tenant=fleet} not in fleet snapshot: %s", body)
	}
}

// TestHealthz pins the liveness contract: always 200 while the process
// serves, with a machine-readable status.
func TestHealthz(t *testing.T) {
	_, ts := startServer(t, Config{Seed: 1})
	code, body := httpGet(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: status %d", code)
	}
	var v struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("healthz JSON: %v (%s)", err, body)
	}
	if v.Status != "ok" {
		t.Fatalf("status = %q, want ok", v.Status)
	}
}

// TestReadyz pins the readiness gate: 200 while accepting, 503 once
// draining, 503 while the global admission budget is fully reserved.
func TestReadyz(t *testing.T) {
	s, ts := startServer(t, Config{Seed: 1})
	code, body := httpGet(t, ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("fresh /readyz: status %d, body %s", code, body)
	}
	var v struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(body, &v); err != nil || !v.Ready {
		t.Fatalf("fresh /readyz: ready=%v err=%v (%s)", v.Ready, err, body)
	}
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	code, body = httpGet(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz: status %d, body %s", code, body)
	}
	if err := json.Unmarshal(body, &v); err != nil || v.Ready || v.Reason != "draining" {
		t.Fatalf("draining /readyz: %s", body)
	}
}

// TestReadyzBudgetExhausted: a live session reserving the whole global
// budget flips readiness without the daemon being unhealthy.
func TestReadyzBudgetExhausted(t *testing.T) {
	const budget = 1 << 20
	_, ts := startServer(t, Config{Seed: 1, GlobalBudget: budget, TenantBudget: budget})

	resp, err := http.Post(ts.URL+fmt.Sprintf("/v1/sessions?mode=live&tenant=big&bytes=%d", budget), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("live create: status %d", resp.StatusCode)
	}

	code, body := httpGet(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "budget") {
		t.Fatalf("exhausted /readyz: status %d, body %s", code, body)
	}
	if code, _ := httpGet(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz flipped with budget: status %d", code)
	}
}

// TestConcurrentSessionSpans drives many sessions at once on one
// spans-on daemon (run with -race): every session must end with its own
// complete, parseable trace and nothing dropped across the fleet.
func TestConcurrentSessionSpans(t *testing.T) {
	pathA, pathB := writePair(t, t.TempDir())
	_, ts := startServer(t, Config{Seed: 7, Spans: true, MaxSessions: 32})

	const n = 6
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := mustUpload(t, ts.URL, fmt.Sprintf("tenant=c%d", i), pathA, pathB)
			ids[i] = v.ID
			pollResult(t, ts.URL, v.ID)
		}(i)
	}
	wg.Wait()

	for _, id := range ids {
		code, body := httpGet(t, ts.URL+"/v1/sessions/"+id+"/trace")
		if code != http.StatusOK {
			t.Fatalf("trace %s: status %d", id, code)
		}
		counts := traceEventNames(t, body)
		if counts["session"] != 1 || counts["compare"] != 1 || counts["admission"] != 1 {
			t.Fatalf("trace %s incomplete: %v", id, counts)
		}
	}

	code, body := httpGet(t, ts.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), "obs_trace_dropped_total 0") {
		t.Fatalf("expected zero dropped spans fleet-wide:\n%s", body)
	}
}
