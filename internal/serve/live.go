package serve

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/packet"
	"repro/internal/pcap"
	"repro/internal/sim"
)

// tapPair wires two live HTTP taps to one stream engine. Each tap
// handler tees its request body into the session's spool file (so a
// crash can re-run the comparison from disk) and into an io.Pipe the
// engine reads as a pcap byte stream. The pipes are synchronous:
// backpressure from the engine's bounded buffers propagates all the way
// to the uploading client's TCP connection — the service never buffers
// an unbounded capture in memory.
type tapPair struct {
	mu        sync.Mutex
	srcs      [2]*tapSource
	connected [2]bool
}

func newTapPair(nameA, nameB string, limit int64) *tapPair {
	tp := &tapPair{}
	for i, name := range []string{nameA, nameB} {
		pr, pw := io.Pipe()
		tp.srcs[i] = &tapSource{name: name, limit: limit, pr: pr, pw: pw}
	}
	return tp
}

// sources returns the engine-side readers (A, B).
func (tp *tapPair) sources() (*tapSource, *tapSource) {
	return tp.srcs[0], tp.srcs[1]
}

// connect claims one side for a tap handler. The second successful
// connect reports both=true — the caller dispatches the session before
// starting its copy, or the first tap's pipe would block forever.
func (tp *tapPair) connect(side string) (w *io.PipeWriter, both bool, err error) {
	i := 0
	if side == "b" {
		i = 1
	}
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if tp.connected[i] {
		return nil, false, fmt.Errorf("tap %q already connected", side)
	}
	tp.connected[i] = true
	return tp.srcs[i].pw, tp.connected[0] && tp.connected[1], nil
}

// tapSource adapts one pipe to stream.Source. The pcap reader is built
// lazily on the first Next call, because pcap.NewStream reads the global
// header and the bytes only start flowing once the tap connects; the
// engine goroutine is the right place to block on that.
type tapSource struct {
	name  string
	limit int64
	pr    *io.PipeReader
	pw    *io.PipeWriter

	ps  *pcap.Stream
	err error
}

func (t *tapSource) Next() (*packet.Packet, sim.Time, error) {
	if t.ps == nil {
		if t.err == nil {
			ps, err := pcap.NewStream(t.pr, t.name)
			if err != nil {
				t.err = err
			} else {
				ps.SetLimit(t.limit)
				t.ps = ps
			}
		}
		if t.err != nil {
			return nil, 0, t.err
		}
	}
	return t.ps.Next()
}

// Diag reports the reader's byte accounting (zero-valued if the tap
// never produced a valid global header).
func (t *tapSource) Diag() pcap.Diag {
	if t.ps == nil {
		d := pcap.Diag{}
		if t.err != nil {
			d.Reason = t.err.Error()
		}
		return d
	}
	return t.ps.Diag()
}
