package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"time"

	"repro/internal/consistency"
	"repro/internal/obs"
	"repro/internal/sim"
)

// tenantRE bounds tenant names to filesystem- and label-safe tokens
// (they name journal files and metric label values).
var tenantRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// sessionView is the JSON shape GET /v1/sessions returns per session.
type sessionView struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	State    State  `json:"state"`
	Seed     uint64 `json:"seed"`
	Live     bool   `json:"live,omitempty"`
	NameA    string `json:"name_a"`
	NameB    string `json:"name_b"`
	WindowNs int64  `json:"window_ns"`
	Bytes    int64  `json:"bytes"`
	Error    string `json:"error,omitempty"`
	// Replay is the offline command that reproduces this session's
	// consistency report byte-for-byte from the spooled captures.
	Replay string `json:"replay"`
}

func view(sess *Session) sessionView {
	st, _, errText := sess.snapshot()
	return sessionView{
		ID: sess.ID, Tenant: sess.Tenant, State: st, Seed: sess.Seed,
		Live: sess.Live, NameA: sess.NameA, NameB: sess.NameB,
		WindowNs: int64(sess.Window), Bytes: sess.Bytes, Error: errText,
		Replay: fmt.Sprintf("consistency %s %s", sess.SpoolA, sess.SpoolB),
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// shed maps an admission refusal to 413 (never admissible) or 429 with
// Retry-After (try again once budgets free up).
func shed(w http.ResponseWriter, retryAfter int, err error) {
	if errors.Is(err, ErrTooLarge) {
		writeErr(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	}
	if retryAfter <= 0 {
		retryAfter = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeErr(w, http.StatusTooManyRequests, "%v", err)
}

// routes builds the service mux: the /v1 API plus the obs fleet surface.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	oh := obs.Handler(s.cfg.Obs)
	for _, p := range []string{"/metrics", "/metrics.json", "/trace", "/debug/pprof/"} {
		mux.Handle(p, oh)
	}
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/sessions/{id}/trace", s.handleSessionTrace)
	mux.HandleFunc("GET /v1/sessions/{id}/metrics", s.handleSessionMetrics)
	mux.HandleFunc("POST /v1/sessions/{id}/tap/{side}", s.handleTap)
	mux.HandleFunc("POST /v1/admin/pause", func(w http.ResponseWriter, r *http.Request) {
		s.Pause()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/admin/resume", func(w http.ResponseWriter, r *http.Request) {
		s.Resume()
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"uptime_s": int64(time.Since(s.start).Seconds()),
		"sessions": s.adm.sessionCount(),
	})
}

// handleReady is the load-balancer gate: 200 while the daemon is
// accepting work, 503 once it is draining or the global admission
// budget is fully reserved (new sessions would only be shed anyway).
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	draining := s.isDraining()
	used, global := s.adm.usage()
	body := map[string]any{
		"ready":             !draining && used < global,
		"draining":          draining,
		"budget_used_bytes": used,
		"budget_bytes":      global,
	}
	code := http.StatusOK
	switch {
	case draining:
		body["reason"] = "draining"
		code = http.StatusServiceUnavailable
	case used >= global:
		body["reason"] = "admission budget exhausted"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// handleSessionTrace serves one session's causal span tree as Chrome
// trace_event JSON (drop the body onto ui.perfetto.dev to see the
// admission → spool → compare → wal → render critical path;
// cmd/choirtrace reconstructs it offline from the same bytes).
func (s *Server) handleSessionTrace(w http.ResponseWriter, r *http.Request) {
	sess := s.reg.get(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	st := sess.obs.SpanTrace()
	if st == nil {
		writeErr(w, http.StatusNotFound, "span tracing disabled (start choird with -spans)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = st.WriteJSON(w)
}

// handleSessionMetrics scrapes one session's private registry — the
// stream_* engine gauges that would trample each other on the fleet
// registry. ?format=json returns the snapshot (with exemplar span IDs).
func (s *Server) handleSessionMetrics(w http.ResponseWriter, r *http.Request) {
	sess := s.reg.get(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	reg := sess.obs.Registry()
	if reg == nil {
		writeErr(w, http.StatusNotFound, "session has no registry")
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = reg.WritePrometheus(w)
}

// isDraining reports whether new sessions should be refused.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// sessionWindow parses a ?window= override bounded to sane engine
// shapes; the default is the server's configured window.
func (s *Server) sessionWindow(r *http.Request) (sim.Duration, error) {
	raw := r.URL.Query().Get("window")
	if raw == "" {
		return s.cfg.Window, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad window %q: %v", raw, err)
	}
	if d < time.Microsecond || d > 10*time.Second {
		return 0, fmt.Errorf("window %v out of range [1µs, 10s]", d)
	}
	return sim.Duration(d.Nanoseconds()), nil
}

// handleCreate admits a new session: multipart upload by default,
// ?mode=live for tap-fed sessions.
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeErr(w, http.StatusServiceUnavailable, "draining: not accepting sessions")
		return
	}
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		tenant = "default"
	}
	if !tenantRE.MatchString(tenant) {
		writeErr(w, http.StatusBadRequest, "bad tenant name %q", tenant)
		return
	}
	window, err := s.sessionWindow(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if r.URL.Query().Get("mode") == "live" {
		s.createLive(w, r, tenant, window)
		return
	}
	s.createUpload(w, r, tenant, window)
}

// newSession allocates the identity (ID, seq, derived seed) and engine
// shape for an admitted session. release is attached so finish() can
// return the reservation.
func (s *Server) newSession(tenant string, window sim.Duration, live bool, bytes int64, release func()) *Session {
	s.mu.Lock()
	if s.seqs == nil {
		s.seqs = make(map[string]uint64)
	}
	if s.seqs[tenant] == 0 {
		s.seqs[tenant] = s.reg.maxSeq(tenant)
	}
	s.seqs[tenant]++
	seq := s.seqs[tenant]
	s.mu.Unlock()

	id := fmt.Sprintf("%s-%06d", tenant, seq)
	sess := &Session{
		ID: id, Tenant: tenant, Seq: seq,
		Seed: deriveSeed(s.cfg.Seed, tenant, seq),
		Live: live, Bytes: bytes,
		Window: window,
		Shards: s.cfg.Shards, Buffer: s.cfg.Buffer, MaxLag: s.cfg.MaxLag,
		state:   StateQueued,
		release: release,
	}
	sess.SpoolA = s.spoolPath(id, "a")
	sess.SpoolB = s.spoolPath(id, "b")
	return sess
}

// createUpload spools a multipart pair ("a" and "b" file parts) and
// queues the comparison. The admission reservation is the declared
// Content-Length — taken before a single body byte is read.
func (s *Server) createUpload(w http.ResponseWriter, r *http.Request, tenant string, window sim.Duration) {
	if r.ContentLength <= 0 {
		writeErr(w, http.StatusLengthRequired, "upload requires Content-Length")
		return
	}
	// The observability bundle exists before the admission decision so
	// the decision itself is the tree's first traced child. A refused
	// request's trace has no session to live on and is discarded with it.
	sessObs, root := s.sessionBundle(tenant)
	spAdm := root.Child("admission", "admission")
	spAdm.AttrInt("bytes", r.ContentLength)
	release, retry, err := s.adm.admit(tenant, r.ContentLength)
	if err != nil {
		spAdm.SetError(err)
		spAdm.End()
		root.SetError(err)
		root.End()
		shed(w, retry, err)
		return
	}
	spAdm.End()
	sess := s.newSession(tenant, window, false, r.ContentLength, release)
	sess.obs, sess.span = sessObs, root
	root.Attr("session", sess.ID)

	cleanup := func() {
		os.Remove(sess.SpoolA)
		os.Remove(sess.SpoolB)
		release()
	}
	mr, err := r.MultipartReader()
	if err != nil {
		cleanup()
		writeErr(w, http.StatusBadRequest, "multipart: %v", err)
		return
	}
	got := map[string]bool{}
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			cleanup()
			writeErr(w, http.StatusBadRequest, "multipart: %v", err)
			return
		}
		var dst string
		switch part.FormName() {
		case "a":
			dst = sess.SpoolA
			sess.NameA = part.FileName()
		case "b":
			dst = sess.SpoolB
			sess.NameB = part.FileName()
		default:
			continue
		}
		spSpool := root.Child("spool", "spool", obs.L("part", part.FormName()))
		n, err := spoolPart(dst, part, s.cfg.MaxUpload)
		spSpool.AttrInt("bytes", n)
		spSpool.SetError(err)
		spSpool.End()
		if err != nil {
			cleanup()
			if errors.Is(err, errSpoolTooLarge) {
				writeErr(w, http.StatusRequestEntityTooLarge, "%s: exceeds max upload size %d", part.FormName(), s.cfg.MaxUpload)
			} else {
				writeErr(w, http.StatusInternalServerError, "spool: %v", err)
			}
			return
		}
		got[part.FormName()] = true
	}
	if !got["a"] || !got["b"] {
		cleanup()
		writeErr(w, http.StatusBadRequest, `upload needs file parts "a" and "b"`)
		return
	}
	if sess.NameA == "" {
		sess.NameA = "a.pcap"
	}
	if sess.NameB == "" {
		sess.NameB = "b.pcap"
	}
	s.queue(w, sess, cleanup)
}

// createLive admits a tap-fed session. The reservation defaults to the
// worst case (two max-size captures) unless the client declares a
// smaller ?bytes= cap.
func (s *Server) createLive(w http.ResponseWriter, r *http.Request, tenant string, window sim.Duration) {
	bytes := 2 * s.cfg.MaxUpload
	if raw := r.URL.Query().Get("bytes"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v <= 0 {
			writeErr(w, http.StatusBadRequest, "bad bytes %q", raw)
			return
		}
		bytes = v
	}
	sessObs, root := s.sessionBundle(tenant)
	spAdm := root.Child("admission", "admission")
	spAdm.AttrInt("bytes", bytes)
	release, retry, err := s.adm.admit(tenant, bytes)
	if err != nil {
		spAdm.SetError(err)
		spAdm.End()
		root.SetError(err)
		root.End()
		shed(w, retry, err)
		return
	}
	spAdm.End()
	sess := s.newSession(tenant, window, true, bytes, release)
	sess.obs, sess.span = sessObs, root
	root.Attr("session", sess.ID)
	nameOr := func(key, def string) string {
		if v := r.URL.Query().Get(key); v != "" {
			return v
		}
		return def
	}
	sess.NameA = nameOr("a", "tap-a.pcap")
	sess.NameB = nameOr("b", "tap-b.pcap")
	sess.taps = newTapPair(sess.NameA, sess.NameB, s.cfg.MaxUpload)

	cleanup := func() {
		os.Remove(sess.SpoolA)
		os.Remove(sess.SpoolB)
		release()
	}
	// Pre-create empty spools so a crash before (or between) tap
	// connects resumes into a well-defined failed state instead of a
	// missing-file surprise.
	for _, p := range []string{sess.SpoolA, sess.SpoolB} {
		f, err := os.Create(p)
		if err != nil {
			cleanup()
			writeErr(w, http.StatusInternalServerError, "spool: %v", err)
			return
		}
		f.Close()
	}
	s.queue(w, sess, cleanup)
}

// queue journals the start record, registers the session and (for
// uploads) dispatches it. Live sessions dispatch when their second tap
// connects.
func (s *Server) queue(w http.ResponseWriter, sess *Session, cleanup func()) {
	spWAL := sess.span.Child("wal", "wal")
	err := s.jrn.appendStart(sess)
	spWAL.SetError(err)
	spWAL.End()
	if err != nil {
		cleanup()
		writeErr(w, http.StatusInternalServerError, "journal: %v", err)
		return
	}
	s.reg.put(sess)
	s.logf("session %s queued (tenant %s, %d bytes reserved, live=%v)", sess.ID, sess.Tenant, sess.Bytes, sess.Live)
	if !sess.Live {
		s.dispatch(sess)
	}
	writeJSON(w, http.StatusAccepted, view(sess))
}

// errSpoolTooLarge marks an upload part that outgrew MaxUpload.
var errSpoolTooLarge = errors.New("serve: upload part too large")

// spoolPart streams one multipart file to disk, capped at limit, and
// fsyncs it — the journal's start record must never point at a spool the
// filesystem could lose.
func spoolPart(dst string, src io.Reader, limit int64) (int64, error) {
	f, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := io.Copy(f, io.LimitReader(src, limit+1))
	if err != nil {
		return n, err
	}
	if n > limit {
		return n, errSpoolTooLarge
	}
	return n, f.Sync()
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sessions := s.reg.list(r.URL.Query().Get("tenant"))
	views := make([]sessionView, 0, len(sessions))
	for _, sess := range sessions {
		views = append(views, view(sess))
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess := s.reg.get(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, view(sess))
}

// handleResult serves a finished session's windowed κ result. Formats:
// json (default), windows (per-window κ lines, choirstream's -windows
// dialect), consistency (the exact report `consistency spoolA spoolB`
// prints — re-rendered through the same internal/consistency code path,
// which is what makes the differential gate a byte-for-byte cmp).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sess := s.reg.get(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	st, res, errText := sess.snapshot()
	switch st {
	case StateFailed:
		writeJSON(w, http.StatusConflict, map[string]string{"state": string(st), "error": errText})
		return
	case StateDone:
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"state": string(st)})
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	spRender := sess.span.Child("render", "render", obs.L("format", format))
	defer spRender.End()
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, res)
	case "windows":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		res.renderWindows(w)
	case "consistency":
		within := int64(10)
		if raw := r.URL.Query().Get("within"); raw != "" {
			v, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "bad within %q", raw)
				return
			}
			within = v
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err := consistency.Report(w,
			consistency.Input{Path: sess.SpoolA, Name: sess.NameA},
			consistency.Input{Path: sess.SpoolB, Name: sess.NameB},
			consistency.Options{Hist: r.URL.Query().Get("hist") == "1", WithinNs: within})
		if err != nil {
			// Headers are gone; all we can do is log and cut the body.
			spRender.SetError(err)
			s.logf("session %s: consistency render: %v", sess.ID, err)
		}
	default:
		writeErr(w, http.StatusBadRequest, "unknown format %q", r.URL.Query().Get("format"))
	}
}

// handleTap feeds one side of a live session. The handler blocks until
// the engine has consumed (and the spool holds) the whole body — the
// response confirms durable ingestion.
func (s *Server) handleTap(w http.ResponseWriter, r *http.Request) {
	sess := s.reg.get(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	side := r.PathValue("side")
	if side != "a" && side != "b" {
		writeErr(w, http.StatusNotFound, `tap side must be "a" or "b"`)
		return
	}
	if sess.taps == nil {
		writeErr(w, http.StatusConflict, "session is not live (or was resumed from journal)")
		return
	}
	if st := sess.StateNow(); st == StateDone || st == StateFailed {
		writeErr(w, http.StatusConflict, "session already %s", st)
		return
	}
	pw, both, err := sess.taps.connect(side)
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	if both {
		s.dispatch(sess) // engine must be running before we block on the pipe
	}

	dst := sess.SpoolA
	if side == "b" {
		dst = sess.SpoolB
	}
	f, err := os.Create(dst)
	if err != nil {
		pw.CloseWithError(err)
		writeErr(w, http.StatusInternalServerError, "spool: %v", err)
		return
	}
	spSpool := sess.span.Child("spool", "spool", obs.L("side", side))
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUpload)
	n, copyErr := io.Copy(io.MultiWriter(f, pw), body)
	if syncErr := f.Sync(); copyErr == nil {
		copyErr = syncErr
	}
	f.Close()
	spSpool.AttrInt("bytes", n)
	spSpool.SetError(copyErr)
	spSpool.End()
	if copyErr != nil {
		pw.CloseWithError(copyErr)
		writeErr(w, http.StatusBadRequest, "tap %s: %v after %d bytes", side, copyErr, n)
		return
	}
	pw.Close()
	writeJSON(w, http.StatusOK, map[string]any{"side": side, "bytes": n})
}
