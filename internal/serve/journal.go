package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/campaign"
	"repro/internal/sim"
)

// startRec journals a session's immutable identity at admission time —
// everything needed to re-create (and re-run) it after a crash.
type startRec struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Seq    uint64 `json:"seq"`
	Seed   uint64 `json:"seed"`
	Live   bool   `json:"live,omitempty"`
	NameA  string `json:"name_a"`
	NameB  string `json:"name_b"`
	SpoolA string `json:"spool_a"`
	SpoolB string `json:"spool_b"`
	Bytes  int64  `json:"bytes"`

	WindowNs int64 `json:"window_ns"`
	Shards   int   `json:"shards"`
	Buffer   int   `json:"buffer"`
	MaxLag   int   `json:"max_lag"`
}

// doneRec journals a session's terminal state. A session with a start
// record but no done record was in flight when the process died — it is
// re-queued on the next boot.
type doneRec struct {
	ID     string  `json:"id"`
	Status string  `json:"status"` // "done" | "failed"
	Err    string  `json:"err,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// journals manages one campaign.WAL per tenant under dir. The WAL gives
// the service the campaign runner's crash-safety dialect for free:
// CRC32-sealed JSONL, fsync per record, torn tails truncated on replay.
type journals struct {
	dir    string
	mu     sync.Mutex
	wals   map[string]*campaign.WAL
	closed bool
}

// openJournals replays every per-tenant journal under dir and returns
// the journal set plus the sessions that were admitted but never reached
// a terminal state (in deterministic tenant-then-journal order).
// Finished sessions are installed directly into the server registry so
// their recorded results keep being served byte-for-byte.
func openJournals(dir string, s *Server) (*journals, []*Session, error) {
	j := &journals{dir: dir, wals: make(map[string]*campaign.WAL)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	var tenants []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".wal") {
			tenants = append(tenants, strings.TrimSuffix(e.Name(), ".wal"))
		}
	}
	sort.Strings(tenants)

	var resumed []*Session
	for _, tenant := range tenants {
		byID := make(map[string]*Session)
		var order []string
		done := make(map[string]bool)
		apply := func(kind string, body json.RawMessage) error {
			switch kind {
			case "start":
				var rec startRec
				if err := json.Unmarshal(body, &rec); err != nil {
					return err
				}
				sess := &Session{
					ID: rec.ID, Tenant: rec.Tenant, Seq: rec.Seq, Seed: rec.Seed,
					Live: rec.Live, NameA: rec.NameA, NameB: rec.NameB,
					SpoolA: rec.SpoolA, SpoolB: rec.SpoolB, Bytes: rec.Bytes,
					Window: sim.Duration(rec.WindowNs),
					Shards: rec.Shards, Buffer: rec.Buffer, MaxLag: rec.MaxLag,
					state: StateQueued,
				}
				if _, dup := byID[rec.ID]; !dup {
					order = append(order, rec.ID)
				}
				byID[rec.ID] = sess
			case "done":
				var rec doneRec
				if err := json.Unmarshal(body, &rec); err != nil {
					return err
				}
				sess := byID[rec.ID]
				if sess == nil {
					return nil // tolerated: start lost to an earlier torn tail
				}
				st := StateDone
				if rec.Status == "failed" {
					st = StateFailed
				}
				sess.state = st
				sess.result = rec.Result
				sess.errText = rec.Err
				done[rec.ID] = true
			}
			return nil
		}
		w, err := campaign.OpenWAL(filepath.Join(dir, tenant+".wal"), apply)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: journal %s: %w", tenant, err)
		}
		j.wals[tenant] = w
		for _, id := range order {
			sess := byID[id]
			if done[id] {
				s.reg.put(sess) // terminal: serve the recorded result
			} else {
				resumed = append(resumed, sess)
			}
		}
	}
	return j, resumed, nil
}

// wal returns (opening on first use) a tenant's journal.
func (j *journals) wal(tenant string) (*campaign.WAL, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, fmt.Errorf("serve: journals closed")
	}
	if w, ok := j.wals[tenant]; ok {
		return w, nil
	}
	// New tenant mid-run: the file does not exist yet, so replay is a
	// no-op and the apply callback can never fire.
	w, err := campaign.OpenWAL(filepath.Join(j.dir, tenant+".wal"),
		func(string, json.RawMessage) error { return nil })
	if err != nil {
		return nil, err
	}
	j.wals[tenant] = w
	return w, nil
}

// appendStart seals a session's identity into its tenant journal. It
// must succeed before the session is dispatched: a session that runs
// without a start record could not be resumed.
func (j *journals) appendStart(sess *Session) error {
	w, err := j.wal(sess.Tenant)
	if err != nil {
		return err
	}
	return w.Append("start", startRec{
		ID: sess.ID, Tenant: sess.Tenant, Seq: sess.Seq, Seed: sess.Seed,
		Live: sess.Live, NameA: sess.NameA, NameB: sess.NameB,
		SpoolA: sess.SpoolA, SpoolB: sess.SpoolB, Bytes: sess.Bytes,
		WindowNs: int64(sess.Window),
		Shards:   sess.Shards, Buffer: sess.Buffer, MaxLag: sess.MaxLag,
	})
}

// appendDone seals a terminal state (with its result) into the journal.
func (j *journals) appendDone(sess *Session, res *Result, errText string) error {
	w, err := j.wal(sess.Tenant)
	if err != nil {
		return err
	}
	status := "done"
	if errText != "" {
		status = "failed"
	}
	return w.Append("done", doneRec{ID: sess.ID, Status: status, Err: errText, Result: res})
}

// closeAll syncs and closes every tenant journal; further appends fail.
func (j *journals) closeAll() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var first error
	for _, w := range j.wals {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
