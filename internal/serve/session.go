package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/pcap"
	"repro/internal/sim"
	"repro/internal/stream"
)

// State is a session's lifecycle position.
type State string

const (
	// StateQueued: admitted, journaled, waiting for a scheduler slot.
	StateQueued State = "queued"
	// StateRunning: the comparison pipeline is executing.
	StateRunning State = "running"
	// StateDraining: running while the daemon drains; allowed to finish.
	StateDraining State = "draining"
	// StateDone: finished; Result is final and journaled.
	StateDone State = "done"
	// StateFailed: terminally failed; Err is journaled.
	StateFailed State = "failed"
)

// Session is one admitted comparison. Identity fields are immutable
// after creation; the mutable lifecycle (state, result) is guarded by mu.
type Session struct {
	ID     string
	Tenant string
	Seq    uint64
	// Seed is the session's derived seed: a pure function of the
	// daemon's base seed, the tenant and the sequence number. It is
	// journaled so a served result can be re-derived offline.
	Seed uint64
	// Live marks a tap-fed session (captures streamed while scoring).
	Live bool
	// NameA/NameB are the tenant's display names (uploaded filenames);
	// SpoolA/SpoolB are where the bytes live under the state dir.
	NameA, NameB   string
	SpoolA, SpoolB string
	// Bytes is the admission reservation.
	Bytes int64
	// Engine shape (affects results only through the window length).
	Window                 sim.Duration
	Shards, Buffer, MaxLag int

	// obs is the session's private observability bundle (registry +,
	// when the server traces, a span tracer); span is the root
	// "session" span of the causal tree. Both are set before the
	// session becomes visible in the server registry and are immutable
	// afterwards; span is nil when tracing is off.
	obs  *obs.Obs
	span *obs.Span

	mu      sync.Mutex
	state   State
	result  *Result
	errText string
	release func() // admission release; nil once returned

	// Live-tap plumbing: sources handed to the engine by the tap
	// handlers, signalled ready when both sides have connected.
	taps *tapPair
}

// StateNow returns the current lifecycle state.
func (sess *Session) StateNow() State {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.state
}

// snapshot returns the state triple under one lock acquisition.
func (sess *Session) snapshot() (State, *Result, string) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.state, sess.result, sess.errText
}

// setState transitions unless the session is already terminal.
func (sess *Session) setState(st State) {
	sess.mu.Lock()
	if sess.state != StateDone && sess.state != StateFailed {
		sess.state = st
	}
	sess.mu.Unlock()
}

// finish records the terminal state and releases the admission
// reservation exactly once.
func (sess *Session) finish(st State, res *Result, errText string) {
	sess.mu.Lock()
	sess.state = st
	sess.result = res
	sess.errText = errText
	rel := sess.release
	sess.release = nil
	sess.mu.Unlock()
	if rel != nil {
		rel()
	}
}

// registry is the in-memory session index.
type registry struct {
	mu       sync.Mutex
	sessions map[string]*Session
	order    []string // insertion order, for stable listings
}

func newRegistry() *registry {
	return &registry{sessions: make(map[string]*Session)}
}

func (r *registry) put(sess *Session) {
	r.mu.Lock()
	if _, dup := r.sessions[sess.ID]; !dup {
		r.order = append(r.order, sess.ID)
	}
	r.sessions[sess.ID] = sess
	r.mu.Unlock()
}

func (r *registry) get(id string) *Session {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sessions[id]
}

// list returns the tenant's sessions (all tenants when tenant == "") in
// admission order.
func (r *registry) list(tenant string) []*Session {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Session, 0, len(r.order))
	for _, id := range r.order {
		sess := r.sessions[id]
		if tenant == "" || sess.Tenant == tenant {
			out = append(out, sess)
		}
	}
	return out
}

func (r *registry) countState(st State) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, sess := range r.sessions {
		if sess.StateNow() == st {
			n++
		}
	}
	return n
}

// maxSeq returns the highest sequence number a tenant has used — resume
// continues numbering where the journal left off.
func (r *registry) maxSeq(tenant string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var max uint64
	for _, sess := range r.sessions {
		if sess.Tenant == tenant && sess.Seq > max {
			max = sess.Seq
		}
	}
	return max
}

// markDraining flips every running session to draining (cosmetic but
// honest: the fleet surface shows what a SIGTERM is waiting on).
func (r *registry) markDraining() {
	r.mu.Lock()
	sessions := make([]*Session, 0, len(r.sessions))
	for _, sess := range r.sessions {
		sessions = append(sessions, sess)
	}
	r.mu.Unlock()
	for _, sess := range sessions {
		if sess.StateNow() == StateRunning {
			sess.setState(StateDraining)
		}
	}
}

// deriveSeed mixes the daemon seed, tenant and sequence into a session
// seed with the same splitmix64 output function the fault layer uses —
// stateless, so the seed is reconstructible from journaled identity.
func deriveSeed(base int64, tenant string, seq uint64) uint64 {
	x := uint64(base) ^ (seq * 0xD1342543DE82EF95)
	for _, c := range []byte(tenant) {
		x = (x ^ uint64(c)) * 0x9E3779B97F4A7C15
	}
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// execute runs one session's comparison on the scheduler. The run is a
// pure function of the spooled capture bytes and the engine shape, so a
// journal-resumed re-run reproduces it bit for bit. The goroutine is
// pprof-labelled with the tenant and session ID, so a CPU profile from
// /debug/pprof/profile attributes samples per session.
func (s *Server) execute(sess *Session) {
	pprof.Do(context.Background(), pprof.Labels("tenant", sess.Tenant, "session", sess.ID),
		func(context.Context) { s.executeLabelled(sess) })
}

// journalDone appends the terminal record under a "wal" span.
func (s *Server) journalDone(sess *Session, res *Result, errText string) {
	sp := sess.span.Child("wal", "wal")
	err := s.jrn.appendDone(sess, res, errText)
	sp.SetError(err)
	sp.End()
	if err != nil {
		s.logf("session %s: journal: %v", sess.ID, err)
	}
}

func (s *Server) executeLabelled(sess *Session) {
	sess.setState(StateRunning)
	s.logf("session %s running (tenant %s, window %v)", sess.ID, sess.Tenant, sess.Window)

	// Terminal bookkeeping — journal record, span-tree close, gauge
	// exemplar — lands before finish() flips the state: a client that
	// sees the 200 must also see the journaled record, the ended root
	// span and the linked κ gauge.
	res, runErr := s.compare(sess)
	if runErr != nil {
		s.cFailed.Inc()
		s.journalDone(sess, nil, runErr.Error())
		sess.span.SetError(runErr)
		sess.span.End()
		sess.finish(StateFailed, nil, runErr.Error())
		s.logf("session %s failed: %v", sess.ID, runErr)
		return
	}
	s.cDone.Inc()
	s.journalDone(sess, res, "")
	// Close the session's causal tree and link the tenant's κ gauge to
	// it: the gauge exemplar is the root span ID.
	if sess.span != nil {
		sess.span.Attr("kappa", fmt.Sprintf("%.4f", res.Aggregate.Kappa))
		sess.span.AttrInt("windows", int64(res.Aggregate.Windows))
		sess.span.End()
		s.tenantKappaGauge(sess.Tenant).SetExemplar(res.Aggregate.Kappa, sess.span.RootID())
	} else {
		s.tenantKappaGauge(sess.Tenant).Set(res.Aggregate.Kappa)
	}
	sess.finish(StateDone, res, "")
	s.logf("session %s done: κ=%.4f over %d windows", sess.ID, res.Aggregate.Kappa, res.Aggregate.Windows)
}

// compare executes the streaming pipeline over the session's sources.
func (s *Server) compare(sess *Session) (*Result, error) {
	var srcA, srcB stream.Source
	var diagA, diagB func() pcap.Diag
	if sess.taps != nil {
		// Live session: the tap handlers feed pcap byte streams while
		// we consume; spooling happens in the handlers (TeeReader).
		a, b := sess.taps.sources()
		srcA, srcB = a, b
		diagA, diagB = a.Diag, b.Diag
	} else {
		a, err := pcap.OpenStream(sess.SpoolA)
		if err != nil {
			return nil, fmt.Errorf("spool A: %w", err)
		}
		defer a.Close()
		b, err := pcap.OpenStream(sess.SpoolB)
		if err != nil {
			return nil, fmt.Errorf("spool B: %w", err)
		}
		defer b.Close()
		a.SetLimit(s.cfg.MaxUpload)
		b.SetLimit(s.cfg.MaxUpload)
		srcA, srcB = a, b
		diagA, diagB = a.Diag, b.Diag
	}

	// The session's private registry holds the stream_* gauges:
	// they are per-run, and hundreds of concurrent engines on one
	// registry would trample each other. Peaks worth keeping are folded
	// into the service's per-tenant gauges below; the full registry
	// stays scrapeable at /v1/sessions/{id}/metrics.
	sessObs := sess.obs
	if sessObs == nil {
		sessObs = obs.New() // tests calling compare directly
	}
	spCmp := sess.span.Child("compare", "compare")
	cfg := stream.Config{
		Window:   sess.Window,
		Shards:   sess.Shards,
		Buffer:   sess.Buffer,
		MaxLag:   sess.MaxLag,
		DataOnly: true,
		Obs:      sessObs,
		Span:     spCmp,
		Stall:    s.cfg.Stall,
	}
	res := &Result{SessionID: sess.ID, Seed: sess.Seed, WindowNs: int64(sess.Window)}
	cfg.OnWindow = func(w metricsWindow) {
		if len(res.Windows) < s.cfg.MaxWindowsKept {
			res.Windows = append(res.Windows, windowRow(w))
		} else {
			res.WindowsDropped++
		}
	}
	cfg.DiscardWindows = true // rows are captured by OnWindow above

	sum, err := stream.Run(srcA, srcB, cfg)
	if spCmp != nil {
		spCmp.AttrInt("packets_a", sum.PacketsA)
		spCmp.AttrInt("packets_b", sum.PacketsB)
		spCmp.SetError(err)
		spCmp.End()
	}
	if err != nil && !errors.Is(err, pcap.ErrTruncated) {
		return nil, err
	}
	if err != nil {
		res.Truncated = true
	}
	res.fill(sum, diagA(), diagB())
	sort.SliceStable(res.Windows, func(i, j int) bool { return res.Windows[i].StartNs < res.Windows[j].StartNs })

	// Fold this run's watermark-lag peak into the tenant gauge.
	lag := 0.0
	for _, trial := range []string{"A", "B"} {
		if v, ok := sessObs.Registry().GaugeValue("stream_watermark_lag_peak_windows", obs.L("trial", trial)); ok && v > lag {
			lag = v
		}
	}
	s.tenantLagGauge(sess.Tenant).Max(lag)
	return res, nil
}
