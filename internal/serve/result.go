package serve

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/pcap"
	"repro/internal/sim"
	"repro/internal/stream"
)

// metricsWindow aliases the engine's per-window result type so the
// OnWindow plumbing in session.go reads cleanly.
type metricsWindow = metrics.WindowResult

// WindowRow is one closed window's §3 vector, flattened for JSON. Times
// are trial-relative nanoseconds (the engine's own timeline).
type WindowRow struct {
	StartNs int64   `json:"start_ns"`
	EndNs   int64   `json:"end_ns"`
	U       float64 `json:"u"`
	O       float64 `json:"o"`
	L       float64 `json:"l"`
	I       float64 `json:"i"`
	Kappa   float64 `json:"kappa"`
	Common  int     `json:"common"`
	OnlyA   int     `json:"only_a"`
	OnlyB   int     `json:"only_b"`
}

func windowRow(w metricsWindow) WindowRow {
	return WindowRow{
		StartNs: int64(w.Start), EndNs: int64(w.End),
		U: w.Result.U, O: w.Result.O, L: w.Result.L, I: w.Result.I,
		Kappa:  w.Result.Kappa,
		Common: w.Result.Common, OnlyA: w.Result.OnlyA, OnlyB: w.Result.OnlyB,
	}
}

// AggregateRow mirrors stream.Aggregate with JSON names.
type AggregateRow struct {
	U         float64 `json:"u"`
	O         float64 `json:"o"`
	L         float64 `json:"l"`
	I         float64 `json:"i"`
	Kappa     float64 `json:"kappa"`
	MeanKappa float64 `json:"mean_kappa"`
	Windows   int     `json:"windows"`
	Common    int64   `json:"common"`
	OnlyA     int64   `json:"only_a"`
	OnlyB     int64   `json:"only_b"`
}

// DiagRow surfaces the pcap reader's truncation accounting per side.
type DiagRow struct {
	Records   int    `json:"records"`
	Bytes     int64  `json:"bytes"`
	TornBytes int64  `json:"torn_bytes,omitempty"`
	Reason    string `json:"reason,omitempty"`
}

func diagRow(d pcap.Diag) DiagRow {
	return DiagRow{Records: d.Records, Bytes: d.Bytes, TornBytes: d.TornBytes, Reason: d.Reason}
}

// Result is a finished session's windowed κ outcome. It is journaled as
// JSON, so every field must marshal deterministically (no maps).
type Result struct {
	SessionID string `json:"session_id"`
	// Seed is the session's derived seed (see deriveSeed): recorded so
	// the result can be re-derived offline by cmd/consistency tooling.
	Seed     uint64 `json:"seed"`
	WindowNs int64  `json:"window_ns"`

	PacketsA int64 `json:"packets_a"`
	PacketsB int64 `json:"packets_b"`
	// Truncated marks that at least one side ended in a torn capture;
	// the engine scored the intact prefix (the paper's §5 convention).
	Truncated bool    `json:"truncated,omitempty"`
	DiagA     DiagRow `json:"diag_a"`
	DiagB     DiagRow `json:"diag_b"`

	Aggregate AggregateRow `json:"aggregate"`
	Windows   []WindowRow  `json:"windows,omitempty"`
	// WindowsDropped counts rows past Config.MaxWindowsKept that were
	// folded into the aggregate but not retained individually.
	WindowsDropped int `json:"windows_dropped,omitempty"`

	// Memory high-water marks — evidence the admission bound held.
	PeakShardEntries int `json:"peak_shard_entries"`
	PeakOpenWindows  int `json:"peak_open_windows"`
}

// fill copies the engine summary and per-side reader diagnostics.
func (r *Result) fill(sum *stream.Summary, da, db pcap.Diag) {
	r.PacketsA = sum.PacketsA
	r.PacketsB = sum.PacketsB
	a := sum.Aggregate
	r.Aggregate = AggregateRow{
		U: a.U, O: a.O, L: a.L, I: a.I,
		Kappa: a.Kappa, MeanKappa: a.MeanKappa, Windows: a.Windows,
		Common: a.Common, OnlyA: a.OnlyA, OnlyB: a.OnlyB,
	}
	r.DiagA = diagRow(da)
	r.DiagB = diagRow(db)
	r.PeakShardEntries = sum.Stats.PeakShardEntries
	r.PeakOpenWindows = sum.Stats.PeakOpenWindows
}

// renderWindows writes the per-window κ lines exactly the way
// cmd/choirstream's -windows mode prints them.
func (r *Result) renderWindows(w io.Writer) {
	for _, row := range r.Windows {
		fmt.Fprintf(w, "[%v,%v) κ=%.4f\n", sim.Time(row.StartNs), sim.Time(row.EndNs), row.Kappa)
	}
	if r.WindowsDropped > 0 {
		fmt.Fprintf(w, "… %d more windows not retained (aggregate includes them)\n", r.WindowsDropped)
	}
}
