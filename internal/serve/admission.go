package serve

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// ErrTooLarge marks a request that can never be admitted: its
// reservation exceeds the per-tenant (or global) budget outright. The
// HTTP layer maps it to 413 rather than 429 — retrying won't help.
var ErrTooLarge = errors.New("serve: request exceeds admission budget")

// ErrBusy marks a request shed because budgets are currently exhausted;
// the HTTP layer maps it to 429 + Retry-After.
var ErrBusy = errors.New("serve: admission budget exhausted")

// admission is the byte-budget gatekeeper. Every session reserves its
// bytes (Content-Length for uploads, a declared cap for live taps)
// before any capture data is spooled; the reservation is released when
// the session reaches a terminal state. Budgets are bytes of *capture*,
// which bounds memory because the stream engine's own watermark-lag
// gate keeps per-session working memory proportional to
// Shards×Buffer×MaxLag, never to capture length.
type admission struct {
	mu          sync.Mutex
	global      int64
	perTenant   int64
	maxSessions int

	used    int64
	tenants map[string]*tenantState

	reg   *obs.Registry
	gUsed *obs.Gauge
}

type tenantState struct {
	used     int64
	sessions int

	gActive  *obs.Gauge
	cBytes   *obs.Counter
	cShed    *obs.Counter
	gTenUsed *obs.Gauge
}

func newAdmission(global, perTenant int64, maxSessions int, reg *obs.Registry) *admission {
	return &admission{
		global:      global,
		perTenant:   perTenant,
		maxSessions: maxSessions,
		tenants:     make(map[string]*tenantState),
		reg:         reg,
		gUsed:       reg.Gauge("choird_budget_used_bytes", "bytes currently reserved by admitted sessions"),
	}
}

// tenant returns (creating on first sight) a tenant's accounting row and
// its per-tenant fleet-surface instruments.
func (a *admission) tenant(name string) *tenantState {
	ts, ok := a.tenants[name]
	if !ok {
		lbl := obs.L("tenant", name)
		ts = &tenantState{
			gActive:  a.reg.Gauge("choird_tenant_active_sessions", "admitted, non-terminal sessions per tenant", lbl),
			cBytes:   a.reg.Counter("choird_tenant_admitted_bytes_total", "capture bytes admitted per tenant", lbl),
			cShed:    a.reg.Counter("choird_tenant_shed_total", "requests shed (429/413) per tenant", lbl),
			gTenUsed: a.reg.Gauge("choird_tenant_budget_used_bytes", "bytes currently reserved per tenant", lbl),
		}
		a.tenants[name] = ts
	}
	return ts
}

// usage reports reserved and total global budget bytes (the /readyz
// signal).
func (a *admission) usage() (used, global int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used, a.global
}

// sessionCount is the number of admitted, unreleased sessions.
func (a *admission) sessionCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, ts := range a.tenants {
		n += ts.sessions
	}
	return n
}

// admit reserves bytes for one session. On success it returns a release
// closure (idempotence is the caller's job — Session.finish calls it
// exactly once). On refusal it returns a Retry-After hint in seconds and
// an error wrapping ErrTooLarge (never admissible) or ErrBusy (shed).
func (a *admission) admit(tenant string, bytes int64) (func(), int, error) {
	if bytes <= 0 {
		bytes = 1 // a session always costs something
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ts := a.tenant(tenant)

	if bytes > a.perTenant || bytes > a.global {
		ts.cShed.Inc()
		return nil, 0, fmt.Errorf("%w: need %d bytes, tenant budget %d, global budget %d",
			ErrTooLarge, bytes, a.perTenant, a.global)
	}
	total := 0
	for _, t := range a.tenants {
		total += t.sessions
	}
	if total >= a.maxSessions {
		ts.cShed.Inc()
		return nil, 2, fmt.Errorf("%w: %d sessions in flight (max %d)", ErrBusy, total, a.maxSessions)
	}
	if a.used+bytes > a.global {
		ts.cShed.Inc()
		return nil, 2, fmt.Errorf("%w: global budget %d, %d reserved, %d requested",
			ErrBusy, a.global, a.used, bytes)
	}
	if ts.used+bytes > a.perTenant {
		ts.cShed.Inc()
		return nil, 1, fmt.Errorf("%w: tenant %q budget %d, %d reserved, %d requested",
			ErrBusy, tenant, a.perTenant, ts.used, bytes)
	}

	a.used += bytes
	ts.used += bytes
	ts.sessions++
	a.gUsed.SetInt(a.used)
	ts.gActive.SetInt(int64(ts.sessions))
	ts.cBytes.Add(bytes)
	ts.gTenUsed.SetInt(ts.used)

	var once sync.Once
	release := func() {
		once.Do(func() {
			a.mu.Lock()
			defer a.mu.Unlock()
			a.used -= bytes
			ts.used -= bytes
			ts.sessions--
			a.gUsed.SetInt(a.used)
			ts.gActive.SetInt(int64(ts.sessions))
			ts.gTenUsed.SetInt(ts.used)
		})
	}
	return release, 0, nil
}
