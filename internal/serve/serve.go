// Package serve is the always-on, multi-tenant consistency service
// behind cmd/choird: κ-scoring as a long-running daemon instead of a
// one-shot CLI. It accepts pcap uploads and live-tap sessions over
// HTTP, runs many concurrent internal/stream comparisons on a
// deterministic internal/parallel runner, and returns windowed κ
// results — with three production properties the ROADMAP's
// "millions of users" framing demands:
//
//   - Admission control. Every session reserves bytes against a
//     per-tenant and a global memory budget before a single capture
//     byte is spooled; when a budget is exhausted the service sheds the
//     request with 429 + Retry-After instead of OOMing. The per-session
//     bound is the stream engine's own watermark-lag gate (Config
//     MaxLag × Buffer), so an admitted session cannot outgrow its
//     reservation no matter how long its captures are.
//
//   - Journaled resumability. Session lifecycles append to a per-tenant
//     CRC32 JSONL journal (campaign.WAL — the same crash-safety
//     substrate the campaign runner uses). A crashed or drained daemon
//     replays its journals on restart: completed sessions serve their
//     recorded results byte-for-byte, and admitted-but-unfinished
//     sessions re-run from their spooled captures to bit-identical
//     results, because the comparison is a pure function of the spooled
//     bytes and the session's derived seed. Any served result is also
//     replayable offline: `consistency <spoolA> <spoolB>` renders the
//     same report the service returns.
//
//   - A real fleet surface. The internal/obs registry is mounted on the
//     service mux (/metrics, /metrics.json, /trace, /debug/pprof/*)
//     with per-tenant gauges: active sessions, admitted bytes, shed
//     count, and watermark-lag peaks folded up from every comparison.
//
// Lifecycle: a session is queued on admission, running while its
// pipeline executes, draining if a SIGTERM arrives mid-run (it is
// allowed to finish), and terminally done or failed.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// Config parameterizes the service.
type Config struct {
	// Dir is the state directory: spooled captures under Dir/spool,
	// per-tenant journals under Dir/journal. Required.
	Dir string
	// Seed is the base seed from which every session derives its own
	// seed (a pure function of tenant and sequence number), recorded in
	// the journal so any result is re-derivable offline.
	Seed int64

	// GlobalBudget bounds the bytes reserved by all in-flight sessions
	// together (default 256 MiB). TenantBudget bounds one tenant's
	// share (default GlobalBudget/4).
	GlobalBudget int64
	TenantBudget int64
	// MaxUpload bounds one capture file (default TenantBudget/2). The
	// pcap reader enforces it too (pcap.Stream.SetLimit), so a body
	// that lies about its Content-Length still cannot exceed it.
	MaxUpload int64
	// MaxSessions bounds queued+running sessions (default 4×Workers);
	// beyond it the service sheds with 429 even when byte budgets have
	// room.
	MaxSessions int

	// Workers is the comparison concurrency (default GOMAXPROCS).
	Workers int
	// Window is the default tumbling-window length for sessions that do
	// not request one (default 10ms).
	Window sim.Duration
	// Shards, Buffer, MaxLag configure each session's stream engine
	// (defaults: 2 shards, 256-record buffers, lag 4 — small, because
	// hundreds of sessions multiply them).
	Shards, Buffer, MaxLag int
	// MaxWindowsKept caps the per-window rows retained per session
	// (default 4096); past it only the running aggregate grows.
	MaxWindowsKept int

	// Obs carries the service registry. When nil a fresh one is
	// created: the daemon always has a fleet surface.
	Obs *obs.Obs

	// Spans enables per-session causal span tracing: each session gets
	// a private obs.SpanTracer whose tree (admission → spool → compare →
	// shard/watermark → WAL → render) is served as Perfetto JSON at
	// GET /v1/sessions/{id}/trace. Tracing is purely observational:
	// served results are byte-identical with it on or off (asserted by
	// TestServeSpanDifferential and the verify.sh spans gate).
	Spans bool
	// SpanMax caps retained spans per session (default
	// obs.DefaultSpanMax).
	SpanMax int

	// Stall, when non-nil, is threaded into every session's stream
	// engine (fault.Plan.StallHook) — the load-shedding and
	// backpressure tests drive the service through stall storms with
	// it. Results must be bit-identical with or without it.
	Stall func(stage string, id int)

	// Log receives one line per lifecycle event; nil discards.
	Log func(format string, args ...any)
}

func (c Config) defaults() Config {
	if c.GlobalBudget <= 0 {
		c.GlobalBudget = 256 << 20
	}
	if c.TenantBudget <= 0 {
		c.TenantBudget = c.GlobalBudget / 4
	}
	if c.MaxUpload <= 0 {
		c.MaxUpload = c.TenantBudget / 2
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4 * c.Workers
	}
	if c.Window <= 0 {
		c.Window = 10 * sim.Millisecond
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Buffer <= 0 {
		c.Buffer = 256
	}
	if c.MaxLag <= 0 {
		c.MaxLag = 4
	}
	if c.MaxWindowsKept <= 0 {
		c.MaxWindowsKept = 4096
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
	return c
}

// Server is one service instance. Create with New (which replays any
// journals found in the state directory), mount Handler on a listener,
// and stop with Drain.
type Server struct {
	cfg  Config
	reg  *registry
	adm  *admission
	pool *parallel.Pool
	run  *parallel.Runner
	jrn  *journals

	mu       sync.Mutex
	paused   bool       // admission-paused: sessions journal and queue but do not dispatch
	draining bool       // Drain has begun: every new session is refused
	pending  []*Session // admitted while paused
	seqs     map[string]uint64

	mux *http.ServeMux

	lagPeak   map[string]*obs.Gauge // per-tenant watermark-lag fold-up
	lastKappa map[string]*obs.Gauge // per-tenant κ, exemplar = session root span
	cDone     *obs.Counter
	cFailed   *obs.Counter
	gBudget   *obs.Gauge
	gUsed     *obs.Gauge
	start     time.Time
}

// New builds a server over cfg.Dir, creating the directory layout and
// replaying any per-tenant journals left by a previous process. Replayed
// unfinished sessions are re-queued (and start running at the first
// Resume call — typically immediately, unless the server is paused).
func New(cfg Config) (*Server, error) {
	cfg = cfg.defaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required")
	}
	for _, sub := range []string{"spool", "journal"} {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	reg := cfg.Obs.Registry()
	s := &Server{
		cfg:       cfg,
		reg:       newRegistry(),
		pool:      parallel.New(cfg.Workers).WithObs(reg),
		lagPeak:   make(map[string]*obs.Gauge),
		lastKappa: make(map[string]*obs.Gauge),
		start:     time.Now(),
	}
	s.adm = newAdmission(cfg.GlobalBudget, cfg.TenantBudget, cfg.MaxSessions, reg)
	s.run = s.pool.Runner(cfg.MaxSessions)
	s.cDone = reg.Counter("choird_sessions_completed_total", "sessions finished successfully", obs.L("status", "done"))
	s.cFailed = reg.Counter("choird_sessions_completed_total", "sessions finished successfully", obs.L("status", "failed"))
	s.gBudget = reg.Gauge("choird_budget_bytes", "configured global admission budget")
	s.gUsed = reg.Gauge("choird_budget_used_bytes", "bytes currently reserved by admitted sessions")
	s.gBudget.SetInt(cfg.GlobalBudget)
	for _, st := range []State{StateQueued, StateRunning, StateDraining, StateDone, StateFailed} {
		st := st
		reg.GaugeFunc("choird_sessions", "sessions by lifecycle state",
			func() float64 { return float64(s.reg.countState(st)) }, obs.L("state", string(st)))
	}
	// Fleet-level drop accounting: the sum of every session tracer's
	// dropped-span count, evaluated at scrape time (satisfies the same
	// contract as the CLI's obs_trace_dropped_total).
	reg.CounterFunc("obs_trace_dropped_total", "span-trace events dropped across all sessions", func() int64 {
		var n int64
		for _, sess := range s.reg.list("") {
			n += sess.obs.SpanTrace().Dropped()
		}
		return n
	})

	jrn, resumed, err := openJournals(filepath.Join(cfg.Dir, "journal"), s)
	if err != nil {
		return nil, err
	}
	s.jrn = jrn
	// Re-admit and re-queue every journaled-but-unfinished session: the
	// spool still holds its captures, so the re-run is a pure replay.
	for _, sess := range resumed {
		if err := s.requeue(sess); err != nil {
			return nil, err
		}
	}
	s.mux = s.routes()
	return s, nil
}

// Handler returns the service mux: the /v1 API plus the observability
// fleet surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the session scheduler (for end-of-run stats lines).
func (s *Server) Pool() *parallel.Pool { return s.pool }

// logf emits one lifecycle line.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// Pause stops dispatching new sessions to the runner: admitted sessions
// journal and queue but do not execute until Resume. Ops/test hook (the
// drain/resume gate uses it to pin a session mid-flight).
func (s *Server) Pause() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
	s.logf("admission paused")
}

// Resume dispatches everything queued while paused and re-enables
// dispatch.
func (s *Server) Resume() {
	s.mu.Lock()
	s.paused = false
	pend := s.pending
	s.pending = nil
	s.mu.Unlock()
	for _, sess := range pend {
		s.submit(sess)
	}
	s.logf("admission resumed (%d queued sessions dispatched)", len(pend))
}

// dispatch hands a queued session to the runner, or parks it while the
// server is paused.
func (s *Server) dispatch(sess *Session) {
	s.mu.Lock()
	if s.paused {
		s.pending = append(s.pending, sess)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.submit(sess)
}

func (s *Server) submit(sess *Session) {
	if !s.run.Submit(func() { s.execute(sess) }) {
		// Runner already draining: the session stays journaled as
		// started and will re-run on the next boot.
		s.logf("session %s parked for resume (drain in progress)", sess.ID)
	}
}

// sessionBundle creates one session's private observability: a fresh
// registry (hundreds of concurrent stream engines on the service
// registry would trample each other's gauges) plus, when tracing is
// enabled, a span tracer and the root "session" span the whole serving
// path hangs under. Called before the session becomes visible in the
// registry, so the fields are immutable afterwards.
func (s *Server) sessionBundle(tenant string) (*obs.Obs, *obs.Span) {
	o := obs.New()
	if !s.cfg.Spans {
		return o, nil
	}
	o.WithSpans(s.cfg.SpanMax)
	return o, o.SpanTrace().Root("session", "session", obs.L("tenant", tenant))
}

// requeue re-admits a journal-replayed unfinished session.
func (s *Server) requeue(sess *Session) error {
	release, _, err := s.adm.admit(sess.Tenant, sess.Bytes)
	if err != nil {
		// A replayed session fit before; failing now means the budgets
		// were lowered. Refuse to start rather than silently overrun.
		return fmt.Errorf("serve: resumed session %s no longer fits its budget: %w", sess.ID, err)
	}
	sess.release = release
	sess.obs, sess.span = s.sessionBundle(sess.Tenant)
	if sess.span != nil {
		sess.span.Attr("session", sess.ID)
		sess.span.Attr("resumed", "true")
	}
	s.reg.put(sess)
	s.logf("session %s resumed from journal (state %s)", sess.ID, sess.StateNow())
	s.dispatch(sess)
	return nil
}

// Drain gracefully stops the service: admission is closed (new sessions
// are refused with 503), sessions already running are marked draining
// and allowed to finish, and the journals are synced and closed. It
// returns when every accepted session has reached a terminal state or
// ctx expires (in which case unfinished sessions stay journaled for the
// next boot — the same contract as a crash, minus the torn tail).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.reg.markDraining()
	s.logf("drain: admission closed, waiting for in-flight sessions")

	done := make(chan struct{})
	go func() { s.run.Drain(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if jerr := s.jrn.closeAll(); err == nil {
		err = jerr
	}
	s.logf("drain: complete")
	return err
}

// spoolPath names a session's capture file inside the state dir.
func (s *Server) spoolPath(id string, side string) string {
	return filepath.Join(s.cfg.Dir, "spool", id+"-"+side+".pcap")
}

// tenantLagGauge returns (creating on first use) the per-tenant
// watermark-lag peak gauge.
func (s *Server) tenantLagGauge(tenant string) *obs.Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.lagPeak[tenant]
	if !ok {
		g = s.cfg.Obs.Registry().Gauge("choird_tenant_watermark_lag_peak_windows",
			"peak stream watermark lag across a tenant's sessions", obs.L("tenant", tenant))
		s.lagPeak[tenant] = g
	}
	return g
}

// tenantKappaGauge returns (creating on first use) the per-tenant
// last-session-κ gauge. Its exemplar is the root span of the session
// that produced the value — a /metrics.json reader can jump from a
// suspicious κ straight to /v1/sessions/{id}/trace.
func (s *Server) tenantKappaGauge(tenant string) *obs.Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.lastKappa[tenant]
	if !ok {
		g = s.cfg.Obs.Registry().Gauge("choird_tenant_last_kappa",
			"κ of the tenant's most recently finished session", obs.L("tenant", tenant))
		s.lastKappa[tenant] = g
	}
	return g
}
