package debug

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
)

// buildRecording produces a middlebox with n recorded packets.
func buildRecording(t *testing.T, n int) *core.Middlebox {
	t.Helper()
	e := sim.NewEngine(1)
	perfect := nic.Profile{Name: "perfect", LineRateBps: packet.Gbps(100)}
	genQ := nic.New(e, perfect, "gen").NewQueue(0)
	mbQ := nic.New(e, perfect, "mb").NewQueue(0)
	mb := core.New(e, core.Config{
		ID: 1, TSC: clock.NewTSC(2.5e9, 0, 0), Wall: clock.NewSystemClock(0), Out: mbQ,
	})
	genQ.Connect(mb, 0)
	rec := core.NewRecorder(e, "A", nic.PerfectTimestamper{}, true)
	mbQ.Connect(rec, 0)
	bus := control.NewBus(e, nil)
	bus.Send(mb, control.StartRecord{At: 0})
	gen.StartCBR(e, genQ, gen.CBRConfig{
		RateBps: packet.Gbps(40), FrameLen: 1400, Count: n,
		Flow: packet.FiveTuple{Src: packet.IPForNode(1), Dst: packet.IPForNode(2), Proto: packet.ProtoUDP},
	})
	e.Run()
	if got := int(mb.Recorded()); got != n {
		t.Fatalf("recorded %d, want %d", got, n)
	}
	return mb
}

func TestBacktracerFindsEveryPacket(t *testing.T) {
	mb := buildRecording(t, 1000)
	bt := NewBacktracer(mb)
	if bt.Packets() != 1000 {
		t.Fatalf("indexed %d packets", bt.Packets())
	}
	for seq := uint64(0); seq < 1000; seq += 97 {
		o, ok := bt.Trace(packet.Tag{Replayer: 1, Seq: seq})
		if !ok {
			t.Fatalf("packet %d not found", seq)
		}
		if o.String() == "" {
			t.Fatal("empty origin string")
		}
	}
}

func TestBacktracerNeighbours(t *testing.T) {
	mb := buildRecording(t, 200)
	bt := NewBacktracer(mb)
	bursts := mb.Recording()
	// A mid-burst packet has both neighbours; check against the burst
	// layout itself.
	b0 := bursts[0]
	if len(b0.Packets) < 3 {
		t.Skip("first burst too small")
	}
	mid := b0.Packets[1]
	o, ok := bt.Trace(mid.Tag)
	if !ok {
		t.Fatal("mid packet not found")
	}
	if o.Before != b0.Packets[0].Tag || o.After != b0.Packets[2].Tag {
		t.Fatalf("neighbours wrong: %+v", o)
	}
	if o.BurstTSC != b0.TSC {
		t.Fatalf("TSC %d, want %d", o.BurstTSC, b0.TSC)
	}
}

func TestBacktracerUnknownTag(t *testing.T) {
	mb := buildRecording(t, 10)
	bt := NewBacktracer(mb)
	if _, ok := bt.Trace(packet.Tag{Replayer: 9, Seq: 1}); ok {
		t.Fatal("foreign tag resolved")
	}
}

// feed pushes n data packets through a watcher.
func feed(w *Watcher, n int) {
	for i := 0; i < n; i++ {
		w.Receive(&packet.Packet{Tag: packet.Tag{Seq: uint64(i)}, Kind: packet.KindData, FrameLen: 100}, sim.Time(i)*100)
	}
}

func TestWatcherCapturesWindow(t *testing.T) {
	w := &Watcher{
		Match:  func(p *packet.Packet, _ sim.Time) bool { return p.Tag.Seq == 50 },
		Window: 4,
	}
	feed(w, 100)
	hits := w.Hits()
	if len(hits) != 1 {
		t.Fatalf("%d hits, want 1", len(hits))
	}
	h := hits[0]
	if h.Packet.Tag.Seq != 50 {
		t.Fatalf("hit packet %v", h.Packet.Tag)
	}
	if len(h.Before) != 4 || len(h.After) != 4 {
		t.Fatalf("window sizes %d/%d", len(h.Before), len(h.After))
	}
	if h.Before[0].Tag.Seq != 46 || h.Before[3].Tag.Seq != 49 {
		t.Fatalf("pre-window wrong: %v..%v", h.Before[0].Tag, h.Before[3].Tag)
	}
	if h.After[0].Tag.Seq != 51 || h.After[3].Tag.Seq != 54 {
		t.Fatalf("post-window wrong: %v..%v", h.After[0].Tag, h.After[3].Tag)
	}
}

func TestWatcherForwardsTransparently(t *testing.T) {
	var forwarded int
	w := &Watcher{
		Next:  endpointFunc(func(*packet.Packet, sim.Time) { forwarded++ }),
		Match: func(p *packet.Packet, _ sim.Time) bool { return false },
	}
	feed(w, 50)
	if forwarded != 50 {
		t.Fatalf("forwarded %d, want 50", forwarded)
	}
}

func TestWatcherMaxHitsDisarms(t *testing.T) {
	w := &Watcher{
		Match:   func(p *packet.Packet, _ sim.Time) bool { return p.Tag.Seq%10 == 0 },
		Window:  2,
		MaxHits: 2,
	}
	feed(w, 100)
	if len(w.Hits()) != 2 {
		t.Fatalf("%d hits, want 2 (MaxHits)", len(w.Hits()))
	}
}

func TestWatcherOnHitCallback(t *testing.T) {
	called := 0
	w := &Watcher{
		Match:  func(p *packet.Packet, _ sim.Time) bool { return p.Tag.Seq == 5 },
		Window: 2,
		OnHit:  func(Hit) { called++ },
	}
	feed(w, 20)
	if called != 1 {
		t.Fatalf("OnHit called %d times", called)
	}
}

func TestWatcherFlushCompletesTail(t *testing.T) {
	w := &Watcher{
		Match:  func(p *packet.Packet, _ sim.Time) bool { return p.Tag.Seq == 98 },
		Window: 8,
	}
	feed(w, 100) // only 1 packet after the hit
	if len(w.Hits()) != 0 {
		t.Fatal("hit completed without enough post-window packets")
	}
	w.Flush()
	if len(w.Hits()) != 1 {
		t.Fatalf("Flush left %d hits", len(w.Hits()))
	}
	if got := len(w.Hits()[0].After); got != 1 {
		t.Fatalf("flushed post-window has %d packets, want 1", got)
	}
}

func TestWatcherPreWindowShortAtStart(t *testing.T) {
	w := &Watcher{
		Match:  func(p *packet.Packet, _ sim.Time) bool { return p.Tag.Seq == 1 },
		Window: 8,
	}
	feed(w, 20)
	if len(w.Hits()) != 1 {
		t.Fatalf("%d hits", len(w.Hits()))
	}
	if got := len(w.Hits()[0].Before); got != 1 {
		t.Fatalf("pre-window at trace start has %d packets, want 1", got)
	}
}

// TestWatcherPublishesObs: with observability attached, every completed
// hit increments the breakpoint counter and drops a `breakpoint` mark on
// the watcher's trace track at the hit's sim time (bypassing the 1-in-N
// tag sampling — hits are rare and always significant).
func TestWatcherPublishesObs(t *testing.T) {
	o := obs.New().WithTracer(1 << 30) // sample ~nothing: marks must still appear
	w := &Watcher{
		Match:  func(p *packet.Packet, _ sim.Time) bool { return p.Tag.Seq%40 == 10 },
		Window: 2,
	}
	w.EnableObs(o, "test")
	feed(w, 100) // hits at seq 10, 50, 90; 90's post-window needs Flush
	w.Flush()
	if got := len(w.Hits()); got != 3 {
		t.Fatalf("%d hits, want 3", got)
	}
	c := o.Reg.Counter("debug_breakpoint_hits_total", "", obs.L("watcher", "test"))
	if c.Value() != 3 {
		t.Fatalf("hit counter %d, want 3", c.Value())
	}
	if o.Tracer.Len() != 3 {
		t.Fatalf("tracer recorded %d marks, want 3", o.Tracer.Len())
	}
	var buf bytes.Buffer
	if err := o.Tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"breakpoint"`) || !strings.Contains(out, "watch/test") {
		t.Fatalf("trace JSON missing breakpoint mark:\n%s", out)
	}
	if !strings.Contains(out, `"seq":"10"`) {
		t.Fatalf("mark args missing hit identity:\n%s", out)
	}
}

// TestWatcherObsDisabled: no handle, or an empty handle, leaves the
// watcher untouched.
func TestWatcherObsDisabled(t *testing.T) {
	w := &Watcher{
		Match:  func(p *packet.Packet, _ sim.Time) bool { return p.Tag.Seq == 5 },
		Window: 2,
	}
	w.EnableObs(nil, "x")
	w.EnableObs(&obs.Obs{}, "x")
	feed(w, 20)
	if w.ob != nil {
		t.Fatal("empty obs handle installed instruments")
	}
	if len(w.Hits()) != 1 {
		t.Fatalf("%d hits, want 1", len(w.Hits()))
	}
}

type endpointFunc func(*packet.Packet, sim.Time)

func (f endpointFunc) Receive(p *packet.Packet, t sim.Time) { f(p, t) }
