// Package debug builds the interactive debugging primitives the paper
// motivates Choir with ("a foundation for more interactive debugging
// primitives, such as breakpointing and backtracing", §1):
//
//   - Backtracer maps a packet observed anywhere in the network back to
//     its recorded burst in a Choir middlebox, with its original TSC
//     time and in-burst neighbours.
//   - Watcher is a transparent tap with a breakpoint predicate: when a
//     matching packet passes, it snapshots a window of traffic around
//     the hit without perturbing forwarding.
package debug

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Origin locates a packet inside a middlebox recording.
type Origin struct {
	// BurstIndex is the burst's position in the replay buffer.
	BurstIndex int
	// PositionInBurst is the packet's index within the burst.
	PositionInBurst int
	// BurstTSC is the burst's recorded transmission TSC value.
	BurstTSC uint64
	// Before and After are the tags of the in-burst neighbours
	// (zero-value tags at burst edges).
	Before, After packet.Tag
}

// String renders the origin.
func (o Origin) String() string {
	return fmt.Sprintf("burst %d[%d] @TSC %d", o.BurstIndex, o.PositionInBurst, o.BurstTSC)
}

// Backtracer indexes a middlebox recording by tag for O(1) origin
// lookups.
type Backtracer struct {
	bursts []core.BurstInfo
	index  map[packet.Tag]Origin
}

// NewBacktracer snapshots the middlebox's current recording. Build a
// new one after re-recording.
func NewBacktracer(mb *core.Middlebox) *Backtracer {
	bursts := mb.Recording()
	bt := &Backtracer{bursts: bursts, index: make(map[packet.Tag]Origin)}
	for bi, b := range bursts {
		for pi, p := range b.Packets {
			o := Origin{BurstIndex: bi, PositionInBurst: pi, BurstTSC: b.TSC}
			if pi > 0 {
				o.Before = b.Packets[pi-1].Tag
			}
			if pi+1 < len(b.Packets) {
				o.After = b.Packets[pi+1].Tag
			}
			bt.index[p.Tag] = o
		}
	}
	return bt
}

// Trace looks up where a tag was recorded; ok is false for packets not
// in the recording (noise, drops before the middlebox, foreign tags).
func (bt *Backtracer) Trace(tag packet.Tag) (Origin, bool) {
	o, ok := bt.index[tag]
	return o, ok
}

// Packets returns the total indexed packet count.
func (bt *Backtracer) Packets() int { return len(bt.index) }

// Hit is one breakpoint firing: the matching packet plus the window of
// traffic captured around it.
type Hit struct {
	// Packet is the frame that matched.
	Packet *packet.Packet
	// At is the arrival time of the match.
	At sim.Time
	// Before holds up to Window packets preceding the match, oldest
	// first; After holds the Window packets following it.
	Before, After []*packet.Packet
}

// Watcher is a transparent tap (nic.Endpoint) with a breakpoint
// predicate. Insert it between a queue and its destination; forwarding
// is unmodified.
type Watcher struct {
	// Next receives every packet unchanged; nil discards.
	Next nic.Endpoint
	// Match is the breakpoint predicate.
	Match func(p *packet.Packet, at sim.Time) bool
	// Window is the number of packets captured on each side of a hit
	// (default 8).
	Window int
	// OnHit is invoked when a hit's post-window completes.
	OnHit func(Hit)
	// MaxHits disarms the watcher after this many hits (0 = unlimited).
	MaxHits int

	ring    []*packet.Packet
	pending []*pendingHit
	hits    []Hit
	armed   bool
	started bool

	ob *watchObs
}

// watchObs bundles the watcher's instruments; created only by EnableObs.
type watchObs struct {
	tr    *obs.Tracer
	track string
	hits  *obs.Counter
}

// EnableObs publishes breakpoint hits into the observability layer: a
// `debug_breakpoint_hits_total` counter and, for every completed hit, a
// `breakpoint` trace instant at the hit's arrival time on the watcher's
// track (always emitted — hits are rare and significant, so they bypass
// tag sampling). A nil handle is a no-op.
func (w *Watcher) EnableObs(o *obs.Obs, label string) {
	if o == nil || (o.Reg == nil && o.Tracer == nil) {
		return
	}
	w.ob = &watchObs{
		tr:    o.Tracer,
		track: "watch/" + label,
		hits:  o.Reg.Counter("debug_breakpoint_hits_total", "breakpoint predicate hits completed", obs.L("watcher", label)),
	}
}

type pendingHit struct {
	hit  Hit
	need int
}

// Hits returns completed hits so far.
func (w *Watcher) Hits() []Hit { return w.hits }

// Receive implements nic.Endpoint.
func (w *Watcher) Receive(p *packet.Packet, at sim.Time) {
	if !w.started {
		w.started = true
		w.armed = true
	}
	window := w.Window
	if window <= 0 {
		window = 8
	}

	// Complete pending post-windows.
	remaining := w.pending[:0]
	for _, ph := range w.pending {
		ph.hit.After = append(ph.hit.After, p)
		ph.need--
		if ph.need == 0 {
			w.finish(ph.hit)
		} else {
			remaining = append(remaining, ph)
		}
	}
	w.pending = remaining

	if w.armed && w.Match != nil && w.Match(p, at) {
		before := make([]*packet.Packet, len(w.ring))
		copy(before, w.ring)
		w.pending = append(w.pending, &pendingHit{
			hit:  Hit{Packet: p, At: at, Before: before},
			need: window,
		})
		if w.MaxHits > 0 && len(w.hits)+len(w.pending) >= w.MaxHits {
			w.armed = false
		}
	}

	// Maintain the pre-window ring.
	w.ring = append(w.ring, p)
	if len(w.ring) > window {
		w.ring = w.ring[1:]
	}

	if w.Next != nil {
		w.Next.Receive(p, at)
	}
}

// Flush completes pending hits whose post-window will never fill (end
// of experiment).
func (w *Watcher) Flush() {
	for _, ph := range w.pending {
		w.finish(ph.hit)
	}
	w.pending = nil
}

func (w *Watcher) finish(h Hit) {
	w.hits = append(w.hits, h)
	if ob := w.ob; ob != nil {
		ob.hits.Inc()
		if ob.tr != nil {
			ob.tr.Mark(obs.StageBreak, ob.track, h.At, map[string]string{
				"replayer": fmt.Sprintf("%d", h.Packet.Tag.Replayer),
				"stream":   fmt.Sprintf("%d", h.Packet.Tag.Stream),
				"seq":      fmt.Sprintf("%d", h.Packet.Tag.Seq),
			})
		}
	}
	if w.OnHit != nil {
		w.OnHit(h)
	}
}
