package fabric

import (
	"errors"
	"fmt"
)

// SliceState is the reservation lifecycle.
type SliceState int

const (
	// StateDraft is a slice under construction (AddNode etc. allowed).
	StateDraft SliceState = iota
	// StateActive is a submitted slice holding real resources.
	StateActive
	// StateDeleted has released its resources.
	StateDeleted
)

// String implements fmt.Stringer.
func (s SliceState) String() string {
	switch s {
	case StateDraft:
		return "draft"
	case StateActive:
		return "active"
	case StateDeleted:
		return "deleted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ServiceKind enumerates FABRIC network services (§2.1: L2 abstractions
// connecting resources, or L3 connecting to the internal network).
type ServiceKind int

const (
	// L2Bridge connects multiple interfaces within one site — the
	// service the paper's evaluation uses.
	L2Bridge ServiceKind = iota
	// L2PTP is a point-to-point layer-2 circuit between two
	// interfaces, possibly across sites.
	L2PTP
	// FABNetv4 attaches interfaces to the testbed-internal IPv4
	// network.
	FABNetv4
)

// String implements fmt.Stringer.
func (k ServiceKind) String() string {
	switch k {
	case L2Bridge:
		return "L2Bridge"
	case L2PTP:
		return "L2PTP"
	case FABNetv4:
		return "FABNetv4"
	default:
		return fmt.Sprintf("service(%d)", int(k))
	}
}

// Node is a VM reservation on a site.
type Node struct {
	Name    string
	Site    string
	Cores   int
	RAMGiB  int
	DiskGiB int
	nics    []*Interface
	slice   *Slice
}

// Interface is a NIC component attached to a node.
type Interface struct {
	Name  string
	Model NICModel
	node  *Node
}

// Node returns the owning node.
func (i *Interface) Node() *Node { return i.node }

// NetworkService connects interfaces.
type NetworkService struct {
	Name string
	Kind ServiceKind
	Ifs  []*Interface
}

// Slice is a reservation of nodes and services (§2.1). Build it in the
// draft state, Submit to allocate, Delete to release.
type Slice struct {
	Name     string
	fed      *Federation
	state    SliceState
	nodes    []*Node
	services []*NetworkService
}

// NewSlice starts a draft slice on the federation.
func (f *Federation) NewSlice(name string) *Slice {
	return &Slice{Name: name, fed: f}
}

// State returns the lifecycle state.
func (s *Slice) State() SliceState { return s.state }

// Nodes returns the slice's nodes.
func (s *Slice) Nodes() []*Node { return s.nodes }

// Services returns the slice's network services.
func (s *Slice) Services() []*NetworkService { return s.services }

// AddNode declares a VM on a site. Resources are validated at Submit.
func (s *Slice) AddNode(name, site string, cores, ramGiB, diskGiB int) (*Node, error) {
	if s.state != StateDraft {
		return nil, fmt.Errorf("fabric: slice %s is %v, not draft", s.Name, s.state)
	}
	if _, ok := s.fed.Site(site); !ok {
		return nil, fmt.Errorf("fabric: unknown site %q", site)
	}
	for _, n := range s.nodes {
		if n.Name == name {
			return nil, fmt.Errorf("fabric: duplicate node name %q", name)
		}
	}
	if cores <= 0 || ramGiB <= 0 || diskGiB <= 0 {
		return nil, fmt.Errorf("fabric: node %q needs positive resources", name)
	}
	n := &Node{Name: name, Site: site, Cores: cores, RAMGiB: ramGiB, DiskGiB: diskGiB, slice: s}
	s.nodes = append(s.nodes, n)
	return n, nil
}

// AddNIC attaches a NIC component to the node.
func (n *Node) AddNIC(name string, model NICModel) (*Interface, error) {
	if n.slice.state != StateDraft {
		return nil, fmt.Errorf("fabric: slice %s is %v, not draft", n.slice.Name, n.slice.state)
	}
	i := &Interface{Name: name, Model: model, node: n}
	n.nics = append(n.nics, i)
	return i, nil
}

// Interfaces returns the node's NICs.
func (n *Node) Interfaces() []*Interface { return n.nics }

// AddService declares a network service over the given interfaces.
func (s *Slice) AddService(name string, kind ServiceKind, ifs ...*Interface) (*NetworkService, error) {
	if s.state != StateDraft {
		return nil, fmt.Errorf("fabric: slice %s is %v, not draft", s.Name, s.state)
	}
	if len(ifs) == 0 {
		return nil, errors.New("fabric: service needs at least one interface")
	}
	switch kind {
	case L2PTP:
		if len(ifs) != 2 {
			return nil, fmt.Errorf("fabric: L2PTP connects exactly 2 interfaces, got %d", len(ifs))
		}
	case L2Bridge:
		// All interfaces must be within one site (§2.1: "can connect
		// multiple resources within a site").
		site := ifs[0].node.Site
		for _, i := range ifs[1:] {
			if i.node.Site != site {
				return nil, fmt.Errorf("fabric: L2Bridge cannot span sites %s and %s", site, i.node.Site)
			}
		}
	}
	for _, i := range ifs {
		if i.node.slice != s {
			return nil, fmt.Errorf("fabric: interface %s belongs to another slice", i.Name)
		}
	}
	svc := &NetworkService{Name: name, Kind: kind, Ifs: ifs}
	s.services = append(s.services, svc)
	return svc, nil
}

// Submit validates the slice and allocates resources on every site,
// all-or-nothing.
func (s *Slice) Submit() error {
	if s.state != StateDraft {
		return fmt.Errorf("fabric: slice %s is %v, not draft", s.Name, s.state)
	}
	if len(s.nodes) == 0 {
		return errors.New("fabric: empty slice")
	}
	// Group demand per site.
	type demand struct{ cores, ram, disk, vfs, dedicated int }
	demands := map[string]*demand{}
	for _, n := range s.nodes {
		d := demands[n.Site]
		if d == nil {
			d = &demand{}
			demands[n.Site] = d
		}
		d.cores += n.Cores
		d.ram += n.RAMGiB
		d.disk += n.DiskGiB
		for _, i := range n.nics {
			if i.Model.Dedicated() {
				d.dedicated++
			} else {
				d.vfs++
			}
		}
	}
	// Allocate with rollback on failure.
	var done []string
	for site, d := range demands {
		st, _ := s.fed.Site(site)
		if err := st.allocate(d.cores, d.ram, d.disk, d.vfs, d.dedicated); err != nil {
			for _, prev := range done {
				pd := demands[prev]
				ps, _ := s.fed.Site(prev)
				ps.release(pd.cores, pd.ram, pd.disk, pd.vfs, pd.dedicated)
			}
			return err
		}
		done = append(done, site)
	}
	s.state = StateActive
	return nil
}

// Delete releases the slice's resources.
func (s *Slice) Delete() error {
	if s.state != StateActive {
		return fmt.Errorf("fabric: slice %s is %v, not active", s.Name, s.state)
	}
	for _, n := range s.nodes {
		st, _ := s.fed.Site(n.Site)
		vfs, dedicated := 0, 0
		for _, i := range n.nics {
			if i.Model.Dedicated() {
				dedicated++
			} else {
				vfs++
			}
		}
		st.release(n.Cores, n.RAMGiB, n.DiskGiB, vfs, dedicated)
	}
	s.state = StateDeleted
	return nil
}
