// Package fabric models the FABRIC federated testbed's management plane
// (paper §2.1): a federation of sites with finite CPU/RAM/disk/NIC
// inventories, slices reserving nodes and network services across them,
// and a FABlib-style builder API. A submitted slice can be instantiated
// into a runnable experiment environment, with the site's utilization
// feeding the virtualization-noise model — the mechanism behind the
// paper's observation that shared infrastructure load degrades
// consistency.
package fabric

import (
	"fmt"
	"sort"
)

// NICModel enumerates the NIC components a node can attach, mirroring
// the FABRIC component catalog the paper uses.
type NICModel int

const (
	// SharedNIC is an SR-IOV virtual function of a site-shared
	// ConnectX-6 ("NIC_Basic") — 100 Gbps, most abundant.
	SharedNIC NICModel = iota
	// DedicatedConnectX6 is a whole ConnectX-6 ("NIC_ConnectX_6").
	DedicatedConnectX6
	// DedicatedConnectX5 is a whole ConnectX-5 ("NIC_ConnectX_5").
	DedicatedConnectX5
)

// String implements fmt.Stringer.
func (m NICModel) String() string {
	switch m {
	case SharedNIC:
		return "NIC_Basic (SR-IOV VF)"
	case DedicatedConnectX6:
		return "NIC_ConnectX_6"
	case DedicatedConnectX5:
		return "NIC_ConnectX_5"
	default:
		return fmt.Sprintf("NICModel(%d)", int(m))
	}
}

// Dedicated reports whether the model reserves a whole physical NIC.
func (m NICModel) Dedicated() bool { return m != SharedNIC }

// SiteSpec is a site's total inventory.
type SiteSpec struct {
	Name    string
	Cores   int
	RAMGiB  int
	DiskGiB int
	// SharedVFs is the number of SR-IOV virtual functions available.
	SharedVFs int
	// DedicatedNICs is the number of whole smart NICs available.
	DedicatedNICs int
	// PTP reports whether the site provides PTP time service (23 of
	// FABRIC's 33 sites do, §2.2).
	PTP bool
}

// Site tracks allocations against a spec.
type Site struct {
	spec SiteSpec

	usedCores     int
	usedRAM       int
	usedDisk      int
	usedVFs       int
	usedDedicated int
}

// Spec returns the site's inventory.
func (s *Site) Spec() SiteSpec { return s.spec }

// Utilization returns the maximum allocated fraction across CPU, RAM
// and disk — the "2% of CPU, 1.1% of RAM and 0.8% of disk" figure the
// paper reports for its site, and the knob that drives the noise model
// at instantiation.
func (s *Site) Utilization() float64 {
	u := 0.0
	if s.spec.Cores > 0 {
		u = max(u, float64(s.usedCores)/float64(s.spec.Cores))
	}
	if s.spec.RAMGiB > 0 {
		u = max(u, float64(s.usedRAM)/float64(s.spec.RAMGiB))
	}
	if s.spec.DiskGiB > 0 {
		u = max(u, float64(s.usedDisk)/float64(s.spec.DiskGiB))
	}
	return u
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Federation is a set of sites — the management plane's view of the
// testbed.
type Federation struct {
	sites map[string]*Site
}

// NewFederation creates a federation from site specs.
func NewFederation(specs ...SiteSpec) *Federation {
	f := &Federation{sites: make(map[string]*Site, len(specs))}
	for _, sp := range specs {
		f.sites[sp.Name] = &Site{spec: sp}
	}
	return f
}

// DefaultFederation returns a FABRIC-like federation: a handful of
// large sites, most PTP-capable.
func DefaultFederation() *Federation {
	return NewFederation(
		SiteSpec{Name: "STAR", Cores: 640, RAMGiB: 5120, DiskGiB: 100_000, SharedVFs: 128, DedicatedNICs: 8, PTP: true},
		SiteSpec{Name: "DALL", Cores: 512, RAMGiB: 4096, DiskGiB: 80_000, SharedVFs: 96, DedicatedNICs: 6, PTP: true},
		SiteSpec{Name: "UTAH", Cores: 448, RAMGiB: 3584, DiskGiB: 60_000, SharedVFs: 96, DedicatedNICs: 4, PTP: true},
		SiteSpec{Name: "TACC", Cores: 384, RAMGiB: 3072, DiskGiB: 60_000, SharedVFs: 64, DedicatedNICs: 4, PTP: false},
		SiteSpec{Name: "MASS", Cores: 320, RAMGiB: 2560, DiskGiB: 40_000, SharedVFs: 64, DedicatedNICs: 2, PTP: true},
	)
}

// Site returns a site by name.
func (f *Federation) Site(name string) (*Site, bool) {
	s, ok := f.sites[name]
	return s, ok
}

// SiteNames returns site names sorted alphabetically.
func (f *Federation) SiteNames() []string {
	out := make([]string, 0, len(f.sites))
	for n := range f.sites {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LeastUtilizedSite returns the site with the lowest utilization,
// preferring PTP-capable sites when requirePTP is set — how an
// experimenter picks "a large yet barely used site".
func (f *Federation) LeastUtilizedSite(requirePTP bool) (*Site, error) {
	var best *Site
	for _, name := range f.SiteNames() {
		s := f.sites[name]
		if requirePTP && !s.spec.PTP {
			continue
		}
		if best == nil || s.Utilization() < best.Utilization() {
			best = s
		}
	}
	if best == nil {
		return nil, fmt.Errorf("fabric: no site satisfies requirePTP=%v", requirePTP)
	}
	return best, nil
}

// allocate reserves node resources; it is all-or-nothing.
func (s *Site) allocate(cores, ramGiB, diskGiB, vfs, dedicated int) error {
	switch {
	case s.usedCores+cores > s.spec.Cores:
		return fmt.Errorf("fabric: site %s out of cores (%d used of %d, need %d)", s.spec.Name, s.usedCores, s.spec.Cores, cores)
	case s.usedRAM+ramGiB > s.spec.RAMGiB:
		return fmt.Errorf("fabric: site %s out of RAM", s.spec.Name)
	case s.usedDisk+diskGiB > s.spec.DiskGiB:
		return fmt.Errorf("fabric: site %s out of disk", s.spec.Name)
	case s.usedVFs+vfs > s.spec.SharedVFs:
		return fmt.Errorf("fabric: site %s out of shared NIC VFs", s.spec.Name)
	case s.usedDedicated+dedicated > s.spec.DedicatedNICs:
		return fmt.Errorf("fabric: site %s out of dedicated NICs", s.spec.Name)
	}
	s.usedCores += cores
	s.usedRAM += ramGiB
	s.usedDisk += diskGiB
	s.usedVFs += vfs
	s.usedDedicated += dedicated
	return nil
}

// release returns node resources.
func (s *Site) release(cores, ramGiB, diskGiB, vfs, dedicated int) {
	s.usedCores -= cores
	s.usedRAM -= ramGiB
	s.usedDisk -= diskGiB
	s.usedVFs -= vfs
	s.usedDedicated -= dedicated
}
