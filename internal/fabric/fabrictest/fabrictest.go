// Package fabrictest provides the shared fabric fixtures the fabric
// and federation test suites build on: a two-site federation with
// asymmetric capacity (one generous PTP site, one small non-PTP site)
// and the paper artifact's three-VM slice topology. Promoted out of
// fabric's own tests so downstream suites reuse the exact fixtures
// instead of copy-pasting them.
package fabrictest

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
)

// TinyFederation returns the canonical two-site test federation:
// site A (16 cores, 4 dedicated NICs, PTP) and site B (8 cores, no
// dedicated NICs, no PTP). Capacity and rollback tests depend on these
// exact numbers.
func TinyFederation() *fabric.Federation {
	return fabric.NewFederation(
		fabric.SiteSpec{Name: "A", Cores: 16, RAMGiB: 64, DiskGiB: 500, SharedVFs: 4, DedicatedNICs: 4, PTP: true},
		fabric.SiteSpec{Name: "B", Cores: 8, RAMGiB: 32, DiskGiB: 200, SharedVFs: 2, DedicatedNICs: 0, PTP: false},
	)
}

// PaperSlice builds the artifact's three-VM topology (generator →
// replayer → recorder on an L2Bridge) on site A, with every NIC of the
// given model. The slice is left in draft state.
func PaperSlice(tb testing.TB, f *fabric.Federation, model fabric.NICModel) *fabric.Slice {
	tb.Helper()
	s := f.NewSlice("choir")
	gen, err := s.AddNode("generator", "A", 4, 16, 100)
	if err != nil {
		tb.Fatal(err)
	}
	rep, err := s.AddNode("replayer", "A", 4, 16, 100)
	if err != nil {
		tb.Fatal(err)
	}
	rec, err := s.AddNode("recorder", "A", 4, 16, 100)
	if err != nil {
		tb.Fatal(err)
	}
	gi, _ := gen.AddNIC("g0", model)
	ri, _ := rep.AddNIC("r0", model)
	ci, _ := rec.AddNIC("c0", model)
	if _, err := s.AddService("net", fabric.L2Bridge, gi, ri, ci); err != nil {
		tb.Fatal(err)
	}
	return s
}

// Wide returns a federation of n uniform generous PTP sites named
// site0..site<n-1> — the shape federated replay campaigns provision.
func Wide(n int) *fabric.Federation {
	specs := make([]fabric.SiteSpec, n)
	for k := range specs {
		specs[k] = fabric.SiteSpec{
			Name: fmt.Sprintf("site%d", k), Cores: 64, RAMGiB: 512, DiskGiB: 4096,
			SharedVFs: 16, DedicatedNICs: 2, PTP: true,
		}
	}
	return fabric.NewFederation(specs...)
}
