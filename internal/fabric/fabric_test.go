package fabric_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/fabric/fabrictest"
)

func TestSliceLifecycle(t *testing.T) {
	f := fabrictest.TinyFederation()
	s := fabrictest.PaperSlice(t, f, fabric.DedicatedConnectX6)
	if s.State() != fabric.StateDraft {
		t.Fatalf("state %v", s.State())
	}
	if err := s.Submit(); err != nil {
		t.Fatal(err)
	}
	if s.State() != fabric.StateActive {
		t.Fatalf("state %v after submit", s.State())
	}
	site, _ := f.Site("A")
	if site.Utilization() == 0 {
		t.Fatal("submit did not allocate")
	}
	if err := s.Delete(); err != nil {
		t.Fatal(err)
	}
	if site.Utilization() != 0 {
		t.Fatal("delete did not release")
	}
	if err := s.Delete(); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	f := fabrictest.TinyFederation()
	empty := f.NewSlice("empty")
	if err := empty.Submit(); err == nil {
		t.Fatal("empty slice accepted")
	}
	s := fabrictest.PaperSlice(t, f, fabric.DedicatedConnectX6)
	if err := s.Submit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(); err == nil {
		t.Fatal("double submit accepted")
	}
	// Mutation after submit rejected.
	if _, err := s.AddNode("late", "A", 1, 1, 1); err == nil {
		t.Fatal("AddNode on active slice accepted")
	}
	if _, err := s.Nodes()[0].AddNIC("late", fabric.SharedNIC); err == nil {
		t.Fatal("AddNIC on active slice accepted")
	}
}

func TestCapacityExhaustion(t *testing.T) {
	f := fabrictest.TinyFederation()
	// Site A has 4 dedicated NICs; a slice wanting 5 must fail and
	// leave no residue.
	s := f.NewSlice("greedy")
	n, _ := s.AddNode("n", "A", 4, 16, 100)
	for i := 0; i < 5; i++ {
		n.AddNIC(fmt.Sprintf("d%d", i), fabric.DedicatedConnectX6)
	}
	if err := s.Submit(); err == nil {
		t.Fatal("over-allocation accepted")
	}
	site, _ := f.Site("A")
	if site.Utilization() != 0 {
		t.Fatal("failed submit leaked resources")
	}
}

func TestRollbackAcrossSites(t *testing.T) {
	f := fabrictest.TinyFederation()
	s := f.NewSlice("cross")
	a, _ := s.AddNode("a", "A", 4, 16, 100)
	a.AddNIC("x", fabric.SharedNIC)
	b, _ := s.AddNode("b", "B", 4, 16, 100)
	// Site B has zero dedicated NICs: this demand must fail the whole
	// submit and roll back site A.
	b.AddNIC("y", fabric.DedicatedConnectX6)
	if err := s.Submit(); err == nil {
		t.Fatal("impossible cross-site slice accepted")
	}
	siteA, _ := f.Site("A")
	if siteA.Utilization() != 0 {
		t.Fatal("rollback failed for site A")
	}
}

func TestServiceValidation(t *testing.T) {
	f := fabrictest.TinyFederation()
	s := f.NewSlice("svc")
	na, _ := s.AddNode("na", "A", 1, 4, 10)
	nb, _ := s.AddNode("nb", "B", 1, 4, 10)
	ia, _ := na.AddNIC("ia", fabric.SharedNIC)
	ib, _ := nb.AddNIC("ib", fabric.SharedNIC)

	// L2Bridge across sites is invalid.
	if _, err := s.AddService("bad", fabric.L2Bridge, ia, ib); err == nil {
		t.Fatal("cross-site L2Bridge accepted")
	}
	// L2PTP wants exactly two interfaces.
	if _, err := s.AddService("bad2", fabric.L2PTP, ia); err == nil {
		t.Fatal("one-ended L2PTP accepted")
	}
	if _, err := s.AddService("ok", fabric.L2PTP, ia, ib); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddService("none", fabric.FABNetv4); err == nil {
		t.Fatal("service without interfaces accepted")
	}
	// Foreign interface rejected.
	other := f.NewSlice("other")
	no, _ := other.AddNode("n", "A", 1, 4, 10)
	io, _ := no.AddNIC("i", fabric.SharedNIC)
	if _, err := s.AddService("foreign", fabric.FABNetv4, io); err == nil {
		t.Fatal("foreign interface accepted")
	}
}

func TestNodeValidation(t *testing.T) {
	f := fabrictest.TinyFederation()
	s := f.NewSlice("v")
	if _, err := s.AddNode("n", "NOPE", 1, 1, 1); err == nil {
		t.Fatal("unknown site accepted")
	}
	s.AddNode("n", "A", 1, 1, 1)
	if _, err := s.AddNode("n", "A", 1, 1, 1); err == nil {
		t.Fatal("duplicate node name accepted")
	}
	if _, err := s.AddNode("z", "A", 0, 1, 1); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestLeastUtilizedSite(t *testing.T) {
	f := fabrictest.TinyFederation()
	site, err := f.LeastUtilizedSite(true)
	if err != nil {
		t.Fatal(err)
	}
	if site.Spec().Name != "A" {
		t.Fatalf("picked %s", site.Spec().Name)
	}
	// Fill A; with PTP not required, B becomes least utilized.
	s := fabrictest.PaperSlice(t, f, fabric.SharedNIC)
	if err := s.Submit(); err != nil {
		t.Fatal(err)
	}
	site, err = f.LeastUtilizedSite(false)
	if err != nil {
		t.Fatal(err)
	}
	if site.Spec().Name != "B" {
		t.Fatalf("picked %s after loading A", site.Spec().Name)
	}
	// Require PTP from a federation with none.
	noPTP := fabric.NewFederation(fabric.SiteSpec{Name: "X", Cores: 1, RAMGiB: 1, DiskGiB: 1})
	if _, err := noPTP.LeastUtilizedSite(true); err == nil {
		t.Fatal("PTP requirement not enforced")
	}
}

func TestEnvironmentFromSlice(t *testing.T) {
	f := fabrictest.TinyFederation()
	s := fabrictest.PaperSlice(t, f, fabric.DedicatedConnectX6)
	plan := fabric.ExperimentPlan{Generator: "generator", Recorder: "recorder", Replayers: []string{"replayer"}}
	if _, err := s.Environment(plan); err == nil {
		t.Fatal("draft slice instantiated")
	}
	if err := s.Submit(); err != nil {
		t.Fatal(err)
	}
	env, err := s.Environment(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(env.Name, "Dedicated 40") {
		t.Fatalf("env %q, want dedicated 40G family", env.Name)
	}
	if env.Replayers != 1 || env.RateGbps != 40 {
		t.Fatalf("env shape: %+v", env)
	}
	// PTP site keeps the PTP discipline.
	if env.Sync.Residual.(interface{ Mean() float64 }).Mean() != clock.PTPDefault().Residual.Mean() {
		t.Fatal("PTP site should keep PTP sync")
	}
}

func TestEnvironmentSharedAndRate(t *testing.T) {
	f := fabrictest.TinyFederation()
	s := fabrictest.PaperSlice(t, f, fabric.SharedNIC)
	if err := s.Submit(); err != nil {
		t.Fatal(err)
	}
	env, err := s.Environment(fabric.ExperimentPlan{
		Generator: "generator", Recorder: "recorder",
		Replayers: []string{"replayer"}, RateGbps: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(env.Name, "Shared 80") {
		t.Fatalf("env %q", env.Name)
	}
}

func TestEnvironmentValidation(t *testing.T) {
	f := fabrictest.TinyFederation()
	s := fabrictest.PaperSlice(t, f, fabric.SharedNIC)
	s.Submit()
	cases := []fabric.ExperimentPlan{
		{Generator: "nope", Recorder: "recorder", Replayers: []string{"replayer"}},
		{Generator: "generator", Recorder: "nope", Replayers: []string{"replayer"}},
		{Generator: "generator", Recorder: "recorder"},
		{Generator: "generator", Recorder: "recorder", Replayers: []string{"nope"}},
	}
	for i, plan := range cases {
		if _, err := s.Environment(plan); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestEndToEndSliceExperiment(t *testing.T) {
	// The artifact workflow in miniature: provision → instantiate →
	// run → metrics.
	f := fabric.DefaultFederation()
	site, err := f.LeastUtilizedSite(true)
	if err != nil {
		t.Fatal(err)
	}
	s := f.NewSlice("artifact")
	gen, _ := s.AddNode("generator", site.Spec().Name, 4, 16, 100)
	rep, _ := s.AddNode("replayer", site.Spec().Name, 4, 16, 100)
	rec, _ := s.AddNode("recorder", site.Spec().Name, 4, 16, 100)
	gi, _ := gen.AddNIC("g", fabric.DedicatedConnectX6)
	ri, _ := rep.AddNIC("r", fabric.DedicatedConnectX6)
	ci, _ := rec.AddNIC("c", fabric.DedicatedConnectX6)
	if _, err := s.AddService("net", fabric.L2Bridge, gi, ri, ci); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(); err != nil {
		t.Fatal(err)
	}
	env, err := s.Environment(fabric.ExperimentPlan{
		Generator: "generator", Recorder: "recorder", Replayers: []string{"replayer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.Run(env, experiments.TrialConfig{Packets: 6000, Runs: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean.Kappa <= 0 || res.Mean.Kappa > 1 {
		t.Fatalf("κ = %v", res.Mean.Kappa)
	}
	if err := s.Delete(); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationScalesStalls(t *testing.T) {
	// A busy site must pressure VMs harder than an idle one.
	f := fabric.NewFederation(fabric.SiteSpec{Name: "BUSY", Cores: 16, RAMGiB: 100, DiskGiB: 1000, SharedVFs: 10, DedicatedNICs: 5, PTP: true})
	// Pre-load the site to ~75% cores with another tenant.
	tenant := f.NewSlice("tenant")
	tn, _ := tenant.AddNode("t", "BUSY", 12, 10, 10)
	tn.AddNIC("t0", fabric.SharedNIC)
	if err := tenant.Submit(); err != nil {
		t.Fatal(err)
	}

	mk := func(fed *fabric.Federation) float64 {
		s := fed.NewSlice("exp")
		g, _ := s.AddNode("g", fed.SiteNames()[0], 1, 4, 10)
		r, _ := s.AddNode("r", fed.SiteNames()[0], 1, 4, 10)
		c, _ := s.AddNode("c", fed.SiteNames()[0], 1, 4, 10)
		gi, _ := g.AddNIC("g0", fabric.DedicatedConnectX6)
		ri, _ := r.AddNIC("r0", fabric.DedicatedConnectX6)
		ci, _ := c.AddNIC("c0", fabric.DedicatedConnectX6)
		s.AddService("net", fabric.L2Bridge, gi, ri, ci)
		if err := s.Submit(); err != nil {
			t.Fatal(err)
		}
		env, err := s.Environment(fabric.ExperimentPlan{Generator: "g", Recorder: "c", Replayers: []string{"r"}})
		if err != nil {
			t.Fatal(err)
		}
		return env.StallGap.Mean()
	}

	idle := fabric.NewFederation(fabric.SiteSpec{Name: "IDLE", Cores: 1000, RAMGiB: 10000, DiskGiB: 100000, SharedVFs: 10, DedicatedNICs: 5, PTP: true})
	busyGap := mk(f)
	idleGap := mk(idle)
	if busyGap >= idleGap {
		t.Fatalf("busy site stall gap %v should be shorter than idle %v", busyGap, idleGap)
	}
}
