package fabric

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// ExperimentPlan names the experiment roles within a slice — the shape
// of the paper's three-VM artifact topology (generator → replayer(s) →
// recorder on an L2Bridge).
type ExperimentPlan struct {
	// Generator and Recorder are node names in the slice.
	Generator, Recorder string
	// Replayers are the Choir middlebox nodes (1 or more).
	Replayers []string
	// RateGbps is the offered load (default 40).
	RateGbps float64
}

// Environment derives a runnable testbed environment from an active
// slice: NIC component models select the dedicated/shared timing
// personality, the site's PTP capability selects the clock discipline,
// and the site's utilization drives the virtualization-noise intensity
// — busier hosts steal more CPU from the experiment's VMs.
func (s *Slice) Environment(plan ExperimentPlan) (testbed.Env, error) {
	var zero testbed.Env
	if s.state != StateActive {
		return zero, fmt.Errorf("fabric: slice %s is %v; submit it first", s.Name, s.state)
	}
	if plan.RateGbps == 0 {
		plan.RateGbps = 40
	}
	if len(plan.Replayers) == 0 {
		return zero, fmt.Errorf("fabric: plan needs at least one replayer")
	}

	byName := map[string]*Node{}
	for _, n := range s.nodes {
		byName[n.Name] = n
	}
	need := func(name, role string) (*Node, error) {
		n, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("fabric: %s node %q not in slice", role, name)
		}
		if len(n.nics) == 0 {
			return nil, fmt.Errorf("fabric: %s node %q has no NIC", role, name)
		}
		return n, nil
	}
	gen, err := need(plan.Generator, "generator")
	if err != nil {
		return zero, err
	}
	rec, err := need(plan.Recorder, "recorder")
	if err != nil {
		return zero, err
	}

	// Replayer NIC models must agree; they select the environment
	// family.
	dedicated := false
	for idx, name := range plan.Replayers {
		n, err := need(name, "replayer")
		if err != nil {
			return zero, err
		}
		d := n.nics[0].Model.Dedicated()
		if idx == 0 {
			dedicated = d
		} else if d != dedicated {
			return zero, fmt.Errorf("fabric: replayers mix shared and dedicated NICs")
		}
	}

	var env testbed.Env
	switch {
	case dedicated && plan.RateGbps > 40:
		env = testbed.FabricDedicated80()
	case dedicated:
		env = testbed.FabricDedicated40()
	case plan.RateGbps > 40:
		env = testbed.FabricShared80()
	default:
		env = testbed.FabricShared40()
	}
	env.Name = fmt.Sprintf("slice %s (%s)", s.Name, env.Name)
	env.RateGbps = plan.RateGbps
	env.Replayers = len(plan.Replayers)

	// Clock discipline: PTP where the site provides it, plain NTP
	// elsewhere (§2.2: 23 of 33 sites provide PTP).
	site, _ := s.fed.Site(byName[plan.Replayers[0]].Site)
	if !site.Spec().PTP {
		env.Sync = clock.NTPDefault()
	}

	// Host pressure: scale steal-time density with the site's
	// utilization. The paper's site sat at ~2% allocated; a site at
	// 50% pressures VMs roughly an order of magnitude harder.
	if u := site.Utilization(); u > 0 && env.StallGap != nil {
		scale := 1 + 25*u
		env.StallGap = sim.Exponential{MeanNs: 8e6 / scale}
	}

	_ = gen
	_ = rec
	return env, nil
}
