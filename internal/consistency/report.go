// Package consistency renders the canonical §3 metric report for a pair
// of pcap captures — the exact text `cmd/consistency` prints. It exists
// as a package so the consistency *service* (internal/serve) can return
// byte-identical reports over HTTP: the differential gate in verify.sh
// literally `cmp`s a served report against the CLI's output for the
// same pair, which is only meaningful if both render through one code
// path.
package consistency

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/pcap"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Input names one capture: Path is where the bytes live, Name is what
// the report calls it (the CLI passes its argument for both; the
// service passes the spool path and the tenant's uploaded filename).
type Input struct {
	Path string
	Name string
}

// Options mirrors the CLI's rendering flags.
type Options struct {
	// Hist appends IAT/latency delta histograms.
	Hist bool
	// WithinNs is the |IAT delta| bucket the I line quotes (the CLI's
	// -within flag, default 10).
	WithinNs int64
}

// Report loads both captures, scores them with the batch §3 pipeline
// (tagged data packets only, normalized timelines — the paper's
// evaluation protocol) and writes the deterministic report: the same
// pair of captures always renders byte-identical text.
func Report(w io.Writer, a, b Input, opts Options) error {
	load := func(in Input) (*trace.Trace, int, error) {
		tr, err := pcap.ReadAnyFile(in.Path)
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", in.Name, err)
		}
		return tr.DataOnly().Normalize(), tr.Len(), nil
	}
	ta, totalA, err := load(a)
	if err != nil {
		return err
	}
	tb, totalB, err := load(b)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "trial A: %s — %d frames, %d tagged data packets, span %.6fs\n",
		a.Name, totalA, ta.Len(), ta.Span().Seconds())
	fmt.Fprintf(w, "trial B: %s — %d frames, %d tagged data packets, span %.6fs\n",
		b.Name, totalB, tb.Len(), tb.Span().Seconds())

	res, err := metrics.Compare(ta, tb, metrics.Options{KeepDeltas: true})
	if err != nil {
		return err
	}

	fmt.Fprintln(w)
	fmt.Fprintf(w, "U (uniqueness) = %.6g   (%d common, %d only-A, %d only-B)\n", res.U, res.Common, res.OnlyA, res.OnlyB)
	fmt.Fprintf(w, "O (ordering)   = %.6g   (%d packets moved, %.1f%% of common)\n", res.O, res.MovedPackets, res.MovedFraction()*100)
	fmt.Fprintf(w, "L (latency)    = %.6g\n", res.L)
	fmt.Fprintf(w, "I (IAT)        = %.6g   (%.2f%% within ±%dns)\n", res.I, stats.PercentWithin(res.IATDeltas, opts.WithinNs), opts.WithinNs)
	fmt.Fprintf(w, "κ              = %.4f\n", res.Kappa)

	if opts.Hist {
		fmt.Fprintln(w)
		hi := stats.NewSymLogHistogram(8)
		hi.AddAll(res.IATDeltas)
		fmt.Fprintln(w, hi.Render("IAT delta (ns)", 46))
		hl := stats.NewSymLogHistogram(8)
		hl.AddAll(res.LatencyDeltas)
		fmt.Fprintln(w, hl.Render("latency delta (ns)", 46))
	}
	return nil
}
