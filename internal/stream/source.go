package stream

import (
	"io"
	"sync"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TraceSource adapts an in-memory trace to the Source interface — handy
// for tests and for comparing a live tap against a reference capture.
type TraceSource struct {
	tr *trace.Trace
	i  int
}

// NewTraceSource wraps tr.
func NewTraceSource(tr *trace.Trace) *TraceSource { return &TraceSource{tr: tr} }

// Next implements Source.
func (s *TraceSource) Next() (*packet.Packet, sim.Time, error) {
	if s.i >= s.tr.Len() {
		return nil, 0, io.EOF
	}
	p, t := s.tr.Packets[s.i], s.tr.Times[s.i]
	s.i++
	return p, t, nil
}

// Tap is a channel-backed live Source: wire it as a nic.Endpoint (or
// call Receive from a core.Recorder-style capture point) on a running
// simulation and feed the streaming engine while the trial executes.
// Receive applies the same monotone clamp capture stacks do, so the
// stream satisfies the Source timestamp contract even when hardware
// clock sampling jitters across adjacent frames.
//
// Receive blocks when the tap's buffer is full — backpressure extends
// into the producer, which keeps the engine's memory bounded. Close the
// tap when the trial ends; Next then drains the buffer and reports EOF.
type Tap struct {
	ch       chan tapItem
	mu       sync.Mutex
	last     sim.Time
	closed   bool
	dataOnly bool
	received uint64
}

type tapItem struct {
	p  *packet.Packet
	at sim.Time
}

// NewTap creates a tap with the given buffer capacity (minimum 1). When
// dataOnly is set, non-data frames are dropped at the tap, mirroring the
// recorder's tag filter.
func NewTap(buffer int, dataOnly bool) *Tap {
	if buffer < 1 {
		buffer = 1
	}
	return &Tap{ch: make(chan tapItem, buffer), dataOnly: dataOnly}
}

// Receive implements nic.Endpoint.
func (t *Tap) Receive(p *packet.Packet, at sim.Time) {
	if t.dataOnly && p.Kind != packet.KindData {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if at < t.last {
		at = t.last
	}
	t.last = at
	t.received++
	// Sending under the lock makes Receive/Close race-free; the consumer
	// (Next) never takes the lock, so a full buffer still drains.
	t.ch <- tapItem{p: p, at: at}
}

// Received returns how many frames the tap has accepted.
func (t *Tap) Received() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.received
}

// Close ends the stream; Next returns io.EOF once the buffer drains.
// Safe to call once per tap.
func (t *Tap) Close() {
	t.mu.Lock()
	if !t.closed {
		t.closed = true
		close(t.ch)
	}
	t.mu.Unlock()
}

// Next implements Source.
func (t *Tap) Next() (*packet.Packet, sim.Time, error) {
	it, ok := <-t.ch
	if !ok {
		return nil, 0, io.EOF
	}
	return it.p, it.at, nil
}
