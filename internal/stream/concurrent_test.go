package stream

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/fault/harness"
	"repro/internal/obs"
)

// TestManyConcurrentEngines is the service-shaped stress test: many
// engines run at once (the way internal/serve multiplexes sessions),
// each with a distinct input pair, and every one must (a) reproduce the
// summary its sequential twin computes, (b) respect its configured
// memory gate, and (c) keep its private obs registry uncontaminated by
// its neighbours. Run under -race this doubles as the engine's
// data-race certificate for multi-tenant use.
func TestManyConcurrentEngines(t *testing.T) {
	const engines = 32
	base := harness.Baseline("A", 2000, 17)

	type job struct {
		plan fault.Plan
		cfg  Config
		want *Summary
	}
	jobs := make([]*job, engines)
	for i := range jobs {
		j := &job{
			plan: fault.Plan{Seed: uint64(1000 + i), Drop: 0.03, Dup: 0.01, Reorder: 0.04, Jitter: 250},
			cfg: Config{
				Window: 50_000,
				Shards: 1 + i%4,
				Buffer: 16 << (i % 3),
				MaxLag: 1 + i%3,
			},
		}
		jobs[i] = j
	}
	pair := func(j *job) (Source, Source) {
		b := j.plan.Apply(base)
		b.Name = "B"
		return NewTraceSource(base), NewTraceSource(b)
	}

	// Sequential reference pass.
	for i, j := range jobs {
		a, b := pair(j)
		sum, err := Run(a, b, j.cfg)
		if err != nil {
			t.Fatalf("engine %d sequential: %v", i, err)
		}
		j.want = sum
	}

	// Concurrent pass: every engine at once, each instrumented with its
	// own registry.
	regs := make([]*obs.Obs, engines)
	sums := make([]*Summary, engines)
	errs := make([]error, engines)
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		regs[i] = obs.New()
		go func() {
			defer wg.Done()
			cfg := j.cfg
			cfg.Obs = regs[i]
			a, b := pair(j)
			sums[i], errs[i] = Run(a, b, cfg)
		}()
	}
	wg.Wait()

	for i, j := range jobs {
		if errs[i] != nil {
			t.Fatalf("engine %d concurrent: %v", i, errs[i])
		}
		got, want := sums[i], j.want
		if got.Aggregate != want.Aggregate {
			t.Errorf("engine %d: concurrent aggregate %+v != sequential %+v", i, got.Aggregate, want.Aggregate)
		}
		if len(got.Windows) != len(want.Windows) {
			t.Errorf("engine %d: %d windows concurrent vs %d sequential", i, len(got.Windows), len(want.Windows))
			continue
		}
		for w := range got.Windows {
			gw, ww := got.Windows[w], want.Windows[w]
			if gw.Result.Kappa != ww.Result.Kappa || gw.Result.U != ww.Result.U ||
				gw.Result.O != ww.Result.O || gw.Result.L != ww.Result.L || gw.Result.I != ww.Result.I ||
				gw.Result.Common != ww.Result.Common ||
				gw.Start != ww.Start || gw.End != ww.End {
				t.Errorf("engine %d window %d differs between concurrent and sequential", i, w)
			}
		}
		// The watermark-lag gate bounds open windows regardless of
		// scheduling: MaxLag in-flight plus the one being filled.
		if got.Stats.PeakOpenWindows > j.cfg.MaxLag+1 {
			t.Errorf("engine %d: peak open windows %d exceeds MaxLag+1 = %d",
				i, got.Stats.PeakOpenWindows, j.cfg.MaxLag+1)
		}
		// The per-run gauges land in the engine's own registry with the
		// engine's own peak — neighbours must not bleed in.
		for _, trial := range []string{"A", "B"} {
			if _, ok := regs[i].Registry().GaugeValue("stream_watermark_lag_peak_windows", obs.L("trial", trial)); !ok {
				t.Errorf("engine %d: missing watermark-lag gauge for trial %s", i, trial)
			}
		}
		if v, ok := regs[i].Registry().GaugeValue("stream_running_kappa"); ok {
			if want := got.Aggregate.Kappa; v != want {
				t.Errorf("engine %d: final running κ gauge %v != aggregate κ %v", i, v, want)
			}
		}
	}
}

// TestConcurrentEnginesSharedRegistryIsSafe: sharing one registry across
// engines is a supported (if noisy) configuration — gauges overwrite
// but nothing races or panics.
func TestConcurrentEnginesSharedRegistryIsSafe(t *testing.T) {
	base := harness.Baseline("A", 500, 3)
	shared := obs.New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			plan := fault.Plan{Seed: uint64(i), Drop: 0.05}
			b := plan.Apply(base)
			b.Name = fmt.Sprintf("B%d", i)
			cfg := Config{Window: 50_000, Shards: 2, Buffer: 16, MaxLag: 2, Obs: shared}
			if _, err := Run(NewTraceSource(base), NewTraceSource(b), cfg); err != nil {
				t.Errorf("engine %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
}
