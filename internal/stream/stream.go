// Package stream is the streaming consistency engine: it computes the
// paper's per-window §3 metrics (U, O, L, I, κ) over two packet streams
// in bounded memory, without ever materializing the full traces that the
// batch metrics.Compare / CompareWindowed paths require.
//
// The abstract pitches κ as "designed to support comparison across time,
// configurations and environments"; this package supplies the "across
// time" half at scale. Architecture (ft-replay-style flow sharding,
// IoTreeplay-style synchronized merge):
//
//		source A ─ ingest ─┐                 ┌─ shard 0 ─┐
//		                   ├─ hash(tag,occ) ─┤    ...    ├─ merge ─ window κ, aggregate κ
//		source B ─ ingest ─┘                 └─ shard N ─┘
//
//	  - Two ingest stages pull packets (from an incremental pcap.Stream, a
//	    live Tap fed by the simulated testbed, or any Source), normalize
//	    times onto the trial-relative timeline, assign tumbling windows and
//	    per-window occurrence keys, and emit compact records.
//	  - A flow-sharding stage hashes the packet identity key (trailer tag +
//	    occurrence, the same key metrics/match.go matches on) onto N worker
//	    goroutines. Each worker matches A/B records per window and folds
//	    them into integer partial sums (metrics.Sums).
//	  - Watermarks close windows: when both sources have advanced past a
//	    window's end, the coordinator broadcasts a close, shards flush
//	    their partials, and the merge stage assembles them with the exact
//	    Equation 1–5 operations (metrics.(*Sums).Assemble) — so every
//	    streaming window score equals metrics.CompareWindowed bit for bit.
//	  - Backpressure bounds memory: shard channels are bounded, and a gate
//	    stops either ingest from running more than MaxLag windows ahead of
//	    the close watermark, so per-shard state never exceeds a few
//	    windows' worth of packets no matter how long the capture is.
package stream

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Source yields one trial's packets in arrival order (non-decreasing
// timestamps). Next returns io.EOF at a clean end of stream; any other
// error terminates ingestion of that side and is reported by Run.
// pcap.Stream, TraceSource and Tap all implement Source.
type Source interface {
	Next() (*packet.Packet, sim.Time, error)
}

// Config parameterizes the engine.
type Config struct {
	// Window is the tumbling-window length on the trial-relative
	// timeline (required, > 0). Matches metrics.CompareWindowed.
	Window sim.Duration
	// Shards is the number of flow-shard workers (default: GOMAXPROCS,
	// capped at 8).
	Shards int
	// Buffer is the per-shard channel capacity in records (default 512).
	Buffer int
	// MaxLag bounds how many windows either source may run ahead of the
	// joint close watermark (default 8, minimum 1). Together with Buffer
	// it caps per-shard memory.
	MaxLag int
	// DataOnly drops noise/control/invalid packets at ingest, mirroring
	// trace.DataOnly — what the paper's analysis pipeline does before
	// scoring pcap captures.
	DataOnly bool
	// DiscardWindows drops per-window results after OnWindow (if any)
	// has seen them, keeping only the running aggregate — constant
	// memory for arbitrarily long runs.
	DiscardWindows bool
	// OnWindow, when non-nil, is invoked from the merge stage for every
	// closed window, in window order. It must not block indefinitely:
	// the pipeline's backpressure extends through it.
	OnWindow func(metrics.WindowResult)
	// Obs, when non-nil, attaches run telemetry: per-shard queue
	// high-water, per-trial watermark lag peaks, window close latency,
	// pairs matched/orphaned, and running whole-run U/O/L/I/κ gauges
	// refreshed after every closed window (readable mid-run via
	// Registry.GaugeValue or a /metrics scrape). Summaries are
	// bit-identical with or without it.
	Obs *obs.Obs
	// Span, when non-nil, is the parent causal span the run hangs its
	// stage tree under: one child per ingester (packets ingested), per
	// shard worker (records matched, peak state), a merge child, and a
	// watermark child per close broadcast stamped with the simulated
	// close time. Spans only observe — summaries are bit-identical with
	// or without one (asserted by TestStreamSpanDifferential).
	Span *obs.Span
	// Stall, when non-nil, is invoked once per message inside the shard
	// workers (stage "shard", id = shard index) and the merge stage
	// (stage "merge", id 0). It exists for the fault-injection suite
	// (fault.Plan.StallHook): the hook may yield or delay the calling
	// goroutine to perturb pipeline interleavings, but it must not
	// change any data — summaries are required to stay bit-identical
	// with any hook installed, and the stream tests assert that under
	// the race detector.
	Stall func(stage string, id int)
}

func (c Config) defaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.Buffer <= 0 {
		c.Buffer = 512
	}
	if c.MaxLag <= 0 {
		c.MaxLag = 8
	}
	return c
}

// Aggregate is the running whole-run vector, combined from window
// partials with the Equation 1–5 normalizations: numerators and
// denominators are summed across windows, then normalized once. It is
// the streaming counterpart of a whole-trial Compare restricted to
// within-window effects (cross-window migrations appear as OnlyA/OnlyB,
// exactly as in CompareWindowed's locality profile).
type Aggregate struct {
	// U, O, L, I, Kappa combine all closed windows' partial sums.
	U, O, L, I, Kappa float64
	// MeanKappa is the unweighted mean of per-window κ (the way Table 2
	// aggregates per-run scores). 1 when no window closed.
	MeanKappa float64
	// Windows is the number of non-empty windows scored.
	Windows int
	// Common, OnlyA, OnlyB are whole-run packet counts.
	Common, OnlyA, OnlyB int64
}

// String renders the aggregate the way the paper quotes metric vectors.
func (a Aggregate) String() string {
	return fmt.Sprintf("U=%.3g O=%.3g I=%.4g L=%.3g κ=%.4f mean-κ=%.4f (windows=%d, common=%d, onlyA=%d, onlyB=%d)",
		a.U, a.O, a.I, a.L, a.Kappa, a.MeanKappa, a.Windows, a.Common, a.OnlyA, a.OnlyB)
}

// Stats reports the engine's memory high-water marks — the evidence that
// streaming stayed bounded regardless of input length.
type Stats struct {
	// PeakShardEntries is the largest number of buffered (unmatched +
	// matched-pair) entries any single shard held at once.
	PeakShardEntries int
	// PeakOpenWindows is the largest number of simultaneously open
	// windows on any shard.
	PeakOpenWindows int
}

// Summary is the outcome of one streaming comparison.
type Summary struct {
	// Windows holds the per-window §3 vectors in window order (nil when
	// Config.DiscardWindows).
	Windows []metrics.WindowResult
	// Aggregate is the combined whole-run vector.
	Aggregate Aggregate
	// PacketsA and PacketsB count ingested packets per side (after the
	// DataOnly filter).
	PacketsA, PacketsB int64
	// Stats holds memory high-water marks.
	Stats Stats
}

// Engine is a reusable streaming comparison pipeline configuration.
type Engine struct {
	cfg Config
}

// New validates the configuration and returns an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("stream: window must be positive, got %v", cfg.Window)
	}
	return &Engine{cfg: cfg.defaults()}, nil
}

// Run is a convenience wrapper: configure an engine and compare a and b.
func Run(a, b Source, cfg Config) (*Summary, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return e.Run(a, b)
}

// maxWin is the watermark value meaning "this side is done".
const maxWin = int64(1<<62 - 1)

// side indexes the two trials.
type side int

const (
	sideA side = 0
	sideB side = 1
)

// Run streams both sources through the shard/merge pipeline and blocks
// until every window is closed. On a source error (e.g. a truncated
// capture) the already-ingested prefix is still scored and the summary is
// returned alongside the error.
func (e *Engine) Run(a, b Source) (*Summary, error) {
	cfg := e.cfg
	n := cfg.Shards

	shardCh := make([]chan shardMsg, n)
	for i := range shardCh {
		shardCh[i] = make(chan shardMsg, cfg.Buffer)
	}
	wmCh := make(chan wmUpdate, 16)
	metaCh := make(chan winMeta, 64)
	partCh := make(chan partialMsg, n*4)

	g := newGate(int64(cfg.MaxLag))
	ob := newStreamObs(cfg.Obs, n)

	// Causal stage tree: one child per pipeline stage under the caller's
	// span. All nil when tracing is off — a single branch per stage.
	var spIng [2]*obs.Span
	var spMerge *obs.Span
	if cfg.Span != nil {
		spIng[sideA] = cfg.Span.Child("ingest", "ingest", obs.L("trial", "A"))
		spIng[sideB] = cfg.Span.Child("ingest", "ingest", obs.L("trial", "B"))
		spMerge = cfg.Span.Child("merge", "merge")
	}

	// Ingest stages.
	ing := [2]*ingester{
		newIngester(sideA, a, cfg, shardCh, wmCh, g, ob),
		newIngester(sideB, b, cfg, shardCh, wmCh, g, ob),
	}
	ing[0].span, ing[1].span = spIng[0], spIng[1]
	var ingWG sync.WaitGroup
	for _, in := range ing {
		ingWG.Add(1)
		go func(in *ingester) {
			defer ingWG.Done()
			in.run()
		}(in)
	}

	// Shard workers.
	workers := make([]*shardWorker, n)
	var workWG sync.WaitGroup
	for i := 0; i < n; i++ {
		workers[i] = &shardWorker{id: i, in: shardCh[i], out: partCh, stall: cfg.Stall}
		if cfg.Span != nil {
			workers[i].span = cfg.Span.Child("shard", "shard", obs.L("shard", fmt.Sprintf("%d", i)))
		}
		workWG.Add(1)
		go func(w *shardWorker) {
			defer workWG.Done()
			w.run()
		}(workers[i])
	}
	go func() {
		workWG.Wait()
		close(partCh)
	}()

	// Coordinator: watermark → window closes.
	go coordinate(wmCh, shardCh, metaCh, g, ob, cfg.Span, cfg.Window)

	// Merge stage runs on the caller's goroutine.
	sum := merge(cfg, n, metaCh, partCh, ob, spMerge)

	ingWG.Wait()
	sum.PacketsA = ing[0].packets
	sum.PacketsB = ing[1].packets
	for _, w := range workers {
		if w.peakEntries > sum.Stats.PeakShardEntries {
			sum.Stats.PeakShardEntries = w.peakEntries
		}
		if w.peakWindows > sum.Stats.PeakOpenWindows {
			sum.Stats.PeakOpenWindows = w.peakWindows
		}
	}

	var err error
	for _, in := range ing {
		if in.err != nil && err == nil {
			err = fmt.Errorf("stream: trial %s: %w", [2]string{"A", "B"}[in.side], in.err)
		}
	}
	return sum, err
}
