package stream

import (
	"math"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// winAgg is the merge stage's per-window collection point: shard partials
// merged as they arrive, plus the ingest metadata (counts, spans).
type winAgg struct {
	sums  metrics.Sums
	metaA *winMeta
	metaB *winMeta
}

// complete reports whether every fact needed to score the window has
// arrived: any side with packets must have delivered its metadata.
func (wa *winAgg) complete() bool {
	if wa.sums.Common+wa.sums.OnlyA > 0 && wa.metaA == nil {
		return false
	}
	if wa.sums.Common+wa.sums.OnlyB > 0 && wa.metaB == nil {
		return false
	}
	return true
}

// merge collects shard partials and ingest metadata, finalizes windows in
// order as the flush watermark advances, and maintains the running
// aggregate. It returns when both input channels are closed.
func merge(cfg Config, shards int, metaCh <-chan winMeta, partCh <-chan partialMsg) *Summary {
	sum := &Summary{Aggregate: Aggregate{Kappa: 1, MeanKappa: 1}}
	pending := make(map[int64]*winAgg)
	flushed := make([]int64, shards)

	// Aggregate accumulators: numerators and denominators of Eq. 1–5
	// summed across windows.
	var (
		totCommon, totOnlyA, totOnlyB int64
		sumAbsLat, sumAbsIAT          int64
		lDen, iDen, oNum              float64
		oDen                          int64
		kappaSum                      float64
	)

	finalize := func(win int64, wa *winAgg) {
		s := &wa.sums
		if wa.metaA != nil {
			s.SpanA = wa.metaA.span
		}
		if wa.metaB != nil {
			s.SpanB = wa.metaB.span
		}
		res := s.Assemble()
		wr := metrics.WindowResult{
			Start:  sim.Time(win) * cfg.Window,
			End:    sim.Time(win+1) * cfg.Window,
			Result: res,
		}
		if cfg.OnWindow != nil {
			cfg.OnWindow(wr)
		}
		if !cfg.DiscardWindows {
			sum.Windows = append(sum.Windows, wr)
		}

		// Fold the window into the running aggregate.
		totCommon += int64(s.Common)
		totOnlyA += int64(s.OnlyA)
		totOnlyB += int64(s.OnlyB)
		sumAbsLat += s.SumAbsLat
		sumAbsIAT += s.SumAbsIAT
		lDen += float64(s.Common) * math.Max(float64(s.SpanB), float64(s.SpanA))
		iDen += float64(s.SpanB + s.SpanA)
		num, den := s.OrderingParts()
		oNum += num
		oDen += den
		kappaSum += res.Kappa
		sum.Aggregate.Windows++
	}

	// sweep finalizes every complete window below the joint flush
	// watermark, in window order, stopping at the first window whose
	// metadata is still in flight (to preserve emission order).
	sweep := func() {
		minFlushed := flushed[0]
		for _, f := range flushed[1:] {
			if f < minFlushed {
				minFlushed = f
			}
		}
		if len(pending) == 0 {
			return
		}
		var order []int64
		for win := range pending {
			if win < minFlushed {
				order = append(order, win)
			}
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, win := range order {
			wa := pending[win]
			if !wa.complete() {
				return
			}
			delete(pending, win)
			finalize(win, wa)
		}
	}

	for metaCh != nil || partCh != nil {
		select {
		case m, ok := <-metaCh:
			if !ok {
				metaCh = nil
				continue
			}
			wa := pending[m.win]
			if wa == nil {
				wa = &winAgg{}
				pending[m.win] = wa
			}
			mc := m
			if m.side == sideA {
				wa.metaA = &mc
			} else {
				wa.metaB = &mc
			}
			sweep()
		case p, ok := <-partCh:
			if !ok {
				partCh = nil
				continue
			}
			if p.flush {
				if p.upTo > flushed[p.shard] {
					flushed[p.shard] = p.upTo
				}
				sweep()
				continue
			}
			wa := pending[p.win]
			if wa == nil {
				wa = &winAgg{}
				pending[p.win] = wa
			}
			wa.sums.Merge(p.sums)
		}
	}
	// Both channels closed: everything is flushed and all metadata has
	// arrived; finalize any stragglers in order.
	var order []int64
	for win := range pending {
		order = append(order, win)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, win := range order {
		finalize(win, pending[win])
		delete(pending, win)
	}

	// Normalize the aggregate with the Eq. 1–5 shapes.
	a := &sum.Aggregate
	a.Common, a.OnlyA, a.OnlyB = totCommon, totOnlyA, totOnlyB
	if total := 2*totCommon + totOnlyA + totOnlyB; total > 0 {
		a.U = 1 - 2*float64(totCommon)/float64(total)
	} else {
		a.U = 0
	}
	if oDen > 0 {
		a.O = oNum / float64(oDen)
	}
	if lDen > 0 {
		a.L = float64(sumAbsLat) / lDen
	}
	if iDen > 0 {
		a.I = float64(sumAbsIAT) / iDen
	}
	a.Kappa = metrics.Kappa(a.U, a.O, a.L, a.I)
	if a.Windows > 0 {
		a.MeanKappa = kappaSum / float64(a.Windows)
	} else {
		a.MeanKappa = a.Kappa
	}
	return sum
}
