package stream

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// winAgg is the merge stage's per-window collection point: shard partials
// merged as they arrive, plus the ingest metadata (counts, spans).
type winAgg struct {
	sums  metrics.Sums
	metaA *winMeta
	metaB *winMeta
}

// complete reports whether every fact needed to score the window has
// arrived: any side with packets must have delivered its metadata.
func (wa *winAgg) complete() bool {
	if wa.sums.Common+wa.sums.OnlyA > 0 && wa.metaA == nil {
		return false
	}
	if wa.sums.Common+wa.sums.OnlyB > 0 && wa.metaB == nil {
		return false
	}
	return true
}

// aggState accumulates the numerators and denominators of Eq. 1–5
// summed across windows; normalize turns it into an Aggregate. Kept as
// a struct so the merge stage can publish a running whole-run vector to
// the observability gauges after every closed window.
type aggState struct {
	totCommon, totOnlyA, totOnlyB int64
	sumAbsLat, sumAbsIAT          int64
	lDen, iDen, oNum              float64
	oDen                          int64
	kappaSum                      float64
	windows                       int
}

// fold adds one closed window's partial sums and assembled κ.
func (g *aggState) fold(s *metrics.Sums, kappa float64) {
	g.totCommon += int64(s.Common)
	g.totOnlyA += int64(s.OnlyA)
	g.totOnlyB += int64(s.OnlyB)
	g.sumAbsLat += s.SumAbsLat
	g.sumAbsIAT += s.SumAbsIAT
	g.lDen += float64(s.Common) * math.Max(float64(s.SpanB), float64(s.SpanA))
	g.iDen += float64(s.SpanB + s.SpanA)
	num, den := s.OrderingParts()
	g.oNum += num
	g.oDen += den
	g.kappaSum += kappa
	g.windows++
}

// normalize applies the Eq. 1–5 shapes to the summed parts.
func (g *aggState) normalize(a *Aggregate) {
	a.Windows = g.windows
	a.Common, a.OnlyA, a.OnlyB = g.totCommon, g.totOnlyA, g.totOnlyB
	if total := 2*g.totCommon + g.totOnlyA + g.totOnlyB; total > 0 {
		a.U = 1 - 2*float64(g.totCommon)/float64(total)
	} else {
		a.U = 0
	}
	a.O, a.L, a.I = 0, 0, 0
	if g.oDen > 0 {
		a.O = g.oNum / float64(g.oDen)
	}
	if g.lDen > 0 {
		a.L = float64(g.sumAbsLat) / g.lDen
	}
	if g.iDen > 0 {
		a.I = float64(g.sumAbsIAT) / g.iDen
	}
	a.Kappa = metrics.Kappa(a.U, a.O, a.L, a.I)
	if g.windows > 0 {
		a.MeanKappa = g.kappaSum / float64(g.windows)
	} else {
		a.MeanKappa = a.Kappa
	}
}

// merge collects shard partials and ingest metadata, finalizes windows in
// order as the flush watermark advances, and maintains the running
// aggregate. It returns when both input channels are closed.
func merge(cfg Config, shards int, metaCh <-chan winMeta, partCh <-chan partialMsg, ob *streamObs, span *obs.Span) *Summary {
	sum := &Summary{Aggregate: Aggregate{Kappa: 1, MeanKappa: 1}}
	pending := make(map[int64]*winAgg)
	flushed := make([]int64, shards)

	var agg aggState
	var ex obs.SpanID
	if span != nil {
		ex = span.ID()
	}

	finalize := func(win int64, wa *winAgg) {
		s := &wa.sums
		if wa.metaA != nil {
			s.SpanA = wa.metaA.span
		}
		if wa.metaB != nil {
			s.SpanB = wa.metaB.span
		}
		res := s.Assemble()
		wr := metrics.WindowResult{
			Start:  sim.Time(win) * cfg.Window,
			End:    sim.Time(win+1) * cfg.Window,
			Result: res,
		}
		if cfg.OnWindow != nil {
			cfg.OnWindow(wr)
		}
		if !cfg.DiscardWindows {
			sum.Windows = append(sum.Windows, wr)
		}

		// Fold the window into the running aggregate.
		agg.fold(s, res.Kappa)
		sum.Aggregate.Windows++
		if ob != nil {
			ob.windows.Inc()
			ob.matched.Add(int64(s.Common))
			ob.orphaned.Add(int64(s.OnlyA + s.OnlyB))
			ob.observeClose(win)
			var running Aggregate
			agg.normalize(&running)
			ob.publishAggregate(&running, ex)
		}

		// The window is fully scored; its position buffers go back to
		// the shard workers via the pool.
		putPosBuf(s.PosA)
		putPosBuf(s.PosB)
		s.PosA, s.PosB = nil, nil
	}

	// sweep finalizes every complete window below the joint flush
	// watermark, in window order, stopping at the first window whose
	// metadata is still in flight (to preserve emission order).
	sweep := func() {
		minFlushed := flushed[0]
		for _, f := range flushed[1:] {
			if f < minFlushed {
				minFlushed = f
			}
		}
		if len(pending) == 0 {
			return
		}
		var order []int64
		for win := range pending {
			if win < minFlushed {
				order = append(order, win)
			}
		}
		slices.Sort(order)
		for _, win := range order {
			wa := pending[win]
			if !wa.complete() {
				return
			}
			delete(pending, win)
			finalize(win, wa)
		}
	}

	for metaCh != nil || partCh != nil {
		if cfg.Stall != nil {
			cfg.Stall("merge", 0)
		}
		select {
		case m, ok := <-metaCh:
			if !ok {
				metaCh = nil
				continue
			}
			wa := pending[m.win]
			if wa == nil {
				wa = &winAgg{}
				pending[m.win] = wa
			}
			mc := m
			if m.side == sideA {
				wa.metaA = &mc
			} else {
				wa.metaB = &mc
			}
			sweep()
		case p, ok := <-partCh:
			if !ok {
				partCh = nil
				continue
			}
			if p.flush {
				if p.upTo > flushed[p.shard] {
					flushed[p.shard] = p.upTo
				}
				sweep()
				continue
			}
			wa := pending[p.win]
			if wa == nil {
				wa = &winAgg{}
				pending[p.win] = wa
			}
			wa.sums.Merge(p.sums)
			// Merge copied the shard's positions into the aggregate;
			// recycle the shard-side buffers immediately.
			putPosBuf(p.sums.PosA)
			putPosBuf(p.sums.PosB)
			p.sums.PosA, p.sums.PosB = nil, nil
		}
	}
	// Both channels closed: everything is flushed and all metadata has
	// arrived; finalize any stragglers in order.
	var order []int64
	for win := range pending {
		order = append(order, win)
	}
	slices.Sort(order)
	for _, win := range order {
		finalize(win, pending[win])
		delete(pending, win)
	}

	// Normalize the aggregate with the Eq. 1–5 shapes.
	agg.normalize(&sum.Aggregate)
	if ob != nil {
		ob.publishAggregate(&sum.Aggregate, ex)
	}
	if span != nil {
		span.AttrInt("windows", int64(sum.Aggregate.Windows))
		span.Attr("kappa", fmt.Sprintf("%.4f", sum.Aggregate.Kappa))
		span.End()
	}
	return sum
}
