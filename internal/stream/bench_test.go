package stream

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// BenchmarkStreamKappa measures the streaming engine's throughput
// (pkts/s) and allocation footprint against the batch CompareWindowed
// path on the same pair of jittered trials, with and without the obs
// registry attached — verify.sh's guard compares the shards=4 pair to
// bound the enabled-telemetry overhead. Run via verify.sh -bench or:
//
//	go test ./internal/stream -run='^$' -bench=StreamKappa -benchmem
func BenchmarkStreamKappa(b *testing.B) {
	const n = 50_000
	ta := jitteredTrial("A", n, 11)
	tb := jitteredTrial("B", n, 12)
	window := 50 * sim.Microsecond

	for _, shards := range []int{1, 4} {
		for _, withObs := range []bool{false, true} {
			name := fmt.Sprintf("stream/shards=%d", shards)
			if withObs {
				name += "/obs"
			}
			shards, withObs := shards, withObs
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cfg := Config{
						Window:         window,
						Shards:         shards,
						DiscardWindows: true,
					}
					if withObs {
						cfg.Obs = obs.New()
					}
					sum, err := Run(NewTraceSource(ta), NewTraceSource(tb), cfg)
					if err != nil {
						b.Fatal(err)
					}
					if sum.Aggregate.Windows == 0 {
						b.Fatal("no windows scored")
					}
				}
				b.StopTimer()
				pkts := float64(2*n) * float64(b.N)
				b.ReportMetric(pkts/b.Elapsed().Seconds(), "pkts/s")
			})
		}
	}

	b.Run("batch/CompareWindowed", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wins, err := metrics.CompareWindowed(ta, tb, window, metrics.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if len(wins) == 0 {
				b.Fatal("no windows scored")
			}
		}
		b.StopTimer()
		pkts := float64(2*n) * float64(b.N)
		b.ReportMetric(pkts/b.Elapsed().Seconds(), "pkts/s")
	})
}

// BenchmarkShardFlushSort isolates the window-ordering sort in the shard
// flush path (and the merge sweep, which sorts the same shape). The
// generic sort.Slice closure was replaced by slices.Sort, which
// specializes for the int64 element type and skips the reflect-based
// swapper — this benchmark documents the win.
func BenchmarkShardFlushSort(b *testing.B) {
	// Typical flush batch: a few hundred open windows, keys nearly
	// sorted with some out-of-order stragglers (window indices arrive
	// roughly in time order).
	const nWins = 256
	base := make([]int64, nWins)
	rng := newBenchRand()
	for i := range base {
		base[i] = int64(i)
	}
	for i := 0; i < nWins/8; i++ {
		j, k := rng.Intn(nWins), rng.Intn(nWins)
		base[j], base[k] = base[k], base[j]
	}
	buf := make([]int64, nWins)

	b.Run("sort.Slice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(buf, base)
			sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		}
	})
	b.Run("slices.Sort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(buf, base)
			slices.Sort(buf)
		}
	})
}

func newBenchRand() *rand.Rand { return rand.New(rand.NewSource(42)) }
