package stream

import (
	"fmt"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// BenchmarkStreamKappa measures the streaming engine's throughput
// (pkts/s) and allocation footprint against the batch CompareWindowed
// path on the same pair of jittered trials, with and without the obs
// registry attached — verify.sh's guard compares the shards=4 pair to
// bound the enabled-telemetry overhead. Run via verify.sh -bench or:
//
//	go test ./internal/stream -run='^$' -bench=StreamKappa -benchmem
func BenchmarkStreamKappa(b *testing.B) {
	const n = 50_000
	ta := jitteredTrial("A", n, 11)
	tb := jitteredTrial("B", n, 12)
	window := 50 * sim.Microsecond

	for _, shards := range []int{1, 4} {
		for _, withObs := range []bool{false, true} {
			name := fmt.Sprintf("stream/shards=%d", shards)
			if withObs {
				name += "/obs"
			}
			shards, withObs := shards, withObs
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cfg := Config{
						Window:         window,
						Shards:         shards,
						DiscardWindows: true,
					}
					if withObs {
						cfg.Obs = obs.New()
					}
					sum, err := Run(NewTraceSource(ta), NewTraceSource(tb), cfg)
					if err != nil {
						b.Fatal(err)
					}
					if sum.Aggregate.Windows == 0 {
						b.Fatal("no windows scored")
					}
				}
				b.StopTimer()
				pkts := float64(2*n) * float64(b.N)
				b.ReportMetric(pkts/b.Elapsed().Seconds(), "pkts/s")
			})
		}
	}

	b.Run("batch/CompareWindowed", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wins, err := metrics.CompareWindowed(ta, tb, window, metrics.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if len(wins) == 0 {
				b.Fatal("no windows scored")
			}
		}
		b.StopTimer()
		pkts := float64(2*n) * float64(b.N)
		b.ReportMetric(pkts/b.Elapsed().Seconds(), "pkts/s")
	})
}
