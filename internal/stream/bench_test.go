package stream

import (
	"fmt"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// BenchmarkStreamKappa measures the streaming engine's throughput
// (pkts/s) and allocation footprint against the batch CompareWindowed
// path on the same pair of jittered trials. Run via verify.sh or:
//
//	go test ./internal/stream -bench=StreamKappa -benchmem
func BenchmarkStreamKappa(b *testing.B) {
	const n = 50_000
	ta := jitteredTrial("A", n, 11)
	tb := jitteredTrial("B", n, 12)
	window := 50 * sim.Microsecond

	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("stream/shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum, err := Run(NewTraceSource(ta), NewTraceSource(tb), Config{
					Window:         window,
					Shards:         shards,
					DiscardWindows: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if sum.Aggregate.Windows == 0 {
					b.Fatal("no windows scored")
				}
			}
			b.StopTimer()
			pkts := float64(2*n) * float64(b.N)
			b.ReportMetric(pkts/b.Elapsed().Seconds(), "pkts/s")
		})
	}

	b.Run("batch/CompareWindowed", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wins, err := metrics.CompareWindowed(ta, tb, window, metrics.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if len(wins) == 0 {
				b.Fatal("no windows scored")
			}
		}
		b.StopTimer()
		pkts := float64(2*n) * float64(b.N)
		b.ReportMetric(pkts/b.Elapsed().Seconds(), "pkts/s")
	})
}
