package stream

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/fault/harness"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// faultPlans is the acceptance matrix: ≥ 4 distinct fault plans under
// which streaming κ must stay bit-identical to batch κ (run under -race
// via verify.sh).
func faultPlans() []fault.Plan {
	return []fault.Plan{
		{Seed: 101, Drop: 0.08},
		{Seed: 102, Dup: 0.06, DupDelay: 120},
		{Seed: 103, Reorder: 0.1, ReorderDelay: 1500},
		{Seed: 104, Corrupt: 0.05, Jitter: 400},
		{Seed: 105, Drop: 0.05, Dup: 0.03, Reorder: 0.05, BurstRate: 0.002, SkewPPM: 150, Jitter: 200},
	}
}

// TestStreamingMatchesBatchUnderFaultPlans: for every fault plan,
// baseline-vs-perturbed scored by the streaming engine equals
// metrics.CompareWindowed window for window — the paper's "κ quantifies
// degradation" claim holds identically on both code paths.
func TestStreamingMatchesBatchUnderFaultPlans(t *testing.T) {
	base := harness.Baseline("A", 6000, 51)
	for _, plan := range faultPlans() {
		perturbed := plan.Apply(base)
		perturbed.Name = "B"
		for _, shards := range []int{1, 4} {
			sum, want := runBoth(t, base, perturbed, 100_000, Config{Shards: shards, Buffer: 64, MaxLag: 3})
			assertWindowsEqual(t, sum.Windows, want)
			if plan.IsIdentity() {
				continue
			}
			if sum.Aggregate.Kappa >= 1 {
				t.Fatalf("%v: aggregate κ=%v, fault plan did not degrade", plan, sum.Aggregate.Kappa)
			}
		}
	}
}

// assertSummariesIdentical holds two streaming summaries bit-equal:
// window vectors, aggregate and packet counts.
func assertSummariesIdentical(t *testing.T, got, want *Summary) {
	t.Helper()
	assertWindowsEqual(t, got.Windows, want.Windows)
	if got.Aggregate != want.Aggregate {
		t.Fatalf("aggregates differ:\n got %v\nwant %v", got.Aggregate, want.Aggregate)
	}
	if got.PacketsA != want.PacketsA || got.PacketsB != want.PacketsB {
		t.Fatalf("packet counts (%d,%d) != (%d,%d)", got.PacketsA, got.PacketsB, want.PacketsA, want.PacketsB)
	}
}

// TestStallFaultsAreOutputInvariant: shard stalls and bursty
// late-watermark sources perturb scheduling — goroutine interleavings,
// channel occupancy, watermark arrival times — but must never change a
// single output bit. Run under -race this also hunts for ordering bugs
// that only a perturbed interleaving exposes.
func TestStallFaultsAreOutputInvariant(t *testing.T) {
	a := jitteredTrial("A", 4000, 61)
	b := jitteredTrial("B", 4000, 62)
	clean, err := Run(NewTraceSource(a), NewTraceSource(b), Config{Window: 20_000, Shards: 4, Buffer: 32, MaxLag: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range []fault.Plan{
		{Seed: 63, Stall: fault.StallPlan{Rate: 0.3, Yields: 2}},
		{Seed: 64, Stall: fault.StallPlan{Batch: 37}},
		{Seed: 65, Stall: fault.StallPlan{Rate: 0.6, Yields: 4, Batch: 256}},
	} {
		cfg := Config{Window: 20_000, Shards: 4, Buffer: 32, MaxLag: 2, Stall: plan.StallHook()}
		sum, err := Run(
			plan.StallSource(NewTraceSource(a)),
			plan.StallSource(NewTraceSource(b)),
			cfg,
		)
		if err != nil {
			t.Fatalf("%v: %v", plan, err)
		}
		assertSummariesIdentical(t, sum, clean)
	}
}

// tiePacket appends one data packet with the given seq and timestamp.
func tiePacket(tr *trace.Trace, seq uint64, at sim.Time) {
	tr.Append(&packet.Packet{Tag: packet.Tag{Seq: seq}, Kind: packet.KindData, FrameLen: 64}, at)
}

// TestWatermarkTieTable pins the window-assignment semantics for the
// awkward timelines: timestamps exactly on window boundaries, runs of
// equal timestamps straddling a boundary, empty windows between
// occupied ones, and single-packet windows — each checked against the
// batch oracle across shard counts and the tightest backpressure
// setting.
func TestWatermarkTieTable(t *testing.T) {
	const W = sim.Duration(1000)
	cases := []struct {
		name  string
		build func() (*trace.Trace, *trace.Trace)
	}{
		{
			// Every timestamp identical: one window, all gaps zero.
			name: "all-equal",
			build: func() (*trace.Trace, *trace.Trace) {
				a, b := trace.New("A", 0), trace.New("B", 0)
				for i := 0; i < 40; i++ {
					tiePacket(a, uint64(i), 500)
					tiePacket(b, uint64(39-i), 500) // reversed order, same instants
				}
				return a, b
			},
		},
		{
			// Timestamps exactly at k·W: the packet belongs to window k
			// (half-open [k·W, (k+1)·W)), on both code paths.
			name: "boundary-exact",
			build: func() (*trace.Trace, *trace.Trace) {
				a, b := trace.New("A", 0), trace.New("B", 0)
				for k := 0; k < 6; k++ {
					at := sim.Time(k) * sim.Time(W)
					tiePacket(a, uint64(k), at)
					tiePacket(b, uint64(k), at)
				}
				return a, b
			},
		},
		{
			// A run of equal timestamps right at the boundary: …, W−1,
			// then several packets all exactly at W, then W+1. The equal
			// run must land in window 1 as a block on both sides even
			// though one side drops a member of the run.
			name: "tie-straddles-boundary",
			build: func() (*trace.Trace, *trace.Trace) {
				a, b := trace.New("A", 0), trace.New("B", 0)
				tiePacket(a, 0, sim.Time(W)-1)
				tiePacket(b, 0, sim.Time(W)-1)
				for i := 1; i <= 8; i++ {
					tiePacket(a, uint64(i), sim.Time(W))
					if i != 4 { // B misses one of the tied packets
						tiePacket(b, uint64(i), sim.Time(W))
					}
				}
				tiePacket(a, 9, sim.Time(W)+1)
				tiePacket(b, 9, sim.Time(W)+1)
				return a, b
			},
		},
		{
			// Occupied window 0, three empty windows, occupied window 4:
			// empty windows produce no scores and no watermark stalls.
			name: "empty-windows-between",
			build: func() (*trace.Trace, *trace.Trace) {
				a, b := trace.New("A", 0), trace.New("B", 0)
				for i := 0; i < 5; i++ {
					tiePacket(a, uint64(i), sim.Time(100+i))
					tiePacket(b, uint64(i), sim.Time(100+i))
				}
				tiePacket(a, 100, 4*sim.Time(W)+7)
				tiePacket(b, 100, 4*sim.Time(W)+7)
				return a, b
			},
		},
		{
			// One packet per window: spans are zero, gaps are zero, every
			// window is a singleton on both sides.
			name: "single-packet-windows",
			build: func() (*trace.Trace, *trace.Trace) {
				a, b := trace.New("A", 0), trace.New("B", 0)
				for k := 0; k < 10; k++ {
					at := sim.Time(k)*sim.Time(W) + 13
					tiePacket(a, uint64(k), at)
					tiePacket(b, uint64(k), at)
				}
				return a, b
			},
		},
		{
			// Duplicate tags *at the same instant* on a boundary: the
			// per-window occurrence keys must pair them off in order.
			name: "duplicate-tags-tied",
			build: func() (*trace.Trace, *trace.Trace) {
				a, b := trace.New("A", 0), trace.New("B", 0)
				for i := 0; i < 3; i++ {
					tiePacket(a, 7, sim.Time(W))
					tiePacket(b, 7, sim.Time(W))
				}
				tiePacket(a, 8, sim.Time(W))
				return a, b
			},
		},
		{
			// One side stops exactly on a boundary while the other
			// continues — the finished side's watermark must still let
			// later windows close.
			name: "one-side-ends-on-boundary",
			build: func() (*trace.Trace, *trace.Trace) {
				a, b := trace.New("A", 0), trace.New("B", 0)
				for k := 0; k < 4; k++ {
					at := sim.Time(k) * sim.Time(W)
					tiePacket(a, uint64(k), at)
					tiePacket(b, uint64(k), at)
				}
				tiePacket(a, 100, 7*sim.Time(W))
				return a, b
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.build()
			for _, shards := range []int{1, 2, 8} {
				sum, want := runBoth(t, a, b, W, Config{Shards: shards, Buffer: 4, MaxLag: 1})
				assertWindowsEqual(t, sum.Windows, want)
			}
		})
	}
}

// TestStallHookSeesBothStages: the engine must actually invoke the hook
// from the shard and merge stages (otherwise the invariance test above
// proves nothing).
func TestStallHookSeesBothStages(t *testing.T) {
	var mu = make(chan struct{}, 1)
	stages := map[string]int{}
	hook := func(stage string, id int) {
		mu <- struct{}{}
		stages[stage]++
		<-mu
	}
	a := jitteredTrial("A", 500, 71)
	if _, err := Run(NewTraceSource(a), NewTraceSource(a), Config{Window: 10_000, Shards: 2, Stall: hook}); err != nil {
		t.Fatal(err)
	}
	if stages["shard"] == 0 || stages["merge"] == 0 {
		t.Fatalf("stall hook coverage: %v, want both shard and merge calls", stages)
	}
}
