package stream

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestStreamObsDifferential: enabling the engine's telemetry must leave
// the streaming summary bit-identical — instruments observe the pipeline
// but never steer it — while the registry ends up holding the same
// whole-run aggregate the summary reports.
func TestStreamObsDifferential(t *testing.T) {
	a := jitteredTrial("A", 4000, 31)
	b := jitteredTrial("B", 4000, 32)
	base := Config{Window: 9_000, Shards: 4, Buffer: 32, MaxLag: 3}

	plain, err := Run(NewTraceSource(a), NewTraceSource(b), base)
	if err != nil {
		t.Fatal(err)
	}

	o := obs.New()
	cfg := base
	cfg.Obs = o
	instr, err := Run(NewTraceSource(a), NewTraceSource(b), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if instr.Aggregate != plain.Aggregate {
		t.Fatalf("aggregate differs with obs on:\n  plain %v\n  instr %v", plain.Aggregate, instr.Aggregate)
	}
	if instr.PacketsA != plain.PacketsA || instr.PacketsB != plain.PacketsB {
		t.Fatalf("ingest counts differ: (%d,%d) vs (%d,%d)",
			instr.PacketsA, instr.PacketsB, plain.PacketsA, plain.PacketsB)
	}
	assertWindowsEqual(t, instr.Windows, plain.Windows)

	// The running gauges' final state is the whole-run aggregate — the
	// value a mid-run /metrics scrape converges to.
	reg := o.Reg
	mustGauge := func(name string, want float64) {
		t.Helper()
		got, ok := reg.GaugeValue(name)
		if !ok {
			t.Fatalf("gauge %s missing", name)
		}
		if got != want {
			t.Fatalf("gauge %s = %v, want %v", name, got, want)
		}
	}
	ag := instr.Aggregate
	mustGauge("stream_running_kappa", ag.Kappa)
	mustGauge("stream_running_mean_kappa", ag.MeanKappa)
	mustGauge("stream_running_u", ag.U)
	mustGauge("stream_running_o", ag.O)
	mustGauge("stream_running_l", ag.L)
	mustGauge("stream_running_i", ag.I)
	mustGauge("stream_running_common_packets", float64(ag.Common))
	mustGauge("stream_running_only_a_packets", float64(ag.OnlyA))
	mustGauge("stream_running_only_b_packets", float64(ag.OnlyB))

	// Counters cross-check against the aggregate's packet accounting.
	find := func(name string) float64 {
		t.Helper()
		for _, fam := range reg.Snapshot() {
			if fam.Name != name {
				continue
			}
			var v float64
			for _, s := range fam.Series {
				if s.Value != nil {
					v += *s.Value
				}
				if s.Count != nil {
					v += float64(*s.Count)
				}
			}
			return v
		}
		t.Fatalf("metric %s not registered", name)
		return 0
	}
	if got := find("stream_windows_closed_total"); got != float64(ag.Windows) {
		t.Fatalf("windows counter %v, aggregate %d", got, ag.Windows)
	}
	if got := find("stream_pairs_matched_total"); got != float64(ag.Common) {
		t.Fatalf("matched counter %v, aggregate %d", got, ag.Common)
	}
	if got := find("stream_pairs_orphaned_total"); got != float64(ag.OnlyA+ag.OnlyB) {
		t.Fatalf("orphaned counter %v, aggregate %d", got, ag.OnlyA+ag.OnlyB)
	}
	if got := find("stream_window_close_latency_ns"); got == 0 {
		t.Fatal("close-latency histogram empty")
	}
	// Shard queue peaks: at least one shard saw occupancy.
	if got := find("stream_shard_queue_peak_records"); got <= 0 {
		t.Fatal("no shard queue peak recorded")
	}
}

// TestStreamObsNil: a Config.Obs with no registry must disable engine
// telemetry entirely (newStreamObs returns nil and every hook no-ops).
func TestStreamObsNil(t *testing.T) {
	if so := newStreamObs(nil, 4); so != nil {
		t.Fatal("nil Obs produced instruments")
	}
	if so := newStreamObs(&obs.Obs{}, 4); so != nil {
		t.Fatal("registry-less Obs produced instruments")
	}
	var so *streamObs
	so.noteClose(0, 10)
	so.observeClose(3)
	so.publishAggregate(&Aggregate{}, 0)
}

// TestNoteCloseBounded guards the terminal-watermark regression: the
// end-of-stream close broadcast jumps to maxWin, and timestamping that
// range (or an unbounded backlog) must not allocate per window.
func TestNoteCloseBounded(t *testing.T) {
	o := obs.New()
	so := newStreamObs(o, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		so.noteClose(0, maxWin)         // terminal watermark: no-op
		so.noteClose(0, 1<<40)          // huge batch: clamped to the tail
		so.noteClose(1<<40, maxWin-1)   // near-terminal, still bounded
		so.noteClose(maxWin-10, maxWin) // touches the sentinel: no-op
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("noteClose did not return — unbounded close-time loop")
	}
	so.mu.Lock()
	n := len(so.closeTime)
	so.mu.Unlock()
	if n > maxCloseTimed {
		t.Fatalf("close-time map grew to %d entries (cap %d)", n, maxCloseTimed)
	}
}
