package stream

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
)

// rec is one packet reduced to what the metrics need: its identity key,
// which window it fell in, and its window-relative position, latency and
// inter-arrival gap. Everything downstream of ingest works on recs; the
// packet itself is dropped immediately, which is what keeps per-packet
// streaming cost flat.
type rec struct {
	key  metrics.Key
	side side
	win  int64
	pos  int32        // index within the window sub-trace (per side)
	lat  sim.Duration // arrival − first arrival in window (per side)
	gap  sim.Duration // gap before the packet within the window; 0 for the window's first
}

// shardMsg is a shard worker's input: a record or a close watermark.
type shardMsg struct {
	rec   rec
	upTo  int64 // when close: flush all windows < upTo
	close bool
}

// winMeta carries window-global facts only the ingest stage knows: how
// many packets one side put in the window and the side's window span.
type winMeta struct {
	side  side
	win   int64
	count int
	span  sim.Duration
}

// wmUpdate tells the coordinator a side finished all windows < win, and
// hands over the metadata of the windows it retired on the way.
type wmUpdate struct {
	side  side
	win   int64
	metas []winMeta
}

// gate is the backpressure valve: ingest may not open window w until
// w − closed < maxLag.
type gate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed int64
	maxLag int64
}

func newGate(maxLag int64) *gate {
	g := &gate{maxLag: maxLag}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *gate) wait(win int64) {
	g.mu.Lock()
	for win-g.closed >= g.maxLag {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

func (g *gate) advance(closed int64) {
	g.mu.Lock()
	if closed > g.closed {
		g.closed = closed
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// lag reports how many windows ahead of the close watermark win is.
// Only called on the observability path.
func (g *gate) lag(win int64) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return win - g.closed
}

// ingester pulls one source, normalizes it onto the trial-relative
// timeline, splits it into tumbling windows and fans records out to the
// flow shards.
type ingester struct {
	side    side
	src     Source
	cfg     Config
	shards  []chan shardMsg
	wmCh    chan<- wmUpdate
	g       *gate
	ob      *streamObs
	span    *obs.Span // per-ingester causal span; nil when tracing is off
	packets int64
	err     error
}

func newIngester(s side, src Source, cfg Config, shards []chan shardMsg, wmCh chan<- wmUpdate, g *gate, ob *streamObs) *ingester {
	return &ingester{side: s, src: src, cfg: cfg, shards: shards, wmCh: wmCh, g: g, ob: ob}
}

func (in *ingester) run() {
	var (
		started  bool
		t0, prev sim.Time
		curWin   = int64(-1)
		pos      int32
		winFirst sim.Time
		winLast  sim.Time
		seen     map[packet.Tag]uint32
		metas    []winMeta
	)
	retire := func() {
		if curWin >= 0 && pos > 0 {
			span := sim.Duration(0)
			if pos > 1 {
				span = winLast - winFirst
			}
			metas = append(metas, winMeta{side: in.side, win: curWin, count: int(pos), span: span})
		}
	}
	for {
		p, t, err := in.src.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				in.err = err
			}
			break
		}
		if in.cfg.DataOnly && p.Kind != packet.KindData {
			continue
		}
		if !started {
			started = true
			t0 = t
			prev = t
		}
		if t < prev {
			in.err = fmt.Errorf("timestamps decrease: %v < %v", t, prev)
			break
		}
		prev = t
		nt := t - t0
		w := int64(nt / in.cfg.Window)
		if w != curWin {
			retire()
			// Announce "done with all windows < w" (records for them are
			// already enqueued), then wait for the close watermark to
			// come within MaxLag.
			in.wmCh <- wmUpdate{side: in.side, win: w, metas: metas}
			metas = nil
			if in.ob != nil {
				// How far this side tried to run ahead before the gate
				// (possibly) held it back.
				in.ob.lagPeak[in.side].MaxInt(in.g.lag(w))
			}
			in.g.wait(w)
			curWin = w
			pos = 0
			winFirst = nt
			seen = make(map[packet.Tag]uint32, len(seen))
		}
		occ := seen[p.Tag]
		seen[p.Tag] = occ + 1
		r := rec{
			key:  metrics.Key{Tag: p.Tag, Occ: occ},
			side: in.side,
			win:  w,
			pos:  pos,
			lat:  nt - winFirst,
		}
		if pos > 0 {
			r.gap = nt - winLast
		}
		winLast = nt
		pos++
		in.packets++
		sh := shardOf(r.key, len(in.shards))
		if in.ob != nil {
			// Occupancy just before our send: an instantaneous sample,
			// folded into the per-shard high-water gauge.
			in.ob.shardQPeak[sh].MaxInt(int64(len(in.shards[sh]) + 1))
		}
		in.shards[sh] <- shardMsg{rec: r}
	}
	retire()
	in.wmCh <- wmUpdate{side: in.side, win: maxWin, metas: metas}
	if in.span != nil {
		in.span.AttrInt("packets", in.packets)
		in.span.Sim(prev) // replay-clock position when this side finished
		in.span.SetError(in.err)
		in.span.End()
	}
}

// shardOf maps an identity key onto a shard with a splitmix64-style
// mixer — deterministic across runs, uniform across tag layouts.
func shardOf(k metrics.Key, n int) int {
	x := k.Tag.Seq
	x ^= uint64(k.Tag.Replayer)<<48 ^ uint64(k.Tag.Stream)<<32 ^ uint64(k.Occ)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// coordinate turns the two ingest watermarks into close broadcasts: when
// both sides have passed a window, every shard is told to flush it, and
// the backpressure gate advances. With tracing on, every close broadcast
// becomes a "watermark" span stamped with the simulated close time —
// the replay-clock anchor choirtrace aligns stages against.
func coordinate(wmCh <-chan wmUpdate, shards []chan shardMsg, metaCh chan<- winMeta, g *gate, ob *streamObs, span *obs.Span, window sim.Duration) {
	wm := [2]int64{0, 0}
	closed := int64(0)
	for upd := range wmCh {
		for _, m := range upd.metas {
			metaCh <- m
		}
		if upd.win > wm[upd.side] {
			wm[upd.side] = upd.win
		}
		min := wm[0]
		if wm[1] < min {
			min = wm[1]
		}
		if min > closed {
			ob.noteClose(closed, min)
			var wmSpan *obs.Span
			if span != nil {
				wmSpan = span.Child("watermark", "watermark")
				wmSpan.AttrInt("from", closed)
				wmSpan.AttrInt("up_to", min)
				if min != maxWin {
					wmSpan.Sim(sim.Time(min) * sim.Time(window))
				}
			}
			closed = min
			for _, ch := range shards {
				ch <- shardMsg{close: true, upTo: closed}
			}
			g.advance(closed)
			wmSpan.End()
		}
		if wm[0] == maxWin && wm[1] == maxWin {
			break
		}
	}
	for _, ch := range shards {
		close(ch)
	}
	close(metaCh)
}
