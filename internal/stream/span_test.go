package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestStreamSpanDifferential: span tracing is the observability layer's
// strongest promise — attaching a causal span tree to a run must leave
// every summary byte bit-identical to the uninstrumented run, because
// spans only read (wall clock, counters) and never touch engine state.
func TestStreamSpanDifferential(t *testing.T) {
	a := jitteredTrial("A", 4000, 31)
	b := jitteredTrial("B", 4000, 32)
	base := Config{Window: 9_000, Shards: 4, Buffer: 32, MaxLag: 3}

	plain, err := Run(NewTraceSource(a), NewTraceSource(b), base)
	if err != nil {
		t.Fatal(err)
	}

	st := obs.NewSpanTracer(0)
	root := st.Root("run", "run")
	cfg := base
	cfg.Span = root
	traced, err := Run(NewTraceSource(a), NewTraceSource(b), cfg)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	if traced.Aggregate != plain.Aggregate {
		t.Fatalf("aggregate differs with spans on:\n  plain  %v\n  traced %v", plain.Aggregate, traced.Aggregate)
	}
	if traced.PacketsA != plain.PacketsA || traced.PacketsB != plain.PacketsB {
		t.Fatalf("ingest counts differ: (%d,%d) vs (%d,%d)",
			traced.PacketsA, traced.PacketsB, plain.PacketsA, plain.PacketsB)
	}
	assertWindowsEqual(t, traced.Windows, plain.Windows)

	// The stage tree must be complete and closed: 2 ingest, Shards
	// shard workers, 1 merge, ≥1 watermark close, all ended.
	if n := st.OpenCount(); n != 0 {
		t.Fatalf("%d spans left open", n)
	}
	counts := spanNameCounts(t, st)
	if counts["ingest"] != 2 || counts["shard"] != base.Shards || counts["merge"] != 1 || counts["watermark"] < 1 {
		t.Fatalf("stage tree incomplete: %v", counts)
	}
}

// spanNameCounts exports the tracer and tallies complete events by name.
func spanNameCounts(t *testing.T, st *obs.SpanTracer) map[string]int {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			counts[ev.Name]++
		}
	}
	return counts
}

// TestStreamSpanNil: a nil Config.Span disables the whole layer — and a
// run with spans enabled but a saturated tracer must still complete
// (nil children no-op).
func TestStreamSpanNil(t *testing.T) {
	a := jitteredTrial("A", 800, 31)
	b := jitteredTrial("B", 800, 32)
	base := Config{Window: 9_000, Shards: 2, Buffer: 16, MaxLag: 3}

	plain, err := Run(NewTraceSource(a), NewTraceSource(b), base)
	if err != nil {
		t.Fatal(err)
	}

	// Tracer with room for the root only: every engine child is dropped,
	// the run must not notice.
	st := obs.NewSpanTracer(1)
	root := st.Root("run", "run")
	cfg := base
	cfg.Span = root
	starved, err := Run(NewTraceSource(a), NewTraceSource(b), cfg)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if starved.Aggregate != plain.Aggregate {
		t.Fatalf("aggregate differs under span starvation:\n  plain   %v\n  starved %v", plain.Aggregate, starved.Aggregate)
	}
	if st.Dropped() == 0 {
		t.Fatal("expected dropped spans with cap 1")
	}
}

// TestStreamSpanConcurrentRuns: many engines sharing one tracer under
// the race detector — the campaign-runner shape (trials fan out across
// a pool, every trial roots its own tree on the shared tracer).
func TestStreamSpanConcurrentRuns(t *testing.T) {
	st := obs.NewSpanTracer(0)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := jitteredTrial("A", 600, int64(100+i))
			b := jitteredTrial("B", 600, int64(200+i))
			root := st.Root("run", "run", obs.L("i", fmt.Sprintf("%d", i)))
			_, err := Run(NewTraceSource(a), NewTraceSource(b),
				Config{Window: 9_000, Shards: 2, Buffer: 16, MaxLag: 3, Span: root})
			root.End()
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st.OpenCount() != 0 {
		t.Fatalf("%d spans left open", st.OpenCount())
	}
	if st.Dropped() != 0 {
		t.Fatalf("%d spans dropped", st.Dropped())
	}
}
