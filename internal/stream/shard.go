package stream

import (
	"slices"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// pendRec is an unmatched packet waiting for its twin from the other
// trial.
type pendRec struct {
	side side
	pos  int32
	lat  sim.Duration
	gap  sim.Duration
}

// winState is one shard's open-window accumulator: unmatched packets plus
// integer partial sums over the matches seen so far.
type winState struct {
	pend map[metrics.Key]pendRec
	sums metrics.Sums
}

// partialMsg is the shard→merge stream: per-window partial sums followed
// by flush watermarks.
type partialMsg struct {
	shard int
	win   int64
	sums  *metrics.Sums
	upTo  int64 // flush marker: this shard has flushed all windows < upTo
	flush bool
}

// shardWorker matches A/B records of its key subspace window by window.
// Memory is bounded by the open windows the backpressure gate allows.
type shardWorker struct {
	id          int
	in          <-chan shardMsg
	out         chan<- partialMsg
	wins        map[int64]*winState
	entries     int // live pend entries + retained match pairs
	peakEntries int
	peakWindows int

	// free recycles retired winStates (pend map buckets and all); their
	// position buffers come back separately through posBufPool once the
	// merge stage is done with them. order is the flush sort scratch.
	free  []*winState
	order []int64

	// stall is the fault-injection scheduling hook (Config.Stall); it
	// may yield the worker goroutine but never touches data.
	stall func(stage string, id int)

	// span is the worker's causal span (nil when tracing is off); ended
	// with the worker's match counts and memory peaks as attributes.
	span *obs.Span

	matched int64 // pairs matched, for the span attributes
}

// freeWinStates bounds the per-shard winState free list; open windows are
// already bounded by the backpressure gate, so this is belt and braces.
const freeWinStates = 64

// newWinState returns a recycled (or fresh) open-window accumulator with
// pooled position buffers.
func (w *shardWorker) newWinState() *winState {
	var ws *winState
	if n := len(w.free); n > 0 {
		ws = w.free[n-1]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
	} else {
		ws = &winState{pend: make(map[metrics.Key]pendRec)}
	}
	ws.sums.PosA = getPosBuf()
	ws.sums.PosB = getPosBuf()
	return ws
}

// recycleWinState clears a flushed window's state for reuse. The sums —
// including the position buffers, which now belong to the merge stage —
// are zeroed, not returned to the pool here.
func (w *shardWorker) recycleWinState(ws *winState) {
	if len(w.free) >= freeWinStates {
		return
	}
	clear(ws.pend)
	ws.sums = metrics.Sums{}
	w.free = append(w.free, ws)
}

func (w *shardWorker) run() {
	w.wins = make(map[int64]*winState)
	for msg := range w.in {
		if w.stall != nil {
			w.stall("shard", w.id)
		}
		if msg.close {
			w.flush(msg.upTo)
			continue
		}
		w.ingest(msg.rec)
	}
	// Channel closed: a final close{maxWin} always precedes it, so
	// nothing is left; flush defensively anyway.
	w.flush(maxWin)
	if w.span != nil {
		w.span.AttrInt("matched_pairs", w.matched)
		w.span.AttrInt("peak_entries", int64(w.peakEntries))
		w.span.AttrInt("peak_windows", int64(w.peakWindows))
		w.span.End()
	}
}

func (w *shardWorker) ingest(r rec) {
	ws := w.wins[r.win]
	if ws == nil {
		ws = w.newWinState()
		w.wins[r.win] = ws
		if len(w.wins) > w.peakWindows {
			w.peakWindows = len(w.wins)
		}
	}
	if tw, ok := ws.pend[r.key]; ok && tw.side != r.side {
		// Matched pair: fold into the partial sums. Deltas are B − A.
		// One pending entry becomes one retained (posA, posB) pair, so
		// the entry count is unchanged.
		delete(ws.pend, r.key)
		var (
			posA, posB int32
			latA, latB sim.Duration
			gapA, gapB sim.Duration
		)
		if r.side == sideA {
			posA, latA, gapA = r.pos, r.lat, r.gap
			posB, latB, gapB = tw.pos, tw.lat, tw.gap
		} else {
			posA, latA, gapA = tw.pos, tw.lat, tw.gap
			posB, latB, gapB = r.pos, r.lat, r.gap
		}
		s := &ws.sums
		s.Common++
		w.matched++
		s.PosA = append(s.PosA, posA)
		s.PosB = append(s.PosB, posB)
		s.SumAbsLat += absInt64(int64(latB - latA))
		di := int64(gapB - gapA)
		s.SumAbsIAT += absInt64(di)
		if di <= 10 && di >= -10 {
			s.Within10++
		}
	} else {
		// First sighting (or a same-side duplicate, impossible by
		// construction of the occurrence key).
		ws.pend[r.key] = pendRec{side: r.side, pos: r.pos, lat: r.lat, gap: r.gap}
		w.entries++
		if w.entries > w.peakEntries {
			w.peakEntries = w.entries
		}
	}
}

// flush retires every window below upTo: leftover pending packets become
// OnlyA/OnlyB, the partial ships to the merge stage, and the state is
// freed.
func (w *shardWorker) flush(upTo int64) {
	if len(w.wins) == 0 {
		w.out <- partialMsg{shard: w.id, flush: true, upTo: upTo}
		return
	}
	order := w.order[:0]
	for win := range w.wins {
		if win < upTo {
			order = append(order, win)
		}
	}
	slices.Sort(order)
	w.order = order[:0]
	for _, win := range order {
		ws := w.wins[win]
		for _, p := range ws.pend {
			if p.side == sideA {
				ws.sums.OnlyA++
			} else {
				ws.sums.OnlyB++
			}
		}
		w.entries -= len(ws.pend) + ws.sums.Common
		s := ws.sums
		delete(w.wins, win)
		w.recycleWinState(ws)
		w.out <- partialMsg{shard: w.id, win: win, sums: &s}
	}
	w.out <- partialMsg{shard: w.id, flush: true, upTo: upTo}
}

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
