package stream

import "sync"

// posBufPool recycles the PosA/PosB position buffers that flow from the
// shard workers (which fill them match by match) to the merge stage
// (which folds them into the window aggregate and assembles the score).
// The pool is what makes the crossing cheap: buffers retired by merge
// after Assemble come back to the shards for the next window, so
// steady-state ingest allocates no position storage at all.
//
// Recycling is only sound because metrics.Sums.Assemble/OrderingParts no
// longer mutate PosA/PosB (they sort index permutations in a scratch
// arena instead) — a returned buffer carries no aliasing hazard.
var posBufPool = sync.Pool{
	New: func() any {
		b := make([]int32, 0, 64)
		return &b
	},
}

// getPosBuf returns an empty position buffer with whatever capacity a
// previous window grew.
func getPosBuf() []int32 {
	return (*posBufPool.Get().(*[]int32))[:0]
}

// putPosBuf returns a buffer to the pool. Nil (never-pooled) buffers are
// ignored so callers can hand back Sums fields unconditionally.
func putPosBuf(b []int32) {
	if cap(b) == 0 {
		return
	}
	posBufPool.Put(&b)
}
