package stream

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// streamObs bundles the engine's instruments; created per Run when
// Config.Obs is set. Everything here is observational: counters and
// gauges are atomic, the close-time map has its own lock, and nothing
// feeds back into the pipeline — summaries are bit-identical with
// observability on or off (asserted by TestStreamObsDifferential).
type streamObs struct {
	// Per-shard input channel occupancy high-water (records). Written by
	// both ingesters, so the gauge's atomic Max is what makes it safe.
	shardQPeak []*obs.Gauge
	// Per-trial peak distance between the window an ingester wants to
	// open and the close watermark — how hard backpressure worked.
	lagPeak [2]*obs.Gauge
	// Wall-clock latency from the coordinator broadcasting a window's
	// close to the merge stage finalizing it.
	closeLat *obs.Histogram

	matched  *obs.Counter
	orphaned *obs.Counter
	windows  *obs.Counter

	// Running whole-run aggregate (the streaming metrics.Sums exposure):
	// refreshed after every closed window so a scrape mid-run reports
	// the κ the run would score if it ended now.
	runU, runO, runL, runI *obs.Gauge
	runKappa, runMeanKappa *obs.Gauge
	runCommon              *obs.Gauge
	runOnlyA, runOnlyB     *obs.Gauge

	mu        sync.Mutex
	closeTime map[int64]time.Time
}

// newStreamObs registers the engine's instrument families. Returns nil
// when o is nil or has no registry, so every call site can stay a single
// nil check.
func newStreamObs(o *obs.Obs, shards int) *streamObs {
	if o == nil || o.Reg == nil {
		return nil
	}
	reg := o.Reg
	so := &streamObs{
		closeLat:     reg.Histogram("stream_window_close_latency_ns", "wall-clock delay from close broadcast to merge finalize", 10),
		matched:      reg.Counter("stream_pairs_matched_total", "A/B packet pairs matched across all windows"),
		orphaned:     reg.Counter("stream_pairs_orphaned_total", "packets left unmatched (OnlyA + OnlyB) across all windows"),
		windows:      reg.Counter("stream_windows_closed_total", "tumbling windows finalized by the merge stage"),
		runU:         reg.Gauge("stream_running_u", "running whole-run unordered metric U"),
		runO:         reg.Gauge("stream_running_o", "running whole-run ordering metric O"),
		runL:         reg.Gauge("stream_running_l", "running whole-run latency metric L"),
		runI:         reg.Gauge("stream_running_i", "running whole-run inter-arrival metric I"),
		runKappa:     reg.Gauge("stream_running_kappa", "running whole-run consistency score κ"),
		runMeanKappa: reg.Gauge("stream_running_mean_kappa", "running unweighted mean of per-window κ"),
		runCommon:    reg.Gauge("stream_running_common_packets", "running matched-pair count"),
		runOnlyA:     reg.Gauge("stream_running_only_a_packets", "running packets seen only in trial A"),
		runOnlyB:     reg.Gauge("stream_running_only_b_packets", "running packets seen only in trial B"),
		closeTime:    make(map[int64]time.Time),
	}
	so.shardQPeak = make([]*obs.Gauge, shards)
	for i := range so.shardQPeak {
		so.shardQPeak[i] = reg.Gauge("stream_shard_queue_peak_records",
			"high-water occupancy of a shard's input channel", obs.L("shard", fmt.Sprintf("%d", i)))
	}
	so.lagPeak[sideA] = reg.Gauge("stream_watermark_lag_peak_windows",
		"peak windows an ingester ran ahead of the close watermark", obs.L("trial", "A"))
	so.lagPeak[sideB] = reg.Gauge("stream_watermark_lag_peak_windows",
		"peak windows an ingester ran ahead of the close watermark", obs.L("trial", "B"))
	return so
}

// maxCloseTimed bounds the close-time map: windows closed but never
// finalized (sparse inputs, or the final maxWin jump when both sources
// drain) must not accumulate, so only the most recent windows of a
// batch are timestamped and the map is capped. Missing entries simply
// skip the latency sample.
const maxCloseTimed = 1 << 12

// noteClose timestamps windows [from, to) at the close broadcast.
func (so *streamObs) noteClose(from, to int64) {
	if so == nil || to >= maxWin {
		// The terminal watermark is "everything": there is no bounded
		// window range to timestamp.
		return
	}
	if to-from > maxCloseTimed {
		from = to - maxCloseTimed
	}
	now := time.Now()
	so.mu.Lock()
	for w := from; w < to && len(so.closeTime) < maxCloseTimed; w++ {
		so.closeTime[w] = now
	}
	so.mu.Unlock()
}

// observeClose records the close→finalize latency for win, if its close
// broadcast was timestamped (stragglers finalized after channel close
// were not, and are skipped).
func (so *streamObs) observeClose(win int64) {
	if so == nil {
		return
	}
	so.mu.Lock()
	t, ok := so.closeTime[win]
	if ok {
		delete(so.closeTime, win)
	}
	so.mu.Unlock()
	if ok {
		so.closeLat.Observe(time.Since(t).Nanoseconds())
	}
}

// publishAggregate refreshes the running whole-run gauges. ex, when
// nonzero, is the causal span that scored this aggregate (the merge
// stage's span): the κ gauge carries it as an exemplar so a dashboard
// sample links straight back to the trace that produced it.
func (so *streamObs) publishAggregate(a *Aggregate, ex obs.SpanID) {
	if so == nil {
		return
	}
	so.runU.Set(a.U)
	so.runO.Set(a.O)
	so.runL.Set(a.L)
	so.runI.Set(a.I)
	if ex != 0 {
		so.runKappa.SetExemplar(a.Kappa, ex)
	} else {
		so.runKappa.Set(a.Kappa)
	}
	so.runMeanKappa.Set(a.MeanKappa)
	so.runCommon.SetInt(a.Common)
	so.runOnlyA.SetInt(a.OnlyA)
	so.runOnlyB.SetInt(a.OnlyB)
}
