package stream

import (
	"io"
	"math"
	"math/rand"
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// assertWindowsEqual compares streaming output against the batch oracle
// window for window. The equivalence guarantee is bit-exact; the 1e-9
// tolerance of the acceptance criteria is only a backstop.
func assertWindowsEqual(t *testing.T, got []metrics.WindowResult, want []metrics.WindowResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("streaming produced %d windows, batch %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Start != w.Start || g.End != w.End {
			t.Fatalf("window %d bounds [%v,%v) != batch [%v,%v)", i, g.Start, g.End, w.Start, w.End)
		}
		gr, wr := g.Result, w.Result
		if gr.Common != wr.Common || gr.OnlyA != wr.OnlyA || gr.OnlyB != wr.OnlyB {
			t.Fatalf("window %d counts (%d,%d,%d) != batch (%d,%d,%d)",
				i, gr.Common, gr.OnlyA, gr.OnlyB, wr.Common, wr.OnlyA, wr.OnlyB)
		}
		if gr.MovedPackets != wr.MovedPackets {
			t.Fatalf("window %d moved %d != batch %d", i, gr.MovedPackets, wr.MovedPackets)
		}
		check := func(name string, a, b float64) {
			if a != b && math.Abs(a-b) > 1e-9 {
				t.Fatalf("window %d %s: streaming %v != batch %v", i, name, a, b)
			}
			if a != b {
				t.Errorf("window %d %s within 1e-9 but not bit-equal: %v vs %v", i, name, a, b)
			}
		}
		check("U", gr.U, wr.U)
		check("O", gr.O, wr.O)
		check("L", gr.L, wr.L)
		check("I", gr.I, wr.I)
		check("κ", gr.Kappa, wr.Kappa)
		check("pct10", gr.PctIATWithin10, wr.PctIATWithin10)
	}
}

func runBoth(t *testing.T, a, b *trace.Trace, window sim.Duration, cfg Config) (*Summary, []metrics.WindowResult) {
	t.Helper()
	want, err := metrics.CompareWindowed(a, b, window, metrics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Window = window
	sum, err := Run(NewTraceSource(a), NewTraceSource(b), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sum, want
}

// TestDifferentialSeededSimulator is the headline acceptance test:
// streaming κ equals batch CompareWindowed κ window for window on
// captures recorded from three different seeded simulator environments
// (run under -race in CI via verify.sh).
func TestDifferentialSeededSimulator(t *testing.T) {
	envs := []testbed.Env{
		testbed.LocalSingle(),
		testbed.FabricShared40(),
		testbed.FabricDedicated80Noisy(),
	}
	for i, env := range envs {
		res, err := experiments.Run(env, experiments.TrialConfig{Packets: 4000, Runs: 2, Seed: int64(41 + i)})
		if err != nil {
			t.Fatalf("%s: %v", env.Name, err)
		}
		a, b := res.Traces[0], res.Traces[1]
		if a.Len() == 0 || b.Len() == 0 {
			t.Fatalf("%s: empty capture", env.Name)
		}
		span := a.Span()
		if b.Span() > span {
			span = b.Span()
		}
		for _, windows := range []sim.Duration{span/16 + 1, span/5 + 1, span + 1} {
			for _, shards := range []int{1, 4} {
				sum, want := runBoth(t, a, b, windows, Config{Shards: shards, Buffer: 128})
				assertWindowsEqual(t, sum.Windows, want)
			}
		}
	}
}

// jitteredTrial builds a synthetic trial with drops, duplicate tags,
// reordering and jitter.
func jitteredTrial(name string, n int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New(name, n)
	at := sim.Time(0)
	i := 0
	for tr.Len() < n {
		at += sim.Duration(90 + rng.Intn(40))
		seq := uint64(i)
		switch rng.Intn(25) {
		case 0: // drop
			i++
			continue
		case 1: // duplicate tag (same seq twice)
			tr.Append(&packet.Packet{Tag: packet.Tag{Seq: seq}, Kind: packet.KindData, FrameLen: 100}, at)
			at += sim.Duration(5 + rng.Intn(10))
		case 2: // swap with the next packet (reorder)
			if tr.Len()+2 <= n {
				tr.Append(&packet.Packet{Tag: packet.Tag{Seq: seq + 1}, Kind: packet.KindData, FrameLen: 100}, at)
				at += sim.Duration(5 + rng.Intn(10))
				tr.Append(&packet.Packet{Tag: packet.Tag{Seq: seq}, Kind: packet.KindData, FrameLen: 100}, at)
				i += 2
				continue
			}
		}
		tr.Append(&packet.Packet{Tag: packet.Tag{Seq: seq}, Kind: packet.KindData, FrameLen: 100}, at)
		i++
	}
	return tr
}

// TestDifferentialSynthetic covers adversarial shapes the simulator does
// not produce: duplicate tags, heavy drops, disjoint tails, and window
// boundaries that split bursts.
func TestDifferentialSynthetic(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		a := jitteredTrial("A", 1500, seed)
		b := jitteredTrial("B", 1500, seed+100)
		for _, window := range []sim.Duration{1_000, 7_777, 50_000} {
			sum, want := runBoth(t, a, b, window, Config{Shards: 3, Buffer: 32, MaxLag: 3})
			assertWindowsEqual(t, sum.Windows, want)
		}
	}
}

// TestDifferentialDegenerate checks empty and one-sided inputs.
func TestDifferentialDegenerate(t *testing.T) {
	empty := trace.New("E", 0)
	one := jitteredTrial("A", 200, 9)
	cases := []struct{ a, b *trace.Trace }{
		{empty, empty},
		{one, empty},
		{empty, one},
		{one, one},
	}
	for i, tc := range cases {
		sum, want := runBoth(t, tc.a, tc.b, 5_000, Config{Shards: 2})
		if len(sum.Windows) != len(want) {
			t.Fatalf("case %d: %d windows vs %d", i, len(sum.Windows), len(want))
		}
		assertWindowsEqual(t, sum.Windows, want)
	}
}

// TestBoundedMemory streams a trace far larger than the configured
// buffer budget and asserts the per-shard high-water marks stayed at the
// few-open-windows scale, not the trace scale — the constant-memory
// claim of the subsystem.
func TestBoundedMemory(t *testing.T) {
	const n = 60_000
	a := jitteredTrial("A", n, 3)
	b := jitteredTrial("B", n, 4)
	cfg := Config{
		Window:         50_000, // ≈ 450 packets per window
		Shards:         4,
		Buffer:         64, // far below n
		MaxLag:         2,
		DiscardWindows: true,
	}
	windows := 0
	cfg.OnWindow = func(metrics.WindowResult) { windows++ }
	sum, err := Run(NewTraceSource(a), NewTraceSource(b), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Windows != nil {
		t.Fatal("DiscardWindows retained window results")
	}
	if windows != sum.Aggregate.Windows || windows < 100 {
		t.Fatalf("OnWindow saw %d windows, aggregate %d", windows, sum.Aggregate.Windows)
	}
	if sum.PacketsA != n || sum.PacketsB != n {
		t.Fatalf("ingested (%d,%d), want (%d,%d)", sum.PacketsA, sum.PacketsB, n, n)
	}
	if got := sum.Stats.PeakOpenWindows; got > cfg.MaxLag+2 {
		t.Fatalf("peak open windows %d exceeds MaxLag bound %d", got, cfg.MaxLag+2)
	}
	// Budget: both sides' packets for the open windows, split across
	// shards, with generous slack for hash skew.
	perWindow := 2 * n / windows
	budget := perWindow * (cfg.MaxLag + 2) / cfg.Shards * 4
	if got := sum.Stats.PeakShardEntries; got > budget || got == 0 {
		t.Fatalf("peak shard entries %d outside (0, %d]", got, budget)
	}
}

// TestAggregateMatchesWindowSums sanity-checks the running aggregate
// against a direct recombination of the emitted windows.
func TestAggregateMatchesWindowSums(t *testing.T) {
	a := jitteredTrial("A", 3000, 5)
	b := jitteredTrial("B", 3000, 6)
	sum, want := runBoth(t, a, b, 20_000, Config{Shards: 4})
	assertWindowsEqual(t, sum.Windows, want)

	var common, onlyA, onlyB int64
	var kappaSum float64
	for _, w := range sum.Windows {
		common += int64(w.Result.Common)
		onlyA += int64(w.Result.OnlyA)
		onlyB += int64(w.Result.OnlyB)
		kappaSum += w.Result.Kappa
	}
	ag := sum.Aggregate
	if ag.Common != common || ag.OnlyA != onlyA || ag.OnlyB != onlyB {
		t.Fatalf("aggregate counts (%d,%d,%d) != window sums (%d,%d,%d)",
			ag.Common, ag.OnlyA, ag.OnlyB, common, onlyA, onlyB)
	}
	wantU := 1 - 2*float64(common)/float64(2*common+onlyA+onlyB)
	if math.Abs(ag.U-wantU) > 1e-12 {
		t.Fatalf("aggregate U %v, want %v", ag.U, wantU)
	}
	if math.Abs(ag.MeanKappa-kappaSum/float64(len(sum.Windows))) > 1e-12 {
		t.Fatalf("mean κ %v inconsistent", ag.MeanKappa)
	}
	if ag.Kappa <= 0 || ag.Kappa > 1 {
		t.Fatalf("aggregate κ %v out of range", ag.Kappa)
	}
	if ag.Windows != len(sum.Windows) {
		t.Fatalf("aggregate windows %d != %d", ag.Windows, len(sum.Windows))
	}
}

// TestIdenticalStreamsPerfectKappa: identical inputs must score κ=1
// everywhere.
func TestIdenticalStreamsPerfectKappa(t *testing.T) {
	a := jitteredTrial("A", 2000, 8)
	sum, err := Run(NewTraceSource(a), NewTraceSource(a), Config{Window: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range sum.Windows {
		if w.Result.Kappa != 1 {
			t.Fatalf("window %v: κ=%v on identical streams", w, w.Result.Kappa)
		}
	}
	if sum.Aggregate.Kappa != 1 || sum.Aggregate.MeanKappa != 1 {
		t.Fatalf("aggregate %v on identical streams", sum.Aggregate)
	}
}

// TestOnWindowOrder: windows must be delivered in ascending order even
// with many shards racing.
func TestOnWindowOrder(t *testing.T) {
	a := jitteredTrial("A", 5000, 12)
	b := jitteredTrial("B", 5000, 13)
	var starts []sim.Time
	cfg := Config{Window: 3_000, Shards: 8, Buffer: 16, MaxLag: 2,
		OnWindow: func(w metrics.WindowResult) { starts = append(starts, w.Start) }}
	if _, err := Run(NewTraceSource(a), NewTraceSource(b), cfg); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			t.Fatalf("window order violated: %v after %v", starts[i], starts[i-1])
		}
	}
	if len(starts) < 50 {
		t.Fatalf("only %d windows", len(starts))
	}
}

// TestNonMonotoneSourceErrors: a source violating the timestamp contract
// aborts with an error but still returns the scored prefix.
func TestNonMonotoneSourceErrors(t *testing.T) {
	tr := trace.New("bad", 3)
	tr.Packets = append(tr.Packets,
		&packet.Packet{Tag: packet.Tag{Seq: 1}, Kind: packet.KindData},
		&packet.Packet{Tag: packet.Tag{Seq: 2}, Kind: packet.KindData},
		&packet.Packet{Tag: packet.Tag{Seq: 3}, Kind: packet.KindData})
	tr.Times = append(tr.Times, 100, 50, 200) // decreasing
	good := jitteredTrial("G", 100, 2)
	sum, err := Run(&rawSource{tr: tr}, NewTraceSource(good), Config{Window: 1_000})
	if err == nil {
		t.Fatal("non-monotone source accepted")
	}
	if sum == nil {
		t.Fatal("summary not returned alongside the error")
	}
}

// rawSource bypasses trace validation (TraceSource would be fine too,
// but be explicit that the stream engine itself must catch it).
type rawSource struct {
	tr *trace.Trace
	i  int
}

func (s *rawSource) Next() (*packet.Packet, sim.Time, error) {
	if s.i >= s.tr.Len() {
		return nil, 0, io.EOF
	}
	p, t := s.tr.Packets[s.i], s.tr.Times[s.i]
	s.i++
	return p, t, nil
}

// TestTapSource drives the live-tap path: a producer goroutine plays a
// trial into two taps while the engine consumes them concurrently.
func TestTapSource(t *testing.T) {
	a := jitteredTrial("A", 4000, 21)
	b := jitteredTrial("B", 4000, 22)
	want, err := metrics.CompareWindowed(a, b, 25_000, metrics.Options{})
	if err != nil {
		t.Fatal(err)
	}

	tapA := NewTap(64, false)
	tapB := NewTap(64, false)
	go func() {
		for i := 0; i < a.Len(); i++ {
			tapA.Receive(a.Packets[i], a.Times[i])
		}
		tapA.Close()
	}()
	go func() {
		for i := 0; i < b.Len(); i++ {
			tapB.Receive(b.Packets[i], b.Times[i])
		}
		tapB.Close()
	}()
	sum, err := Run(tapA, tapB, Config{Window: 25_000, Shards: 4, Buffer: 32})
	if err != nil {
		t.Fatal(err)
	}
	assertWindowsEqual(t, sum.Windows, want)
	if tapA.Received() != uint64(a.Len()) {
		t.Fatalf("tap A received %d, want %d", tapA.Received(), a.Len())
	}
}

// TestDataOnlyFilter mirrors trace.DataOnly at ingest.
func TestDataOnlyFilter(t *testing.T) {
	mixed := trace.New("M", 0)
	at := sim.Time(0)
	for i := 0; i < 500; i++ {
		at += 100
		kind := packet.KindData
		if i%5 == 0 {
			kind = packet.KindNoise
		}
		mixed.Append(&packet.Packet{Tag: packet.Tag{Seq: uint64(i)}, Kind: kind, FrameLen: 64}, at)
	}
	clean := mixed.DataOnly()
	want, err := metrics.CompareWindowed(clean, clean, 5_000, metrics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(NewTraceSource(mixed), NewTraceSource(mixed), Config{Window: 5_000, DataOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	assertWindowsEqual(t, sum.Windows, want)
	if sum.PacketsA != int64(clean.Len()) {
		t.Fatalf("ingested %d, want %d data packets", sum.PacketsA, clean.Len())
	}
}

// TestConfigValidation rejects a missing window.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := New(Config{Window: -5}); err == nil {
		t.Fatal("negative window accepted")
	}
}

// TestShardOfStable: the shard hash must be deterministic and in range.
func TestShardOfStable(t *testing.T) {
	counts := make([]int, 5)
	for i := 0; i < 10_000; i++ {
		k := metrics.Key{Tag: packet.Tag{Replayer: uint16(i % 3), Stream: uint16(i % 7), Seq: uint64(i)}, Occ: uint32(i % 2)}
		s := shardOf(k, 5)
		if s != shardOf(k, 5) {
			t.Fatal("hash not deterministic")
		}
		if s < 0 || s >= 5 {
			t.Fatalf("shard %d out of range", s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 1_000 {
			t.Fatalf("shard %d badly unbalanced: %d/10000", s, c)
		}
	}
}
