package core

import (
	"math/rand"

	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Recorder is the capture node at the end of the topology (dpdkcap in
// the paper's artifact): it timestamps every arriving frame with its
// NIC's timestamping discipline and accumulates a trace per trial.
type Recorder struct {
	eng       *sim.Engine
	ts        nic.Timestamper
	rng       *rand.Rand
	tr        *trace.Trace
	last      sim.Time
	dataOnly  bool
	received  uint64
	discarded uint64

	label string
	ob    *recObs
}

// recObs bundles the recorder's instruments; created only by EnableObs.
type recObs struct {
	tr        *obs.Tracer
	track     string
	received  *obs.Counter
	discarded *obs.Counter
}

// EnableObs attaches capture counters and a terminal `capture` instant
// for sampled packets. A nil handle is a no-op.
func (r *Recorder) EnableObs(o *obs.Obs) {
	if o == nil || (o.Reg == nil && o.Tracer == nil) {
		return
	}
	lbl := obs.L("recorder", r.label)
	r.ob = &recObs{
		tr:        o.Tracer,
		track:     "recorder/" + r.label,
		received:  o.Reg.Counter("capture_received_total", "frames seen by the capture node", lbl),
		discarded: o.Reg.Counter("capture_discarded_total", "non-data frames dropped by the tag filter", lbl),
	}
}

// NewRecorder creates a recorder using the given timestamper. When
// dataOnly is true, noise/control/invalid frames are counted but not
// captured — the tag filter the paper's analysis applies.
func NewRecorder(eng *sim.Engine, label string, ts nic.Timestamper, dataOnly bool) *Recorder {
	if ts == nil {
		ts = nic.PerfectTimestamper{}
	}
	return &Recorder{
		eng:      eng,
		ts:       ts,
		rng:      eng.Rand("recorder/" + label),
		tr:       trace.New(label, 1024),
		dataOnly: dataOnly,
		label:    label,
	}
}

// SimEngine reports the engine this recorder runs on (sim.Hosted).
func (r *Recorder) SimEngine() *sim.Engine { return r.eng }

// Receive implements nic.Endpoint.
func (r *Recorder) Receive(p *packet.Packet, wire sim.Time) {
	r.received++
	if ob := r.ob; ob != nil {
		ob.received.Inc()
	}
	if r.dataOnly && p.Kind != packet.KindData {
		r.discarded++
		if ob := r.ob; ob != nil {
			ob.discarded.Inc()
		}
		return
	}
	st := r.ts.Stamp(wire, r.rng)
	// Capture stacks report monotone timestamps even when hardware
	// clock sampling jitters across adjacent frames.
	if st < r.last {
		st = r.last
	}
	r.last = st
	r.tr.Append(p, st)
	if ob := r.ob; ob != nil && ob.tr != nil {
		ob.tr.Instant(p.Tag, obs.StageCapture, ob.track, st)
	}
}

// StartTrial begins a fresh capture named name; the previous trace is
// returned.
func (r *Recorder) StartTrial(name string) *trace.Trace {
	prev := r.tr
	r.tr = trace.New(name, prev.Len()+1024)
	r.last = 0
	return prev
}

// Trace returns the in-progress capture.
func (r *Recorder) Trace() *trace.Trace { return r.tr }

// Received returns total frames seen (including discarded noise).
func (r *Recorder) Received() uint64 { return r.received }

// Discarded returns non-data frames dropped by the tag filter.
func (r *Recorder) Discarded() uint64 { return r.discarded }
