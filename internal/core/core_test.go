package core

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/control"
	"repro/internal/dpdk"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// rig is a minimal generator → middlebox → recorder pipeline on perfect
// hardware.
type rig struct {
	eng  *sim.Engine
	genQ *nic.Queue
	mb   *Middlebox
	rec  *Recorder
	bus  *control.Bus
}

func newRig(seed int64, cfgMut func(*Config)) *rig {
	e := sim.NewEngine(seed)
	perfect := nic.Profile{Name: "perfect", LineRateBps: packet.Gbps(100)}

	genN := nic.New(e, perfect, "gen")
	genQ := genN.NewQueue(1 << 20)

	mbN := nic.New(e, perfect, "mb")
	mbQ := mbN.NewQueue(1 << 20)

	cfg := Config{
		ID:   1,
		TSC:  clock.NewTSC(2.5e9, 0, 0),
		Wall: clock.NewSystemClock(0),
		Out:  mbQ,
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	mb := New(e, cfg)
	genQ.Connect(mb, 0)

	rec := NewRecorder(e, "A", nic.PerfectTimestamper{}, true)
	mbQ.Connect(rec, 0)

	return &rig{eng: e, genQ: genQ, mb: mb, rec: rec, bus: control.NewBus(e, nil)}
}

// generate streams count CBR packets at 40G through the rig.
func (r *rig) generate(count int) {
	gen.StartCBR(r.eng, r.genQ, gen.CBRConfig{
		RateBps:  packet.Gbps(40),
		FrameLen: 1400,
		Count:    count,
		StartAt:  r.eng.Now(),
		Flow: packet.FiveTuple{
			Src: packet.IPForNode(1), Dst: packet.IPForNode(2),
			SrcPort: 7000, DstPort: 7001, Proto: packet.ProtoUDP,
		},
	})
}

func TestTransparentForwarding(t *testing.T) {
	r := newRig(1, nil)
	r.generate(2000)
	r.eng.Run()

	tr := r.rec.Trace()
	if tr.Len() != 2000 {
		t.Fatalf("forwarded %d packets, want 2000", tr.Len())
	}
	for i, p := range tr.Packets {
		if p.Tag.Seq != uint64(i) {
			t.Fatalf("reordered at %d: seq %d", i, p.Tag.Seq)
		}
		if p.Tag.Replayer != 1 {
			t.Fatalf("packet %d not stamped with replayer id: %v", i, p.Tag)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordingCapturesBursts(t *testing.T) {
	r := newRig(2, nil)
	r.bus.Send(r.mb, control.StartRecord{At: 0})
	r.generate(2000)
	r.eng.Run()

	if r.mb.Recorded() != 2000 {
		t.Fatalf("recorded %d packets, want 2000", r.mb.Recorded())
	}
	if r.mb.RecordedBursts() == 0 {
		t.Fatal("no bursts recorded")
	}
	// Bursts respect the DPDK limit.
	for _, b := range r.mb.bursts {
		if len(b.pkts) == 0 || len(b.pkts) > nic.BurstSize {
			t.Fatalf("burst size %d out of range", len(b.pkts))
		}
	}
	// TSC stamps strictly increase burst to burst.
	for i := 1; i < len(r.mb.bursts); i++ {
		if r.mb.bursts[i].tsc <= r.mb.bursts[i-1].tsc {
			t.Fatalf("burst TSC not increasing at %d", i)
		}
	}
	if r.mb.Status().Recorded != 2000 {
		t.Fatalf("status: %v", r.mb.Status())
	}
}

func TestRecordingZeroCopy(t *testing.T) {
	r := newRig(3, nil)
	r.bus.Send(r.mb, control.StartRecord{At: 0})
	r.generate(100)
	r.eng.Run()
	// The recorded packets are the same objects the recorder saw: no
	// copies were made (paper §4: recording holds forwarded packets in
	// memory "without making a copy").
	seen := map[*packet.Packet]bool{}
	for _, p := range r.rec.Trace().Packets {
		seen[p] = true
	}
	for _, b := range r.mb.bursts {
		for _, p := range b.pkts {
			if !seen[p] {
				t.Fatal("recorded packet is not the forwarded object (copied?)")
			}
		}
	}
}

func TestStopRecordHonoursWindow(t *testing.T) {
	r := newRig(4, nil)
	r.bus.Send(r.mb, control.StartRecord{At: 0})
	r.generate(2000) // ~568µs of traffic at 40G
	// Stop recording after ~the first half.
	r.bus.Send(r.mb, control.StopRecord{At: 284 * 1000})
	r.eng.Run()
	got := r.mb.Recorded()
	if got == 0 || got >= 2000 {
		t.Fatalf("recorded %d packets; want a strict subset", got)
	}
	// Forwarding continued: the recorder saw everything.
	if r.rec.Trace().Len() != 2000 {
		t.Fatalf("recorder saw %d, want 2000 (middlebox must stay transparent)", r.rec.Trace().Len())
	}
}

func TestRecordBufferBound(t *testing.T) {
	r := newRig(5, nil)
	r.bus.Send(r.mb, control.StartRecord{At: 0, MaxPackets: 512})
	r.generate(2000)
	r.eng.Run()
	if r.mb.Recorded() > 512 {
		t.Fatalf("recorded %d packets, bound was 512", r.mb.Recorded())
	}
	if !r.mb.Truncated() {
		t.Fatal("truncation not reported")
	}
}

// runReplay triggers a replay and captures it as a named trial.
func runReplay(r *rig, name string) *trace.Trace {
	r.rec.StartTrial(name)
	start := r.mb.cfg.Wall.Wall(r.eng.Now()) + 10*sim.Millisecond
	r.bus.Send(r.mb, control.StartReplay{At: start})
	r.eng.Run()
	return r.rec.Trace()
}

func TestReplayPerfectConsistency(t *testing.T) {
	// DESIGN.md invariant: with a zero-jitter profile, replays are
	// bit-identical — κ = 1 between any two replay trials.
	r := newRig(6, nil)
	r.bus.Send(r.mb, control.StartRecord{At: 0})
	r.generate(5000)
	r.eng.Run()
	r.bus.Send(r.mb, control.StopRecord{At: r.mb.cfg.Wall.Wall(r.eng.Now())})
	r.eng.Run()

	a := runReplay(r, "A").Normalize()
	b := runReplay(r, "B").Normalize()
	if a.Len() != 5000 || b.Len() != 5000 {
		t.Fatalf("replay lengths %d/%d, want 5000", a.Len(), b.Len())
	}
	res, err := metrics.Compare(a, b, metrics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kappa != 1 || res.U != 0 || res.O != 0 || res.L != 0 || res.I != 0 {
		t.Fatalf("perfect rig not perfectly consistent: %v", res)
	}
	if r.mb.ReplaysRun() != 2 {
		t.Fatalf("ReplaysRun = %d", r.mb.ReplaysRun())
	}
	if r.mb.ReplayedPackets() != 10000 {
		t.Fatalf("ReplayedPackets = %d", r.mb.ReplayedPackets())
	}
}

func TestReplayPreservesRecordedIATs(t *testing.T) {
	// With perfect hardware, replayed inter-burst spacing equals the
	// recorded spacing: the replay reproduces the recorded timeline
	// shifted by a constant.
	r := newRig(7, nil)
	r.bus.Send(r.mb, control.StartRecord{At: 0})
	r.generate(1000)
	r.eng.Run()

	original := r.rec.Trace().Normalize()
	replayA := runReplay(r, "A").Normalize()
	if replayA.Len() != original.Len() {
		t.Fatalf("replay %d packets, original %d", replayA.Len(), original.Len())
	}
	// Burst-level pacing is identical; intra-burst spacing is always
	// line rate in both. Compare full IAT sequences.
	oi, ri := original.IATs(), replayA.IATs()
	for i := range oi {
		if oi[i] != ri[i] {
			t.Fatalf("IAT %d differs: recorded %v, replayed %v", i, oi[i], ri[i])
		}
	}
}

func TestReplayWaitsForCommandedStart(t *testing.T) {
	r := newRig(8, nil)
	r.bus.Send(r.mb, control.StartRecord{At: 0})
	r.generate(500)
	r.eng.Run()

	recordedEnd := r.eng.Now()
	r.rec.StartTrial("A")
	start := r.mb.cfg.Wall.Wall(recordedEnd) + 50*sim.Millisecond
	r.bus.Send(r.mb, control.StartReplay{At: start})
	r.eng.Run()
	tr := r.rec.Trace()
	if tr.Len() != 500 {
		t.Fatalf("replayed %d packets", tr.Len())
	}
	if tr.Start() < start {
		t.Fatalf("first replayed packet at %v, before commanded start %v", tr.Start(), start)
	}
	if tr.Start() > start+sim.Millisecond {
		t.Fatalf("first replayed packet at %v, far after commanded start %v", tr.Start(), start)
	}
}

func TestReplayWithoutRecordingIsNoop(t *testing.T) {
	r := newRig(9, nil)
	r.bus.Send(r.mb, control.StartReplay{At: sim.Second})
	r.eng.Run()
	if r.mb.ReplaysRun() != 0 {
		t.Fatal("replay started with empty buffer")
	}
}

func TestReplayStartJitterShiftsWholeRun(t *testing.T) {
	r := newRig(10, func(c *Config) {
		c.ReplayStartJitter = sim.Constant{V: 123456}
	})
	r.bus.Send(r.mb, control.StartRecord{At: 0})
	r.generate(500)
	r.eng.Run()

	a := runReplay(r, "A")
	// The commanded start is known: the whole run shifts by the jitter.
	// Compare against a no-jitter rig with identical history.
	r2 := newRig(10, nil)
	r2.bus.Send(r2.mb, control.StartRecord{At: 0})
	r2.generate(500)
	r2.eng.Run()
	b := runReplay(r2, "B")

	diff := a.Start() - b.Start()
	if diff != 123456 {
		t.Fatalf("start jitter shifted run by %v, want 123456", diff)
	}
	// And the shift is constant: normalized traces are identical.
	res, err := metrics.Compare(a.Normalize(), b.Normalize(), metrics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kappa != 1 {
		t.Fatalf("whole-run shift should normalize away: %v", res)
	}
}

func TestStallDelaysReplayBursts(t *testing.T) {
	r := newRig(11, func(c *Config) {
		// One long stall covering the replay start window.
		c.Stall = sim.NewStallTimeline(sim.NewEngine(99).Rand("s"),
			sim.Constant{V: 9 * sim.Millisecond}, sim.Constant{V: 40 * sim.Millisecond})
	})
	r.bus.Send(r.mb, control.StartRecord{At: 0})
	r.generate(200)
	r.eng.Run()
	tr := runReplay(r, "A") // commanded at now+10ms, inside the stall
	if tr.Len() != 200 {
		t.Fatalf("replayed %d packets", tr.Len())
	}
	if tr.Start() < 49*sim.Millisecond {
		t.Fatalf("replay started at %v despite stall until 49ms", tr.Start())
	}
}

func TestRecorderDataOnlyFilter(t *testing.T) {
	e := sim.NewEngine(12)
	rec := NewRecorder(e, "A", nic.PerfectTimestamper{}, true)
	rec.Receive(&packet.Packet{Kind: packet.KindData, FrameLen: 100}, 10)
	rec.Receive(&packet.Packet{Kind: packet.KindNoise, FrameLen: 100}, 20)
	rec.Receive(&packet.Packet{Kind: packet.KindInvalid, FrameLen: 100}, 30)
	if rec.Trace().Len() != 1 {
		t.Fatalf("captured %d, want 1", rec.Trace().Len())
	}
	if rec.Received() != 3 || rec.Discarded() != 2 {
		t.Fatalf("received=%d discarded=%d", rec.Received(), rec.Discarded())
	}
}

func TestRecorderMonotonizesTimestamps(t *testing.T) {
	e := sim.NewEngine(13)
	// A timestamper with huge negative jitter would invert stamps.
	ts := nic.ConnectXTimestamper{PeriodNs: 1, ConversionJitter: sim.Uniform{Lo: -500, Hi: 500}}
	rec := NewRecorder(e, "A", ts, false)
	for i := sim.Time(0); i < 100; i++ {
		rec.Receive(&packet.Packet{Kind: packet.KindData, FrameLen: 100}, i*100)
	}
	if err := rec.Trace().Validate(); err != nil {
		t.Fatalf("recorder emitted non-monotone trace: %v", err)
	}
}

func TestStartTrialResets(t *testing.T) {
	e := sim.NewEngine(14)
	rec := NewRecorder(e, "A", nil, false)
	rec.Receive(&packet.Packet{Kind: packet.KindData, FrameLen: 64}, 5)
	prev := rec.StartTrial("B")
	if prev.Name != "A" || prev.Len() != 1 {
		t.Fatalf("previous trial wrong: %v", prev)
	}
	if rec.Trace().Name != "B" || rec.Trace().Len() != 0 {
		t.Fatalf("new trial wrong: %v", rec.Trace())
	}
}

func TestIncompleteConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("incomplete config accepted")
		}
	}()
	New(sim.NewEngine(1), Config{})
}

func TestSecondReplayIgnoredWhileReplaying(t *testing.T) {
	r := newRig(15, nil)
	r.bus.Send(r.mb, control.StartRecord{At: 0})
	r.generate(500)
	r.eng.Run()
	start := r.mb.cfg.Wall.Wall(r.eng.Now()) + 10*sim.Millisecond
	r.bus.Send(r.mb, control.StartReplay{At: start})
	r.bus.Send(r.mb, control.StartReplay{At: start}) // while arming
	r.eng.Run()
	if r.mb.ReplaysRun() != 1 {
		t.Fatalf("ReplaysRun = %d, want 1 (second command ignored)", r.mb.ReplaysRun())
	}
}

func TestRollingRecordingKeepsLatestWindow(t *testing.T) {
	r := newRig(16, nil)
	r.bus.Send(r.mb, control.StartRecord{At: 0, MaxPackets: 512, Rolling: true})
	r.generate(3000)
	r.eng.Run()
	if r.mb.Truncated() {
		t.Fatal("rolling mode must not report truncation")
	}
	got := r.mb.Recorded()
	if got > 512 || got < 512-uint64(nic.BurstSize) {
		t.Fatalf("rolling buffer holds %d packets, want ~512", got)
	}
	// The buffer must hold the most recent packets, not the earliest.
	first := r.mb.bursts[0].pkts[0].Tag.Seq
	if first < 2000 {
		t.Fatalf("rolling buffer kept old packet seq %d", first)
	}
	last := r.mb.bursts[len(r.mb.bursts)-1]
	if last.pkts[len(last.pkts)-1].Tag.Seq != 2999 {
		t.Fatalf("rolling buffer missing newest packet: last seq %d",
			last.pkts[len(last.pkts)-1].Tag.Seq)
	}
}

func TestRollingRecordingReplaysWindow(t *testing.T) {
	r := newRig(17, nil)
	r.bus.Send(r.mb, control.StartRecord{At: 0, MaxPackets: 256, Rolling: true})
	r.generate(2000)
	r.eng.Run()
	tr := runReplay(r, "A")
	if uint64(tr.Len()) != r.mb.Recorded() {
		t.Fatalf("replayed %d, recorded %d", tr.Len(), r.mb.Recorded())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInBandControlDrivesRecordAndReplay(t *testing.T) {
	// The §5 resource-saving configuration: control frames ride the
	// experimental data plane. They must trigger commands and must NOT
	// be forwarded or recorded.
	r := newRig(18, nil)
	send := func(cmd control.Command) {
		p := control.InBandPacket(cmd, packet.IPForNode(9), packet.IPForNode(1))
		r.genQ.SendBurst([]*packet.Packet{p})
	}
	send(control.StartRecord{At: 0})
	r.generate(1000)
	r.eng.Run()
	if r.mb.Recorded() != 1000 {
		t.Fatalf("recorded %d, want 1000 (control frame must not be recorded)", r.mb.Recorded())
	}
	if r.rec.Trace().Len() != 1000 {
		t.Fatalf("recorder saw %d, want 1000 (control frame must not be forwarded)", r.rec.Trace().Len())
	}
	r.rec.StartTrial("A")
	send(control.StartReplay{At: r.mb.cfg.Wall.Wall(r.eng.Now()) + 10*sim.Millisecond})
	r.eng.Run()
	if r.rec.Trace().Len() != 1000 {
		t.Fatalf("in-band replay delivered %d packets", r.rec.Trace().Len())
	}
}

func TestPauseResumeReplay(t *testing.T) {
	r := newRig(20, nil)
	r.bus.Send(r.mb, control.StartRecord{At: 0})
	r.generate(2000) // ~568µs of traffic
	r.eng.Run()

	r.rec.StartTrial("A")
	start := r.mb.cfg.Wall.Wall(r.eng.Now()) + 10*sim.Millisecond
	r.bus.Send(r.mb, control.StartReplay{At: start})
	// Pause roughly halfway through the replay window.
	pauseAt := start + 280*sim.Microsecond
	r.eng.Schedule(r.mb.cfg.Wall.SimTimeFor(pauseAt), func() {
		r.mb.HandleCommand(control.PauseReplay{}, r.eng.Now())
	})
	r.eng.Run()
	if !r.mb.Paused() {
		t.Fatal("middlebox not paused")
	}
	delivered := r.rec.Trace().Len()
	if delivered == 0 || delivered >= 2000 {
		t.Fatalf("paused mid-replay but delivered %d of 2000", delivered)
	}

	// Resume 50ms later; everything else must arrive, in order, with
	// the recorded spacing preserved after the gap.
	resume := r.mb.cfg.Wall.Wall(r.eng.Now()) + 50*sim.Millisecond
	r.bus.Send(r.mb, control.ResumeReplay{At: resume})
	r.eng.Run()
	tr := r.rec.Trace()
	if tr.Len() != 2000 {
		t.Fatalf("after resume delivered %d of 2000", tr.Len())
	}
	for i, p := range tr.Packets {
		if p.Tag.Seq != uint64(i) {
			t.Fatalf("order broken at %d after pause/resume", i)
		}
	}
	// The pause gap is visible in the capture.
	maxGap := sim.Duration(0)
	for i := 1; i < tr.Len(); i++ {
		if g := tr.Times[i] - tr.Times[i-1]; g > maxGap {
			maxGap = g
		}
	}
	if maxGap < 40*sim.Millisecond {
		t.Fatalf("pause gap not visible: max IAT %v", maxGap)
	}
	if r.mb.Paused() {
		t.Fatal("still paused after resume")
	}
}

func TestPauseWithoutReplayIsNoop(t *testing.T) {
	r := newRig(21, nil)
	r.mb.HandleCommand(control.PauseReplay{}, 0)
	r.mb.HandleCommand(control.ResumeReplay{At: sim.Second}, 0)
	r.eng.Run()
	if r.mb.Paused() {
		t.Fatal("paused with no replay in progress")
	}
}

func TestDoublePauseAndResumeIdempotent(t *testing.T) {
	r := newRig(22, nil)
	r.bus.Send(r.mb, control.StartRecord{At: 0})
	r.generate(500)
	r.eng.Run()
	r.rec.StartTrial("A")
	start := r.mb.cfg.Wall.Wall(r.eng.Now()) + 5*sim.Millisecond
	r.bus.Send(r.mb, control.StartReplay{At: start})
	r.eng.Schedule(r.mb.cfg.Wall.SimTimeFor(start+20*sim.Microsecond), func() {
		r.mb.HandleCommand(control.PauseReplay{}, r.eng.Now())
		r.mb.HandleCommand(control.PauseReplay{}, r.eng.Now()) // double pause
	})
	r.eng.Run()
	resume := r.mb.cfg.Wall.Wall(r.eng.Now()) + sim.Millisecond
	r.bus.Send(r.mb, control.ResumeReplay{At: resume})
	r.eng.Run()
	r.bus.Send(r.mb, control.ResumeReplay{At: resume}) // double resume
	r.eng.Run()
	if r.rec.Trace().Len() != 500 {
		t.Fatalf("delivered %d of 500", r.rec.Trace().Len())
	}
}

func TestBreakpointPausesReplay(t *testing.T) {
	// The full debugging loop: a watcher breakpoint on the recorder
	// link pauses the replay the moment the packet of interest passes.
	r := newRig(23, nil)
	r.bus.Send(r.mb, control.StartRecord{At: 0})
	r.generate(2000)
	r.eng.Run()

	r.rec.StartTrial("A")
	start := r.mb.cfg.Wall.Wall(r.eng.Now()) + 5*sim.Millisecond
	r.bus.Send(r.mb, control.StartReplay{At: start})
	// Re-wire: middlebox out → breakpoint tap → recorder.
	// (The tap forwards transparently and fires once.)
	fired := false
	r.mb.cfg.Out.Connect(endpointFunc(func(p *packet.Packet, at sim.Time) {
		if !fired && p.Tag.Seq == 1000 {
			fired = true
			r.mb.HandleCommand(control.PauseReplay{}, at)
		}
		r.rec.Receive(p, at)
	}), 0)
	r.eng.Run()
	if !fired {
		t.Fatal("breakpoint never fired")
	}
	if !r.mb.Paused() {
		t.Fatal("replay not paused at breakpoint")
	}
	got := r.rec.Trace().Len()
	if got < 1001 || got >= 2000 {
		t.Fatalf("delivered %d packets at breakpoint; want just past 1000", got)
	}
}

type endpointFunc func(*packet.Packet, sim.Time)

func (f endpointFunc) Receive(p *packet.Packet, t sim.Time) { f(p, t) }

func TestChainedMiddleboxes(t *testing.T) {
	// Choir is in-situ on links; two middleboxes can sit in series on
	// the same path (gen → mb1 → mb2 → recorder), both recording the
	// same window, and either can replay it. This is the "middleboxes
	// on links between nodes" generality of §4.
	e := sim.NewEngine(30)
	perfect := nic.Profile{Name: "perfect", LineRateBps: packet.Gbps(100)}

	genQ := nic.New(e, perfect, "gen").NewQueue(0)
	mb1Q := nic.New(e, perfect, "mb1").NewQueue(0)
	mb2Q := nic.New(e, perfect, "mb2").NewQueue(0)

	mb1 := New(e, Config{ID: 1, TSC: clock.NewTSC(2.5e9, 0, 0), Wall: clock.NewSystemClock(0), Out: mb1Q})
	mb2 := New(e, Config{ID: 2, TSC: clock.NewTSC(2.5e9, 0, 100), Wall: clock.NewSystemClock(0), Out: mb2Q})
	genQ.Connect(mb1, 0)
	mb1Q.Connect(mb2, 0)
	rec := NewRecorder(e, "A", nic.PerfectTimestamper{}, true)
	mb2Q.Connect(rec, 0)

	bus := control.NewBus(e, nil)
	bus.Send(mb1, control.StartRecord{At: 0})
	bus.Send(mb2, control.StartRecord{At: 0})
	gen.StartCBR(e, genQ, gen.CBRConfig{
		RateBps: packet.Gbps(40), FrameLen: 1400, Count: 1500,
		Flow: packet.FiveTuple{Src: packet.IPForNode(1), Dst: packet.IPForNode(2), Proto: packet.ProtoUDP},
	})
	e.Run()

	if mb1.Recorded() != 1500 || mb2.Recorded() != 1500 {
		t.Fatalf("chain recorded %d/%d, want 1500/1500", mb1.Recorded(), mb2.Recorded())
	}
	if rec.Trace().Len() != 1500 {
		t.Fatalf("end of chain saw %d packets", rec.Trace().Len())
	}
	// The downstream middlebox stamps the packets last: the recorder
	// sees replayer id 2.
	for _, p := range rec.Trace().Packets {
		if p.Tag.Replayer != 2 {
			t.Fatalf("tag %v, want replayer 2 (last hop stamps)", p.Tag)
		}
	}

	// Replay from the downstream box: its recording includes the whole
	// upstream path's shaping.
	rec.StartTrial("B")
	bus.Send(mb2, control.StartReplay{At: e.Now() + 10*sim.Millisecond})
	e.Run()
	if rec.Trace().Len() != 1500 {
		t.Fatalf("chained replay delivered %d packets", rec.Trace().Len())
	}
	if err := rec.Trace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMemPoolPressureStarvesRX(t *testing.T) {
	// §5: "The primary restriction is RAM, which only controls how
	// large the replay buffer is." With a pool holding only 1000
	// buffers, recording 2000 packets pins the pool and starves RX:
	// frames are lost at receive, and the recording cannot exceed the
	// pool.
	pool := dpdk.NewMemPool("replayer", 1000*dpdk.MbufSize)
	r := newRig(31, func(c *Config) { c.Pool = pool })
	r.bus.Send(r.mb, control.StartRecord{At: 0})
	r.generate(2000)
	r.eng.Run()

	if r.mb.RxDropsNoMbuf() == 0 {
		t.Fatal("pool exhaustion produced no RX drops")
	}
	if r.mb.Recorded() > 1000 {
		t.Fatalf("recorded %d packets with a 1000-buffer pool", r.mb.Recorded())
	}
	if pool.AllocFailures() == 0 {
		t.Fatal("pool reported no allocation failures")
	}
	// Forwarded = received = recorded + dropped-before-recording... at
	// minimum, the recorder saw fewer packets than were generated.
	if got := r.rec.Trace().Len(); got >= 2000 {
		t.Fatalf("recorder saw %d, expected losses under memory pressure", got)
	}
	if got := uint64(r.rec.Trace().Len()) + r.mb.RxDropsNoMbuf(); got != 2000 {
		t.Fatalf("delivered %d + rx-dropped %d != 2000", r.rec.Trace().Len(), r.mb.RxDropsNoMbuf())
	}
}

func TestMemPoolPlainForwardingRecycles(t *testing.T) {
	// Without recording, the pool cycles: forwarding 5000 packets
	// through a 256-buffer pool loses nothing.
	pool := dpdk.NewMemPool("replayer", 256*dpdk.MbufSize)
	r := newRig(32, func(c *Config) { c.Pool = pool })
	r.generate(5000)
	r.eng.Run()
	if r.mb.RxDropsNoMbuf() != 0 {
		t.Fatalf("plain forwarding dropped %d frames", r.mb.RxDropsNoMbuf())
	}
	if r.rec.Trace().Len() != 5000 {
		t.Fatalf("recorder saw %d", r.rec.Trace().Len())
	}
	if pool.InUse() != 0 {
		t.Fatalf("pool leaked %d buffers", pool.InUse())
	}
}

func TestMemPoolReleasedOnReRecord(t *testing.T) {
	pool := dpdk.NewMemPool("replayer", 4096*dpdk.MbufSize)
	r := newRig(33, func(c *Config) { c.Pool = pool })
	r.bus.Send(r.mb, control.StartRecord{At: 0})
	r.generate(1000)
	r.eng.Run()
	if pool.InUse() != 1000 {
		t.Fatalf("recording pins %d buffers, want 1000", pool.InUse())
	}
	// A fresh recording releases the old buffers.
	r.bus.Send(r.mb, control.StartRecord{At: r.mb.cfg.Wall.Wall(r.eng.Now())})
	r.generate(500)
	r.eng.Run()
	if pool.InUse() != 500 {
		t.Fatalf("after re-record pool pins %d, want 500", pool.InUse())
	}
}
