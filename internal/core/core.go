package core
