// Package core implements Choir itself (paper §4–5): a transparent
// middlebox that forwards traffic at line rate in up-to-64-packet
// bursts, records forwarded bursts in RAM (zero-copy) together with TSC
// timestamps, and later replays each burst when the TSC reaches the
// recorded value plus a delta derived from a commanded wall-clock start
// time.
//
// The middlebox is in-situ: it forwards permanently and switches between
// standby, recording and replaying purely through control commands — no
// topology rebuild.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/clock"
	"repro/internal/control"
	"repro/internal/dpdk"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
)

// DefaultPollInterval is the RX poll quantum when the middlebox is not
// saturated; at 40 Gbps it yields bursts near the 64-packet DPDK limit.
const DefaultPollInterval = 15 * sim.Microsecond

// Config assembles a middlebox.
type Config struct {
	// ID is the replay-node identifier stamped into the tag of every
	// forwarded packet ("which included the replay node they were
	// emitted by", §6).
	ID uint16
	// TSC is the node's cycle counter used for burst timestamps and
	// replay pacing.
	TSC *clock.TSC
	// Wall is the node's PTP/NTP-disciplined system clock, used only to
	// translate commanded wall-clock start times.
	Wall *clock.SystemClock
	// Out is the bridged egress queue.
	Out *nic.Queue
	// PollInterval overrides DefaultPollInterval when positive.
	PollInterval sim.Duration
	// Stall models vCPU steal against the forwarding/replay thread.
	Stall *sim.StallTimeline
	// ReplayStartJitter is the scheduling error between the commanded
	// replay start and the replay loop actually arming — thread wakeup
	// and command-processing slop. Relative jitter between parallel
	// replayers is what produces the paper's §6.2 reordering.
	ReplayStartJitter sim.Dist
	// MaxRecordPackets bounds the replay buffer (RAM is the primary
	// restriction, §5); 0 means 8 Mi packets.
	MaxRecordPackets uint64
	// Pool is the mbuf pool backing the receive path (nil = unbounded
	// memory). Recording pins the forwarded packets' buffers, so a
	// recording larger than the pool starves RX — the §5 "primary
	// restriction is RAM" constraint made mechanical.
	Pool *dpdk.MemPool
}

// recordedBurst is one transmitted burst held in the replay buffer: the
// packets (no copy) and the TSC value at transmission.
type recordedBurst struct {
	tsc  uint64
	pkts []*packet.Packet
}

// Middlebox is one Choir instance.
type Middlebox struct {
	cfg Config
	eng *sim.Engine
	act *sim.Actor
	rng *rand.Rand

	// rx staging between polls
	rxbuf     []*packet.Packet
	pollArmed bool

	// recording state
	recording bool
	rolling   bool
	stopAt    sim.Time // sim-time bound, 0 = none
	bursts    []recordedBurst
	recorded  uint64
	truncated bool
	rxNoMbuf  uint64

	// replay state
	replaying    bool
	replaysRun   uint64
	replayedPkts uint64
	// pause/resume bookkeeping: scheduled emission events and times for
	// the current replay, and how many bursts have been emitted.
	replayEvents []*sim.Event
	replayTimes  []sim.Time
	replayNext   int
	paused       bool
	endEvent     *sim.Event

	ob *mbObs
}

// mbObs bundles the middlebox's instruments; created only by EnableObs.
type mbObs struct {
	tr           *obs.Tracer
	track        string
	recorded     *obs.Counter
	replayed     *obs.Counter
	pauses       *obs.Counter
	resumes      *obs.Counter
	rxNoMbuf     *obs.Counter
	bufOccupancy *obs.Gauge
	bufPeak      *obs.Gauge
	slip         *obs.Histogram
}

// EnableObs attaches metrics and tracing to this middlebox: recording
// buffer occupancy (current + high-water), burst schedule slip between
// the TSC-ideal emission instant and the actually scheduled one
// (jitter + stall + ordering delays), pause/resume events, mbuf-pool RX
// drops — plus `mb:record` / `mb:replay` instants for sampled packets.
// A nil handle is a no-op.
func (m *Middlebox) EnableObs(o *obs.Obs) {
	if o == nil || (o.Reg == nil && o.Tracer == nil) {
		return
	}
	lbl := obs.L("mb", fmt.Sprintf("%d", m.cfg.ID))
	reg := o.Reg
	m.ob = &mbObs{
		tr:           o.Tracer,
		track:        fmt.Sprintf("mb/%d", m.cfg.ID),
		recorded:     reg.Counter("mb_recorded_packets_total", "packets appended to the replay buffer", lbl),
		replayed:     reg.Counter("mb_replayed_packets_total", "packets re-transmitted by replays", lbl),
		pauses:       reg.Counter("mb_replay_pauses_total", "PauseReplay commands honored", lbl),
		resumes:      reg.Counter("mb_replay_resumes_total", "ResumeReplay commands honored", lbl),
		rxNoMbuf:     reg.Counter("mb_rx_drops_no_mbuf_total", "frames lost to mbuf pool exhaustion", lbl),
		bufOccupancy: reg.Gauge("mb_record_buffer_packets", "current replay buffer occupancy", lbl),
		bufPeak:      reg.Gauge("mb_record_buffer_peak_packets", "high-water replay buffer occupancy", lbl),
		slip:         reg.Histogram("mb_replay_burst_slip_ns", "scheduled burst emission minus TSC-ideal instant (sim ns)", 7, lbl),
	}
}

// New creates a middlebox. It panics on an incomplete config: a
// middlebox without clocks or an egress cannot forward.
func New(eng *sim.Engine, cfg Config) *Middlebox {
	if cfg.TSC == nil || cfg.Wall == nil || cfg.Out == nil {
		panic("core: middlebox requires TSC, Wall and Out")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.MaxRecordPackets == 0 {
		cfg.MaxRecordPackets = 8 << 20
	}
	return &Middlebox{
		cfg: cfg,
		eng: eng,
		act: eng.NewActor(),
		rng: eng.Rand(fmt.Sprintf("choir/%d", cfg.ID)),
	}
}

// SimEngine reports the engine this middlebox runs on (sim.Hosted).
func (m *Middlebox) SimEngine() *sim.Engine { return m.eng }

// Receive implements nic.Endpoint: a frame arrived on the bridged
// ingress. In-band control frames are executed immediately and never
// forwarded; everything else is picked up by the forwarding thread at
// its next poll.
func (m *Middlebox) Receive(p *packet.Packet, at sim.Time) {
	if p.Kind == packet.KindControl {
		if cmd, err := control.Unmarshal(p.Control); err == nil {
			m.HandleCommand(cmd, at)
		}
		return
	}
	if m.cfg.Pool != nil && m.cfg.Pool.Alloc(1) == 0 {
		// No mbuf available: the frame is lost at RX, exactly like
		// rte_pktmbuf_alloc failing under memory pressure.
		m.rxNoMbuf++
		if m.ob != nil {
			m.ob.rxNoMbuf.Inc()
		}
		return
	}
	m.rxbuf = append(m.rxbuf, p)
	m.armPoll(m.eng.Now() + m.cfg.PollInterval)
}

// RxDropsNoMbuf counts frames lost because the mbuf pool was exhausted.
func (m *Middlebox) RxDropsNoMbuf() uint64 { return m.rxNoMbuf }

func (m *Middlebox) armPoll(at sim.Time) {
	if m.pollArmed {
		return
	}
	m.pollArmed = true
	if m.cfg.Stall != nil {
		at = m.cfg.Stall.Adjust(at)
	}
	if at < m.eng.Now() {
		at = m.eng.Now()
	}
	m.act.Post(at, m.poll)
}

// poll drains up to one burst from the RX staging buffer, transmits it,
// and records it if recording. Saturated input is drained with
// back-to-back polls, exactly like a DPDK rx_burst loop.
func (m *Middlebox) poll() {
	m.pollArmed = false
	if len(m.rxbuf) == 0 {
		return
	}
	n := len(m.rxbuf)
	if n > nic.BurstSize {
		n = nic.BurstSize
	}
	burst := make([]*packet.Packet, n)
	copy(burst, m.rxbuf[:n])
	rest := copy(m.rxbuf, m.rxbuf[n:])
	m.rxbuf = m.rxbuf[:rest]

	for _, p := range burst {
		p.Tag.Replayer = m.cfg.ID
	}
	m.cfg.Out.SendBurst(burst)

	kept := false
	if m.recording && (m.stopAt == 0 || m.eng.Now() < m.stopAt) {
		switch {
		case m.recorded+uint64(n) <= m.cfg.MaxRecordPackets:
			// Zero-copy: hold the transmitted burst and its TSC stamp.
			// The mbufs stay pinned (not freed) for replay.
			m.bursts = append(m.bursts, recordedBurst{
				tsc:  m.cfg.TSC.Read(m.eng.Now()),
				pkts: burst,
			})
			m.recorded += uint64(n)
			kept = true
		case m.rolling:
			// Circular mode: evict the oldest bursts to make room, so
			// the buffer always holds the most recent window.
			m.bursts = append(m.bursts, recordedBurst{
				tsc:  m.cfg.TSC.Read(m.eng.Now()),
				pkts: burst,
			})
			m.recorded += uint64(n)
			kept = true
			for m.recorded > m.cfg.MaxRecordPackets && len(m.bursts) > 1 {
				evicted := len(m.bursts[0].pkts)
				m.recorded -= uint64(evicted)
				m.bursts = m.bursts[1:]
				if m.cfg.Pool != nil {
					m.cfg.Pool.Free(evicted)
				}
			}
		default:
			m.truncated = true
		}
	}
	if kept && m.ob != nil {
		m.ob.recorded.Add(int64(n))
		m.ob.bufOccupancy.SetInt(int64(m.recorded))
		m.ob.bufPeak.MaxInt(int64(m.recorded))
		if m.ob.tr != nil {
			now := m.eng.Now()
			for _, p := range burst {
				m.ob.tr.Instant(p.Tag, obs.StageRecord, m.ob.track, now)
			}
		}
	}
	if !kept && m.cfg.Pool != nil {
		// Plain forwarding: buffers return to the pool once handed to
		// the NIC.
		m.cfg.Pool.Free(n)
	}

	if len(m.rxbuf) > 0 {
		// Saturated: poll again immediately.
		m.armPoll(m.eng.Now())
	}
}

// HandleCommand implements control.Handler.
func (m *Middlebox) HandleCommand(cmd control.Command, _ sim.Time) {
	switch c := cmd.(type) {
	case control.StartRecord:
		at := m.cfg.Wall.SimTimeFor(c.At)
		if at < m.eng.Now() {
			at = m.eng.Now()
		}
		maxPkts, rolling := c.MaxPackets, c.Rolling
		m.act.Post(at, func() { m.startRecord(maxPkts, rolling) })
	case control.StopRecord:
		at := m.cfg.Wall.SimTimeFor(c.At)
		if at <= m.eng.Now() {
			m.stopRecord()
			return
		}
		m.act.Post(at, m.stopRecord)
	case control.StartReplay:
		m.startReplay(c.At)
	case control.PauseReplay:
		m.pauseReplay()
	case control.ResumeReplay:
		m.resumeReplay(c.At)
	}
}

func (m *Middlebox) startRecord(maxPkts uint64, rolling bool) {
	m.recording = true
	m.rolling = rolling
	m.stopAt = 0
	if m.cfg.Pool != nil && m.recorded > 0 {
		// A new recording releases the previous one's pinned buffers.
		m.cfg.Pool.Free(int(m.recorded))
	}
	m.bursts = nil
	m.recorded = 0
	m.truncated = false
	if maxPkts > 0 && maxPkts < m.cfg.MaxRecordPackets {
		m.cfg.MaxRecordPackets = maxPkts
	}
}

func (m *Middlebox) stopRecord() {
	m.recording = false
}

// startReplay implements the paper's replay arithmetic: the user names a
// future wall-clock time; the middlebox converts the wait into a TSC
// delta using the CPU frequency and then transmits each recorded burst
// when the TSC reaches its stored value plus the delta.
func (m *Middlebox) startReplay(atWall sim.Time) {
	if len(m.bursts) == 0 || m.replaying {
		return
	}
	m.replaying = true
	m.replaysRun++
	now := m.eng.Now()

	// Software-visible arithmetic: wait = target wall − current wall;
	// target TSC for the first burst = current TSC + wait-in-cycles.
	wait := atWall - m.cfg.Wall.Wall(now)
	if wait < 0 {
		wait = 0
	}
	startTSC := m.cfg.TSC.Read(now) + m.cfg.TSC.CyclesIn(wait)
	delta := startTSC - m.bursts[0].tsc

	// The replay loop arms with scheduling slop; every burst in this
	// run shifts by the same sampled amount.
	var slop sim.Duration
	if m.cfg.ReplayStartJitter != nil {
		if slop = m.cfg.ReplayStartJitter.Sample(m.rng); slop < 0 {
			slop = 0
		}
	}

	m.replayEvents = make([]*sim.Event, len(m.bursts))
	m.replayTimes = make([]sim.Time, len(m.bursts))
	m.replayNext = 0
	m.paused = false

	last := now
	for i, b := range m.bursts {
		ideal := m.cfg.TSC.SimTimeAt(b.tsc + delta)
		at := ideal + slop
		if m.cfg.Stall != nil {
			at = m.cfg.Stall.Adjust(at)
		}
		if at < last {
			// The busy-poll loop transmits bursts in order; a late
			// burst delays its successors.
			at = last
		}
		last = at
		m.replayTimes[i] = at
		m.replayEvents[i] = m.scheduleBurst(i, at)
		if m.ob != nil {
			// Schedule slip: how far jitter, stall windows and in-order
			// emission pushed this burst off its TSC-ideal instant.
			m.ob.slip.Observe(int64(at - ideal))
		}
	}
	m.endEvent = m.act.Schedule(last, func() { m.replaying = false })
}

// scheduleBurst arms the emission of burst i at time at.
func (m *Middlebox) scheduleBurst(i int, at sim.Time) *sim.Event {
	pkts := m.bursts[i].pkts
	return m.act.Schedule(at, func() {
		m.cfg.Out.SendBurst(pkts)
		m.replayedPkts += uint64(len(pkts))
		m.replayNext = i + 1
		if ob := m.ob; ob != nil {
			ob.replayed.Add(int64(len(pkts)))
			if ob.tr != nil {
				for _, p := range pkts {
					ob.tr.Instant(p.Tag, obs.StageReplay, ob.track, at)
				}
			}
		}
	})
}

// pauseReplay suspends the current replay: bursts not yet transmitted
// are held until ResumeReplay (the breakpointing primitive).
func (m *Middlebox) pauseReplay() {
	if !m.replaying || m.paused {
		return
	}
	m.paused = true
	if ob := m.ob; ob != nil {
		ob.pauses.Inc()
		if ob.tr != nil {
			ob.tr.Mark("replay:pause", ob.track, m.eng.Now(), nil)
		}
	}
	for i := m.replayNext; i < len(m.replayEvents); i++ {
		if m.replayEvents[i] != nil {
			m.replayEvents[i].Cancel()
		}
	}
	if m.endEvent != nil {
		m.endEvent.Cancel()
	}
}

// resumeReplay continues a paused replay at the given wall-clock time;
// the remaining bursts keep their recorded relative spacing.
func (m *Middlebox) resumeReplay(atWall sim.Time) {
	if !m.replaying || !m.paused {
		return
	}
	m.paused = false
	if ob := m.ob; ob != nil {
		ob.resumes.Inc()
		if ob.tr != nil {
			ob.tr.Mark("replay:resume", ob.track, m.eng.Now(), nil)
		}
	}
	next := m.replayNext
	if next >= len(m.replayTimes) {
		m.replaying = false
		return
	}
	resumeAt := m.cfg.Wall.SimTimeFor(atWall)
	if resumeAt < m.eng.Now() {
		resumeAt = m.eng.Now()
	}
	shift := resumeAt - m.replayTimes[next]
	if shift < 0 {
		shift = 0
	}
	last := resumeAt
	for i := next; i < len(m.replayTimes); i++ {
		at := m.replayTimes[i] + shift
		if m.cfg.Stall != nil {
			at = m.cfg.Stall.Adjust(at)
		}
		if at < last {
			at = last
		}
		last = at
		m.replayTimes[i] = at
		m.replayEvents[i] = m.scheduleBurst(i, at)
	}
	m.endEvent = m.act.Schedule(last, func() { m.replaying = false })
}

// Paused reports whether the current replay is suspended.
func (m *Middlebox) Paused() bool { return m.paused }

// Status reports the middlebox state over the control plane.
func (m *Middlebox) Status() control.Status {
	return control.Status{Recorded: m.recorded, Replaying: m.replaying}
}

// Recorded returns the number of packets in the replay buffer.
func (m *Middlebox) Recorded() uint64 { return m.recorded }

// RecordedBursts returns the number of bursts in the replay buffer.
func (m *Middlebox) RecordedBursts() int { return len(m.bursts) }

// Truncated reports whether the recording hit the buffer bound.
func (m *Middlebox) Truncated() bool { return m.truncated }

// ReplaysRun returns how many replays have been started.
func (m *Middlebox) ReplaysRun() uint64 { return m.replaysRun }

// ReplayedPackets returns the number of packets re-transmitted across
// all replays.
func (m *Middlebox) ReplayedPackets() uint64 { return m.replayedPkts }

// BurstInfo is a read-only view of one recorded burst, for debugging
// tools (backtracing) and external analysis.
type BurstInfo struct {
	// TSC is the counter value at the burst's original transmission.
	TSC uint64
	// Packets are the burst's frames in transmission order (shared,
	// not copied — treat as immutable).
	Packets []*packet.Packet
}

// Recording returns a view of the replay buffer in burst order.
func (m *Middlebox) Recording() []BurstInfo {
	out := make([]BurstInfo, len(m.bursts))
	for i, b := range m.bursts {
		out[i] = BurstInfo{TSC: b.tsc, Packets: b.pkts}
	}
	return out
}
