package testbed

import (
	"math"
	"testing"

	"repro/internal/control"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestAllEnvironmentsDistinctAndComplete(t *testing.T) {
	envs := AllEnvironments()
	if len(envs) != 9 {
		t.Fatalf("%d environments, want the paper's 9", len(envs))
	}
	seen := map[string]bool{}
	for _, e := range envs {
		if e.Name == "" || e.Description == "" {
			t.Fatalf("environment missing name/description: %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate environment %q", e.Name)
		}
		seen[e.Name] = true
		if e.RateGbps != 40 && e.RateGbps != 80 {
			t.Fatalf("%s: rate %v", e.Name, e.RateGbps)
		}
		if e.FrameLen != 1400 {
			t.Fatalf("%s: frame length %d, paper uses 1400", e.Name, e.FrameLen)
		}
		if e.Replayers < 1 || e.Replayers > 2 {
			t.Fatalf("%s: %d replayers", e.Name, e.Replayers)
		}
		if e.RecorderTimestamper == nil || e.RecorderTimestamper() == nil {
			t.Fatalf("%s: no recorder timestamper", e.Name)
		}
	}
}

func TestPPSMatchesPaper(t *testing.T) {
	e := LocalSingle()
	if pps := e.PPS(); math.Abs(pps-3.52e6)/3.52e6 > 0.01 {
		t.Fatalf("40G PPS = %v, paper says 3.52M", pps)
	}
	e80 := FabricDedicated80()
	if pps := e80.PPS(); math.Abs(pps-6.97e6)/6.97e6 > 0.015 {
		t.Fatalf("80G PPS = %v, paper says 6.97M", pps)
	}
	if n := e.PacketsFor(300 * sim.Millisecond); n < 1_040_000 || n > 1_070_000 {
		t.Fatalf("0.3s at 40G = %d packets, paper says ~1.05M", n)
	}
}

func TestEnvironmentShapeOrdering(t *testing.T) {
	// The calibrated personalities must preserve the paper's ordering:
	// local per-packet jitter is far tighter than the FABRIC VF path.
	local := LocalSingle().ReplayerNIC
	shared := FabricShared40().ReplayerNIC
	if local.PerPacketJitter.Mean() < 0 {
		t.Fatal("local jitter mean negative")
	}
	ded := FabricDedicated40().ReplayerNIC
	if ded.RepaceProb == 0 {
		t.Fatal("FABRIC dedicated 40G must re-pace bursts (Figure 6 bimodality)")
	}
	if FabricDedicated80().ReplayerNIC.RepaceProb != 0 {
		t.Fatal("80G profiles must not re-pace (Figure 9 convergence)")
	}
	if !FabricShared40Noisy().ReplayerNIC.PacketInterleave {
		t.Fatal("noisy shared env needs packet-granular VF interleaving")
	}
	if shared.VFSwitchOverhead == nil {
		t.Fatal("shared VF must pay scheduler switch overhead")
	}
}

func TestNoiseOnlyWhereExpected(t *testing.T) {
	for _, e := range AllEnvironments() {
		wantNoise := e.Name == "FABRIC Shd. 40 Gbps Noisy"
		if e.Noise != wantNoise {
			t.Fatalf("%s: Noise=%v", e.Name, e.Noise)
		}
	}
}

func TestBuildWiring(t *testing.T) {
	eng := sim.NewEngine(1)
	top := Build(eng, LocalDual())
	if len(top.GenQueues) != 2 || len(top.Middleboxes) != 2 {
		t.Fatalf("dual build: %d gens, %d middleboxes", len(top.GenQueues), len(top.Middleboxes))
	}
	if top.NoiseQueue != nil {
		t.Fatal("quiet env got a noise VF")
	}
	if top.Recorder == nil || top.Bus == nil || top.Switch == nil {
		t.Fatal("incomplete topology")
	}
}

func TestBuildNoisyHasNoiseSlice(t *testing.T) {
	eng := sim.NewEngine(1)
	top := Build(eng, FabricShared40Noisy())
	if top.NoiseQueue == nil {
		t.Fatal("noisy env has no noise VF")
	}
	top.StartNoise(5 * sim.Millisecond)
	if len(top.NoiseFlows) != 8 {
		t.Fatalf("%d noise flows, want 8", len(top.NoiseFlows))
	}
	eng.RunUntil(5 * sim.Millisecond)
	if top.NoiseDelivered() == 0 {
		t.Fatal("noise never reached its sink")
	}
}

func TestBuildZeroReplayersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero replayers accepted")
		}
	}()
	Build(sim.NewEngine(1), Env{})
}

func TestEndToEndSmoke(t *testing.T) {
	// Tiny end-to-end pass: record, replay once, packets arrive.
	eng := sim.NewEngine(2)
	env := LocalSingle()
	top := Build(eng, env)
	top.Broadcast(control.StartRecord{At: sim.Millisecond})
	top.StartGenerators(2000, 2*sim.Millisecond)
	eng.RunUntil(10 * sim.Millisecond)
	top.Broadcast(control.StopRecord{At: top.WallNow()})
	eng.RunUntil(eng.Now() + sim.Millisecond)
	if got := top.Middleboxes[0].Recorded(); got != 2000 {
		t.Fatalf("recorded %d, want 2000", got)
	}
	top.Recorder.StartTrial("A")
	top.Broadcast(control.StartReplay{At: top.WallNow() + 20*sim.Millisecond})
	eng.RunUntil(eng.Now() + 100*sim.Millisecond)
	if got := top.Recorder.Trace().Len(); got != 2000 {
		t.Fatalf("replay delivered %d, want 2000", got)
	}
	if err := top.Recorder.Trace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDeterministic(t *testing.T) {
	run := func() sim.Time {
		eng := sim.NewEngine(9)
		top := Build(eng, LocalSingle())
		top.Broadcast(control.StartRecord{At: sim.Millisecond})
		top.StartGenerators(500, 2*sim.Millisecond)
		eng.RunUntil(10 * sim.Millisecond)
		top.Recorder.StartTrial("A")
		top.Broadcast(control.StartReplay{At: top.WallNow() + 5*sim.Millisecond})
		eng.RunUntil(eng.Now() + 50*sim.Millisecond)
		tr := top.Recorder.Trace()
		if tr.Len() == 0 {
			t.Fatal("no packets replayed")
		}
		return tr.Times[tr.Len()-1]
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestLinkFlapLocalizedByWindowedMetrics(t *testing.T) {
	// Failure injection: a link flap on the replayer→recorder path
	// during one replay produces drops (U > 0) in that run only, and
	// windowed κ pinpoints when it happened.
	eng := sim.NewEngine(77)
	env := LocalSingle()
	top := Build(eng, env)

	top.Broadcast(control.StartRecord{At: sim.Millisecond})
	top.StartGenerators(20000, 2*sim.Millisecond) // ~5.7ms of traffic
	eng.RunUntil(20 * sim.Millisecond)
	top.Broadcast(control.StopRecord{At: top.WallNow()})
	eng.RunUntil(eng.Now() + sim.Millisecond)

	runTrial := func(name string, flap bool) *trace.Trace {
		top.Recorder.StartTrial(name)
		start := top.WallNow() + 10*sim.Millisecond
		if flap {
			// Take the replayer's return path down for 1ms in the
			// middle of the ~5.7ms replay.
			mid := start + 2*sim.Millisecond
			top.Switch.Port(2).FailBetween(mid, mid+sim.Millisecond)
		}
		top.Broadcast(control.StartReplay{At: start})
		eng.RunUntil(start + 20*sim.Millisecond)
		return top.Recorder.StartTrial("scratch")
	}

	a := runTrial("A", false).DataOnly().Normalize()
	b := runTrial("B", true).DataOnly().Normalize()
	c := runTrial("C", false).DataOnly().Normalize()

	rb, err := metrics.Compare(a, b, metrics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rb.U == 0 || rb.OnlyA == 0 {
		t.Fatalf("flapped run shows no drops: %v", rb)
	}
	if got := top.Switch.Port(2).Lost(); got == 0 {
		t.Fatal("no frames lost at the flapped port")
	}
	rc, err := metrics.Compare(a, c, metrics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rc.U != 0 {
		t.Fatalf("clean run after flap shows drops: %v", rc)
	}

	// The windowed view localizes the episode: the worst window overlaps
	// the flap (2–3ms into the replay).
	ws, err := metrics.CompareWindowed(a, b, sim.Millisecond, metrics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	worst := metrics.WorstWindow(ws)
	if worst.Start < 1*sim.Millisecond || worst.Start > 4*sim.Millisecond {
		t.Fatalf("worst window at %v, expected near the 2-3ms flap", worst.Start)
	}
	if worst.Result.U == 0 {
		t.Fatalf("worst window shows no uniqueness loss: %v", worst.Result)
	}
}

func TestStatuses(t *testing.T) {
	eng := sim.NewEngine(3)
	top := Build(eng, LocalDual())
	top.Broadcast(control.StartRecord{At: sim.Millisecond})
	top.StartGenerators(1000, 2*sim.Millisecond)
	eng.RunUntil(10 * sim.Millisecond)
	sts := top.Statuses()
	if len(sts) != 2 {
		t.Fatalf("%d statuses", len(sts))
	}
	var total uint64
	for _, s := range sts {
		total += s.Recorded
	}
	if total != 2000 {
		t.Fatalf("statuses report %d recorded, want 2000", total)
	}
}
