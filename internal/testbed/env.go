// Package testbed assembles complete experiment topologies — generator,
// Choir middleboxes, switch, recorder, optional background noise — and
// defines the environment profiles whose timing personalities reproduce
// the paper's nine evaluation settings (local bare metal vs FABRIC,
// dedicated vs shared NICs, quiet vs noisy, 40 vs 80 Gbps).
//
// The profile constants are calibrated so that the *shape* of the
// paper's results holds: which environment is more consistent, by
// roughly what factor, and which metric component moves. See DESIGN.md
// §5 for the mechanism behind each knob.
package testbed

import (
	"repro/internal/clock"
	"repro/internal/netsw"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Env is one experiment environment.
type Env struct {
	// Name identifies the environment (Table 2 row).
	Name string
	// Description is a one-line summary.
	Description string

	// RateGbps is the generator's offered load.
	RateGbps float64
	// FrameLen is the generated frame size.
	FrameLen int
	// Replayers is the number of parallel Choir middleboxes (1 or 2).
	Replayers int

	// Switch is the fabric profile.
	Switch netsw.Profile
	// GenNIC and ReplayerNIC are the TX personalities.
	GenNIC, ReplayerNIC nic.Profile
	// ReplayerQueuePkts bounds the replayer's TX queue (VF ring);
	// 0 = deep.
	ReplayerQueuePkts int
	// RecorderTimestamper builds the capture-side timestamper.
	RecorderTimestamper func() nic.Timestamper

	// ReplayStartJitter is per-run replay arming slop (per middlebox).
	ReplayStartJitter sim.Dist
	// PollInterval overrides the middlebox RX poll quantum (0 = the
	// core default), which sets the recorded burst size.
	PollInterval sim.Duration
	// StallGap/StallDur model vCPU steal on the middlebox thread
	// (nil = bare metal).
	StallGap, StallDur sim.Dist

	// Noise runs iperf3-style TCP flows on a second VF of the
	// replayer's physical NIC.
	Noise bool
	// NoiseFlows is the number of parallel TCP streams (paper: 8).
	NoiseFlows int
	// NoiseQueuePkts is the noise VF ring size.
	NoiseQueuePkts int

	// MemPoolMiB gives each middlebox a finite mbuf pool of this many
	// MiB (0 = unbounded). Recording pins buffers, so a pool smaller
	// than the recording starves RX — the §5 RAM constraint.
	MemPoolMiB int
	// TSCErrPPM is the per-node TSC calibration error scale.
	TSCErrPPM float64
	// Sync is the clock discipline (PTP on FABRIC, PTP-over-NTP-GM
	// locally).
	Sync clock.SyncConfig

	// WrapRecorder, when set, interposes on the recorder's ingress:
	// Build attaches the returned endpoint to the switch instead of the
	// recorder itself. The fault layer uses this to splice a seeded
	// Injector in front of the capture point without the topology
	// knowing anything about fault plans.
	WrapRecorder func(eng *sim.Engine, down nic.Endpoint) nic.Endpoint
}

// PPS returns the offered packet rate.
func (e *Env) PPS() float64 {
	return packet.RateForPPS(e.FrameLen, packet.Gbps(e.RateGbps))
}

// PacketsFor returns the packet count for a recording of the given
// duration — the paper records 0.3 s windows.
func (e *Env) PacketsFor(d sim.Duration) int {
	return int(e.PPS() * d.Seconds())
}

// line rate shared by every NIC in the paper's topologies.
var line100G = packet.Gbps(100)

// --- NIC personalities -------------------------------------------------

// connectX5Local is the local testbed's bare-metal ConnectX-5: tight
// per-packet timing, sub-microsecond pull variance, and a cold-start
// cost in the low microseconds.
func connectX5Local() nic.Profile {
	return nic.Profile{
		Name:        "ConnectX-5 (bare metal)",
		LineRateBps: line100G,
		PullLatency: sim.Clamp{
			D:  sim.LogNormal{MuLog: 6.3, SigmaLog: 0.62}, // ~545ns typical
			Lo: 80, Hi: 20_000,
		},
		ColdPullExtra: sim.Clamp{
			D:  sim.LogNormal{MuLog: 7.3, SigmaLog: 0.45}, // ~1.5µs typical
			Lo: 300, Hi: 20_000,
		},
		PerPacketJitter: sim.Normal{Mu: 0, Sigma: 6},
	}
}

// connectX6Dedicated is a FABRIC dedicated smart NIC seen from a VM:
// the virtualized DMA path occasionally re-batches a burst, producing
// the bimodal IAT distribution of Figures 6/8, and cold starts cost tens
// of microseconds.
func connectX6Dedicated() nic.Profile {
	return nic.Profile{
		Name:        "ConnectX-6 (dedicated, VM)",
		LineRateBps: line100G,
		PullLatency: sim.Clamp{
			D:  sim.LogNormal{MuLog: 7.2, SigmaLog: 0.8}, // ~1.3µs typical
			Lo: 150, Hi: 60_000,
		},
		ColdPullExtra: sim.Clamp{
			D:  sim.LogNormal{MuLog: 9.6, SigmaLog: 0.9}, // ~15µs typical
			Lo: 2_000, Hi: 400_000,
		},
		PerPacketJitter: sim.Normal{Mu: 0, Sigma: 5},
		RepaceProb:      0.60,
		RepaceJitter:    sim.Normal{Mu: 0, Sigma: 520},
	}
}

// connectX6Shared is a FABRIC shared SR-IOV VF: every packet crosses
// the VF scheduler, adding moderate broadband jitter but no large
// re-pacing outliers (Figure 7).
func connectX6Shared() nic.Profile {
	return nic.Profile{
		Name:        "ConnectX-6 (shared VF)",
		LineRateBps: line100G,
		PullLatency: sim.Clamp{
			D:  sim.LogNormal{MuLog: 7.2, SigmaLog: 0.22},
			Lo: 150, Hi: 60_000,
		},
		ColdPullExtra: sim.Clamp{
			D:  sim.LogNormal{MuLog: 9.0, SigmaLog: 0.6}, // ~8µs typical
			Lo: 1_000, Hi: 200_000,
		},
		// The VF datapath inserts a scheduling delay on every packet:
		// uniform up-to-64ns, giving the broad-but-bounded IAT deltas
		// of Figure 7a (few packets within ±10 ns, small overall I).
		PerPacketJitter:  sim.Uniform{Lo: 0, Hi: 64},
		VFSwitchOverhead: sim.Clamp{D: sim.LogNormal{MuLog: 5.8, SigmaLog: 0.6}, Lo: 50, Hi: 5_000},
	}
}

// fabric80G adapts a FABRIC NIC profile for the 80 Gbps runs: at double
// the packet rate the DMA engine never idles long enough to re-batch, so
// both dedicated and shared NICs converge to the same moderate jitter
// (Figure 9, I ≈ 0.11 on both).
func fabric80G(base nic.Profile) nic.Profile {
	base.RepaceProb = 0
	base.RepaceJitter = nil
	// At 6.97 Mpps the DMA engine stays busy: burst re-batching
	// disappears and the two NIC types converge to the same pull and
	// per-packet behaviour (Figure 9a vs 9b are nearly identical).
	base.PullLatency = sim.Clamp{D: sim.LogNormal{MuLog: 7.4, SigmaLog: 1.1}, Lo: 150, Hi: 100_000}
	base.PerPacketJitter = sim.Uniform{Lo: 0, Hi: 58}
	base.ColdPullExtra = sim.Clamp{D: sim.LogNormal{MuLog: 7.8, SigmaLog: 0.5}, Lo: 500, Hi: 50_000}
	return base
}

// pktgenNIC is the generator's TX path; its noise is irrelevant because
// trials compare replays with each other, but keep it realistic.
func pktgenNIC() nic.Profile {
	return nic.Profile{
		Name:            "Pktgen TX",
		LineRateBps:     line100G,
		PullLatency:     sim.Clamp{D: sim.LogNormal{MuLog: 6.2, SigmaLog: 0.5}, Lo: 80, Hi: 5_000},
		PerPacketJitter: sim.Normal{Mu: 0, Sigma: 3},
	}
}

// --- stall models -------------------------------------------------------

// fabricStalls returns the vCPU steal model for FABRIC VMs on a
// lightly-used site: rare, tens-of-microseconds preemptions.
func fabricStalls() (gap, dur sim.Dist) {
	return sim.Exponential{MeanNs: 8e6}, // every ~8 ms
		sim.Clamp{D: sim.LogNormal{MuLog: 9.2, SigmaLog: 0.6}, Lo: 2_000, Hi: 60_000} // ~12µs
}

// noisyStalls returns the steal model with a co-located tenant
// hammering the host: frequent and longer preemptions.
func noisyStalls() (gap, dur sim.Dist) {
	return sim.Exponential{MeanNs: 1.2e6}, // every ~1.2 ms
		sim.Clamp{D: sim.LogNormal{MuLog: 10.4, SigmaLog: 0.9}, Lo: 4_000, Hi: 460_000} // ~33µs
}

// --- environments -------------------------------------------------------

// LocalSingle is §6.1: bare metal, Tofino2, one replayer at 40 Gbps.
func LocalSingle() Env {
	return Env{
		Name:                "Local Single-Replayer",
		Description:         "bare-metal ConnectX-5 through a Tofino2, one replayer, 40 Gbps",
		RateGbps:            40,
		FrameLen:            1400,
		Replayers:           1,
		Switch:              netsw.Tofino2(line100G),
		GenNIC:              pktgenNIC(),
		ReplayerNIC:         connectX5Local(),
		RecorderTimestamper: func() nic.Timestamper { return nic.E810Timestamper{ResolutionNs: 1} },
		ReplayStartJitter:   sim.Uniform{Lo: 0, Hi: 2_000},
		TSCErrPPM:           0.4,
		Sync:                clock.PTPDefault(),
	}
}

// LocalDual is §6.2: two parallel replayers, 20 Gbps each, whose
// relative replay-start slop produces burst-level reordering.
func LocalDual() Env {
	e := LocalSingle()
	e.Name = "Local Dual-Replayer"
	e.Description = "two parallel replayers at 20 Gbps each, merged at the recorder"
	e.Replayers = 2
	// Start-of-replay scheduling slop across nodes: milliseconds, the
	// scale Table 1's burst move distances imply.
	e.ReplayStartJitter = sim.Uniform{Lo: 0, Hi: 12 * sim.Millisecond}
	return e
}

// FabricDedicated40 is §7 test 1: dedicated smart NICs at 40 Gbps.
func FabricDedicated40() Env {
	gap, dur := fabricStalls()
	return Env{
		Name:        "FABRIC Dedicated 40 Gbps 1",
		Description: "FABRIC VMs, dedicated ConnectX-6, L2Bridge, 40 Gbps",
		RateGbps:    40,
		FrameLen:    1400,
		Replayers:   1,
		Switch:      netsw.Cisco5700(line100G),
		GenNIC:      pktgenNIC(),
		ReplayerNIC: connectX6Dedicated(),
		RecorderTimestamper: func() nic.Timestamper {
			return nic.ConnectXTimestamper{PeriodNs: 1, ConversionJitter: sim.Normal{Mu: 0, Sigma: 4}}
		},
		ReplayStartJitter: sim.Uniform{Lo: 0, Hi: 30_000},
		StallGap:          gap,
		StallDur:          dur,
		TSCErrPPM:         1.2,
		Sync:              clock.PTPDefault(),
	}
}

// FabricDedicated40Second is §7 test 3: the rerun on the same dedicated
// hardware that showed much larger latency offsets (L ~ 4×10⁻⁴).
func FabricDedicated40Second() Env {
	e := FabricDedicated40()
	e.Name = "FABRIC Dedicated 40 Gbps 2"
	e.Description = e.Description + " (rerun with larger cold-start offsets)"
	e.ReplayerNIC.ColdPullExtra = sim.Clamp{
		D:  sim.LogNormal{MuLog: 12.1, SigmaLog: 0.7}, // ~180µs typical
		Lo: 30_000, Hi: 2_000_000,
	}
	// The rerun also showed fewer packets inside ±10 ns (24–27%).
	e.ReplayerNIC.PerPacketJitter = sim.Normal{Mu: 0, Sigma: 13}
	return e
}

// FabricShared40 is §7 test 2: shared SR-IOV VFs at 40 Gbps, site quiet.
func FabricShared40() Env {
	e := FabricDedicated40()
	e.Name = "FABRIC Shared 40 Gbps"
	e.Description = "FABRIC VMs, shared SR-IOV VFs, L2Bridge, 40 Gbps, quiet site"
	e.ReplayerNIC = connectX6Shared()
	e.ReplayerQueuePkts = 8192
	return e
}

// FabricDedicated80 is the 80 Gbps dedicated run of Figure 9a.
func FabricDedicated80() Env {
	e := FabricDedicated40()
	e.Name = "FABRIC Dedicated 80 Gbps"
	e.RateGbps = 80
	e.ReplayerNIC = fabric80G(connectX6Dedicated())
	return e
}

// FabricShared80 is the 80 Gbps shared run of Figure 9b.
func FabricShared80() Env {
	e := FabricShared40()
	e.Name = "FABRIC Shared 80 Gbps"
	e.RateGbps = 80
	e.ReplayerNIC = fabric80G(connectX6Shared())
	return e
}

// FabricDedicated80Noisy is §7.1 on dedicated NICs: the co-tenant's
// iperf3 streams cannot touch a dedicated NIC, so only host-level steal
// rises — results nearly identical to the quiet 80 Gbps run.
func FabricDedicated80Noisy() Env {
	e := FabricDedicated80()
	e.Name = "FABRIC Ded. 80 Gbps Noisy"
	e.Description = "dedicated NICs with a co-located iperf3 tenant (noise cannot share the NIC)"
	// Noise traffic exists but rides its own NIC: only a whisper of
	// extra host pressure reaches the replayer (the paper found this
	// run "almost identical" to the quiet 80 Gbps test).
	e.StallGap = sim.Exponential{MeanNs: 6e6}
	return e
}

// FabricShared40Noisy is §7.1 on shared VFs at 40 Gbps: the iperf3
// streams share the replayer's physical NIC, producing contention
// delays and the paper's first observed drops.
func FabricShared40Noisy() Env {
	e := FabricShared40()
	e.Name = "FABRIC Shd. 40 Gbps Noisy"
	e.Description = "shared VFs with 8 iperf3 TCP streams on the same physical NIC"
	e.Noise = true
	e.NoiseFlows = 8
	e.NoiseQueuePkts = 4096
	e.ReplayerQueuePkts = 1600
	// Under contention the physical scheduler interleaves the two VFs
	// at packet granularity: competing frames land between the
	// replay's packets, perturbing IATs by whole serialization times —
	// the mechanism behind Figure 10's I ≈ 0.5 and the first drops.
	e.ReplayerNIC.PacketInterleave = true
	e.ReplayerNIC.VFSwitchOverhead = sim.Uniform{Lo: 10, Hi: 140}
	gap, dur := noisyStalls()
	e.StallGap, e.StallDur = gap, dur
	return e
}

// AllEnvironments returns the nine Table 2 rows in presentation order.
func AllEnvironments() []Env {
	return []Env{
		LocalSingle(),
		LocalDual(),
		FabricDedicated40(),
		FabricShared40(),
		FabricDedicated40Second(),
		FabricDedicated80(),
		FabricShared80(),
		FabricDedicated80Noisy(),
		FabricShared40Noisy(),
	}
}
