package testbed

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/dpdk"
	"repro/internal/gen"
	"repro/internal/netsw"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/psim"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/workload"
)

// linkProp is the propagation delay of the short in-rack fibre runs
// connecting every element (~10 m).
const linkProp = 50 * sim.Nanosecond

// Topology is a fully wired experiment: generator(s) → switch →
// middlebox(es) → switch → recorder, plus the optional noise slice.
type Topology struct {
	Env Env
	// Eng is the root engine: the control plane and the experiment
	// driver's clock live here. Sequential builds place everything on
	// it; sharded builds place it on one domain of PS.
	Eng *sim.Engine
	// PS is the partitioned engine driving a sharded build (nil for a
	// sequential one). Drive the topology through RunUntil/Now so both
	// modes behave identically.
	PS *psim.Engine

	// GenQueues has one TX queue per replayer stream.
	GenQueues []*nic.Queue
	// Middleboxes are the Choir instances, index-aligned with
	// GenQueues.
	Middleboxes []*core.Middlebox
	// Recorder is the capture node.
	Recorder *core.Recorder
	// Bus is the control plane reaching every middlebox.
	Bus *control.Bus
	// Switch is the fabric.
	Switch *netsw.Switch
	// NoiseQueue is the noise VF (nil unless Env.Noise).
	NoiseQueue *nic.Queue
	// NoiseFlows are the running iperf3-style flows (empty until
	// StartNoise).
	NoiseFlows []*tcpsim.Flow

	noiseSink *discard
	nics      []*nic.NIC
	obs       *obs.Obs
}

// EnableObs turns on metrics and packet-lifecycle tracing across every
// element of the topology: generator NICs, replayer NICs, the switch,
// the middleboxes and the recorder. Generators started after this call
// also emit `gen` trace instants. A nil handle is a no-op, and enabling
// observability never perturbs the simulation (see package obs).
func (t *Topology) EnableObs(o *obs.Obs) {
	if o == nil {
		return
	}
	t.obs = o
	t.Switch.EnableObs(o)
	for _, n := range t.nics {
		n.EnableObs(o)
	}
	for _, mb := range t.Middleboxes {
		mb.EnableObs(o)
	}
	t.Recorder.EnableObs(o)
	if t.PS != nil {
		t.PS.EnableObs(o)
	}
}

// RunUntil advances the whole simulation to deadline — the sequential
// engine or the partition, whichever hosts this topology.
func (t *Topology) RunUntil(deadline sim.Time) {
	if t.PS != nil {
		t.PS.RunUntil(deadline)
		return
	}
	t.Eng.RunUntil(deadline)
}

// Now returns the simulation clock (all domain clocks agree whenever the
// topology is quiescent, which is the only time callers may look).
func (t *Topology) Now() sim.Time {
	if t.PS != nil {
		return t.PS.Now()
	}
	return t.Eng.Now()
}

// Executed returns total events fired across the topology's engines.
func (t *Topology) Executed() uint64 {
	if t.PS != nil {
		return t.PS.Executed()
	}
	return t.Eng.Executed()
}

// BudgetExhausted reports whether the sequential engine hit its step
// budget. Partitioned runs have no budget (psim is incompatible with
// MaxSteps; the experiments layer falls back to sequential when one is
// set), so they always report false.
func (t *Topology) BudgetExhausted() bool {
	if t.PS != nil {
		return false
	}
	return t.Eng.BudgetExhausted()
}

// discard terminates noise traffic.
type discard struct{ n uint64 }

func (d *discard) Receive(*packet.Packet, sim.Time) { d.n++ }

// Build wires a topology for env on the engine. The same engine can
// host only one topology.
func Build(eng *sim.Engine, env Env) *Topology {
	return buildOn(eng, nil, env)
}

// BuildSharded wires the same topology across the domains of a
// partitioned engine. The partitioner groups components hot-first —
// the switch (every stream crosses it), then each middlebox with its
// NIC and clocks, then each generator, then the recorder, with the
// control plane and driver clock last — and deals groups onto domains
// round-robin, so any shard count from 1 to the group count balances
// the heavy event sources before the light ones double up. Every
// wiring call goes through the exact same code path as Build, so
// component construction order (and with it every lane and random
// stream) is independent of the domain count — the root of the
// bit-identity guarantee.
func BuildSharded(ps *psim.Engine, env Env) *Topology {
	return buildOn(nil, ps, env)
}

// Partition group indices, hottest first (see BuildSharded).
func groupCount(r int) int { return 2*r + 3 }

func buildOn(root *sim.Engine, ps *psim.Engine, env Env) *Topology {
	if env.Replayers < 1 {
		panic("testbed: environment needs at least one replayer")
	}
	r := env.Replayers
	groupSwitch := 0
	groupMB := func(i int) int { return 1 + i }
	groupGen := func(i int) int { return 1 + r + i }
	groupRecorder := 1 + 2*r
	groupRoot := 2 + 2*r
	place := func(group int) *sim.Engine {
		if ps == nil {
			return root
		}
		return ps.Domain(group % ps.Domains())
	}
	if root == nil {
		root = place(groupRoot)
	}
	t := &Topology{Env: env, Eng: root, PS: ps}

	// Switch ports: 2 per replayer stream (gen in / mb out) +1 per
	// replayer return path, one recorder egress, two for noise.
	sw := netsw.New(place(groupSwitch), env.Switch, env.Name)
	for i := 0; i < 3*r+3; i++ {
		sw.AddPort()
	}
	t.Switch = sw
	recorderPort := 3 * r

	// Recorder, optionally behind an environment-supplied interposer
	// (the fault layer's injection point).
	recEng := place(groupRecorder)
	t.Recorder = core.NewRecorder(recEng, "A", env.RecorderTimestamper(), true)
	var recIngress nic.Endpoint = t.Recorder
	if env.WrapRecorder != nil {
		// The wrapper shares the recorder's domain (fault injectors are
		// sim.Hosted, so the switch routes to them there).
		recIngress = env.WrapRecorder(recEng, t.Recorder)
	}
	sw.Port(recorderPort).Attach(recIngress, linkProp)

	// Control plane: sub-millisecond out-of-band delivery.
	t.Bus = control.NewBus(root, sim.Uniform{Lo: 20_000, Hi: 120_000})

	ppmRng := root.Rand("testbed/tsc-ppm")
	for i := 0; i < r; i++ {
		// Generator stream i.
		genNIC := nic.New(place(groupGen(i)), env.GenNIC, fmt.Sprintf("gen%d", i))
		genQ := genNIC.NewQueue(0)
		genQ.Connect(sw.Port(2*i), linkProp)
		t.GenQueues = append(t.GenQueues, genQ)
		t.nics = append(t.nics, genNIC)

		// Replayer i hardware.
		mbEng := place(groupMB(i))
		mbNIC := nic.New(mbEng, env.ReplayerNIC, fmt.Sprintf("replayer%d", i))
		t.nics = append(t.nics, mbNIC)
		mbQ := mbNIC.NewQueue(env.ReplayerQueuePkts)
		mbQ.Connect(sw.Port(2*r+i), linkProp)

		// Clocks: TSC with sampled calibration error, PTP-disciplined
		// wall clock.
		tsc := clock.NewTSC(2.5e9, env.TSCErrPPM*ppmRng.NormFloat64(), uint64(1000*(i+1)))
		wall := clock.NewSystemClock(0)
		clock.StartSync(mbEng, wall, env.Sync, mbEng.Rand(fmt.Sprintf("ptp/%d", i)))

		var stall *sim.StallTimeline
		if env.StallGap != nil && env.StallDur != nil {
			stall = sim.NewStallTimeline(mbEng.Rand(fmt.Sprintf("stall/%d", i)), env.StallGap, env.StallDur)
		}

		var pool *dpdk.MemPool
		if env.MemPoolMiB > 0 {
			pool = dpdk.NewMemPool(fmt.Sprintf("replayer%d", i), int64(env.MemPoolMiB)<<20)
		}

		mb := core.New(mbEng, core.Config{
			ID:                uint16(i + 1),
			TSC:               tsc,
			Wall:              wall,
			Out:               mbQ,
			Stall:             stall,
			ReplayStartJitter: env.ReplayStartJitter,
			PollInterval:      env.PollInterval,
			Pool:              pool,
		})
		t.Middleboxes = append(t.Middleboxes, mb)
		t.Bus.Reach(mb)

		// Wiring: gen i → mb i → recorder.
		sw.Forward(2*i, 2*i+1)
		sw.Port(2*i+1).Attach(mb, linkProp)
		sw.Forward(2*r+i, recorderPort)

		// Noise VF shares replayer 0's physical NIC.
		if env.Noise && i == 0 {
			noiseQ := mbNIC.NewQueue(env.NoiseQueuePkts)
			noiseQ.Connect(sw.Port(3*r+1), linkProp)
			sw.Forward(3*r+1, 3*r+2)
			t.noiseSink = &discard{}
			sw.Port(3*r+2).Attach(t.noiseSink, linkProp)
			t.NoiseQueue = noiseQ
		}
	}
	return t
}

// StartGenerators launches one CBR stream per replayer; each stream
// carries RateGbps/Replayers so the aggregate offered load matches the
// environment (the paper's dual-replayer test splits 40 Gbps into two
// 20 Gbps streams).
func (t *Topology) StartGenerators(count int, startAt sim.Time) []*gen.Generator {
	perStream := packet.Gbps(t.Env.RateGbps / float64(t.Env.Replayers))
	gens := make([]*gen.Generator, len(t.GenQueues))
	for i, q := range t.GenQueues {
		gens[i] = gen.StartCBR(sim.EngineOf(q, t.Eng), q, gen.CBRConfig{
			RateBps:  perStream,
			FrameLen: t.Env.FrameLen,
			Count:    count,
			StartAt:  startAt,
			Stream:   uint16(i),
			Flow: packet.FiveTuple{
				Src: packet.IPForNode(uint16(10 + i)), Dst: packet.IPForNode(99),
				SrcPort: uint16(7000 + i), DstPort: 7001, Proto: packet.ProtoUDP,
			},
			Obs: t.obs,
		})
	}
	return gens
}

// StartWorkload launches one stream of the named catalogue app per
// replayer — the application-shaped analogue of StartGenerators. Each
// stream carries count packets; the runners report Done/FinishedAt so
// drivers can size the recording window around the app's own pacing
// rather than a CBR rate formula.
func (t *Topology) StartWorkload(name string, count int, startAt sim.Time) ([]*workload.Runner, error) {
	runners := make([]*workload.Runner, len(t.GenQueues))
	for i, q := range t.GenQueues {
		r, err := workload.Start(sim.EngineOf(q, t.Eng), q, name, workload.Config{
			Count:   count,
			StartAt: startAt,
			Stream:  uint16(i),
			Obs:     t.obs,
		})
		if err != nil {
			return nil, err
		}
		runners[i] = r
	}
	return runners, nil
}

// StartNoise launches the iperf3-style flows; no-op unless the
// environment has a noise slice.
func (t *Topology) StartNoise(stopAt sim.Time) {
	if t.NoiseQueue == nil {
		return
	}
	t.NoiseFlows = tcpsim.StartIperf(sim.EngineOf(t.NoiseQueue, t.Eng), []*nic.Queue{t.NoiseQueue}, t.Env.NoiseFlows, tcpsim.Config{
		ID:         100,
		SegmentLen: 9000, // FABRIC L2 services run jumbo MTU
		RTT:        60 * sim.Microsecond,
		StartAt:    t.Now(),
		StopAt:     stopAt,
		Flow: packet.FiveTuple{
			Src: packet.IPForNode(200), Dst: packet.IPForNode(201),
			DstPort: 5201, Proto: packet.ProtoTCP,
		},
	})
}

// NoiseDelivered returns how many noise frames reached the noise sink.
func (t *Topology) NoiseDelivered() uint64 {
	if t.noiseSink == nil {
		return 0
	}
	return t.noiseSink.n
}

// Broadcast sends a control command to every middlebox.
func (t *Topology) Broadcast(cmd control.Command) {
	for _, mb := range t.Middleboxes {
		t.Bus.Send(mb, cmd)
	}
}

// WallNow returns middlebox 0's wall-clock reading — what the
// experimenter's tooling would use to pick future start times.
func (t *Topology) WallNow() sim.Time {
	return t.Now() // grandmaster time; node clocks are within ns of it
}

// Statuses polls every middlebox's control-plane status.
func (t *Topology) Statuses() []control.Status {
	out := make([]control.Status, len(t.Middleboxes))
	for i, mb := range t.Middleboxes {
		out[i] = mb.Status()
	}
	return out
}
