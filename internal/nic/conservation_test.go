package nic

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Conservation invariants: every enqueued packet is either delivered or
// counted as dropped — the NIC never duplicates or silently loses work.

func TestConservationSingleQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		e := sim.NewEngine(int64(trial))
		prof := Profile{
			Name:            "jittery",
			LineRateBps:     packet.Gbps(100),
			PullLatency:     sim.LogNormal{MuLog: 6, SigmaLog: 1},
			PerPacketJitter: sim.Normal{Mu: 0, Sigma: 50},
		}
		n := New(e, prof, "c")
		q := n.NewQueue(rng.Intn(200) + 10)
		sink := &collector{}
		q.Connect(sink, 0)

		enq := 0
		for b := 0; b < rng.Intn(30)+1; b++ {
			k := rng.Intn(BurstSize) + 1
			q.SendBurst(mkPkts(k, 1400))
			enq += k
		}
		e.Run()
		if got := int(q.Sent()) + int(q.Dropped()); got != enq {
			t.Fatalf("trial %d: sent %d + dropped %d != enqueued %d",
				trial, q.Sent(), q.Dropped(), enq)
		}
		if len(sink.pkts) != int(q.Sent()) {
			t.Fatalf("trial %d: delivered %d != sent %d", trial, len(sink.pkts), q.Sent())
		}
	}
}

func TestConservationMultiVFWithInterleave(t *testing.T) {
	for _, interleave := range []bool{false, true} {
		e := sim.NewEngine(33)
		prof := Profile{
			Name:             "shared",
			LineRateBps:      packet.Gbps(100),
			PacketInterleave: interleave,
			VFSwitchOverhead: sim.Uniform{Lo: 0, Hi: 50},
		}
		n := New(e, prof, "c")
		var queues []*Queue
		var sinks []*collector
		for v := 0; v < 4; v++ {
			q := n.NewQueue(0)
			s := &collector{}
			q.Connect(s, 0)
			queues = append(queues, q)
			sinks = append(sinks, s)
		}
		rng := rand.New(rand.NewSource(5))
		total := 0
		for round := 0; round < 50; round++ {
			v := rng.Intn(4)
			k := rng.Intn(32) + 1
			// Mixed frame sizes stress byte-fair arbitration.
			size := []int{128, 1400, 9000}[rng.Intn(3)]
			queues[v].SendBurst(mkPkts(k, size))
			total += k
		}
		e.Run()
		delivered := 0
		for v, s := range sinks {
			delivered += len(s.pkts)
			// Per-VF FIFO preserved even under interleaving.
			for i := 1; i < len(s.pkts); i++ {
				if s.times[i] < s.times[i-1] {
					t.Fatalf("interleave=%v: VF %d time inversion", interleave, v)
				}
			}
		}
		if delivered != total {
			t.Fatalf("interleave=%v: delivered %d of %d", interleave, delivered, total)
		}
	}
}

func TestDRRByteFairness(t *testing.T) {
	// Under saturation, a VF sending jumbo frames must not starve a VF
	// sending normal frames: byte shares converge, not packet shares.
	e := sim.NewEngine(44)
	prof := Profile{Name: "shared", LineRateBps: packet.Gbps(100), PacketInterleave: true}
	n := New(e, prof, "c")
	small := n.NewQueue(1 << 16)
	jumbo := n.NewQueue(1 << 16)
	sSmall, sJumbo := &collector{}, &collector{}
	small.Connect(sSmall, 0)
	jumbo.Connect(sJumbo, 0)

	// Enough backlog on both VFs that neither exhausts before the
	// horizon (each side offers ~34 MB; fair share over 3 ms at 100G
	// is ~18.75 MB).
	for i := 0; i < 600; i++ {
		small.SendBurst(mkPkts(40, 1400))
		jumbo.SendBurst(mkPkts(7, 9000))
	}
	horizon := 3 * sim.Millisecond
	e.RunUntil(horizon)
	bytesSmall := len(sSmall.pkts) * packet.WireBytes(1400)
	bytesJumbo := len(sJumbo.pkts) * packet.WireBytes(9000)
	if bytesSmall == 0 || bytesJumbo == 0 {
		t.Fatal("one VF starved entirely")
	}
	ratio := float64(bytesJumbo) / float64(bytesSmall)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("byte shares unfair: jumbo/small = %.2f (bytes %d vs %d)",
			ratio, bytesJumbo, bytesSmall)
	}
}
