package nic

import (
	"math/rand"

	"repro/internal/sim"
)

// Timestamper converts a frame's true wire-arrival instant into the
// timestamp the capture stack reports. The paper contrasts the Intel
// E810's real-time hardware timestamps with the ConnectX-6's hardware
// clock, whose readings are converted to nanoseconds by sampling —
// different cards, different noise.
type Timestamper interface {
	// Stamp maps a true arrival time to a reported timestamp.
	Stamp(wire sim.Time, rng *rand.Rand) sim.Time
}

// E810Timestamper models real-time hardware timestamps: arrival rounded
// to the PHY's resolution with negligible extra noise.
type E810Timestamper struct {
	// ResolutionNs is the timestamp granularity (the E810 reports in
	// single-nanosecond units; 0 means 1).
	ResolutionNs sim.Duration
}

// Stamp implements Timestamper.
func (e E810Timestamper) Stamp(wire sim.Time, _ *rand.Rand) sim.Time {
	res := e.ResolutionNs
	if res <= 0 {
		res = 1
	}
	return wire / res * res
}

// ConnectXTimestamper models a free-running hardware clock sampled and
// converted to nanoseconds in the driver: quantized to the clock period
// plus a small conversion jitter.
type ConnectXTimestamper struct {
	// PeriodNs is the hardware clock period (ConnectX clocks tick at
	// ~1 GHz; 0 means 1).
	PeriodNs sim.Duration
	// ConversionJitter is the sampling/conversion noise.
	ConversionJitter sim.Dist
}

// Stamp implements Timestamper.
func (c ConnectXTimestamper) Stamp(wire sim.Time, rng *rand.Rand) sim.Time {
	period := c.PeriodNs
	if period <= 0 {
		period = 1
	}
	ts := wire / period * period
	if c.ConversionJitter != nil {
		ts += c.ConversionJitter.Sample(rng)
	}
	if ts < 0 {
		ts = 0
	}
	return ts
}

// PerfectTimestamper reports the exact wire time; used by tests and
// zero-jitter ablations.
type PerfectTimestamper struct{}

// Stamp implements Timestamper.
func (PerfectTimestamper) Stamp(wire sim.Time, _ *rand.Rand) sim.Time { return wire }
