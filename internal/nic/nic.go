// Package nic models the network interface cards of the testbed: DPDK
// burst transmission, the doorbell→DMA pull delay that bounds replay
// accuracy (paper §2.3), SR-IOV virtual functions sharing one physical
// pipe, and receive-side hardware timestamping.
//
// A NIC owns one physical line. Dedicated NICs have a single queue;
// shared NICs expose several virtual functions (VFs), each with its own
// finite queue, arbitrated round-robin onto the line. Timing noise is
// injected per the NIC's Profile; queue overflow under contention is how
// packet drops arise (they are never injected directly).
package nic

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
)

// BurstSize is the largest burst a DPDK application hands to the NIC in
// one call; Choir transmits "in up to 64-packet bursts" (paper §5).
const BurstSize = 64

// Endpoint is anything that can terminate a wire: a switch port, a
// recorder, a middlebox.
type Endpoint interface {
	// Receive is called when a frame finishes arriving at wireTime.
	Receive(p *packet.Packet, wireTime sim.Time)
}

// Profile captures a NIC's timing personality. All distributions may be
// nil, meaning "perfect" (zero).
type Profile struct {
	// Name for diagnostics ("ConnectX-5", "ConnectX-6 VF", ...).
	Name string
	// LineRateBps is the physical line rate.
	LineRateBps int64
	// PullLatency is the doorbell→wire delay sampled for each DMA pull
	// that starts from an idle engine — the delay the paper identifies
	// as the accuracy bound for any DPDK replayer.
	PullLatency sim.Dist
	// ColdPullExtra is added to the first pull after the engine has
	// been idle for ColdThreshold — descriptor caches and doorbell
	// paths are cold at the start of a replay run. This is the run-level
	// constant offset behind the paper's one-sided latency spikes.
	ColdPullExtra sim.Dist
	// ColdThreshold is the idle time after which a pull is cold.
	// Zero means 1 ms.
	ColdThreshold sim.Duration
	// PerPacketJitter perturbs each frame's wire emission instant
	// without reordering the line.
	PerPacketJitter sim.Dist
	// RepaceProb is the probability that a pulled burst is "re-paced":
	// its frames get jitter from RepaceJitter instead of
	// PerPacketJitter. This models the FABRIC dedicated-NIC path where
	// the virtualized DMA occasionally re-batches a burst, producing
	// the bimodal IAT distribution of Figures 6/8.
	RepaceProb   float64
	RepaceJitter sim.Dist
	// VFSwitchOverhead is added whenever the arbiter moves to a
	// different VF's queue (shared NICs only).
	VFSwitchOverhead sim.Dist
	// PacketInterleave makes the VF arbiter multiplex at packet
	// granularity instead of burst granularity — how a physical SR-IOV
	// scheduler actually shares the line. Scheduling is byte-fair
	// (deficit round robin) so a VF sending jumbo frames cannot starve
	// one sending small frames. Under contention, competing VFs'
	// frames land between a flow's packets, perturbing its IATs by
	// whole serialization times.
	PacketInterleave bool
}

// drrQuantum is the per-visit byte credit of the packet-interleaving
// arbiter.
const drrQuantum = 2048

func (p *Profile) coldThreshold() sim.Duration {
	if p.ColdThreshold == 0 {
		return sim.Millisecond
	}
	return p.ColdThreshold
}

func sample(d sim.Dist, rng *rand.Rand) sim.Duration {
	if d == nil {
		return 0
	}
	return d.Sample(rng)
}

// NIC is one physical adapter. Use NewQueue to create its queues (one
// for a dedicated NIC, several for SR-IOV VFs).
type NIC struct {
	eng        *sim.Engine
	act        *sim.Actor
	prof       Profile
	label      string
	rng        *rand.Rand
	queues     []*Queue
	nextVF     int
	lastServed *Queue
	active     bool
	busyTil    sim.Time // line busy-until
	lastUse    sim.Time // when the DMA engine last finished work
	stall      *sim.StallTimeline

	// ob is the optional observability hookup; nil (the default) keeps
	// every hot path un-instrumented behind a single branch.
	ob *nicObs
}

// nicObs bundles this NIC's instruments; created only by EnableObs.
type nicObs struct {
	tr         *obs.Tracer
	track      string
	sent       *obs.Counter
	drops      *obs.Counter
	doorbells  *obs.Counter
	vfSwitches *obs.Counter
	ringPeak   *obs.Gauge
	pullLat    *obs.Histogram
}

// New creates a NIC with the given profile. The label seeds this NIC's
// private random stream.
func New(eng *sim.Engine, prof Profile, label string) *NIC {
	if prof.LineRateBps <= 0 {
		panic("nic: line rate must be positive")
	}
	return &NIC{
		eng:   eng,
		act:   eng.NewActor(),
		prof:  prof,
		label: label,
		rng:   eng.Rand("nic/" + label),
		// A never-used engine is maximally cold.
		lastUse: -(1 << 62),
	}
}

// SimEngine reports the engine this NIC runs on (sim.Hosted), letting
// far ends of a partitioned topology route deliveries to it.
func (n *NIC) SimEngine() *sim.Engine { return n.eng }

// EnableObs attaches metrics and packet-lifecycle tracing to this NIC:
// TX-ring occupancy high-water, doorbell rings, per-pull DMA latency,
// VF arbitration context switches, drops — plus, for sampled packets,
// a `nic:ring` span (enqueue → DMA pull) and a `nic:wire` span
// (pull → wire emission) in simulated nanoseconds. A nil handle is a
// no-op, keeping the hot path free of instrumentation.
func (n *NIC) EnableObs(o *obs.Obs) {
	if o == nil || (o.Reg == nil && o.Tracer == nil) {
		return
	}
	lbl := obs.L("nic", n.label)
	reg := o.Reg
	n.ob = &nicObs{
		tr:         o.Tracer,
		track:      "nic/" + n.label,
		sent:       reg.Counter("nic_tx_packets_total", "frames put on the wire", lbl),
		drops:      reg.Counter("nic_tx_drops_total", "frames tail-dropped at TX ring overflow", lbl),
		doorbells:  reg.Counter("nic_doorbells_total", "doorbell rings (SendBurst calls that enqueued)", lbl),
		vfSwitches: reg.Counter("nic_vf_switches_total", "VF arbitration context switches", lbl),
		ringPeak:   reg.Gauge("nic_ring_occupancy_peak_packets", "high-water TX ring occupancy across all queues", lbl),
		pullLat:    reg.Histogram("nic_pull_latency_ns", "doorbell→DMA pull latency (sim ns)", 7, lbl),
	}
}

// SetStallTimeline attaches a host-side stall model (vCPU steal); DMA
// pulls scheduled during a stall are deferred to its end.
func (n *NIC) SetStallTimeline(s *sim.StallTimeline) { n.stall = s }

// Profile returns the NIC's timing profile.
func (n *NIC) Profile() Profile { return n.prof }

// Queue is a transmit queue: the sole queue of a dedicated NIC or one
// SR-IOV virtual function of a shared NIC.
type Queue struct {
	nic      *NIC
	peer     Endpoint
	peerEng  *sim.Engine // engine hosting peer; == nic.eng when co-located
	prop     sim.Duration
	capPkts  int
	bursts   [][]*packet.Packet
	deficit  int
	queued   int
	sent     uint64
	dropped  uint64
	doorbell uint64
}

// NewQueue adds a transmit queue with the given capacity in packets
// (<=0 means a deep 64 Ki-packet ring).
func (n *NIC) NewQueue(capPkts int) *Queue {
	if capPkts <= 0 {
		capPkts = 64 * 1024
	}
	q := &Queue{nic: n, capPkts: capPkts}
	n.queues = append(n.queues, q)
	return q
}

// Connect attaches the queue's traffic to a far-end endpoint with the
// given propagation delay. The endpoint is probed for sim.Hosted so
// that, in a partitioned run, deliveries route to its engine; frames
// leave no earlier than prop after the drain that emits them, so prop
// is this wire's lookahead.
func (q *Queue) Connect(peer Endpoint, prop sim.Duration) {
	q.peer = peer
	q.prop = prop
	q.peerEng = sim.EngineOf(peer, q.nic.eng)
	if r := q.nic.eng.Router(); r != nil && q.peerEng != q.nic.eng {
		r.Link(q.nic.eng, q.peerEng, prop)
	}
}

// SimEngine reports the engine this queue's NIC runs on (sim.Hosted),
// so traffic sources can schedule alongside the queue they feed.
func (q *Queue) SimEngine() *sim.Engine { return q.nic.eng }

// Sent returns frames put on the wire from this queue.
func (q *Queue) Sent() uint64 { return q.sent }

// Dropped returns frames tail-dropped due to queue overflow.
func (q *Queue) Dropped() uint64 { return q.dropped }

// Depth returns the packets currently queued.
func (q *Queue) Depth() int { return q.queued }

// SendBurst enqueues up to BurstSize packets and rings the doorbell.
// Packets beyond the queue capacity are tail-dropped, which is how
// drops materialize under shared-NIC contention (§7.1).
func (q *Queue) SendBurst(pkts []*packet.Packet) {
	if len(pkts) == 0 {
		return
	}
	if q.peer == nil {
		panic(fmt.Sprintf("nic %s: queue not connected", q.nic.prof.Name))
	}
	room := q.capPkts - q.queued
	if room <= 0 {
		q.dropped += uint64(len(pkts))
		if ob := q.nic.ob; ob != nil {
			ob.drops.Add(int64(len(pkts)))
		}
		return
	}
	if len(pkts) > room {
		q.dropped += uint64(len(pkts) - room)
		if ob := q.nic.ob; ob != nil {
			ob.drops.Add(int64(len(pkts) - room))
		}
		pkts = pkts[:room]
	}
	q.bursts = append(q.bursts, pkts)
	q.queued += len(pkts)
	q.doorbell++
	if ob := q.nic.ob; ob != nil {
		ob.doorbells.Inc()
		ob.ringPeak.MaxInt(int64(q.queued))
		if ob.tr != nil {
			now := q.nic.eng.Now()
			for _, p := range pkts {
				ob.tr.Begin(p.Tag, obs.StageNICRing, ob.track, now)
			}
		}
	}
	q.nic.kick()
}

// kick starts the DMA engine if it is idle.
func (n *NIC) kick() {
	if n.active {
		return
	}
	n.active = true
	now := n.eng.Now()
	delay := sample(n.prof.PullLatency, n.rng)
	if now-n.lastUse >= n.prof.coldThreshold() {
		delay += sample(n.prof.ColdPullExtra, n.rng)
	}
	if delay < 0 {
		delay = 0
	}
	at := now + delay
	// The engine may have gone idle with serializations still in
	// flight; the next pull cannot outrun the line.
	if at < n.busyTil {
		at = n.busyTil
	}
	if n.stall != nil {
		at = n.stall.Adjust(at)
	}
	if n.ob != nil {
		n.ob.pullLat.Observe(int64(at - now))
	}
	n.act.Post(at, n.drain)
}

// drain pulls the next unit of work — a whole burst, or a single packet
// when the arbiter interleaves at packet granularity — from the next
// eligible queue and serializes it onto the line, then reschedules
// itself while work remains.
func (n *NIC) drain() {
	interleave := n.prof.PacketInterleave && len(n.queues) > 1
	var q *Queue
	var burst []*packet.Packet
	if interleave {
		q = n.pickDRR()
		if q != nil {
			head := q.bursts[0]
			burst = head[:1]
			if len(head) == 1 {
				q.bursts = q.bursts[1:]
			} else {
				q.bursts[0] = head[1:]
			}
		}
	} else {
		q = n.pickQueue()
		if q != nil {
			burst = q.bursts[0]
			q.bursts = q.bursts[1:]
		}
	}
	if q == nil {
		n.active = false
		n.lastUse = n.eng.Now()
		return
	}
	q.queued -= len(burst)

	now := n.eng.Now()
	if n.busyTil < now {
		n.busyTil = now
	}
	// Changing VF mid-stream costs the arbiter a context switch.
	if n.lastServed != nil && n.lastServed != q {
		n.busyTil += maxD(0, sample(n.prof.VFSwitchOverhead, n.rng))
		if n.ob != nil {
			n.ob.vfSwitches.Inc()
		}
	}
	n.lastServed = q

	jitterDist := n.prof.PerPacketJitter
	if n.prof.RepaceProb > 0 && n.rng.Float64() < n.prof.RepaceProb {
		jitterDist = n.prof.RepaceJitter
	}
	for _, p := range burst {
		start := n.busyTil
		if j := sample(jitterDist, n.rng); j > 0 {
			start += j
		} else {
			// Negative jitter cannot pre-empt the line; it only
			// tightens a gap if one exists.
			start += j
			if start < n.busyTil {
				start = n.busyTil
			}
		}
		end := start + packet.SerializationTime(p.FrameLen, n.prof.LineRateBps)
		n.busyTil = end
		p.SentAt = end
		q.sent++
		if ob := n.ob; ob != nil {
			ob.sent.Inc()
			if ob.tr != nil {
				// Ring residency ends at the pull; the wire span covers
				// DMA + serialization in simulated nanoseconds.
				ob.tr.End(p.Tag, obs.StageNICRing, now)
				ob.tr.Span(p.Tag, obs.StageNICWire, ob.track, now, end)
			}
		}
		peer, prop := q.peer, q.prop
		pkt := p
		n.act.Send(q.peerEng, end+prop, func() {
			peer.Receive(pkt, end+prop)
		})
	}

	// Continue when the line frees up.
	if n.peekQueue() == nil {
		n.active = false
		n.lastUse = n.busyTil
		return
	}
	at := n.busyTil
	if at < n.eng.Now() {
		at = n.eng.Now()
	}
	n.act.Post(at, n.drain)
}

// pickDRR selects the next queue by byte-fair deficit round robin and
// leaves its head packet eligible (deficit already charged). Returns nil
// when every queue is empty.
func (n *NIC) pickDRR() *Queue {
	nonEmpty := 0
	for _, q := range n.queues {
		if len(q.bursts) > 0 {
			nonEmpty++
		} else {
			q.deficit = 0
		}
	}
	if nonEmpty == 0 {
		return nil
	}
	for {
		q := n.queues[n.nextVF]
		if len(q.bursts) == 0 {
			n.nextVF = (n.nextVF + 1) % len(n.queues)
			continue
		}
		need := packet.WireBytes(q.bursts[0][0].FrameLen)
		if q.deficit >= need {
			q.deficit -= need
			return q
		}
		q.deficit += drrQuantum
		n.nextVF = (n.nextVF + 1) % len(n.queues)
	}
}

// pickQueue returns the next non-empty queue round-robin, advancing the
// arbiter, or nil.
func (n *NIC) pickQueue() *Queue {
	for i := 0; i < len(n.queues); i++ {
		q := n.queues[(n.nextVF+i)%len(n.queues)]
		if len(q.bursts) > 0 {
			n.nextVF = (n.nextVF + i + 1) % len(n.queues)
			return q
		}
	}
	return nil
}

// peekQueue returns the queue pickQueue would choose without advancing.
func (n *NIC) peekQueue() *Queue {
	for i := 0; i < len(n.queues); i++ {
		q := n.queues[(n.nextVF+i)%len(n.queues)]
		if len(q.bursts) > 0 {
			return q
		}
	}
	return nil
}

func maxD(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}
