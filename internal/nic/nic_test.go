package nic

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// collector records delivered packets with their arrival times.
type collector struct {
	pkts  []*packet.Packet
	times []sim.Time
}

func (c *collector) Receive(p *packet.Packet, t sim.Time) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, t)
}

func mkPkts(n, frameLen int) []*packet.Packet {
	out := make([]*packet.Packet, n)
	for i := range out {
		out[i] = &packet.Packet{Tag: packet.Tag{Seq: uint64(i)}, Kind: packet.KindData, FrameLen: frameLen}
	}
	return out
}

func perfectProfile(rateBps int64) Profile {
	return Profile{Name: "perfect", LineRateBps: rateBps}
}

func TestPerfectNICPreservesOrderAndRate(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, perfectProfile(packet.Gbps(100)), "tx")
	q := n.NewQueue(0)
	sink := &collector{}
	q.Connect(sink, 0)

	pkts := mkPkts(64, 1400)
	q.SendBurst(pkts)
	e.Run()

	if len(sink.pkts) != 64 {
		t.Fatalf("delivered %d packets, want 64", len(sink.pkts))
	}
	ser := packet.SerializationTime(1400, packet.Gbps(100))
	for i, p := range sink.pkts {
		if p.Tag.Seq != uint64(i) {
			t.Fatalf("packet %d out of order: seq %d", i, p.Tag.Seq)
		}
		if i > 0 {
			gap := sink.times[i] - sink.times[i-1]
			if gap != ser {
				t.Fatalf("packet %d: gap %v, want serialization time %v", i, gap, ser)
			}
		}
	}
	if q.Sent() != 64 || q.Dropped() != 0 {
		t.Fatalf("sent=%d dropped=%d", q.Sent(), q.Dropped())
	}
}

func TestPullLatencyDelaysFirstFrame(t *testing.T) {
	e := sim.NewEngine(1)
	prof := perfectProfile(packet.Gbps(100))
	prof.PullLatency = sim.Constant{V: 500}
	n := New(e, prof, "tx")
	q := n.NewQueue(0)
	sink := &collector{}
	q.Connect(sink, 0)

	q.SendBurst(mkPkts(1, 1400))
	e.Run()
	want := sim.Time(500) + packet.SerializationTime(1400, packet.Gbps(100))
	if sink.times[0] != want {
		t.Fatalf("first arrival %v, want %v", sink.times[0], want)
	}
}

func TestColdPullExtraOnlyAfterIdle(t *testing.T) {
	e := sim.NewEngine(1)
	prof := perfectProfile(packet.Gbps(100))
	prof.ColdPullExtra = sim.Constant{V: 10_000}
	prof.ColdThreshold = sim.Millisecond
	n := New(e, prof, "tx")
	q := n.NewQueue(0)
	sink := &collector{}
	q.Connect(sink, 0)

	ser := packet.SerializationTime(1400, packet.Gbps(100))

	// First burst at t=0 is cold (NIC never used).
	q.SendBurst(mkPkts(1, 1400))
	e.Run()
	if sink.times[0] != 10_000+ser {
		t.Fatalf("cold first arrival %v, want %v", sink.times[0], 10_000+ser)
	}

	// Second burst shortly after is warm.
	e.After(1000, func() { q.SendBurst(mkPkts(1, 1400)) })
	e.Run()
	warmStart := sink.times[1] - ser
	if warmStart != sink.times[0]+1000-ser+ser { // doorbell at times[0]+1000... compute directly
		// warm pull: no extra; doorbell time = 10_000+ser+1000
		want := 10_000 + ser + 1000 + ser
		if sink.times[1] != want {
			t.Fatalf("warm arrival %v, want %v", sink.times[1], want)
		}
	}

	// Third burst after a long idle period is cold again.
	e.After(5*sim.Millisecond, func() { q.SendBurst(mkPkts(1, 1400)) })
	start := e.Now() + 5*sim.Millisecond
	e.Run()
	if got, want := sink.times[2], start+10_000+ser; got != want {
		t.Fatalf("re-cold arrival %v, want %v", got, want)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, perfectProfile(packet.Gbps(10)), "tx")
	q := n.NewQueue(10)
	sink := &collector{}
	q.Connect(sink, 0)

	// 3 bursts of 8 before the engine can drain: capacity 10 → 8 + 2
	// admitted, 14 dropped.
	q.SendBurst(mkPkts(8, 1400))
	q.SendBurst(mkPkts(8, 1400))
	q.SendBurst(mkPkts(8, 1400))
	e.Run()
	if q.Dropped() != 14 {
		t.Fatalf("dropped %d, want 14", q.Dropped())
	}
	if len(sink.pkts) != 10 {
		t.Fatalf("delivered %d, want 10", len(sink.pkts))
	}
}

func TestUnconnectedQueuePanics(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, perfectProfile(packet.Gbps(10)), "tx")
	q := n.NewQueue(0)
	defer func() {
		if recover() == nil {
			t.Fatal("SendBurst on unconnected queue did not panic")
		}
	}()
	q.SendBurst(mkPkts(1, 100))
}

func TestZeroLineRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero line rate accepted")
		}
	}()
	New(sim.NewEngine(1), Profile{}, "bad")
}

func TestEmptyBurstIgnored(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, perfectProfile(packet.Gbps(10)), "tx")
	q := n.NewQueue(0)
	q.SendBurst(nil) // must not panic even unconnected
	e.Run()
	if q.Sent() != 0 {
		t.Fatal("empty burst sent something")
	}
}

func TestJitterNeverReordersWire(t *testing.T) {
	e := sim.NewEngine(7)
	prof := perfectProfile(packet.Gbps(100))
	prof.PerPacketJitter = sim.Normal{Mu: 0, Sigma: 200}
	n := New(e, prof, "tx")
	q := n.NewQueue(0)
	sink := &collector{}
	q.Connect(sink, 0)

	for b := 0; b < 20; b++ {
		pkts := make([]*packet.Packet, BurstSize)
		for i := range pkts {
			pkts[i] = &packet.Packet{Tag: packet.Tag{Seq: uint64(b*BurstSize + i)}, FrameLen: 1400}
		}
		q.SendBurst(pkts)
	}
	e.Run()
	for i := 1; i < len(sink.pkts); i++ {
		if sink.times[i] < sink.times[i-1] {
			t.Fatalf("wire reordered in time at %d", i)
		}
		if sink.pkts[i].Tag.Seq != sink.pkts[i-1].Tag.Seq+1 {
			t.Fatalf("wire reordered packets at %d", i)
		}
	}
}

func TestPropagationDelay(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, perfectProfile(packet.Gbps(100)), "tx")
	q := n.NewQueue(0)
	sink := &collector{}
	q.Connect(sink, 1000)
	q.SendBurst(mkPkts(1, 1400))
	e.Run()
	want := packet.SerializationTime(1400, packet.Gbps(100)) + 1000
	if sink.times[0] != want {
		t.Fatalf("arrival %v, want %v", sink.times[0], want)
	}
}

func TestVFArbitrationSharesLine(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, perfectProfile(packet.Gbps(100)), "shared")
	vf1 := n.NewQueue(0)
	vf2 := n.NewQueue(0)
	s1, s2 := &collector{}, &collector{}
	vf1.Connect(s1, 0)
	vf2.Connect(s2, 0)

	vf1.SendBurst(mkPkts(10, 1400))
	vf2.SendBurst(mkPkts(10, 1400))
	e.Run()

	if len(s1.pkts) != 10 || len(s2.pkts) != 10 {
		t.Fatalf("deliveries %d/%d", len(s1.pkts), len(s2.pkts))
	}
	// The line is shared: total completion time is 20 serialization
	// slots, so the later of the two final arrivals reflects contention.
	ser := packet.SerializationTime(1400, packet.Gbps(100))
	last := s1.times[len(s1.times)-1]
	if l2 := s2.times[len(s2.times)-1]; l2 > last {
		last = l2
	}
	if want := 20 * ser; last != want {
		t.Fatalf("shared line finished at %v, want %v", last, want)
	}
	// And each VF's own stream is delayed relative to a dedicated NIC:
	// VF2's burst cannot finish before 11 slots.
	if s2.times[len(s2.times)-1] < 11*ser {
		t.Fatal("VF2 finished too early for a shared line")
	}
}

func TestVFSwitchOverheadApplied(t *testing.T) {
	e := sim.NewEngine(1)
	prof := perfectProfile(packet.Gbps(100))
	prof.VFSwitchOverhead = sim.Constant{V: 77}
	n := New(e, prof, "shared")
	vf1 := n.NewQueue(0)
	vf2 := n.NewQueue(0)
	s1, s2 := &collector{}, &collector{}
	vf1.Connect(s1, 0)
	vf2.Connect(s2, 0)

	vf1.SendBurst(mkPkts(1, 1400))
	vf2.SendBurst(mkPkts(1, 1400))
	e.Run()

	ser := packet.SerializationTime(1400, packet.Gbps(100))
	if s1.times[0] != ser {
		t.Fatalf("vf1 arrival %v", s1.times[0])
	}
	if want := ser + 77 + ser; s2.times[0] != want {
		t.Fatalf("vf2 arrival %v, want %v (switch overhead)", s2.times[0], want)
	}
}

func TestStallTimelineDefersPull(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, perfectProfile(packet.Gbps(100)), "tx")
	// Stall [0, 5000).
	n.SetStallTimeline(sim.NewStallTimeline(e.Rand("st"), sim.Constant{V: 0}, sim.Constant{V: 5000}))
	q := n.NewQueue(0)
	sink := &collector{}
	q.Connect(sink, 0)
	q.SendBurst(mkPkts(1, 1400))
	e.Run()
	if sink.times[0] < 5000 {
		t.Fatalf("stalled pull delivered at %v, want >= 5000", sink.times[0])
	}
}

func TestRepaceJitterSelected(t *testing.T) {
	e := sim.NewEngine(3)
	prof := perfectProfile(packet.Gbps(100))
	prof.RepaceProb = 1.0
	prof.RepaceJitter = sim.Constant{V: 1000}
	n := New(e, prof, "tx")
	q := n.NewQueue(0)
	sink := &collector{}
	q.Connect(sink, 0)
	q.SendBurst(mkPkts(3, 1400))
	e.Run()
	ser := packet.SerializationTime(1400, packet.Gbps(100))
	// Every frame delayed 1000 beyond line availability.
	if sink.times[0] != 1000+ser {
		t.Fatalf("first arrival %v, want %v", sink.times[0], 1000+ser)
	}
	if gap := sink.times[1] - sink.times[0]; gap != 1000+ser {
		t.Fatalf("repaced gap %v, want %v", gap, 1000+ser)
	}
}

func TestThroughputSustains100G(t *testing.T) {
	// The paper's headline: 100 Gbps (8.9 Mpps at 1400B). Saturate the
	// NIC for 10 ms of virtual time and verify line-rate delivery.
	e := sim.NewEngine(5)
	n := New(e, perfectProfile(packet.Gbps(100)), "tx")
	q := n.NewQueue(1 << 20)
	sink := &collector{}
	q.Connect(sink, 0)

	const horizon = 10 * sim.Millisecond
	total := 0
	for i := 0; total < 90_000; i++ {
		q.SendBurst(mkPkts(BurstSize, 1400))
		total += BurstSize
	}
	e.RunUntil(horizon)
	rate := float64(len(sink.pkts)) / horizon.Seconds()
	if rate < 8.7e6 {
		t.Fatalf("delivered %.2f Mpps, want >= 8.7 Mpps (100G line rate)", rate/1e6)
	}
}

func TestTimestampers(t *testing.T) {
	e := sim.NewEngine(9)
	rng := e.Rand("ts")

	perfect := PerfectTimestamper{}
	if perfect.Stamp(12345, rng) != 12345 {
		t.Fatal("perfect timestamper altered time")
	}

	e810 := E810Timestamper{ResolutionNs: 4}
	if got := e810.Stamp(1003, rng); got != 1000 {
		t.Fatalf("E810 stamp %v, want 1000", got)
	}
	if got := (E810Timestamper{}).Stamp(7, rng); got != 7 {
		t.Fatalf("default-resolution E810 stamp %v, want 7", got)
	}

	cx := ConnectXTimestamper{PeriodNs: 8, ConversionJitter: sim.Constant{V: 3}}
	if got := cx.Stamp(100, rng); got != 96+3 {
		t.Fatalf("ConnectX stamp %v, want 99", got)
	}
	// Never negative.
	cx2 := ConnectXTimestamper{PeriodNs: 1, ConversionJitter: sim.Constant{V: -100}}
	if got := cx2.Stamp(5, rng); got != 0 {
		t.Fatalf("ConnectX stamp clamped to %v, want 0", got)
	}
}
