// Package dpdk models the DPDK runtime facilities Choir sits on (paper
// §2.3/§5): fixed-size message-buffer (mbuf) pools allocated from
// hugepage memory. Packets received by the NIC occupy mbufs until
// software frees them; Choir's zero-copy recording works by simply not
// freeing the mbufs of forwarded packets — which is why RAM is the
// tool's primary restriction and why the program "can run with a
// minimum of 1 GB".
//
// The pool makes that constraint mechanical: when a recording pins all
// buffers, the receive path has nothing to allocate from and drops on
// the floor, exactly like rte_pktmbuf_alloc failing.
package dpdk

import (
	"fmt"
)

// MbufSize is the default buffer size (rte_mbuf default dataroom plus
// headroom, rounded): one buffer holds one frame up to ~2 KB.
const MbufSize = 2048

// MemPool is a fixed-capacity buffer pool.
type MemPool struct {
	name     string
	capacity int
	inUse    int
	failed   uint64
	peak     int
}

// NewMemPool creates a pool with the given total memory budget; the
// capacity in buffers is budgetBytes / MbufSize.
func NewMemPool(name string, budgetBytes int64) *MemPool {
	cap := int(budgetBytes / MbufSize)
	if cap < 1 {
		panic(fmt.Sprintf("dpdk: pool %q budget %d too small for a single mbuf", name, budgetBytes))
	}
	return &MemPool{name: name, capacity: cap}
}

// Capacity returns the pool size in buffers.
func (p *MemPool) Capacity() int { return p.capacity }

// InUse returns currently allocated buffers.
func (p *MemPool) InUse() int { return p.inUse }

// Available returns free buffers.
func (p *MemPool) Available() int { return p.capacity - p.inUse }

// AllocFailures counts allocation attempts that found the pool empty.
func (p *MemPool) AllocFailures() uint64 { return p.failed }

// Peak returns the high-water mark of buffers in use.
func (p *MemPool) Peak() int { return p.peak }

// Alloc claims n buffers; it reports how many were actually granted
// (all-or-nothing per buffer, like a burst of rte_pktmbuf_alloc calls).
func (p *MemPool) Alloc(n int) int {
	if n <= 0 {
		return 0
	}
	granted := n
	if avail := p.capacity - p.inUse; granted > avail {
		p.failed += uint64(granted - avail)
		granted = avail
	}
	p.inUse += granted
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
	return granted
}

// Free returns n buffers to the pool. Freeing more than allocated
// panics: it is a double-free bug in the caller.
func (p *MemPool) Free(n int) {
	if n < 0 || n > p.inUse {
		panic(fmt.Sprintf("dpdk: pool %q double free (%d freed, %d in use)", p.name, n, p.inUse))
	}
	p.inUse -= n
}

// String summarizes the pool.
func (p *MemPool) String() string {
	return fmt.Sprintf("mempool %q: %d/%d in use (peak %d, %d alloc failures)",
		p.name, p.inUse, p.capacity, p.peak, p.failed)
}
