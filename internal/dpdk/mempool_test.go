package dpdk

import (
	"testing"
	"testing/quick"
)

func TestPoolBasics(t *testing.T) {
	p := NewMemPool("t", 10*MbufSize)
	if p.Capacity() != 10 || p.Available() != 10 {
		t.Fatalf("capacity %d available %d", p.Capacity(), p.Available())
	}
	if got := p.Alloc(4); got != 4 {
		t.Fatalf("Alloc(4) = %d", got)
	}
	if p.InUse() != 4 || p.Available() != 6 {
		t.Fatalf("in use %d", p.InUse())
	}
	p.Free(2)
	if p.InUse() != 2 {
		t.Fatalf("in use %d after free", p.InUse())
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestPoolExhaustionPartialGrant(t *testing.T) {
	p := NewMemPool("t", 5*MbufSize)
	if got := p.Alloc(8); got != 5 {
		t.Fatalf("Alloc(8) on 5-cap pool = %d", got)
	}
	if p.AllocFailures() != 3 {
		t.Fatalf("failures %d, want 3", p.AllocFailures())
	}
	if p.Alloc(1) != 0 {
		t.Fatal("empty pool granted a buffer")
	}
	if p.Peak() != 5 {
		t.Fatalf("peak %d", p.Peak())
	}
}

func TestPoolDoubleFreePanics(t *testing.T) {
	p := NewMemPool("t", 2*MbufSize)
	p.Alloc(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double free not caught")
		}
	}()
	p.Free(2)
}

func TestPoolTinyBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sub-mbuf budget accepted")
		}
	}()
	NewMemPool("t", MbufSize-1)
}

func TestQuickPoolConservation(t *testing.T) {
	f := func(ops []int8) bool {
		p := NewMemPool("q", 64*MbufSize)
		for _, op := range ops {
			if op >= 0 {
				p.Alloc(int(op))
			} else {
				n := -int(op) // negate after widening: int8(-128) is its own negation
				if n > p.InUse() {
					n = p.InUse()
				}
				p.Free(n)
			}
			if p.InUse() < 0 || p.InUse() > p.Capacity() {
				return false
			}
			if p.InUse()+p.Available() != p.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
