package psim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// meshNode is a toy simulated component: on every tick it logs
// (time, step), then forwards a tick to the next node after a
// pseudo-random delay drawn from its own labelled stream. Node state is
// strictly local, so a run's per-node logs must be identical however
// the nodes are spread over domains.
type meshNode struct {
	a    *sim.Actor
	id   int
	rng  *rand.Rand
	next *meshNode
	log  [][2]int64
	step int64
}

func (n *meshNode) tick() {
	n.log = append(n.log, [2]int64{int64(n.a.Now()), n.step})
	n.step++
	d := sim.Duration(1 + n.rng.Intn(97))
	at := n.a.Now() + d
	n.a.Send(n.next.a.Engine(), at, n.next.tick)
}

// buildMesh wires k nodes in a ring, node i on the engine place(i)
// returns, and kicks node 0 at t=1.
func buildMesh(k int, place func(i int) *sim.Engine) []*meshNode {
	nodes := make([]*meshNode, k)
	for i := range nodes {
		eng := place(i)
		nodes[i] = &meshNode{a: eng.NewActor(), id: i, rng: eng.Rand(fmt.Sprintf("mesh/%d", i))}
	}
	for i, n := range nodes {
		n.next = nodes[(i+1)%k]
		if r := n.a.Engine().Router(); r != nil {
			r.Link(n.a.Engine(), n.next.a.Engine(), 1)
		}
	}
	nodes[0].a.Post(1, nodes[0].tick)
	return nodes
}

// TestMeshBitIdentical runs the same ring workload sequentially and on
// 2/4/8-domain partitions and requires identical per-node logs, final
// clocks and total executed-event counts.
func TestMeshBitIdentical(t *testing.T) {
	const k, seed = 9, 42
	deadline := sim.Time(2_000_000)

	seq := sim.NewEngine(seed)
	ref := buildMesh(k, func(int) *sim.Engine { return seq })
	seq.RunUntil(deadline)

	for _, shards := range []int{1, 2, 4, 8} {
		p := New(seed, shards, nil)
		got := buildMesh(k, func(i int) *sim.Engine { return p.Domain(i % shards) })
		p.RunUntil(deadline)
		if p.Now() != seq.Now() {
			t.Fatalf("shards=%d: clock %v != sequential %v", shards, p.Now(), seq.Now())
		}
		if p.Executed() != seq.Executed() {
			t.Fatalf("shards=%d: executed %d != sequential %d", shards, p.Executed(), seq.Executed())
		}
		for i := range ref {
			if !reflect.DeepEqual(ref[i].log, got[i].log) {
				t.Fatalf("shards=%d: node %d log diverged (%d vs %d entries)",
					shards, i, len(got[i].log), len(ref[i].log))
			}
		}
	}
}

// TestMeshResumesAcrossCalls drives the partition in several RunUntil
// hops (the experiment pipeline's shape: run, post control work while
// quiescent, run again) and checks against a sequential engine doing
// the same hops.
func TestMeshResumesAcrossCalls(t *testing.T) {
	const k, seed = 5, 7
	hops := []sim.Time{1000, 1001, 500_000, 500_000, 1_500_000}

	seq := sim.NewEngine(seed)
	ref := buildMesh(k, func(int) *sim.Engine { return seq })
	p := New(seed, 4, nil)
	got := buildMesh(k, func(i int) *sim.Engine { return p.Domain(i % 4) })

	for _, d := range hops {
		seq.RunUntil(d)
		p.RunUntil(d)
		// Quiescent gap: post new work at the current clock on both,
		// exactly like Broadcast between phases.
		ref[2].a.Post(seq.Now(), ref[2].tick)
		got[2].a.Post(p.Now(), got[2].tick)
	}
	seq.RunUntil(2_000_000)
	p.RunUntil(2_000_000)
	for i := range ref {
		if !reflect.DeepEqual(ref[i].log, got[i].log) {
			t.Fatalf("node %d log diverged after resumed runs", i)
		}
	}
}

// TestRingBackpressure floods far more crossings out of one event than
// a ring holds, forcing the push-block path, and checks nothing is
// lost or reordered.
func TestRingBackpressure(t *testing.T) {
	const n = 3 * ringCap
	p := New(1, 2, nil)
	src, dst := p.Domain(0), p.Domain(1)
	a := src.NewActor()
	sink := dst.NewActor()
	_ = sink
	p.Link(src, dst, 1)

	var got []sim.Time
	a.Post(0, func() {
		for i := 0; i < n; i++ {
			at := a.Now() + 1 + sim.Time(i)
			a.Send(dst, at, func() { got = append(got, dst.Now()) })
		}
	})
	p.RunUntil(n + 10)
	if len(got) != n {
		t.Fatalf("delivered %d of %d crossings", len(got), n)
	}
	for i, at := range got {
		if at != sim.Time(1+i) {
			t.Fatalf("crossing %d delivered at %v, want %v", i, at, sim.Time(1+i))
		}
	}
}

// TestRunUntilBoundary pins RunUntil's deadline semantics — an event
// exactly at the deadline fires, PostAfter with zero and negative
// durations at the deadline fire at the clamped current instant — and
// requires the sharded engine to agree with the sequential one on all
// of it. (Satellite: boundary semantics pinned identically for both.)
func TestRunUntilBoundary(t *testing.T) {
	type runner interface {
		RunUntil(sim.Time)
		Now() sim.Time
	}
	check := func(t *testing.T, eng *sim.Engine, r runner, peer *sim.Engine) {
		t.Helper()
		var fired []string
		a := eng.NewActor()
		a.Post(100, func() { fired = append(fired, "at-deadline") })
		a.Post(101, func() { fired = append(fired, "past-deadline") })
		r.RunUntil(100)
		if r.Now() != 100 {
			t.Fatalf("clock %v after RunUntil(100)", r.Now())
		}
		want := []string{"at-deadline"}
		if !reflect.DeepEqual(fired, want) {
			t.Fatalf("fired %v, want %v", fired, want)
		}
		// At the deadline instant, zero and negative PostAfter clamp to
		// "now" and fire on the very next run, before the later event.
		a.PostAfter(0, func() { fired = append(fired, "zero") })
		a.PostAfter(-50, func() { fired = append(fired, "negative") })
		r.RunUntil(100) // same deadline again: clamped events are due now
		want = []string{"at-deadline", "zero", "negative"}
		if !reflect.DeepEqual(fired, want) {
			t.Fatalf("fired %v, want %v", fired, want)
		}
		r.RunUntil(101)
		want = append(want, "past-deadline")
		if !reflect.DeepEqual(fired, want) {
			t.Fatalf("fired %v, want %v", fired, want)
		}
		if r.Now() != 101 {
			t.Fatalf("clock %v after RunUntil(101)", r.Now())
		}
		_ = peer
	}
	t.Run("sequential", func(t *testing.T) {
		eng := sim.NewEngine(3)
		check(t, eng, eng, nil)
	})
	t.Run("sharded", func(t *testing.T) {
		p := New(3, 4, nil)
		check(t, p.Domain(1), p, p.Domain(2))
	})
}

// TestPendingExcludesCancelled covers the Pending()/PendingRaw() split:
// cancelled tombstones still in the heap count only in PendingRaw.
func TestPendingExcludesCancelled(t *testing.T) {
	eng := sim.NewEngine(1)
	var evs []*sim.Event
	for i := 0; i < 10; i++ {
		evs = append(evs, eng.Schedule(sim.Time(10+i), func() {}))
	}
	for _, ev := range evs[:4] {
		ev.Cancel()
	}
	if got := eng.Pending(); got != 6 {
		t.Fatalf("Pending() = %d, want 6 live events", got)
	}
	if got := eng.PendingRaw(); got != 10 {
		t.Fatalf("PendingRaw() = %d, want 10 heap entries", got)
	}
	eng.RunUntil(100)
	if eng.Pending() != 0 || eng.PendingRaw() != 0 {
		t.Fatalf("queue not drained: %d/%d", eng.Pending(), eng.PendingRaw())
	}
}
