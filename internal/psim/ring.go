package psim

import (
	"sync/atomic"

	"repro/internal/sim"
)

// ringCap bounds each inter-domain handoff queue. Power of two so the
// index mask is a single AND; 2048 crossings (~64 KiB) absorbs a full
// switch-egress burst without making an unresponsive consumer invisible
// — a producer that fills the ring falls into the push-block protocol
// (publish partial horizon, drain own inputs, yield) instead of
// allocating unboundedly.
const ringCap = 2048

// ring is a bounded single-producer/single-consumer queue of crossings
// between one ordered pair of domains. The producer is always the
// source domain's goroutine and the consumer the destination domain's
// (psim never migrates domains between goroutines mid-run), which is
// what lets push and pop be a pair of atomic counters with no lock.
// Go's atomic loads/stores are sequentially consistent, so a consumer
// that observes tail also observes the buffer write that preceded it.
type ring struct {
	head atomic.Uint64 // next slot to pop (consumer-owned)
	tail atomic.Uint64 // next slot to fill (producer-owned)
	buf  [ringCap]sim.Crossing
}

// tryPush appends c, failing (false) when the ring is full.
func (r *ring) tryPush(c sim.Crossing) bool {
	t := r.tail.Load()
	if t-r.head.Load() == ringCap {
		return false
	}
	r.buf[t&(ringCap-1)] = c
	r.tail.Store(t + 1)
	return true
}

// pop removes the oldest crossing, clearing its closure slot so the
// ring never pins a dead packet burst for a full lap.
func (r *ring) pop() (sim.Crossing, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return sim.Crossing{}, false
	}
	c := r.buf[h&(ringCap-1)]
	r.buf[h&(ringCap-1)].Fn = nil
	r.head.Store(h + 1)
	return c, true
}

// depth returns the current occupancy (racy snapshot, telemetry only).
func (r *ring) depth() uint64 { return r.tail.Load() - r.head.Load() }

// empty reports whether the ring holds no crossings. Only meaningful as
// a stable answer when both endpoint domains are quiescent (the
// all-parked stall breaker's precondition).
func (r *ring) empty() bool { return r.head.Load() == r.tail.Load() }
