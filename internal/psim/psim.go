// Package psim is the parallel-in-space simulation core: it runs one
// testbed topology across several sim.Engine sub-engines ("domains"),
// one goroutine each, synchronized conservatively with link propagation
// latency as lookahead — the classic null-message (Chandy–Misra–Bryant)
// PDES discipline — while producing output bit-identical to the single
// sequential engine.
//
// # Partition model
//
// Components are placed on domains at build time (internal/testbed owns
// the partitioner); every scheduling component owns a sim.Actor, and
// all domain engines share one sim.LaneCounter and the root seed, so
// component lanes, per-lane sequences and every per-label random stream
// are identical to the sequential run's. Cross-domain packet handoffs
// travel as timestamped sim.Crossing values through bounded SPSC rings
// and merge into the destination heap under the same (time, lane, seq)
// total order the sequential heap uses — which is the whole determinism
// argument: identical keys, identical per-key behaviour, therefore an
// identical simulation whatever the domain count.
//
// # Synchronization protocol
//
// Each ordered domain pair with at least one link carries a static
// lookahead la ≥ 1ns: a promise that a crossing issued while the source
// executes an event at time t has At ≥ t + la. Domains advance in
// exclusive windows: a domain whose in-edges publish horizons ("floors")
// f_src may safely execute every event strictly below
//
//	bound = min(T, max(gf, min over in-edges (f_src + la)))
//
// where T = deadline+1 (so the final window includes the deadline
// exactly like sim.Engine.RunUntil) and gf is the stall-breaker floor
// below. After running a window the domain publishes floor = bound —
// valid because every remaining event is ≥ bound, so every future send
// is ≥ bound + la. Floor publications double as null messages: they are
// what lets an idle neighbour advance with no packet traffic. Readers
// load floors before draining rings; producers push before publishing;
// with Go's sequentially consistent atomics that ordering guarantees a
// domain entering a window has already received every crossing below
// its bound.
//
// Two liveness refinements keep the conservative loop from stalling:
//
//   - A producer blocked on a full ring publishes its current event
//     time as a partial floor, wakes the consumer, drains its own
//     in-rings and yields — so back-pressure cannot deadlock a cycle of
//     full queues.
//   - When every domain is parked (no window opens anywhere), the last
//     to park inspects the quiescent partition: if any ring is
//     non-empty its consumer is woken to drain it; otherwise the
//     globally earliest pending event GF is found and gf = GF+1 is
//     raised, waking everyone — no event below GF exists or can ever be
//     created (events only beget later events), so executing through GF
//     is safe. This is what lets the partition leap idle phase gaps
//     (e.g. the 60ms experiment slack) in one hop instead of creeping
//     by nanosecond lookaheads.
package psim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// edge is the handoff channel for one ordered pair of distinct domains.
type edge struct {
	src, dst *domain
	la       sim.Duration // lookahead: min link latency over all links on this pair
	q        ring
}

// domain is one shard of the partition: a sub-engine, its in/out edges
// and the horizon it publishes to neighbours.
type domain struct {
	p   *Engine
	id  int
	eng *sim.Engine

	// floor is the published horizon: a promise that every future
	// crossing from this domain has At ≥ floor + la(edge). Monotone
	// within a RunUntil call; reset to the engine clock between calls
	// (the quiescent main goroutine may post new work at the clock).
	floor atomic.Int64

	// wake carries at most one pending notification; senders use a
	// non-blocking send so notifying is wait-free.
	wake chan struct{}

	in, out []*edge

	// executedTo is the exclusive upper bound of the last window run;
	// owned by the domain goroutine during a run.
	executedTo sim.Time
}

// notify posts the domain's wake token if not already pending.
func (d *domain) notify() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Engine is a partitioned simulation: n domain engines sharing a lane
// counter and a seed, synchronized by this type (which is also the
// sim.Router those engines route crossings through). Construct with
// New, place components with Domain, then drive it like a sequential
// engine with RunUntil. Between RunUntil calls the partition is
// quiescent and the main goroutine may freely post to any domain
// engine; during RunUntil only the domain goroutines touch them.
type Engine struct {
	seed    int64
	lanes   *sim.LaneCounter
	domains []*domain
	byEng   map[*sim.Engine]*domain
	edges   map[[2]int]*edge // keyed by (src domain id, dst domain id)
	pool    *parallel.Pool

	running bool // set around the Concurrent call; guards Link/Route misuse

	// gf is the stall-breaker bound floor: a proven statement that no
	// event below gf exists anywhere in the partition. Monotone within
	// a run (raised under parkMu, read lock-free).
	gf atomic.Int64

	// Parking accounting for the all-parked stall breaker.
	parkMu sync.Mutex
	parked int
	active int

	// maxFloor tracks the highest published floor this run, for the
	// horizon-lag gauge (only maintained when obs is enabled).
	maxFloor atomic.Int64

	ob obsHooks
}

// obsHooks are the nil-safe instrumentation points (see EnableObs).
type obsHooks struct {
	handoffs   *obs.Counter // crossings carried between domains
	nullMsgs   *obs.Counter // floor publications (null messages)
	stalls     *obs.Counter // all-parked stall breaks
	pushBlocks *obs.Counter // producer stalls on a full ring
	depthPeak  *obs.Gauge   // peak SPSC ring occupancy
	lagPeak    *obs.Gauge   // peak horizon lag between domains, ns
	domains    *obs.Gauge   // partition width
}

// New returns a partition of n domains (n ≥ 1) whose engines share the
// root seed and one lane counter. Every per-label random stream on
// every domain engine is therefore derived from the root seed exactly
// as on a sequential engine — and internal psim identifiers (domain
// ids) are stable by construction, so placement cannot perturb a
// stream. pool supplies goroutine telemetry (may be nil).
func New(seed int64, n int, pool *parallel.Pool) *Engine {
	if n < 1 {
		n = 1
	}
	p := &Engine{
		seed:  seed,
		lanes: &sim.LaneCounter{},
		byEng: make(map[*sim.Engine]*domain, n),
		edges: make(map[[2]int]*edge),
		pool:  pool,
	}
	for i := 0; i < n; i++ {
		eng := sim.NewEngineWithLanes(seed, p.lanes)
		eng.SetRouter(p)
		d := &domain{p: p, id: i, eng: eng, wake: make(chan struct{}, 1)}
		p.domains = append(p.domains, d)
		p.byEng[eng] = d
	}
	return p
}

// Seed returns the root seed shared by every domain engine.
func (p *Engine) Seed() int64 { return p.seed }

// Domains returns the partition width.
func (p *Engine) Domains() int { return len(p.domains) }

// Domain returns the i'th domain's engine, for component placement.
func (p *Engine) Domain(i int) *sim.Engine { return p.domains[i].eng }

// Now returns the partition clock. All domain engines agree whenever
// the partition is quiescent (each RunUntil leaves every engine exactly
// at the deadline).
func (p *Engine) Now() sim.Time { return p.domains[0].eng.Now() }

// Executed returns the total events fired across all domains — equal,
// by the determinism argument, to the sequential engine's count for the
// same workload.
func (p *Engine) Executed() uint64 {
	var n uint64
	for _, d := range p.domains {
		n += d.eng.Executed()
	}
	return n
}

// EnableObs registers the partition's instrumentation on ob (nil-safe:
// a nil ob or registry leaves every hook nil and the hot path free of
// even the atomic bookkeeping behind the lag gauge).
func (p *Engine) EnableObs(ob *obs.Obs) {
	if ob == nil || ob.Reg == nil {
		return
	}
	reg := ob.Reg
	p.ob = obsHooks{
		handoffs:   reg.Counter("psim_handoffs_total", "cross-domain event crossings carried through SPSC rings"),
		nullMsgs:   reg.Counter("psim_null_messages_total", "horizon (floor) publications — conservative null messages"),
		stalls:     reg.Counter("psim_stall_breaks_total", "all-parked stall breaks (global min-event horizon jumps)"),
		pushBlocks: reg.Counter("psim_push_blocks_total", "producer stalls on a full inter-domain ring"),
		depthPeak:  reg.Gauge("psim_queue_depth_peak", "peak inter-domain ring occupancy (crossings)"),
		lagPeak:    reg.Gauge("psim_horizon_lag_peak_ns", "peak spread between the fastest and slowest domain horizon"),
		domains:    reg.Gauge("psim_domains", "partition width (number of event domains)"),
	}
	p.ob.domains.SetInt(int64(len(p.domains)))
}

// Link declares a lookahead edge (sim.Router). Wiring helpers call it
// while the partition is quiescent — during topology construction or
// between RunUntil calls; linking mid-run panics because domain
// goroutines read the edge lists lock-free. Same-domain links and
// engines outside the partition are ignored; repeated links keep the
// smallest lookahead; lookaheads are floored at 1ns (a zero lookahead
// could never open a neighbour's window).
func (p *Engine) Link(src, dst *sim.Engine, lookahead sim.Duration) {
	if p.running {
		panic("psim: Link while partition is running")
	}
	ds, dd := p.byEng[src], p.byEng[dst]
	if ds == nil || dd == nil || ds == dd {
		return
	}
	if lookahead < 1 {
		lookahead = 1
	}
	key := [2]int{ds.id, dd.id}
	if e := p.edges[key]; e != nil {
		if lookahead < e.la {
			e.la = lookahead
		}
		return
	}
	e := &edge{src: ds, dst: dd, la: lookahead}
	p.edges[key] = e
	ds.out = append(ds.out, e)
	dd.in = append(dd.in, e)
}

// Route carries one crossing (sim.Router). Called from the source
// domain's goroutine while it executes an event; the push-block branch
// is the back-pressure protocol described in the package comment.
func (p *Engine) Route(src, dst *sim.Engine, c sim.Crossing) {
	ds, dd := p.byEng[src], p.byEng[dst]
	if ds == nil || dd == nil {
		panic("psim: route between engines outside the partition")
	}
	e := p.edges[[2]int{ds.id, dd.id}]
	if e == nil {
		panic(fmt.Sprintf("psim: route on unlinked edge %d->%d (missing Link at wiring time)", ds.id, dd.id))
	}
	for !e.q.tryPush(c) {
		p.ob.pushBlocks.Inc()
		// Publish how far we have actually executed so the consumer
		// can open a window and drain; every send we still owe is
		// ≥ now + la, so now is a valid (partial) floor.
		ds.publish(src.Now())
		dd.notify()
		ds.drainInputs()
		runtime.Gosched()
	}
	p.ob.handoffs.Inc()
	if p.ob.depthPeak != nil {
		p.ob.depthPeak.MaxInt(int64(e.q.depth()))
	}
}

// publish raises the domain's floor to at least f and notifies every
// downstream neighbour — the null message of the CMB discipline.
func (d *domain) publish(f sim.Time) {
	for {
		cur := d.floor.Load()
		if int64(f) <= cur {
			break
		}
		if d.floor.CompareAndSwap(cur, int64(f)) {
			d.p.ob.nullMsgs.Inc()
			if d.p.ob.lagPeak != nil {
				// Track horizon spread: how far the fastest domain has
				// run ahead of this one at publish time.
				for {
					m := d.p.maxFloor.Load()
					if int64(f) <= m {
						break
					}
					if d.p.maxFloor.CompareAndSwap(m, int64(f)) {
						break
					}
				}
				if lag := d.p.maxFloor.Load() - int64(f); lag > 0 {
					d.p.ob.lagPeak.MaxInt(lag)
				}
			}
			break
		}
	}
	for _, e := range d.out {
		e.dst.notify()
	}
}

// drainInputs merges every queued crossing into the local heap. Only
// the domain's own goroutine calls this (in the window loop and inside
// push-block retries), so ring consumption stays single-consumer.
func (d *domain) drainInputs() {
	for _, e := range d.in {
		for {
			c, ok := e.q.pop()
			if !ok {
				break
			}
			d.eng.Inject(c)
		}
	}
}

// bound computes the exclusive window limit: how far this domain may
// safely execute right now.
func (d *domain) bound(T sim.Time) sim.Time {
	lbts := T
	for _, e := range d.in {
		if b := sim.Time(e.src.floor.Load()) + e.la; b < lbts {
			lbts = b
		}
	}
	if gf := sim.Time(d.p.gf.Load()); gf > lbts {
		lbts = gf
	}
	if lbts > T {
		lbts = T
	}
	return lbts
}

// run is one domain's event loop for a single RunUntil(T-1) call.
func (d *domain) run(T sim.Time) {
	p := d.p
	for {
		b := d.bound(T) // load floors before draining (see package doc)
		d.drainInputs()
		if b > d.executedTo {
			before := d.eng.Executed()
			d.eng.RunUntil(b - 1)
			d.executedTo = b
			// Publish only windows that did real work, plus the final
			// window (neighbours need the T horizon to finish). An idle
			// domain that re-published every la-sized increment would
			// drag its neighbours through the classic CMB ratchet:
			// floors leapfrogging by nanosecond lookaheads across
			// second-long gaps. Sparse application workloads (VoIP
			// silence, ABR buffer pacing, IoT periods) made this the
			// dominant cost — tens of millions of null messages per
			// thousand real handoffs. Staying quiet instead parks the
			// idle neighbourhood, and the all-parked stall break jumps
			// the partition straight to the globally next event.
			if d.eng.Executed() != before || b >= T {
				d.publish(b)
			}
			if b >= T {
				p.parkMu.Lock()
				p.active--
				if p.active > 0 && p.parked == p.active {
					p.stallBreak()
				}
				p.parkMu.Unlock()
				return
			}
			continue
		}
		// No window opens: park until a neighbour publishes. The token
		// clear + recompute + block sequence cannot lose a wakeup (a
		// publish after the recompute leaves a token for the block to
		// consume).
		select {
		case <-d.wake:
			continue
		default:
		}
		if d.bound(T) > d.executedTo {
			continue
		}
		p.parkMu.Lock()
		p.parked++
		if p.parked == p.active {
			p.stallBreak()
		}
		p.parkMu.Unlock()
		<-d.wake
		p.parkMu.Lock()
		p.parked--
		p.parkMu.Unlock()
	}
}

// stallBreak fires when every active domain is parked (caller holds
// parkMu, which also blocks any woken domain from resuming until we
// return — the partition is observably quiescent). If undrained rings
// exist their consumers are woken to merge them first (a queued
// crossing may undercut any horizon we would compute from the heaps
// alone); otherwise the globally earliest pending event GF is found and
// the bound floor gf = GF+1 raised: no event below GF exists anywhere,
// and events only create events at or after their own time, so none
// ever will.
func (p *Engine) stallBreak() {
	woke := false
	for _, e := range p.edges {
		if !e.q.empty() {
			e.dst.notify()
			woke = true
		}
	}
	if woke {
		return
	}
	gf := int64(math.MaxInt64)
	for _, d := range p.domains {
		if at, ok := d.eng.NextEventAt(); ok && int64(at) < gf {
			gf = int64(at)
		}
	}
	if gf < math.MaxInt64 {
		gf++
	}
	if gf <= p.gf.Load() {
		// No new information. The last advance already notified every
		// domain, and the domain owning the global minimum event always
		// has an open window under the current gf (its executedTo is at
		// or below GF), so an unconsumed wake token is guaranteed to
		// exist — notifying again would only let the caller spin-wake
		// itself and starve the token holder of CPU. Park quietly.
		return
	}
	p.gf.Store(gf) // parkMu serializes stallBreak, so a plain store is a CAS
	p.ob.stalls.Inc()
	for _, d := range p.domains {
		d.notify()
	}
}

// RunUntil fires every event with timestamp ≤ deadline across all
// domains, then leaves every domain clock at deadline — the same
// contract as sim.Engine.RunUntil, parallel in space. It blocks until
// the partition is quiescent again, so the caller may inspect or post
// to any domain engine afterwards.
func (p *Engine) RunUntil(deadline sim.Time) {
	T := deadline + 1
	for _, d := range p.domains {
		// The quiescent gap since the last call may have posted new
		// events at the current clock, so the old floors (= last T) are
		// stale; the clock itself is always a valid floor.
		d.floor.Store(int64(d.eng.Now()))
		d.executedTo = d.eng.Now()
	}
	p.gf.Store(math.MinInt64)
	p.maxFloor.Store(math.MinInt64)
	p.parked = 0
	p.active = len(p.domains)
	p.running = true
	p.pool.Concurrent(len(p.domains), func(i int) { p.domains[i].run(T) })
	p.running = false
}
