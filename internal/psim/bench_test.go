package psim

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkHandoff measures the cross-domain handoff path — actor Send
// → SPSC ring push → consumer drain → Engine.Inject → pooled heap
// insert — as ns and allocations per crossing. The pre-bound callbacks
// and the engines' event free lists mean steady state should allocate
// nothing per handoff; verify.sh -bench holds a budget on this.
func BenchmarkHandoff(b *testing.B) {
	const la = 100
	p := New(1, 2, nil)
	e0, e1 := p.Domain(0), p.Domain(1)
	p.Link(e0, e1, la)
	p.Link(e1, e0, la)
	a0, a1 := e0.NewActor(), e1.NewActor()

	remaining := b.N
	var ping, pong func()
	ping = func() { // runs on e0
		if remaining <= 0 {
			return
		}
		remaining--
		a0.Send(e1, a0.Now()+la, pong)
	}
	pong = func() { // runs on e1
		if remaining <= 0 {
			return
		}
		remaining--
		a1.Send(e0, a1.Now()+la, ping)
	}
	a0.Post(0, ping)

	b.ReportAllocs()
	b.ResetTimer()
	p.RunUntil(sim.Time(int64(b.N+2) * la))
	b.StopTimer()
	if remaining > 0 {
		b.Fatalf("%d handoffs never ran", remaining)
	}
}
