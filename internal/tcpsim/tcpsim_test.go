package tcpsim

import (
	"testing"

	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
)

type sink struct{ n int }

func (s *sink) Receive(*packet.Packet, sim.Time) { s.n++ }

func TestFlowRampsUp(t *testing.T) {
	e := sim.NewEngine(1)
	n := nic.New(e, nic.Profile{Name: "tx", LineRateBps: packet.Gbps(100)}, "tx")
	q := n.NewQueue(1 << 16)
	s := &sink{}
	q.Connect(s, 0)

	f := Start(e, q, Config{ID: 1, StopAt: 20 * sim.Millisecond})
	e.RunUntil(25 * sim.Millisecond)

	st := f.Stats()
	if st.AckedSegments == 0 {
		t.Fatal("no segments acknowledged")
	}
	if st.Cwnd <= 10 {
		t.Fatalf("cwnd never grew: %.1f", st.Cwnd)
	}
	if f.Throughput(e.Now()) <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestFlowBackoffOnDrops(t *testing.T) {
	e := sim.NewEngine(2)
	// Slow NIC with a tiny queue: drops guaranteed once cwnd grows.
	n := nic.New(e, nic.Profile{Name: "tx", LineRateBps: packet.Gbps(1)}, "tx")
	q := n.NewQueue(12)
	s := &sink{}
	q.Connect(s, 0)

	f := Start(e, q, Config{ID: 1, StopAt: 50 * sim.Millisecond})
	e.RunUntil(60 * sim.Millisecond)
	st := f.Stats()
	if st.Timeouts == 0 {
		t.Fatal("expected timeouts on a congested path")
	}
	if q.Dropped() == 0 {
		t.Fatal("expected queue drops")
	}
	// AIMD must keep cwnd bounded well below the max on a 1G path.
	if st.Cwnd > 2000 {
		t.Fatalf("cwnd %.0f did not back off", st.Cwnd)
	}
}

func TestThroughputApproachesLineRate(t *testing.T) {
	e := sim.NewEngine(3)
	n := nic.New(e, nic.Profile{Name: "tx", LineRateBps: packet.Gbps(10)}, "tx")
	q := n.NewQueue(1 << 16)
	s := &sink{}
	q.Connect(s, 0)

	flows := StartIperf(e, []*nic.Queue{q}, 8, Config{StopAt: 50 * sim.Millisecond})
	e.RunUntil(50 * sim.Millisecond)
	agg := AggregateThroughput(flows, e.Now())
	// 8 flows on a 10G line: aggregate should reach a good fraction of
	// line rate (goodput excludes overhead, ramp-up and losses).
	if agg < 5e9 {
		t.Fatalf("aggregate throughput %.2f Gbps, want >= 5", agg/1e9)
	}
	if agg > 10.5e9 {
		t.Fatalf("aggregate throughput %.2f Gbps exceeds line rate", agg/1e9)
	}
}

func TestIperfFlowsDistinct(t *testing.T) {
	e := sim.NewEngine(4)
	n := nic.New(e, nic.Profile{Name: "tx", LineRateBps: packet.Gbps(10)}, "tx")
	q := n.NewQueue(1 << 16)
	s := &sink{}
	q.Connect(s, 0)
	flows := StartIperf(e, []*nic.Queue{q}, 3, Config{ID: 10, StopAt: sim.Millisecond})
	e.RunUntil(2 * sim.Millisecond)
	seen := map[uint16]bool{}
	for _, f := range flows {
		if seen[f.cfg.ID] {
			t.Fatalf("duplicate flow id %d", f.cfg.ID)
		}
		seen[f.cfg.ID] = true
		if f.String() == "" {
			t.Fatal("empty String()")
		}
	}
	if !seen[10] || !seen[11] || !seen[12] {
		t.Fatalf("flow ids %v", seen)
	}
}

func TestStopHaltsFlow(t *testing.T) {
	e := sim.NewEngine(5)
	n := nic.New(e, nic.Profile{Name: "tx", LineRateBps: packet.Gbps(10)}, "tx")
	q := n.NewQueue(1 << 16)
	s := &sink{}
	q.Connect(s, 0)
	f := Start(e, q, Config{ID: 1})
	e.RunUntil(sim.Millisecond)
	f.Stop()
	sentAtStop := f.Stats().SentSegments
	e.RunUntil(10 * sim.Millisecond)
	// A few in-flight pumps may still fire, but growth must stop.
	if got := f.Stats().SentSegments; got > sentAtStop+int64ToUint64(int(f.cfg.MaxCwnd)) {
		t.Fatalf("flow kept sending after Stop: %d -> %d", sentAtStop, got)
	}
}

func int64ToUint64(v int) uint64 { return uint64(v) }

func TestNoiseSegmentsAreNoiseKind(t *testing.T) {
	e := sim.NewEngine(6)
	n := nic.New(e, nic.Profile{Name: "tx", LineRateBps: packet.Gbps(10)}, "tx")
	q := n.NewQueue(1 << 16)
	var kinds []packet.Kind
	q.Connect(collectorFunc(func(p *packet.Packet, _ sim.Time) { kinds = append(kinds, p.Kind) }), 0)
	Start(e, q, Config{ID: 1, StopAt: 100 * sim.Microsecond})
	e.RunUntil(200 * sim.Microsecond)
	if len(kinds) == 0 {
		t.Fatal("no segments delivered")
	}
	for _, k := range kinds {
		if k != packet.KindNoise {
			t.Fatalf("segment kind %v, want noise", k)
		}
	}
}

type collectorFunc func(*packet.Packet, sim.Time)

func (f collectorFunc) Receive(p *packet.Packet, t sim.Time) { f(p, t) }
