// Package tcpsim implements a minimal TCP sender good enough to play the
// role of the paper's iperf3 noise: slow start, AIMD congestion
// avoidance, and timeout-based loss recovery. Eight such flows sharing a
// physical NIC with the replayer reproduce the §7.1 contention
// experiment, including its emergent drops.
package tcpsim

import (
	"fmt"

	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Config parameterizes one TCP flow.
type Config struct {
	// ID distinguishes flows (used in tags, ports and RNG labels).
	ID uint16
	// SegmentLen is the frame length of data segments (default 1514).
	SegmentLen int
	// RTT is the base round-trip time used for ACK return and RTO.
	RTT sim.Duration
	// InitialCwnd in segments (default 10).
	InitialCwnd int
	// MaxCwnd caps the window in segments (default 4096).
	MaxCwnd int
	// StartAt is when the flow begins.
	StartAt sim.Time
	// StopAt ends transmission (0 = never).
	StopAt sim.Time
	// Flow is the 5-tuple for header synthesis.
	Flow packet.FiveTuple
}

func (c *Config) defaults() {
	if c.SegmentLen == 0 {
		c.SegmentLen = 1514
	}
	if c.RTT == 0 {
		c.RTT = 100 * sim.Microsecond
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 10
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = 4096
	}
}

// Flow is one TCP sender pushing bulk data through a NIC queue.
type Flow struct {
	cfg      Config
	eng      *sim.Engine
	act      *sim.Actor
	q        *nic.Queue
	cwnd     float64 // in segments
	ssthresh float64
	inflight int
	nextSeq  uint64
	acked    uint64
	timeouts uint64
	sentSegs uint64
	stopped  bool
}

// Start launches a TCP flow that sends through q. The flow delivers its
// segments wherever q is connected; the receiver side is modelled by
// acknowledging each delivered segment after half an RTT (the Sink
// endpoint below).
func Start(eng *sim.Engine, q *nic.Queue, cfg Config) *Flow {
	cfg.defaults()
	f := &Flow{
		cfg:      cfg,
		eng:      eng,
		act:      eng.NewActor(),
		q:        q,
		cwnd:     float64(cfg.InitialCwnd),
		ssthresh: float64(cfg.MaxCwnd) / 2,
	}
	f.act.Post(cfg.StartAt, f.pump)
	return f
}

// Stats describes a flow's progress.
type Stats struct {
	SentSegments  uint64
	AckedSegments uint64
	Timeouts      uint64
	Cwnd          float64
}

// Stats returns a snapshot.
func (f *Flow) Stats() Stats {
	return Stats{SentSegments: f.sentSegs, AckedSegments: f.acked, Timeouts: f.timeouts, Cwnd: f.cwnd}
}

// Throughput returns the average goodput in bits per second over the
// flow's active period ending at now.
func (f *Flow) Throughput(now sim.Time) float64 {
	active := now - f.cfg.StartAt
	if active <= 0 {
		return 0
	}
	return float64(f.acked) * float64(f.cfg.SegmentLen) * 8 / active.Seconds()
}

// Stop halts the flow.
func (f *Flow) Stop() { f.stopped = true }

// pump fills the congestion window.
func (f *Flow) pump() {
	now := f.eng.Now()
	if f.stopped || (f.cfg.StopAt != 0 && now >= f.cfg.StopAt) {
		return
	}
	for f.inflight < int(f.cwnd) {
		n := int(f.cwnd) - f.inflight
		if n > tsoBatch {
			n = tsoBatch
		}
		f.sendBatch(n)
	}
}

// tsoBatch is the number of segments handed to the NIC per doorbell,
// matching a kernel TSO/GSO write of ~48 KiB.
const tsoBatch = 32

func (f *Flow) sendBatch(n int) {
	pkts := make([]*packet.Packet, n)
	for i := range pkts {
		pkts[i] = &packet.Packet{
			Tag:      packet.Tag{Replayer: 0xFFFF, Stream: f.cfg.ID, Seq: f.nextSeq},
			Kind:     packet.KindNoise,
			FrameLen: f.cfg.SegmentLen,
			Flow:     f.cfg.Flow,
		}
		f.nextSeq++
	}
	f.inflight += n
	f.sentSegs += uint64(n)
	f.q.SendBurst(pkts)
	// The receiver ACKs one RTT after the batch was handed to the NIC,
	// provided each segment actually reached the wire — a tail-dropped
	// segment is never serialized (SentAt stays zero) and is recovered
	// by the retransmission timeout instead.
	for _, p := range pkts {
		p := p
		acked := false
		f.act.PostAfter(f.cfg.RTT, func() {
			// Acked only if the segment was serialized in time for the
			// ACK to be back by now; a segment still queued (or pulled
			// but not yet on the wire) is recovered by the RTO.
			if p.SentAt != 0 && p.SentAt <= f.eng.Now() {
				acked = true
				f.onAck()
			}
		})
		// RTO at 4x RTT.
		f.act.PostAfter(4*f.cfg.RTT, func() {
			if !acked {
				f.onTimeout()
			}
		})
	}
}

func (f *Flow) onAck() {
	f.inflight--
	f.acked++
	if f.cwnd < f.ssthresh {
		f.cwnd++ // slow start
	} else {
		f.cwnd += 1 / f.cwnd // congestion avoidance
	}
	if max := float64(f.cfg.MaxCwnd); f.cwnd > max {
		f.cwnd = max
	}
	f.pump()
}

func (f *Flow) onTimeout() {
	f.inflight--
	f.timeouts++
	f.ssthresh = f.cwnd / 2
	if f.ssthresh < 2 {
		f.ssthresh = 2
	}
	f.cwnd = float64(f.cfg.InitialCwnd)
	f.pump()
}

// StartIperf launches n parallel flows (iperf3 -P n) through the given
// queues; queues may repeat if the flows share one VF.
func StartIperf(eng *sim.Engine, queues []*nic.Queue, n int, base Config) []*Flow {
	flows := make([]*Flow, n)
	for i := 0; i < n; i++ {
		cfg := base
		cfg.ID = base.ID + uint16(i)
		cfg.Flow.SrcPort = 40000 + uint16(i)
		flows[i] = Start(eng, queues[i%len(queues)], cfg)
	}
	return flows
}

// AggregateThroughput sums flow throughputs at now.
func AggregateThroughput(flows []*Flow, now sim.Time) float64 {
	var sum float64
	for _, f := range flows {
		sum += f.Throughput(now)
	}
	return sum
}

// String describes the flow.
func (f *Flow) String() string {
	return fmt.Sprintf("tcp-flow %d: sent=%d acked=%d timeouts=%d cwnd=%.1f",
		f.cfg.ID, f.sentSegs, f.acked, f.timeouts, f.cwnd)
}
