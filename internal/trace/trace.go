// Package trace holds received packet sequences — the unit the paper's
// consistency metrics compare. A Trace is what the recorder node captures
// during one trial: packets in arrival order with receive timestamps.
package trace

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Trace is an ordered packet capture from a single trial.
type Trace struct {
	// Name identifies the trial (e.g. "run-A").
	Name string
	// Packets in arrival order.
	Packets []*packet.Packet
	// Times[i] is the receive timestamp of Packets[i]. Timestamps are
	// non-decreasing.
	Times []sim.Time
}

// New returns an empty trace with capacity hint n.
func New(name string, n int) *Trace {
	return &Trace{
		Name:    name,
		Packets: make([]*packet.Packet, 0, n),
		Times:   make([]sim.Time, 0, n),
	}
}

// Append records a packet arrival.
func (t *Trace) Append(p *packet.Packet, at sim.Time) {
	t.Packets = append(t.Packets, p)
	t.Times = append(t.Times, at)
}

// Len returns the number of captured packets.
func (t *Trace) Len() int { return len(t.Packets) }

// Span returns the time between the first and last packet, or 0 for
// traces with fewer than two packets.
func (t *Trace) Span() sim.Duration {
	if len(t.Times) < 2 {
		return 0
	}
	return t.Times[len(t.Times)-1] - t.Times[0]
}

// Start returns the first packet's timestamp (0 when empty).
func (t *Trace) Start() sim.Time {
	if len(t.Times) == 0 {
		return 0
	}
	return t.Times[0]
}

// IATs returns the inter-arrival time sequence; element i is the gap
// before packet i, with IATs[0] == 0 (the paper's t_X0 == t_X(-1) base
// case).
func (t *Trace) IATs() []sim.Duration {
	out := make([]sim.Duration, len(t.Times))
	for i := 1; i < len(t.Times); i++ {
		out[i] = t.Times[i] - t.Times[i-1]
	}
	return out
}

// Normalize returns a copy whose first packet arrives at time 0; all
// other timestamps shift by the same amount. Metrics compare trials on
// trial-relative timelines.
func (t *Trace) Normalize() *Trace {
	out := &Trace{
		Name:    t.Name,
		Packets: t.Packets,
		Times:   make([]sim.Time, len(t.Times)),
	}
	if len(t.Times) == 0 {
		return out
	}
	t0 := t.Times[0]
	for i, tm := range t.Times {
		out.Times[i] = tm - t0
	}
	return out
}

// DataOnly returns a trace containing only replay-eligible data packets,
// discarding noise, control and invalid frames (the receiver's tag
// filter).
func (t *Trace) DataOnly() *Trace {
	out := New(t.Name, len(t.Packets))
	for i, p := range t.Packets {
		if p.Kind == packet.KindData {
			out.Append(p, t.Times[i])
		}
	}
	return out
}

// Rate returns the average packet rate in packets per second.
func (t *Trace) Rate() float64 {
	span := t.Span()
	if span <= 0 || t.Len() < 2 {
		return 0
	}
	return float64(t.Len()-1) / span.Seconds()
}

// Validate checks the trace's internal invariants: matching slice
// lengths and non-decreasing timestamps.
func (t *Trace) Validate() error {
	if len(t.Packets) != len(t.Times) {
		return fmt.Errorf("trace %s: %d packets but %d timestamps", t.Name, len(t.Packets), len(t.Times))
	}
	for i := 1; i < len(t.Times); i++ {
		if t.Times[i] < t.Times[i-1] {
			return fmt.Errorf("trace %s: timestamps decrease at %d: %v < %v", t.Name, i, t.Times[i], t.Times[i-1])
		}
	}
	return nil
}

// String summarizes the trace.
func (t *Trace) String() string {
	return fmt.Sprintf("trace %s: %d packets over %v", t.Name, t.Len(), t.Span())
}

// Filter returns a trace containing only packets for which keep returns
// true; timestamps are preserved.
func (t *Trace) Filter(keep func(p *packet.Packet, at sim.Time) bool) *Trace {
	out := New(t.Name, t.Len())
	for i, p := range t.Packets {
		if keep(p, t.Times[i]) {
			out.Append(p, t.Times[i])
		}
	}
	return out
}

// Between returns the packets with timestamps in [from, to), sharing
// the parent's backing arrays.
func (t *Trace) Between(from, to sim.Time) *Trace {
	lo := 0
	for lo < t.Len() && t.Times[lo] < from {
		lo++
	}
	hi := lo
	for hi < t.Len() && t.Times[hi] < to {
		hi++
	}
	return &Trace{Name: t.Name, Packets: t.Packets[lo:hi], Times: t.Times[lo:hi]}
}

// Merge combines two traces into one sequence ordered by timestamp —
// what a single observation point would have captured seeing both
// streams. Ties keep a's packet first.
func Merge(name string, a, b *Trace) *Trace {
	out := New(name, a.Len()+b.Len())
	i, j := 0, 0
	for i < a.Len() || j < b.Len() {
		takeA := j >= b.Len() || (i < a.Len() && a.Times[i] <= b.Times[j])
		if takeA {
			out.Append(a.Packets[i], a.Times[i])
			i++
		} else {
			out.Append(b.Packets[j], b.Times[j])
			j++
		}
	}
	return out
}
