package trace

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func mkTrace(times ...sim.Time) *Trace {
	t := New("t", len(times))
	for i, tm := range times {
		t.Append(&packet.Packet{Tag: packet.Tag{Seq: uint64(i)}, Kind: packet.KindData, FrameLen: 100}, tm)
	}
	return t
}

func TestEmptyTrace(t *testing.T) {
	tr := New("empty", 0)
	if tr.Len() != 0 || tr.Span() != 0 || tr.Start() != 0 || tr.Rate() != 0 {
		t.Fatal("empty trace should be all zeros")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := tr.Normalize(); n.Len() != 0 {
		t.Fatal("normalize of empty trace should be empty")
	}
}

func TestSpanAndStart(t *testing.T) {
	tr := mkTrace(100, 200, 450)
	if tr.Span() != 350 {
		t.Fatalf("Span = %v, want 350", tr.Span())
	}
	if tr.Start() != 100 {
		t.Fatalf("Start = %v, want 100", tr.Start())
	}
}

func TestIATs(t *testing.T) {
	tr := mkTrace(100, 150, 350)
	iats := tr.IATs()
	want := []sim.Duration{0, 50, 200}
	for i := range want {
		if iats[i] != want[i] {
			t.Fatalf("IATs[%d] = %v, want %v", i, iats[i], want[i])
		}
	}
}

func TestNormalize(t *testing.T) {
	tr := mkTrace(1000, 1100, 1300)
	n := tr.Normalize()
	if n.Times[0] != 0 || n.Times[1] != 100 || n.Times[2] != 300 {
		t.Fatalf("normalized times %v", n.Times)
	}
	// Original untouched.
	if tr.Times[0] != 1000 {
		t.Fatal("Normalize mutated the original")
	}
	// Packets shared (zero-copy).
	if n.Packets[0] != tr.Packets[0] {
		t.Fatal("Normalize should share packet pointers")
	}
}

func TestDataOnly(t *testing.T) {
	tr := New("mixed", 4)
	tr.Append(&packet.Packet{Kind: packet.KindData}, 1)
	tr.Append(&packet.Packet{Kind: packet.KindNoise}, 2)
	tr.Append(&packet.Packet{Kind: packet.KindInvalid}, 3)
	tr.Append(&packet.Packet{Kind: packet.KindData}, 4)
	d := tr.DataOnly()
	if d.Len() != 2 {
		t.Fatalf("DataOnly kept %d packets, want 2", d.Len())
	}
	if d.Times[0] != 1 || d.Times[1] != 4 {
		t.Fatalf("DataOnly times %v", d.Times)
	}
}

func TestRate(t *testing.T) {
	// 3 packets over 1 second: 2 intervals -> 2 pps... wait, rate counts
	// packets per second between first and last.
	tr := mkTrace(0, sim.Second/2, sim.Second)
	if got := tr.Rate(); got != 2 {
		t.Fatalf("Rate = %v, want 2", got)
	}
}

func TestValidateCatchesDisorder(t *testing.T) {
	tr := mkTrace(10, 5)
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted decreasing timestamps")
	}
}

func TestValidateCatchesLengthMismatch(t *testing.T) {
	tr := mkTrace(1, 2)
	tr.Times = tr.Times[:1]
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted mismatched lengths")
	}
}

func TestString(t *testing.T) {
	s := mkTrace(0, 10).String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestFilter(t *testing.T) {
	tr := mkTrace(0, 10, 20, 30)
	even := tr.Filter(func(p *packet.Packet, _ sim.Time) bool { return p.Tag.Seq%2 == 0 })
	if even.Len() != 2 || even.Packets[1].Tag.Seq != 2 {
		t.Fatalf("filter result: %v", even)
	}
}

func TestBetween(t *testing.T) {
	tr := mkTrace(0, 10, 20, 30, 40)
	mid := tr.Between(10, 30)
	if mid.Len() != 2 || mid.Times[0] != 10 || mid.Times[1] != 20 {
		t.Fatalf("between: %v", mid.Times)
	}
	if tr.Between(100, 200).Len() != 0 {
		t.Fatal("out-of-range window not empty")
	}
	// Shares backing arrays (no copy).
	if mid.Packets[0] != tr.Packets[1] {
		t.Fatal("Between copied packets")
	}
}

func TestMergeOrdersByTime(t *testing.T) {
	a := mkTrace(0, 100, 200)
	b := New("b", 3)
	for i, tm := range []sim.Time{50, 150, 250} {
		b.Append(&packet.Packet{Tag: packet.Tag{Replayer: 2, Seq: uint64(i)}, Kind: packet.KindData, FrameLen: 100}, tm)
	}
	m := Merge("merged", a, b)
	if m.Len() != 6 {
		t.Fatalf("merged %d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []sim.Time{0, 50, 100, 150, 200, 250}
	for i, tm := range want {
		if m.Times[i] != tm {
			t.Fatalf("merge order: %v", m.Times)
		}
	}
	// Ties prefer a.
	tie := Merge("tie", mkTrace(5), mkTrace(5))
	if tie.Len() != 2 {
		t.Fatal("tie merge")
	}
}

func TestMergeEmpty(t *testing.T) {
	a := mkTrace(1, 2)
	if got := Merge("m", a, New("e", 0)); got.Len() != 2 {
		t.Fatalf("merge with empty: %d", got.Len())
	}
	if got := Merge("m", New("e", 0), New("e2", 0)); got.Len() != 0 {
		t.Fatalf("empty merge: %d", got.Len())
	}
}
