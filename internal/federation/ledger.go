package federation

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// TrialPartial is one trial's κ evidence in custody form: the
// per-comparison partial sums, already offset into the trial's disjoint
// slot of the federation-global position space.
type TrialPartial struct {
	Idx  int
	Sums []*metrics.Sums
}

// Ledger is the κ-custody book: which site currently holds which
// trials' partials, and which partials were lost to site failure. It
// carries the fourth ring invariant — κ-partial conservation: at every
// instant, held + lost == assigned. The ring's OnHandoff/OnLost hooks
// drive it, so membership events can never silently duplicate or drop
// evidence.
type Ledger struct {
	mu       sync.Mutex
	held     map[string][]TrialPartial
	lost     []int
	assigned int
}

// NewLedger builds an empty custody book.
func NewLedger() *Ledger {
	return &Ledger{held: make(map[string][]TrialPartial)}
}

// Assign records that site now holds the partials of trial idx.
func (l *Ledger) Assign(site string, p TrialPartial) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.held[site] = append(l.held[site], p)
	l.assigned++
}

// Handoff moves every partial held by from into to's custody — the
// graceful-leave path.
func (l *Ledger) Handoff(from, to string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from == to {
		return
	}
	l.held[to] = append(l.held[to], l.held[from]...)
	delete(l.held, from)
}

// Lose marks every partial held by site as lost — the crash path.
func (l *Ledger) Lose(site string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range l.held[site] {
		l.lost = append(l.lost, p.Idx)
	}
	delete(l.held, site)
}

// heldBy returns a snapshot of the partials site currently holds.
func (l *Ledger) heldBy(site string) []TrialPartial {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]TrialPartial(nil), l.held[site]...)
}

// Held returns how many trials' partials site currently holds.
func (l *Ledger) Held(site string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.held[site])
}

// LostTrials returns the trial indices whose partials were lost, in
// ascending order.
func (l *Ledger) LostTrials() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := append([]int(nil), l.lost...)
	sort.Ints(out)
	return out
}

// Check asserts conservation against the sites the ring still considers
// alive: every held partial belongs to an alive site, no trial is both
// held and lost, and held + lost == assigned.
func (l *Ledger) Check(alive func(site string) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	seen := make(map[int]string)
	heldCount := 0
	for site, ps := range l.held {
		if len(ps) == 0 {
			continue
		}
		if alive != nil && !alive(site) {
			return fmt.Errorf("federation: dead site %q still holds %d partials", site, len(ps))
		}
		for _, p := range ps {
			if prev, dup := seen[p.Idx]; dup {
				return fmt.Errorf("federation: trial %d held by both %q and %q", p.Idx, prev, site)
			}
			seen[p.Idx] = site
			heldCount++
		}
	}
	for _, idx := range l.lost {
		if site, dup := seen[idx]; dup {
			return fmt.Errorf("federation: trial %d both lost and held by %q", idx, site)
		}
	}
	if heldCount+len(l.lost) != l.assigned {
		return fmt.Errorf("federation: conservation broken: %d held + %d lost != %d assigned",
			heldCount, len(l.lost), l.assigned)
	}
	return nil
}

// MergeSite folds one site's held partials (in trial order) into a
// single partial; nil if the site holds nothing. merges counts the
// non-trivial Merge operations so aggregation work is auditable and
// N-independent (total partials − 1 regardless of tree shape).
func (l *Ledger) MergeSite(site string, merges *int) *metrics.Sums {
	l.mu.Lock()
	ps := append([]TrialPartial(nil), l.held[site]...)
	l.mu.Unlock()
	sort.Slice(ps, func(i, j int) bool { return ps[i].Idx < ps[j].Idx })
	var acc *metrics.Sums
	for _, p := range ps {
		for _, s := range p.Sums {
			if acc == nil {
				acc = s.Clone()
				continue
			}
			acc.Merge(s)
			if merges != nil {
				*merges++
			}
		}
	}
	return acc
}

// MergeAll folds every held partial across all sites into one global
// partial (sites in name order, trials in index order within a site);
// nil if nothing is held. The fold order is immaterial — Assemble is
// order-free over merged partials — but keeping it canonical makes the
// intermediate accumulators reproducible too.
func (l *Ledger) MergeAll(merges *int) *metrics.Sums {
	l.mu.Lock()
	sites := make([]string, 0, len(l.held))
	for site := range l.held {
		sites = append(sites, site)
	}
	l.mu.Unlock()
	sort.Strings(sites)
	var acc *metrics.Sums
	for _, site := range sites {
		s := l.MergeSite(site, merges)
		if s == nil {
			continue
		}
		if acc == nil {
			acc = s
			continue
		}
		acc.Merge(s)
		if merges != nil {
			*merges++
		}
	}
	return acc
}
