package federation

import (
	"fmt"
	"math/rand"
	"testing"
)

// expectedLeader returns the name with the smallest ring ID — the
// protocol's election winner by definition.
func expectedLeader(names []string) string {
	best := names[0]
	for _, n := range names[1:] {
		if IDOf(n) < IDOf(best) {
			best = n
		}
	}
	return best
}

// TestElectionConvergesFromAnyPermutation: whatever order sites join
// in, stabilization converges every member's belief to the same unique
// leader — the member with the smallest ring ID.
func TestElectionConvergesFromAnyPermutation(t *testing.T) {
	base := make([]string, 7)
	for i := range base {
		base[i] = SiteName(i)
	}
	want := expectedLeader(base)
	perms := [][]string{append([]string(nil), base...)}
	rev := append([]string(nil), base...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	perms = append(perms, rev)
	rng := rand.New(rand.NewSource(5))
	for p := 0; p < 40; p++ {
		perm := append([]string(nil), base...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		perms = append(perms, perm)
	}
	for pi, perm := range perms {
		pi, perm := pi, perm
		t.Run(fmt.Sprintf("perm%d", pi), func(t *testing.T) {
			r := NewRing(RingConfig{})
			for _, n := range perm {
				if err := r.Join(n); err != nil {
					t.Fatal(err)
				}
			}
			if !r.RunToFixpoint(64) {
				t.Fatal("no fixpoint")
			}
			if err := r.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			got, ok := r.Coordinator()
			if !ok {
				t.Fatalf("no unique leader: %v", r.Leaders())
			}
			if got != want {
				t.Fatalf("leader %q, want %q (min ring ID)", got, want)
			}
			// Unanimity, not just agreement at the accessor level.
			for member, belief := range r.Leaders() {
				if belief != want {
					t.Fatalf("member %s believes leader is %s, want %s", member, belief, want)
				}
			}
		})
	}
}

// TestReElectionAfterLeaderFailure: crashing the coordinator forces a
// re-election that converges on the next-smallest ID, with invariants
// intact throughout the repair.
func TestReElectionAfterLeaderFailure(t *testing.T) {
	names := make([]string, 6)
	r := NewRing(RingConfig{})
	for i := range names {
		names[i] = SiteName(i)
		if err := r.Join(names[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !r.RunToFixpoint(64) {
		t.Fatal("no fixpoint")
	}
	leader, ok := r.Coordinator()
	if !ok {
		t.Fatal("no initial leader")
	}
	if err := r.Crash(leader); err != nil {
		t.Fatal(err)
	}
	var survivors []string
	for _, n := range names {
		if n != leader {
			survivors = append(survivors, n)
		}
	}
	want := expectedLeader(survivors)
	// Repair step by step, checking invariants after each one; the new
	// election must settle within bounded rounds.
	settled := false
	for round := 0; round < 64 && !settled; round++ {
		for _, n := range survivors {
			r.Stabilize(n)
			if err := r.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
		if got, ok := r.Coordinator(); ok && got == want {
			settled = true
		}
	}
	if !settled {
		t.Fatalf("re-election never settled on %q: %v", want, r.Leaders())
	}
}
