package federation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// EventKind enumerates the membership faults a schedule can inject at
// epoch barriers — fault injection aimed at the control plane itself
// rather than the data path.
type EventKind int

const (
	// EventCrash removes a site abruptly: its held κ partials are lost
	// and the affected trials degrade to annotated rows.
	EventCrash EventKind = iota
	// EventLeave removes a site gracefully: custody hands off to its
	// effective successor, losing nothing.
	EventLeave
	// EventSlow makes a site skip its next K stabilization steps.
	EventSlow
	// EventJoin adds a site mid-campaign.
	EventJoin
	// EventPartition cuts a site off from the portal group (group 1)
	// until healed; it keeps its partials but sits out epochs.
	EventPartition
	// EventHeal reunites all partition groups.
	EventHeal
)

func (k EventKind) String() string {
	switch k {
	case EventCrash:
		return "crash"
	case EventLeave:
		return "leave"
	case EventSlow:
		return "slow"
	case EventJoin:
		return "join"
	case EventPartition:
		return "partition"
	case EventHeal:
		return "heal"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one scheduled membership fault, applied at the barrier
// before epoch Epoch runs.
type Event struct {
	Epoch int
	Kind  EventKind
	Site  string // empty for EventHeal
	K     int    // EventSlow: steps to skip
}

// Schedule is a set of membership events ordered by epoch (stable for
// same-epoch events in insertion order).
type Schedule []Event

// At returns the events scheduled for the barrier before epoch e.
func (s Schedule) At(e int) []Event {
	var out []Event
	for _, ev := range s {
		if ev.Epoch == e {
			out = append(out, ev)
		}
	}
	return out
}

// Sorted returns the schedule ordered by epoch, stable within.
func (s Schedule) Sorted() Schedule {
	out := append(Schedule(nil), s...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

// ParseEvent parses a CLI-style event spec: "site@epoch" for crash /
// leave / join / partition, "site@epoch:k" for slow, "@epoch" for
// heal.
func ParseEvent(kind EventKind, spec string) (Event, error) {
	ev := Event{Kind: kind}
	site, rest, ok := strings.Cut(spec, "@")
	if !ok {
		return ev, fmt.Errorf("federation: %s spec %q: want site@epoch", kind, spec)
	}
	ev.Site = site
	if kind == EventHeal {
		if site != "" {
			return ev, fmt.Errorf("federation: heal spec %q: want @epoch", spec)
		}
	} else if site == "" {
		return ev, fmt.Errorf("federation: %s spec %q: missing site", kind, spec)
	}
	if kind == EventSlow {
		epoch, k, ok := strings.Cut(rest, ":")
		if !ok {
			return ev, fmt.Errorf("federation: slow spec %q: want site@epoch:steps", spec)
		}
		rest = epoch
		n, err := strconv.Atoi(k)
		if err != nil || n < 0 {
			return ev, fmt.Errorf("federation: slow spec %q: bad step count", spec)
		}
		ev.K = n
	}
	e, err := strconv.Atoi(rest)
	if err != nil || e < 0 {
		return ev, fmt.Errorf("federation: %s spec %q: bad epoch", kind, spec)
	}
	ev.Epoch = e
	return ev, nil
}
