package federation

import (
	"fmt"
	"sort"
)

// CheckInvariants asserts the ring's structural invariants on the
// current stored protocol state, per reachability group (a partition
// is judged only against what its members can see):
//
//   - At Most One Ring: the effective-successor graph has exactly one
//     cycle per group.
//   - Connected Appendages: every member's successor chain reaches
//     that cycle within |group| hops.
//   - Ordered Successors: walking the cycle visits site IDs in
//     clockwise order (exactly one wrap past the ID-space origin).
//
// "Effective successor" is what the member would actually use right
// now: its first alive reachable stored successor, corrected against
// the directory's closest clockwise member (effSuccLocked). The
// correction is what lets these invariants hold per-step *through* a
// partition heal — the stored lists legitimately describe two rings
// until stabilization rewrites them, but resolution never follows the
// stale ring past the portal's closer member. It is safe to call
// between any two protocol steps; the metamorphic suites call it after
// every one.
func (r *Ring) CheckInvariants() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	groups := make(map[int][]*member)
	for _, m := range r.members {
		groups[m.group] = append(groups[m.group], m)
	}
	gids := make([]int, 0, len(groups))
	for g := range groups {
		gids = append(gids, g)
	}
	sort.Ints(gids)
	for _, g := range gids {
		if err := r.checkGroup(g, groups[g]); err != nil {
			return err
		}
	}
	return nil
}

func (r *Ring) checkGroup(g int, ms []*member) error {
	sort.Slice(ms, func(i, j int) bool { return ms[i].id < ms[j].id })
	succ := make(map[SiteID]SiteID, len(ms))
	for _, m := range ms {
		succ[m.id] = r.effSuccLocked(m)
	}

	// Locate cycles in the functional graph with three-color walks.
	const (
		white = iota // unvisited
		gray         // on the current walk
		black        // settled
	)
	color := make(map[SiteID]int, len(ms))
	onCycle := make(map[SiteID]bool, len(ms))
	cycles := 0
	var firstCycle []SiteID
	for _, m := range ms {
		if color[m.id] != white {
			continue
		}
		var path []SiteID
		at := m.id
		for color[at] == white {
			color[at] = gray
			path = append(path, at)
			at = succ[at]
		}
		if color[at] == gray {
			// Closed a new cycle: the path suffix from `at` onward.
			cycles++
			start := 0
			for i, id := range path {
				if id == at {
					start = i
					break
				}
			}
			cyc := path[start:]
			for _, id := range cyc {
				onCycle[id] = true
			}
			if cycles == 1 {
				firstCycle = append([]SiteID(nil), cyc...)
			}
		}
		for _, id := range path {
			color[id] = black
		}
	}

	// At Most One Ring.
	if cycles > 1 {
		return fmt.Errorf("federation: group %d: %d rings (want at most one): %v",
			g, cycles, r.namesOf(onCycle))
	}
	if cycles == 0 && len(ms) > 0 {
		// Impossible for a total functional graph, but the checker
		// should say so rather than pass vacuously.
		return fmt.Errorf("federation: group %d: no ring among %d members", g, len(ms))
	}

	// Connected Appendages: every walk must land on the cycle within
	// |group| hops.
	for _, m := range ms {
		at := m.id
		for hop := 0; hop <= len(ms); hop++ {
			if onCycle[at] {
				break
			}
			if hop == len(ms) {
				return fmt.Errorf("federation: group %d: appendage %q never reaches the ring", g, m.name)
			}
			at = succ[at]
		}
	}

	// Ordered Successors: clockwise walk wraps the origin exactly once
	// (a single member's self-ring wraps zero times).
	if len(firstCycle) > 1 {
		wraps := 0
		for i, id := range firstCycle {
			next := firstCycle[(i+1)%len(firstCycle)]
			if succ[id] != next {
				return fmt.Errorf("federation: group %d: cycle bookkeeping broken at %d", g, id)
			}
			if next <= id {
				wraps++
			}
		}
		if wraps != 1 {
			return fmt.Errorf("federation: group %d: ring visits IDs out of clockwise order (%d wraps): %v",
				g, wraps, firstCycle)
		}
	}
	return nil
}

func (r *Ring) namesOf(ids map[SiteID]bool) []string {
	var names []string
	for id := range ids {
		if m := r.members[id]; m != nil {
			names = append(names, m.name)
		}
	}
	sort.Strings(names)
	return names
}
