package federation

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/testbed"
)

func testConfig(sites, reps int) Config {
	return Config{
		Sites: sites,
		Envs:  []testbed.Env{testbed.LocalSingle()},
		Conditions: []campaign.Condition{
			{Name: "clean"},
			{Name: "noisy", Plan: fault.Plan{Seed: 9, Drop: 0.02, Reorder: 0.01}},
		},
		Reps:    reps,
		Packets: 800,
		Runs:    2,
		Seed:    7,
	}
}

// identityCounters is the N-independent obs identity set the
// differential gate checks: total trials, lost partials, and merge
// operations (total partials − 1 regardless of merge tree shape).
func identityCounters(o *obs.Obs) [3]int64 {
	reg := o.Registry()
	return [3]int64{
		reg.Counter("federation_trials_total", "trials executed by the federation").Value(),
		reg.Counter("federation_partials_lost_total", "trial partials lost to site failure").Value(),
		reg.Counter("federation_merges_total", "partial-sum merge operations during aggregation").Value(),
	}
}

// TestFederatedMatchesSequential is the tentpole differential: the
// federated document, merged κ, and obs identity counters at 2/4/8
// sites are identical to the 1-site sequential run — clean and fault
// conditions both in the matrix.
func TestFederatedMatchesSequential(t *testing.T) {
	var refDoc string
	var refMerged [3]int64
	var refKappa float64
	for _, sites := range []int{1, 2, 4, 8} {
		cfg := testConfig(sites, 2)
		o := obs.New()
		cfg.Obs = o
		out, err := Run(cfg)
		if err != nil {
			t.Fatalf("sites=%d: %v", sites, err)
		}
		if out.Degraded {
			t.Fatalf("sites=%d: clean run degraded", sites)
		}
		if out.Merged == nil {
			t.Fatalf("sites=%d: no merged result", sites)
		}
		ctr := identityCounters(o)
		if sites == 1 {
			refDoc, refMerged, refKappa = out.Doc, ctr, out.Merged.Kappa
			continue
		}
		if out.Doc != refDoc {
			t.Fatalf("sites=%d: document diverges from sequential run:\n--- got ---\n%s\n--- want ---\n%s", sites, out.Doc, refDoc)
		}
		if out.Merged.Kappa != refKappa {
			t.Fatalf("sites=%d: merged κ %v != sequential %v", sites, out.Merged.Kappa, refKappa)
		}
		if ctr != refMerged {
			t.Fatalf("sites=%d: obs identity counters %v != sequential %v", sites, ctr, refMerged)
		}
	}
}

// tableRows extracts the per-trial rows of the pipe-delimited table as
// trimmed cell slices keyed by env|cond|rep.
func tableRows(doc string) map[string][]string {
	rows := map[string][]string{}
	for _, line := range strings.Split(doc, "\n") {
		if !strings.HasPrefix(line, "|") {
			continue
		}
		var cells []string
		for _, c := range strings.Split(strings.Trim(line, "|"), "|") {
			cells = append(cells, strings.TrimSpace(c))
		}
		switch cells[len(cells)-1] {
		case "ok", "lost", "failed", "unreachable":
			rows[strings.Join(cells[:3], "|")] = cells
		}
	}
	return rows
}

// TestFederatedCoordinatorDropDegrades crashes the elected coordinator
// mid-campaign: the federation must re-elect, finish, and render the
// surviving rows with values identical to the undisturbed run, with
// the coordinator's held trial annotated as lost — not abort.
func TestFederatedCoordinatorDropDegrades(t *testing.T) {
	cfg := testConfig(4, 4) // 16 trials → 4 epochs of 4
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Degraded {
		t.Fatal("undisturbed run degraded")
	}

	names := make([]string, cfg.Sites)
	for i := range names {
		names[i] = SiteName(i)
	}
	leader := expectedLeader(names)
	cfg2 := testConfig(4, 4)
	cfg2.Events = Schedule{{Epoch: 2, Kind: EventCrash, Site: leader}}
	dropped, err := Run(cfg2)
	if err != nil {
		t.Fatalf("coordinator crash aborted the campaign: %v", err)
	}
	if !dropped.Degraded {
		t.Fatal("coordinator crash did not degrade the result")
	}
	if dropped.Lost != 2 {
		t.Fatalf("lost %d trials, want 2 (one held per completed epoch)", dropped.Lost)
	}
	if dropped.Coordinator == leader {
		t.Fatalf("coordinator still %q after its crash", leader)
	}
	if !strings.Contains(dropped.Doc, "partials lost to site failure") {
		t.Fatalf("degraded document lacks the loss annotation:\n%s", dropped.Doc)
	}

	cleanRows, dropRows := tableRows(clean.Doc), tableRows(dropped.Doc)
	if len(cleanRows) != len(dropRows) {
		t.Fatalf("row count changed: %d vs %d", len(cleanRows), len(dropRows))
	}
	lost := 0
	for key, want := range cleanRows {
		got, ok := dropRows[key]
		if !ok {
			t.Fatalf("row %q missing from degraded table", key)
		}
		if got[len(got)-1] == "lost" {
			lost++
			continue
		}
		if strings.Join(got, " ") != strings.Join(want, " ") {
			t.Fatalf("surviving row %q diverged:\n got %v\nwant %v", key, got, want)
		}
	}
	if lost != 2 {
		t.Fatalf("%d lost rows in table, want 2", lost)
	}
}

// TestFederatedLeaveLosesNothing: a graceful leave hands custody to the
// successor, so the final document is byte-identical to an undisturbed
// run — nothing lost, nothing reflowed.
func TestFederatedLeaveLosesNothing(t *testing.T) {
	cfg := testConfig(4, 2) // 8 trials → 2 epochs
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(4, 2)
	cfg2.Events = Schedule{{Epoch: 1, Kind: EventLeave, Site: SiteName(1)}}
	left, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if left.Degraded || left.Lost != 0 {
		t.Fatalf("graceful leave lost partials: %+v", left)
	}
	if left.Doc != clean.Doc {
		t.Fatalf("leave changed the document:\n--- got ---\n%s\n--- want ---\n%s", left.Doc, clean.Doc)
	}
}

// TestFederatedSlowStabilizerHarmless: a slow stabilizer stretches
// membership repair but cannot change the rendered result.
func TestFederatedSlowStabilizerHarmless(t *testing.T) {
	cfg := testConfig(2, 2)
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(2, 2)
	cfg2.Events = Schedule{
		{Epoch: 0, Kind: EventSlow, Site: SiteName(0), K: 3},
		{Epoch: 1, Kind: EventSlow, Site: SiteName(1), K: 2},
	}
	slow, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Doc != clean.Doc {
		t.Fatal("slow stabilizer changed the document")
	}
}
