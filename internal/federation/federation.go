package federation

import (
	"fmt"
	"io"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/testbed"
)

// Config describes a federated replay campaign: the same deterministic
// (environment × condition × rep) trial matrix as internal/campaign,
// executed by N ring-coordinated sites in epochs with a membership
// barrier between epochs. The site count, assignment, and merge tree
// shape never influence the rendered result — federated output is
// byte-identical to Sites=1 — so everything N-dependent goes to Log,
// never the document.
type Config struct {
	// Sites is the number of simulated replay sites (default 4). Site
	// k is named "site<k>" and doubles as a fabric site whose slice
	// admission gates its membership.
	Sites int
	// SuccLen is the ring successor-list length (default 3).
	SuccLen int
	// Envs / Conditions / Reps / Packets / Runs / Seed mirror
	// campaign.Config: the trial matrix is expanded in the identical
	// deterministic order with the identical per-trial derived seeds.
	Envs       []testbed.Env
	Conditions []campaign.Condition
	Reps       int
	Packets    int
	Runs       int
	Seed       int64
	// Shards partitions each trial's simulation across psim event
	// domains (1 = sequential engine). Bit-identical either way.
	Shards int
	// Pool fans an epoch's trials out across workers (nil =
	// sequential); results are index-addressed so width never changes
	// the output.
	Pool *parallel.Pool
	// Obs receives federation counters and spans (nil-safe). The
	// identity set — trials run, partials lost, merge operations — is
	// N-independent by construction; per-site gauges are not and are
	// never part of the differential gates.
	Obs *obs.Obs
	// Events is the membership fault schedule, applied at epoch
	// barriers.
	Events Schedule
	// Log receives N-dependent federation diagnostics (elections,
	// assignments, handoffs); nil is silent. Never part of the
	// deterministic document.
	Log io.Writer
}

func (c Config) defaults() Config {
	if c.Sites <= 0 {
		c.Sites = 4
	}
	if len(c.Envs) == 0 {
		c.Envs = testbed.AllEnvironments()
	}
	if len(c.Conditions) == 0 {
		c.Conditions = []campaign.Condition{{Name: "clean"}}
	}
	if c.Reps == 0 {
		c.Reps = 2
	}
	if c.Packets == 0 {
		c.Packets = experiments.DefaultScale
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	return c
}

// seedStride matches campaign's per-trial seed spacing, so trial i of a
// federated run replays the exact trial i of the equivalent campaign.
const seedStride = 104729

// SiteName names site k ("site0", "site1", ...).
func SiteName(k int) string { return fmt.Sprintf("site%d", k) }

// posStride is the width of one comparison's slot in the
// federation-global position space: generous headroom over any trace
// the trial can produce (dup faults at most double the packet count).
func (c Config) posStride() int64 { return int64(8*c.Packets) + 1024 }

type trialSpec struct {
	Idx  int
	Env  testbed.Env
	Cond campaign.Condition
	Rep  int
	Seed int64
}

func (t trialSpec) Key() string {
	return fmt.Sprintf("%s|%s|rep%d", t.Env.Name, t.Cond.Name, t.Rep)
}

func (c Config) trials() []trialSpec {
	out := make([]trialSpec, 0, len(c.Envs)*len(c.Conditions)*c.Reps)
	for _, env := range c.Envs {
		for _, cond := range c.Conditions {
			for rep := 0; rep < c.Reps; rep++ {
				idx := len(out)
				out = append(out, trialSpec{
					Idx: idx, Env: env, Cond: cond, Rep: rep,
					Seed: c.Seed + int64(idx)*seedStride,
				})
			}
		}
	}
	return out
}

// trialState is a trial's terminal disposition, accumulated as epochs
// run and custody moves.
type trialState struct {
	spec       trialSpec
	ok         bool
	err        string
	mean       metrics.MeanResult
	maxMissing int
	sums       []*metrics.Sums
}

// Outcome is a federated campaign's result.
type Outcome struct {
	// Doc is the rendered document — byte-identical across site
	// counts, merge orders, and (for surviving rows) site failures.
	Doc string
	// Merged is the globally merged κ result assembled from every
	// surviving partial; nil when nothing survived.
	Merged *metrics.Result
	// Trials / Failed / Lost / Unreachable count the matrix: total,
	// failed to execute, partials lost to crashes, and partials
	// stranded behind an unhealed partition.
	Trials, Failed, Lost, Unreachable int
	// Coordinator is the final elected coordinator (diagnostic).
	Coordinator string
	// Alive are the sites still in the ring at the end, ring order.
	Alive []string
	// Epochs is how many epoch barriers ran.
	Epochs int
	// Degraded reports that any trial failed, was lost, or is
	// unreachable.
	Degraded bool
}

// Run executes the federated campaign. Site failures degrade the
// result (annotated rows, surviving rows intact); only a total
// federation collapse — no sites left to run a pending epoch — errors.
func Run(cfg Config) (*Outcome, error) {
	cfg = cfg.defaults()
	reg := cfg.Obs.Registry()
	ctrTrials := reg.Counter("federation_trials_total", "trials executed by the federation")
	gaugeAlive := reg.Gauge("federation_sites_alive", "sites currently in the ring")

	ledger := NewLedger()
	ring := NewRing(cfg.ringConfig(ledger))

	// Fabric admission: every site must hold an active slice for the
	// campaign's artifact topology before it may join the ring. The
	// trial environments stay the campaign's pinned envs — the slice
	// models the site's resource admission, not its timing personality
	// (deriving envs per site would make output depend on N).
	if err := cfg.admitSites(ring); err != nil {
		return nil, err
	}

	if !ring.RunToFixpoint(4 * (cfg.Sites + 1)) {
		return nil, fmt.Errorf("federation: initial ring failed to stabilize")
	}
	if err := ring.CheckInvariants(); err != nil {
		return nil, err
	}
	coord, active, ok := ring.Active()
	if !ok {
		return nil, fmt.Errorf("federation: no coordinator elected at start")
	}
	cfg.logf("federation: coordinator %s elected; %d sites synchronized for campaign start", coord, len(active))
	gaugeAlive.SetInt(int64(len(active)))

	all := cfg.trials()
	states := make([]*trialState, len(all))
	for i := range all {
		states[i] = &trialState{spec: all[i]}
	}
	cut := map[string]int{} // partitioned sites

	width := cfg.Sites
	epochs := (len(all) + width - 1) / width
	for e := 0; e < epochs; e++ {
		sp := cfg.Obs.SpanTrace().Root("epoch", "federation", obs.L("epoch", fmt.Sprintf("%d", e)))
		if err := cfg.applyEvents(e, ring, ledger, cut); err != nil {
			sp.SetError(err)
			sp.End()
			return nil, err
		}
		// Barrier: stabilize until the portal-side quorum agrees on a
		// coordinator again (re-election after a leader drop happens
		// here), then check the ring and custody invariants.
		coord, active, ok = cfg.barrier(ring)
		if !ok {
			err := fmt.Errorf("federation: epoch %d: no quorum (all sites gone or unreachable)", e)
			sp.SetError(err)
			sp.End()
			return nil, err
		}
		if err := ring.CheckInvariants(); err != nil {
			sp.SetError(err)
			sp.End()
			return nil, err
		}
		if err := ledger.Check(ring.Alive); err != nil {
			sp.SetError(err)
			sp.End()
			return nil, err
		}
		gaugeAlive.SetInt(int64(len(active)))
		lo, hi := e*width, (e+1)*width
		if hi > len(all) {
			hi = len(all)
		}
		cfg.logf("federation: epoch %d: coordinator %s assigns trials %d..%d across %d sites", e, coord, lo, hi-1, len(active))
		block := all[lo:hi]
		outs := make([]*trialState, len(block))
		perr := cfg.pool().Do(len(block), func(i int) error {
			outs[i] = cfg.runTrial(block[i])
			return nil
		})
		if perr != nil {
			sp.SetError(perr)
			sp.End()
			return nil, perr
		}
		for i, st := range outs {
			t := block[i]
			states[t.Idx] = st
			ctrTrials.Inc()
			if st.ok {
				site := active[t.Idx%len(active)]
				ledger.Assign(site, cfg.partialOf(t, st))
			}
		}
		sp.End()
	}

	// Final barrier: one more stabilization round so late membership
	// events (an epoch-indexed event beyond the last epoch is applied
	// here) settle before aggregation.
	if err := cfg.applyEvents(epochs, ring, ledger, cut); err != nil {
		return nil, err
	}
	coord, active, ok = cfg.barrier(ring)
	if !ok {
		return nil, fmt.Errorf("federation: no quorum at final barrier")
	}
	if err := ring.CheckInvariants(); err != nil {
		return nil, err
	}
	if err := ledger.Check(ring.Alive); err != nil {
		return nil, err
	}

	return cfg.assemble(ring, ledger, states, coord, active, epochs)
}

// ringConfig wires the ring's custody hooks into the ledger.
func (c Config) ringConfig(l *Ledger) RingConfig {
	return RingConfig{
		SuccLen: c.SuccLen,
		OnHandoff: func(from, to string) {
			c.logf("federation: %s hands %d trial partials to %s", from, l.Held(from), to)
			l.Handoff(from, to)
		},
		OnLost: func(name string) {
			if n := l.Held(name); n > 0 {
				c.logf("federation: %s lost %d trial partials", name, n)
			}
			l.Lose(name)
		},
	}
}

func (c Config) pool() *parallel.Pool { return c.Pool }

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// admitSites builds the fabric federation and, for every ring site, a
// generator→replayer→recorder slice whose Submit is the admission
// gate; a site that cannot get its slice never joins the ring.
func (c Config) admitSites(ring *Ring) error {
	specs := make([]fabric.SiteSpec, c.Sites)
	for k := range specs {
		specs[k] = fabric.SiteSpec{
			Name: SiteName(k), Cores: 64, RAMGiB: 512, DiskGiB: 4096,
			SharedVFs: 16, DedicatedNICs: 2, PTP: true,
		}
	}
	fed := fabric.NewFederation(specs...)
	for k := 0; k < c.Sites; k++ {
		name := SiteName(k)
		if err := admitSlice(fed, name); err != nil {
			return fmt.Errorf("federation: site %s admission: %w", name, err)
		}
		if err := ring.Join(name); err != nil {
			return err
		}
	}
	return nil
}

// admitSlice submits the three-VM artifact topology on one site.
func admitSlice(fed *fabric.Federation, site string) error {
	sl := fed.NewSlice(site + "/replay")
	gen, err := sl.AddNode("gen", site, 4, 16, 100)
	if err != nil {
		return err
	}
	rep, err := sl.AddNode("choir", site, 8, 32, 200)
	if err != nil {
		return err
	}
	rec, err := sl.AddNode("rec", site, 4, 16, 100)
	if err != nil {
		return err
	}
	gi, err := gen.AddNIC("gen0", fabric.SharedNIC)
	if err != nil {
		return err
	}
	ri, err := rep.AddNIC("choir0", fabric.SharedNIC)
	if err != nil {
		return err
	}
	ci, err := rec.AddNIC("rec0", fabric.SharedNIC)
	if err != nil {
		return err
	}
	if _, err := sl.AddService("br", fabric.L2Bridge, gi, ri, ci); err != nil {
		return err
	}
	return sl.Submit()
}

// applyEvents applies the membership events scheduled for epoch e.
func (c Config) applyEvents(e int, ring *Ring, ledger *Ledger, cut map[string]int) error {
	for _, ev := range c.Events.At(e) {
		c.logf("federation: epoch %d: %s %s", e, ev.Kind, ev.Site)
		switch ev.Kind {
		case EventCrash:
			if err := ring.Crash(ev.Site); err != nil {
				return err
			}
			delete(cut, ev.Site)
		case EventLeave:
			if err := ring.Leave(ev.Site); err != nil {
				return err
			}
			delete(cut, ev.Site)
		case EventSlow:
			if err := ring.SetSlow(ev.Site, ev.K); err != nil {
				return err
			}
		case EventJoin:
			if err := ring.Join(ev.Site); err != nil {
				return err
			}
		case EventPartition:
			if !ring.Alive(ev.Site) {
				return fmt.Errorf("federation: partition target %q not in ring", ev.Site)
			}
			cut[ev.Site] = 1
			ring.Partition(cut)
		case EventHeal:
			for s := range cut {
				delete(cut, s)
			}
			ring.Heal()
		default:
			return fmt.Errorf("federation: unknown event kind %v", ev.Kind)
		}
	}
	return nil
}

// barrier stabilizes until the portal-side quorum agrees on a
// coordinator (bounded rounds).
func (c Config) barrier(ring *Ring) (coord string, active []string, ok bool) {
	limit := 4 * (c.Sites + 2)
	for i := 0; i < limit; i++ {
		if coord, active, ok = ring.Active(); ok {
			return coord, active, true
		}
		ring.StabilizeAll()
	}
	coord, active, ok = ring.Active()
	return coord, active, ok
}

// runTrial executes one trial exactly as internal/campaign does: same
// per-trial fault-plan reseeding, same experiments.Run configuration —
// so trial i's traces, metrics and κ are bit-identical between a
// campaign, a 1-site federation, and an N-site federation.
func (c Config) runTrial(t trialSpec) *trialState {
	st := &trialState{spec: t}
	env := t.Env
	if !t.Cond.Plan.IsIdentity() {
		plan := t.Cond.Plan
		plan.Seed ^= uint64(t.Seed)
		env = plan.PerturbEnv(env)
	}
	out, err := experiments.Run(env, experiments.TrialConfig{
		Packets: c.Packets, Runs: c.Runs, Seed: t.Seed,
		Obs: c.Obs, Shards: c.Shards,
	})
	if err != nil {
		st.err = err.Error()
		return st
	}
	if len(out.Traces) == 0 || out.Traces[0].Len() == 0 {
		st.err = fmt.Sprintf("empty reference trace — recorder captured 0 of %d recorded packets", out.Recorded)
		return st
	}
	// Per-comparison partials, offset into the trial's global slots.
	// Assembling them reproduces out.Results bit for bit (asserted
	// here: a mismatch would silently corrupt the federated κ).
	sums := make([]*metrics.Sums, len(out.Results))
	stride := c.posStride()
	for i := range out.Results {
		s, err := metrics.TraceSums(out.Traces[0], out.Traces[i+1])
		if err != nil {
			st.err = err.Error()
			return st
		}
		slot := int64(t.Idx)*int64(len(out.Results)) + int64(i)
		if err := s.Offset(slot * stride); err != nil {
			st.err = err.Error()
			return st
		}
		if got, want := s.Assemble(), out.Results[i]; got.Kappa != want.Kappa ||
			got.U != want.U || got.O != want.O || got.L != want.L || got.I != want.I {
			st.err = fmt.Sprintf("partial-sum assembly diverged from direct comparison (κ %v vs %v)", got.Kappa, want.Kappa)
			return st
		}
		sums[i] = s
	}
	st.ok = true
	st.mean = out.Mean
	for _, m := range out.Missing {
		if m > st.maxMissing {
			st.maxMissing = m
		}
	}
	st.sums = sums
	return st
}

func (c Config) partialOf(t trialSpec, st *trialState) TrialPartial {
	return TrialPartial{Idx: t.Idx, Sums: st.sums}
}

// assemble merges surviving partials hierarchically up the ring and
// renders the document.
func (c Config) assemble(ring *Ring, ledger *Ledger, states []*trialState, coord string, active []string, epochs int) (*Outcome, error) {
	// Per-site folds in ring order, then a pairwise tree over the site
	// accumulators — the "up the ring" reduction. Assemble is
	// order-free over merged partials, so this equals the sequential
	// fold bit for bit (pinned by the differential tests).
	merges := 0
	var tier []*metrics.Sums
	for _, site := range active {
		if s := ledger.MergeSite(site, &merges); s != nil {
			tier = append(tier, s)
		}
	}
	for len(tier) > 1 {
		var next []*metrics.Sums
		for i := 0; i < len(tier); i += 2 {
			if i+1 < len(tier) {
				tier[i].Merge(tier[i+1])
				merges++
			}
			next = append(next, tier[i])
		}
		tier = next
	}
	var merged *metrics.Result
	if len(tier) == 1 {
		merged = tier[0].Assemble()
	}
	c.Obs.Registry().Counter("federation_merges_total", "partial-sum merge operations during aggregation").Add(int64(merges))

	lost := map[int]bool{}
	for _, idx := range ledger.LostTrials() {
		lost[idx] = true
	}
	c.Obs.Registry().Counter("federation_partials_lost_total", "trial partials lost to site failure").Add(int64(len(lost)))

	// Partials stranded on sites outside the active quorum (unhealed
	// partition): present, conserved, but unreachable for this render.
	unreachable := map[int]bool{}
	activeSet := map[string]bool{}
	for _, s := range active {
		activeSet[s] = true
	}
	for _, site := range ring.Names() {
		if activeSet[site] {
			continue
		}
		for _, p := range ledger.heldBy(site) {
			unreachable[p.Idx] = true
		}
	}

	out := &Outcome{
		Trials:      len(states),
		Coordinator: coord,
		Alive:       ring.Names(),
		Epochs:      epochs,
		Merged:      merged,
	}
	for _, st := range states {
		if !st.ok {
			out.Failed++
		} else if lost[st.spec.Idx] {
			out.Lost++
		} else if unreachable[st.spec.Idx] {
			out.Unreachable++
		}
	}
	out.Degraded = out.Failed+out.Lost+out.Unreachable > 0
	out.Doc = c.render(states, lost, unreachable, merged)
	return out, nil
}
