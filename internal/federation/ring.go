// Package federation runs one replay campaign across N simulated sites
// coordinated by a ring-membership protocol, merging per-site κ partial
// sums (metrics.Sums) hierarchically so the federated result is
// bit-identical to a single site folding the same partials sequentially.
//
// The membership layer is a Chord-style ring: every site keeps a short
// successor list and a predecessor pointer, repaired by per-site
// stabilization steps. Unlike pure Chord, stabilization is
// directory-assisted — when a site's entire stored successor list is
// dead or partitioned away, it rescues by asking the portal directory
// for the closest clockwise reachable member (the FABRIC-style portal
// already knows the roster; what the ring adds is the failure-driven
// repair dynamics in between, which is where the invariants live).
// That keeps the protocol convergent across partition heal — a case
// pure predecessor-adoption cannot repair — while still exposing every
// adversarial intermediate state to the invariant checker.
//
// Invariants (checked by CheckInvariants, in the style of
// compositional-testing network simulators: protocol properties as
// metamorphic assertions over adversarial schedules):
//
//   - At Most One Ring: within each reachable partition group, the
//     effective-successor graph contains at most one cycle.
//   - Connected Appendages: every alive member's successor chain
//     reaches that cycle.
//   - Ordered Successors: walking the cycle visits site IDs in
//     clockwise (circular ascending) order.
//   - κ-partial conservation is the fourth invariant; it lives in the
//     custody Ledger (ledger.go) fed by the OnHandoff/OnLost hooks.
package federation

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// SiteID is a position on the identifier ring. IDs are derived from
// site names by hashing; the zero ID is reserved as "unset".
type SiteID uint64

// IDOf maps a site name onto the ring. Deterministic across runs; the
// reserved zero value is never produced.
func IDOf(name string) SiteID {
	h := fnv.New64a()
	h.Write([]byte(name))
	id := SiteID(h.Sum64())
	if id == 0 {
		id = 1
	}
	return id
}

// between reports whether x lies strictly inside the clockwise arc
// (a, b) on the ring. When a == b the arc is the whole circle minus a.
func between(a, x, b SiteID) bool {
	switch {
	case a < b:
		return a < x && x < b
	case a > b:
		return x > a || x < b
	default:
		return x != a
	}
}

type member struct {
	name   string
	id     SiteID
	succ   []SiteID // stored successor list, nearest-first; may go stale
	pred   SiteID   // last notifier claiming to precede us (0 = unset)
	leader SiteID   // current coordinator belief, gossiped via successors
	group  int      // partition group; members in different groups can't talk
	slow   int      // pending stabilization steps to skip (slow-stabilizer fault)
}

// RingConfig parameterizes a Ring.
type RingConfig struct {
	// SuccLen is the successor-list length (default 3). Longer lists
	// survive more simultaneous failures between stabilizations.
	SuccLen int
	// OnHandoff fires when a gracefully leaving site transfers its κ
	// partials to its effective successor.
	OnHandoff func(from, to string)
	// OnLost fires when a site's κ partials are lost: a crash, or a
	// leave with no reachable successor to hand off to.
	OnLost func(name string)
}

// Ring is the simulated membership protocol state for all sites. All
// methods are safe for concurrent use; each Stabilize call is one
// atomic protocol step, so concurrent stabilizers interleave exactly
// like the message-level protocol would.
type Ring struct {
	mu      sync.Mutex
	cfg     RingConfig
	members map[SiteID]*member
	byName  map[string]SiteID
	steps   uint64
}

// NewRing builds an empty ring.
func NewRing(cfg RingConfig) *Ring {
	if cfg.SuccLen <= 0 {
		cfg.SuccLen = 3
	}
	return &Ring{
		cfg:     cfg,
		members: make(map[SiteID]*member),
		byName:  make(map[string]SiteID),
	}
}

// Steps returns the number of stabilization steps executed so far
// (skipped slow-stabilizer steps included).
func (r *Ring) Steps() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.steps
}

// Join adds a site. The joiner bootstraps its successor list from the
// directory (one contact: its closest clockwise reachable member), like
// a portal handing a new site its first neighbor; stabilization fills
// in the rest. Duplicate names and ID collisions error.
func (r *Ring) Join(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return fmt.Errorf("federation: site %q already joined", name)
	}
	id := IDOf(name)
	if _, ok := r.members[id]; ok {
		return fmt.Errorf("federation: site %q collides on ring id %d", name, id)
	}
	m := &member{name: name, id: id, leader: id}
	r.members[id] = m
	r.byName[name] = id
	if s := r.rescue(m); s != 0 {
		m.succ = []SiteID{s}
	}
	return nil
}

// Leave removes a site gracefully: its κ custody is handed to its
// effective successor (OnHandoff), or declared lost (OnLost) if it is
// alone or cut off from every other member.
func (r *Ring) Leave(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.member(name)
	if m == nil {
		return fmt.Errorf("federation: site %q not in ring", name)
	}
	if s := r.effSuccLocked(m); s != 0 && s != m.id {
		if r.cfg.OnHandoff != nil {
			r.cfg.OnHandoff(name, r.members[s].name)
		}
	} else if r.cfg.OnLost != nil {
		r.cfg.OnLost(name)
	}
	r.remove(m)
	return nil
}

// Crash removes a site abruptly: no handoff, custody lost. Other
// members' stored successor lists keep the stale ID until
// stabilization repairs them.
func (r *Ring) Crash(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.member(name)
	if m == nil {
		return fmt.Errorf("federation: site %q not in ring", name)
	}
	if r.cfg.OnLost != nil {
		r.cfg.OnLost(name)
	}
	r.remove(m)
	return nil
}

func (r *Ring) remove(m *member) {
	delete(r.members, m.id)
	delete(r.byName, m.name)
}

// Partition splits the membership into reachability groups: sites in
// different groups cannot exchange protocol messages. Unnamed sites
// stay in group 0.
func (r *Ring) Partition(groups map[string]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.members {
		m.group = groups[m.name]
	}
}

// Heal merges all partition groups back into one.
func (r *Ring) Heal() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.members {
		m.group = 0
	}
}

// SetSlow makes a site skip its next k stabilization steps — the
// slow-stabilizer fault, which stretches the window during which other
// members see its stale state.
func (r *Ring) SetSlow(name string, k int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.member(name)
	if m == nil {
		return fmt.Errorf("federation: site %q not in ring", name)
	}
	m.slow = k
	return nil
}

func (r *Ring) member(name string) *member {
	id, ok := r.byName[name]
	if !ok {
		return nil
	}
	return r.members[id]
}

func (r *Ring) reachable(a, b *member) bool {
	return a != nil && b != nil && a.group == b.group
}

// effSuccLocked resolves m's effective successor: the first stored
// successor that is alive and reachable, corrected against the portal
// directory — when the directory knows a member strictly closer
// clockwise (a healed partition's other half, a join m never learned
// about), that member is the true successor. Without the correction a
// partition heal leaves the effective-successor graph describing two
// alive rings in one group until stabilization happens to visit every
// member — a transient the per-step invariant checks reject. Stabilize
// converges to the same choice (its successor adoption is bounded by
// the identical rescue), so hoisting the correction here changes no
// protocol fixpoint; it makes the resolution — what Leave hands custody
// to, what Successor reports, what the checker walks — agree with it
// at every intermediate step.
// Returns 0 only when m is nil; returns m.id when m is effectively
// alone (self-ring).
func (r *Ring) effSuccLocked(m *member) SiteID {
	if m == nil {
		return 0
	}
	var best SiteID
	for _, id := range m.succ {
		if id == m.id {
			continue
		}
		if s := r.members[id]; s != nil && r.reachable(m, s) {
			best = id
			break
		}
	}
	if d := r.rescue(m); d != 0 && (best == 0 || between(m.id, d, best)) {
		best = d
	}
	if best == 0 {
		return m.id
	}
	return best
}

// rescue returns the closest clockwise alive reachable member after m,
// or 0 if m is alone in its group.
func (r *Ring) rescue(m *member) SiteID {
	var best SiteID
	var bestDist uint64
	found := false
	for id, o := range r.members {
		if id == m.id || !r.reachable(m, o) {
			continue
		}
		d := uint64(id) - uint64(m.id) // wraps: clockwise distance
		if !found || d < bestDist {
			found, best, bestDist = true, id, d
		}
	}
	if !found {
		return 0
	}
	return best
}

// Stabilize runs one protocol step for the named site: resolve the
// effective successor, adopt the successor's predecessor if it sits
// between, rebuild the successor list from the successor's, notify the
// successor, and gossip the coordinator belief. Unknown names are
// no-ops (the site may have crashed since the schedule was drawn).
func (r *Ring) Stabilize(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.member(name)
	if m == nil {
		return
	}
	r.steps++
	if m.slow > 0 {
		m.slow--
		return
	}
	sid := r.effSuccLocked(m)
	if sid == 0 || sid == m.id {
		// Alone: self-ring, self-leader.
		m.succ = nil
		m.pred = 0
		m.leader = m.id
		return
	}
	s := r.members[sid]
	// Chord rectification: if our successor knows a predecessor between
	// us and it, that member is our true successor. (Directory sync —
	// the correction that makes partition heal convergent — already
	// happened inside effSuccLocked, so sid is never farther clockwise
	// than the portal's closest known member.)
	if p := r.members[s.pred]; p != nil && p.id != m.id && r.reachable(m, p) && between(m.id, p.id, s.id) {
		sid, s = p.id, p
	}
	// Rebuild the successor list: s first, then s's list, deduped.
	list := make([]SiteID, 0, r.cfg.SuccLen)
	list = append(list, sid)
	for _, x := range s.succ {
		if len(list) >= r.cfg.SuccLen {
			break
		}
		if x == m.id || x == sid {
			continue
		}
		dup := false
		for _, y := range list {
			if y == x {
				dup = true
				break
			}
		}
		if !dup {
			list = append(list, x)
		}
	}
	m.succ = list
	// Notify: claim the predecessor slot if it is unset, stale, or we
	// sit between the current predecessor and s.
	if p := r.members[s.pred]; p == nil || !r.reachable(s, p) || between(s.pred, m.id, s.id) {
		s.pred = m.id
	}
	// Drop a stale own-predecessor so rectification can't resurrect it.
	if p := r.members[m.pred]; p == nil || !r.reachable(m, p) {
		m.pred = 0
	}
	// Coordinator gossip: smallest reachable alive ID wins. Reset a
	// dead or unreachable belief to self first.
	if p := r.members[m.leader]; p == nil || !r.reachable(m, p) {
		m.leader = m.id
	}
	if sl := r.members[s.leader]; sl != nil && r.reachable(m, sl) && s.leader < m.leader {
		m.leader = s.leader
	}
	if m.id < m.leader {
		m.leader = m.id
	}
}

// StabilizeAll runs one Stabilize step for every member in ID order.
func (r *Ring) StabilizeAll() {
	for _, name := range r.Names() {
		r.Stabilize(name)
	}
}

// RunToFixpoint stabilizes all members repeatedly until a full round
// changes no protocol state or maxRounds is hit; reports convergence.
func (r *Ring) RunToFixpoint(maxRounds int) bool {
	for i := 0; i < maxRounds; i++ {
		before := r.snapshot()
		r.StabilizeAll()
		if r.snapshot() == before {
			return true
		}
	}
	return false
}

func (r *Ring) snapshot() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]SiteID, 0, len(r.members))
	for id := range r.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s := ""
	for _, id := range ids {
		m := r.members[id]
		s += fmt.Sprintf("%d:%v/%d/%d/%d/%d;", id, m.succ, m.pred, m.leader, m.group, m.slow)
	}
	return s
}

// Names returns the alive site names sorted by ring ID (clockwise from
// the smallest ID) — the canonical federation order used for trial
// assignment.
func (r *Ring) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]SiteID, 0, len(r.members))
	for id := range r.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = r.members[id].name
	}
	return names
}

// Alive reports whether the named site is currently a member.
func (r *Ring) Alive(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.member(name) != nil
}

// Leaders returns every member's current coordinator belief, by name.
func (r *Ring) Leaders() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.members))
	for _, m := range r.members {
		l := r.members[m.leader]
		if l == nil {
			l = m
		}
		out[m.name] = l.name
	}
	return out
}

// Coordinator returns the unique agreed leader, or ok=false while
// beliefs still disagree (or the ring is empty). With partitions
// active it requires global agreement and thus reports false.
func (r *Ring) Coordinator() (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var want SiteID
	for _, m := range r.members {
		if want == 0 {
			want = m.leader
		} else if m.leader != want {
			return "", false
		}
	}
	l := r.members[want]
	if l == nil {
		return "", false
	}
	return l.name, true
}

// Active returns the portal-side quorum: the members that can reach
// the directory (partition group 0) in ring order, plus their agreed
// coordinator. ok is false while those members still disagree on a
// leader (or the group is empty) — the epoch barrier spins
// stabilization until it flips true.
func (r *Ring) Active() (leader string, names []string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ids []SiteID
	var want SiteID
	agree := true
	for id, m := range r.members {
		if m.group != 0 {
			continue
		}
		ids = append(ids, id)
		if want == 0 {
			want = m.leader
		} else if m.leader != want {
			agree = false
		}
	}
	if len(ids) == 0 {
		return "", nil, false
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	names = make([]string, len(ids))
	for i, id := range ids {
		names[i] = r.members[id].name
	}
	l := r.members[want]
	if !agree || l == nil || l.group != 0 {
		return "", names, false
	}
	return l.name, names, true
}

// Successor returns the named site's current effective successor name
// (its own name when alone) — the custody handoff target.
func (r *Ring) Successor(name string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.member(name)
	if m == nil {
		return "", false
	}
	s := r.members[r.effSuccLocked(m)]
	if s == nil {
		return m.name, true
	}
	return s.name, true
}
