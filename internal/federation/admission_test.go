package federation

import (
	"testing"

	"repro/internal/fabric/fabrictest"
)

// TestAdmitSliceCapacity exercises fabric admission with the shared
// fabrictest fixtures: the campaign's three-VM replay slice (16 cores,
// 64 GiB, 3 shared VFs) fits site A of the tiny federation exactly and
// is rejected by the smaller site B — the admission gate that keeps an
// under-provisioned site out of the ring.
func TestAdmitSliceCapacity(t *testing.T) {
	f := fabrictest.TinyFederation()
	if err := admitSlice(f, "A"); err != nil {
		t.Fatalf("site A (16 cores) should admit the replay slice: %v", err)
	}
	siteA, ok := f.Site("A")
	if !ok {
		t.Fatal("site A missing")
	}
	if siteA.Utilization() == 0 {
		t.Fatal("admission did not allocate on site A")
	}
	if err := admitSlice(f, "B"); err == nil {
		t.Fatal("site B (8 cores) admitted a 16-core slice")
	}
	// The failed admission must not leak partial allocations.
	siteB, ok := f.Site("B")
	if !ok {
		t.Fatal("site B missing")
	}
	if siteB.Utilization() != 0 {
		t.Fatal("failed admission leaked resources on site B")
	}
	// A second tenant on the now-full site A must also bounce cleanly.
	if err := admitSlice(f, "A"); err == nil {
		t.Fatal("site A admitted a second full-size slice at zero headroom")
	}
}

// TestWideFederationAdmitsAll: the uniform generous fixture admits the
// replay slice on every site — the provisioning shape Run assumes.
func TestWideFederationAdmitsAll(t *testing.T) {
	f := fabrictest.Wide(8)
	for _, name := range f.SiteNames() {
		if err := admitSlice(f, name); err != nil {
			t.Fatalf("site %s rejected the replay slice: %v", name, err)
		}
	}
}
