package federation

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/report"
)

// render builds the deterministic campaign document. Nothing here may
// depend on the site count, trial assignment, or merge tree shape:
// `fedsim -sites 1` and `-sites 8` must render byte-identical output
// (the verify.sh gate cmp's them), and a degraded run must render the
// surviving rows byte-identically to an undisturbed one. Site failures
// therefore show up only as annotated rows and the degraded section —
// never as reflowed or renumbered surviving rows.
func (c Config) render(states []*trialState, lost, unreachable map[int]bool, merged *metrics.Result) string {
	doc := &report.Document{Title: "Federated replay campaign"}
	condNames := make([]string, len(c.Conditions))
	for i, cond := range c.Conditions {
		condNames[i] = cond.Name
	}
	doc.Add("campaign", fmt.Sprintf(
		"%d trials = %d environments × %d conditions (%s) × %d reps; %d packets × %d replay runs per trial; base seed %d",
		len(states), len(c.Envs), len(c.Conditions),
		strings.Join(condNames, ", "), c.Reps, c.Packets, c.Runs, c.Seed))

	tb := report.NewTable("", "Environment", "Condition", "Rep", "U", "O", "I", "L", "κ", "Max drops", "Status")
	var n int
	var u, o, iacc, l, k float64
	for _, st := range states {
		t := st.spec
		switch {
		case !st.ok:
			tb.AddRow(t.Env.Name, t.Cond.Name, fmt.Sprintf("%d", t.Rep),
				"—", "—", "—", "—", "—", "—", "failed")
		case lost[t.Idx]:
			tb.AddRow(t.Env.Name, t.Cond.Name, fmt.Sprintf("%d", t.Rep),
				"—", "—", "—", "—", "—", "—", "lost")
		case unreachable[t.Idx]:
			tb.AddRow(t.Env.Name, t.Cond.Name, fmt.Sprintf("%d", t.Rep),
				"—", "—", "—", "—", "—", "—", "unreachable")
		default:
			m := st.mean
			tb.AddRow(t.Env.Name, t.Cond.Name, fmt.Sprintf("%d", t.Rep),
				report.G(m.U), report.G(m.O), report.G(m.I), report.G(m.L),
				fmt.Sprintf("%.4f", m.Kappa), fmt.Sprintf("%d", st.maxMissing), "ok")
			n++
			u += m.U
			o += m.O
			iacc += m.I
			l += m.L
			k += m.Kappa
		}
	}
	doc.Add("", tb.String())

	var agg []string
	if n > 0 {
		fn := float64(n)
		agg = append(agg, fmt.Sprintf("mean over %d/%d trials: U=%s O=%s I=%s L=%s κ=%.4f",
			n, len(states), report.G(u/fn), report.G(o/fn), report.G(iacc/fn), report.G(l/fn), k/fn))
	} else {
		agg = append(agg, fmt.Sprintf("mean over 0/%d trials: —", len(states)))
	}
	if merged != nil {
		agg = append(agg, fmt.Sprintf("merged partial sums (%d comparisons): U=%s O=%s I=%s L=%s κ=%.4f IAT≤10ns=%s",
			n*(c.Runs-1), report.G(merged.U), report.G(merged.O), report.G(merged.I), report.G(merged.L),
			merged.Kappa, report.Pct(merged.PctIATWithin10)))
	} else {
		agg = append(agg, "merged partial sums: none survived")
	}
	doc.Add("aggregate", strings.Join(agg, "\n"))

	// Degraded trials, matrix order: what the annotations discount.
	var degr []string
	for _, st := range states {
		t := st.spec
		switch {
		case !st.ok:
			degr = append(degr, fmt.Sprintf("%s — failed: %s", t.Key(), st.err))
		case lost[t.Idx]:
			degr = append(degr, fmt.Sprintf("%s — partials lost to site failure", t.Key()))
		case unreachable[t.Idx]:
			degr = append(degr, fmt.Sprintf("%s — partials stranded behind an unhealed partition", t.Key()))
		}
	}
	if len(degr) > 0 {
		doc.Add("degraded trials", strings.Join(degr, "\n")+"\n")
	}
	return doc.String()
}
