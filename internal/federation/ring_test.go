package federation

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// tinyTrace builds a small seeded trace with a few drops so partials
// carry non-trivial sums.
func tinyTrace(name string, n int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New(name, n)
	at := sim.Time(0)
	for i := 0; i < n; i++ {
		if rng.Intn(10) == 0 {
			continue
		}
		at += sim.Duration(50 + rng.Intn(40))
		tr.Append(&packet.Packet{Tag: packet.Tag{Seq: uint64(i)}, Kind: packet.KindData, FrameLen: 64}, at)
	}
	return tr
}

// fakePartial builds trial idx's custody payload: one real TraceSums
// partial offset into the trial's disjoint slot.
func fakePartial(t *testing.T, idx int) TrialPartial {
	t.Helper()
	a := tinyTrace("A", 24, int64(idx)*7+1)
	b := tinyTrace("B", 24, int64(idx)*13+5)
	s, err := metrics.TraceSums(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Offset(int64(idx) * 4096); err != nil {
		t.Fatal(err)
	}
	return TrialPartial{Idx: idx, Sums: []*metrics.Sums{s}}
}

// custodyHarness wires a ring to a ledger plus an oracle copy of every
// assigned partial, so conservation can be asserted against ground
// truth after any interleaving of membership events.
type custodyHarness struct {
	ledger *Ledger
	oracle map[int]*metrics.Sums
	lost   map[int]bool
}

func newCustodyHarness() (*custodyHarness, RingConfig) {
	h := &custodyHarness{
		ledger: NewLedger(),
		oracle: map[int]*metrics.Sums{},
		lost:   map[int]bool{},
	}
	cfg := RingConfig{
		OnHandoff: func(from, to string) { h.ledger.Handoff(from, to) },
		OnLost: func(name string) {
			for _, p := range h.ledger.heldBy(name) {
				h.lost[p.Idx] = true
			}
			h.ledger.Lose(name)
		},
	}
	return h, cfg
}

func (h *custodyHarness) assign(t *testing.T, site string, idx int) {
	t.Helper()
	p := fakePartial(t, idx)
	h.oracle[idx] = p.Sums[0]
	h.ledger.Assign(site, p)
}

// checkConservation asserts the fourth ring invariant: the merged held
// partials assemble to exactly the fold of every assigned-and-not-lost
// partial — custody moves never duplicate, drop, or corrupt κ evidence.
func (h *custodyHarness) checkConservation(t *testing.T, r *Ring) {
	t.Helper()
	if err := h.ledger.Check(r.Alive); err != nil {
		t.Fatal(err)
	}
	got := h.ledger.MergeAll(nil)
	var want *metrics.Sums
	for idx, s := range h.oracle {
		if h.lost[idx] {
			continue
		}
		if want == nil {
			want = s.Clone()
			continue
		}
		want.Merge(s)
	}
	switch {
	case got == nil && want == nil:
		return
	case got == nil || want == nil:
		t.Fatalf("conservation: held=%v want=%v", got, want)
	}
	g, w := got.Assemble(), want.Assemble()
	if !sameResult(g, w) {
		t.Fatalf("conservation: merged partials assemble to %+v, oracle fold to %+v", g, w)
	}
}

// sameResult compares every assembled metric field exactly (bitwise on
// the floats — the federation promises identity, not approximation).
func sameResult(a, b *metrics.Result) bool {
	return a.U == b.U && a.O == b.O && a.L == b.L && a.I == b.I &&
		a.Kappa == b.Kappa && a.PctIATWithin10 == b.PctIATWithin10 &&
		a.Common == b.Common && a.OnlyA == b.OnlyA && a.OnlyB == b.OnlyB &&
		a.MovedPackets == b.MovedPackets
}

// TestRingInvariantsAdversarialSchedules is the metamorphic headline:
// across seeded adversarial join/leave/crash/slow schedules, the three
// structural ring invariants and κ-partial conservation hold after
// every single stabilization step — not just at quiescence.
func TestRingInvariantsAdversarialSchedules(t *testing.T) {
	for _, seed := range []int64{3, 17, 29, 101} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			h, cfg := newCustodyHarness()
			r := NewRing(cfg)
			nextSite, nextTrial := 0, 0
			join := func() string {
				name := SiteName(nextSite)
				nextSite++
				if err := r.Join(name); err != nil {
					t.Fatal(err)
				}
				h.assign(t, name, nextTrial)
				nextTrial++
				return name
			}
			for i := 0; i < 6; i++ {
				join()
			}
			check := func() {
				if err := r.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				h.checkConservation(t, r)
			}
			check()
			for op := 0; op < 500; op++ {
				names := r.Names()
				switch x := rng.Intn(100); {
				case x < 60: // stabilize a random member
					r.Stabilize(names[rng.Intn(len(names))])
				case x < 70: // stabilize a name that may be long gone
					r.Stabilize(SiteName(rng.Intn(nextSite)))
				case x < 78:
					join()
				case x < 86 && len(names) > 1: // graceful leave
					if err := r.Leave(names[rng.Intn(len(names))]); err != nil {
						t.Fatal(err)
					}
				case x < 90 && len(names) > 1: // crash
					if err := r.Crash(names[rng.Intn(len(names))]); err != nil {
						t.Fatal(err)
					}
				case x < 94: // partition a random subset, or heal one
					if rng.Intn(3) == 0 {
						r.Heal()
					} else {
						cut := map[string]int{}
						for _, n := range names {
							if rng.Intn(3) == 0 {
								cut[n] = 1
							}
						}
						r.Partition(cut)
					}
				default:
					if err := r.SetSlow(names[rng.Intn(len(names))], 1+rng.Intn(4)); err != nil {
						t.Fatal(err)
					}
				}
				check()
			}
			// The schedule must end convergent: fixpoint, one
			// coordinator, invariants intact (heal first — the schedule
			// may end mid-partition, where no global coordinator can
			// exist by design).
			r.Heal()
			check()
			if !r.RunToFixpoint(64) {
				t.Fatal("ring did not reach a fixpoint")
			}
			check()
			if _, ok := r.Coordinator(); !ok {
				t.Fatalf("no coordinator after fixpoint: %v", r.Leaders())
			}
		})
	}
}

// TestRingPartitionHeal exercises the membership-level partition fault:
// during the partition each side must keep its own well-formed ring
// (invariants are checked per reachability group after every step);
// after heal, directory-assisted stabilization must merge the two
// rings back into one — the case pure successor adoption cannot repair.
func TestRingPartitionHeal(t *testing.T) {
	h, cfg := newCustodyHarness()
	r := NewRing(cfg)
	names := make([]string, 6)
	for i := range names {
		names[i] = SiteName(i)
		if err := r.Join(names[i]); err != nil {
			t.Fatal(err)
		}
		h.assign(t, names[i], i)
	}
	if !r.RunToFixpoint(64) {
		t.Fatal("initial ring did not converge")
	}

	r.Partition(map[string]int{names[1]: 1, names[4]: 1})
	for round := 0; round < 8; round++ {
		for _, n := range names {
			r.Stabilize(n)
			if err := r.CheckInvariants(); err != nil {
				t.Fatalf("during partition: %v", err)
			}
			h.checkConservation(t, r)
		}
	}
	// Both sides quiesced into separate rings; no coordinator while
	// beliefs span the cut.
	if _, ok := r.Coordinator(); ok {
		t.Fatal("global coordinator agreed across a partition")
	}

	r.Heal()
	// Immediately after heal the stored successor lists still describe
	// two rings — the known Chord merge gap — but resolution is
	// directory-synced (effSuccLocked), so the effective-successor graph
	// must be one ordered ring from the very first post-heal instant,
	// and stay one through every stabilization step of the merge. (This
	// is the transient the per-step assertions surfaced: before the
	// directory correction moved into effSuccLocked, both halves' stored
	// successors were alive and reachable again, so the checker saw two
	// cycles in one group until stabilization happened to visit every
	// member.)
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("immediately after heal: %v", err)
	}
	healed := false
	for round := 0; round < 64 && !healed; round++ {
		before := r.snapshot()
		for _, n := range names {
			r.Stabilize(n)
			if err := r.CheckInvariants(); err != nil {
				t.Fatalf("heal round %d, after stabilizing %s: %v", round, n, err)
			}
			h.checkConservation(t, r)
		}
		healed = r.snapshot() == before
	}
	if !healed {
		t.Fatal("healed ring did not converge")
	}
	h.checkConservation(t, r)
	if _, ok := r.Coordinator(); !ok {
		t.Fatalf("no coordinator after heal: %v", r.Leaders())
	}
}

// TestRingConcurrentStabilizers runs stabilization from many goroutines
// with churn, under the race detector: every protocol step is atomic,
// and the invariants must hold at every observation point.
func TestRingConcurrentStabilizers(t *testing.T) {
	h, cfg := newCustodyHarness()
	r := NewRing(cfg)
	for i := 0; i < 8; i++ {
		if err := r.Join(SiteName(i)); err != nil {
			t.Fatal(err)
		}
		h.assign(t, SiteName(i), i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < 300; i++ {
				r.Stabilize(SiteName(rng.Intn(8)))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Churn racing the stabilizers: crash two, rejoin one.
		if err := r.Crash(SiteName(2)); err != nil {
			t.Error(err)
		}
		if err := r.Leave(SiteName(5)); err != nil {
			t.Error(err)
		}
		if err := r.Join("late0"); err != nil {
			t.Error(err)
		}
		h.ledger.Assign("late0", fakePartial(t, 100))
		h.oracle[100] = h.ledger.heldBy("late0")[0].Sums[0]
	}()
	// Observe invariants while the stabilizers and churn race.
	for i := 0; i < 400; i++ {
		if err := r.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if !r.RunToFixpoint(64) {
		t.Fatal("no fixpoint after concurrent churn")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	h.checkConservation(t, r)
	if _, ok := r.Coordinator(); !ok {
		t.Fatalf("no coordinator: %v", r.Leaders())
	}
}
