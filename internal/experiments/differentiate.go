package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/shaper"
	"repro/internal/testbed"
)

// DiffConfig parameterizes one differentiation experiment: the same
// seeded application workload is driven through a neutral path and a
// throttled path (a token bucket spliced in front of the capture
// point), and the κ components that move between the two arms are the
// throttler's signature.
type DiffConfig struct {
	// Trial is the shared protocol scale; Trial.Workload must name a
	// catalogue app.
	Trial TrialConfig
	// Shaper configures the throttled arm's token bucket. RateBps may
	// be left zero when RateFrac is set.
	Shaper shaper.Config
	// RateFrac, when positive, derives the bucket rate from the
	// workload itself: the neutral baseline trace's mean offered rate
	// times this fraction (0.5 = throttle to half the app's rate).
	RateFrac float64
	// Neutral runs the control experiment: the "throttled" arm gets no
	// shaper at all, so the two arms are identical simulations and
	// every observed component must be exactly zero.
	Neutral bool
}

// DiffComponent scores one κ component across the two arms.
type DiffComponent struct {
	// Name is the κ component letter.
	Name string `json:"name"`
	// Signature is the throttling mechanism this component detects.
	Signature string `json:"signature"`
	// Control is the component's neutral replay-to-replay mean — the
	// noise floor differentiation must exceed.
	Control float64 `json:"control"`
	// Observed is the component's mean across same-index
	// neutral-vs-throttled trace pairs, isolating the shaper exactly.
	Observed float64 `json:"observed"`
	// Flagged reports Observed clearing both the multiplicative margin
	// over Control and the absolute floor.
	Flagged bool `json:"flagged"`
}

// DiffResult is the outcome of one differentiation experiment.
type DiffResult struct {
	App            string          `json:"app"`
	Environment    string          `json:"environment"`
	Components     []DiffComponent `json:"components"`
	Differentiated bool            `json:"differentiated"`
	// KappaNeutral and KappaCross summarize the two comparison sets:
	// neutral replay-vs-replay and neutral-vs-throttled.
	KappaNeutral float64 `json:"kappa_neutral"`
	KappaCross   float64 `json:"kappa_cross"`
	// ShaperStats aggregates the throttled arm's bucket counters
	// (zero-valued for the neutral control).
	ShaperStats shaper.Stats `json:"shaper_stats"`
	// Neutral and Throttled are the full per-arm protocol results.
	Neutral   *RunResult `json:"-"`
	Throttled *RunResult `json:"-"`
}

// Differentiation thresholds: a component is flagged when the
// cross-arm divergence exceeds three times the neutral noise floor and
// an absolute floor that absorbs exact-zero controls.
const (
	diffMargin = 3.0
	diffFloor  = 1e-6
)

// Differentiate runs the neutral and throttled arms of one workload
// and decomposes which κ component moved. Both arms share every seed,
// so the throttled arm differs from the neutral one only by the token
// bucket — any divergence beyond replay noise is the shaper's doing.
func Differentiate(env testbed.Env, cfg DiffConfig) (*DiffResult, error) {
	if cfg.Trial.Workload == "" {
		return nil, fmt.Errorf("experiments: Differentiate needs a workload")
	}
	cfg.Trial = cfg.Trial.defaults()

	neutral, err := Run(env, cfg.Trial)
	if err != nil {
		return nil, fmt.Errorf("experiments: neutral arm: %w", err)
	}

	throttledEnv := env
	var made []*shaper.Shaper
	if !cfg.Neutral {
		scfg := cfg.Shaper
		if cfg.RateFrac > 0 {
			base := neutral.Traces[0]
			bits := int64(0)
			for _, p := range base.Packets {
				bits += int64(packet.WireBytes(p.FrameLen)) * 8
			}
			span := base.Span().Seconds()
			if span <= 0 {
				return nil, fmt.Errorf("experiments: baseline trace too short to derive a rate")
			}
			scfg.RateBps = int64(cfg.RateFrac * float64(bits) / span)
		}
		if scfg.RateBps <= 0 {
			return nil, fmt.Errorf("experiments: throttled arm needs a positive shaper rate")
		}
		cfg.Shaper = scfg
		throttledEnv = shaper.ThrottleEnv(env, scfg, &made)
	}
	throttled, err := Run(throttledEnv, cfg.Trial)
	if err != nil {
		return nil, fmt.Errorf("experiments: throttled arm: %w", err)
	}
	if len(throttled.Traces) != len(neutral.Traces) {
		return nil, fmt.Errorf("experiments: arm trace counts diverge: %d vs %d",
			len(neutral.Traces), len(throttled.Traces))
	}

	// Cross-arm comparisons pair same-index trials: trial i of each arm
	// ran an identical simulation up to the bucket, so the pair isolates
	// the shaper with zero replay-phase confound.
	cross := make([]*metrics.Result, len(neutral.Traces))
	err = cfg.Trial.pool().Do(len(neutral.Traces), func(i int) error {
		r, cerr := metrics.Compare(neutral.Traces[i], throttled.Traces[i], metrics.Options{})
		if cerr != nil {
			return fmt.Errorf("experiments: cross-arm compare %s: %w", RunNames[i], cerr)
		}
		cross[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	crossMean := metrics.Mean(cross)

	res := &DiffResult{
		App:          cfg.Trial.Workload,
		Environment:  env.Name,
		Neutral:      neutral,
		Throttled:    throttled,
		KappaNeutral: neutral.Mean.Kappa,
		KappaCross:   crossMean.Kappa,
	}
	for _, s := range made {
		st := s.Stats()
		res.ShaperStats.Received += st.Received
		res.ShaperStats.Delivered += st.Delivered
		res.ShaperStats.Dropped += st.Dropped
		res.ShaperStats.Delayed += st.Delayed
		res.ShaperStats.DelaySum += st.DelaySum
		if st.DelayMax > res.ShaperStats.DelayMax {
			res.ShaperStats.DelayMax = st.DelayMax
		}
		if st.QueuePeak > res.ShaperStats.QueuePeak {
			res.ShaperStats.QueuePeak = st.QueuePeak
		}
	}
	for _, c := range []struct {
		name, sig         string
		control, observed float64
	}{
		{"U", "loss (policer/tail drops)", neutral.Mean.U, crossMean.U},
		{"O", "reordering (multi-queue throttlers)", neutral.Mean.O, crossMean.O},
		{"L", "added latency (queueing delay)", neutral.Mean.L, crossMean.L},
		{"I", "pacing (inter-arrival reshaping)", neutral.Mean.I, crossMean.I},
	} {
		comp := DiffComponent{
			Name:      c.name,
			Signature: c.sig,
			Control:   c.control,
			Observed:  c.observed,
			Flagged:   c.observed > diffMargin*c.control && c.observed > diffFloor,
		}
		res.Components = append(res.Components, comp)
		if comp.Flagged {
			res.Differentiated = true
		}
	}
	return res, nil
}

// Render writes the verdict table in a deterministic, golden-pinnable
// layout.
func (d *DiffResult) Render(w io.Writer) {
	fmt.Fprintf(w, "workload=%s env=%s recorded=%d kappa_neutral=%.6f kappa_cross=%.6f\n",
		d.App, d.Environment, d.Neutral.Recorded, d.KappaNeutral, d.KappaCross)
	fmt.Fprintf(w, "%-4s %-38s %12s %12s %9s\n", "comp", "signature", "control", "observed", "verdict")
	for _, c := range d.Components {
		verdict := "-"
		if c.Flagged {
			verdict = "FLAGGED"
		}
		fmt.Fprintf(w, "%-4s %-38s %12.6f %12.6f %9s\n", c.Name, c.Signature, c.Control, c.Observed, verdict)
	}
	if d.Differentiated {
		moved := ""
		for _, c := range d.Components {
			if c.Flagged {
				if moved != "" {
					moved += ","
				}
				moved += c.Name
			}
		}
		fmt.Fprintf(w, "differentiation: DETECTED (%s) dropped=%d delayed=%d delay_max=%v\n",
			moved, d.ShaperStats.Dropped, d.ShaperStats.Delayed, d.ShaperStats.DelayMax)
		return
	}
	fmt.Fprintf(w, "differentiation: none\n")
}
