package experiments

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// faultCfg is small enough for CI but large enough that a 6% drop rate
// shows up unambiguously in U.
func faultCfg() TrialConfig {
	return TrialConfig{Packets: 3000, Runs: 2, Seed: 71}
}

// TestFaultInjectionDegradesConsistency runs the full simulated
// protocol twice — once clean, once with a seeded drop+reorder injector
// spliced in front of the recorder via fault.Plan.PerturbEnv — and
// checks the metric response the paper predicts: U rises (different
// packets go missing in each trial) and κ falls.
func TestFaultInjectionDegradesConsistency(t *testing.T) {
	env := testbed.LocalSingle()
	clean, err := Run(env, faultCfg())
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Plan{Seed: 72, Drop: 0.06, Reorder: 0.05}
	hurt, err := Run(plan.PerturbEnv(env), faultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if hurt.Mean.U <= clean.Mean.U {
		t.Fatalf("injected drops did not raise U: clean %v, faulted %v", clean.Mean.U, hurt.Mean.U)
	}
	if hurt.Mean.Kappa >= clean.Mean.Kappa {
		t.Fatalf("injected faults did not lower κ: clean %v, faulted %v", clean.Mean.Kappa, hurt.Mean.Kappa)
	}
}

// TestFaultRunIsReplayable: the whole simulated experiment under a
// fault plan is replayable from (env seed, plan seed) — two runs give
// bit-identical traces and metric vectors. This is the full-stack
// version of the verify.sh deterministic-replay gate.
func TestFaultRunIsReplayable(t *testing.T) {
	plan := fault.Plan{Seed: 73, Drop: 0.04, Dup: 0.03, Jitter: 300}
	env := plan.PerturbEnv(testbed.LocalSingle())
	a, err := Run(env, faultCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(env, faultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Traces) != len(b.Traces) {
		t.Fatalf("trace counts differ: %d vs %d", len(a.Traces), len(b.Traces))
	}
	for i := range a.Traces {
		ta, tb := a.Traces[i], b.Traces[i]
		if ta.Len() != tb.Len() {
			t.Fatalf("trial %d: %d vs %d packets", i, ta.Len(), tb.Len())
		}
		for j := range ta.Times {
			if ta.Times[j] != tb.Times[j] || ta.Packets[j].Tag != tb.Packets[j].Tag {
				t.Fatalf("trial %d packet %d differs across replays", i, j)
			}
		}
	}
	for i := range a.Results {
		ra, rb := a.Results[i], b.Results[i]
		if ra.U != rb.U || ra.O != rb.O || ra.L != rb.L || ra.I != rb.I || ra.Kappa != rb.Kappa {
			t.Fatalf("run %d metric vectors differ across replays:\n %v\n %v", i, ra, rb)
		}
	}
}

// TestPerturbEnvWiring checks the env-level split: clock knobs land on
// the clock models, delivery knobs install the recorder interposer, and
// an existing WrapRecorder is stacked, not clobbered.
func TestPerturbEnvWiring(t *testing.T) {
	base := testbed.LocalSingle()

	clock := fault.Plan{Seed: 74, SkewPPM: 50, Jitter: 2000}.PerturbEnv(base)
	if clock.WrapRecorder != nil {
		t.Fatal("clock-only plan installed a recorder interposer")
	}
	if clock.TSCErrPPM != base.TSCErrPPM+50 {
		t.Fatalf("TSCErrPPM = %v, want %v", clock.TSCErrPPM, base.TSCErrPPM+50)
	}
	if clock.Sync.Residual == base.Sync.Residual {
		t.Fatal("jitter did not widen the sync residual")
	}

	prevCalled := false
	stacked := base
	stacked.WrapRecorder = func(eng *sim.Engine, down nic.Endpoint) nic.Endpoint {
		prevCalled = true
		return down
	}
	deliv := fault.Plan{Seed: 75, Drop: 0.1}.PerturbEnv(stacked)
	if deliv.WrapRecorder == nil {
		t.Fatal("delivery plan did not install a recorder interposer")
	}
	eng := sim.NewEngine(1)
	sink := sinkEndpoint{}
	wrapped := deliv.WrapRecorder(eng, sink)
	if !prevCalled {
		t.Fatal("pre-existing WrapRecorder was clobbered, not stacked")
	}
	if wrapped == nic.Endpoint(sink) {
		t.Fatal("interposer returned the bare downstream endpoint")
	}
}

type sinkEndpoint struct{}

func (sinkEndpoint) Receive(*packet.Packet, sim.Time) {}
