package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/shaper"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Differential bit-identity suites for the application workload
// library: every catalogue app must produce the same traces, metrics
// and summaries across -sim-shards counts, under fault plans, and
// across repeated runs of one seed. verify.sh runs this file under
// -race.

func workloadCfg(app string) TrialConfig {
	return TrialConfig{Packets: 1200, Runs: 2, Seed: 11, Workload: app}
}

func assertRunsEqual(t *testing.T, label string, a, b *RunResult) {
	t.Helper()
	if !reflect.DeepEqual(a.Traces, b.Traces) {
		t.Fatalf("%s: traces diverged", label)
	}
	if !reflect.DeepEqual(a.Results, b.Results) {
		t.Fatalf("%s: results diverged", label)
	}
	if !reflect.DeepEqual(a.Missing, b.Missing) {
		t.Fatalf("%s: missing counts diverged", label)
	}
	ja, err := json.Marshal(a.Summary())
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Summary())
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("%s: summary JSON diverged:\n%s\n%s", label, ja, jb)
	}
}

// TestWorkloadRunCompletes drives the full record/replay/compare
// protocol for each app and sanity-checks the scores: clean replays of
// application traffic should be near-perfectly consistent.
func TestWorkloadRunCompletes(t *testing.T) {
	for _, app := range workload.Names() {
		res, err := Run(testbed.LocalSingle(), workloadCfg(app))
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if res.Recorded == 0 {
			t.Fatalf("%s: recorded nothing", app)
		}
		if res.Mean.Kappa < 0.99 {
			t.Fatalf("%s: clean replay κ %.4f, want ≥0.99", app, res.Mean.Kappa)
		}
	}
}

// TestWorkloadShardedMatchesSequential pins the tentpole determinism
// claim: every app, sequential vs -sim-shards 1/2/4, bit-identical.
func TestWorkloadShardedMatchesSequential(t *testing.T) {
	for _, app := range workload.Names() {
		t.Run(app, func(t *testing.T) {
			seq, err := Run(testbed.LocalSingle(), workloadCfg(app))
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 4} {
				sh, err := Run(testbed.LocalSingle(), withShards(workloadCfg(app), shards))
				if err != nil {
					t.Fatal(err)
				}
				assertRunsEqual(t, app, seq, sh)
			}
		})
	}
}

// TestWorkloadUnderFaultShardedMatchesSequential composes each app
// with a drop+reorder plan and demands shard-count invariance of the
// perturbed run too.
func TestWorkloadUnderFaultShardedMatchesSequential(t *testing.T) {
	plan := fault.Plan{Seed: 72, Drop: 0.05, Reorder: 0.04}
	for _, app := range workload.Names() {
		t.Run(app, func(t *testing.T) {
			env := plan.PerturbEnv(testbed.LocalSingle())
			seq, err := Run(env, workloadCfg(app))
			if err != nil {
				t.Fatal(err)
			}
			sh, err := Run(env, withShards(workloadCfg(app), 4))
			if err != nil {
				t.Fatal(err)
			}
			assertRunsEqual(t, app, seq, sh)
		})
	}
}

// TestWorkloadSameSeedTwice: the whole protocol is replayable — two
// runs of one seed are bit-identical, and a different seed diverges.
func TestWorkloadSameSeedTwice(t *testing.T) {
	for _, app := range workload.Names() {
		a, err := Run(testbed.LocalSingle(), workloadCfg(app))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(testbed.LocalSingle(), workloadCfg(app))
		if err != nil {
			t.Fatal(err)
		}
		assertRunsEqual(t, app, a, b)
	}
	cfg := workloadCfg("web")
	cfg.Seed = 12
	a, err := Run(testbed.LocalSingle(), workloadCfg("web"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(testbed.LocalSingle(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Traces, c.Traces) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestWorkloadUnknownApp surfaces catalogue misses as errors, not
// panics.
func TestWorkloadUnknownApp(t *testing.T) {
	cfg := workloadCfg("nosuch")
	if _, err := Run(testbed.LocalSingle(), cfg); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestDifferentiateDetectsThrottling: shaping one arm to half the
// app's own rate must flag at least one κ component, with the timing
// components (I or L) moving for a deep-queue shaper.
func TestDifferentiateDetectsThrottling(t *testing.T) {
	res, err := Differentiate(testbed.LocalSingle(), DiffConfig{
		Trial:    workloadCfg("voip"),
		Shaper:   shaper.Config{QueuePkts: 4096},
		RateFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Differentiated {
		t.Fatalf("throttled arm not flagged: %+v", res.Components)
	}
	timing := false
	for _, c := range res.Components {
		if (c.Name == "I" || c.Name == "L") && c.Flagged {
			timing = true
		}
	}
	if !timing {
		t.Fatalf("deep-queue shaper did not move a timing component: %+v", res.Components)
	}
	if res.KappaCross >= res.KappaNeutral {
		t.Fatalf("cross-arm κ %.6f not below neutral κ %.6f", res.KappaCross, res.KappaNeutral)
	}
	if res.ShaperStats.Delayed == 0 {
		t.Fatalf("shaper never delayed: %+v", res.ShaperStats)
	}
}

// TestDifferentiatePolicerShowsLoss: a policer's signature is loss —
// U must flag.
func TestDifferentiatePolicerShowsLoss(t *testing.T) {
	res, err := Differentiate(testbed.LocalSingle(), DiffConfig{
		Trial:    workloadCfg("web"),
		Shaper:   shaper.Config{Police: true},
		RateFrac: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Differentiated {
		t.Fatal("policed arm not flagged")
	}
	var u DiffComponent
	for _, c := range res.Components {
		if c.Name == "U" {
			u = c
		}
	}
	if !u.Flagged {
		t.Fatalf("policer loss signature not flagged: %+v", res.Components)
	}
	if res.ShaperStats.Dropped == 0 {
		t.Fatalf("policer never dropped: %+v", res.ShaperStats)
	}
}

// TestDifferentiateNeutralControlIsSilent: with no shaper, the two
// arms are identical simulations — every observed component must be
// exactly zero and nothing may flag.
func TestDifferentiateNeutralControlIsSilent(t *testing.T) {
	for _, app := range workload.Names() {
		res, err := Differentiate(testbed.LocalSingle(), DiffConfig{
			Trial:   workloadCfg(app),
			Neutral: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if res.Differentiated {
			t.Fatalf("%s: neutral control flagged: %+v", app, res.Components)
		}
		for _, c := range res.Components {
			if c.Observed != 0 {
				t.Fatalf("%s: neutral control observed %s=%v, want exact zero", app, c.Name, c.Observed)
			}
		}
		if res.KappaCross != 1 {
			t.Fatalf("%s: neutral cross κ %v, want exactly 1", app, res.KappaCross)
		}
	}
}

// TestDifferentiateShardInvariant: the rendered verdict table — the
// CLI contract — is byte-identical across shard counts.
func TestDifferentiateShardInvariant(t *testing.T) {
	render := func(shards int) string {
		cfg := DiffConfig{
			Trial:    withShards(workloadCfg("rpc"), shards),
			Shaper:   shaper.Config{QueuePkts: 64},
			RateFrac: 0.5,
		}
		res, err := Differentiate(testbed.LocalSingle(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Render(&buf)
		return buf.String()
	}
	seq := render(0)
	for _, shards := range []int{1, 4} {
		if got := render(shards); got != seq {
			t.Fatalf("shards=%d verdict diverged:\n%s\nvs\n%s", shards, got, seq)
		}
	}
}

// TestWorkloadCBRPathUntouched: a config without Workload follows the
// classic CBR branch — same output as before this feature existed
// (pinned against the existing diffCfg fixture used across suites).
func TestWorkloadCBRPathUntouched(t *testing.T) {
	a, err := Run(testbed.LocalSingle(), diffCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := diffCfg
	cfg.Workload = ""
	b, err := Run(testbed.LocalSingle(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsEqual(t, "cbr", a, b)
}
