package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/testbed"
)

// These differential tests pin the PR's core claim: running the
// evaluation stack on the parallel trial scheduler produces output
// byte-identical to the sequential loops, for fixed seeds, with or
// without observability attached. verify.sh runs this file under -race.

// diffCfg is scaled for test runtime while still spanning several
// windows, runs and environments.
var diffCfg = TrialConfig{Packets: 4000, Runs: 3, Seed: 11}

func withPool(cfg TrialConfig, workers int) TrialConfig {
	cfg.Pool = parallel.New(workers)
	return cfg
}

// TestRunParallelMatchesSequential compares the full per-environment
// protocol: captured traces, per-run metric vectors, missing counts and
// the exported Summary JSON.
func TestRunParallelMatchesSequential(t *testing.T) {
	for _, env := range []testbed.Env{testbed.LocalSingle(), testbed.LocalDual()} {
		seq, err := Run(env, diffCfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Run(env, withPool(diffCfg, 4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Traces, par.Traces) {
			t.Fatalf("%s: traces diverged", env.Name)
		}
		if !reflect.DeepEqual(seq.Results, par.Results) {
			t.Fatalf("%s: results diverged", env.Name)
		}
		if !reflect.DeepEqual(seq.Missing, par.Missing) {
			t.Fatalf("%s: missing counts diverged", env.Name)
		}
		js, err := json.Marshal(seq.Summary())
		if err != nil {
			t.Fatal(err)
		}
		jp, err := json.Marshal(par.Summary())
		if err != nil {
			t.Fatal(err)
		}
		if string(js) != string(jp) {
			t.Fatalf("%s: summary JSON diverged:\nseq: %s\npar: %s", env.Name, js, jp)
		}
	}
}

// TestRateSweepParallelMatchesSequential fans sweep points across the
// pool and demands identical SweepPoint slices.
func TestRateSweepParallelMatchesSequential(t *testing.T) {
	rates := []float64{20, 60, 100}
	seq, err := RateSweep(testbed.LocalSingle(), rates, diffCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RateSweep(testbed.LocalSingle(), rates, withPool(diffCfg, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sweep diverged:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestFiguresParallelMatchSequential renders figure documents both ways
// and compares the exact bytes the CLI would print. table2 exercises the
// all-environments fan-out; fig9 the per-environment sub-documents.
func TestFiguresParallelMatchSequential(t *testing.T) {
	cfg := TrialConfig{Packets: 2000, Runs: 2, Seed: 3}
	for _, id := range []string{"table2", "fig9"} {
		seq, err := Figure(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Figure(id, withPool(cfg, 4))
		if err != nil {
			t.Fatal(err)
		}
		if seq.String() != par.String() {
			t.Fatalf("%s: document diverged", id)
		}
	}
}

// TestRunParallelWithObsMatchesSequential attaches full observability to
// the parallel run and checks the scientific output is still identical:
// instrumentation must never perturb the simulation.
func TestRunParallelWithObsMatchesSequential(t *testing.T) {
	seq, err := Run(testbed.LocalDual(), diffCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := withPool(diffCfg, 4)
	cfg.Obs = obs.New().WithTracer(64)
	cfg.Pool.WithObs(cfg.Obs.Registry())
	par, err := Run(testbed.LocalDual(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Traces, par.Traces) {
		t.Fatal("obs-instrumented parallel run diverged from sequential")
	}
	if !reflect.DeepEqual(seq.Results, par.Results) {
		t.Fatal("obs-instrumented parallel results diverged from sequential")
	}
	// The scheduler's own telemetry must have registered activity. Which
	// worker claims which job is dynamic, so assert on the aggregates.
	if st := cfg.Pool.Stats(); st.Tasks == 0 || st.Busy <= 0 {
		t.Fatalf("scheduler stats missing: %+v", st)
	}
}
