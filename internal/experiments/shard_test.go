package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/testbed"
)

// These differential tests pin the parallel-in-space claim: partitioning
// one simulation across event domains (TrialConfig.Shards) produces
// output byte-identical to the single-engine run, for every shard count,
// clean and under fault plans. verify.sh runs this file under -race.

func withShards(cfg TrialConfig, n int) TrialConfig {
	cfg.Shards = n
	return cfg
}

// TestRunShardedMatchesSequential compares the full per-environment
// protocol at 2, 4 and 8 domains against the sequential engine:
// captured traces, per-run metric vectors, missing counts and the
// exported Summary JSON.
func TestRunShardedMatchesSequential(t *testing.T) {
	for _, env := range []testbed.Env{testbed.LocalSingle(), testbed.LocalDual()} {
		seq, err := Run(env, diffCfg)
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(seq.Summary())
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 4, 8} {
			sh, err := Run(env, withShards(diffCfg, shards))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.Traces, sh.Traces) {
				t.Fatalf("%s shards=%d: traces diverged", env.Name, shards)
			}
			if !reflect.DeepEqual(seq.Results, sh.Results) {
				t.Fatalf("%s shards=%d: results diverged", env.Name, shards)
			}
			if !reflect.DeepEqual(seq.Missing, sh.Missing) {
				t.Fatalf("%s shards=%d: missing counts diverged", env.Name, shards)
			}
			jp, err := json.Marshal(sh.Summary())
			if err != nil {
				t.Fatal(err)
			}
			if string(js) != string(jp) {
				t.Fatalf("%s shards=%d: summary JSON diverged:\nseq: %s\nshard: %s", env.Name, shards, js, jp)
			}
		}
	}
}

// TestRunShardedUnderFaultMatchesSequential drives the sharded core
// through perturbed environments — the injector lives in the recorder
// domain, its RNG draws must happen in the same total order — and
// demands identical traces and metrics.
func TestRunShardedUnderFaultMatchesSequential(t *testing.T) {
	plans := []fault.Plan{
		{Seed: 81, Drop: 0.05, Jitter: 2000},
		{Seed: 82, Dup: 0.02, Reorder: 0.03},
	}
	for _, plan := range plans {
		env := plan.PerturbEnv(testbed.LocalSingle())
		seq, err := Run(env, faultCfg())
		if err != nil {
			t.Fatal(err)
		}
		sh, err := Run(env, withShards(faultCfg(), 4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Traces, sh.Traces) {
			t.Fatalf("plan %+v: sharded traces diverged", plan)
		}
		if !reflect.DeepEqual(seq.Results, sh.Results) {
			t.Fatalf("plan %+v: sharded results diverged", plan)
		}
	}
}

// TestShardsFallBackUnderStepBudget: a step budget is a sequential-engine
// notion (one global event counter), so Shards must be ignored when
// MaxSteps is set — same output as the plain budgeted run, no panic.
func TestShardsFallBackUnderStepBudget(t *testing.T) {
	cfg := diffCfg
	cfg.MaxSteps = 2_000_000
	seq, err := Run(testbed.LocalSingle(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := Run(testbed.LocalSingle(), withShards(cfg, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Results, sh.Results) {
		t.Fatal("Shards was not ignored under a step budget")
	}
}
