package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/testbed"
)

// This file generalizes the paper's two-point rate probe (40 and
// 80 Gbps, §7) into a sweep: consistency as a function of offered load
// on one environment — the "more varied environments" exploration the
// conclusion calls for.

// SweepPoint is one sweep sample.
type SweepPoint struct {
	// RateGbps is the offered load.
	RateGbps float64
	// Mean aggregates runs B.. against baseline A at this rate.
	Mean metrics.MeanResult
	// MaxMissing is the worst per-run drop count.
	MaxMissing int
}

// RateSweep runs the record-and-replay protocol on copies of base at
// each offered load. The packet count per trial is scaled with the rate
// so every trial records the same wall-clock window.
func RateSweep(base testbed.Env, rates []float64, cfg TrialConfig) ([]SweepPoint, error) {
	cfg = cfg.defaults()
	if len(rates) == 0 {
		return nil, fmt.Errorf("experiments: sweep needs at least one rate")
	}
	baselinePkts := cfg.Packets
	for _, rate := range rates {
		if rate <= 0 {
			return nil, fmt.Errorf("experiments: invalid sweep rate %v", rate)
		}
	}
	// Every sweep point is an independent seeded protocol run; fan the
	// points out across the scheduler into index-addressed slots (the
	// nested Run stays sequential so goroutines don't multiply).
	out := make([]SweepPoint, len(rates))
	inner := cfg.sequential()
	err := cfg.pool().Do(len(rates), func(i int) error {
		rate := rates[i]
		env := base
		env.Name = fmt.Sprintf("%s @%gG", base.Name, rate)
		env.RateGbps = rate
		c := inner
		c.Packets = int(float64(baselinePkts) * rate / base.RateGbps)
		if c.Packets < 1000 {
			c.Packets = 1000
		}
		res, err := Run(env, c)
		if err != nil {
			return fmt.Errorf("experiments: sweep at %gG: %w", rate, err)
		}
		p := SweepPoint{RateGbps: rate, Mean: res.Mean}
		for _, m := range res.Missing {
			if m > p.MaxMissing {
				p.MaxMissing = m
			}
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SweepTable renders sweep points as a text table.
func SweepTable(title string, pts []SweepPoint) string {
	tb := report.NewTable(title, "Rate (Gbps)", "U", "O", "I", "L", "κ", "max drops")
	for _, p := range pts {
		tb.AddRow(
			fmt.Sprintf("%g", p.RateGbps),
			report.G(p.Mean.U), report.G(p.Mean.O), report.G(p.Mean.I), report.G(p.Mean.L),
			fmt.Sprintf("%.4f", p.Mean.Kappa),
			fmt.Sprintf("%d", p.MaxMissing),
		)
	}
	return tb.String()
}
