package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// small keeps unit-test runtime modest while exercising the full
// protocol.
var small = TrialConfig{Packets: 8000, Runs: 3, Seed: 7}

func TestRunLocalSingleShape(t *testing.T) {
	res, err := Run(testbed.LocalSingle(), small)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorded != 8000 {
		t.Fatalf("recorded %d, want 8000", res.Recorded)
	}
	if len(res.Traces) != 3 || len(res.Results) != 2 {
		t.Fatalf("traces=%d results=%d", len(res.Traces), len(res.Results))
	}
	for i, r := range res.Results {
		if r.U != 0 {
			t.Fatalf("run %d: local testbed dropped packets (U=%v)", i, r.U)
		}
		if r.O != 0 {
			t.Fatalf("run %d: local single-replayer reordered (O=%v)", i, r.O)
		}
		if r.Kappa < 0.96 {
			t.Fatalf("run %d: local κ=%v, expected near-perfect consistency", i, r.Kappa)
		}
	}
	if res.Mean.Runs != 2 {
		t.Fatalf("mean over %d runs", res.Mean.Runs)
	}
}

func TestRunDualProducesReordering(t *testing.T) {
	res, err := Run(testbed.LocalDual(), TrialConfig{Packets: 20000, Runs: 2, Seed: 3, KeepDeltas: true})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Results[0]
	if r.O == 0 {
		t.Fatal("dual-replayer run showed no reordering")
	}
	if r.MovedPackets == 0 {
		t.Fatal("no packets in the edit script")
	}
	frac := r.MovedFraction()
	if frac < 0.2 || frac > 0.8 {
		t.Fatalf("moved fraction %.2f far from the paper's ~0.5", frac)
	}
	// Both replayers' packets present.
	replayers := map[uint16]bool{}
	for _, p := range res.Traces[0].Packets {
		replayers[p.Tag.Replayer] = true
	}
	if !replayers[1] || !replayers[2] {
		t.Fatalf("streams present: %v", replayers)
	}
}

func TestRunOrderingAcrossEnvironments(t *testing.T) {
	// The paper's headline comparison: local beats FABRIC-dedicated by
	// a wide margin in κ.
	local, err := Run(testbed.LocalSingle(), small)
	if err != nil {
		t.Fatal(err)
	}
	fabric, err := Run(testbed.FabricDedicated40(), small)
	if err != nil {
		t.Fatal(err)
	}
	if local.Mean.Kappa <= fabric.Mean.Kappa {
		t.Fatalf("local κ=%v should exceed FABRIC dedicated κ=%v",
			local.Mean.Kappa, fabric.Mean.Kappa)
	}
	if fabric.Mean.I <= 3*local.Mean.I {
		t.Fatalf("FABRIC I=%v should be several times local I=%v (paper: >10x)",
			fabric.Mean.I, local.Mean.I)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	a, err := Run(testbed.LocalSingle(), small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testbed.LocalSingle(), small)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean.Kappa != b.Mean.Kappa || a.Mean.I != b.Mean.I {
		t.Fatalf("same seed, different results: %v vs %v", a.Mean, b.Mean)
	}
	c, err := Run(testbed.LocalSingle(), TrialConfig{Packets: 8000, Runs: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean.I == c.Mean.I {
		t.Fatal("different seeds produced identical I")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := TrialConfig{}.defaults()
	if c.Packets != DefaultScale || c.Runs != 5 || c.Seed != 1 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestFigureUnknownID(t *testing.T) {
	if _, err := Figure("fig99", small); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestFigureFig4a(t *testing.T) {
	doc, err := Figure(IDFig4a, TrialConfig{Packets: 6000, Runs: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := doc.String()
	for _, want := range []string{"Figure 4a", "IAT delta", "within ±10ns", "run B vs A", "mean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureTable1(t *testing.T) {
	doc, err := Figure(IDTable1, TrialConfig{Packets: 12000, Runs: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := doc.String()
	for _, want := range []string{"Table 1", "Abs. Mean", "Moved"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestAllFigureIDsResolve(t *testing.T) {
	// Every advertised id must dispatch (validated structurally; the
	// expensive ones are exercised by the bench harness).
	for _, id := range AllFigureIDs() {
		if id == "" {
			t.Fatal("empty figure id")
		}
	}
	if len(AllFigureIDs()) != 11 {
		t.Fatalf("%d figure ids", len(AllFigureIDs()))
	}
}

func TestSortedEnvNames(t *testing.T) {
	names := SortedEnvNames()
	if len(names) != 9 {
		t.Fatalf("%d names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}

func TestRunThreeReplayers(t *testing.T) {
	// Figure 1 sketches three replay nodes feeding one receiver; the
	// topology builder must scale beyond the paper's evaluated pair.
	env := testbed.LocalDual()
	env.Name = "Local Triple-Replayer"
	env.Replayers = 3
	res, err := Run(env, TrialConfig{Packets: 15000, Runs: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorded != 15000 {
		t.Fatalf("recorded %d", res.Recorded)
	}
	replayers := map[uint16]bool{}
	for _, p := range res.Traces[0].Packets {
		replayers[p.Tag.Replayer] = true
	}
	if len(replayers) != 3 {
		t.Fatalf("streams from %d replayers, want 3: %v", len(replayers), replayers)
	}
	// Ordering should remain constant per stream (Figure 1's goal);
	// cross-stream interleave may shift.
	if res.Results[0].U != 0 {
		t.Fatalf("triple-replayer dropped packets: %v", res.Results[0])
	}
}

func TestRateSweepScalesPacketsAndRuns(t *testing.T) {
	pts, err := RateSweep(testbed.LocalSingle(), []float64{20, 40},
		TrialConfig{Packets: 8000, Runs: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Mean.Kappa < 0.9 || p.Mean.Kappa > 1 {
			t.Fatalf("rate %g: κ=%v", p.RateGbps, p.Mean.Kappa)
		}
	}
	out := SweepTable("sweep", pts)
	if !strings.Contains(out, "Rate (Gbps)") || !strings.Contains(out, "20") {
		t.Fatalf("table missing content:\n%s", out)
	}
}

func TestRateSweepValidation(t *testing.T) {
	if _, err := RateSweep(testbed.LocalSingle(), nil, TrialConfig{}); err == nil {
		t.Fatal("empty rate list accepted")
	}
	if _, err := RateSweep(testbed.LocalSingle(), []float64{-1}, TrialConfig{Packets: 2000, Runs: 2}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestReplayCapture(t *testing.T) {
	// Build a source capture by running a quick experiment, then feed
	// its baseline trace back through ReplayCapture on two envs.
	seedRun, err := Run(testbed.LocalSingle(), TrialConfig{Packets: 6000, Runs: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := seedRun.Traces[0]

	local, err := ReplayCapture(testbed.LocalSingle(), src, TrialConfig{Packets: 1, Runs: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(local.Results) != 2 {
		t.Fatalf("%d results", len(local.Results))
	}
	if local.Results[0].U != 0 {
		t.Fatalf("capture replay dropped packets: %v", local.Results[0])
	}
	fabric, err := ReplayCapture(testbed.FabricDedicated40(), src, TrialConfig{Packets: 1, Runs: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if fabric.Mean.Kappa >= local.Mean.Kappa {
		t.Fatalf("FABRIC κ=%v should be below local κ=%v for the same capture",
			fabric.Mean.Kappa, local.Mean.Kappa)
	}
}

func TestReplayCaptureValidation(t *testing.T) {
	if _, err := ReplayCapture(testbed.LocalSingle(), trace.New("e", 0), TrialConfig{}); err == nil {
		t.Fatal("empty capture accepted")
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	res, err := Run(testbed.LocalSingle(), TrialConfig{Packets: 4000, Runs: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res.Summary())
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Environment != "Local Single-Replayer" || len(back.Runs) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
	if back.Mean.Kappa != res.Mean.Kappa {
		t.Fatalf("κ %v != %v", back.Mean.Kappa, res.Mean.Kappa)
	}
	if !strings.Contains(string(raw), "pct_iat_within_10ns") {
		t.Fatalf("json keys: %s", raw)
	}
}

func TestPaperScaleSoak(t *testing.T) {
	// Full paper-scale soak (~1.05M packets, 15s): validates the
	// million-packet path end to end. Skipped with -short.
	if testing.Short() {
		t.Skip("paper-scale soak skipped in -short mode")
	}
	env := testbed.LocalSingle()
	res, err := Run(env, TrialConfig{
		Packets: env.PacketsFor(300 * sim.Millisecond),
		Runs:    2,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorded < 1_040_000 {
		t.Fatalf("recorded %d packets, want ~1.05M", res.Recorded)
	}
	r := res.Results[0]
	if r.U != 0 || r.O != 0 {
		t.Fatalf("full-scale local run inconsistent: %v", r)
	}
	// Paper §6.1 bands at full scale.
	if r.I < 0.02 || r.I > 0.04 {
		t.Fatalf("I = %v outside the §6.1 band", r.I)
	}
	if r.Kappa < 0.98 {
		t.Fatalf("κ = %v below the §6.1 band", r.Kappa)
	}
}
