package experiments

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/testbed"
)

// TestObsDifferential is the guarantee the observability layer is built
// on: attaching metrics + packet-lifecycle tracing to a seeded run must
// leave every simulated outcome bit-identical — same capture timestamps,
// same §3 metric vectors — because instruments never touch the engine's
// RNG streams or event schedule.
func TestObsDifferential(t *testing.T) {
	envs := []testbed.Env{testbed.LocalSingle(), testbed.FabricShared40()}
	for _, env := range envs {
		cfg := TrialConfig{Packets: 4000, Runs: 2, Seed: 97}
		plain, err := Run(env, cfg)
		if err != nil {
			t.Fatalf("%s plain: %v", env.Name, err)
		}

		o := obs.New().WithTracer(8)
		cfg.Obs = o
		instr, err := Run(env, cfg)
		if err != nil {
			t.Fatalf("%s instrumented: %v", env.Name, err)
		}

		if plain.Recorded != instr.Recorded {
			t.Fatalf("%s: recorded %d vs %d", env.Name, plain.Recorded, instr.Recorded)
		}
		if len(plain.Traces) != len(instr.Traces) {
			t.Fatalf("%s: trace count differs", env.Name)
		}
		for i := range plain.Traces {
			a, b := plain.Traces[i], instr.Traces[i]
			if a.Len() != b.Len() {
				t.Fatalf("%s trace %d: %d vs %d packets", env.Name, i, a.Len(), b.Len())
			}
			for j := range a.Times {
				if a.Times[j] != b.Times[j] {
					t.Fatalf("%s trace %d packet %d: timestamp %v vs %v — observability perturbed the sim",
						env.Name, i, j, a.Times[j], b.Times[j])
				}
				if a.Packets[j].Tag != b.Packets[j].Tag {
					t.Fatalf("%s trace %d packet %d: tag %v vs %v", env.Name, i, j, a.Packets[j].Tag, b.Packets[j].Tag)
				}
			}
		}
		for i := range plain.Results {
			p, q := plain.Results[i], instr.Results[i]
			if p.U != q.U || p.O != q.O || p.L != q.L || p.I != q.I || p.Kappa != q.Kappa ||
				p.PctIATWithin10 != q.PctIATWithin10 {
				t.Fatalf("%s run %d: metric vector differs with obs on:\n  plain %+v\n  instr %+v",
					env.Name, i, p, q)
			}
			if plain.Missing[i] != instr.Missing[i] {
				t.Fatalf("%s run %d: missing %d vs %d", env.Name, i, plain.Missing[i], instr.Missing[i])
			}
		}

		// The instrumented run must actually have observed the pipeline.
		totals := map[string]float64{}
		for _, fam := range o.Reg.Snapshot() {
			for _, s := range fam.Series {
				if s.Value != nil {
					totals[fam.Name] += *s.Value
				}
				if s.Count != nil {
					totals[fam.Name] += float64(*s.Count)
				}
			}
		}
		for _, name := range []string{
			"gen_emitted_total",
			"mb_recorded_packets_total",
			"mb_replayed_packets_total",
			"capture_received_total",
		} {
			if totals[name] <= 0 {
				t.Fatalf("%s: counter %s empty (totals %v)", env.Name, name, totals)
			}
		}
		if o.Tracer.Len() == 0 {
			t.Fatalf("%s: tracer recorded no packet lifecycles", env.Name)
		}
	}
}
