package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsw"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// ReplayCapture replays a user-supplied capture (e.g. loaded from a
// pcap file) through an environment's replayer NIC and switch, running
// cfg.Runs trials and scoring them against the first — "how consistent
// would this testbed be replaying *my* traffic?".
//
// The capture's packets must be tagged data packets (apply
// Trace.DataOnly first when loading foreign captures); the recorded
// inter-arrival timeline is replayed with Choir's burst strategy.
func ReplayCapture(env testbed.Env, tr *trace.Trace, cfg TrialConfig) (*RunResult, error) {
	cfg = cfg.defaults()
	if tr.Len() == 0 {
		return nil, fmt.Errorf("experiments: capture is empty")
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: capture: %w", err)
	}
	src := tr.Normalize()
	res := &RunResult{Env: env, Recorded: uint64(src.Len())}

	// Each capture-replay trial owns its own engine and seed, so the
	// trials themselves fan out across the scheduler (unlike Run's
	// B..E trials, which share one topology and stay sequential).
	span := src.Span()
	res.Traces = make([]*trace.Trace, cfg.Runs)
	trialErr := cfg.pool().Do(cfg.Runs, func(r int) error {
		eng := sim.NewEngine(cfg.Seed + int64(r)*104729)
		n := nic.New(eng, env.ReplayerNIC, "capture-replayer")
		q := n.NewQueue(env.ReplayerQueuePkts)
		sw := netsw.New(eng, env.Switch, "capture")
		sw.AddPort()
		sw.AddPort()
		rec := core.NewRecorder(eng, RunNames[r], env.RecorderTimestamper(), true)
		q.Connect(sw.Port(0), 50)
		sw.Forward(0, 1)
		sw.Port(1).Attach(rec, 50)

		(&baseline.Choir{}).Replay(eng, q, src, 10*sim.Millisecond)
		eng.RunUntil(10*sim.Millisecond + span + 60*sim.Millisecond)

		clean := rec.Trace().DataOnly().Normalize()
		clean.Name = RunNames[r]
		if err := clean.Validate(); err != nil {
			return fmt.Errorf("experiments: capture run %s: %w", RunNames[r], err)
		}
		res.Traces[r] = clean
		return nil
	})
	if trialErr != nil {
		return nil, trialErr
	}

	res.Results = make([]*metrics.Result, len(res.Traces)-1)
	res.Missing = make([]int, len(res.Traces)-1)
	cmpErr := cfg.pool().Do(len(res.Traces)-1, func(i int) error {
		m, err := metrics.Compare(res.Traces[0], res.Traces[i+1], metrics.Options{KeepDeltas: cfg.KeepDeltas})
		if err != nil {
			return err
		}
		res.Results[i] = m
		res.Missing[i] = src.Len() - res.Traces[i+1].Len()
		return nil
	})
	if cmpErr != nil {
		return nil, cmpErr
	}
	res.Mean = metrics.Mean(res.Results)
	return res, nil
}
