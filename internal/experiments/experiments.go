// Package experiments drives the paper's evaluation protocol end to end:
// build a topology, record a 0.3 s window of generator traffic, run five
// replay trials (A–E), capture each at the recorder, and compare trials
// B–E against baseline A with the §3 consistency metrics.
//
// Every table and figure in the paper maps to one harness in this
// package; see DESIGN.md §4 for the index.
package experiments

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/psim"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// TrialConfig scales an experiment.
type TrialConfig struct {
	// Packets is the total recorded packet count across all streams.
	// The paper's full scale is ~1.05M (0.3 s at 40 Gbps); scaled-down
	// runs preserve the metric shapes at a fraction of the runtime.
	Packets int
	// Runs is the number of replay trials (paper: 5 → A..E).
	Runs int
	// Seed drives every random stream in the simulation.
	Seed int64
	// KeepDeltas retains per-packet deltas for histograms.
	KeepDeltas bool
	// Obs, when non-nil, attaches metrics and packet-lifecycle tracing
	// to every element of the topology before the protocol starts. The
	// simulated results are bit-identical with or without it (asserted
	// by TestObsDifferential).
	Obs *obs.Obs
	// Workers sets the harness parallelism: the B..E-vs-A Compare
	// fan-out inside Run, the per-environment fan-out of Table 2, and
	// the per-rate fan-out of RateSweep all run on a shared scheduler.
	// 0 or 1 keeps everything sequential. Each unit of work owns its
	// own sim.Engine and seed and writes to an index-addressed slot, so
	// parallel results are bit-identical to the sequential path
	// (asserted by TestParallelDifferential under -race).
	Workers int
	// Pool, when non-nil, supplies the scheduler instance (so one
	// pool's telemetry spans a whole invocation); otherwise Workers > 1
	// creates one per harness call.
	Pool *parallel.Pool
	// Shards partitions the simulation itself across this many event
	// domains, one goroutine each (the parallel-in-space core,
	// internal/psim); 0 or 1 runs the classic sequential engine. The
	// captured traces, metrics and observability counters are
	// bit-identical across shard counts (differential-tested and gated
	// in verify.sh). Incompatible with MaxSteps — the step budget is a
	// sequential-engine notion, so a config setting both falls back to
	// the sequential engine.
	Shards int
	// Workload, when non-empty, replaces the CBR record-phase traffic
	// with the named application model from the workload catalogue (one
	// stream per replayer, Packets/Replayers packets each). Application
	// pacing is data-dependent, so the recording window is sized
	// adaptively from the runners' own completion times instead of the
	// CBR rate formula; the replay protocol is unchanged. Empty keeps
	// the classic CBR path byte-identical.
	Workload string
	// MaxSteps, when non-zero, bounds the number of simulation events
	// one protocol run may fire — a deterministic per-trial timeout. A
	// run that exhausts it fails with an error wrapping
	// sim.ErrStepBudget; the same config always halts at the same event,
	// so a timed-out trial times out identically on every retry and
	// every resume (the campaign runner's crash-safety contract).
	MaxSteps uint64
}

// DefaultScale is the scaled-down per-experiment packet count used by
// tests and benches.
const DefaultScale = 120_000

// Defaults fills zero fields.
func (c TrialConfig) defaults() TrialConfig {
	if c.Packets == 0 {
		c.Packets = DefaultScale
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// pool returns the scheduler implied by the config: the explicit Pool,
// a fresh one for Workers > 1, or nil (sequential — parallel.Pool
// methods are nil-safe).
func (c TrialConfig) pool() *parallel.Pool {
	if c.Pool != nil {
		return c.Pool
	}
	if c.Workers > 1 {
		return parallel.New(c.Workers)
	}
	return nil
}

// sequential strips the scheduler from a config handed to nested
// harness calls, so a fan-out over environments or sweep points does
// not recursively multiply goroutines.
func (c TrialConfig) sequential() TrialConfig {
	c.Pool = nil
	c.Workers = 1
	return c
}

// RunNames labels trials the way the paper does.
var RunNames = []string{"A", "B", "C", "D", "E", "F", "G", "H"}

// RunResult is the outcome of one environment's trial set.
type RunResult struct {
	Env testbed.Env
	// Traces are the captured trials (normalized, data-only), index 0
	// is baseline run A.
	Traces []*trace.Trace
	// Results[i] compares Traces[i+1] (run B..) against Traces[0].
	Results []*metrics.Result
	// Mean aggregates Results — one Table 2 row.
	Mean metrics.MeanResult
	// Recorded is the replay buffer size (packets, summed over
	// middleboxes).
	Recorded uint64
	// Missing[i] counts packets absent from trial i+1 relative to the
	// recording (drops).
	Missing []int
}

// Run executes the full protocol for one environment.
func Run(env testbed.Env, cfg TrialConfig) (*RunResult, error) {
	cfg = cfg.defaults()
	var top *testbed.Topology
	if cfg.Shards > 1 && cfg.MaxSteps == 0 {
		top = testbed.BuildSharded(psim.New(cfg.Seed, cfg.Shards, cfg.Pool), env)
	} else {
		eng := sim.NewEngine(cfg.Seed)
		eng.SetStepBudget(cfg.MaxSteps)
		top = testbed.Build(eng, env)
	}
	top.EnableObs(cfg.Obs)

	perStream := cfg.Packets / env.Replayers
	streamRate := env.RateGbps / float64(env.Replayers)
	recordDur := sim.Duration(float64(perStream) / (streamRate * 1e9 / float64((env.FrameLen+20)*8)) * 1e9)
	slack := 60 * sim.Millisecond

	// --- record phase ---
	top.Broadcast(control.StartRecord{At: top.WallNow() + sim.Millisecond})
	if cfg.Workload != "" {
		runners, err := top.StartWorkload(cfg.Workload, perStream, 2*sim.Millisecond)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", env.Name, err)
		}
		// Application pacing is data-dependent (think times, playback
		// buffers), so advance the clock in fixed increments until every
		// runner reports done — a deterministic loop: the deadlines are
		// pure functions of the iteration count, so every shard layout
		// sees the same schedule.
		const step = 250 * sim.Millisecond
		deadline := 2 * sim.Millisecond
		for i := 0; ; i++ {
			if i >= 600 {
				return nil, fmt.Errorf("experiments: %s workload %s did not finish %d packets within %v",
					env.Name, cfg.Workload, perStream, deadline)
			}
			deadline += step
			top.RunUntil(deadline)
			if top.BudgetExhausted() {
				return nil, fmt.Errorf("experiments: %s record phase after %d events: %w",
					env.Name, top.Executed(), sim.ErrStepBudget)
			}
			done := true
			for _, r := range runners {
				if !r.Done() {
					done = false
					break
				}
			}
			if done {
				break
			}
		}
		var last sim.Time
		for _, r := range runners {
			if r.FinishedAt() > last {
				last = r.FinishedAt()
			}
		}
		recordDur = sim.Duration(last - 2*sim.Millisecond)
		// Let in-flight frames reach the capture point before stopping.
		top.RunUntil(top.Now() + slack)
	} else {
		top.StartGenerators(perStream, 2*sim.Millisecond)
		top.RunUntil(2*sim.Millisecond + recordDur + slack)
	}
	top.Broadcast(control.StopRecord{At: top.WallNow()})
	top.RunUntil(top.Now() + sim.Millisecond)
	if top.BudgetExhausted() {
		return nil, fmt.Errorf("experiments: %s record phase after %d events: %w",
			env.Name, top.Executed(), sim.ErrStepBudget)
	}

	res := &RunResult{Env: env}
	for _, mb := range top.Middleboxes {
		res.Recorded += mb.Recorded()
	}
	if res.Recorded == 0 {
		return nil, fmt.Errorf("experiments: %s recorded nothing", env.Name)
	}

	// --- replay trials ---
	var raw []*trace.Trace
	for r := 0; r < cfg.Runs; r++ {
		top.Recorder.StartTrial(RunNames[r])
		if env.Noise {
			top.StartNoise(top.Now() + recordDur + 3*slack)
		}
		start := top.WallNow() + 20*sim.Millisecond
		top.Broadcast(control.StartReplay{At: start})
		top.RunUntil(start + recordDur + 2*slack)
		if top.BudgetExhausted() {
			return nil, fmt.Errorf("experiments: %s replay trial %s after %d events: %w",
				env.Name, RunNames[r], top.Executed(), sim.ErrStepBudget)
		}
		raw = append(raw, top.Recorder.StartTrial("scratch"))
	}

	for i, tr := range raw {
		tr.Name = RunNames[i]
		clean := tr.DataOnly().Normalize()
		if err := clean.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: %s run %s: %w", env.Name, tr.Name, err)
		}
		res.Traces = append(res.Traces, clean)
	}

	// B..E-vs-A comparisons are independent of each other; fan them out
	// across the scheduler into index-addressed slots. With a nil pool
	// this is the plain sequential loop.
	res.Results = make([]*metrics.Result, len(res.Traces)-1)
	res.Missing = make([]int, len(res.Traces)-1)
	err := cfg.pool().Do(len(res.Traces)-1, func(i int) error {
		r, err := metrics.Compare(res.Traces[0], res.Traces[i+1], metrics.Options{KeepDeltas: cfg.KeepDeltas})
		if err != nil {
			return fmt.Errorf("experiments: %s comparing run %s: %w", env.Name, RunNames[i+1], err)
		}
		res.Results[i] = r
		res.Missing[i] = int(res.Recorded) - res.Traces[i+1].Len()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Mean = metrics.Mean(res.Results)
	return res, nil
}

// Summary is the machine-readable form of a RunResult, suitable for
// JSON export and downstream tooling.
type Summary struct {
	Environment string       `json:"environment"`
	Recorded    uint64       `json:"recorded_packets"`
	Runs        []RunSummary `json:"runs"`
	Mean        MeanSummary  `json:"mean"`
}

// RunSummary is one trial's metric vector.
type RunSummary struct {
	Run            string  `json:"run"`
	U              float64 `json:"u"`
	O              float64 `json:"o"`
	I              float64 `json:"i"`
	L              float64 `json:"l"`
	Kappa          float64 `json:"kappa"`
	PctIATWithin10 float64 `json:"pct_iat_within_10ns"`
	Missing        int     `json:"missing_packets"`
}

// MeanSummary aggregates the runs.
type MeanSummary struct {
	U     float64 `json:"u"`
	O     float64 `json:"o"`
	I     float64 `json:"i"`
	L     float64 `json:"l"`
	Kappa float64 `json:"kappa"`
}

// Summary converts the result for export.
func (r *RunResult) Summary() Summary {
	s := Summary{
		Environment: r.Env.Name,
		Recorded:    r.Recorded,
		Mean:        MeanSummary{U: r.Mean.U, O: r.Mean.O, I: r.Mean.I, L: r.Mean.L, Kappa: r.Mean.Kappa},
	}
	for i, m := range r.Results {
		s.Runs = append(s.Runs, RunSummary{
			Run: RunNames[i+1], U: m.U, O: m.O, I: m.I, L: m.L,
			Kappa: m.Kappa, PctIATWithin10: m.PctIATWithin10, Missing: r.Missing[i],
		})
	}
	return s
}
