package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Figure identifiers, one per paper table/figure (DESIGN.md §4).
const (
	IDFig4a   = "fig4a"
	IDFig4b   = "fig4b"
	IDFig5    = "fig5"
	IDTable1  = "table1"
	IDFig6    = "fig6"
	IDFig7    = "fig7"
	IDFig8    = "fig8"
	IDFig9    = "fig9"
	IDFig10   = "fig10"
	IDNoiseDd = "noisededicated"
	IDTable2  = "table2"
)

// AllFigureIDs lists every reproducible artifact in paper order.
func AllFigureIDs() []string {
	return []string{
		IDFig4a, IDFig4b, IDFig5, IDTable1, IDFig6, IDFig7, IDFig8,
		IDFig9, IDFig10, IDNoiseDd, IDTable2,
	}
}

// Figure reproduces one paper artifact and renders it as a text
// document. Unknown ids return an error listing the valid ones.
func Figure(id string, cfg TrialConfig) (*report.Document, error) {
	switch id {
	case IDFig4a:
		return histFigure("Figure 4a — Local single-replayer IAT deltas",
			testbed.LocalSingle(), cfg, true)
	case IDFig4b:
		return histFigure("Figure 4b — Local single-replayer latency deltas",
			testbed.LocalSingle(), cfg, false)
	case IDFig5:
		return histFigure("Figure 5 — Local dual-replayer IAT deltas",
			testbed.LocalDual(), cfg, true)
	case IDTable1:
		return table1(cfg)
	case IDFig6:
		return histFigure("Figure 6 — FABRIC dedicated 40 Gbps IAT deltas",
			testbed.FabricDedicated40(), cfg, true)
	case IDFig7:
		return histFigure("Figure 7 — FABRIC shared 40 Gbps IAT deltas",
			testbed.FabricShared40(), cfg, true)
	case IDFig8:
		return histFigure("Figure 8 — FABRIC dedicated 40 Gbps (rerun) IAT deltas",
			testbed.FabricDedicated40Second(), cfg, true)
	case IDFig9:
		return fig9(cfg)
	case IDFig10:
		return histFigure("Figure 10 — FABRIC shared 40 Gbps with noise, IAT deltas",
			testbed.FabricShared40Noisy(), cfg, true)
	case IDNoiseDd:
		return histFigure("§7.1 — FABRIC dedicated 80 Gbps with a noisy co-tenant",
			testbed.FabricDedicated80Noisy(), cfg, true)
	case IDTable2:
		return table2(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown figure %q (valid: %s)",
			id, strings.Join(AllFigureIDs(), ", "))
	}
}

// histFigure runs one environment and renders per-run delta histograms
// plus the §3 metrics.
func histFigure(title string, env testbed.Env, cfg TrialConfig, iat bool) (*report.Document, error) {
	cfg.KeepDeltas = true
	res, err := Run(env, cfg)
	if err != nil {
		return nil, err
	}
	doc := &report.Document{Title: title}
	doc.Add("environment", env.Description)
	for i, r := range res.Results {
		h := stats.NewSymLogHistogram(8)
		var deltas []int64
		kind := "IAT delta (ns)"
		if iat {
			deltas = r.IATDeltas
		} else {
			deltas = r.LatencyDeltas
			kind = "latency delta (ns)"
		}
		h.AddAll(deltas)
		run := RunNames[i+1]
		doc.Add(fmt.Sprintf("run %s vs A", run),
			h.Render(kind, 46)+
				fmt.Sprintf("within ±10ns: %s   %v\n", report.Pct(r.PctIATWithin10), r))
	}
	doc.Add("mean", meanLine(res))
	return doc, nil
}

// fig9 runs both 80 Gbps environments side by side (in parallel when
// the config carries a scheduler; each env owns its own engine).
func fig9(cfg TrialConfig) (*report.Document, error) {
	doc := &report.Document{Title: "Figure 9 — FABRIC 80 Gbps IAT deltas (dedicated vs shared)"}
	envs := []testbed.Env{testbed.FabricDedicated80(), testbed.FabricShared80()}
	subs := make([]*report.Document, len(envs))
	inner := cfg.sequential()
	err := cfg.pool().Do(len(envs), func(i int) error {
		sub, err := histFigure(envs[i].Name, envs[i], inner, true)
		if err != nil {
			return err
		}
		subs[i] = sub
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, sub := range subs {
		for _, s := range sub.Sections {
			doc.Add(envs[i].Name+": "+s.Heading, s.Body)
		}
	}
	return doc, nil
}

// table1 reproduces Table 1: the edit-script move-distance summaries of
// the dual-replayer runs.
func table1(cfg TrialConfig) (*report.Document, error) {
	cfg.KeepDeltas = true
	res, err := Run(testbed.LocalDual(), cfg)
	if err != nil {
		return nil, err
	}
	doc := &report.Document{Title: "Table 1 — Distances packets moved in edit scripts (dual replayer)"}
	tb := report.NewTable("", "Run", "Mean (σ)", "Abs. Mean (σ)", "Min", "Max", "Moved", "Moved %")
	for i, r := range res.Results {
		s := r.MoveSummary()
		tb.AddRow(
			RunNames[i+1],
			fmt.Sprintf("%.2f (%.2f)", s.Mean, s.Std),
			fmt.Sprintf("%.2f (%.2f)", s.AbsMean, s.AbsStd),
			fmt.Sprintf("%.0f", s.Min),
			fmt.Sprintf("%.0f", s.Max),
			fmt.Sprintf("%d", r.MovedPackets),
			report.Pct(r.MovedFraction()*100),
		)
	}
	doc.Add("", tb.String())
	doc.Add("metrics", metricsTable(res))
	return doc, nil
}

// table2 reproduces Table 2: mean metrics for every environment. The
// environments are independent seeded protocol runs — the paper's §7
// evaluation matrix — so they fan out across the scheduler and the rows
// are rendered from index-addressed results in environment order,
// bit-identical to the sequential loop.
func table2(cfg TrialConfig) (*report.Document, error) {
	doc := &report.Document{Title: "Table 2 — Mean consistency metrics per environment"}
	tb := report.NewTable("", "Environment", "U", "O", "I", "L", "κ")
	envs := testbed.AllEnvironments()
	results := make([]*RunResult, len(envs))
	inner := cfg.sequential()
	err := cfg.pool().Do(len(envs), func(i int) error {
		res, err := Run(envs[i], inner)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		m := res.Mean
		tb.AddRow(envs[i].Name, report.G(m.U), report.G(m.O), report.G(m.I), report.G(m.L), fmt.Sprintf("%.4f", m.Kappa))
	}
	doc.Add("", tb.String())
	return doc, nil
}

// metricsTable renders the per-run metric vectors.
func metricsTable(res *RunResult) string {
	tb := report.NewTable("", "Run", "U", "O", "I", "L", "κ", "within ±10ns", "missing")
	for i, r := range res.Results {
		tb.AddRow(RunNames[i+1], report.G(r.U), report.G(r.O), report.G(r.I), report.G(r.L),
			fmt.Sprintf("%.4f", r.Kappa), report.Pct(r.PctIATWithin10), fmt.Sprintf("%d", res.Missing[i]))
	}
	return tb.String()
}

func meanLine(res *RunResult) string {
	m := res.Mean
	return fmt.Sprintf("U=%s O=%s I=%s L=%s κ=%.4f over %d runs (recorded %d packets)",
		report.G(m.U), report.G(m.O), report.G(m.I), report.G(m.L), m.Kappa, m.Runs, res.Recorded)
}

// SortedEnvNames returns environment names alphabetically (test helper).
func SortedEnvNames() []string {
	var names []string
	for _, e := range testbed.AllEnvironments() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return names
}
