package workload

import (
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
)

// The catalogue mirrors the Wehe app menu (SNIPPETS.md §1): each entry
// carries the protocol/port a differentiation middlebox would classify
// on and the burst shape the κ components respond to.
func init() {
	Register(&App{
		Name:        "abr",
		Proto:       packet.ProtoTCP,
		Port:        443,
		Shape:       "ladder segments: dense download bursts, buffer-paced idle",
		Description: "ABR video (YouTube/Netflix-shaped): bitrate-ladder steps driven by a playback-buffer model",
		start:       startABR,
	})
	Register(&App{
		Name:        "voip",
		Proto:       packet.ProtoUDP,
		Port:        8801,
		Shape:       "talkspurt/silence: 20ms constant small frames, comfort noise in gaps",
		Description: "VoIP/conferencing UDP (Zoom/Meet-shaped): exponential talkspurts of isochronous voice frames",
		start:       startVoIP,
	})
	Register(&App{
		Name:        "rpc",
		Proto:       packet.ProtoTCP,
		Port:        443,
		Shape:       "request/response pairs: small request, short response burst, exp think",
		Description: "request-response RPC (gRPC-shaped): exponential service and think times",
		start:       startRPC,
	})
	Register(&App{
		Name:        "web",
		Proto:       packet.ProtoTCP,
		Port:        443,
		Shape:       "page loads: object-burst waves over parallel connections, long exp think",
		Description: "bursty web page-loads: HTML then waves of parallel object fetches",
		start:       startWeb,
	})
	Register(&App{
		Name:        "iot",
		Proto:       packet.ProtoUDP,
		Port:        5683,
		Shape:       "fan-in: many devices, one minimal frame per fixed per-device period",
		Description: "IoT telemetry fan-in (CoAP-shaped): periodic sensor readings from a device fleet",
		start:       startIoT,
	})
}

// startABR models an adaptive-bitrate video session. Segments of
// playDur media are downloaded as paced frame bursts; the playback
// buffer gains playDur per completed segment and drains in real time.
// The ladder rung steps on buffer watermarks, and occasional throughput
// dips (slower pacing) drain the buffer and force downswitches — the
// classic ABR ramp-and-adapt shape.
func startABR(eng *sim.Engine, q *nic.Queue, app *App, cfg Config) *Runner {
	r := newRunner(eng, q, app, cfg)
	const (
		frameLen  = 1200
		playDur   = 500 * sim.Millisecond // media per segment
		lowWater  = 1 * sim.Second
		highWater = 2 * sim.Second
		maxBuf    = 3 * sim.Second
		group     = 8 // frames emitted per pacing event
	)
	ladder := []int64{600_000, 1_200_000, 2_400_000, 4_800_000} // media bits/s
	downloadBps := int64(8_000_000)                             // access-link share
	rung := 0
	buffer := sim.Duration(0)
	var startSegment func()
	var pump func(left int, gap sim.Duration, segStart sim.Time)
	pump = func(left int, gap sim.Duration, segStart sim.Time) {
		n := group
		if n > left {
			n = left
		}
		if r.sendBurst(n, frameLen) == 0 {
			return
		}
		if left -= n; left > 0 {
			r.act.PostAfter(gap*sim.Duration(n), func() { pump(left, gap, segStart) })
			return
		}
		// Segment complete: credit the buffer with the media it carries,
		// minus the real time the download took.
		dlTime := sim.Duration(r.eng.Now() - segStart)
		buffer += playDur - dlTime
		if buffer < 0 {
			buffer = 0 // rebuffer: playback stalled
		}
		if buffer > maxBuf {
			buffer = maxBuf
		}
		if buffer < lowWater && rung > 0 {
			rung--
		} else if buffer > highWater && rung < len(ladder)-1 {
			rung++
		}
		// Steady state: hold the buffer near the high watermark.
		idle := sim.Duration(0)
		if buffer > highWater {
			idle = buffer - highWater
			buffer = highWater
		}
		r.act.PostAfter(idle, startSegment)
	}
	startSegment = func() {
		if r.done {
			return
		}
		segBits := int64(float64(ladder[rung]) * playDur.Seconds())
		frames := int(segBits / (frameLen * 8))
		if frames < 1 {
			frames = 1
		}
		gap := packet.SerializationTime(frameLen, downloadBps)
		// Occasional congestion dip: the same segment downloads at a
		// third of the rate, draining the playback buffer.
		if r.rng.Float64() < 0.15 {
			gap *= 3
		}
		pump(frames, gap, r.eng.Now())
	}
	r.act.Post(cfg.StartAt, startSegment)
	return r
}

// startVoIP models a conferencing session: exponential talkspurts of
// isochronous 20ms voice frames alternating with silence periods that
// carry sparse comfort-noise frames.
func startVoIP(eng *sim.Engine, q *nic.Queue, app *App, cfg Config) *Runner {
	r := newRunner(eng, q, app, cfg)
	const (
		ptime       = 20 * sim.Millisecond
		voiceLen    = 160
		comfortLen  = 80
		comfortGap  = 160 * sim.Millisecond
		talkMean    = 300 * sim.Millisecond
		silenceMean = 400 * sim.Millisecond
	)
	var talk func(framesLeft int)
	var silence func(framesLeft int)
	talk = func(framesLeft int) {
		if r.sendBurst(1, voiceLen) == 0 {
			return
		}
		if framesLeft > 1 {
			r.act.PostAfter(ptime, func() { talk(framesLeft - 1) })
			return
		}
		frames := int(r.expDur(silenceMean)/comfortGap) + 1
		r.act.PostAfter(comfortGap, func() { silence(frames) })
	}
	silence = func(framesLeft int) {
		if r.sendBurst(1, comfortLen) == 0 {
			return
		}
		if framesLeft > 1 {
			r.act.PostAfter(comfortGap, func() { silence(framesLeft - 1) })
			return
		}
		frames := int(r.expDur(talkMean)/ptime) + 1
		r.act.PostAfter(ptime, func() { talk(frames) })
	}
	r.act.Post(cfg.StartAt, func() {
		frames := int(r.expDur(talkMean)/ptime) + 1
		talk(frames)
	})
	return r
}

// startRPC models a request-response loop: a small request frame, an
// exponential service delay, a short response burst, then exponential
// client think time.
func startRPC(eng *sim.Engine, q *nic.Queue, app *App, cfg Config) *Runner {
	r := newRunner(eng, q, app, cfg)
	const (
		requestLen  = 140
		responseLen = 1400
		serviceMean = 1 * sim.Millisecond
		thinkMean   = 5 * sim.Millisecond
	)
	var request func()
	request = func() {
		if r.sendBurst(1, requestLen) == 0 {
			return
		}
		respFrames := 1 + r.rng.Intn(6)
		r.act.PostAfter(r.expDur(serviceMean), func() {
			if r.sendBurst(respFrames, responseLen) == 0 {
				return
			}
			r.act.PostAfter(r.expDur(thinkMean), request)
		})
	}
	r.act.Post(cfg.StartAt, request)
	return r
}

// startWeb models bursty page loads: an HTML burst, then waves of
// parallel object fetches (six connections per wave), then a long
// exponential think time before the next page.
func startWeb(eng *sim.Engine, q *nic.Queue, app *App, cfg Config) *Runner {
	r := newRunner(eng, q, app, cfg)
	const (
		objectLen    = 1400
		connsPerWave = 6
		waveMean     = 30 * sim.Millisecond
		thinkMean    = 400 * sim.Millisecond
	)
	var page func()
	var wave func(objectsLeft int)
	wave = func(objectsLeft int) {
		conns := connsPerWave
		if conns > objectsLeft {
			conns = objectsLeft
		}
		frames := 0
		for c := 0; c < conns; c++ {
			frames += 1 + r.rng.Intn(12)
		}
		if r.sendBurst(frames, objectLen) == 0 {
			return
		}
		if objectsLeft -= conns; objectsLeft > 0 {
			r.act.PostAfter(r.expDur(waveMean), func() { wave(objectsLeft) })
			return
		}
		r.act.PostAfter(r.expDur(thinkMean), page)
	}
	page = func() {
		if r.sendBurst(3, objectLen) == 0 { // HTML document
			return
		}
		objects := 4 + r.rng.Intn(24)
		r.act.PostAfter(r.expDur(waveMean), func() { wave(objects) })
	}
	r.act.Post(cfg.StartAt, page)
	return r
}

// startIoT models telemetry fan-in: a fleet of devices, each with a
// fixed per-device reporting period and phase drawn once at start,
// emitting one minimal frame per period into the shared uplink.
func startIoT(eng *sim.Engine, q *nic.Queue, app *App, cfg Config) *Runner {
	r := newRunner(eng, q, app, cfg)
	const (
		devices    = 16
		readingLen = 78
		minPeriod  = 20 * sim.Millisecond
		maxPeriod  = 100 * sim.Millisecond
	)
	for d := 0; d < devices; d++ {
		period := minPeriod + sim.Duration(r.rng.Int63n(int64(maxPeriod-minPeriod)))
		phase := sim.Duration(r.rng.Int63n(int64(period)))
		var report func()
		report = func() {
			if r.sendBurst(1, readingLen) == 0 {
				return
			}
			r.act.PostAfter(period, report)
		}
		r.act.Post(cfg.StartAt+phase, report)
	}
	return r
}
