package workload

import (
	"testing"

	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
)

type collector struct {
	pkts  []*packet.Packet
	times []sim.Time
}

func (c *collector) Receive(p *packet.Packet, t sim.Time) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, t)
}

func setup(seed int64) (*sim.Engine, *nic.Queue, *collector) {
	e := sim.NewEngine(seed)
	n := nic.New(e, nic.Profile{Name: "wl", LineRateBps: packet.Gbps(10)}, "wl")
	q := n.NewQueue(1 << 20)
	sink := &collector{}
	q.Connect(sink, 0)
	return e, q, sink
}

func TestCatalogueComplete(t *testing.T) {
	want := []string{"abr", "iot", "rpc", "voip", "web"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("catalogue %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("catalogue %v, want %v", got, want)
		}
	}
	for _, n := range want {
		a := Lookup(n)
		if a == nil {
			t.Fatalf("%s missing", n)
		}
		if a.Proto != packet.ProtoUDP && a.Proto != packet.ProtoTCP {
			t.Fatalf("%s proto %d", n, a.Proto)
		}
		if a.Port == 0 || a.Shape == "" || a.Description == "" {
			t.Fatalf("%s catalogue entry incomplete: %+v", n, a)
		}
	}
}

func TestUnknownApp(t *testing.T) {
	e, q, _ := setup(1)
	if _, err := Start(e, q, "nosuch", Config{Count: 1}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestEveryAppEmitsExactBudgetAndFinishes(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			e, q, sink := setup(7)
			r, err := Start(e, q, name, Config{Count: 1500, Stream: 2})
			if err != nil {
				t.Fatal(err)
			}
			e.Run()
			if !r.Done() {
				t.Fatalf("%s not done after engine drain (emitted %d)", name, r.Emitted())
			}
			if r.Emitted() != 1500 || len(sink.pkts) != 1500 {
				t.Fatalf("%s emitted %d delivered %d, want 1500", name, r.Emitted(), len(sink.pkts))
			}
			if r.FinishedAt() <= 0 || r.FinishedAt() > e.Now() {
				t.Fatalf("%s finishedAt %v now %v", name, r.FinishedAt(), e.Now())
			}
			// Sequence numbers dense and in order; flow carries the
			// catalogue identity.
			app := Lookup(name)
			for i, p := range sink.pkts {
				if p.Tag.Seq != uint64(i) || p.Tag.Stream != 2 {
					t.Fatalf("%s packet %d tag %v", name, i, p.Tag)
				}
				if p.Flow.Proto != app.Proto || p.Flow.DstPort != app.Port {
					t.Fatalf("%s packet flow %+v does not match catalogue", name, p.Flow)
				}
			}
		})
	}
}

func TestEveryAppDeterministicSameSeed(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			run := func() ([]sim.Time, []int) {
				e, q, sink := setup(42)
				if _, err := Start(e, q, name, Config{Count: 1200, Stream: 1}); err != nil {
					t.Fatal(err)
				}
				e.Run()
				sizes := make([]int, len(sink.pkts))
				for i, p := range sink.pkts {
					sizes[i] = p.FrameLen
				}
				return sink.times, sizes
			}
			at, as := run()
			bt, bs := run()
			if len(at) != len(bt) {
				t.Fatalf("lengths differ: %d vs %d", len(at), len(bt))
			}
			for i := range at {
				if at[i] != bt[i] || as[i] != bs[i] {
					t.Fatalf("%s nondeterministic at %d: (%v,%d) vs (%v,%d)", name, i, at[i], as[i], bt[i], bs[i])
				}
			}
		})
	}
}

func TestSeedChangesRNGDrivenSchedules(t *testing.T) {
	// Models with random structure must actually vary across seeds.
	for _, name := range []string{"voip", "rpc", "web", "iot"} {
		t.Run(name, func(t *testing.T) {
			run := func(seed int64) []sim.Time {
				e, q, sink := setup(seed)
				if _, err := Start(e, q, name, Config{Count: 800}); err != nil {
					t.Fatal(err)
				}
				e.Run()
				return sink.times
			}
			a, b := run(1), run(2)
			same := len(a) == len(b)
			if same {
				for i := range a {
					if a[i] != b[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Fatalf("%s schedule identical across seeds", name)
			}
		})
	}
}

func TestObsCountsEmissions(t *testing.T) {
	e, q, _ := setup(3)
	o := obs.New()
	r, err := Start(e, q, "rpc", Config{Count: 600, Stream: 4, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	ctr := o.Reg.Counter("workload_emitted_total", "", obs.L("app", "rpc"), obs.L("stream", "4"))
	if got := ctr.Value(); got != int64(r.Emitted()) || got != 600 {
		t.Fatalf("workload_emitted_total = %d, emitted %d", got, r.Emitted())
	}
}

func TestObsDoesNotPerturbSchedule(t *testing.T) {
	for _, name := range Names() {
		run := func(o *obs.Obs) []sim.Time {
			e, q, sink := setup(9)
			if _, err := Start(e, q, name, Config{Count: 700, Obs: o}); err != nil {
				t.Fatal(err)
			}
			e.Run()
			return sink.times
		}
		a, b := run(nil), run(obs.New())
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: obs perturbed schedule at %d", name, i)
			}
		}
	}
}

func TestVoIPShape(t *testing.T) {
	e, q, sink := setup(5)
	if _, err := Start(e, q, "voip", Config{Count: 1000}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	sizes := map[int]int{}
	for _, p := range sink.pkts {
		sizes[p.FrameLen]++
	}
	if len(sizes) != 2 || sizes[160] == 0 || sizes[80] == 0 {
		t.Fatalf("voip sizes %v, want voice(160) + comfort(80)", sizes)
	}
	if sizes[160] < sizes[80] {
		t.Fatalf("voip should be talk-dominated: %v", sizes)
	}
}

func TestABRShape(t *testing.T) {
	e, q, sink := setup(6)
	if _, err := Start(e, q, "abr", Config{Count: 4000}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	// Segment downloads are dense; buffer pacing leaves idle gaps far
	// longer than the intra-segment pacing gap.
	var longest sim.Time
	for i := 1; i < len(sink.times); i++ {
		if g := sink.times[i] - sink.times[i-1]; g > longest {
			longest = g
		}
	}
	if longest < sim.Time(50*sim.Millisecond) {
		t.Fatalf("abr longest gap %v: no buffer-paced idle periods", longest)
	}
}

func TestIoTShape(t *testing.T) {
	e, q, sink := setup(8)
	if _, err := Start(e, q, "iot", Config{Count: 1000}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	for _, p := range sink.pkts {
		if p.FrameLen != 78 {
			t.Fatalf("iot frame %d, want minimal 78B readings", p.FrameLen)
		}
	}
	// Fan-in: aggregate IATs much shorter than any single device period.
	span := sink.times[len(sink.times)-1] - sink.times[0]
	avg := float64(span) / float64(len(sink.pkts)-1)
	if avg > float64(10*sim.Millisecond) {
		t.Fatalf("iot aggregate IAT %.0f ns too sparse for a 16-device fleet", avg)
	}
}
