// Package workload provides deterministic, seedable application-shaped
// traffic generators on the sim actor/lane substrate: ABR video, VoIP/
// conferencing UDP, request-response RPC, bursty web page-loads, and IoT
// telemetry fan-in. Each model is registered in a Wehe-style catalogue
// (name, protocol, port, burst shape — SNIPPETS.md §1) and emits into a
// nic.Queue exactly like internal/gen, so the same recording/replay/κ
// pipeline that scores CBR traffic scores application traffic, and a
// neutral-vs-throttled replay pair of one app turns κ into a
// traffic-differentiation detector.
//
// Determinism contract: every model draws randomness only from
// eng.Rand("workload/<app>/<stream>") — a stream seeded purely by
// (engine seed, label) — and schedules every emission on a single
// actor, so the emitted schedule is bit-identical across -sim-shards
// counts and across repeated runs of the same seed.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
)

// App is one catalogue entry: the Wehe-style identity of an application
// (protocol and server port, as a differentiation middlebox would match
// on) plus its burst shape and the model that generates it.
type App struct {
	// Name is the catalogue key, e.g. "abr".
	Name string
	// Proto is the transport protocol (packet.ProtoUDP / ProtoTCP).
	Proto uint8
	// Port is the server-side port a classifier would key on.
	Port uint16
	// Shape summarizes the burst structure in one phrase.
	Shape string
	// Description names the application family the model mimics.
	Description string
	// start builds and schedules a runner for this app.
	start func(eng *sim.Engine, q *nic.Queue, app *App, cfg Config) *Runner
}

// Config parameterizes one workload stream.
type Config struct {
	// Count is the total number of packets to emit, after which the
	// runner reports Done.
	Count int
	// StartAt is the simulated emission start time.
	StartAt sim.Time
	// Stream tags the packets' stream field.
	Stream uint16
	// Flow overrides the synthesized 5-tuple; when zero it is derived
	// from the app's catalogue identity (client IPForNode(10+stream) →
	// server IPForNode(99), server port from the catalogue).
	Flow packet.FiveTuple
	// Obs, when non-nil, counts emitted packets per app/stream and opens
	// the packet-lifecycle `gen` instant. Purely observational.
	Obs *obs.Obs
}

var catalogue = map[string]*App{}

// Register adds an app to the catalogue; duplicate names panic.
func Register(app *App) {
	if app.Name == "" || app.start == nil {
		panic("workload: app needs a name and a model")
	}
	if _, dup := catalogue[app.Name]; dup {
		panic("workload: duplicate app " + app.Name)
	}
	catalogue[app.Name] = app
}

// Lookup returns the catalogue entry for name, or nil.
func Lookup(name string) *App { return catalogue[name] }

// Names lists the registered apps in sorted order.
func Names() []string {
	out := make([]string, 0, len(catalogue))
	for n := range catalogue {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Start schedules the named app's traffic into q and returns its runner.
func Start(eng *sim.Engine, q *nic.Queue, name string, cfg Config) (*Runner, error) {
	app := Lookup(name)
	if app == nil {
		return nil, fmt.Errorf("workload: unknown app %q (have %v)", name, Names())
	}
	return app.Start(eng, q, cfg), nil
}

// Start schedules this app's traffic into q.
func (a *App) Start(eng *sim.Engine, q *nic.Queue, cfg Config) *Runner {
	if cfg.Count <= 0 {
		panic("workload: count must be positive")
	}
	if (cfg.Flow == packet.FiveTuple{}) {
		cfg.Flow = packet.FiveTuple{
			Src:     packet.IPForNode(10 + cfg.Stream),
			Dst:     packet.IPForNode(99),
			SrcPort: 40000 + cfg.Stream,
			DstPort: a.Port,
			Proto:   a.Proto,
		}
	}
	return a.start(eng, q, a, cfg)
}

// Runner tracks one in-flight workload stream.
type Runner struct {
	eng        *sim.Engine
	act        *sim.Actor
	q          *nic.Queue
	app        *App
	cfg        Config
	rng        *rand.Rand
	ctr        *obs.Counter
	tr         *obs.Tracer
	track      string
	seq        uint64
	emitted    int
	done       bool
	finishedAt sim.Time
}

// newRunner builds the shared plumbing for one app model.
func newRunner(eng *sim.Engine, q *nic.Queue, app *App, cfg Config) *Runner {
	r := &Runner{
		eng: eng,
		act: eng.NewActor(),
		q:   q,
		app: app,
		cfg: cfg,
		rng: eng.Rand(fmt.Sprintf("workload/%s/%d", app.Name, cfg.Stream)),
	}
	if cfg.Obs != nil {
		r.ctr = cfg.Obs.Reg.Counter("workload_emitted_total", "packets emitted by application workloads",
			obs.L("app", app.Name), obs.L("stream", fmt.Sprintf("%d", cfg.Stream)))
		r.tr = cfg.Obs.Tracer
		r.track = fmt.Sprintf("workload/%s/%d", app.Name, cfg.Stream)
	}
	return r
}

// App returns the catalogue entry this runner is generating.
func (r *Runner) App() *App { return r.app }

// Emitted returns how many packets have been handed to the NIC so far.
func (r *Runner) Emitted() int { return r.emitted }

// Done reports whether the packet budget has been fully emitted.
func (r *Runner) Done() bool { return r.done }

// FinishedAt returns the sim time of the final emission (valid once
// Done reports true).
func (r *Runner) FinishedAt() sim.Time { return r.finishedAt }

// sendBurst emits up to n frames of frameLen back-to-back at the
// current instant (the NIC paces them at line rate), clamped to the
// remaining packet budget. It returns the number emitted; on budget
// exhaustion it marks the runner done.
func (r *Runner) sendBurst(n, frameLen int) int {
	if r.done || n <= 0 {
		return 0
	}
	if remaining := r.cfg.Count - r.emitted; n > remaining {
		n = remaining
	}
	if frameLen < packet.MinDataFrameLen {
		frameLen = packet.MinDataFrameLen
	}
	sent := 0
	for sent < n {
		b := n - sent
		if b > nic.BurstSize {
			b = nic.BurstSize
		}
		pkts := make([]*packet.Packet, b)
		for j := 0; j < b; j++ {
			pkts[j] = &packet.Packet{
				Tag:      packet.Tag{Stream: r.cfg.Stream, Seq: r.seq},
				Kind:     packet.KindData,
				FrameLen: frameLen,
				Flow:     r.cfg.Flow,
			}
			r.seq++
		}
		if r.tr != nil {
			now := r.eng.Now()
			for _, p := range pkts {
				r.tr.Instant(p.Tag, obs.StageGen, r.track, now)
			}
		}
		r.q.SendBurst(pkts)
		r.ctr.Add(int64(b))
		sent += b
	}
	r.emitted += sent
	if r.emitted >= r.cfg.Count {
		r.done = true
		r.finishedAt = r.eng.Now()
	}
	return sent
}

// expDur draws an exponential duration with the given mean.
func (r *Runner) expDur(mean sim.Duration) sim.Duration {
	d := sim.Duration(r.rng.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}
