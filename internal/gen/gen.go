// Package gen provides traffic generators for the simulated testbed: a
// Pktgen-DPDK-style constant-bit-rate stream (the paper's experimental
// workload), a Poisson arrival variant, and a simple IMIX mix for
// stress-testing the replay path with non-uniform frame sizes.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
)

// emitObs bundles the per-stream observability hooks shared by every
// generator: the gen_emitted_total counter and the `gen` packet-lifecycle
// instant. A nil *emitObs is inert, so generators call record
// unconditionally. Purely observational: it never touches the engine's
// RNG or schedule.
type emitObs struct {
	eng   *sim.Engine
	ctr   *obs.Counter
	tr    *obs.Tracer
	track string
}

// newEmitObs builds the emit hooks for one stream, or nil when o is nil.
func newEmitObs(eng *sim.Engine, o *obs.Obs, stream uint16) *emitObs {
	if o == nil {
		return nil
	}
	return &emitObs{
		eng: eng,
		ctr: o.Reg.Counter("gen_emitted_total", "packets handed to the generator NIC",
			obs.L("stream", fmt.Sprintf("%d", stream))),
		tr:    o.Tracer,
		track: fmt.Sprintf("gen/%d", stream),
	}
}

// record notes a burst of emitted packets at the engine's current time.
func (e *emitObs) record(pkts []*packet.Packet) {
	if e == nil {
		return
	}
	now := e.eng.Now()
	for _, p := range pkts {
		e.tr.Instant(p.Tag, obs.StageGen, e.track, now)
	}
	e.ctr.Add(int64(len(pkts)))
}

// CBRConfig describes a constant-bit-rate stream of identical frames —
// "the generator created a 40 Gbps stream of 1,400-byte packets" (§6).
type CBRConfig struct {
	// RateBps is the target offered load in bits per second (on-wire,
	// including preamble and inter-frame gap).
	RateBps int64
	// FrameLen is the frame size in bytes.
	FrameLen int
	// Count is the number of packets to emit.
	Count int
	// StartAt is the simulated emission start time.
	StartAt sim.Time
	// Stream tags the packets' stream field; the replayer field of the
	// tag is stamped later by the middlebox that emits the replay.
	Stream uint16
	// Flow is the 5-tuple stamped into synthesized headers.
	Flow packet.FiveTuple
	// Burst emits packets in back-to-back groups of this size while
	// preserving the average rate (1 = perfectly paced).
	Burst int
	// Obs, when non-nil, counts emitted packets per stream and opens
	// the packet-lifecycle `gen` instant for sampled packets.
	Obs *obs.Obs
}

// Generator emits a packet schedule into a NIC queue.
type Generator struct {
	eng     *sim.Engine
	act     *sim.Actor
	q       *nic.Queue
	emitted int
}

// Emitted returns how many packets have been handed to the NIC so far.
func (g *Generator) Emitted() int { return g.emitted }

// StartCBR schedules a CBR stream into q. Emission times are computed
// exactly (packet i leaves at StartAt + i·serialization(rate)), the
// fidelity a DPDK generator achieves with hardware rate limiting.
func StartCBR(eng *sim.Engine, q *nic.Queue, cfg CBRConfig) *Generator {
	if cfg.RateBps <= 0 {
		panic("gen: rate must be positive")
	}
	if cfg.FrameLen < packet.MinDataFrameLen {
		panic(fmt.Sprintf("gen: frame length %d below minimum %d", cfg.FrameLen, packet.MinDataFrameLen))
	}
	burst := cfg.Burst
	if burst <= 0 {
		burst = 1
	}
	if burst > nic.BurstSize {
		burst = nic.BurstSize
	}
	g := &Generator{eng: eng, act: eng.NewActor(), q: q}
	eo := newEmitObs(eng, cfg.Obs, cfg.Stream)
	interval := float64(packet.WireBytes(cfg.FrameLen)*8) * 1e9 / float64(cfg.RateBps)
	// Self-scheduling emission keeps the event heap small at
	// million-packet scale; times are computed from the packet index so
	// pacing never accumulates drift.
	var emit func(i int)
	emit = func(i int) {
		n := burst
		if i+n > cfg.Count {
			n = cfg.Count - i
		}
		pkts := make([]*packet.Packet, n)
		for j := 0; j < n; j++ {
			pkts[j] = &packet.Packet{
				Tag:      packet.Tag{Stream: cfg.Stream, Seq: uint64(i + j)},
				Kind:     packet.KindData,
				FrameLen: cfg.FrameLen,
				Flow:     cfg.Flow,
			}
		}
		eo.record(pkts)
		g.q.SendBurst(pkts)
		g.emitted += n
		if next := i + n; next < cfg.Count {
			g.act.Post(cfg.StartAt+sim.Time(float64(next)*interval), func() { emit(next) })
		}
	}
	g.act.Post(cfg.StartAt, func() { emit(0) })
	return g
}

// PoissonConfig describes a Poisson arrival process of identical frames,
// useful for exercising the replayer on bursty, non-CBR traffic.
type PoissonConfig struct {
	// MeanRatePPS is the average packet rate.
	MeanRatePPS float64
	FrameLen    int
	Count       int
	StartAt     sim.Time
	Stream      uint16
	Flow        packet.FiveTuple
	// Obs, when non-nil, mirrors the CBR emit instrumentation.
	Obs *obs.Obs
}

// StartPoisson schedules a Poisson stream into q using the engine's
// random stream labelled by the stream id.
func StartPoisson(eng *sim.Engine, q *nic.Queue, cfg PoissonConfig) *Generator {
	if cfg.MeanRatePPS <= 0 {
		panic("gen: rate must be positive")
	}
	g := &Generator{eng: eng, act: eng.NewActor(), q: q}
	eo := newEmitObs(eng, cfg.Obs, cfg.Stream)
	rng := eng.Rand(fmt.Sprintf("gen/poisson/%d", cfg.Stream))
	meanGap := 1e9 / cfg.MeanRatePPS
	var emit func(i int)
	emit = func(i int) {
		pkts := []*packet.Packet{{
			Tag:      packet.Tag{Stream: cfg.Stream, Seq: uint64(i)},
			Kind:     packet.KindData,
			FrameLen: cfg.FrameLen,
			Flow:     cfg.Flow,
		}}
		eo.record(pkts)
		g.q.SendBurst(pkts)
		g.emitted++
		if i+1 < cfg.Count {
			g.act.PostAfter(sim.Duration(rng.ExpFloat64()*meanGap), func() { emit(i + 1) })
		}
	}
	g.act.Post(cfg.StartAt+sim.Duration(rng.ExpFloat64()*meanGap), func() { emit(0) })
	return g
}

// IMIXConfig describes a simple IMIX stream: the classic 7:4:1 mix of
// 64-, 570- and 1400-byte frames at a target packet rate.
type IMIXConfig struct {
	RatePPS float64
	Count   int
	StartAt sim.Time
	Stream  uint16
	Flow    packet.FiveTuple
	// Obs, when non-nil, mirrors the CBR emit instrumentation.
	Obs *obs.Obs
}

// imixSizes is the classic distribution, adjusted so even the smallest
// frame carries the Choir trailer.
var imixSizes = []struct {
	weight int
	size   int
}{
	{7, packet.MinDataFrameLen}, // small
	{4, 570},
	{1, 1400},
}

// imixTotal is the summed weight, hoisted so pickIMIX does not rescan
// the table on every packet.
var imixTotal = func() int {
	t := 0
	for _, e := range imixSizes {
		t += e.weight
	}
	return t
}()

// StartIMIX schedules an IMIX stream into q.
func StartIMIX(eng *sim.Engine, q *nic.Queue, cfg IMIXConfig) *Generator {
	if cfg.RatePPS <= 0 {
		panic("gen: rate must be positive")
	}
	g := &Generator{eng: eng, act: eng.NewActor(), q: q}
	eo := newEmitObs(eng, cfg.Obs, cfg.Stream)
	rng := eng.Rand(fmt.Sprintf("gen/imix/%d", cfg.Stream))
	gap := sim.Duration(1e9 / cfg.RatePPS)
	var emit func(i int)
	emit = func(i int) {
		pkts := []*packet.Packet{{
			Tag:      packet.Tag{Stream: cfg.Stream, Seq: uint64(i)},
			Kind:     packet.KindData,
			FrameLen: pickIMIX(rng),
			Flow:     cfg.Flow,
		}}
		eo.record(pkts)
		g.q.SendBurst(pkts)
		g.emitted++
		if i+1 < cfg.Count {
			g.act.PostAfter(gap, func() { emit(i + 1) })
		}
	}
	g.act.Post(cfg.StartAt, func() { emit(0) })
	return g
}

func pickIMIX(rng *rand.Rand) int {
	x := rng.Intn(imixTotal)
	for _, e := range imixSizes {
		x -= e.weight
		if x < 0 {
			return e.size
		}
	}
	return imixSizes[len(imixSizes)-1].size
}

// EmpiricalConfig replays the *statistical shape* of a recorded trace:
// frame sizes and inter-arrival gaps are resampled from the capture's
// own empirical distributions. This covers the "traffic generated by
// specified qualities" generator class of §1 without replaying the
// specific packets.
type EmpiricalConfig struct {
	// Gaps is the IAT sample to resample from (e.g. Trace.IATs()).
	// Negative gaps are clamped to zero; the sample must contain at
	// least one positive gap, otherwise the resampled process has
	// infinite instantaneous rate and would dump the whole stream into
	// the NIC ring in a single unbounded synchronous burst.
	Gaps []sim.Duration
	// FrameLens is the frame-size sample, resampled independently.
	FrameLens []int
	// Count is the number of packets to emit.
	Count int
	// StartAt is the emission start time.
	StartAt sim.Time
	// Stream tags the packets.
	Stream uint16
	// Flow is the synthesized 5-tuple.
	Flow packet.FiveTuple
	// Obs, when non-nil, mirrors the CBR emit instrumentation.
	Obs *obs.Obs
}

// StartEmpirical schedules an empirically-shaped stream into q.
func StartEmpirical(eng *sim.Engine, q *nic.Queue, cfg EmpiricalConfig) *Generator {
	if len(cfg.Gaps) == 0 || len(cfg.FrameLens) == 0 {
		panic("gen: empirical generator needs gap and frame-size samples")
	}
	// Sanitize a copy of the gap sample in place of per-draw clamping:
	// indices are preserved so valid inputs keep bit-identical schedules,
	// and a degenerate all-nonpositive sample is rejected up front.
	gaps := make([]sim.Duration, len(cfg.Gaps))
	positive := false
	for i, gp := range cfg.Gaps {
		if gp < 0 {
			gp = 0
		}
		if gp > 0 {
			positive = true
		}
		gaps[i] = gp
	}
	if !positive {
		panic("gen: empirical gap sample has no positive gaps (infinite instantaneous rate)")
	}
	g := &Generator{eng: eng, act: eng.NewActor(), q: q}
	eo := newEmitObs(eng, cfg.Obs, cfg.Stream)
	rng := eng.Rand(fmt.Sprintf("gen/empirical/%d", cfg.Stream))
	var emit func(i int)
	emit = func(i int) {
		fl := cfg.FrameLens[rng.Intn(len(cfg.FrameLens))]
		if fl < packet.MinDataFrameLen {
			fl = packet.MinDataFrameLen
		}
		pkts := []*packet.Packet{{
			Tag:      packet.Tag{Stream: cfg.Stream, Seq: uint64(i)},
			Kind:     packet.KindData,
			FrameLen: fl,
			Flow:     cfg.Flow,
		}}
		eo.record(pkts)
		g.q.SendBurst(pkts)
		g.emitted++
		if i+1 < cfg.Count {
			g.act.PostAfter(gaps[rng.Intn(len(gaps))], func() { emit(i + 1) })
		}
	}
	g.act.Post(cfg.StartAt, func() { emit(0) })
	return g
}
