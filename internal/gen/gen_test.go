package gen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
)

type collector struct {
	pkts  []*packet.Packet
	times []sim.Time
}

func (c *collector) Receive(p *packet.Packet, t sim.Time) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, t)
}

func setup(seed int64) (*sim.Engine, *nic.Queue, *collector) {
	e := sim.NewEngine(seed)
	n := nic.New(e, nic.Profile{Name: "gen", LineRateBps: packet.Gbps(100)}, "gen")
	q := n.NewQueue(1 << 20)
	sink := &collector{}
	q.Connect(sink, 0)
	return e, q, sink
}

func TestCBRRate(t *testing.T) {
	e, q, sink := setup(1)
	g := StartCBR(e, q, CBRConfig{
		RateBps:  packet.Gbps(40),
		FrameLen: 1400,
		Count:    10000,
		Stream:   1,
	})
	e.Run()
	if g.Emitted() != 10000 {
		t.Fatalf("emitted %d", g.Emitted())
	}
	if len(sink.pkts) != 10000 {
		t.Fatalf("delivered %d", len(sink.pkts))
	}
	// Average IAT should be the 40G serialization time (284 ns).
	span := sink.times[len(sink.times)-1] - sink.times[0]
	avg := float64(span) / float64(len(sink.pkts)-1)
	if math.Abs(avg-284) > 1 {
		t.Fatalf("average IAT %.2f ns, want ~284", avg)
	}
	// Sequence numbers in order.
	for i, p := range sink.pkts {
		if p.Tag.Seq != uint64(i) || p.Tag.Stream != 1 {
			t.Fatalf("packet %d has tag %v", i, p.Tag)
		}
	}
}

func TestCBRPaperScale(t *testing.T) {
	// 0.3 s of 40 Gbps 1400-byte packets ≈ 1.05 M packets; check the
	// generator arithmetic at a scaled-down count.
	pps := packet.RateForPPS(1400, packet.Gbps(40))
	wantCount := pps * 0.3
	if wantCount < 1.04e6 || wantCount > 1.07e6 {
		t.Fatalf("0.3s at 40G = %.0f packets, paper says ~1.05M", wantCount)
	}
}

func TestCBRBursty(t *testing.T) {
	e, q, sink := setup(2)
	StartCBR(e, q, CBRConfig{
		RateBps:  packet.Gbps(40),
		FrameLen: 1400,
		Count:    1000,
		Burst:    32,
	})
	e.Run()
	if len(sink.pkts) != 1000 {
		t.Fatalf("delivered %d", len(sink.pkts))
	}
	// Intra-burst gaps are at line rate (114 ns), inter-burst larger.
	ser := packet.SerializationTime(1400, packet.Gbps(100))
	if gap := sink.times[1] - sink.times[0]; gap != ser {
		t.Fatalf("intra-burst gap %v, want %v", gap, ser)
	}
	if gap := sink.times[32] - sink.times[31]; gap <= ser {
		t.Fatalf("inter-burst gap %v should exceed line-rate gap", gap)
	}
	// Average rate still ~40G.
	span := sink.times[len(sink.times)-1] - sink.times[0]
	avg := float64(span) / float64(len(sink.pkts)-1)
	if math.Abs(avg-284) > 15 {
		t.Fatalf("average IAT %.2f ns, want ~284", avg)
	}
}

func TestCBRValidation(t *testing.T) {
	e, q, _ := setup(3)
	for _, cfg := range []CBRConfig{
		{RateBps: 0, FrameLen: 1400, Count: 1},
		{RateBps: 1e9, FrameLen: 10, Count: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v accepted", cfg)
				}
			}()
			StartCBR(e, q, cfg)
		}()
	}
}

func TestPoissonMeanRate(t *testing.T) {
	e, q, sink := setup(4)
	StartPoisson(e, q, PoissonConfig{
		MeanRatePPS: 1e6,
		FrameLen:    256,
		Count:       20000,
	})
	e.Run()
	if len(sink.pkts) != 20000 {
		t.Fatalf("delivered %d", len(sink.pkts))
	}
	span := sink.times[len(sink.times)-1] - sink.times[0]
	avg := float64(span) / float64(len(sink.pkts)-1)
	if math.Abs(avg-1000)/1000 > 0.05 {
		t.Fatalf("average IAT %.2f ns, want ~1000 ±5%%", avg)
	}
	// Poisson gaps vary (unlike CBR): standard deviation near the mean.
	var sq float64
	for i := 1; i < len(sink.times); i++ {
		d := float64(sink.times[i]-sink.times[i-1]) - avg
		sq += d * d
	}
	sd := math.Sqrt(sq / float64(len(sink.times)-1))
	if sd < avg*0.7 {
		t.Fatalf("poisson σ %.1f too low for mean %.1f", sd, avg)
	}
}

func TestIMIXMixesSizes(t *testing.T) {
	e, q, sink := setup(5)
	StartIMIX(e, q, IMIXConfig{RatePPS: 1e6, Count: 12000})
	e.Run()
	counts := map[int]int{}
	for _, p := range sink.pkts {
		counts[p.FrameLen]++
	}
	if len(counts) != 3 {
		t.Fatalf("IMIX produced %d sizes, want 3: %v", len(counts), counts)
	}
	// 7:4:1 ratios, loosely.
	small := counts[packet.MinDataFrameLen]
	large := counts[1400]
	if small < 5*large {
		t.Fatalf("IMIX ratio off: small=%d large=%d", small, large)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	run := func() []sim.Time {
		e, q, sink := setup(7)
		StartPoisson(e, q, PoissonConfig{MeanRatePPS: 1e6, FrameLen: 256, Count: 500})
		e.Run()
		return sink.times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestEmpiricalMatchesSourceShape(t *testing.T) {
	e, q, sink := setup(9)
	// Source distribution: bimodal gaps (100ns and 900ns), two sizes.
	gaps := []sim.Duration{100, 100, 100, 900}
	sizes := []int{128, 1400}
	StartEmpirical(e, q, EmpiricalConfig{
		Gaps: gaps, FrameLens: sizes, Count: 20000,
	})
	e.Run()
	if len(sink.pkts) != 20000 {
		t.Fatalf("delivered %d", len(sink.pkts))
	}
	// Mean gap of the source: (3*100+900)/4 = 300.
	span := sink.times[len(sink.times)-1] - sink.times[0]
	avg := float64(span) / float64(len(sink.pkts)-1)
	if math.Abs(avg-300)/300 > 0.08 {
		t.Fatalf("mean IAT %.1f, want ~300 (resampled)", avg)
	}
	sizesSeen := map[int]int{}
	for _, p := range sink.pkts {
		sizesSeen[p.FrameLen]++
	}
	if len(sizesSeen) != 2 {
		t.Fatalf("sizes seen: %v", sizesSeen)
	}
}

func TestEmpiricalValidation(t *testing.T) {
	e, q, _ := setup(10)
	defer func() {
		if recover() == nil {
			t.Fatal("empty samples accepted")
		}
	}()
	StartEmpirical(e, q, EmpiricalConfig{Count: 1})
}

func TestEmpiricalRejectsDegenerateGaps(t *testing.T) {
	// An all-zero (or all-negative) gap sample means infinite
	// instantaneous rate: the generator would emit the entire stream in
	// one synchronous same-instant burst. Regression: these used to be
	// accepted, with negatives clamped per draw.
	for _, gaps := range [][]sim.Duration{
		{0, 0, 0},
		{-5, -1, 0},
	} {
		func() {
			e, q, _ := setup(11)
			defer func() {
				if recover() == nil {
					t.Fatalf("degenerate gap sample %v accepted", gaps)
				}
			}()
			StartEmpirical(e, q, EmpiricalConfig{
				Gaps: gaps, FrameLens: []int{256}, Count: 10,
			})
		}()
	}
}

func TestEmpiricalClampsNegativeGapsBitIdentically(t *testing.T) {
	// Negative gaps clamp to zero without disturbing sample indices, so
	// the schedule matches the same sample with zeros pre-substituted.
	run := func(gaps []sim.Duration) []sim.Time {
		e, q, sink := setup(12)
		StartEmpirical(e, q, EmpiricalConfig{
			Gaps: gaps, FrameLens: []int{256}, Count: 2000,
		})
		e.Run()
		return sink.times
	}
	a := run([]sim.Duration{-40, 100, 900, -1})
	b := run([]sim.Duration{0, 100, 900, 0})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestObsUniformAcrossGenerators(t *testing.T) {
	// Every generator threads Obs through the shared emit helper:
	// gen_emitted_total must reach Count for each kind. Regression: only
	// StartCBR used to honour Obs.
	const count = 300
	cases := []struct {
		name  string
		start func(e *sim.Engine, q *nic.Queue, o *obs.Obs)
	}{
		{"cbr", func(e *sim.Engine, q *nic.Queue, o *obs.Obs) {
			StartCBR(e, q, CBRConfig{RateBps: packet.Gbps(10), FrameLen: 256, Count: count, Stream: 3, Obs: o})
		}},
		{"poisson", func(e *sim.Engine, q *nic.Queue, o *obs.Obs) {
			StartPoisson(e, q, PoissonConfig{MeanRatePPS: 1e6, FrameLen: 256, Count: count, Stream: 3, Obs: o})
		}},
		{"imix", func(e *sim.Engine, q *nic.Queue, o *obs.Obs) {
			StartIMIX(e, q, IMIXConfig{RatePPS: 1e6, Count: count, Stream: 3, Obs: o})
		}},
		{"empirical", func(e *sim.Engine, q *nic.Queue, o *obs.Obs) {
			StartEmpirical(e, q, EmpiricalConfig{
				Gaps: []sim.Duration{100, 900}, FrameLens: []int{256}, Count: count, Stream: 3, Obs: o,
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, q, _ := setup(13)
			o := obs.New()
			tc.start(e, q, o)
			e.Run()
			ctr := o.Reg.Counter("gen_emitted_total", "", obs.L("stream", "3"))
			if got := ctr.Value(); got != count {
				t.Fatalf("%s: gen_emitted_total = %d, want %d", tc.name, got, count)
			}
		})
	}
}

func TestObsDoesNotPerturbSchedule(t *testing.T) {
	// The emit helper is purely observational: schedules with and
	// without Obs are bit-identical for the RNG-driven generators.
	run := func(o *obs.Obs) []sim.Time {
		e, q, sink := setup(14)
		StartPoisson(e, q, PoissonConfig{MeanRatePPS: 1e6, FrameLen: 256, Count: 1000, Stream: 5, Obs: o})
		e.Run()
		return sink.times
	}
	a, b := run(nil), run(obs.New())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("obs perturbed schedule at %d", i)
		}
	}
}

func BenchmarkPickIMIX(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		pickIMIX(rng)
	}
}
