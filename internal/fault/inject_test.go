package fault

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// capture is a nic.Endpoint that records everything it receives.
type capture struct{ tr *trace.Trace }

func (c *capture) Receive(pk *packet.Packet, at sim.Time) { c.tr.Append(pk, at) }

// runInjector feeds every arrival of in through an Injector on a fresh
// engine and returns the captured downstream trace plus the stats.
func runInjector(t *testing.T, p Plan, in *trace.Trace) (*trace.Trace, InjectorStats) {
	t.Helper()
	eng := sim.NewEngine(1)
	sink := &capture{tr: trace.New(in.Name, in.Len())}
	inj, err := NewInjector(eng, p, sink)
	if err != nil {
		t.Fatalf("NewInjector(%v): %v", p, err)
	}
	for i := 0; i < in.Len(); i++ {
		pk, at := in.Packets[i], in.Times[i]
		eng.Post(at, func() { inj.Receive(pk, at) })
	}
	eng.Run()
	return sink.tr, inj.Stats()
}

// TestInjectorMatchesApply is the contract at the heart of the package:
// the trace-level Apply and the event-path Injector are two renderings
// of the same plan, bit-identical on every input. Negative skew is the
// one documented exception (the injector cannot deliver into the past).
func TestInjectorMatchesApply(t *testing.T) {
	in := sampleTrace("diff", 3000, 40)
	for _, p := range testPlans() {
		want := p.Apply(in)
		got, _ := runInjector(t, p, in)
		traceEqual(t, got, want)
	}
}

func TestInjectorReplayDeterminism(t *testing.T) {
	in := sampleTrace("replay", 2000, 41)
	p := Plan{Seed: 42, Drop: 0.05, Dup: 0.05, Corrupt: 0.05, Reorder: 0.08, Jitter: 200, SkewPPM: 40}
	a, sa := runInjector(t, p, in)
	b, sb := runInjector(t, p, in)
	traceEqual(t, a, b)
	if sa != sb {
		t.Fatalf("stats differ across replays: %+v vs %+v", sa, sb)
	}
}

func TestInjectorStatsAreConsistent(t *testing.T) {
	in := sampleTrace("stats", 4000, 43)
	p := Plan{Seed: 44, Drop: 0.04, Dup: 0.03, Corrupt: 0.02, BurstRate: 0.002, BurstLen: 6, Reorder: 0.05}
	out, s := runInjector(t, p, in)
	if s.Received != int64(in.Len()) {
		t.Fatalf("Received = %d, want %d", s.Received, in.Len())
	}
	if s.Delivered != int64(out.Len()) {
		t.Fatalf("Delivered = %d, but downstream saw %d", s.Delivered, out.Len())
	}
	if want := s.Received - s.Dropped - s.Truncated + s.Duplicated; s.Delivered != want {
		t.Fatalf("Delivered = %d, want Received−Dropped−Truncated+Duplicated = %d (%+v)", s.Delivered, want, s)
	}
	for _, c := range []struct {
		name string
		n    int64
	}{{"Dropped", s.Dropped}, {"Truncated", s.Truncated}, {"Corrupted", s.Corrupted}, {"Duplicated", s.Duplicated}, {"Reordered", s.Reordered}} {
		if c.n == 0 {
			t.Fatalf("fault counter %s never fired under %v", c.name, p)
		}
	}
}

func TestInjectorIdentityForwardsUntouched(t *testing.T) {
	in := sampleTrace("fwd", 500, 45)
	out, s := runInjector(t, Plan{Seed: 46}, in)
	traceEqual(t, out, in)
	for i := range out.Packets {
		if out.Packets[i] != in.Packets[i] {
			t.Fatalf("identity injector cloned packet %d", i)
		}
	}
	if s.Dropped+s.Truncated+s.Corrupted+s.Duplicated+s.Reordered != 0 {
		t.Fatalf("identity injector reported faults: %+v", s)
	}
}

func TestInjectorRejectsBadConfig(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &capture{tr: trace.New("x", 0)}
	if _, err := NewInjector(nil, Plan{}, sink); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewInjector(eng, Plan{}, nil); err == nil {
		t.Fatal("nil downstream accepted")
	}
	if _, err := NewInjector(eng, Plan{SkewPPM: -5}, sink); err == nil {
		t.Fatal("negative skew accepted by the sim-path injector")
	}
}
